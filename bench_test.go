// Benchmark harness: one benchmark family per figure/table of the paper's
// evaluation (§IV), plus micro-benchmarks for the mechanisms and the
// quantum ablation. Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// Custom metrics:
//
//	ctxsw/op   — kernel context switches per benchmark iteration
//	err-ns     — max timing error vs the TDless reference (ablation)
//	gain-%     — SoC wall-time gain of smart over sync FIFOs
package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fifo"
	"repro/internal/noc"
	"repro/internal/peq"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/soc"
)

// BenchmarkFig5 regenerates Fig. 5: wall time of the three-module system
// vs FIFO depth for untimed / TDless / TDfull. The paper's shape: TDless
// flat; untimed and TDfull falling with depth; TDfull ≈ 2× untimed;
// crossover TDfull-vs-TDless between depth 1 and 2.
func BenchmarkFig5(b *testing.B) {
	const blocks, words = 20, 1000
	for _, depth := range []int{1, 2, 4, 16, 64, 256} {
		for _, m := range []pipeline.Mode{pipeline.Untimed, pipeline.TDless, pipeline.TDfull} {
			b.Run(fmt.Sprintf("%s/depth=%d", m, depth), func(b *testing.B) {
				var sw uint64
				for i := 0; i < b.N; i++ {
					r := pipeline.Run(pipeline.Config{
						Mode: m, Depth: depth, Blocks: blocks, WordsPerBlock: words,
					})
					sw += r.Stats.ContextSwitches
				}
				b.ReportMetric(float64(sw)/float64(b.N), "ctxsw/op")
			})
		}
	}
}

// BenchmarkCaseStudySoC regenerates the §IV-C comparison: the full SoC
// model with sync-on-access FIFOs vs Smart FIFOs at identical accuracy
// (paper: 38.0 s → 21.9 s, −42.3%).
func BenchmarkCaseStudySoC(b *testing.B) {
	cfg := soc.Config{
		Pipelines: 8, Jobs: 4, WordsPerJob: 2048, FIFODepth: 16,
		UseNoC: true, NoCPacketLen: 16, Quantum: 500 * sim.NS, WithDMA: true,
	}
	for _, m := range []soc.FIFOMode{soc.SyncFIFOs, soc.SmartFIFOs} {
		b.Run(m.String(), func(b *testing.B) {
			cfg.Mode = m
			var sw uint64
			for i := 0; i < b.N; i++ {
				r := soc.Run(cfg)
				sw += r.Stats.ContextSwitches
			}
			b.ReportMetric(float64(sw)/float64(b.N), "ctxsw/op")
		})
	}
}

// BenchmarkQuantumAblation compares quantum-keeper decoupling (the TLM-2.0
// state of the art) with the Smart FIFO on the Fig. 5 system: the quantum
// buys speed with timing error, the Smart FIFO needs no quantum and has
// none.
func BenchmarkQuantumAblation(b *testing.B) {
	const blocks, words, depth = 20, 1000, 4
	ref := pipeline.Run(pipeline.Config{
		Mode: pipeline.TDless, Depth: depth, Blocks: blocks, WordsPerBlock: words,
	})
	cases := []struct {
		name string
		cfg  pipeline.Config
	}{
		{"quantum=0", pipeline.Config{Mode: pipeline.Quantum, QuantumValue: 0}},
		{"quantum=100ns", pipeline.Config{Mode: pipeline.Quantum, QuantumValue: 100 * sim.NS}},
		{"quantum=1us", pipeline.Config{Mode: pipeline.Quantum, QuantumValue: sim.US}},
		{"quantum=10us", pipeline.Config{Mode: pipeline.Quantum, QuantumValue: 10 * sim.US}},
		{"smartfifo", pipeline.Config{Mode: pipeline.TDfull}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			c.cfg.Depth = depth
			c.cfg.Blocks = blocks
			c.cfg.WordsPerBlock = words
			var err sim.Time
			for i := 0; i < b.N; i++ {
				r := pipeline.Run(c.cfg)
				err = pipeline.MaxTimingError(ref, r)
			}
			b.ReportMetric(float64(err/sim.NS), "err-ns")
		})
	}
}

// BenchmarkSmartFIFOOps measures the per-access cost of the Smart FIFO in
// the hot no-context-switch path (deep FIFO, decoupled sides): the "more
// computations ... cost of timing accuracy" of §IV-B.
func BenchmarkSmartFIFOOps(b *testing.B) {
	k := sim.NewKernel("bench")
	f := core.NewSmart[int](k, "f", 1<<16)
	n := b.N
	k.Thread("writer", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			f.Write(i)
			p.Inc(sim.NS)
		}
	})
	k.Thread("reader", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			f.Read()
			p.Inc(sim.NS)
		}
	})
	b.ResetTimer()
	k.Run(sim.RunForever)
}

// BenchmarkWriteBurst measures the per-word cost of moving chunks into the
// Smart FIFO: the bulk run-based fast path ("bulk") versus the equivalent
// scalar Write loop ("scalar"). b.N counts words, so ns/op is ns/word; the
// bulk path must stay ≥ 5× cheaper and allocation-free.
func BenchmarkWriteBurst(b *testing.B) {
	const chunk = 256
	for _, impl := range []string{"bulk", "scalar"} {
		b.Run(impl, func(b *testing.B) {
			k := sim.NewKernel("bench")
			f := core.NewSmart[uint32](k, "f", 1<<12)
			wbuf := make([]uint32, chunk)
			rbuf := make([]uint32, chunk)
			n := (b.N/chunk + 1) * chunk
			k.Thread("writer", func(p *sim.Process) {
				for done := 0; done < n; done += chunk {
					if impl == "bulk" {
						f.WriteBurst(wbuf, sim.NS)
					} else {
						for i := range wbuf {
							if i > 0 {
								p.Inc(sim.NS)
							}
							f.Write(wbuf[i])
						}
					}
					p.Inc(sim.NS)
				}
			})
			k.Thread("reader", func(p *sim.Process) {
				for done := 0; done < n; done += chunk {
					f.ReadBurst(rbuf, sim.NS)
					p.Inc(sim.NS)
				}
			})
			b.ReportAllocs()
			b.ResetTimer()
			k.Run(sim.RunForever)
			k.Shutdown()
		})
	}
}

// BenchmarkReadBurst is the read-side mirror of BenchmarkWriteBurst: bulk
// ReadBurst versus the scalar Read loop, with a bulk writer feeding both.
func BenchmarkReadBurst(b *testing.B) {
	const chunk = 256
	for _, impl := range []string{"bulk", "scalar"} {
		b.Run(impl, func(b *testing.B) {
			k := sim.NewKernel("bench")
			f := core.NewSmart[uint32](k, "f", 1<<12)
			wbuf := make([]uint32, chunk)
			rbuf := make([]uint32, chunk)
			n := (b.N/chunk + 1) * chunk
			k.Thread("writer", func(p *sim.Process) {
				for done := 0; done < n; done += chunk {
					f.WriteBurst(wbuf, sim.NS)
					p.Inc(sim.NS)
				}
			})
			k.Thread("reader", func(p *sim.Process) {
				for done := 0; done < n; done += chunk {
					if impl == "bulk" {
						f.ReadBurst(rbuf, sim.NS)
					} else {
						for i := range rbuf {
							if i > 0 {
								p.Inc(sim.NS)
							}
							rbuf[i] = f.Read()
						}
					}
					p.Inc(sim.NS)
				}
			})
			b.ReportAllocs()
			b.ResetTimer()
			k.Run(sim.RunForever)
			k.Shutdown()
		})
	}
}

// BenchmarkShardedWriteBurst measures the bridge endpoints' bulk path:
// chunked writes and reads across a ShardedFIFO with barrier flushes.
func BenchmarkShardedWriteBurst(b *testing.B) {
	const chunk = 256
	k := sim.NewKernel("bench")
	f := core.NewSharded[uint32](k, k, "f", 1<<12)
	wbuf := make([]uint32, chunk)
	rbuf := make([]uint32, chunk)
	n := (b.N/chunk + 1) * chunk
	k.Thread("writer", func(p *sim.Process) {
		w := f.Writer()
		for done := 0; done < n; done += chunk {
			w.WriteBurst(wbuf, sim.NS)
			p.Inc(sim.NS)
		}
	})
	k.Thread("reader", func(p *sim.Process) {
		r := f.Reader()
		for done := 0; done < n; done += chunk {
			r.ReadBurst(rbuf, sim.NS)
			p.Inc(sim.NS)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	var end sim.Time
	for {
		end += 100 * sim.US
		k.Run(end)
		if !f.Flush() && len(k.Blocked()) == 0 {
			break
		}
	}
	k.Shutdown()
}

// BenchmarkBurstPipeline regenerates the burst-dominated Fig. 5 row: the
// chunked three-module model on the bulk fast paths (TDburst) versus the
// word-at-a-time TDfull build.
func BenchmarkBurstPipeline(b *testing.B) {
	const blocks, words = 20, 1000
	for _, depth := range []int{64, 1024} {
		for _, burst := range []int{0, 64} {
			name := fmt.Sprintf("depth=%d/burst=%d", depth, burst)
			b.Run(name, func(b *testing.B) {
				var sw uint64
				for i := 0; i < b.N; i++ {
					r := pipeline.Run(pipeline.Config{
						Mode: pipeline.TDfull, Depth: depth, Blocks: blocks,
						WordsPerBlock: words, Burst: burst,
					})
					sw += r.Stats.ContextSwitches
				}
				b.ReportMetric(float64(sw)/float64(b.N), "ctxsw/op")
			})
		}
	}
}

// BenchmarkRegularFIFOOps is the baseline for BenchmarkSmartFIFOOps with a
// plain (untimed) FIFO of the same depth.
func BenchmarkRegularFIFOOps(b *testing.B) {
	k := sim.NewKernel("bench")
	f := fifo.New[int](k, "f", 1<<16)
	n := b.N
	k.Thread("writer", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			f.Write(i)
		}
	})
	k.Thread("reader", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			f.Read()
		}
	})
	b.ResetTimer()
	k.Run(sim.RunForever)
}

// BenchmarkContextSwitch measures one kernel thread context switch (a
// Wait round trip): the cost the Smart FIFO exists to avoid.
func BenchmarkContextSwitch(b *testing.B) {
	k := sim.NewKernel("bench")
	n := b.N
	k.Thread("p", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			p.Wait(sim.NS)
		}
	})
	b.ResetTimer()
	k.Run(sim.RunForever)
}

// BenchmarkInc measures the decoupled alternative to a context switch: a
// local-time increment.
func BenchmarkInc(b *testing.B) {
	k := sim.NewKernel("bench")
	n := b.N
	k.Thread("p", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			p.Inc(sim.NS)
		}
		p.Sync()
	})
	b.ResetTimer()
	k.Run(sim.RunForever)
}

// BenchmarkBlockPolicy compares the §III-A blocking policies on a
// blocking-heavy (depth-1 ping-pong) workload: the paper's sync-then-wait
// versus the Kahn-only wait-only variant.
func BenchmarkBlockPolicy(b *testing.B) {
	for _, pol := range []core.BlockPolicy{core.SyncThenWait, core.WaitOnly} {
		b.Run(pol.String(), func(b *testing.B) {
			k := sim.NewKernel("bench")
			f := core.NewSmart[int](k, "f", 1)
			f.SetBlockPolicy(pol)
			n := b.N
			k.Thread("writer", func(p *sim.Process) {
				for i := 0; i < n; i++ {
					f.Write(i)
					p.Inc(3 * sim.NS)
				}
			})
			k.Thread("reader", func(p *sim.Process) {
				for i := 0; i < n; i++ {
					f.Read()
					p.Inc(7 * sim.NS)
				}
			})
			b.ResetTimer()
			k.Run(sim.RunForever)
			b.ReportMetric(float64(k.Stats().ContextSwitches)/float64(b.N), "ctxsw/op")
		})
	}
}

// BenchmarkArbiter measures the method-process arbiter forwarding path.
func BenchmarkArbiter(b *testing.B) {
	k := sim.NewKernel("bench")
	out := core.NewSmart[int](k, "out", 1<<12)
	a := core.NewArbiter[int](k, "arb", out, 4, 64, sim.NS)
	n := b.N
	for c := 0; c < 4; c++ {
		c := c
		k.Thread(fmt.Sprintf("client%d", c), func(p *sim.Process) {
			for i := 0; i < (n+3)/4; i++ {
				a.In(c).Write(i)
				p.Inc(4 * sim.NS)
			}
		})
	}
	k.Thread("sink", func(p *sim.Process) {
		for i := 0; i < 4*((n+3)/4); i++ {
			out.Read()
		}
	})
	b.ResetTimer()
	k.Run(sim.RunForever)
	k.Shutdown()
}

// BenchmarkNoCStream measures end-to-end NoC throughput: one stream across
// a 4x2 mesh, Smart FIFO endpoints, packetizing NIs, method routers.
func BenchmarkNoCStream(b *testing.B) {
	k := sim.NewKernel("bench")
	m := noc.NewMesh(k, "noc", noc.Config{Width: 4, Height: 2, Cycle: sim.NS, FIFODepth: 4})
	src := core.NewSmart[uint32](k, "src", 64)
	dst := core.NewSmart[uint32](k, "dst", 64)
	m.AttachNI("in", 0, 0, src, nil, noc.NIConfig{PacketLen: 8, Cycle: sim.NS, Dst: m.RouterIndex(3, 1)})
	m.AttachNI("out", 3, 1, nil, dst, noc.NIConfig{PacketLen: 8, Cycle: sim.NS})
	n := (b.N/8 + 1) * 8
	k.Thread("producer", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			src.Write(uint32(i))
			p.Inc(2 * sim.NS)
		}
	})
	k.Thread("consumer", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			dst.Read()
		}
	})
	b.ResetTimer()
	k.Run(sim.RunForever)
	k.Shutdown()
}

// BenchmarkPEQ measures the TLM payload-event-queue baseline the Smart
// FIFO generalizes.
func BenchmarkPEQ(b *testing.B) {
	k := sim.NewKernel("bench")
	q := peq.New[int](k, "q")
	n := b.N
	k.Thread("producer", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			p.Inc(sim.NS)
			q.Notify(i, 0)
		}
	})
	k.Thread("consumer", func(p *sim.Process) {
		for got := 0; got < n; {
			_, ok := q.Get()
			if !ok {
				p.WaitEvent(q.Event())
				continue
			}
			got++
		}
	})
	b.ResetTimer()
	k.Run(sim.RunForever)
	k.Shutdown()
}

// BenchmarkMonitorSize measures the O(depth) monitor access (§III-C),
// which the paper accepts because monitor accesses are rare.
func BenchmarkMonitorSize(b *testing.B) {
	for _, depth := range []int{8, 64, 1024} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			k := sim.NewKernel("bench")
			f := core.NewSmart[int](k, "f", depth)
			n := b.N
			k.Thread("writer", func(p *sim.Process) {
				for i := 0; i < depth/2; i++ {
					f.Write(i)
					p.Inc(sim.NS)
				}
			})
			k.Thread("monitor", func(p *sim.Process) {
				p.Wait(sim.Time(depth) * sim.NS)
				s := 0
				for i := 0; i < n; i++ {
					s += f.Size()
				}
				_ = s
			})
			b.ResetTimer()
			k.Run(sim.RunForever)
			k.Shutdown()
		})
	}
}

// BenchmarkShardedPipeline measures the conservative multi-kernel
// execution of the Fig. 5 model: the same TDfull build partitioned over
// 1..3 kernels by internal/par, with the FIFOs as ShardedFIFO bridges.
// On a multi-core host the 3-shard run should beat single-kernel TDfull;
// advances/op counts the kernel advances the coordinator dispatched.
func BenchmarkShardedPipeline(b *testing.B) {
	const blocks, words = 20, 1000
	for _, depth := range []int{16, 256} {
		for _, shards := range []int{2, 3} {
			b.Run(fmt.Sprintf("depth=%d/shards=%d", depth, shards), func(b *testing.B) {
				var advances uint64
				for i := 0; i < b.N; i++ {
					r := pipeline.Run(pipeline.Config{
						Mode: pipeline.TDfull, Depth: depth, Shards: shards,
						Blocks: blocks, WordsPerBlock: words,
					})
					advances += r.Advances
				}
				b.ReportMetric(float64(advances)/float64(b.N), "advances/op")
			})
		}
	}
}

// BenchmarkClusteredSoC measures the clustered SoC variant on 1 vs N
// kernels: the speedup axis of the sharded execution.
func BenchmarkClusteredSoC(b *testing.B) {
	cfg := soc.Config{Pipelines: 4, Jobs: 2, WordsPerJob: 512, FIFODepth: 16, Seed: 7}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var advances uint64
			for i := 0; i < b.N; i++ {
				r := soc.RunClustered(cfg, shards)
				advances += r.Advances
			}
			b.ReportMetric(float64(advances)/float64(b.N), "advances/op")
		})
	}
}
