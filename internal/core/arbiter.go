package core

import (
	"fmt"

	"repro/internal/fifo"
	"repro/internal/sim"
)

// Arbiter serializes several producer processes onto a single Smart FIFO
// writer side. §III requires each Smart FIFO side to be driven by one
// process with non-decreasing local dates; when a design has several
// producers, "an arbiter must be added". The arbiter is itself modeled the
// way the paper models arbitration-heavy hardware (§III-B, §IV-C): a
// run-to-completion method process — no context to store — that uses Inc
// for its per-grant latency.
//
// Producers write into per-client Smart FIFO request queues (so producers
// may be temporally decoupled); the arbiter method drains them round-robin
// into the output channel, spending Grant of local time per forwarded
// word.
type Arbiter[T any] struct {
	k    *sim.Kernel
	name string
	out  fifo.Writer[T]
	in   []*SmartFIFO[T]

	grant     sim.Time
	next      int      // round-robin scan start
	busyUntil sim.Time // date the arbiter finishes its last grant

	proc     *sim.Process
	forwards uint64
}

// NewArbiter creates an arbiter with nIn request queues of the given depth
// in front of out. grant is the arbitration latency per forwarded word.
func NewArbiter[T any](k *sim.Kernel, name string, out fifo.Writer[T], nIn, depth int, grant sim.Time) *Arbiter[T] {
	if nIn <= 0 {
		panic(fmt.Sprintf("core: arbiter %s: need at least one input", name))
	}
	if grant < 0 {
		panic(fmt.Sprintf("core: arbiter %s: negative grant latency", name))
	}
	a := &Arbiter[T]{k: k, name: name, out: out, grant: grant}
	events := make([]*sim.Event, 0, nIn+1)
	for i := 0; i < nIn; i++ {
		in := NewSmart[T](k, fmt.Sprintf("%s.in%d", name, i), depth)
		a.in = append(a.in, in)
		events = append(events, in.NotEmpty())
	}
	events = append(events, out.NotFull())
	a.proc = k.MethodNoInit(name, a.step, events...)
	return a
}

// In returns the writer side of request queue i; hand it to producer i.
func (a *Arbiter[T]) In(i int) *SmartFIFO[T] { return a.in[i] }

// Inputs returns the number of request queues.
func (a *Arbiter[T]) Inputs() int { return len(a.in) }

// Forwards returns the number of words forwarded so far.
func (a *Arbiter[T]) Forwards() uint64 { return a.forwards }

// step is the arbiter method body: starting from the round-robin pointer,
// forward every externally available word until the output back-pressures
// or all request queues are (externally) empty. Static sensitivity on the
// request queues' NotEmpty and the output's NotFull re-activates it.
func (a *Arbiter[T]) step(p *sim.Process) {
	// Resume at the date the previous grants finished: the arbiter is a
	// single resource.
	p.AdvanceLocalTo(a.busyUntil)
	for scanned := 0; scanned < len(a.in); {
		i := (a.next + scanned) % len(a.in)
		in := a.in[i]
		if in.IsEmpty() {
			scanned++
			continue
		}
		if a.out.IsFull() {
			// Re-activated by out.NotFull (static sensitivity).
			break
		}
		v, _ := in.TryRead()
		p.Inc(a.grant)
		a.out.TryWrite(v)
		a.forwards++
		a.busyUntil = p.LocalTime()
		a.next = (i + 1) % len(a.in)
		scanned = 0
	}
}
