package core

import (
	"fmt"

	"repro/internal/fifo"
	"repro/internal/sim"
)

// ShardedFIFO is a Smart FIFO whose writer and reader sides live on
// different kernels (simulation shards). It is the cross-shard bridge of
// the conservative parallel scheduler (internal/par): the same cell
// timestamps that let a single-kernel Smart FIFO advance a blocked
// process's local clock also tell a shard coordinator how far the reading
// shard may safely run ahead — the insertion dates are the lookahead, so no
// null messages are needed.
//
// Each endpoint keeps its own mirror of the cell ring:
//
//   - the writer endpoint tracks which cells are busy and the freeing date
//     of each free cell (its credit window). Write fills a cell exactly
//     like SmartFIFO.Write — advancing the writer's local clock to the
//     cell's freeing date, stamping the insertion date — and stages the
//     datum in an outbox;
//   - the reader endpoint tracks delivered data with insertion dates.
//     Read pops exactly like SmartFIFO.Read — advancing the reader's
//     local clock to the insertion date — and stages the freeing date for
//     the writer.
//
// Flush, called only at coordinator barriers (no kernel running), moves the
// outbox into the reader's cells and the freeing dates into the writer's
// credit window, waking blocked endpoint processes. Because deliveries are
// deferred to barriers, the endpoints' external views lag the real state by
// at most one round — but every date carried is exact, so blocking
// Read/Write produce local dates identical to a single-kernel SmartFIFO
// (pinned by TestShardedFIFOMatchesSmart and the 1-vs-N-shard trace
// equivalence tests). The two-test IsEmpty/IsFull rules and the dated Size
// monitor are evaluated per endpoint over that endpoint's mirror; they are
// exact for dates up to the bridge's frontier.
//
// Blocking always uses the SyncThenWait discipline (see BlockPolicy); the
// WaitOnly ablation is not offered across shards.
type ShardedFIFO[T any] struct {
	name string

	w ShardedWriter[T]
	r ShardedReader[T]
}

// bridgeMsg is one staged cross-shard datum.
type bridgeMsg[T any] struct {
	data       T
	insertDate sim.Time
}

// ShardedWriter is the writer-side endpoint, owned by the writer kernel.
// It implements fifo.WriteEnd.
type ShardedWriter[T any] struct {
	f *ShardedFIFO[T]
	k *sim.Kernel

	cells     []cell[T] // data unused: only busy/insertDate/freeDate
	firstBusy int
	firstFree int
	nBusy     int

	outbox []bridgeMsg[T] // writes staged since the last Flush

	cellFreed *sim.Event
	notFull   *sim.Event

	lastWriteDate sim.Time
	writer        *sim.Process // sole writing process, nil before first write
	multiWriter   bool         // a second process wrote: disable the local-date frontier refinement

	stats Stats
}

// ShardedReader is the reader-side endpoint, owned by the reader kernel.
// It implements fifo.ReadEnd.
type ShardedReader[T any] struct {
	f *ShardedFIFO[T]
	k *sim.Kernel

	cells     []cell[T]
	firstBusy int
	firstFree int
	nBusy     int

	pendingFrees []sim.Time // freeing dates staged since the last Flush

	cellFilled *sim.Event
	notEmpty   *sim.Event

	lastReadDate sim.Time
	// retryAt is the reader's local date while it is blocked on an empty
	// endpoint: the date at which the next pop (and hence the next
	// freeing) can happen. Frontier consults it when the writer is
	// credit-blocked — the freeing-date half of the Smart-FIFO lookahead.
	retryAt     sim.Time
	reader      *sim.Process
	multiReader bool

	stats Stats
}

// readFloor is a lower bound on the date of the reader's next pop.
func (r *ShardedReader[T]) readFloor() sim.Time {
	if !r.multiReader && r.retryAt > r.lastReadDate {
		return r.retryAt
	}
	return r.lastReadDate
}

// NewSharded creates a sharded Smart FIFO with the given depth, its writer
// side on kernel wk and its reader side on kernel rk. The two kernels may
// be the same (a degenerate bridge, still flushed at barriers), which is
// how a sharded model collapses onto one kernel for 1-shard validation
// runs.
func NewSharded[T any](wk, rk *sim.Kernel, name string, depth int) *ShardedFIFO[T] {
	if depth <= 0 {
		panic(fmt.Sprintf("core: %s: non-positive depth %d", name, depth))
	}
	f := &ShardedFIFO[T]{name: name}
	f.w = ShardedWriter[T]{
		f:         f,
		k:         wk,
		cells:     make([]cell[T], depth),
		cellFreed: sim.NewEvent(wk, name+".w.cell_freed"),
		notFull:   sim.NewEvent(wk, name+".w.not_full"),
	}
	f.r = ShardedReader[T]{
		f:          f,
		k:          rk,
		cells:      make([]cell[T], depth),
		cellFilled: sim.NewEvent(rk, name+".r.cell_filled"),
		notEmpty:   sim.NewEvent(rk, name+".r.not_empty"),
	}
	return f
}

// Name returns the channel name.
func (f *ShardedFIFO[T]) Name() string { return f.name }

// Depth returns the capacity in cells.
func (f *ShardedFIFO[T]) Depth() int { return len(f.w.cells) }

// Writer returns the writer-side endpoint, to be used only by processes of
// the writer kernel.
func (f *ShardedFIFO[T]) Writer() *ShardedWriter[T] { return &f.w }

// Reader returns the reader-side endpoint, to be used only by processes of
// the reader kernel.
func (f *ShardedFIFO[T]) Reader() *ShardedReader[T] { return &f.r }

// WriterKernel returns the kernel owning the writer side.
func (f *ShardedFIFO[T]) WriterKernel() *sim.Kernel { return f.w.k }

// ReaderKernel returns the kernel owning the reader side.
func (f *ShardedFIFO[T]) ReaderKernel() *sim.Kernel { return f.r.k }

// Stats merges both endpoints' counters. Call it only while neither kernel
// is running (between coordinator rounds or after a run).
func (f *ShardedFIFO[T]) Stats() Stats {
	w, r := f.w.stats, f.r.stats
	return Stats{
		Writes:         w.Writes,
		Reads:          r.Reads,
		WriterBlocks:   w.WriterBlocks,
		ReaderBlocks:   r.ReaderBlocks,
		WriterAdvances: w.WriterAdvances,
		ReaderAdvances: r.ReaderAdvances,
	}
}

// Flush moves staged data and credits across the shard boundary and
// reports whether anything moved. It must be called only at a coordinator
// barrier, while neither kernel is running: the barrier provides the
// happens-before edges, so the endpoints themselves need no locking.
func (f *ShardedFIFO[T]) Flush() bool {
	w, r := &f.w, &f.r
	moved := false
	if len(w.outbox) > 0 {
		wasEmpty := r.nBusy == 0
		for i := range w.outbox {
			m := &w.outbox[i]
			c := &r.cells[r.firstFree]
			c.data = m.data
			c.busy = true
			c.insertDate = m.insertDate
			var zero T
			m.data = zero
			r.firstFree = (r.firstFree + 1) % len(r.cells)
			r.nBusy++
		}
		w.outbox = w.outbox[:0]
		// Wake a blocked reader and refresh the external view: the FIFO
		// becomes non-empty at the insertion date of the first datum.
		r.cellFilled.NotifyDelta()
		if wasEmpty {
			r.notEmpty.NotifyAtReplace(r.cells[r.firstBusy].insertDate)
		}
		moved = true
	}
	if len(r.pendingFrees) > 0 {
		wasFull := w.nBusy == len(w.cells)
		for _, fd := range r.pendingFrees {
			c := &w.cells[w.firstBusy]
			c.busy = false
			c.freeDate = fd
			w.firstBusy = (w.firstBusy + 1) % len(w.cells)
			w.nBusy--
		}
		r.pendingFrees = r.pendingFrees[:0]
		// Wake a blocked writer; the FIFO becomes non-full at the freeing
		// date of the first available cell.
		w.cellFreed.NotifyDelta()
		if wasFull {
			w.notFull.NotifyAtReplace(w.cells[w.firstFree].freeDate)
		}
		moved = true
	}
	return moved
}

// Frontier returns a lower bound on the insertion dates of everything the
// bridge may still deliver: the reader's shard may safely simulate up to
// and including this date. Call it only at a barrier, after Flush (an
// undelivered outbox entry could be older than the bound).
//
// The bound is the §III access discipline turned into lookahead — no null
// messages, just the cell timestamps:
//
//   - write dates on a side never decrease, so the last insertion date
//     bounds all future ones; the writer process's own local date (when a
//     single process owns the side) and its kernel's date tighten it;
//   - when the credit window has room, the next write lands in a known
//     cell and advances to that cell's freeing date;
//   - when the window is full, the writer is throttled by the reader
//     itself: the next insertion follows the reader's next pop, so the
//     reader's own read floor is the bound. This is what breaks the
//     classic conservative-deadlock cycle without null messages.
//
// A terminated writer can never deliver again — the frontier becomes
// sim.TimeMax and the reader runs unthrottled.
func (f *ShardedFIFO[T]) Frontier() sim.Time {
	w, r := &f.w, &f.r
	if !w.multiWriter && w.writer != nil && w.writer.Terminated() {
		return sim.TimeMax
	}
	front := w.lastWriteDate
	if now := w.k.Now(); now > front {
		front = now
	}
	if !w.multiWriter && w.writer != nil {
		if lt := w.writer.LocalTime(); lt > front {
			front = lt
		}
	}
	if w.nBusy < len(w.cells) {
		if fd := w.cells[w.firstFree].freeDate; fd > front {
			front = fd
		}
	} else if rf := r.readFloor(); rf > front {
		front = rf
	}
	return front
}

// --- writer endpoint ---

// Name returns the channel name.
func (w *ShardedWriter[T]) Name() string { return w.f.name }

// Depth returns the capacity in cells.
func (w *ShardedWriter[T]) Depth() int { return len(w.cells) }

// Kernel returns the kernel owning this endpoint.
func (w *ShardedWriter[T]) Kernel() *sim.Kernel { return w.k }

func (w *ShardedWriter[T]) caller(op string) *sim.Process {
	p := w.k.Current()
	if p == nil {
		panic(fmt.Sprintf("core: %s: %s outside a process", w.f.name, op))
	}
	return p
}

// Write appends v, exactly like SmartFIFO.Write: if the credit window is
// exhausted the calling thread synchronizes and parks until Flush returns
// freed cells; otherwise the caller's local clock advances to the freeing
// date of the cell it fills and the write costs no context switch.
func (w *ShardedWriter[T]) Write(v T) {
	p := w.caller("Write")
	checkSideOrderFor(w.f.name, p, &w.lastWriteDate, "write")
	for w.nBusy == len(w.cells) {
		w.stats.WriterBlocks++
		if !p.Synchronized() {
			p.Sync()
			continue
		}
		local := p.LocalTime()
		p.WaitEvent(w.cellFreed)
		p.SetLocalDate(local)
	}
	c := &w.cells[w.firstFree]
	if c.freeDate > p.LocalTime() {
		w.stats.WriterAdvances++
	}
	p.AdvanceLocalTo(c.freeDate)
	c.busy = true
	c.insertDate = p.LocalTime()
	w.firstFree = (w.firstFree + 1) % len(w.cells)
	w.nBusy++
	w.stats.Writes++
	w.lastWriteDate = p.LocalTime()
	if w.writer == nil {
		w.writer = p
	} else if w.writer != p {
		w.multiWriter = true
	}
	w.outbox = append(w.outbox, bridgeMsg[T]{data: v, insertDate: c.insertDate})
	// Writer-side external view: still not full, but the next free cell
	// only frees in the future.
	if w.nBusy < len(w.cells) {
		if nc := &w.cells[w.firstFree]; nc.freeDate > w.k.Now() {
			w.notFull.NotifyAtReplace(nc.freeDate)
		}
	}
}

// IsFull is the two-test writer rule evaluated over the credit window:
// full iff every cell is busy, or the freeing date of the first free cell
// is after the caller's local date.
func (w *ShardedWriter[T]) IsFull() bool {
	p := w.caller("IsFull")
	if w.nBusy == len(w.cells) {
		return true
	}
	return w.cells[w.firstFree].freeDate > p.LocalTime()
}

// TryWrite appends v if the endpoint is externally non-full at the
// caller's local date. Never blocks; safe from method processes.
func (w *ShardedWriter[T]) TryWrite(v T) bool {
	if w.IsFull() {
		return false
	}
	w.Write(v)
	return true
}

// NotFull is the writer-side writable-event, notified at the freeing date
// of the first available cell (as of the last barrier).
func (w *ShardedWriter[T]) NotFull() *sim.Event { return w.notFull }

// Size is the dated monitor count over the writer's mirror (§III-C rules).
func (w *ShardedWriter[T]) Size() int {
	p := w.caller("Size")
	if !p.IsMethod() {
		p.Sync()
	}
	return datedSize(w.cells, p.LocalTime())
}

// --- reader endpoint ---

// Name returns the channel name.
func (r *ShardedReader[T]) Name() string { return r.f.name }

// Depth returns the capacity in cells.
func (r *ShardedReader[T]) Depth() int { return len(r.cells) }

// Kernel returns the kernel owning this endpoint.
func (r *ShardedReader[T]) Kernel() *sim.Kernel { return r.k }

func (r *ShardedReader[T]) caller(op string) *sim.Process {
	p := r.k.Current()
	if p == nil {
		panic(fmt.Sprintf("core: %s: %s outside a process", r.f.name, op))
	}
	return p
}

// Read pops the oldest delivered value, exactly like SmartFIFO.Read: park
// (after synchronizing) only when nothing has been delivered; otherwise
// advance the reader's local clock to the datum's insertion date.
func (r *ShardedReader[T]) Read() T {
	p := r.caller("Read")
	checkSideOrderFor(r.f.name, p, &r.lastReadDate, "read")
	if r.reader == nil {
		r.reader = p
	} else if r.reader != p {
		r.multiReader = true
	}
	for r.nBusy == 0 {
		r.stats.ReaderBlocks++
		if t := p.LocalTime(); t > r.retryAt {
			r.retryAt = t
		}
		if !p.Synchronized() {
			p.Sync()
			continue
		}
		local := p.LocalTime()
		p.WaitEvent(r.cellFilled)
		p.SetLocalDate(local)
	}
	c := &r.cells[r.firstBusy]
	if c.insertDate > p.LocalTime() {
		r.stats.ReaderAdvances++
	}
	p.AdvanceLocalTo(c.insertDate)
	v := c.data
	var zero T
	c.data = zero
	c.busy = false
	c.freeDate = p.LocalTime()
	r.firstBusy = (r.firstBusy + 1) % len(r.cells)
	r.nBusy--
	r.stats.Reads++
	r.lastReadDate = p.LocalTime()
	r.pendingFrees = append(r.pendingFrees, c.freeDate)
	// Reader-side external view: the next datum exists but becomes
	// visible only at its (future) insertion date.
	if r.nBusy > 0 {
		if nc := &r.cells[r.firstBusy]; nc.insertDate > r.k.Now() {
			r.notEmpty.NotifyAtReplace(nc.insertDate)
		}
	}
	return v
}

// IsEmpty is the two-test reader rule over delivered data: empty iff no
// cell is busy, or the insertion date of the first busy cell is after the
// caller's local date.
func (r *ShardedReader[T]) IsEmpty() bool {
	p := r.caller("IsEmpty")
	if r.nBusy == 0 {
		return true
	}
	return r.cells[r.firstBusy].insertDate > p.LocalTime()
}

// TryRead pops the oldest delivered value if the endpoint is externally
// non-empty at the caller's local date. Never blocks; safe from method
// processes.
func (r *ShardedReader[T]) TryRead() (T, bool) {
	if r.IsEmpty() {
		var zero T
		return zero, false
	}
	return r.Read(), true
}

// NotEmpty is the reader-side readable-event, notified at the insertion
// date of the first available datum (as of the last barrier).
func (r *ShardedReader[T]) NotEmpty() *sim.Event { return r.notEmpty }

// Size is the dated monitor count over the reader's mirror (§III-C rules).
func (r *ShardedReader[T]) Size() int {
	p := r.caller("Size")
	if !p.IsMethod() {
		p.Sync()
	}
	return datedSize(r.cells, p.LocalTime())
}

// datedSize applies the four-rule §III-C table to a cell mirror at date
// now: the number of cells the real FIFO holds at that date, as far as
// this endpoint can know.
func datedSize[T any](cells []cell[T], now sim.Time) int {
	n := 0
	for i := range cells {
		c := &cells[i]
		if c.busy {
			if c.insertDate <= now || c.freeDate > now {
				n++
			}
		} else {
			if c.freeDate > now && c.insertDate <= now {
				n++
			}
		}
	}
	return n
}

// checkSideOrderFor enforces the §III non-decreasing-date discipline for a
// named channel side (shared with SmartFIFO.checkSideOrder).
func checkSideOrderFor(name string, p *sim.Process, last *sim.Time, side string) {
	t := p.LocalTime()
	if t < *last {
		panic(fmt.Sprintf(
			"core: %s: %s access by %q at local date %v after an access at %v; "+
				"each side needs non-decreasing dates (add an Arbiter if several processes share a side)",
			name, side, p.Name(), t, *last))
	}
	*last = t
}

var (
	_ fifo.WriteEnd[int] = (*ShardedWriter[int])(nil)
	_ fifo.ReadEnd[int]  = (*ShardedReader[int])(nil)
)
