package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/fifo"
	"repro/internal/sim"
)

// ShardedFIFO is a Smart FIFO whose writer and reader sides live on
// different kernels (simulation shards). It is the cross-shard bridge of
// the conservative parallel scheduler (internal/par): the same cell
// timestamps that let a single-kernel Smart FIFO advance a blocked
// process's local clock also tell a shard coordinator how far the reading
// shard may safely run ahead — the insertion dates are the lookahead, so no
// null messages are needed.
//
// Each endpoint keeps its own mirror of the cell ring:
//
//   - the writer endpoint tracks which cells are busy and the freeing date
//     of each free cell (its credit window). Write fills a cell exactly
//     like SmartFIFO.Write — advancing the writer's local clock to the
//     cell's freeing date, stamping the insertion date — and stages the
//     datum in an outbox;
//   - the reader endpoint tracks delivered data with insertion dates.
//     Read pops exactly like SmartFIFO.Read — advancing the reader's
//     local clock to the insertion date — and stages the freeing date for
//     the writer.
//
// Flush, called only at coordinator barriers (no kernel running), moves the
// outbox into the reader's cells and the freeing dates into the writer's
// credit window, waking blocked endpoint processes. Because deliveries are
// deferred to barriers, the endpoints' external views lag the real state by
// at most one round — but every date carried is exact, so blocking
// Read/Write produce local dates identical to a single-kernel SmartFIFO
// (pinned by TestShardedFIFOMatchesSmart and the 1-vs-N-shard trace
// equivalence tests). The two-test IsEmpty/IsFull rules and the dated Size
// monitor are evaluated per endpoint over that endpoint's mirror; they are
// exact for dates up to the bridge's frontier.
//
// Both endpoints offer the burst interface of burst.go: bulk runs over the
// credit window (writes) or the delivered cells (reads), with outbox
// staging and freeing-date credits batched as runs. The bulk paths are
// bit-identical to the scalar endpoint loops, so a sharded burst model
// keeps the single-kernel dates.
//
// Blocking always uses the SyncThenWait discipline (see BlockPolicy); the
// WaitOnly ablation is not offered across shards.
type ShardedFIFO[T any] struct {
	name string

	w ShardedWriter[T]
	r ShardedReader[T]
	x xfer[T]
}

// xfer is the cross-shard mailbox between the two endpoints: the only
// state both shards touch while their kernels run concurrently. Each
// side moves its staged batch in and the peer's batch out under mu at
// its own kernel safe points (between Steps), so endpoint internals
// never need locking. The published bounds let the reading shard derive
// its horizon the moment the writer publishes one, without a global
// barrier.
type xfer[T any] struct {
	mu sync.Mutex

	// data/ins are delivered-but-unimported writes (writer → reader);
	// frees are returned-but-unimported credits (reader → writer).
	data  []T
	ins   []sim.Time
	frees []sim.Time

	// base is the writer-published frontier base: a lower bound, over
	// writer-side state only, on the insertion date of anything the
	// writer stages after the publish. Monotone (the max of valid lower
	// bounds is a valid lower bound). blocked records whether the credit
	// window was full at publish time — the reader then completes the
	// bound with its own read floor (or the oldest outstanding credit).
	// term latches when the sole writer terminated: no future delivery.
	base    sim.Time
	blocked bool
	term    bool

	// rFloor is the reader-published pop floor (monotone): every future
	// credit carries a freeing date at or after it.
	rFloor sim.Time

	// baseA/rFloorA/wfA mirror the published bounds for lock-free
	// observation (diagnostics, benchmarks); the authoritative values
	// are read under mu by the exchange halves.
	baseA   atomic.Int64
	rFloorA atomic.Int64
	wfA     atomic.Int64

	// traffic accumulates this bridge's cross-boundary activity (under
	// mu, on the flush paths only); m, captured at construction, is the
	// optional shared metrics sink (see metrics.go).
	traffic Traffic
	m       *BridgeMetrics
}

// ShardedWriter is the writer-side endpoint, owned by the writer kernel.
// It implements fifo.WriteEnd.
type ShardedWriter[T any] struct {
	f *ShardedFIFO[T]
	k *sim.Kernel

	cells ring[T] // payload unused: only the occupancy and date mirrors

	// outData/outIns are the writes staged since the last Flush,
	// struct-of-arrays so Flush can move them with copy.
	outData []T
	outIns  []sim.Time

	cellFreed *sim.Event
	notFull   *sim.Event

	lastWriteDate sim.Time
	writer        *sim.Process // sole writing process, nil before first write
	multiWriter   bool         // a second process wrote: disable the local-date frontier refinement

	stats Stats
}

// ShardedReader is the reader-side endpoint, owned by the reader kernel.
// It implements fifo.ReadEnd.
type ShardedReader[T any] struct {
	f *ShardedFIFO[T]
	k *sim.Kernel

	cells ring[T]

	pendingFrees []sim.Time // freeing dates staged since the last Flush

	cellFilled *sim.Event
	notEmpty   *sim.Event

	lastReadDate sim.Time
	// retryAt is the reader's local date while it is blocked on an empty
	// endpoint: the date at which the next pop (and hence the next
	// freeing) can happen. Frontier consults it when the writer is
	// credit-blocked — the freeing-date half of the Smart-FIFO lookahead.
	retryAt     sim.Time
	reader      *sim.Process
	multiReader bool

	// effFrontier caches the highest effective inbound frontier this
	// endpoint has derived (FlushReaderSide). Monotone: an old bound
	// stays valid because the set of future deliveries only shrinks.
	// Touched only by the reader shard's worker.
	effFrontier sim.Time

	stats Stats
}

// readFloor is a lower bound on the date of the reader's next pop.
func (r *ShardedReader[T]) readFloor() sim.Time {
	if !r.multiReader && r.retryAt > r.lastReadDate {
		return r.retryAt
	}
	return r.lastReadDate
}

// NewSharded creates a sharded Smart FIFO with the given depth, its writer
// side on kernel wk and its reader side on kernel rk. The two kernels may
// be the same (a degenerate bridge, still flushed at barriers), which is
// how a sharded model collapses onto one kernel for 1-shard validation
// runs.
func NewSharded[T any](wk, rk *sim.Kernel, name string, depth int) *ShardedFIFO[T] {
	if depth <= 0 {
		panic(fmt.Sprintf("core: %s: non-positive depth %d", name, depth))
	}
	f := &ShardedFIFO[T]{name: name}
	f.x.m = defaultBridgeMetrics.Load()
	f.w = ShardedWriter[T]{
		f:         f,
		k:         wk,
		cells:     newRing[T](depth),
		cellFreed: sim.NewEvent(wk, name+".w.cell_freed"),
		notFull:   sim.NewEvent(wk, name+".w.not_full"),
	}
	f.r = ShardedReader[T]{
		f:          f,
		k:          rk,
		cells:      newRing[T](depth),
		cellFilled: sim.NewEvent(rk, name+".r.cell_filled"),
		notEmpty:   sim.NewEvent(rk, name+".r.not_empty"),
	}
	return f
}

// Name returns the channel name.
func (f *ShardedFIFO[T]) Name() string { return f.name }

// Depth returns the capacity in cells.
func (f *ShardedFIFO[T]) Depth() int { return f.w.cells.depth() }

// Writer returns the writer-side endpoint, to be used only by processes of
// the writer kernel.
func (f *ShardedFIFO[T]) Writer() *ShardedWriter[T] { return &f.w }

// Reader returns the reader-side endpoint, to be used only by processes of
// the reader kernel.
func (f *ShardedFIFO[T]) Reader() *ShardedReader[T] { return &f.r }

// WriterKernel returns the kernel owning the writer side.
func (f *ShardedFIFO[T]) WriterKernel() *sim.Kernel { return f.w.k }

// ReaderKernel returns the kernel owning the reader side.
func (f *ShardedFIFO[T]) ReaderKernel() *sim.Kernel { return f.r.k }

// Stats merges both endpoints' counters. Call it only while neither kernel
// is running (between coordinator rounds or after a run).
func (f *ShardedFIFO[T]) Stats() Stats {
	w, r := f.w.stats, f.r.stats
	return Stats{
		Writes:         w.Writes,
		Reads:          r.Reads,
		WriterBlocks:   w.WriterBlocks,
		ReaderBlocks:   r.ReaderBlocks,
		WriterAdvances: w.WriterAdvances,
		ReaderAdvances: r.ReaderAdvances,
	}
}

// Flush moves everything staged on either side across the shard boundary
// — outbox and mailbox data to the reader, pending and mailbox credits to
// the writer — and reports whether anything moved. It must be called only
// at a global safe point (a coordinator barrier or all-parked rendezvous),
// while neither kernel is running. Both directions move as bulk ring
// copies (≤ 2 contiguous segments each). It also refreshes the published
// bounds, since a global safe point is trivially a safe point for each
// side.
func (f *ShardedFIFO[T]) Flush() bool {
	f.x.mu.Lock()
	defer f.x.mu.Unlock()
	a := f.stageOutboxLocked()
	b := f.deliverDataLocked()
	c := f.stageFreesLocked()
	d := f.deliverFreesLocked()
	f.publishWriterBoundsLocked()
	f.publishReaderFloorLocked()
	return a || b || c || d
}

// stageOutboxLocked moves the writer outbox into the mailbox. Writer-side
// safe point; x.mu held.
func (f *ShardedFIFO[T]) stageOutboxLocked() bool {
	w, x := &f.w, &f.x
	if len(w.outData) == 0 {
		return false
	}
	x.data = append(x.data, w.outData...)
	x.ins = append(x.ins, w.outIns...)
	n := uint64(len(w.outData))
	x.traffic.WordsCrossed += n
	x.traffic.Flushes++
	if x.m != nil {
		x.m.WordsCrossed.Add(n)
		x.m.FlushBatchWords.Observe(float64(n))
	}
	clear(w.outData) // release payload references to the GC
	w.outData = w.outData[:0]
	w.outIns = w.outIns[:0]
	return true
}

// deliverDataLocked moves mailbox data into the reader's cells, waking a
// blocked reader and refreshing the external view (the FIFO becomes
// non-empty at the insertion date of the first datum). Reader-side safe
// point; x.mu held.
func (f *ShardedFIFO[T]) deliverDataLocked() bool {
	x, r := &f.x, &f.r
	k := len(x.data)
	if k == 0 {
		return false
	}
	rc := &r.cells
	wasEmpty := rc.nBusy == 0
	q0 := rc.firstFree
	copyIn(rc.data, q0, x.data)
	copyIn(rc.ins, q0, x.ins)
	rc.firstFree = wrap(q0+k, rc.depth())
	rc.nBusy += k
	clear(x.data)
	x.data = x.data[:0]
	x.ins = x.ins[:0]
	r.cellFilled.NotifyDelta()
	if wasEmpty {
		r.notEmpty.NotifyAtReplace(rc.ins[rc.firstBusy])
	}
	return true
}

// stageFreesLocked moves the reader's pending freeing dates into the
// mailbox. Reader-side safe point; x.mu held.
func (f *ShardedFIFO[T]) stageFreesLocked() bool {
	r, x := &f.r, &f.x
	if len(r.pendingFrees) == 0 {
		return false
	}
	x.frees = append(x.frees, r.pendingFrees...)
	r.pendingFrees = r.pendingFrees[:0]
	return true
}

// deliverFreesLocked moves mailbox credits into the writer's window,
// waking a blocked writer (the FIFO becomes non-full at the freeing date
// of the first available cell). Writer-side safe point; x.mu held.
func (f *ShardedFIFO[T]) deliverFreesLocked() bool {
	x, w := &f.x, &f.w
	k := len(x.frees)
	if k == 0 {
		return false
	}
	wc := &w.cells
	wasFull := wc.nBusy == len(wc.ins)
	q0 := wc.firstBusy
	copyIn(wc.free, q0, x.frees)
	wc.firstBusy = wrap(q0+k, wc.depth())
	wc.nBusy -= k
	x.traffic.CreditReturns += uint64(k)
	if x.m != nil {
		x.m.CreditReturns.Add(uint64(k))
	}
	x.frees = x.frees[:0]
	w.cellFreed.NotifyDelta()
	if wasFull {
		w.notFull.NotifyAtReplace(wc.free[wc.firstFree])
	}
	return true
}

// publishWriterBoundsLocked recomputes the writer-side frontier terms and
// publishes them into the mailbox, monotonically. It must only run with
// the outbox empty (already staged): the base covers future writes, and a
// withheld outbox entry could be older than it. Writer-side safe point;
// x.mu held. Reports whether the published state changed.
func (f *ShardedFIFO[T]) publishWriterBoundsLocked() bool {
	w, x := &f.w, &f.x
	if !w.multiWriter && w.writer != nil && w.writer.Terminated() {
		if !x.term {
			x.term = true
			x.baseA.Store(int64(sim.TimeMax))
			return true
		}
		return false
	}
	base := w.lastWriteDate
	if now := w.k.Now(); now > base {
		base = now
	}
	if !w.multiWriter && w.writer != nil {
		if lt := w.writer.LocalTime(); lt > base {
			base = lt
		}
	}
	wc := &w.cells
	blocked := wc.nBusy == len(wc.ins)
	if !blocked {
		if fd := wc.free[wc.firstFree]; fd > base {
			base = fd
		}
	}
	changed := false
	if base > x.base {
		x.base = base
		x.baseA.Store(int64(base))
		changed = true
	}
	if blocked != x.blocked {
		x.blocked = blocked
		changed = true
	}
	return changed
}

// publishReaderFloorLocked publishes the reader's pop floor, monotonically.
// Reader-side safe point; x.mu held. Reports whether the floor rose.
func (f *ShardedFIFO[T]) publishReaderFloorLocked() bool {
	r, x := &f.r, &f.x
	if rf := r.readFloor(); rf > x.rFloor {
		x.rFloor = rf
		x.rFloorA.Store(int64(rf))
		return true
	}
	return false
}

// FlushWriterSide is the writer shard's half of an asynchronous exchange:
// stage the outbox into the mailbox, import pending credits, publish the
// frontier bounds, and return the write frontier bounding the shard's own
// clock. Call it only from the writer shard's worker at a kernel safe
// point (between Steps).
//
// deferData (fault injection) withholds the whole exchange: nothing is
// staged, imported, or published, so the previously published bounds —
// still valid, since they covered all deliveries future of their own
// publish — keep bounding the reader until a later exchange or a
// rendezvous Flush.
//
// The two publication flags grade what the reader shard can now observe:
// data means words were staged — the only writer-side publication that
// can make a reader process runnable — while bound means a frontier
// bound was raised, which matters only to a reader shard whose horizon
// is capping timed work it already holds.
func (f *ShardedFIFO[T]) FlushWriterSide(deferData bool) (writeFrontier sim.Time, data, bound bool) {
	w, x := &f.w, &f.x
	x.mu.Lock()
	if !deferData {
		data = f.stageOutboxLocked()
		f.deliverFreesLocked()
		// Publish after the credit import so the base reflects the
		// freshest window state — and so "blocked" is always current
		// with respect to every credit published so far, which is what
		// lets the reader trust its own read floor when the mailbox
		// holds no credits.
		bound = f.publishWriterBoundsLocked()
	}
	rf := x.rFloor
	x.mu.Unlock()

	if !w.multiWriter && w.writer != nil && w.writer.Terminated() {
		x.wfA.Store(int64(sim.TimeMax))
		return sim.TimeMax, data, bound
	}
	wf := w.lastWriteDate
	if rf > wf {
		wf = rf
	}
	if !w.multiWriter && w.writer != nil {
		if lt := w.writer.LocalTime(); lt > wf {
			wf = lt
		}
	}
	x.wfA.Store(int64(wf))
	return wf, data, bound
}

// FlushReaderSide is the reader shard's half of an asynchronous exchange:
// publish freed-cell credits and the pop floor, import delivered data,
// and derive the effective inbound frontier. Call it only from the reader
// shard's worker at a kernel safe point (between Steps).
//
// The returned frontier is the writer-published base completed with the
// reader-side half of the Smart-FIFO lookahead: when the writer was
// credit-blocked at publish time, the next insertion follows either the
// oldest credit it has not yet imported (the mailbox head) or, when every
// credit has been imported and none is staged here, the reader's own next
// pop. The value is monotone across calls.
//
// The publication flags grade what the writer shard can now observe:
// credit means freed cells crossed while the writer had published a full
// window — importing them is what makes a credit-parked writer process
// runnable again — while bound covers credits and floor raises that only
// refresh the writer's frontier arithmetic. A credit-parked writer always
// publishes blocked first (its worker exchanges after every Step, before
// parking), so staged frees against a non-blocked window are never a
// missed wake.
func (f *ShardedFIFO[T]) FlushReaderSide() (frontier sim.Time, credit, bound bool) {
	r, x := &f.r, &f.x
	staged := false
	x.mu.Lock()
	if f.stageFreesLocked() {
		staged = true
		bound = true
	}
	if f.publishReaderFloorLocked() {
		bound = true
	}
	credit = staged && x.blocked
	f.deliverDataLocked()
	front := x.base
	switch {
	case x.term:
		front = sim.TimeMax
	case x.blocked:
		if len(x.frees) > 0 {
			// Credits the writer has not imported: its next write lands
			// in the cell freed by the oldest of them.
			if d := x.frees[0]; d > front {
				front = d
			}
		} else if rf := r.readFloor(); rf > front {
			// No credit outstanding anywhere (the writer republishes
			// under the same lock whenever it imports), so the writer
			// stays parked until this side pops again.
			front = rf
		}
	}
	x.mu.Unlock()
	if front > r.effFrontier {
		r.effFrontier = front
	}
	return r.effFrontier, credit, bound
}

// AsyncBounds returns the last published frontier base and write
// frontier without locking — a racy but monotone observation for
// diagnostics and benchmarks. The exchange halves read the authoritative
// values under the mailbox lock.
func (f *ShardedFIFO[T]) AsyncBounds() (base, writeFrontier sim.Time) {
	return sim.Time(f.x.baseA.Load()), sim.Time(f.x.wfA.Load())
}

// Frontier returns a lower bound on the insertion dates of everything the
// bridge may still deliver: the reader's shard may safely simulate up to
// and including this date. Call it only at a barrier, after Flush (an
// undelivered outbox entry could be older than the bound).
//
// The bound is the §III access discipline turned into lookahead — no null
// messages, just the cell timestamps:
//
//   - write dates on a side never decrease, so the last insertion date
//     bounds all future ones; the writer process's own local date (when a
//     single process owns the side) and its kernel's date tighten it;
//   - when the credit window has room, the next write lands in a known
//     cell and advances to that cell's freeing date;
//   - when the window is full, the writer is throttled by the reader
//     itself: the next insertion follows the reader's next pop, so the
//     reader's own read floor is the bound. This is what breaks the
//     classic conservative-deadlock cycle without null messages.
//
// A terminated writer can never deliver again — the frontier becomes
// sim.TimeMax and the reader runs unthrottled.
func (f *ShardedFIFO[T]) Frontier() sim.Time {
	w, r := &f.w, &f.r
	if !w.multiWriter && w.writer != nil && w.writer.Terminated() {
		return sim.TimeMax
	}
	front := w.lastWriteDate
	if now := w.k.Now(); now > front {
		front = now
	}
	if !w.multiWriter && w.writer != nil {
		if lt := w.writer.LocalTime(); lt > front {
			front = lt
		}
	}
	wc := &w.cells
	if wc.nBusy < len(wc.ins) {
		if fd := wc.free[wc.firstFree]; fd > front {
			front = fd
		}
	} else if rf := r.readFloor(); rf > front {
		front = rf
	}
	return front
}

// StagedFrontier returns the minimum insertion date staged in the
// writer-side outbox — data written but not yet flushed across the
// boundary — and ok=false when nothing is staged. Insertion dates on a
// side never decrease, so the first staged entry is the minimum. The
// coordinator's deferred-flush injection (par.StagedBridge) uses it to
// keep Frontier's bound honest when a Flush is withheld: undelivered
// outbox entries can be older than Frontier, never older than this.
func (f *ShardedFIFO[T]) StagedFrontier() (at sim.Time, ok bool) {
	if len(f.w.outIns) == 0 {
		return 0, false
	}
	return f.w.outIns[0], true
}

// WriteFrontier returns a lower bound on the resume date of any write
// that blocks (now or later this round) on exhausted credits: the writer's
// shard must not advance its kernel clock past this date, or a parked
// writer's restored local date would be clamped to the kernel clock
// (sim.Process.SetLocalDate cannot represent a local date in the global
// past) and the §III dates would drift. Call it only at a barrier, after
// Flush, like Frontier.
//
// A blocked write resumes at max(its restore date, the freeing date of
// the credit that wakes it), so the bound is the max of
//
//   - the reader's read floor — every future credit carries a freeing
//     date at or after the reader's next pop;
//   - the side's last write date — any future park's restore date is at
//     or after it (per-side dates are non-decreasing);
//   - the writer process's local date (single-writer refinement): a
//     future park restores at or after the writer's current local date.
//
// A terminated writer can never park again — the bound is sim.TimeMax
// and the shard runs unthrottled.
func (f *ShardedFIFO[T]) WriteFrontier() sim.Time {
	w, r := &f.w, &f.r
	if !w.multiWriter && w.writer != nil && w.writer.Terminated() {
		return sim.TimeMax
	}
	bound := w.lastWriteDate
	if rf := r.readFloor(); rf > bound {
		bound = rf
	}
	if !w.multiWriter && w.writer != nil {
		if lt := w.writer.LocalTime(); lt > bound {
			bound = lt
		}
	}
	return bound
}

// --- writer endpoint ---

// Name returns the channel name.
func (w *ShardedWriter[T]) Name() string { return w.f.name }

// Depth returns the capacity in cells.
func (w *ShardedWriter[T]) Depth() int { return w.cells.depth() }

// Kernel returns the kernel owning this endpoint.
func (w *ShardedWriter[T]) Kernel() *sim.Kernel { return w.k }

func (w *ShardedWriter[T]) caller(op string) *sim.Process {
	p := w.k.Current()
	if p == nil {
		panic(fmt.Sprintf("core: %s: %s outside a process", w.f.name, op))
	}
	return p
}

// noteWriter records the writing process for the frontier refinement.
func (w *ShardedWriter[T]) noteWriter(p *sim.Process) {
	if w.writer == nil {
		w.writer = p
	} else if w.writer != p {
		w.multiWriter = true
	}
}

// Write appends v, exactly like SmartFIFO.Write: if the credit window is
// exhausted the calling thread synchronizes and parks until Flush returns
// freed cells; otherwise the caller's local clock advances to the freeing
// date of the cell it fills and the write costs no context switch.
func (w *ShardedWriter[T]) Write(v T) {
	p := w.caller("Write")
	checkSideOrderFor(w.f.name, p, &w.lastWriteDate, "write")
	r := &w.cells
	for r.nBusy == len(r.ins) {
		w.stats.WriterBlocks++
		if !p.Synchronized() {
			p.Sync()
			continue
		}
		local := p.LocalTime()
		p.WaitEvent(w.cellFreed)
		p.SetLocalDate(local)
	}
	q := r.firstFree
	if r.free[q] > p.LocalTime() {
		w.stats.WriterAdvances++
	}
	p.AdvanceLocalTo(r.free[q])
	r.ins[q] = p.LocalTime()
	r.firstFree = (q + 1) % len(r.ins)
	r.nBusy++
	w.stats.Writes++
	w.lastWriteDate = p.LocalTime()
	w.noteWriter(p)
	w.outData = append(w.outData, v)
	w.outIns = append(w.outIns, r.ins[q])
	// Writer-side external view: still not full, but the next free cell
	// only frees in the future.
	if r.nBusy < len(r.ins) {
		if fd := r.free[r.firstFree]; fd > w.k.Now() {
			w.notFull.NotifyAtReplace(fd)
		}
	}
}

// WriteBurst writes vals in order, advancing the writer's local clock by
// per between consecutive words (the burst contract of burst.go). The
// fast path annotates the credit window as runs and stages the outbox in
// batches; it blocks like Write when the window is exhausted.
func (w *ShardedWriter[T]) WriteBurst(vals []T, per sim.Time) {
	p := w.caller("WriteBurst")
	if per < 0 {
		for i, v := range vals {
			if i > 0 {
				p.Inc(per)
			}
			w.Write(v)
		}
		return
	}
	first := true
	for len(vals) > 0 {
		if n := w.writeRun(p, vals, per, !first); n > 0 {
			vals = vals[n:]
			first = false
			continue
		}
		if !first {
			p.Inc(per)
		}
		w.Write(vals[0])
		vals = vals[1:]
		first = false
	}
}

// TryWriteBurst writes up to len(vals) externally acceptable words without
// blocking (burst contract) and returns the number written.
func (w *ShardedWriter[T]) TryWriteBurst(vals []T, per sim.Time) int {
	p := w.caller("TryWriteBurst")
	if per < 0 {
		n := 0
		for i, v := range vals {
			if i > 0 {
				if w.IsFull() {
					break
				}
				p.Inc(per)
			}
			if !w.TryWrite(v) {
				break
			}
			n++
		}
		return n
	}
	r := &w.cells
	d := len(r.ins)
	mMax := d - r.nBusy
	if mMax > len(vals) {
		mMax = len(vals)
	}
	if mMax == 0 || r.free[r.firstFree] > p.LocalTime() {
		return 0
	}
	checkSideOrderFor(w.f.name, p, &w.lastWriteDate, "write")
	q0 := r.firstFree
	m, end := tryRunDates(r.ins, r.free, q0, mMax, p.LocalTime(), per)
	w.commitRun(p, vals[:m], q0, m, end, 0)
	return m
}

// writeRun executes one bulk write run over the credit window; 0 iff the
// window is exhausted.
func (w *ShardedWriter[T]) writeRun(p *sim.Process, vals []T, per sim.Time, incFirst bool) int {
	r := &w.cells
	d := len(r.ins)
	m := d - r.nBusy
	if m == 0 {
		return 0
	}
	if m > len(vals) {
		m = len(vals)
	}
	checkSideOrderFor(w.f.name, p, &w.lastWriteDate, "write")
	q0 := r.firstFree
	end, adv := runDates(r.ins, r.free, q0, m, p.LocalTime(), per, incFirst)
	w.commitRun(p, vals[:m], q0, m, end, adv)
	return m
}

// commitRun applies a stamped write run: ring indices, stats, outbox
// staging (batched as one append per direction) and the collapsed
// writer-side event epilogue.
func (w *ShardedWriter[T]) commitRun(p *sim.Process, vals []T, q0, m int, end sim.Time, adv uint64) {
	r := &w.cells
	d := len(r.ins)
	w.outData = append(w.outData, vals...)
	n1 := d - q0
	if n1 > m {
		n1 = m
	}
	w.outIns = append(w.outIns, r.ins[q0:q0+n1]...)
	w.outIns = append(w.outIns, r.ins[:m-n1]...)
	r.firstFree = wrap(q0+m, d)
	r.nBusy += m
	w.stats.Writes += uint64(m)
	w.stats.WriterAdvances += adv
	w.lastWriteDate = end
	p.AdvanceLocalTo(end)
	w.noteWriter(p)
	now := w.k.Now()
	if r.nBusy < d {
		if fd := r.free[r.firstFree]; fd > now {
			w.notFull.NotifyAtReplace(fd)
		}
	} else if m >= 2 {
		if fd := r.free[wrap(q0+m-1, d)]; fd > now {
			w.notFull.NotifyAtReplace(fd)
		}
	}
}

// IsFull is the two-test writer rule evaluated over the credit window:
// full iff every cell is busy, or the freeing date of the first free cell
// is after the caller's local date.
func (w *ShardedWriter[T]) IsFull() bool {
	p := w.caller("IsFull")
	r := &w.cells
	if r.nBusy == len(r.ins) {
		return true
	}
	return r.free[r.firstFree] > p.LocalTime()
}

// TryWrite appends v if the endpoint is externally non-full at the
// caller's local date. Never blocks; safe from method processes.
func (w *ShardedWriter[T]) TryWrite(v T) bool {
	if w.IsFull() {
		return false
	}
	w.Write(v)
	return true
}

// NotFull is the writer-side writable-event, notified at the freeing date
// of the first available cell (as of the last barrier).
func (w *ShardedWriter[T]) NotFull() *sim.Event { return w.notFull }

// Size is the dated monitor count over the writer's mirror (§III-C rules).
func (w *ShardedWriter[T]) Size() int {
	p := w.caller("Size")
	if !p.IsMethod() {
		p.Sync()
	}
	return w.cells.datedSize(p.LocalTime())
}

// --- reader endpoint ---

// Name returns the channel name.
func (r *ShardedReader[T]) Name() string { return r.f.name }

// Depth returns the capacity in cells.
func (r *ShardedReader[T]) Depth() int { return r.cells.depth() }

// Kernel returns the kernel owning this endpoint.
func (r *ShardedReader[T]) Kernel() *sim.Kernel { return r.k }

func (r *ShardedReader[T]) caller(op string) *sim.Process {
	p := r.k.Current()
	if p == nil {
		panic(fmt.Sprintf("core: %s: %s outside a process", r.f.name, op))
	}
	return p
}

// noteReader records the reading process for the frontier refinement.
func (r *ShardedReader[T]) noteReader(p *sim.Process) {
	if r.reader == nil {
		r.reader = p
	} else if r.reader != p {
		r.multiReader = true
	}
}

// Read pops the oldest delivered value, exactly like SmartFIFO.Read: park
// (after synchronizing) only when nothing has been delivered; otherwise
// advance the reader's local clock to the datum's insertion date.
func (r *ShardedReader[T]) Read() T {
	p := r.caller("Read")
	checkSideOrderFor(r.f.name, p, &r.lastReadDate, "read")
	r.noteReader(p)
	rc := &r.cells
	for rc.nBusy == 0 {
		r.stats.ReaderBlocks++
		if t := p.LocalTime(); t > r.retryAt {
			r.retryAt = t
		}
		if !p.Synchronized() {
			p.Sync()
			continue
		}
		local := p.LocalTime()
		p.WaitEvent(r.cellFilled)
		p.SetLocalDate(local)
	}
	q := rc.firstBusy
	if rc.ins[q] > p.LocalTime() {
		r.stats.ReaderAdvances++
	}
	p.AdvanceLocalTo(rc.ins[q])
	v := rc.data[q]
	var zero T
	rc.data[q] = zero
	rc.free[q] = p.LocalTime()
	rc.firstBusy = (q + 1) % len(rc.ins)
	rc.nBusy--
	r.stats.Reads++
	r.lastReadDate = p.LocalTime()
	r.pendingFrees = append(r.pendingFrees, rc.free[q])
	// Reader-side external view: the next datum exists but becomes
	// visible only at its (future) insertion date.
	if rc.nBusy > 0 {
		if id := rc.ins[rc.firstBusy]; id > r.k.Now() {
			r.notEmpty.NotifyAtReplace(id)
		}
	}
	return v
}

// ReadBurst fills dst in order, advancing the reader's local clock by per
// between consecutive words (burst contract). The fast path annotates the
// freeing-date credits as runs and stages them in batches; it blocks like
// Read when nothing has been delivered.
func (r *ShardedReader[T]) ReadBurst(dst []T, per sim.Time) {
	p := r.caller("ReadBurst")
	if per < 0 {
		for i := range dst {
			if i > 0 {
				p.Inc(per)
			}
			dst[i] = r.Read()
		}
		return
	}
	first := true
	for len(dst) > 0 {
		if n := r.readRun(p, dst, per, !first); n > 0 {
			dst = dst[n:]
			first = false
			continue
		}
		if !first {
			p.Inc(per)
		}
		dst[0] = r.Read()
		dst = dst[1:]
		first = false
	}
}

// TryReadBurst pops up to len(dst) externally available words without
// blocking (burst contract) and returns the number read.
func (r *ShardedReader[T]) TryReadBurst(dst []T, per sim.Time) int {
	p := r.caller("TryReadBurst")
	if per < 0 {
		n := 0
		for i := range dst {
			if i > 0 {
				if r.IsEmpty() {
					break
				}
				p.Inc(per)
			}
			v, ok := r.TryRead()
			if !ok {
				break
			}
			dst[i] = v
			n++
		}
		return n
	}
	rc := &r.cells
	mMax := rc.nBusy
	if mMax > len(dst) {
		mMax = len(dst)
	}
	if mMax == 0 || rc.ins[rc.firstBusy] > p.LocalTime() {
		return 0
	}
	checkSideOrderFor(r.f.name, p, &r.lastReadDate, "read")
	r.noteReader(p)
	q0 := rc.firstBusy
	m, end := tryRunDates(rc.free, rc.ins, q0, mMax, p.LocalTime(), per)
	r.commitRun(p, dst[:m], q0, m, end, 0)
	return m
}

// readRun executes one bulk read run over the delivered cells; 0 iff the
// mirror is internally empty.
func (r *ShardedReader[T]) readRun(p *sim.Process, dst []T, per sim.Time, incFirst bool) int {
	rc := &r.cells
	m := rc.nBusy
	if m == 0 {
		return 0
	}
	if m > len(dst) {
		m = len(dst)
	}
	checkSideOrderFor(r.f.name, p, &r.lastReadDate, "read")
	r.noteReader(p)
	q0 := rc.firstBusy
	end, adv := runDates(rc.free, rc.ins, q0, m, p.LocalTime(), per, incFirst)
	r.commitRun(p, dst[:m], q0, m, end, adv)
	return m
}

// commitRun applies a stamped read run: payload copy-out, ring indices,
// stats, the batched freeing-date credits and the collapsed reader-side
// event epilogue.
func (r *ShardedReader[T]) commitRun(p *sim.Process, dst []T, q0, m int, end sim.Time, adv uint64) {
	rc := &r.cells
	d := len(rc.ins)
	copyOut(dst, rc.data, q0)
	n1 := d - q0
	if n1 > m {
		n1 = m
	}
	r.pendingFrees = append(r.pendingFrees, rc.free[q0:q0+n1]...)
	r.pendingFrees = append(r.pendingFrees, rc.free[:m-n1]...)
	rc.firstBusy = wrap(q0+m, d)
	rc.nBusy -= m
	r.stats.Reads += uint64(m)
	r.stats.ReaderAdvances += adv
	r.lastReadDate = end
	p.AdvanceLocalTo(end)
	now := r.k.Now()
	if rc.nBusy > 0 {
		if id := rc.ins[rc.firstBusy]; id > now {
			r.notEmpty.NotifyAtReplace(id)
		}
	} else if m >= 2 {
		if id := rc.ins[wrap(q0+m-1, d)]; id > now {
			r.notEmpty.NotifyAtReplace(id)
		}
	}
}

// IsEmpty is the two-test reader rule over delivered data: empty iff no
// cell is busy, or the insertion date of the first busy cell is after the
// caller's local date.
func (r *ShardedReader[T]) IsEmpty() bool {
	p := r.caller("IsEmpty")
	rc := &r.cells
	if rc.nBusy == 0 {
		return true
	}
	return rc.ins[rc.firstBusy] > p.LocalTime()
}

// TryRead pops the oldest delivered value if the endpoint is externally
// non-empty at the caller's local date. Never blocks; safe from method
// processes.
func (r *ShardedReader[T]) TryRead() (T, bool) {
	if r.IsEmpty() {
		var zero T
		return zero, false
	}
	return r.Read(), true
}

// NotEmpty is the reader-side readable-event, notified at the insertion
// date of the first available datum (as of the last barrier).
func (r *ShardedReader[T]) NotEmpty() *sim.Event { return r.notEmpty }

// Size is the dated monitor count over the reader's mirror (§III-C rules).
func (r *ShardedReader[T]) Size() int {
	p := r.caller("Size")
	if !p.IsMethod() {
		p.Sync()
	}
	return r.cells.datedSize(p.LocalTime())
}

// checkSideOrderFor enforces the §III non-decreasing-date discipline for a
// named channel side (shared with SmartFIFO.checkSideOrder).
func checkSideOrderFor(name string, p *sim.Process, last *sim.Time, side string) {
	t := p.LocalTime()
	if t < *last {
		panic(fmt.Sprintf(
			"core: %s: %s access by %q at local date %v after an access at %v; "+
				"each side needs non-decreasing dates (add an Arbiter if several processes share a side)",
			name, side, p.Name(), t, *last))
	}
	*last = t
}

var (
	_ fifo.WriteEnd[int] = (*ShardedWriter[int])(nil)
	_ fifo.ReadEnd[int]  = (*ShardedReader[int])(nil)
)
