package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// Allocation-regression tests for the Smart FIFO hot paths (§IV-B "the
// cost of timing accuracy"): a decoupled Write/Read stream — the pure Kahn
// case, nothing subscribed to NotEmpty/NotFull — must run at zero heap
// allocations per access in steady state. This pins the subscriber-aware
// notification elision and the embedded timed-queue entries.

func TestSmartFIFODecoupledZeroAlloc(t *testing.T) {
	k := sim.NewKernel("alloc")
	f := core.NewSmart[int](k, "f", 64)
	k.Thread("writer", func(p *sim.Process) {
		for i := 0; ; i++ {
			f.Write(i)
			p.Inc(sim.NS)
		}
	})
	k.Thread("reader", func(p *sim.Process) {
		for {
			f.Read()
			p.Inc(sim.NS)
		}
	})
	var end sim.Time
	step := func() { end += 2 * sim.US; k.Run(end) }
	step() // warm-up: grow queues and goroutine stacks
	if n := testing.AllocsPerRun(50, step); n != 0 {
		t.Errorf("decoupled Write/Read steady state: %v allocs per step, want 0", n)
	}
	k.Shutdown()
}

func TestSmartFIFOBurstZeroAlloc(t *testing.T) {
	// The bulk fast paths: chunked WriteBurst/ReadBurst streaming in
	// steady state must not allocate (payload moves with copy, dates are
	// annotated in place, event work is elided).
	k := sim.NewKernel("alloc")
	f := core.NewSmart[int](k, "f", 256)
	wbuf := make([]int, 64)
	rbuf := make([]int, 48)
	k.Thread("writer", func(p *sim.Process) {
		for {
			f.WriteBurst(wbuf, sim.NS)
			p.Inc(3 * sim.NS)
		}
	})
	k.Thread("reader", func(p *sim.Process) {
		for {
			f.ReadBurst(rbuf, sim.NS)
			p.Inc(2 * sim.NS)
			f.TryReadBurst(rbuf, sim.NS)
		}
	})
	var end sim.Time
	step := func() { end += 2 * sim.US; k.Run(end) }
	step()
	if n := testing.AllocsPerRun(50, step); n != 0 {
		t.Errorf("burst streaming steady state: %v allocs per step, want 0", n)
	}
	k.Shutdown()
}

func TestShardedBurstSteadyStateZeroAlloc(t *testing.T) {
	// The bridge endpoints' bulk paths: after warm-up the outbox and
	// credit batches reuse their backing arrays across Flush rounds.
	k := sim.NewKernel("alloc")
	f := core.NewSharded[int](k, k, "f", 64)
	wbuf := make([]int, 32)
	rbuf := make([]int, 32)
	k.Thread("writer", func(p *sim.Process) {
		w := f.Writer()
		for {
			w.WriteBurst(wbuf, sim.NS)
			p.Inc(3 * sim.NS)
		}
	})
	k.Thread("reader", func(p *sim.Process) {
		r := f.Reader()
		for {
			r.ReadBurst(rbuf, sim.NS)
			p.Inc(2 * sim.NS)
		}
	})
	var end sim.Time
	step := func() {
		end += 2 * sim.US
		// Drive run/barrier cycles by hand: the degenerate same-kernel
		// bridge still moves data only at Flush.
		for i := 0; i < 40; i++ {
			k.Run(end)
			f.Flush()
		}
	}
	step()
	if n := testing.AllocsPerRun(20, step); n != 0 {
		t.Errorf("sharded burst steady state: %v allocs per step, want 0", n)
	}
	k.Shutdown()
}

func TestSmartFIFODepthOneZeroAlloc(t *testing.T) {
	// The blocking-heavy ping-pong: every access parks on the internal
	// events, exercising Sync, WaitEvent and the delta queues.
	k := sim.NewKernel("alloc")
	f := core.NewSmart[int](k, "f", 1)
	k.Thread("writer", func(p *sim.Process) {
		for i := 0; ; i++ {
			f.Write(i)
			p.Inc(3 * sim.NS)
		}
	})
	k.Thread("reader", func(p *sim.Process) {
		for {
			f.Read()
			p.Inc(7 * sim.NS)
		}
	})
	var end sim.Time
	step := func() { end += 2 * sim.US; k.Run(end) }
	step()
	if n := testing.AllocsPerRun(50, step); n != 0 {
		t.Errorf("depth-1 ping-pong steady state: %v allocs per step, want 0", n)
	}
	k.Shutdown()
}
