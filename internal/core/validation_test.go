package core_test

// This file implements the paper's validation methodology (§IV-A): every
// scenario is executed in two modes — (1) regular FIFOs and no temporal
// decoupling, (2) Smart FIFOs and temporal decoupling, with the same seed —
// and both runs record traces stamped with the local date of the emitting
// process. The test passes iff the traces are identical after reordering by
// date: behavior and timing must be unchanged, only the schedule may
// differ.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fifo"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Mode selects the implementation under test.
type Mode int

const (
	// ModeReference is a regular FIFO with non-decoupled processes:
	// the paper's ground truth.
	ModeReference Mode = iota
	// ModeSmart is the Smart FIFO with temporally decoupled processes.
	ModeSmart
)

func (m Mode) String() string {
	if m == ModeReference {
		return "reference"
	}
	return "smart"
}

// Env gives scenarios a mode-independent vocabulary: NewFIFO picks the
// channel implementation and Delay picks wait-vs-inc.
type Env struct {
	K    *sim.Kernel
	Rec  *trace.Recorder
	Mode Mode
	Rand *rand.Rand
	// fault to inject into every Smart FIFO the scenario creates.
	fault core.Fault
	// policy is the blocking policy for every Smart FIFO created.
	policy core.BlockPolicy
}

// NewFIFO creates the channel appropriate for the mode.
func (e *Env) NewFIFO(name string, depth int) fifo.Channel[int] {
	if e.Mode == ModeReference {
		return fifo.New[int](e.K, name, depth)
	}
	f := core.NewSmart[int](e.K, name, depth)
	f.SetFault(e.fault)
	f.SetBlockPolicy(e.policy)
	return f
}

// Delay annotates d of computation time on p: a context-switching Wait in
// reference mode, a local Inc under decoupling.
func (e *Env) Delay(p *sim.Process, d sim.Time) {
	if e.Mode == ModeReference {
		p.Wait(d)
	} else {
		p.Inc(d)
	}
}

// Logf records a dated trace line for p.
func (e *Env) Logf(p *sim.Process, format string, args ...any) {
	e.Rec.Logf(p, format, args...)
}

// Scenario builds a model in the given environment. It runs with the same
// seed in both modes.
type Scenario func(e *Env)

// runMode executes scenario s in mode m and returns its trace.
func runMode(s Scenario, m Mode, seed int64, fault core.Fault) *trace.Recorder {
	e := &Env{
		K:     sim.NewKernel(m.String()),
		Rec:   trace.NewRecorder(),
		Mode:  m,
		Rand:  rand.New(rand.NewSource(seed)),
		fault: fault,
	}
	s(e)
	e.K.Run(sim.RunForever)
	e.K.Shutdown()
	return e.Rec
}

// checkDualMode asserts reference and smart traces are identical after
// date reordering.
func checkDualMode(t *testing.T, s Scenario, seed int64) {
	t.Helper()
	ref := runMode(s, ModeReference, seed, core.FaultNone)
	smart := runMode(s, ModeSmart, seed, core.FaultNone)
	if d := trace.Diff(ref, smart); d != "" {
		t.Errorf("traces differ (seed %d):\n%s", seed, d)
	}
	if ref.Len() == 0 {
		t.Error("scenario recorded no trace entries: vacuous test")
	}
}

// scenarioFig1 is the paper's Fig. 1 example with parameterized depth and
// periods.
func scenarioFig1(depth, n int, wPeriod, rPeriod sim.Time) Scenario {
	return func(e *Env) {
		f := e.NewFIFO("fifo", depth)
		e.K.Thread("writer", func(p *sim.Process) {
			for i := 1; i <= n; i++ {
				f.Write(i)
				e.Logf(p, "wrote %d", i)
				e.Delay(p, wPeriod)
			}
			e.Logf(p, "writer done")
		})
		e.K.Thread("reader", func(p *sim.Process) {
			for i := 1; i <= n; i++ {
				v := f.Read()
				e.Logf(p, "read %d", v)
				e.Delay(p, rPeriod)
			}
			e.Logf(p, "reader done")
		})
	}
}

func TestDualModeFig1(t *testing.T) {
	for _, depth := range []int{1, 2, 3, 8} {
		for _, periods := range [][2]sim.Time{
			{20 * sim.NS, 15 * sim.NS}, // the paper's numbers
			{15 * sim.NS, 20 * sim.NS}, // slow consumer
			{10 * sim.NS, 10 * sim.NS}, // balanced
			{0, 25 * sim.NS},           // infinitely fast producer
			{25 * sim.NS, 0},           // infinitely fast consumer
		} {
			name := fmt.Sprintf("depth%d_w%v_r%v", depth, periods[0], periods[1])
			t.Run(name, func(t *testing.T) {
				checkDualMode(t, scenarioFig1(depth, 12, periods[0], periods[1]), 1)
			})
		}
	}
}

// scenarioPipeline is the Fig. 5 system at small scale: source →
// transmitter → sink over two FIFOs.
func scenarioPipeline(depth, blocks, words int, sPer, tPer, kPer sim.Time) Scenario {
	return func(e *Env) {
		f1 := e.NewFIFO("f1", depth)
		f2 := e.NewFIFO("f2", depth)
		e.K.Thread("source", func(p *sim.Process) {
			for b := 0; b < blocks; b++ {
				for w := 0; w < words; w++ {
					f1.Write(b*words + w)
					e.Delay(p, sPer)
				}
				e.Logf(p, "block %d sent", b)
			}
		})
		e.K.Thread("transmitter", func(p *sim.Process) {
			for i := 0; i < blocks*words; i++ {
				v := f1.Read()
				e.Delay(p, tPer)
				f2.Write(v * 2)
			}
			e.Logf(p, "transmitted all")
		})
		e.K.Thread("sink", func(p *sim.Process) {
			sum := 0
			for i := 0; i < blocks*words; i++ {
				sum += f2.Read()
				e.Delay(p, kPer)
			}
			e.Logf(p, "sum %d", sum)
		})
	}
}

func TestDualModePipeline(t *testing.T) {
	for _, depth := range []int{1, 4, 16} {
		for _, rates := range [][3]sim.Time{
			{10 * sim.NS, 10 * sim.NS, 10 * sim.NS},
			{5 * sim.NS, 20 * sim.NS, 10 * sim.NS}, // transmitter-bound
			{20 * sim.NS, 5 * sim.NS, 10 * sim.NS}, // source-bound
			{10 * sim.NS, 5 * sim.NS, 20 * sim.NS}, // sink-bound
		} {
			name := fmt.Sprintf("depth%d_%v_%v_%v", depth, rates[0], rates[1], rates[2])
			t.Run(name, func(t *testing.T) {
				checkDualMode(t, scenarioPipeline(depth, 4, 8, rates[0], rates[1], rates[2]), 1)
			})
		}
	}
}

// scenarioMonitor streams data while a monitor process polls Size at dates
// chosen to avoid same-date races with the streaming processes (the paper
// excludes scheduler-dependent programs from the suite). Producers act at
// multiples of 10ns, the monitor at 5ns offsets.
func scenarioMonitor(depth int) Scenario {
	return func(e *Env) {
		f := e.NewFIFO("fifo", depth)
		const n = 30
		e.K.Thread("writer", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				f.Write(i)
				e.Delay(p, 10*sim.NS)
			}
		})
		e.K.Thread("reader", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				f.Read()
				e.Delay(p, 30*sim.NS)
			}
		})
		e.K.Thread("monitor", func(p *sim.Process) {
			// The monitor is never decoupled (it models embedded
			// software polling a status register at a low rate).
			p.Wait(5 * sim.NS)
			for i := 0; i < 20; i++ {
				e.Logf(p, "size %d", f.Size())
				p.Wait(50 * sim.NS)
			}
		})
	}
}

func TestDualModeMonitor(t *testing.T) {
	for _, depth := range []int{1, 2, 5, 32} {
		t.Run(fmt.Sprintf("depth%d", depth), func(t *testing.T) {
			checkDualMode(t, scenarioMonitor(depth), 1)
		})
	}
}

// scenarioEventConsumer uses the §III-B event-driven consumption pattern
// from a thread: wait on NotEmpty while externally empty.
func scenarioEventConsumer(depth int) Scenario {
	return func(e *Env) {
		f := e.NewFIFO("fifo", depth)
		const n = 15
		e.K.Thread("producer", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				e.Delay(p, sim.Time(7+3*(i%4))*sim.NS)
				f.Write(i)
			}
		})
		e.K.Thread("consumer", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				for f.IsEmpty() {
					p.WaitEvent(f.NotEmpty())
				}
				v, ok := f.TryRead()
				if !ok {
					panic("TryRead failed after IsEmpty=false")
				}
				e.Logf(p, "got %d", v)
			}
		})
	}
}

func TestDualModeEventConsumer(t *testing.T) {
	for _, depth := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("depth%d", depth), func(t *testing.T) {
			checkDualMode(t, scenarioEventConsumer(depth), 1)
		})
	}
}

// scenarioPacketizer models the case-study network interface (§IV-C): an
// SC_METHOD that, on each NotEmpty activation, drains the externally
// visible words into a packet and logs the packet boundary. The producer
// writes bursts at a single local date, so packet boundaries depend only on
// dates, not on the schedule.
func scenarioPacketizer(depth, bursts, burstLen int) Scenario {
	return func(e *Env) {
		f := e.NewFIFO("fifo", depth)
		e.K.Thread("producer", func(p *sim.Process) {
			v := 0
			for b := 0; b < bursts; b++ {
				for w := 0; w < burstLen; w++ {
					f.Write(v) // whole burst at one local date
					v++
				}
				e.Delay(p, 40*sim.NS)
			}
		})
		e.K.MethodNoInit("ni", func(p *sim.Process) {
			var packet []int
			for {
				v, ok := f.TryRead()
				if !ok {
					break
				}
				packet = append(packet, v)
			}
			if len(packet) > 0 {
				e.Logf(p, "packet len %d first %d", len(packet), packet[0])
			}
		}, f.NotEmpty())
	}
}

func TestDualModePacketizer(t *testing.T) {
	for _, c := range []struct{ depth, bursts, burstLen int }{
		{8, 5, 4},
		{16, 6, 8},
		{4, 8, 3},
	} {
		t.Run(fmt.Sprintf("d%d_b%dx%d", c.depth, c.bursts, c.burstLen), func(t *testing.T) {
			checkDualMode(t, scenarioPacketizer(c.depth, c.bursts, c.burstLen), 1)
		})
	}
}

// scenarioRandom drives a 2-FIFO chain with seeded random per-word periods
// (multiples of 10ns, keeping the monitor race-free at 5ns offsets), the
// paper's "random tests use twice the same seed".
func scenarioRandom(seed int64) Scenario {
	return func(e *Env) {
		r := rand.New(rand.NewSource(seed))
		const n = 60
		depth := 1 + r.Intn(6)
		f1 := e.NewFIFO("f1", depth)
		f2 := e.NewFIFO("f2", 1+r.Intn(6))
		// Pre-draw all periods so both modes see identical values
		// regardless of execution order.
		draw := func() []sim.Time {
			ds := make([]sim.Time, n)
			for i := range ds {
				ds[i] = sim.Time(r.Intn(5)) * 10 * sim.NS
			}
			return ds
		}
		sPer, tPer, kPer := draw(), draw(), draw()
		e.K.Thread("source", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				f1.Write(i)
				e.Delay(p, sPer[i])
			}
			e.Logf(p, "source done")
		})
		e.K.Thread("relay", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				v := f1.Read()
				e.Delay(p, tPer[i])
				f2.Write(v + 1000)
				e.Logf(p, "relayed %d", v)
			}
		})
		e.K.Thread("sink", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				v := f2.Read()
				e.Logf(p, "sank %d", v)
				e.Delay(p, kPer[i])
			}
		})
		e.K.Thread("monitor", func(p *sim.Process) {
			p.Wait(5 * sim.NS)
			for i := 0; i < 25; i++ {
				e.Logf(p, "sizes %d %d", f1.Size(), f2.Size())
				p.Wait(70 * sim.NS)
			}
		})
	}
}

func TestDualModeRandom(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			checkDualMode(t, scenarioRandom(seed), seed)
		})
	}
}

// scenarioMixedSync mixes a decoupled producer with a consumer that
// synchronizes explicitly between reads (a process straddling both styles).
func scenarioMixedSync(depth int) Scenario {
	return func(e *Env) {
		f := e.NewFIFO("fifo", depth)
		const n = 20
		e.K.Thread("producer", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				f.Write(i)
				e.Delay(p, 12*sim.NS)
			}
		})
		e.K.Thread("consumer", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				v := f.Read()
				e.Logf(p, "consumed %d", v)
				e.Delay(p, 9*sim.NS)
				if i%5 == 4 {
					// An explicit synchronization point (§II-A):
					// legal in both modes.
					p.Sync()
					e.Logf(p, "synced")
				}
			}
		})
	}
}

func TestDualModeMixedSync(t *testing.T) {
	for _, depth := range []int{1, 4} {
		t.Run(fmt.Sprintf("depth%d", depth), func(t *testing.T) {
			checkDualMode(t, scenarioMixedSync(depth), 1)
		})
	}
}

// TestDualModeBurst exercises the packetization burst API against per-word
// loops in the reference.
func TestDualModeBurst(t *testing.T) {
	scenario := func(e *Env) {
		const bursts, blen = 6, 5
		per := 4 * sim.NS
		f := e.NewFIFO("fifo", 8)
		e.K.Thread("producer", func(p *sim.Process) {
			v := 0
			for b := 0; b < bursts; b++ {
				if sf, ok := f.(*core.SmartFIFO[int]); ok {
					vals := make([]int, blen)
					for i := range vals {
						vals[i] = v
						v++
					}
					sf.WriteBurst(vals, per)
				} else {
					for i := 0; i < blen; i++ {
						if i > 0 {
							e.Delay(p, per)
						}
						f.Write(v)
						v++
					}
				}
				e.Delay(p, 50*sim.NS)
			}
		})
		e.K.Thread("consumer", func(p *sim.Process) {
			for i := 0; i < bursts*blen; i++ {
				v := f.Read()
				e.Logf(p, "got %d", v)
				e.Delay(p, 6*sim.NS)
			}
		})
	}
	checkDualMode(t, scenario, 1)
}
