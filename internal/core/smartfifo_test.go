package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fifo"
	"repro/internal/sim"
)

// TestFig2ReferenceTiming pins the reference execution of the paper's
// Fig. 1 example, simulated with a regular FIFO and no temporal decoupling
// (Fig. 2): writes complete at 0/20/40 ns, reads complete at 0/20/40 ns
// (the reader blocks 5 ns twice), the reader finishes at 55 ns and the
// writer at 60 ns.
func TestFig2ReferenceTiming(t *testing.T) {
	k := sim.NewKernel("fig2")
	f := fifo.New[int](k, "fifo", 4)
	var writes, reads []sim.Time
	var endW, endR sim.Time
	k.Thread("writer", func(p *sim.Process) {
		for i := 1; i <= 3; i++ {
			f.Write(i)
			writes = append(writes, k.Now())
			p.Wait(20 * sim.NS)
		}
		endW = k.Now()
	})
	k.Thread("reader", func(p *sim.Process) {
		for i := 1; i <= 3; i++ {
			v := f.Read()
			if v != i {
				t.Errorf("read %d, want %d", v, i)
			}
			reads = append(reads, k.Now())
			p.Wait(15 * sim.NS)
		}
		endR = k.Now()
	})
	k.Run(sim.RunForever)
	wantW := []sim.Time{0, 20 * sim.NS, 40 * sim.NS}
	wantR := []sim.Time{0, 20 * sim.NS, 40 * sim.NS}
	for i := range wantW {
		if writes[i] != wantW[i] {
			t.Errorf("write %d at %v, want %v", i, writes[i], wantW[i])
		}
		if reads[i] != wantR[i] {
			t.Errorf("read %d at %v, want %v", i, reads[i], wantR[i])
		}
	}
	if endW != 60*sim.NS || endR != 55*sim.NS {
		t.Errorf("ends: writer %v reader %v, want 60ns/55ns", endW, endR)
	}
}

// TestFig3NaiveDecouplingIsWrong shows the failure the Smart FIFO fixes: a
// regular FIFO with decoupled processes and no synchronization lets the
// reader consume all data at global date 0, so its local dates are wrong
// (reads at 0/15/30 instead of 0/20/40).
func TestFig3NaiveDecouplingIsWrong(t *testing.T) {
	k := sim.NewKernel("fig3")
	f := fifo.New[int](k, "fifo", 4)
	var reads []sim.Time
	k.Thread("writer", func(p *sim.Process) {
		for i := 1; i <= 3; i++ {
			f.Write(i)
			p.Inc(20 * sim.NS)
		}
	})
	k.Thread("reader", func(p *sim.Process) {
		for i := 1; i <= 3; i++ {
			f.Read()
			reads = append(reads, p.LocalTime())
			p.Inc(15 * sim.NS)
		}
	})
	k.Run(sim.RunForever)
	// All FIFO accesses are taken into account at t=0 (paper Fig. 3):
	// the reader never waits, so its read dates are 0, 15, 30 — a
	// timing error versus the 0, 20, 40 reference.
	want := []sim.Time{0, 15 * sim.NS, 30 * sim.NS}
	for i := range want {
		if reads[i] != want[i] {
			t.Errorf("naive read %d at %v, want %v", i, reads[i], want[i])
		}
	}
}

// TestSmartFIFOFig2Timing is the paper's headline accuracy claim on the
// Fig. 1 example: with the Smart FIFO and full temporal decoupling, all
// dates match the non-decoupled reference exactly, for every FIFO depth.
func TestSmartFIFOFig2Timing(t *testing.T) {
	for depth := 1; depth <= 5; depth++ {
		k := sim.NewKernel("fig2smart")
		f := core.NewSmart[int](k, "fifo", depth)
		var writes, reads []sim.Time
		k.Thread("writer", func(p *sim.Process) {
			for i := 1; i <= 3; i++ {
				f.Write(i)
				writes = append(writes, p.LocalTime())
				p.Inc(20 * sim.NS)
			}
		})
		k.Thread("reader", func(p *sim.Process) {
			for i := 1; i <= 3; i++ {
				v := f.Read()
				if v != i {
					t.Errorf("depth %d: read %d, want %d", depth, v, i)
				}
				reads = append(reads, p.LocalTime())
				p.Inc(15 * sim.NS)
			}
		})
		k.Run(sim.RunForever)
		k.Shutdown()
		wantW := []sim.Time{0, 20 * sim.NS, 40 * sim.NS}
		for i := range wantW {
			if writes[i] != wantW[i] {
				t.Errorf("depth %d: write %d at %v, want %v", depth, i, writes[i], wantW[i])
			}
			if reads[i] != wantW[i] {
				t.Errorf("depth %d: read %d at %v, want %v", depth, i, reads[i], wantW[i])
			}
		}
	}
}

// TestWriterBackPressureTiming checks the write-side timestamps: with a
// depth-1 FIFO, a fast writer must inherit the reader's freeing dates.
func TestWriterBackPressureTiming(t *testing.T) {
	k := sim.NewKernel("bp")
	f := core.NewSmart[int](k, "fifo", 1)
	var writes []sim.Time
	k.Thread("writer", func(p *sim.Process) {
		for i := 0; i < 4; i++ {
			f.Write(i)
			writes = append(writes, p.LocalTime())
			// No annotation: the writer is infinitely fast.
		}
	})
	k.Thread("reader", func(p *sim.Process) {
		for i := 0; i < 4; i++ {
			f.Read()
			p.Inc(10 * sim.NS)
		}
	})
	k.Run(sim.RunForever)
	// Reader frees the single cell at 0, 10, 20 (read i completes at
	// i*10). The writer writes at 0, then at each freeing date.
	want := []sim.Time{0, 0, 10 * sim.NS, 20 * sim.NS}
	for i := range want {
		if writes[i] != want[i] {
			t.Errorf("write %d at %v, want %v", i, writes[i], want[i])
		}
	}
}

// TestReaderAdvancesWithoutContextSwitch verifies the mechanism: a slow
// reader of an already-filled Smart FIFO advances its clock from the
// timestamps and never parks.
func TestReaderAdvancesWithoutContextSwitch(t *testing.T) {
	k := sim.NewKernel("adv")
	f := core.NewSmart[int](k, "fifo", 16)
	k.Thread("writer", func(p *sim.Process) {
		for i := 0; i < 16; i++ {
			f.Write(i)
			p.Inc(5 * sim.NS)
		}
	})
	k.Thread("reader", func(p *sim.Process) {
		for i := 0; i < 16; i++ {
			f.Read()
		}
		if got, want := p.LocalTime(), 75*sim.NS; got != want {
			t.Errorf("reader local date %v, want %v (last insertion)", got, want)
		}
	})
	k.Run(sim.RunForever)
	st := f.Stats()
	if st.ReaderBlocks != 0 {
		t.Errorf("ReaderBlocks = %d, want 0", st.ReaderBlocks)
	}
	if st.ReaderAdvances == 0 {
		t.Error("ReaderAdvances = 0, want >0: clock must advance from timestamps")
	}
	// Only the two initial dispatches: no blocking at all.
	if cs := k.Stats().ContextSwitches; cs != 2 {
		t.Errorf("ContextSwitches = %d, want 2", cs)
	}
}

// TestDepthControlsContextSwitches reproduces the Fig. 5 mechanism at unit
// scale: the number of context switches decreases as the FIFO gets deeper.
func TestDepthControlsContextSwitches(t *testing.T) {
	run := func(depth int) uint64 {
		k := sim.NewKernel("cs")
		f := core.NewSmart[int](k, "fifo", depth)
		const n = 256
		k.Thread("writer", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				f.Write(i)
				p.Inc(10 * sim.NS)
			}
		})
		k.Thread("reader", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				f.Read()
				p.Inc(10 * sim.NS)
			}
		})
		k.Run(sim.RunForever)
		return k.Stats().ContextSwitches
	}
	cs1, cs4, cs64 := run(1), run(4), run(64)
	if !(cs1 > cs4 && cs4 > cs64) {
		t.Errorf("context switches not decreasing with depth: d1=%d d4=%d d64=%d", cs1, cs4, cs64)
	}
}

// TestIsEmptyTwoTests exercises the §III-B two-test rule directly.
func TestIsEmptyTwoTests(t *testing.T) {
	k := sim.NewKernel("ie")
	f := core.NewSmart[int](k, "fifo", 4)
	k.Thread("writer", func(p *sim.Process) {
		p.Inc(30 * sim.NS) // decoupled: writes with local date 30
		f.Write(7)
	})
	k.Thread("probe", func(p *sim.Process) {
		p.Wait(0) // let the writer's internal write happen
		// Synchronized probe at global 0: internally busy, but the
		// insertion date (30ns) is in the future, so externally
		// empty.
		if !f.IsEmpty() {
			t.Error("IsEmpty at t=0 = false, want true (insertion at 30ns)")
		}
		p.Wait(30 * sim.NS)
		if f.IsEmpty() {
			t.Error("IsEmpty at t=30ns = true, want false")
		}
	})
	k.Run(sim.RunForever)
}

// TestIsFullSymmetric exercises the writer-side rule: a freed-in-the-future
// cell keeps the FIFO externally full.
func TestIsFullSymmetric(t *testing.T) {
	k := sim.NewKernel("if")
	f := core.NewSmart[int](k, "fifo", 1)
	k.Thread("writer", func(p *sim.Process) {
		f.Write(1) // fills the only cell at 0
	})
	k.Thread("reader", func(p *sim.Process) {
		p.Inc(25 * sim.NS)
		f.Read() // frees internally at global 0, freeing date 25ns
	})
	k.Thread("probe", func(p *sim.Process) {
		p.Wait(0)
		p.Wait(0) // after writer and reader internal operations
		if !f.IsFull() {
			t.Error("IsFull at t=0 = false, want true (freeing at 25ns)")
		}
		p.Wait(25 * sim.NS)
		if f.IsFull() {
			t.Error("IsFull at t=25ns = true, want false")
		}
	})
	k.Run(sim.RunForever)
}

// TestNotEmptyDelayedNotification verifies §III-B case 1: when a decoupled
// writer fills an all-free FIFO, NotEmpty fires at the insertion date, not
// at the internal-change date.
func TestNotEmptyDelayedNotification(t *testing.T) {
	k := sim.NewKernel("ne")
	f := core.NewSmart[int](k, "fifo", 4)
	var woken sim.Time = -1
	k.Thread("writer", func(p *sim.Process) {
		p.Inc(40 * sim.NS)
		f.Write(1) // internal change at global 0, insertion date 40ns
	})
	k.Thread("listener", func(p *sim.Process) {
		p.WaitEvent(f.NotEmpty())
		woken = k.Now()
	})
	k.Run(sim.RunForever)
	if woken != 40*sim.NS {
		t.Errorf("NotEmpty fired at %v, want 40ns", woken)
	}
}

// TestNotEmptyCase2 verifies §III-B case 2: after a read, if the next busy
// cell's insertion date is in the future, NotEmpty is re-armed for it.
func TestNotEmptyCase2(t *testing.T) {
	k := sim.NewKernel("ne2")
	f := core.NewSmart[int](k, "fifo", 4)
	var wakes []sim.Time
	k.Thread("writer", func(p *sim.Process) {
		f.Write(1)
		p.Inc(50 * sim.NS)
		f.Write(2) // insertion date 50ns
	})
	k.Thread("reader", func(p *sim.Process) {
		// A synchronized consumer that uses events, like a method
		// would.
		for i := 0; i < 2; i++ {
			for f.IsEmpty() {
				p.WaitEvent(f.NotEmpty())
				wakes = append(wakes, k.Now())
			}
			f.Read()
		}
	})
	k.Run(sim.RunForever)
	// First datum available immediately (no wait); second becomes
	// externally available at 50ns.
	if len(wakes) != 1 || wakes[0] != 50*sim.NS {
		t.Errorf("NotEmpty wakes = %v, want [50ns]", wakes)
	}
}

// TestNotFullDelayedNotification is the symmetric §III-B case for writers.
func TestNotFullDelayedNotification(t *testing.T) {
	k := sim.NewKernel("nf")
	f := core.NewSmart[int](k, "fifo", 1)
	var woken sim.Time = -1
	k.Thread("writer", func(p *sim.Process) {
		f.Write(1)
	})
	k.Thread("reader", func(p *sim.Process) {
		p.Inc(35 * sim.NS)
		f.Read() // frees internally at 0, freeing date 35ns
	})
	k.Thread("listener", func(p *sim.Process) {
		p.WaitEvent(f.NotFull())
		woken = k.Now()
	})
	k.Run(sim.RunForever)
	if woken != 35*sim.NS {
		t.Errorf("NotFull fired at %v, want 35ns", woken)
	}
}

// TestMonitorSizeBasic: Size depends on both the internal state and the
// caller's date (§III-C example: write at global 10 with local 20
// increments the real size at 20 only).
func TestMonitorSizeBasic(t *testing.T) {
	k := sim.NewKernel("sz")
	f := core.NewSmart[int](k, "fifo", 4)
	k.Thread("writer", func(p *sim.Process) {
		p.Wait(10 * sim.NS) // global 10
		p.Inc(10 * sim.NS)  // local 20
		f.Write(1)
	})
	var sizes []int
	k.Thread("monitor", func(p *sim.Process) {
		for _, at := range []sim.Time{5, 15, 25} {
			for p.LocalTime() < at*sim.NS {
				p.Wait(at*sim.NS - p.LocalTime())
			}
			sizes = append(sizes, f.Size())
		}
	})
	k.Run(sim.RunForever)
	want := []int{0, 0, 1} // size becomes 1 at t=20ns, not at t=10ns
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("size[%d] = %d, want %d", i, sizes[i], want[i])
		}
	}
}

// TestMonitorSizeFreedRefilled drives the subtle §III-C rules: a cell that
// was freed and refilled internally must still be interpreted correctly
// for a query date before the freeing date.
func TestMonitorSizeFreedRefilled(t *testing.T) {
	k := sim.NewKernel("szfr")
	f := core.NewSmart[int](k, "fifo", 1)
	k.Thread("writer", func(p *sim.Process) {
		f.Write(1) // insert at 0
		p.Inc(10 * sim.NS)
		f.Write(2) // cell freed at 30ns: write lands at 30ns
	})
	k.Thread("reader", func(p *sim.Process) {
		p.Inc(30 * sim.NS)
		f.Read() // frees internally early, freeing date 30ns
		p.Inc(25 * sim.NS)
		f.Read() // second datum read at 55ns
	})
	var sizes []int
	k.Thread("monitor", func(p *sim.Process) {
		for _, at := range []sim.Time{20, 40, 60} {
			for p.LocalTime() < at*sim.NS {
				p.Wait(at*sim.NS - p.LocalTime())
			}
			sizes = append(sizes, f.Size())
		}
	})
	k.Run(sim.RunForever)
	// Real FIFO contents: datum 1 from 0 to 30ns; datum 2 from 30ns to
	// 55ns; empty after.
	want := []int{1, 1, 0}
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("size at %v = %d, want %d", []sim.Time{20, 40, 60}[i]*sim.NS, sizes[i], want[i])
		}
	}
}

// TestSizeMatchesRegularFIFOWhenSynchronized: with synchronized processes
// the Smart FIFO monitor must agree with a regular FIFO's counter.
func TestSizeMatchesRegularFIFOWhenSynchronized(t *testing.T) {
	k := sim.NewKernel("szsync")
	sf := core.NewSmart[int](k, "smart", 3)
	rf := fifo.New[int](k, "ref", 3)
	k.Thread("writer", func(p *sim.Process) {
		for i := 0; i < 6; i++ {
			sf.Write(i)
			rf.Write(i)
			p.Wait(7 * sim.NS)
		}
	})
	k.Thread("reader", func(p *sim.Process) {
		for i := 0; i < 6; i++ {
			p.Wait(11 * sim.NS)
			sf.Read()
			rf.Read()
		}
	})
	k.Thread("monitor", func(p *sim.Process) {
		for i := 0; i < 20; i++ {
			p.Wait(5 * sim.NS)
			if s, r := sf.Size(), rf.Size(); s != r {
				t.Errorf("t=%v: smart size %d != regular size %d", k.Now(), s, r)
			}
		}
	})
	k.Run(sim.RunForever)
	k.Shutdown()
}

// TestTryReadTryWrite covers the non-blocking accessors from a thread.
func TestTryReadTryWrite(t *testing.T) {
	k := sim.NewKernel("try")
	f := core.NewSmart[int](k, "fifo", 2)
	k.Thread("p", func(p *sim.Process) {
		if _, ok := f.TryRead(); ok {
			t.Error("TryRead on empty FIFO succeeded")
		}
		if !f.TryWrite(1) || !f.TryWrite(2) {
			t.Error("TryWrite on non-full FIFO failed")
		}
		if f.TryWrite(3) {
			t.Error("TryWrite on full FIFO succeeded")
		}
		v, ok := f.TryRead()
		if !ok || v != 1 {
			t.Errorf("TryRead = %d,%v; want 1,true", v, ok)
		}
	})
	k.Run(sim.RunForever)
}

// TestAccessDisciplinePanics: decreasing local dates on one side must be
// rejected (the §III precondition).
func TestAccessDisciplinePanics(t *testing.T) {
	k := sim.NewKernel("disc")
	f := core.NewSmart[int](k, "fifo", 8)
	caught := false
	k.Thread("w1", func(p *sim.Process) {
		p.Inc(50 * sim.NS)
		f.Write(1)
	})
	k.Thread("w2", func(p *sim.Process) {
		defer func() {
			if recover() != nil {
				caught = true
			}
		}()
		p.Wait(0) // run after w1, but at local date 0 < 50ns
		f.Write(2)
	})
	k.Run(sim.RunForever)
	if !caught {
		t.Error("second writer with decreasing date did not panic")
	}
}

// TestFIFOOrderPreserved: data comes out in insertion order across blocking
// and advancing paths.
func TestFIFOOrderPreserved(t *testing.T) {
	k := sim.NewKernel("order")
	f := core.NewSmart[int](k, "fifo", 3)
	const n = 100
	var got []int
	k.Thread("writer", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			f.Write(i)
			p.Inc(sim.Time(1+i%7) * sim.NS)
		}
	})
	k.Thread("reader", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			got = append(got, f.Read())
			p.Inc(sim.Time(1+i%5) * sim.NS)
		}
	})
	k.Run(sim.RunForever)
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d; order not preserved", i, v)
		}
	}
}

// TestBurst covers the packetization extension.
func TestBurst(t *testing.T) {
	k := sim.NewKernel("burst")
	f := core.NewSmart[int](k, "fifo", 8)
	src := []int{10, 11, 12, 13}
	k.Thread("writer", func(p *sim.Process) {
		f.WriteBurst(src, 5*sim.NS)
		if p.LocalTime() != 15*sim.NS {
			t.Errorf("writer local after burst = %v, want 15ns", p.LocalTime())
		}
	})
	k.Thread("reader", func(p *sim.Process) {
		dst := make([]int, 4)
		f.ReadBurst(dst, 5*sim.NS)
		for i := range src {
			if dst[i] != src[i] {
				t.Errorf("dst[%d] = %d, want %d", i, dst[i], src[i])
			}
		}
		// Word i inserted at 5i ns; reading advances to each insertion
		// date: final local date = 15ns.
		if p.LocalTime() != 15*sim.NS {
			t.Errorf("reader local after burst = %v, want 15ns", p.LocalTime())
		}
	})
	k.Run(sim.RunForever)
}

// TestTryReadBurstStopsAtEmpty: the non-blocking burst reads only what is
// externally available.
func TestTryReadBurstStopsAtEmpty(t *testing.T) {
	k := sim.NewKernel("tryburst")
	f := core.NewSmart[int](k, "fifo", 8)
	k.Thread("writer", func(p *sim.Process) {
		f.Write(1)
		f.Write(2)
		p.Inc(100 * sim.NS)
		f.Write(3) // far in the local future
	})
	k.Thread("reader", func(p *sim.Process) {
		p.Wait(0)
		dst := make([]int, 8)
		n := f.TryReadBurst(dst, sim.NS)
		if n != 2 {
			t.Errorf("TryReadBurst = %d words, want 2 (third is future-dated)", n)
		}
	})
	k.Run(sim.RunForever)
	k.Shutdown()
}

// TestDepthOnePingPong: the tightest configuration still preserves exact
// timing against the reference.
func TestDepthOnePingPong(t *testing.T) {
	type result struct{ w, r []sim.Time }
	ref := func() result {
		k := sim.NewKernel("ref")
		f := fifo.New[int](k, "fifo", 1)
		var res result
		k.Thread("writer", func(p *sim.Process) {
			for i := 0; i < 10; i++ {
				f.Write(i)
				res.w = append(res.w, k.Now())
				p.Wait(3 * sim.NS)
			}
		})
		k.Thread("reader", func(p *sim.Process) {
			for i := 0; i < 10; i++ {
				f.Read()
				res.r = append(res.r, k.Now())
				p.Wait(8 * sim.NS)
			}
		})
		k.Run(sim.RunForever)
		return res
	}
	smart := func() result {
		k := sim.NewKernel("smart")
		f := core.NewSmart[int](k, "fifo", 1)
		var res result
		k.Thread("writer", func(p *sim.Process) {
			for i := 0; i < 10; i++ {
				f.Write(i)
				res.w = append(res.w, p.LocalTime())
				p.Inc(3 * sim.NS)
			}
		})
		k.Thread("reader", func(p *sim.Process) {
			for i := 0; i < 10; i++ {
				f.Read()
				res.r = append(res.r, p.LocalTime())
				p.Inc(8 * sim.NS)
			}
		})
		k.Run(sim.RunForever)
		return res
	}
	a, b := ref(), smart()
	for i := range a.w {
		if a.w[i] != b.w[i] {
			t.Errorf("write %d: ref %v, smart %v", i, a.w[i], b.w[i])
		}
		if a.r[i] != b.r[i] {
			t.Errorf("read %d: ref %v, smart %v", i, a.r[i], b.r[i])
		}
	}
}

// TestStatsCounters sanity-checks the instrumentation used by Fig. 5.
func TestStatsCounters(t *testing.T) {
	k := sim.NewKernel("stats")
	f := core.NewSmart[int](k, "fifo", 2)
	k.Thread("writer", func(p *sim.Process) {
		for i := 0; i < 10; i++ {
			f.Write(i)
			p.Inc(sim.NS)
		}
	})
	k.Thread("reader", func(p *sim.Process) {
		for i := 0; i < 10; i++ {
			f.Read()
			p.Inc(2 * sim.NS)
		}
	})
	k.Run(sim.RunForever)
	st := f.Stats()
	if st.Writes != 10 || st.Reads != 10 {
		t.Errorf("Writes/Reads = %d/%d, want 10/10", st.Writes, st.Reads)
	}
	if st.WriterBlocks == 0 {
		t.Error("WriterBlocks = 0: a fast writer into depth 2 must block")
	}
}

// TestZeroDepthPanics validates constructor input checking.
func TestZeroDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSmart with depth 0 did not panic")
		}
	}()
	core.NewSmart[int](sim.NewKernel("z"), "fifo", 0)
}

// TestMethodReaderWithNextTrigger models the §III-B SC_METHOD consumer
// pattern end to end.
func TestMethodReaderWithNextTrigger(t *testing.T) {
	k := sim.NewKernel("method")
	f := core.NewSmart[int](k, "fifo", 4)
	var got []int
	var dates []sim.Time
	k.MethodNoInit("consumer", func(p *sim.Process) {
		for {
			if f.IsEmpty() {
				p.NextTriggerEvent(f.NotEmpty())
				return
			}
			v, _ := f.TryRead()
			got = append(got, v)
			dates = append(dates, p.LocalTime())
		}
	}, f.NotEmpty())
	k.Thread("producer", func(p *sim.Process) {
		for i := 1; i <= 3; i++ {
			p.Inc(10 * sim.NS)
			f.Write(i)
		}
	})
	k.Run(sim.RunForever)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("consumer got %v, want [1 2 3]", got)
	}
	// Data inserted at 10/20/30 ns; the method wakes at 10ns (delayed
	// NotEmpty) and drains what is externally visible then, re-arming
	// for the future-dated rest.
	want := []sim.Time{10 * sim.NS, 20 * sim.NS, 30 * sim.NS}
	for i := range want {
		if dates[i] != want[i] {
			t.Errorf("consume %d at %v, want %v", i, dates[i], want[i])
		}
	}
}
