package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Instrumented Smart FIFO paths must stay allocation-free: the bridge
// counters are bumped only on the staging/credit exchange paths (one
// atomic add + one histogram observe per FLUSH, never per word), so the
// steady-state streaming cost is identical with metrics enabled,
// disabled, and never configured.

func smartOpsAllocs() float64 {
	k := sim.NewKernel("alloc-metrics")
	defer k.Shutdown()
	f := core.NewSmart[int](k, "f", 64)
	k.Thread("writer", func(p *sim.Process) {
		for i := 0; ; i++ {
			f.Write(i)
			p.Inc(sim.NS)
		}
	})
	k.Thread("reader", func(p *sim.Process) {
		for {
			f.Read()
			p.Inc(sim.NS)
		}
	})
	var end sim.Time
	step := func() { end += 2 * sim.US; k.Run(end) }
	step()
	return testing.AllocsPerRun(50, step)
}

func shardedFlushAllocs() float64 {
	k := sim.NewKernel("alloc-metrics")
	defer k.Shutdown()
	f := core.NewSharded[int](k, k, "f", 64)
	wbuf := make([]int, 32)
	rbuf := make([]int, 32)
	k.Thread("writer", func(p *sim.Process) {
		w := f.Writer()
		for {
			w.WriteBurst(wbuf, sim.NS)
			p.Inc(3 * sim.NS)
		}
	})
	k.Thread("reader", func(p *sim.Process) {
		r := f.Reader()
		for {
			r.ReadBurst(rbuf, sim.NS)
			p.Inc(2 * sim.NS)
		}
	})
	var end sim.Time
	step := func() {
		end += 2 * sim.US
		for i := 0; i < 40; i++ {
			k.Run(end)
			f.Flush()
		}
	}
	step()
	return testing.AllocsPerRun(20, step)
}

func TestSmartFIFOZeroAllocMetricsEnabled(t *testing.T) {
	reg := metrics.NewRegistry()
	core.EnableBridgeMetrics(reg)
	sim.EnableMetrics(reg)
	defer core.EnableBridgeMetrics(nil)
	defer sim.EnableMetrics(nil)
	if n := smartOpsAllocs(); n != 0 {
		t.Errorf("SmartFIFO ops with metrics enabled: %v allocs per step, want 0", n)
	}
	if n := shardedFlushAllocs(); n != 0 {
		t.Errorf("sharded flush with metrics enabled: %v allocs per step, want 0", n)
	}
	// The bridge counters must actually have moved.
	var words float64
	for _, f := range reg.Snapshot() {
		if f.Name == "core_bridge_words_total" {
			for _, s := range f.Series {
				words += s.Value
			}
		}
	}
	if words == 0 {
		t.Error("metrics enabled but core_bridge_words_total stayed 0")
	}
}

func TestSmartFIFOZeroAllocMetricsDisabled(t *testing.T) {
	core.EnableBridgeMetrics(nil)
	sim.EnableMetrics(nil)
	if n := smartOpsAllocs(); n != 0 {
		t.Errorf("SmartFIFO ops with metrics disabled: %v allocs per step, want 0", n)
	}
	if n := shardedFlushAllocs(); n != 0 {
		t.Errorf("sharded flush with metrics disabled: %v allocs per step, want 0", n)
	}
}
