package core

import (
	"sync/atomic"

	"repro/internal/metrics"
)

// Bridge traffic instrumentation. The per-op SmartFIFO paths stay
// untouched — crossing counters are bumped only on the exchange paths
// (stageOutboxLocked / deliverFreesLocked), which already hold the
// mailbox lock and move whole batches, so the cost is one add per
// FLUSH, not per word. Two layers feed off the same sites:
//
//   - shared metrics (BridgeMetrics): process-wide totals and the
//     flush-batch-size histogram, for the /metrics scrape;
//   - per-bridge raw counters (Traffic): always on, read through
//     ShardedFIFO.Traffic — the per-channel feed a profile-guided
//     partitioner needs to weight netlist edges by observed traffic.

// BridgeMetrics is the shared sink for cross-shard traffic. All fields
// may be nil (updates no-op).
type BridgeMetrics struct {
	// WordsCrossed counts payload words staged across a shard
	// boundary; CreditReturns counts freed-cell credits delivered back.
	WordsCrossed  *metrics.Counter
	CreditReturns *metrics.Counter
	// FlushBatchWords is the distribution of words per writer-side
	// staging flush — the batching the temporal decoupling buys.
	FlushBatchWords *metrics.Histogram
}

// defaultBridgeMetrics is captured by NewSharded; atomic so enabling
// can race bridge construction in tests.
var defaultBridgeMetrics atomic.Pointer[BridgeMetrics]

// EnableBridgeMetrics registers the bridge traffic family on r and
// makes every subsequently created ShardedFIFO publish into it. A nil
// registry disables publication for new bridges.
func EnableBridgeMetrics(r *metrics.Registry) {
	if r == nil {
		defaultBridgeMetrics.Store(nil)
		return
	}
	defaultBridgeMetrics.Store(&BridgeMetrics{
		WordsCrossed:  r.Counter("core_bridge_words_total", "Payload words staged across shard boundaries (all bridges)."),
		CreditReturns: r.Counter("core_bridge_credits_total", "Freed-cell credits returned across shard boundaries (all bridges)."),
		FlushBatchWords: r.Histogram("core_bridge_flush_batch_words", "Words per writer-side staging flush.",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}),
	})
}

// Traffic is one bridge's cumulative cross-boundary activity: the raw
// per-channel counters ROADMAP item 5 (profile-guided partitioning)
// weights netlist edges with.
type Traffic struct {
	// WordsCrossed counts payload words staged writer→reader;
	// Flushes counts the staging flushes that carried them.
	WordsCrossed uint64
	Flushes      uint64
	// CreditReturns counts freed-cell credits delivered reader→writer.
	CreditReturns uint64
}

// Traffic returns the bridge's cumulative traffic counters. Safe to
// call at any time (the counters move under the mailbox lock).
func (f *ShardedFIFO[T]) Traffic() Traffic {
	f.x.mu.Lock()
	defer f.x.mu.Unlock()
	return f.x.traffic
}

// ChanTraffic is one intra-shard channel's cumulative activity, the
// local-channel mirror of the bridge Traffic feed. It is derived from
// the Stats counters the hot word paths already maintain — no extra
// work, no atomics — so it is always on.
type ChanTraffic struct {
	// WordsWritten and WordsRead count completed word transfers
	// (burst transfers add their full length).
	WordsWritten, WordsRead uint64
	// WriterBlocks and ReaderBlocks count accesses that found the FIFO
	// internally full (resp. empty) and had to context switch.
	WriterBlocks, ReaderBlocks uint64
}

// Traffic returns the FIFO's cumulative traffic counters. Word and
// block counts are dated-behaviour facts — identical under any
// scheduler or partitioning of the same model — which is what lets a
// profile harvested from one run re-weight the placement of another.
func (f *SmartFIFO[T]) Traffic() ChanTraffic {
	return ChanTraffic{
		WordsWritten: f.stats.Writes,
		WordsRead:    f.stats.Reads,
		WriterBlocks: f.stats.WriterBlocks,
		ReaderBlocks: f.stats.ReaderBlocks,
	}
}
