package core

import "repro/internal/sim"

// Burst access: the packetization extension of §IV-C. The case study's
// network interfaces move whole packets between accelerators and the NoC;
// doing that word by word with an annotation per word is exactly the
// pattern the Smart FIFO makes cheap, so the extension is a burst API with
// one per-word period applied with Inc (no context switch per word).

// WriteBurst writes vals in order, advancing the writer's local clock by
// per between consecutive words: word i is written at the date of word 0
// plus i*per (later if the FIFO back-pressures). It blocks like Write when
// the FIFO is internally full.
func (f *SmartFIFO[T]) WriteBurst(vals []T, per sim.Time) {
	p := f.caller("WriteBurst")
	for i, v := range vals {
		if i > 0 {
			p.Inc(per)
		}
		f.Write(v)
	}
}

// ReadBurst fills dst in order, advancing the reader's local clock by per
// between consecutive words. It blocks like Read when the FIFO is
// internally empty.
func (f *SmartFIFO[T]) ReadBurst(dst []T, per sim.Time) {
	p := f.caller("ReadBurst")
	for i := range dst {
		if i > 0 {
			p.Inc(per)
		}
		dst[i] = f.Read()
	}
}

// TryReadBurst pops up to len(dst) externally available words without
// blocking, advancing the caller's local clock by per between words. It
// returns the number of words read. Safe from method processes; used by
// the NoC network interfaces to packetize.
func (f *SmartFIFO[T]) TryReadBurst(dst []T, per sim.Time) int {
	p := f.caller("TryReadBurst")
	n := 0
	for i := range dst {
		if i > 0 {
			if f.IsEmpty() {
				break
			}
			p.Inc(per)
		}
		v, ok := f.TryRead()
		if !ok {
			break
		}
		dst[i] = v
		n++
	}
	return n
}
