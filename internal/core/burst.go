package core

import (
	"repro/internal/fifo"
	"repro/internal/sim"
)

// Burst access: the packetization extension of §IV-C. The case study's
// network interfaces and DMA engines move whole packets between
// accelerators, memory and the NoC; doing that word by word pays the full
// scalar Write/Read path — bounds checks, per-word date stamping and
// event-notification probes — for every word. Since the words of a burst
// advance the local clock by a fixed per, their dates form arithmetic runs
// that can be annotated in bulk.
//
// # Contract
//
// Every burst method is defined by its scalar oracle, word 0 transferred
// at the caller's current local date and per of local time advanced
// between consecutive words:
//
//	WriteBurst:    for i, v := range vals { if i > 0 { p.Inc(per) }; f.Write(v) }
//	ReadBurst:     for i := range dst     { if i > 0 { p.Inc(per) }; dst[i] = f.Read() }
//	TryWriteBurst: for i, v := range vals { if i > 0 { if f.IsFull() { break }; p.Inc(per) }
//	                                        if !f.TryWrite(v) { break }; n++ }
//	TryReadBurst:  for i := range dst     { if i > 0 { if f.IsEmpty() { break }; p.Inc(per) }
//	                                        v, ok := f.TryRead(); if !ok { break }; dst[i] = v; n++ }
//
// The bulk implementation is bit-identical to those loops (pinned by the
// oracle property tests in burst_test.go): values, cell timestamps, local
// dates, Stats counters, context switches and blocking behavior are all
// unchanged. Only Stats.Notifications (a kernel diagnostic counter) drops,
// because redundant per-word notification calls are collapsed.
//
// # Fast path
//
// A burst is split into runs bounded by the next internal occupancy
// boundary (internally full for writes, empty for reads). Within a run no
// other process can execute — the scalar loop never yields between
// non-blocking words — so the run is executed as a whole:
//
//   - payload moves with copy into/out of the ring (≤ 2 contiguous
//     segments);
//   - insertion/freeing dates are annotated in one vector pass (runDates),
//     each word's date being the previous date + per lifted to the cell's
//     bound date exactly as the scalar Inc + AdvanceLocalTo pair does;
//   - event work collapses to at most one NotifyDelta and one
//     NotifyAtReplace per event per run. This is exact: NotifyDelta is
//     idempotent while pending, and NotifyAtReplace has replace semantics,
//     so only the last call before a yield is observable. The dates along
//     a run's bound cells are non-decreasing (each side's access
//     discipline stamps them in ring order), which makes the per-word
//     probe conditions monotone: the last word's probe decides the final
//     pending state.
//
// At a blocking boundary the transfer falls back to the scalar path for
// one word — blocking, stats and the §III-A block policy are exactly the
// scalar ones — then resumes in bulk.

// WriteBurst writes vals in order, advancing the writer's local clock by
// per between consecutive words: word i is written at the date of word 0
// plus i*per (later if the FIFO back-pressures). It blocks like Write when
// the FIFO is internally full.
func (f *SmartFIFO[T]) WriteBurst(vals []T, per sim.Time) {
	p := f.caller("WriteBurst")
	if f.fault != FaultNone || per < 0 {
		// Fault-injection runs keep the literal scalar path (faults
		// perturb per-word behavior the fast path does not model); a
		// negative per panics inside Inc exactly like the scalar loop.
		for i, v := range vals {
			if i > 0 {
				p.Inc(per)
			}
			f.Write(v)
		}
		return
	}
	first := true
	for len(vals) > 0 {
		if n := f.writeRun(p, vals, per, !first); n > 0 {
			vals = vals[n:]
			first = false
			continue
		}
		// Internally full: one scalar word (blocks, counts
		// WriterBlocks, applies the block policy), then resume bulk.
		if !first {
			p.Inc(per)
		}
		f.Write(vals[0])
		vals = vals[1:]
		first = false
	}
}

// ReadBurst fills dst in order, advancing the reader's local clock by per
// between consecutive words. It blocks like Read when the FIFO is
// internally empty.
func (f *SmartFIFO[T]) ReadBurst(dst []T, per sim.Time) {
	p := f.caller("ReadBurst")
	if f.fault != FaultNone || per < 0 {
		for i := range dst {
			if i > 0 {
				p.Inc(per)
			}
			dst[i] = f.Read()
		}
		return
	}
	first := true
	for len(dst) > 0 {
		if n := f.readRun(p, dst, per, !first); n > 0 {
			dst = dst[n:]
			first = false
			continue
		}
		if !first {
			p.Inc(per)
		}
		dst[0] = f.Read()
		dst = dst[1:]
		first = false
	}
}

// TryWriteBurst writes up to len(vals) externally acceptable words without
// blocking, advancing the caller's local clock by per between words, and
// returns the number of words written. Safe from method processes.
func (f *SmartFIFO[T]) TryWriteBurst(vals []T, per sim.Time) int {
	p := f.caller("TryWriteBurst")
	if f.fault != FaultNone || per < 0 {
		n := 0
		for i, v := range vals {
			if i > 0 {
				if f.IsFull() {
					break
				}
				p.Inc(per)
			}
			if !f.TryWrite(v) {
				break
			}
			n++
		}
		return n
	}
	r := &f.cells
	d := len(r.ins)
	mMax := d - r.nBusy
	if mMax > len(vals) {
		mMax = len(vals)
	}
	if mMax == 0 || r.free[r.firstFree] > p.LocalTime() {
		return 0
	}
	f.checkSideOrder(p, &f.lastWriteDate, "write")
	q0 := r.firstFree
	nBusy0 := r.nBusy
	m, end := tryRunDates(r.ins, r.free, q0, mMax, p.LocalTime(), per)
	copyIn(r.data, q0, vals[:m])
	r.firstFree = wrap(q0+m, d)
	r.nBusy += m
	f.stats.Writes += uint64(m)
	f.lastWriteDate = end
	p.AdvanceLocalTo(end)
	f.writeRunEvents(q0, m, nBusy0)
	return m
}

// TryReadBurst pops up to len(dst) externally available words without
// blocking, advancing the caller's local clock by per between words. It
// returns the number of words read. Safe from method processes; used by
// the NoC network interfaces to packetize.
func (f *SmartFIFO[T]) TryReadBurst(dst []T, per sim.Time) int {
	p := f.caller("TryReadBurst")
	if f.fault != FaultNone || per < 0 {
		n := 0
		for i := range dst {
			if i > 0 {
				if f.IsEmpty() {
					break
				}
				p.Inc(per)
			}
			v, ok := f.TryRead()
			if !ok {
				break
			}
			dst[i] = v
			n++
		}
		return n
	}
	r := &f.cells
	d := len(r.ins)
	mMax := r.nBusy
	if mMax > len(dst) {
		mMax = len(dst)
	}
	if mMax == 0 || r.ins[r.firstBusy] > p.LocalTime() {
		return 0
	}
	f.checkSideOrder(p, &f.lastReadDate, "read")
	q0 := r.firstBusy
	nBusy0 := r.nBusy
	m, end := tryRunDates(r.free, r.ins, q0, mMax, p.LocalTime(), per)
	copyOut(dst[:m], r.data, q0)
	r.firstBusy = wrap(q0+m, d)
	r.nBusy -= m
	f.stats.Reads += uint64(m)
	f.lastReadDate = end
	p.AdvanceLocalTo(end)
	f.readRunEvents(q0, m, nBusy0)
	return m
}

// writeRun executes one bulk write run: up to len(vals) words into the
// internally free cells. It returns the number of words written, 0 iff
// the ring is internally full.
func (f *SmartFIFO[T]) writeRun(p *sim.Process, vals []T, per sim.Time, incFirst bool) int {
	r := &f.cells
	d := len(r.ins)
	m := d - r.nBusy
	if m == 0 {
		return 0
	}
	if m > len(vals) {
		m = len(vals)
	}
	f.checkSideOrder(p, &f.lastWriteDate, "write")
	q0 := r.firstFree
	nBusy0 := r.nBusy
	end, adv := runDates(r.ins, r.free, q0, m, p.LocalTime(), per, incFirst)
	copyIn(r.data, q0, vals[:m])
	r.firstFree = wrap(q0+m, d)
	r.nBusy += m
	f.stats.Writes += uint64(m)
	f.stats.WriterAdvances += adv
	f.lastWriteDate = end
	p.AdvanceLocalTo(end)
	f.writeRunEvents(q0, m, nBusy0)
	return m
}

// readRun executes one bulk read run: up to len(dst) words out of the
// internally busy cells. It returns the number of words read, 0 iff the
// ring is internally empty.
func (f *SmartFIFO[T]) readRun(p *sim.Process, dst []T, per sim.Time, incFirst bool) int {
	r := &f.cells
	d := len(r.ins)
	m := r.nBusy
	if m == 0 {
		return 0
	}
	if m > len(dst) {
		m = len(dst)
	}
	f.checkSideOrder(p, &f.lastReadDate, "read")
	q0 := r.firstBusy
	nBusy0 := r.nBusy
	end, adv := runDates(r.free, r.ins, q0, m, p.LocalTime(), per, incFirst)
	copyOut(dst[:m], r.data, q0)
	r.firstBusy = wrap(q0+m, d)
	r.nBusy -= m
	f.stats.Reads += uint64(m)
	f.stats.ReaderAdvances += adv
	f.lastReadDate = end
	p.AdvanceLocalTo(end)
	f.readRunEvents(q0, m, nBusy0)
	return m
}

// writeRunEvents is the collapsed event epilogue of a write run of m ≥ 1
// words starting at cell q0 with nBusy0 cells busy. It reproduces, in one
// shot, the final pending state the scalar loop's per-word probes leave
// behind.
func (f *SmartFIFO[T]) writeRunEvents(q0, m, nBusy0 int) {
	r := &f.cells
	d := len(r.ins)
	// Wake a blocked reader (idempotent while pending: one call stands
	// for the scalar loop's m calls).
	f.cellFilled.NotifyDelta()
	// §III-B: the FIFO became externally non-empty at the insertion date
	// of the run's first word (only word 0 can see an all-free ring).
	if nBusy0 == 0 {
		f.notifyAtOrDelta(f.notEmpty, r.ins[q0])
	}
	now := f.k.Now()
	if r.nBusy < d {
		// The scalar loop's last notFull probe names the next free
		// cell's freeing date; earlier probes were replaced.
		if fd := r.free[r.firstFree]; fd > now {
			f.notifyAtOrDelta(f.notFull, fd)
		}
	} else if m >= 2 {
		// The ring filled: the last probing word was m-2, naming the
		// freeing date of the cell word m-1 then filled.
		if fd := r.free[wrap(q0+m-1, d)]; fd > now {
			f.notifyAtOrDelta(f.notFull, fd)
		}
	}
}

// readRunEvents is the symmetric collapsed epilogue of a read run.
func (f *SmartFIFO[T]) readRunEvents(q0, m, nBusy0 int) {
	r := &f.cells
	d := len(r.ins)
	// Wake a blocked writer.
	f.cellFreed.NotifyDelta()
	// The FIFO became externally non-full at the freeing date of the
	// run's first pop (only word 0 can see an all-busy ring).
	if nBusy0 == d {
		f.notifyAtOrDelta(f.notFull, r.free[q0])
	}
	now := f.k.Now()
	if r.nBusy > 0 {
		// §III-B case 2: the next datum becomes externally visible
		// only at its (future) insertion date.
		if id := r.ins[r.firstBusy]; id > now {
			f.notifyAtOrDelta(f.notEmpty, id)
		}
	} else if m >= 2 {
		// The ring drained: the last probing word was m-2, naming the
		// insertion date of the cell word m-1 then popped.
		if id := r.ins[wrap(q0+m-1, d)]; id > now {
			f.notifyAtOrDelta(f.notEmpty, id)
		}
	}
}

var (
	_ fifo.BurstWriter[int] = (*SmartFIFO[int])(nil)
	_ fifo.BurstReader[int] = (*SmartFIFO[int])(nil)
	_ fifo.BurstWriter[int] = (*ShardedWriter[int])(nil)
	_ fifo.BurstReader[int] = (*ShardedReader[int])(nil)
)

// wrap reduces q into [0, d) assuming q < 2d.
func wrap(q, d int) int {
	if q >= d {
		q -= d
	}
	return q
}

// copyIn copies vals into the ring payload slice starting at q0, in at
// most two contiguous segments.
func copyIn[T any](data []T, q0 int, vals []T) {
	n1 := len(data) - q0
	if n1 > len(vals) {
		n1 = len(vals)
	}
	copy(data[q0:q0+n1], vals[:n1])
	copy(data, vals[n1:])
}

// copyOut moves ring payload starting at q0 into dst and zeroes the
// vacated cells (the scalar path clears each popped cell).
func copyOut[T any](dst []T, data []T, q0 int) {
	n1 := len(data) - q0
	if n1 > len(dst) {
		n1 = len(dst)
	}
	copy(dst[:n1], data[q0:q0+n1])
	clear(data[q0 : q0+n1])
	copy(dst[n1:], data)
	clear(data[:len(dst)-n1])
}
