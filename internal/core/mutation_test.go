package core_test

// Mechanized version of the paper's §IV-A mutation testing: for every
// injectable fault, at least one validation scenario must diverge from the
// reference trace (or crash). A fault that survives the whole suite means
// the suite is too weak.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// mutationScenarios is the §IV-A suite used for fault detection.
var mutationScenarios = map[string]Scenario{
	"fig1-deep":        scenarioFig1(4, 12, 20*sim.NS, 15*sim.NS),
	"fig1-backpressed": scenarioFig1(1, 12, 0, 25*sim.NS),
	"pipeline":         scenarioPipeline(2, 4, 8, 5*sim.NS, 20*sim.NS, 10*sim.NS),
	"monitor":          scenarioMonitor(3),
	"event-consumer":   scenarioEventConsumer(4),
	"packetizer":       scenarioPacketizer(32, 5, 4),
	"random":           scenarioRandom(7),
}

// runSmartSafe runs scenario s in smart mode with fault ft, converting a
// model panic (some faults break internal invariants) into a detection.
func runSmartSafe(s Scenario, ft core.Fault) (rec *trace.Recorder, panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	rec = runMode(s, ModeSmart, 1, ft)
	return rec, false
}

func TestMutationsAreCaught(t *testing.T) {
	for _, ft := range core.AllFaults {
		t.Run(ft.String(), func(t *testing.T) {
			for name, s := range mutationScenarios {
				ref := runMode(s, ModeReference, 1, core.FaultNone)
				smart, panicked := runSmartSafe(s, ft)
				if panicked || trace.Diff(ref, smart) != "" {
					t.Logf("fault %v caught by scenario %q (panicked=%v)", ft, name, panicked)
					return
				}
			}
			t.Errorf("fault %v not caught by any validation scenario", ft)
		})
	}
}

// TestNoFaultFalsePositive double-checks that the detector itself is sound:
// with FaultNone, no scenario may diverge.
func TestNoFaultFalsePositive(t *testing.T) {
	for name, s := range mutationScenarios {
		ref := runMode(s, ModeReference, 1, core.FaultNone)
		smart, panicked := runSmartSafe(s, core.FaultNone)
		if panicked {
			t.Errorf("scenario %q panicked without fault", name)
			continue
		}
		if d := trace.Diff(ref, smart); d != "" {
			t.Errorf("scenario %q diverges without fault:\n%s", name, d)
		}
	}
}
