package core_test

// Bulk-transfer equivalence tests: the burst fast paths of burst.go are
// pinned bit-identical to their scalar oracles (the per-word loops of the
// burst contract) across randomized depth/per/burst-size schedules,
// including bursts spanning full/empty boundaries, Try bursts, event
// subscribers and shard barriers.

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/trace"
)

// burstOp is one step of a side's schedule: move up to n words with per of
// local time between words, through the blocking or the non-blocking API,
// then advance the local clock by gap.
type burstOp struct {
	n   int
	per sim.Time
	try bool
	gap sim.Time
}

// opsFrom derives a deterministic op schedule from fuzz bytes. Every
// second op is blocking so the schedule always makes progress.
func opsFrom(raw []byte) []burstOp {
	ops := make([]burstOp, 8)
	b := func(i int) byte {
		if len(raw) == 0 {
			return byte(3 * i)
		}
		return raw[i%len(raw)]
	}
	for i := range ops {
		ops[i] = burstOp{
			n:   int(b(3*i) % 9),                   // 0..8 words, 0 exercises empty bursts
			per: sim.Time(b(3*i+1)%4) * 5 * sim.NS, // 0, 5, 10, 15 ns
			try: i%2 == 1 && b(3*i+2)%2 == 1,       // blocking at least every other op
			gap: sim.Time(b(3*i+2)%3) * 7 * sim.NS, // decoupling gap between ops
		}
	}
	return ops
}

// burstSides drives nWords through channel ends using the schedule; bulk
// selects the burst fast paths or the scalar oracle loops. Every op logs
// the mover's local date and word count; a monitor probes the dated Size
// and two method processes log every NotEmpty/NotFull activation, so the
// trace pins values, dates, blocking behavior and the collapsed event
// notifications at once.
type burstEnd interface {
	Write(int)
	Read() int
	TryWrite(int) bool
	TryRead() (int, bool)
	IsEmpty() bool
	IsFull() bool
	WriteBurst([]int, sim.Time)
	ReadBurst([]int, sim.Time)
	TryWriteBurst([]int, sim.Time) int
	TryReadBurst([]int, sim.Time) int
	NotEmpty() *sim.Event
	NotFull() *sim.Event
	Size() int
}

// smartEnd adapts a SmartFIFO to burstEnd (both sides on one value).
type smartEnd struct{ f *core.SmartFIFO[int] }

func (s smartEnd) Write(v int)                           { s.f.Write(v) }
func (s smartEnd) Read() int                             { return s.f.Read() }
func (s smartEnd) TryWrite(v int) bool                   { return s.f.TryWrite(v) }
func (s smartEnd) TryRead() (int, bool)                  { return s.f.TryRead() }
func (s smartEnd) IsEmpty() bool                         { return s.f.IsEmpty() }
func (s smartEnd) IsFull() bool                          { return s.f.IsFull() }
func (s smartEnd) WriteBurst(v []int, per sim.Time)      { s.f.WriteBurst(v, per) }
func (s smartEnd) ReadBurst(d []int, per sim.Time)       { s.f.ReadBurst(d, per) }
func (s smartEnd) TryWriteBurst(v []int, p sim.Time) int { return s.f.TryWriteBurst(v, p) }
func (s smartEnd) TryReadBurst(d []int, p sim.Time) int  { return s.f.TryReadBurst(d, p) }
func (s smartEnd) NotEmpty() *sim.Event                  { return s.f.NotEmpty() }
func (s smartEnd) NotFull() *sim.Event                   { return s.f.NotFull() }
func (s smartEnd) Size() int                             { return s.f.Size() }

// scalarWriteBurst is the literal burst contract, used as the oracle.
func scalarWriteBurst(p *sim.Process, e burstEnd, vals []int, per sim.Time) {
	for i, v := range vals {
		if i > 0 {
			p.Inc(per)
		}
		e.Write(v)
	}
}

func scalarReadBurst(p *sim.Process, e burstEnd, dst []int, per sim.Time) {
	for i := range dst {
		if i > 0 {
			p.Inc(per)
		}
		dst[i] = e.Read()
	}
}

func scalarTryWriteBurst(p *sim.Process, e burstEnd, vals []int, per sim.Time) int {
	n := 0
	for i, v := range vals {
		if i > 0 {
			if e.IsFull() {
				break
			}
			p.Inc(per)
		}
		if !e.TryWrite(v) {
			break
		}
		n++
	}
	return n
}

func scalarTryReadBurst(p *sim.Process, e burstEnd, dst []int, per sim.Time) int {
	n := 0
	for i := range dst {
		if i > 0 {
			if e.IsEmpty() {
				break
			}
			p.Inc(per)
		}
		v, ok := e.TryRead()
		if !ok {
			break
		}
		dst[i] = v
		n++
	}
	return n
}

func driveBurst(k *sim.Kernel, w, r burstEnd, rec *trace.Recorder,
	nWords int, wOps, rOps []burstOp, bulk, probe bool) {
	k.Thread("writer", func(p *sim.Process) {
		buf := make([]int, 16)
		next := 0
		for i := 0; next < nWords; i++ {
			op := wOps[i%len(wOps)]
			m := min(op.n, nWords-next)
			if op.try && m > 0 {
				chunk := buf[:m]
				for j := range chunk {
					chunk[j] = next + j
				}
				var got int
				if bulk {
					got = w.TryWriteBurst(chunk, op.per)
				} else {
					got = scalarTryWriteBurst(p, w, chunk, op.per)
				}
				next += got
				rec.Logf(p, "tw %d", got)
			} else {
				if m == 0 {
					m = min(1, nWords-next) // a blocking op always moves ≥ 1 word
				}
				chunk := buf[:m]
				for j := range chunk {
					chunk[j] = next + j
				}
				if bulk {
					w.WriteBurst(chunk, op.per)
				} else {
					scalarWriteBurst(p, w, chunk, op.per)
				}
				next += m
				rec.Logf(p, "w %d", m)
			}
			p.Inc(op.gap)
		}
	})
	k.Thread("reader", func(p *sim.Process) {
		buf := make([]int, 16)
		got := 0
		for i := 0; got < nWords; i++ {
			op := rOps[i%len(rOps)]
			m := min(op.n, nWords-got)
			if op.try && m > 0 {
				chunk := buf[:m]
				var n int
				if bulk {
					n = r.TryReadBurst(chunk, op.per)
				} else {
					n = scalarTryReadBurst(p, r, chunk, op.per)
				}
				for _, v := range chunk[:n] {
					rec.Logf(p, "tr %d", v)
				}
				got += n
			} else {
				if m == 0 {
					m = min(1+op.n, nWords-got)
				}
				chunk := buf[:m]
				if bulk {
					r.ReadBurst(chunk, op.per)
				} else {
					scalarReadBurst(p, r, chunk, op.per)
				}
				for _, v := range chunk {
					rec.Logf(p, "r %d", v)
				}
				got += m
			}
			p.Inc(op.gap)
		}
	})
	if probe {
		// Event observers: any divergence in the collapsed
		// NotEmpty/NotFull notifications shows up as a dated activation
		// difference.
		k.MethodNoInit("obsEmpty", func(p *sim.Process) {
			rec.Logf(p, "notEmpty fired")
		}, r.NotEmpty())
		k.MethodNoInit("obsFull", func(p *sim.Process) {
			rec.Logf(p, "notFull fired")
		}, w.NotFull())
		// Dated monitor probes (§III-C) over the same window.
		k.Thread("monitor", func(p *sim.Process) {
			p.Wait(3 * sim.NS)
			for i := 0; i < 12; i++ {
				rec.Logf(p, "size %d", r.Size())
				p.Wait(25 * sim.NS)
			}
		})
	}
}

// runBurstSmart runs the schedule on a single-kernel SmartFIFO and returns
// the trace plus the channel and kernel counters.
func runBurstSmart(depth, nWords int, wOps, rOps []burstOp, bulk, probe bool) (*trace.Recorder, core.Stats, uint64) {
	k := sim.NewKernel("burst")
	f := core.NewSmart[int](k, "f", depth)
	rec := trace.NewRecorder()
	driveBurst(k, smartEnd{f}, smartEnd{f}, rec, nWords, wOps, rOps, bulk, probe)
	k.Run(sim.RunForever)
	k.Shutdown()
	return rec, f.Stats(), k.Stats().ContextSwitches
}

// TestQuickBurstMatchesScalarOracle is the headline bulk-transfer pin: for
// arbitrary depths, periods and burst schedules, the bulk paths produce
// exactly the scalar oracle's values, dates, stats, context switches and
// event notifications.
func TestQuickBurstMatchesScalarOracle(t *testing.T) {
	prop := func(depthRaw uint8, wRaw, rRaw []byte) bool {
		depth := int(depthRaw%64) + 1
		wOps, rOps := opsFrom(wRaw), opsFrom(rRaw)
		const nWords = 150
		refTrace, refStats, refSwitches := runBurstSmart(depth, nWords, wOps, rOps, false, true)
		gotTrace, gotStats, gotSwitches := runBurstSmart(depth, nWords, wOps, rOps, true, true)
		if d := trace.Diff(refTrace, gotTrace); d != "" {
			t.Logf("depth %d: bulk trace differs from scalar oracle:\n%s", depth, d)
			return false
		}
		if refStats != gotStats {
			t.Logf("depth %d: stats differ: scalar %+v, bulk %+v", depth, refStats, gotStats)
			return false
		}
		if refSwitches != gotSwitches {
			t.Logf("depth %d: context switches differ: scalar %d, bulk %d", depth, refSwitches, gotSwitches)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestBurstMatchesScalarOracleFixedDepths runs the oracle comparison at the
// pinned depths of the acceptance criteria (1, 4, 64) with a fixed
// boundary-heavy schedule, so a regression cannot hide behind fuzz luck.
func TestBurstMatchesScalarOracleFixedDepths(t *testing.T) {
	wOps := []burstOp{{8, 5 * sim.NS, false, 0}, {3, 0, true, 7 * sim.NS}, {5, 10 * sim.NS, false, 14 * sim.NS}, {1, sim.NS, true, 0}}
	rOps := []burstOp{{6, 15 * sim.NS, false, 7 * sim.NS}, {4, 0, true, 0}, {7, 5 * sim.NS, false, 0}, {2, sim.NS, true, 21 * sim.NS}}
	for _, depth := range []int{1, 4, 64} {
		refTrace, refStats, refSwitches := runBurstSmart(depth, 400, wOps, rOps, false, true)
		gotTrace, gotStats, gotSwitches := runBurstSmart(depth, 400, wOps, rOps, true, true)
		if d := trace.Diff(refTrace, gotTrace); d != "" {
			t.Errorf("depth %d: bulk trace differs from scalar oracle:\n%s", depth, d)
		}
		if refStats != gotStats {
			t.Errorf("depth %d: stats differ: scalar %+v, bulk %+v", depth, refStats, gotStats)
		}
		if refSwitches != gotSwitches {
			t.Errorf("depth %d: context switches differ: scalar %d, bulk %d", depth, refSwitches, gotSwitches)
		}
	}
}

// shardedEnds adapts a ShardedFIFO's two endpoints to burstEnd; the
// writer-side methods panic if used on the wrong end, which the driver
// never does.
type shardedWriterEnd struct{ w *core.ShardedWriter[int] }

func (s shardedWriterEnd) Write(v int)                           { s.w.Write(v) }
func (s shardedWriterEnd) Read() int                             { panic("reader op on writer end") }
func (s shardedWriterEnd) TryWrite(v int) bool                   { return s.w.TryWrite(v) }
func (s shardedWriterEnd) TryRead() (int, bool)                  { panic("reader op on writer end") }
func (s shardedWriterEnd) IsEmpty() bool                         { panic("reader op on writer end") }
func (s shardedWriterEnd) IsFull() bool                          { return s.w.IsFull() }
func (s shardedWriterEnd) WriteBurst(v []int, per sim.Time)      { s.w.WriteBurst(v, per) }
func (s shardedWriterEnd) ReadBurst(d []int, per sim.Time)       { panic("reader op on writer end") }
func (s shardedWriterEnd) TryWriteBurst(v []int, p sim.Time) int { return s.w.TryWriteBurst(v, p) }
func (s shardedWriterEnd) TryReadBurst(d []int, p sim.Time) int  { panic("reader op on writer end") }
func (s shardedWriterEnd) NotEmpty() *sim.Event                  { panic("reader op on writer end") }
func (s shardedWriterEnd) NotFull() *sim.Event                   { return s.w.NotFull() }
func (s shardedWriterEnd) Size() int                             { return s.w.Size() }

type shardedReaderEnd struct{ r *core.ShardedReader[int] }

func (s shardedReaderEnd) Write(v int)                           { panic("writer op on reader end") }
func (s shardedReaderEnd) Read() int                             { return s.r.Read() }
func (s shardedReaderEnd) TryWrite(v int) bool                   { panic("writer op on reader end") }
func (s shardedReaderEnd) TryRead() (int, bool)                  { return s.r.TryRead() }
func (s shardedReaderEnd) IsEmpty() bool                         { return s.r.IsEmpty() }
func (s shardedReaderEnd) IsFull() bool                          { panic("writer op on reader end") }
func (s shardedReaderEnd) WriteBurst(v []int, per sim.Time)      { panic("writer op on reader end") }
func (s shardedReaderEnd) ReadBurst(d []int, per sim.Time)       { s.r.ReadBurst(d, per) }
func (s shardedReaderEnd) TryWriteBurst(v []int, p sim.Time) int { panic("writer op on reader end") }
func (s shardedReaderEnd) TryReadBurst(d []int, p sim.Time) int  { return s.r.TryReadBurst(d, p) }
func (s shardedReaderEnd) NotEmpty() *sim.Event                  { return s.r.NotEmpty() }
func (s shardedReaderEnd) NotFull() *sim.Event                   { panic("writer op on reader end") }
func (s shardedReaderEnd) Size() int                             { return s.r.Size() }

// runBurstSharded runs the same schedule over a two-shard ShardedFIFO
// bridge under the conservative coordinator. Event observers live on the
// endpoint kernels; the monitor probe is omitted (a monitor is a
// same-kernel construct).
func runBurstSharded(depth, nWords int, wOps, rOps []burstOp, bulk bool) (*trace.Recorder, core.Stats) {
	kw := sim.NewKernel("burst.w")
	kr := sim.NewKernel("burst.r")
	f := core.NewSharded[int](kw, kr, "f", depth)
	rec := trace.NewRecorder()
	// Split the driver across the two kernels by registering writer and
	// reader separately.
	w, r := shardedWriterEnd{f.Writer()}, shardedReaderEnd{f.Reader()}
	kw.Thread("writer", func(p *sim.Process) {
		buf := make([]int, 16)
		next := 0
		for i := 0; next < nWords; i++ {
			op := wOps[i%len(wOps)]
			m := min(op.n, nWords-next)
			if op.try && m > 0 {
				chunk := buf[:m]
				for j := range chunk {
					chunk[j] = next + j
				}
				var got int
				if bulk {
					got = w.TryWriteBurst(chunk, op.per)
				} else {
					got = scalarTryWriteBurst(p, w, chunk, op.per)
				}
				next += got
				rec.Logf(p, "tw %d", got)
			} else {
				if m == 0 {
					m = min(1, nWords-next) // a blocking op always moves ≥ 1 word
				}
				chunk := buf[:m]
				for j := range chunk {
					chunk[j] = next + j
				}
				if bulk {
					w.WriteBurst(chunk, op.per)
				} else {
					scalarWriteBurst(p, w, chunk, op.per)
				}
				next += m
				rec.Logf(p, "w %d", m)
			}
			p.Inc(op.gap)
		}
	})
	kr.Thread("reader", func(p *sim.Process) {
		buf := make([]int, 16)
		got := 0
		for i := 0; got < nWords; i++ {
			op := rOps[i%len(rOps)]
			m := min(op.n, nWords-got)
			if op.try && m > 0 {
				chunk := buf[:m]
				var n int
				if bulk {
					n = r.TryReadBurst(chunk, op.per)
				} else {
					n = scalarTryReadBurst(p, r, chunk, op.per)
				}
				for _, v := range chunk[:n] {
					rec.Logf(p, "tr %d", v)
				}
				got += n
			} else {
				if m == 0 {
					m = min(1+op.n, nWords-got)
				}
				chunk := buf[:m]
				if bulk {
					r.ReadBurst(chunk, op.per)
				} else {
					scalarReadBurst(p, r, chunk, op.per)
				}
				for _, v := range chunk {
					rec.Logf(p, "r %d", v)
				}
				got += m
			}
			p.Inc(op.gap)
		}
	})
	c := par.NewCoordinator()
	c.AddShard(kw)
	c.AddShard(kr)
	c.AddBridge(f)
	c.Run(sim.RunForever)
	c.Shutdown()
	return rec, f.Stats()
}

// TestQuickShardedBurstMatchesScalar pins the bridge endpoints' bulk paths
// against their scalar loops across shard barriers: same dated trace, same
// channel stats.
func TestQuickShardedBurstMatchesScalar(t *testing.T) {
	prop := func(depthRaw uint8, wRaw, rRaw []byte) bool {
		depth := int(depthRaw%16) + 1
		wOps, rOps := opsFrom(wRaw), opsFrom(rRaw)
		const nWords = 120
		refTrace, refStats := runBurstSharded(depth, nWords, wOps, rOps, false)
		gotTrace, gotStats := runBurstSharded(depth, nWords, wOps, rOps, true)
		if d := trace.Diff(refTrace, gotTrace); d != "" {
			t.Logf("depth %d: sharded bulk trace differs from scalar:\n%s", depth, d)
			return false
		}
		if refStats != gotStats {
			t.Logf("depth %d: sharded stats differ: scalar %+v, bulk %+v", depth, refStats, gotStats)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestShardedBurstMatchesSingleKernel extends TestShardedFIFOMatchesSmart
// to bursts: a two-shard bulk run produces exactly the dates of a
// one-kernel bulk run, which the oracle tests above tie back to the scalar
// word-at-a-time semantics.
func TestShardedBurstMatchesSingleKernel(t *testing.T) {
	wOps := []burstOp{{7, 4 * sim.NS, false, 3 * sim.NS}, {2, 0, true, 0}, {8, 9 * sim.NS, false, 0}}
	rOps := []burstOp{{5, 6 * sim.NS, false, 0}, {3, 2 * sim.NS, true, 11 * sim.NS}, {6, 0, false, 0}}
	for _, depth := range []int{1, 4, 64} {
		refTrace, refStats, _ := runBurstSmart(depth, 300, wOps, rOps, true, false)
		gotTrace, gotStats := runBurstSharded(depth, 300, wOps, rOps, true)
		if d := trace.Diff(refTrace, gotTrace); d != "" {
			t.Errorf("depth %d: sharded bulk trace differs from single-kernel bulk:\n%s", depth, d)
		}
		// The bridge parks more often than a same-kernel FIFO (deliveries
		// lag to barriers), so only the access counters are comparable —
		// the dates above are the pinned property.
		if refStats.Writes != gotStats.Writes || refStats.Reads != gotStats.Reads {
			t.Errorf("depth %d: access counts differ: single %+v, sharded %+v", depth, refStats, gotStats)
		}
	}
}

// TestBurstDualModeEquivalence is the §IV-A oracle applied to bursts: a
// bursting producer/consumer pair in decoupled mode (bulk Smart-FIFO
// paths) against the non-decoupled reference (regular FIFO, Wait per
// word) — identical dated traces at every depth.
func TestBurstDualModeEquivalence(t *testing.T) {
	for _, depth := range []int{1, 4, 64} {
		build := func(e *Env) {
			f := e.NewFIFO("fifo", depth)
			const n, chunk = 240, 8
			per := 5 * sim.NS
			e.K.Thread("writer", func(p *sim.Process) {
				buf := make([]int, chunk)
				for i := 0; i < n; {
					m := min(chunk, n-i)
					for j := 0; j < m; j++ {
						buf[j] = i + j
					}
					if e.Mode == ModeSmart {
						f.(*core.SmartFIFO[int]).WriteBurst(buf[:m], sim.Time(per))
					} else {
						for j := 0; j < m; j++ {
							if j > 0 {
								e.Delay(p, sim.Time(per))
							}
							f.Write(buf[j])
						}
					}
					e.Logf(p, "wrote %d", m)
					e.Delay(p, sim.Time(per))
					i += m
				}
			})
			e.K.Thread("reader", func(p *sim.Process) {
				buf := make([]int, chunk)
				for i := 0; i < n; {
					m := min(chunk, n-i)
					if e.Mode == ModeSmart {
						f.(*core.SmartFIFO[int]).ReadBurst(buf[:m], 3*sim.NS)
					} else {
						for j := 0; j < m; j++ {
							if j > 0 {
								e.Delay(p, 3*sim.NS)
							}
							buf[j] = f.Read()
						}
					}
					for _, v := range buf[:m] {
						e.Logf(p, "read %d", v)
					}
					e.Delay(p, 3*sim.NS)
					i += m
				}
			})
		}
		checkDualMode(t, build, int64(depth))
	}
}

// TestEmptyBursts pins the degenerate case: zero-length bursts move
// nothing, advance nothing and notify nothing.
func TestEmptyBursts(t *testing.T) {
	k := sim.NewKernel("empty")
	f := core.NewSmart[int](k, "f", 4)
	k.Thread("p", func(p *sim.Process) {
		p.Inc(5 * sim.NS)
		before := p.LocalTime()
		f.WriteBurst(nil, sim.NS)
		f.ReadBurst(nil, sim.NS)
		if n := f.TryWriteBurst(nil, sim.NS); n != 0 {
			t.Errorf("TryWriteBurst(nil) = %d, want 0", n)
		}
		if n := f.TryReadBurst(nil, sim.NS); n != 0 {
			t.Errorf("TryReadBurst(nil) = %d, want 0", n)
		}
		if p.LocalTime() != before {
			t.Errorf("empty bursts moved the local clock: %v -> %v", before, p.LocalTime())
		}
	})
	k.Run(sim.RunForever)
	k.Shutdown()
	if s := f.Stats(); s.Writes != 0 || s.Reads != 0 {
		t.Errorf("empty bursts counted accesses: %+v", s)
	}
	if f.NotEmpty().HasPending() || f.NotFull().HasPending() {
		t.Error("empty bursts left pending notifications")
	}
}

// TestTryBurstFault keeps the mutation-testing contract on the new API
// surface: with a fault injected, the burst paths fall back to the literal
// scalar loops, so every fault stays observable through bursts too.
func TestBurstFaultFallback(t *testing.T) {
	for _, ft := range []core.Fault{core.FaultNoReaderAdvance, core.FaultInsertDateNow} {
		k := sim.NewKernel(fmt.Sprintf("fault-%v", ft))
		f := core.NewSmart[int](k, "f", 4)
		f.SetFault(ft)
		var faulty, clean []sim.Time
		k.Thread("writer", func(p *sim.Process) {
			buf := []int{1, 2, 3, 4, 5, 6}
			f.WriteBurst(buf, 5*sim.NS)
		})
		k.Thread("reader", func(p *sim.Process) {
			buf := make([]int, 6)
			f.ReadBurst(buf, 2*sim.NS)
			faulty = append(faulty, p.LocalTime())
		})
		k.Run(sim.RunForever)
		k.Shutdown()

		k2 := sim.NewKernel("clean")
		f2 := core.NewSmart[int](k2, "f", 4)
		k2.Thread("writer", func(p *sim.Process) {
			buf := []int{1, 2, 3, 4, 5, 6}
			f2.WriteBurst(buf, 5*sim.NS)
		})
		k2.Thread("reader", func(p *sim.Process) {
			buf := make([]int, 6)
			f2.ReadBurst(buf, 2*sim.NS)
			clean = append(clean, p.LocalTime())
		})
		k2.Run(sim.RunForever)
		k2.Shutdown()
		if fmt.Sprint(faulty) == fmt.Sprint(clean) {
			t.Errorf("fault %v invisible through the burst API (dates %v)", ft, faulty)
		}
	}
}
