package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fifo"
	"repro/internal/sim"
)

func TestArbiterForwardsAll(t *testing.T) {
	k := sim.NewKernel("arb")
	out := fifo.New[int](k, "out", 64)
	a := core.NewArbiter[int](k, "arb", out, 3, 4, 2*sim.NS)
	const perClient = 10
	for c := 0; c < 3; c++ {
		c := c
		k.Thread(fmt.Sprintf("client%d", c), func(p *sim.Process) {
			for i := 0; i < perClient; i++ {
				a.In(c).Write(c*100 + i)
				p.Inc(5 * sim.NS)
			}
		})
	}
	var got []int
	k.Thread("sink", func(p *sim.Process) {
		for i := 0; i < 3*perClient; i++ {
			got = append(got, out.Read())
		}
	})
	k.Run(sim.RunForever)
	if a.Forwards() != 3*perClient {
		t.Errorf("Forwards = %d, want %d", a.Forwards(), 3*perClient)
	}
	// Per-client order must be preserved even though clients interleave.
	last := map[int]int{0: -1, 1: -1, 2: -1}
	for _, v := range got {
		c, i := v/100, v%100
		if i <= last[c] {
			t.Fatalf("client %d: word %d after %d — order broken", c, i, last[c])
		}
		last[c] = i
	}
	for c, l := range last {
		if l != perClient-1 {
			t.Errorf("client %d: last word %d, want %d", c, l, perClient-1)
		}
	}
}

func TestArbiterGrantLatency(t *testing.T) {
	k := sim.NewKernel("arb")
	out := core.NewSmart[int](k, "out", 64)
	const grant = 3 * sim.NS
	a := core.NewArbiter[int](k, "arb", out, 2, 8, grant)
	k.Thread("client0", func(p *sim.Process) {
		// Four words at local date 0: the arbiter serializes them at
		// grant intervals.
		for i := 0; i < 4; i++ {
			a.In(0).Write(i)
		}
	})
	var dates []sim.Time
	k.Thread("sink", func(p *sim.Process) {
		for i := 0; i < 4; i++ {
			out.Read()
			dates = append(dates, p.LocalTime())
		}
	})
	k.Run(sim.RunForever)
	want := []sim.Time{3 * sim.NS, 6 * sim.NS, 9 * sim.NS, 12 * sim.NS}
	for i := range want {
		if dates[i] != want[i] {
			t.Errorf("word %d delivered at %v, want %v", i, dates[i], want[i])
		}
	}
}

func TestArbiterRespectsDates(t *testing.T) {
	// A client writing far in the local future must not be served before
	// its dates: the arbiter sees its queue as externally empty.
	k := sim.NewKernel("arb")
	out := core.NewSmart[int](k, "out", 8)
	a := core.NewArbiter[int](k, "arb", out, 2, 4, 0)
	k.Thread("late", func(p *sim.Process) {
		p.Inc(100 * sim.NS)
		a.In(0).Write(1) // available at 100ns
	})
	k.Thread("early", func(p *sim.Process) {
		p.Inc(10 * sim.NS)
		a.In(1).Write(2) // available at 10ns
	})
	var order []int
	var dates []sim.Time
	k.Thread("sink", func(p *sim.Process) {
		for i := 0; i < 2; i++ {
			order = append(order, out.Read())
			dates = append(dates, p.LocalTime())
		}
	})
	k.Run(sim.RunForever)
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("order = %v, want [2 1] (dates, not process creation, decide)", order)
	}
	if dates[0] != 10*sim.NS || dates[1] != 100*sim.NS {
		t.Errorf("dates = %v, want [10ns 100ns]", dates)
	}
}

func TestArbiterBackpressure(t *testing.T) {
	// Output of depth 1 with a slow sink: the arbiter must stall and
	// resume via out.NotFull without losing words.
	k := sim.NewKernel("arb")
	out := core.NewSmart[int](k, "out", 1)
	a := core.NewArbiter[int](k, "arb", out, 1, 16, sim.NS)
	const n = 12
	k.Thread("client", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			a.In(0).Write(i)
		}
	})
	var got []int
	k.Thread("sink", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			got = append(got, out.Read())
			p.Inc(20 * sim.NS)
		}
	})
	k.Run(sim.RunForever)
	if len(got) != n {
		t.Fatalf("sink got %d words, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}
