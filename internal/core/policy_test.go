package core_test

// Ablation of the §III-A blocking design choice: the paper synchronizes a
// process before parking it on a full/empty FIFO; WaitOnly parks it
// directly, keeping its decoupling offset. Both must be timing-exact; they
// may differ in context-switch counts.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// runSmartPolicy runs scenario s in smart mode under the given blocking
// policy.
func runSmartPolicy(s Scenario, pol core.BlockPolicy) *trace.Recorder {
	e := &Env{
		K:      sim.NewKernel("policy"),
		Rec:    trace.NewRecorder(),
		Mode:   ModeSmart,
		policy: pol,
	}
	s(e)
	e.K.Run(sim.RunForever)
	e.K.Shutdown()
	return e.Rec
}

// TestWaitOnlyKahnExact: for pure Kahn traffic (blocking reads and writes
// only), skipping the pre-block synchronization still yields exact dates —
// the data path only ever needs the latest cell stamps.
func TestWaitOnlyKahnExact(t *testing.T) {
	kahnScenarios := map[string]Scenario{
		"fig1-deep":        scenarioFig1(4, 12, 20*sim.NS, 15*sim.NS),
		"fig1-backpressed": scenarioFig1(1, 12, 0, 25*sim.NS),
		"pipeline":         scenarioPipeline(2, 4, 8, 5*sim.NS, 20*sim.NS, 10*sim.NS),
		"mixed-sync":       scenarioMixedSync(3),
	}
	for name, s := range kahnScenarios {
		ref := runMode(s, ModeReference, 1, core.FaultNone)
		got := runSmartPolicy(s, core.WaitOnly)
		if d := trace.Diff(ref, got); d != "" {
			t.Errorf("Kahn scenario %q under wait-only:\n%s", name, d)
		}
	}
}

// TestWaitOnlyBreaksMonitor demonstrates that the paper's sync-before-park
// is *required* by the non-Kahn interfaces: without it, whole streams
// execute internally at one global instant, cells cycle through several
// generations, and the one-generation timestamps can no longer reconstruct
// the real occupancy at a monitor's query date.
func TestWaitOnlyBreaksMonitor(t *testing.T) {
	s := scenarioMonitor(3)
	ref := runMode(s, ModeReference, 1, core.FaultNone)
	got := runSmartPolicy(s, core.WaitOnly)
	if trace.Diff(ref, got) == "" {
		t.Error("monitor scenario unexpectedly exact under wait-only; " +
			"the sync-before-park ablation should show the design choice is load-bearing")
	}
}

// TestPolicySwitchCounts: WaitOnly never does more context switches than
// SyncThenWait (it skips the pre-block sync), and blocking-heavy workloads
// show a real difference.
func TestPolicySwitchCounts(t *testing.T) {
	count := func(pol core.BlockPolicy) uint64 {
		k := sim.NewKernel("pol")
		f := core.NewSmart[int](k, "f", 1)
		f.SetBlockPolicy(pol)
		const n = 200
		k.Thread("writer", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				f.Write(i)
				p.Inc(3 * sim.NS)
			}
		})
		k.Thread("reader", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				f.Read()
				p.Inc(7 * sim.NS)
			}
		})
		k.Run(sim.RunForever)
		return k.Stats().ContextSwitches
	}
	sync, wait := count(core.SyncThenWait), count(core.WaitOnly)
	if wait > sync {
		t.Errorf("wait-only used more switches (%d) than sync-then-wait (%d)", wait, sync)
	}
	if wait == sync {
		t.Logf("note: policies tied at %d switches on this workload", sync)
	}
}

// TestPolicyBoundsRunAhead: with SyncThenWait, a writer blocked on a full
// FIFO is synchronized, so its local offset is bounded; with WaitOnly the
// offset survives the park. This is the trade-off the paper chose.
func TestPolicyBoundsRunAhead(t *testing.T) {
	probe := func(pol core.BlockPolicy) sim.Time {
		k := sim.NewKernel("pol")
		f := core.NewSmart[int](k, "f", 1)
		f.SetBlockPolicy(pol)
		var offsetAtWake sim.Time = -1
		k.Thread("writer", func(p *sim.Process) {
			f.Write(0)
			p.Inc(100 * sim.NS) // far ahead
			f.Write(1)          // blocks: FIFO full
			if offsetAtWake == -1 {
				offsetAtWake = p.LocalOffset()
			}
		})
		k.Thread("reader", func(p *sim.Process) {
			p.Wait(10 * sim.NS)
			f.Read()
			p.Wait(10 * sim.NS)
			f.Read()
		})
		k.Run(sim.RunForever)
		k.Shutdown()
		return offsetAtWake
	}
	if got := probe(core.SyncThenWait); got != 0 {
		t.Errorf("sync-then-wait: offset after blocked write = %v, want 0", got)
	}
	if got := probe(core.WaitOnly); got == 0 {
		t.Error("wait-only: offset after blocked write = 0, expected preserved run-ahead")
	}
}
