package core

// Fault selects a deliberately injected implementation defect, reproducing
// the paper's §IV-A mutation testing ("we select a line in the Smart FIFO
// implementation, we modify something, we run the test suite again and
// check that at least one test fails") in a mechanized, reproducible form.
// The test suite asserts that every fault is caught by at least one
// validation test.
type Fault int

const (
	// FaultNone is the correct implementation.
	FaultNone Fault = iota
	// FaultNoReaderAdvance skips advancing the reader's local clock to
	// the insertion date: the reader consumes data "before it arrives",
	// as in the broken Fig. 3 execution.
	FaultNoReaderAdvance
	// FaultNoWriterAdvance skips advancing the writer's local clock to
	// the freeing date: the writer overwrites cells the real FIFO had
	// not yet freed.
	FaultNoWriterAdvance
	// FaultInsertDateNow stamps cells with the global date instead of
	// the writer's local date.
	FaultInsertDateNow
	// FaultNotifyNow fires the external NotEmpty/NotFull events at the
	// internal state-change date instead of delaying them to the
	// insertion/freeing date.
	FaultNotifyNow
	// FaultEmptyIgnoresDates makes IsEmpty test only internal occupancy,
	// dropping the second of the two §III-B tests.
	FaultEmptyIgnoresDates
	// FaultSizeIgnoresDates makes the monitor Size return the internal
	// occupancy, dropping the four-rule interpretation of §III-C.
	FaultSizeIgnoresDates
)

// String names the fault.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultNoReaderAdvance:
		return "no-reader-advance"
	case FaultNoWriterAdvance:
		return "no-writer-advance"
	case FaultInsertDateNow:
		return "insert-date-now"
	case FaultNotifyNow:
		return "notify-now"
	case FaultEmptyIgnoresDates:
		return "empty-ignores-dates"
	case FaultSizeIgnoresDates:
		return "size-ignores-dates"
	}
	return "unknown"
}

// AllFaults lists every injectable fault (excluding FaultNone).
var AllFaults = []Fault{
	FaultNoReaderAdvance,
	FaultNoWriterAdvance,
	FaultInsertDateNow,
	FaultNotifyNow,
	FaultEmptyIgnoresDates,
	FaultSizeIgnoresDates,
}

// SetFault injects fault ft into the channel. Tests only.
func (f *SmartFIFO[T]) SetFault(ft Fault) { f.fault = ft }
