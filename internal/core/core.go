// Package core implements the paper's contribution: the Smart FIFO
// (Helmstetter et al., DATE 2013, §III), a bounded FIFO channel that makes
// temporal decoupling work for FIFO-based communications with zero timing
// error and no user-chosen quantum.
//
// # Idea
//
// A regular FIFO under temporal decoupling either corrupts timing (no
// synchronization, Fig. 3) or costs one context switch per access
// (sync-on-every-access, the TDless baseline). The Smart FIFO instead
// timestamps every cell: each cell records its last data-insertion date
// and its last freeing date. A blocking read advances the *reader's local
// clock* to the insertion date of the data it pops instead of context
// switching; a blocking write symmetrically advances the *writer's local
// clock* to the freeing date of the cell it fills. Context switches happen
// only when the FIFO is internally full or empty.
//
// # Interfaces (paper Fig. 4)
//
// The Smart FIFO exposes three interfaces:
//
//   - writer side: Write, TryWrite, IsFull, NotFull — high-rate, requires
//     non-decreasing local dates across accesses;
//   - reader side: Read, TryRead, IsEmpty, NotEmpty — ditto;
//   - monitor: Size, Depth — low-rate, any synchronized process.
//
// Each side must be accessed by a single process (time must go forward on
// each side independently); use Arbiter when several processes share a
// side. The access discipline is checked at run time.
package core

import (
	"fmt"

	"repro/internal/fifo"
	"repro/internal/sim"
)

// Each hardware FIFO slot carries the two timestamps of §III-A — the last
// data-insertion date and the last freeing date — stored struct-of-arrays
// in a ring (ring.go). Together they let the channel answer, for any query
// date, whether the *real* FIFO cell was occupied at that date (see Size),
// and they are what the bulk transfer paths (burst.go) annotate as
// arithmetic runs.

// Stats counts Smart FIFO activity, for the Fig. 5 analysis.
type Stats struct {
	// Writes and Reads count completed accesses.
	Writes, Reads uint64
	// WriterBlocks and ReaderBlocks count accesses that had to context
	// switch because the FIFO was internally full (resp. empty).
	WriterBlocks, ReaderBlocks uint64
	// WriterAdvances and ReaderAdvances count accesses whose only cost
	// was a local-clock advance — the context switches the Smart FIFO
	// saved relative to a regular FIFO under the same timing.
	WriterAdvances, ReaderAdvances uint64
}

// SmartFIFO is a bounded FIFO channel for temporally decoupled models. It
// contains as many cells as the hardware FIFO it models. Writes may block
// (hardware FIFOs are bounded), so both directions carry timestamps.
type SmartFIFO[T any] struct {
	k    *sim.Kernel
	name string

	cells ring[T]

	// Internal blocking events: a parked (synchronized) writer waits on
	// cellFreed, a parked reader on cellFilled.
	cellFreed  *sim.Event
	cellFilled *sim.Event

	// External events for the non-blocking interface (§III-B). Their
	// notifications are delayed to the date the external state actually
	// changes (insertion/freeing date), not the internal-change date.
	notEmpty *sim.Event
	notFull  *sim.Event

	// Access-discipline state: local dates must not decrease on a side.
	lastWriteDate sim.Time
	lastReadDate  sim.Time

	stats  Stats
	fault  Fault
	policy BlockPolicy
}

// BlockPolicy selects how a blocking access behaves when the channel is
// internally full (write) or empty (read). This is the §III-A
// design-choice ablation, and it shows the paper's choice is load-bearing:
//
// With SyncThenWait (the paper's step 1), a process synchronizes before
// parking, so the global date catches up with it first. That bounds how
// far the channel's *internal* state can run ahead of the global date: a
// cell can be freed-and-refilled at most one generation beyond what a
// synchronized observer has seen, which is exactly the precondition of
// the one-generation timestamps that IsEmpty/IsFull/Size interpret
// (§III-B/C store only the *last* insertion and freeing date per cell).
//
// With WaitOnly, a blocked process keeps its decoupling offset. For pure
// Kahn usage (blocking Read/Write only) the dates stay exact — the data
// path never needs more than the latest stamps. But an entire stream can
// then execute internally at one global instant, cycling each cell
// through many generations, and the monitor/non-blocking interfaces lose
// history they cannot reconstruct: Size and the delayed events become
// wrong (TestWaitOnlyBreaksMonitor demonstrates it). WaitOnly exists for
// this ablation; models must use SyncThenWait.
type BlockPolicy int

const (
	// SyncThenWait is the paper's step 1: "synchronize the writer
	// process and wait until a cell is available".
	SyncThenWait BlockPolicy = iota
	// WaitOnly parks the decoupled process directly on the internal
	// event, keeping its local offset. Exact for Kahn-only traffic;
	// unsound for the monitor and non-blocking interfaces. Ablation
	// only.
	WaitOnly
)

// String names the policy.
func (b BlockPolicy) String() string {
	if b == WaitOnly {
		return "wait-only"
	}
	return "sync-then-wait"
}

// SetBlockPolicy selects the blocking behavior (default SyncThenWait).
func (f *SmartFIFO[T]) SetBlockPolicy(p BlockPolicy) { f.policy = p }

// NewSmart creates a Smart FIFO with the given depth (cells), which must be
// positive.
func NewSmart[T any](k *sim.Kernel, name string, depth int) *SmartFIFO[T] {
	if depth <= 0 {
		panic(fmt.Sprintf("core: %s: non-positive depth %d", name, depth))
	}
	return &SmartFIFO[T]{
		k:          k,
		name:       name,
		cells:      newRing[T](depth),
		cellFreed:  sim.NewEvent(k, name+".cell_freed"),
		cellFilled: sim.NewEvent(k, name+".cell_filled"),
		notEmpty:   sim.NewEvent(k, name+".not_empty"),
		notFull:    sim.NewEvent(k, name+".not_full"),
	}
}

// Name returns the channel name.
func (f *SmartFIFO[T]) Name() string { return f.name }

// Depth returns the capacity in cells.
func (f *SmartFIFO[T]) Depth() int { return f.cells.depth() }

// Kernel returns the owning kernel.
func (f *SmartFIFO[T]) Kernel() *sim.Kernel { return f.k }

// Stats returns a copy of the activity counters.
func (f *SmartFIFO[T]) Stats() Stats { return f.stats }

// NotEmpty is the external readable-event (§III-B): it is notified at the
// date the FIFO becomes externally non-empty, i.e. at the *insertion date*
// of the first available datum, not at the (possibly earlier) global date
// of the internal state change.
func (f *SmartFIFO[T]) NotEmpty() *sim.Event { return f.notEmpty }

// NotFull is the external writable-event, notified at the freeing date of
// the first available cell.
func (f *SmartFIFO[T]) NotFull() *sim.Event { return f.notFull }

func (f *SmartFIFO[T]) caller(op string) *sim.Process {
	p := f.k.Current()
	if p == nil {
		panic(fmt.Sprintf("core: %s: %s outside a process", f.name, op))
	}
	return p
}

// checkSideOrder enforces the §III requirement that two successive accesses
// on the same side cannot have decreasing local dates.
func (f *SmartFIFO[T]) checkSideOrder(p *sim.Process, last *sim.Time, side string) {
	checkSideOrderFor(f.name, p, last, side)
}

// Write appends v (§III-A). If every cell is internally busy the calling
// thread synchronizes and parks (one context switch). Otherwise, if the
// first free cell's freeing date is in the caller's local future, the
// caller's local clock advances to it — the real FIFO had no free cell
// before that date — and the write costs no context switch at all.
func (f *SmartFIFO[T]) Write(v T) {
	p := f.caller("Write")
	f.checkSideOrder(p, &f.lastWriteDate, "write")
	r := &f.cells
	for r.nBusy == len(r.ins) {
		f.stats.WriterBlocks++
		if f.policy == SyncThenWait && !p.Synchronized() {
			// Let the global date catch up first; a reader may
			// free a cell in the meantime, so re-check.
			p.Sync()
			continue
		}
		// WaitOnly keeps the caller decoupled across the park; its
		// absolute local date must survive the global time that
		// passes while parked.
		local := p.LocalTime()
		p.WaitEvent(f.cellFreed)
		p.SetLocalDate(local)
	}
	q := r.firstFree
	if f.fault != FaultNoWriterAdvance {
		if r.free[q] > p.LocalTime() {
			f.stats.WriterAdvances++
		}
		p.AdvanceLocalTo(r.free[q])
	}
	wasAllFree := r.nBusy == 0
	r.data[q] = v
	r.ins[q] = p.LocalTime()
	if f.fault == FaultInsertDateNow {
		r.ins[q] = f.k.Now()
	}
	r.firstFree = (q + 1) % len(r.ins)
	r.nBusy++
	f.stats.Writes++
	f.lastWriteDate = p.LocalTime()
	// Wake a blocked reader, if any.
	f.cellFilled.NotifyDelta()
	// External view (§III-B): the FIFO becomes non-empty at the
	// insertion date.
	if wasAllFree {
		f.notifyAtOrDelta(f.notEmpty, r.ins[q])
	}
	// If the *next* free cell's freeing date is in the future, a
	// synchronized writer still sees the FIFO as full until that date.
	if r.nBusy < len(r.ins) {
		if fd := r.free[r.firstFree]; fd > f.k.Now() {
			f.notifyAtOrDelta(f.notFull, fd)
		}
	}
}

// Read pops the oldest value (§III-A), symmetric to Write: park only when
// internally empty; otherwise advance the reader's local clock to the
// datum's insertion date if that date is in the local future.
func (f *SmartFIFO[T]) Read() T {
	p := f.caller("Read")
	f.checkSideOrder(p, &f.lastReadDate, "read")
	r := &f.cells
	for r.nBusy == 0 {
		f.stats.ReaderBlocks++
		if f.policy == SyncThenWait && !p.Synchronized() {
			p.Sync()
			continue
		}
		local := p.LocalTime()
		p.WaitEvent(f.cellFilled)
		p.SetLocalDate(local)
	}
	q := r.firstBusy
	if f.fault != FaultNoReaderAdvance {
		if r.ins[q] > p.LocalTime() {
			f.stats.ReaderAdvances++
		}
		p.AdvanceLocalTo(r.ins[q])
	}
	wasAllBusy := r.nBusy == len(r.ins)
	v := r.data[q]
	var zero T
	r.data[q] = zero
	r.free[q] = p.LocalTime()
	r.firstBusy = (q + 1) % len(r.ins)
	r.nBusy--
	f.stats.Reads++
	f.lastReadDate = p.LocalTime()
	// Wake a blocked writer, if any.
	f.cellFreed.NotifyDelta()
	// External view: the FIFO becomes non-full at the freeing date.
	if wasAllBusy {
		f.notifyAtOrDelta(f.notFull, r.free[q])
	}
	// §III-B, notification case 2: the next datum exists internally but
	// becomes externally visible only at its (future) insertion date.
	if r.nBusy > 0 {
		if id := r.ins[r.firstBusy]; id > f.k.Now() {
			f.notifyAtOrDelta(f.notEmpty, id)
		}
	}
	return v
}

// notifyAtOrDelta schedules e at absolute date at, or at the next delta
// cycle if at is not in the future. Unlike plain sc_event earliest-wins
// semantics, the pending notification is replaced: the FIFO recomputes the
// authoritative next-availability date at every state change, and an
// earlier stale notification would be both spurious and — worse — would
// swallow the recomputed one, stranding event-driven consumers.
//
// Replacement happens through sim.Event.NotifyAtReplace, which elides all
// timed-queue traffic while the event has no subscribers (the pure Kahn
// case: blocking Read/Write only). The authoritative date is recorded and
// turned into a real notification lazily, the moment a waiter, static
// method or dynamic trigger attaches, so event-driven consumers observe
// exactly the dates they always did while the common case pays nothing.
func (f *SmartFIFO[T]) notifyAtOrDelta(e *sim.Event, at sim.Time) {
	if f.fault == FaultNotifyNow {
		e.CancelNotify()
		e.NotifyDelta()
		return
	}
	e.NotifyAtReplace(at)
}

// IsEmpty implements the §III-B two-test rule, evaluated at the caller's
// local date t: the FIFO is externally empty iff either all cells are
// internally free, or the insertion date of the first busy cell is after
// t. It runs in constant time ("two tests instead of one for a regular
// FIFO"). It must be called from the reader-side process or a synchronized
// process; under that discipline the two tests are exact.
func (f *SmartFIFO[T]) IsEmpty() bool {
	p := f.caller("IsEmpty")
	if f.fault == FaultEmptyIgnoresDates {
		return f.cells.nBusy == 0
	}
	if f.cells.nBusy == 0 {
		return true
	}
	return f.cells.ins[f.cells.firstBusy] > p.LocalTime()
}

// IsFull is the symmetric two-test rule for the writer side: externally
// full iff all cells are internally busy, or the freeing date of the first
// free cell is after the caller's local date.
func (f *SmartFIFO[T]) IsFull() bool {
	p := f.caller("IsFull")
	if f.cells.nBusy == f.cells.depth() {
		return true
	}
	return f.cells.free[f.cells.firstFree] > p.LocalTime()
}

// TryRead pops the oldest value if the FIFO is externally non-empty at the
// caller's local date. Unlike Read it never blocks, so it is safe from
// method processes (§III-B usage pattern: if IsEmpty, NextTrigger on
// NotEmpty, else TryRead).
func (f *SmartFIFO[T]) TryRead() (T, bool) {
	if f.IsEmpty() {
		var zero T
		return zero, false
	}
	return f.Read(), true
}

// TryWrite appends v if the FIFO is externally non-full at the caller's
// local date. Never blocks; safe from method processes.
func (f *SmartFIFO[T]) TryWrite(v T) bool {
	if f.IsFull() {
		return false
	}
	f.Write(v)
	return true
}

// Size implements the monitor interface (§III-C): the number of cells the
// *real* FIFO holds at the caller's date. The caller is synchronized first
// (thread callers only; method callers are synchronized by construction),
// then every cell is interpreted with the four-rule table of §III-C:
//
//   - an internal busy cell is really busy if its insertion date is in the
//     past, or its previous freeing date is in the future (it was freed and
//     refilled since the query date);
//   - an internal free cell is really busy if its freeing date is in the
//     future and its previous insertion date is in the past.
//
// Size is O(depth) — slower than a regular FIFO's counter, which is fine
// for the low-rate monitor use the paper targets (a few accesses per
// second).
func (f *SmartFIFO[T]) Size() int {
	p := f.caller("Size")
	if !p.IsMethod() {
		p.Sync()
	}
	if f.fault == FaultSizeIgnoresDates {
		return f.cells.nBusy
	}
	return f.cells.datedSize(p.LocalTime())
}

// InternalSize returns the number of internally busy cells, ignoring
// timestamps. Exposed for tests and benchmarks; models must use Size.
func (f *SmartFIFO[T]) InternalSize() int { return f.cells.nBusy }

var _ fifo.Channel[int] = (*SmartFIFO[int])(nil)
