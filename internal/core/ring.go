package core

import "repro/internal/sim"

// ring is the timestamped cell store shared by SmartFIFO and the
// ShardedFIFO endpoint mirrors. It is laid out struct-of-arrays — payload,
// insertion dates and freeing dates in separate slices — so the bulk
// transfer paths (burst.go) can move payload with copy and sweep the date
// annotations in tight contiguous passes instead of walking an
// array-of-structs cell at a time.
//
// Occupancy is positional: because cells are filled and freed in strict
// ring rotation, the busy cells are exactly the range
// [firstBusy, firstBusy+nBusy) modulo depth, so no per-cell busy flag is
// stored.
type ring[T any] struct {
	data []T        // cell payloads (unused by the sharded writer mirror)
	ins  []sim.Time // per cell: last data-insertion date (§III-A)
	free []sim.Time // per cell: last freeing date (§III-A)

	firstBusy int // index of the oldest busy cell
	firstFree int // index of the oldest free cell
	nBusy     int
}

func newRing[T any](depth int) ring[T] {
	return ring[T]{
		data: make([]T, depth),
		ins:  make([]sim.Time, depth),
		free: make([]sim.Time, depth),
	}
}

func (r *ring[T]) depth() int { return len(r.ins) }

// datedSize applies the four-rule §III-C table to the ring at date now: the
// number of cells the real FIFO holds at that date, as far as this
// endpoint can know:
//
//   - an internally busy cell is really busy if its insertion date is in
//     the past, or its previous freeing date is in the future (it was freed
//     and refilled since the query date);
//   - an internally free cell is really busy if its freeing date is in the
//     future and its previous insertion date is in the past.
func (r *ring[T]) datedSize(now sim.Time) int {
	n := 0
	d := len(r.ins)
	for q := 0; q < d; q++ {
		off := q - r.firstBusy
		if off < 0 {
			off += d
		}
		if off < r.nBusy {
			if r.ins[q] <= now || r.free[q] > now {
				n++
			}
		} else {
			if r.free[q] > now && r.ins[q] <= now {
				n++
			}
		}
	}
	return n
}

// runDates is the vectorized date-annotation pass shared by the bulk write
// and read fast paths. Starting at the caller's local date, it walks m
// cells from q0 (wrapping), advancing the running local date by per before
// every word except (when incFirst is false) the first, then lifting it to
// the cell's bound date — the freeing date for a write run, the insertion
// date for a read run — exactly as the scalar path's Inc + AdvanceLocalTo
// pair does. The resulting per-word local date is stamped into stamp
// (insertion dates for writes, freeing dates for reads).
//
// It returns the final local date and the number of words whose bound was
// in the local future (the Writer/ReaderAdvances count).
func runDates(stamp, bound []sim.Time, q0, m int, local, per sim.Time, incFirst bool) (end sim.Time, advances uint64) {
	l := local
	inc := incFirst
	q := q0
	for m > 0 {
		seg := len(stamp) - q
		if seg > m {
			seg = m
		}
		s := stamp[q : q+seg]
		b := bound[q : q+seg]
		// The bound dates along a run are non-decreasing (each side
		// stamps them in ring order under the §III discipline), so if
		// the segment's last bound cannot lift the clock, none can: the
		// stamps are the pure arithmetic run l + i*per.
		if b[len(b)-1] <= l {
			if !inc {
				s[0] = l
				s = s[1:]
				inc = true
			}
			for j := range s {
				l += per
				s[j] = l
			}
		} else {
			for j := range s {
				if inc {
					l += per
				} else {
					inc = true
				}
				if bb := b[j]; bb > l {
					advances++
					l = bb
				}
				s[j] = l
			}
		}
		q = 0
		m -= seg
	}
	return l, advances
}

// tryRunDates sizes and stamps a non-blocking run: word i proceeds only if
// its bound date (insertion date for reads, freeing date for writes) is
// not after the running local date evaluated *before* the inter-word Inc —
// the scalar Try loop checks IsEmpty/IsFull at the previous word's date
// before advancing. A word that passes the check can never lift the local
// clock (its bound is already in the local past), so the stamped dates
// form the pure arithmetic run local + i*per and the run counts no
// advances.
//
// It returns the number of words stamped (possibly 0) and the final local
// date.
func tryRunDates(stamp, bound []sim.Time, q0, mMax int, local, per sim.Time) (m int, end sim.Time) {
	l := local
	q := q0
	d := len(stamp)
	for m < mMax {
		if bound[q] > l {
			break
		}
		if m > 0 {
			l += per
		}
		stamp[q] = l
		m++
		q++
		if q == d {
			q = 0
		}
	}
	return m, l
}
