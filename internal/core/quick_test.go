package core_test

// Property-based tests (testing/quick) on the Smart FIFO invariants.

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// periods converts raw fuzz bytes into per-word periods that are multiples
// of 10ns (keeping monitor probes at 5ns offsets race-free).
func periods(raw []byte, n int) []sim.Time {
	ds := make([]sim.Time, n)
	for i := range ds {
		b := byte(7)
		if len(raw) > 0 {
			b = raw[i%len(raw)]
		}
		ds[i] = sim.Time(b%5) * 10 * sim.NS
	}
	return ds
}

// scenarioQuick is a producer/consumer pair with arbitrary per-word
// periods plus a monitor, fully determined by the fuzz inputs.
func scenarioQuick(depth int, wPer, rPer []sim.Time) Scenario {
	return func(e *Env) {
		f := e.NewFIFO("fifo", depth)
		e.K.Thread("writer", func(p *sim.Process) {
			for i := range wPer {
				f.Write(i)
				e.Logf(p, "w%d", i)
				e.Delay(p, wPer[i])
			}
		})
		e.K.Thread("reader", func(p *sim.Process) {
			for i := range rPer {
				v := f.Read()
				e.Logf(p, "r%d", v)
				e.Delay(p, rPer[i])
			}
		})
		e.K.Thread("monitor", func(p *sim.Process) {
			p.Wait(5 * sim.NS)
			for i := 0; i < 10; i++ {
				e.Logf(p, "s%d", f.Size())
				p.Wait(40 * sim.NS)
			}
		})
	}
}

// TestQuickDualModeEquivalence is the property form of the paper's
// accuracy claim: for arbitrary depths and rate patterns, the Smart FIFO
// trace equals the non-decoupled reference trace after date reordering.
func TestQuickDualModeEquivalence(t *testing.T) {
	prop := func(depthRaw uint8, wRaw, rRaw []byte) bool {
		depth := int(depthRaw%8) + 1
		n := 30
		s := scenarioQuick(depth, periods(wRaw, n), periods(rRaw, n))
		ref := runMode(s, ModeReference, 1, core.FaultNone)
		smart := runMode(s, ModeSmart, 1, core.FaultNone)
		return trace.Equal(ref, smart)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickSizeBounds: the monitor Size is always within [0, depth]
// whatever the query date and traffic pattern.
func TestQuickSizeBounds(t *testing.T) {
	prop := func(depthRaw uint8, wRaw, rRaw []byte, probeRaw uint8) bool {
		depth := int(depthRaw%8) + 1
		n := 25
		wPer, rPer := periods(wRaw, n), periods(rRaw, n)
		ok := true
		k := sim.NewKernel("q")
		f := core.NewSmart[int](k, "fifo", depth)
		k.Thread("writer", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				f.Write(i)
				p.Inc(wPer[i])
			}
		})
		k.Thread("reader", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				f.Read()
				p.Inc(rPer[i])
			}
		})
		k.Thread("monitor", func(p *sim.Process) {
			p.Wait(sim.Time(probeRaw%10) * sim.NS)
			for i := 0; i < 15; i++ {
				s := f.Size()
				if s < 0 || s > depth {
					ok = false
				}
				p.Wait(13 * sim.NS)
			}
		})
		k.Run(sim.RunForever)
		k.Shutdown()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickKahnDeterminism: the sequence of values read is the sequence
// written, for any rates and depth (the FIFO is a Kahn channel).
func TestQuickKahnDeterminism(t *testing.T) {
	prop := func(depthRaw uint8, wRaw, rRaw []byte) bool {
		depth := int(depthRaw%16) + 1
		n := 40
		wPer, rPer := periods(wRaw, n), periods(rRaw, n)
		k := sim.NewKernel("q")
		f := core.NewSmart[int](k, "fifo", depth)
		k.Thread("writer", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				f.Write(i)
				p.Inc(wPer[i])
			}
		})
		ok := true
		k.Thread("reader", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				if f.Read() != i {
					ok = false
				}
				p.Inc(rPer[i])
			}
		})
		k.Run(sim.RunForever)
		k.Shutdown()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickDatesMonotonicPerSide: the dates at which reads and writes
// complete are non-decreasing on each side — the invariant the access
// discipline (§III) relies on.
func TestQuickDatesMonotonicPerSide(t *testing.T) {
	prop := func(depthRaw uint8, wRaw, rRaw []byte) bool {
		depth := int(depthRaw%8) + 1
		n := 30
		wPer, rPer := periods(wRaw, n), periods(rRaw, n)
		k := sim.NewKernel("q")
		f := core.NewSmart[int](k, "fifo", depth)
		ok := true
		var lastW, lastR sim.Time = -1, -1
		k.Thread("writer", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				f.Write(i)
				if p.LocalTime() < lastW {
					ok = false
				}
				lastW = p.LocalTime()
				p.Inc(wPer[i])
			}
		})
		k.Thread("reader", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				f.Read()
				if p.LocalTime() < lastR {
					ok = false
				}
				lastR = p.LocalTime()
				p.Inc(rPer[i])
			}
		})
		k.Run(sim.RunForever)
		k.Shutdown()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickCausality: a read of datum i never completes before the write
// of datum i (local dates compared), and a write into a previously used
// cell never completes before the read that freed it.
func TestQuickCausality(t *testing.T) {
	prop := func(depthRaw uint8, wRaw, rRaw []byte) bool {
		depth := int(depthRaw%4) + 1
		n := 30
		wPer, rPer := periods(wRaw, n), periods(rRaw, n)
		k := sim.NewKernel("q")
		f := core.NewSmart[int](k, "fifo", depth)
		wDates := make([]sim.Time, n)
		rDates := make([]sim.Time, n)
		k.Thread("writer", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				f.Write(i)
				wDates[i] = p.LocalTime()
				p.Inc(wPer[i])
			}
		})
		k.Thread("reader", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				f.Read()
				rDates[i] = p.LocalTime()
				p.Inc(rPer[i])
			}
		})
		k.Run(sim.RunForever)
		k.Shutdown()
		for i := 0; i < n; i++ {
			if rDates[i] < wDates[i] {
				return false // read before data existed
			}
			if i+depth < n && wDates[i+depth] < rDates[i] {
				return false // cell reused before it was freed
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
