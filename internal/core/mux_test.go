package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestMuxConsumerWaitAny: a consumer multiplexing two Smart FIFOs with
// WaitAny over their NotEmpty events, reading whichever becomes externally
// available — deterministic dates driven by the delayed notifications.
func TestMuxConsumerWaitAny(t *testing.T) {
	k := sim.NewKernel("mux")
	fa := core.NewSmart[int](k, "a", 4)
	fb := core.NewSmart[int](k, "b", 4)
	k.Thread("prodA", func(p *sim.Process) {
		for i := 0; i < 3; i++ {
			p.Inc(20 * sim.NS) // available at 20, 40, 60
			fa.Write(100 + i)
		}
	})
	k.Thread("prodB", func(p *sim.Process) {
		for i := 0; i < 3; i++ {
			p.Inc(30 * sim.NS) // available at 30, 60, 90
			fb.Write(200 + i)
		}
	})
	var got []string
	k.Thread("mux", func(p *sim.Process) {
		for n := 0; n < 6; {
			drained := false
			if v, ok := fa.TryRead(); ok {
				got = append(got, fmt.Sprintf("%d@%v", v, p.LocalTime()))
				n++
				drained = true
			}
			if v, ok := fb.TryRead(); ok {
				got = append(got, fmt.Sprintf("%d@%v", v, p.LocalTime()))
				n++
				drained = true
			}
			if !drained && n < 6 {
				p.WaitAny(fa.NotEmpty(), fb.NotEmpty())
			}
		}
	})
	k.Run(sim.RunForever)
	want := "[100@20ns 200@30ns 101@40ns 102@60ns 201@60ns 202@90ns]"
	if fmt.Sprint(got) != want {
		t.Errorf("got %v\nwant %v", got, want)
	}
}

// TestWriteBurstBackpressure: a burst larger than the FIFO blocks mid-way
// and resumes with exact dates.
func TestWriteBurstBackpressure(t *testing.T) {
	k := sim.NewKernel("burst")
	f := core.NewSmart[int](k, "f", 2)
	var wDone sim.Time
	k.Thread("writer", func(p *sim.Process) {
		f.WriteBurst([]int{1, 2, 3, 4, 5, 6}, 5*sim.NS)
		wDone = p.LocalTime()
	})
	var dates []sim.Time
	k.Thread("reader", func(p *sim.Process) {
		for i := 1; i <= 6; i++ {
			if v := f.Read(); v != i {
				t.Errorf("read %d, want %d", v, i)
			}
			dates = append(dates, p.LocalTime())
			p.Inc(20 * sim.NS)
		}
	})
	k.Run(sim.RunForever)
	// Reader paces the stream at 20ns/word once the 2-deep FIFO fills:
	// reads at 0,20,40,...; writer's words 3..6 land at the freeing
	// dates.
	want := []sim.Time{0, 20 * sim.NS, 40 * sim.NS, 60 * sim.NS, 80 * sim.NS, 100 * sim.NS}
	for i := range want {
		if dates[i] != want[i] {
			t.Errorf("read %d at %v, want %v", i, dates[i], want[i])
		}
	}
	// Word 6 occupies the cell freed by read 4, so the burst completes
	// at that freeing date.
	if wDone != 60*sim.NS {
		t.Errorf("writer finished at %v, want 60ns", wDone)
	}
}

// TestFaultStringAndNames covers the diagnostics helpers.
func TestFaultStringAndNames(t *testing.T) {
	if core.FaultNone.String() != "none" || core.Fault(99).String() != "unknown" {
		t.Error("Fault.String wrong")
	}
	seen := map[string]bool{}
	for _, f := range core.AllFaults {
		s := f.String()
		if s == "none" || s == "unknown" || seen[s] {
			t.Errorf("bad fault name %q", s)
		}
		seen[s] = true
	}
	if core.SyncThenWait.String() != "sync-then-wait" || core.WaitOnly.String() != "wait-only" {
		t.Error("BlockPolicy.String wrong")
	}
}
