package cpu

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates assembly text into a program for New. The syntax,
// one instruction per line:
//
//	; comment (also after instructions)
//	label:
//	        ldi   r1, 10          ; rd, imm16
//	        lui   r2, 0x1234      ; rd, imm16 (value << 16)
//	        mov   r3, r1
//	        add   r3, r1, r2      ; also sub/and/or/xor/shl/shr/mul
//	        addi  r3, r3, -1      ; also andi/ori
//	        ld    r4, 8(r1)       ; rd, offset(ra)
//	        st    r4, 8(r1)
//	        beq   r1, r0, label   ; also bne/blt/bge
//	        jmp   label
//	        jal   r14, label
//	        jr    r14
//	        wfi
//	        nop
//	        halt
//
// Numbers are decimal or 0x-hex, optionally negative. Branch and jump
// targets may be labels or signed numeric offsets.
func Assemble(src string) ([]uint32, error) {
	type pending struct {
		pc    int
		label string
		line  int
	}
	var prog []uint32
	labels := map[string]int{}
	var fixups []pending

	lines := strings.Split(src, "\n")
	for lineNo, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels, possibly followed by an instruction.
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !isIdent(label) {
				return nil, fmt.Errorf("cpu: line %d: bad label %q", lineNo+1, label)
			}
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("cpu: line %d: duplicate label %q", lineNo+1, label)
			}
			labels[label] = len(prog)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}

		mnemonic, rest, _ := strings.Cut(line, " ")
		mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
		var args []string
		if strings.TrimSpace(rest) != "" {
			for _, a := range strings.Split(rest, ",") {
				args = append(args, strings.TrimSpace(a))
			}
		}
		fail := func(format string, a ...any) ([]uint32, error) {
			return nil, fmt.Errorf("cpu: line %d: %s: %s", lineNo+1, line, fmt.Sprintf(format, a...))
		}
		need := func(n int) error {
			if len(args) != n {
				return fmt.Errorf("want %d operands, got %d", n, len(args))
			}
			return nil
		}

		var w uint32
		switch mnemonic {
		case "nop":
			w = enc(opNOP, 0, 0, 0, 0)
		case "halt":
			w = enc(opHALT, 0, 0, 0, 0)
		case "wfi":
			w = enc(opWFI, 0, 0, 0, 0)
		case "ldi", "lui":
			if err := need(2); err != nil {
				return fail("%v", err)
			}
			rd, err := reg(args[0])
			if err != nil {
				return fail("%v", err)
			}
			imm, err := number(args[1])
			if err != nil {
				return fail("%v", err)
			}
			op := opLDI
			if mnemonic == "lui" {
				op = opLUI
			}
			w = enc(op, rd, 0, 0, int(imm))
		case "mov", "jr":
			if err := need(1 + b2i(mnemonic == "mov")); err != nil {
				return fail("%v", err)
			}
			r1, err := reg(args[0])
			if err != nil {
				return fail("%v", err)
			}
			if mnemonic == "jr" {
				w = enc(opJR, 0, r1, 0, 0)
				break
			}
			r2, err := reg(args[1])
			if err != nil {
				return fail("%v", err)
			}
			w = enc(opMOV, r1, r2, 0, 0)
		case "add", "sub", "and", "or", "xor", "shl", "shr", "mul":
			if err := need(3); err != nil {
				return fail("%v", err)
			}
			rd, e1 := reg(args[0])
			ra, e2 := reg(args[1])
			rb, e3 := reg(args[2])
			if e1 != nil || e2 != nil || e3 != nil {
				return fail("bad register")
			}
			ops := map[string]int{"add": opADD, "sub": opSUB, "and": opAND, "or": opOR,
				"xor": opXOR, "shl": opSHL, "shr": opSHR, "mul": opMUL}
			w = enc(ops[mnemonic], rd, ra, rb, 0)
		case "addi", "andi", "ori":
			if err := need(3); err != nil {
				return fail("%v", err)
			}
			rd, e1 := reg(args[0])
			ra, e2 := reg(args[1])
			if e1 != nil || e2 != nil {
				return fail("bad register")
			}
			imm, err := number(args[2])
			if err != nil {
				return fail("%v", err)
			}
			ops := map[string]int{"addi": opADDI, "andi": opANDI, "ori": opORI}
			w = enc(ops[mnemonic], rd, ra, 0, int(imm))
		case "ld", "st":
			if err := need(2); err != nil {
				return fail("%v", err)
			}
			rd, err := reg(args[0])
			if err != nil {
				return fail("%v", err)
			}
			off, ra, err := memOperand(args[1])
			if err != nil {
				return fail("%v", err)
			}
			op := opLD
			if mnemonic == "st" {
				op = opST
			}
			w = enc(op, rd, ra, 0, int(off))
		case "beq", "bne", "blt", "bge":
			if err := need(3); err != nil {
				return fail("%v", err)
			}
			r1, e1 := reg(args[0])
			r2, e2 := reg(args[1])
			if e1 != nil || e2 != nil {
				return fail("bad register")
			}
			ops := map[string]int{"beq": opBEQ, "bne": opBNE, "blt": opBLT, "bge": opBGE}
			if off, err := number(args[2]); err == nil {
				w = enc(ops[mnemonic], r1, r2, 0, int(off))
			} else {
				fixups = append(fixups, pending{pc: len(prog), label: args[2], line: lineNo + 1})
				w = enc(ops[mnemonic], r1, r2, 0, 0)
			}
		case "jmp", "jal":
			rd := 0
			target := ""
			switch mnemonic {
			case "jmp":
				if err := need(1); err != nil {
					return fail("%v", err)
				}
				target = args[0]
				w = enc(opJMP, 0, 0, 0, 0)
			case "jal":
				if err := need(2); err != nil {
					return fail("%v", err)
				}
				var err error
				rd, err = reg(args[0])
				if err != nil {
					return fail("%v", err)
				}
				target = args[1]
				w = enc(opJAL, rd, 0, 0, 0)
			}
			if off, err := number(target); err == nil {
				w |= uint32(off) & 0xffff
			} else {
				fixups = append(fixups, pending{pc: len(prog), label: target, line: lineNo + 1})
			}
		default:
			return fail("unknown mnemonic %q", mnemonic)
		}
		prog = append(prog, w)
	}

	for _, f := range fixups {
		at, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("cpu: line %d: undefined label %q", f.line, f.label)
		}
		rel := at - (f.pc + 1)
		if rel < -0x8000 || rel > 0x7fff {
			return nil, fmt.Errorf("cpu: line %d: branch to %q out of range (%d)", f.line, f.label, rel)
		}
		prog[f.pc] |= uint32(rel) & 0xffff
	}
	if len(prog) == 0 {
		return nil, fmt.Errorf("cpu: empty program")
	}
	return prog, nil
}

// MustAssemble is Assemble panicking on error, for firmware literals.
func MustAssemble(src string) []uint32 {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func reg(s string) (int, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 15 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return n, nil
}

func number(s string) (int32, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	if v < -0x8000 || v > 0xffff {
		return 0, fmt.Errorf("immediate %d out of 16-bit range", v)
	}
	return int32(v), nil
}

// memOperand parses "offset(rN)" or "(rN)".
func memOperand(s string) (off int32, ra int, err error) {
	s = strings.TrimSpace(s)
	i := strings.IndexByte(s, '(')
	if i < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q (want offset(rN))", s)
	}
	if i > 0 {
		off, err = number(s[:i])
		if err != nil {
			return 0, 0, err
		}
	}
	ra, err = reg(s[i+1 : len(s)-1])
	return off, ra, err
}
