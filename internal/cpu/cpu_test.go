package cpu_test

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/sim"
)

// runCPU assembles src, runs it to halt and returns the core.
func runCPU(t *testing.T, src string, wire func(k *sim.Kernel, b *bus.Bus) *bus.IRQController) *cpu.CPU {
	t.Helper()
	k := sim.NewKernel("t")
	b := bus.NewBus(k, "bus", sim.NS)
	var irq *bus.IRQController
	if wire != nil {
		irq = wire(k, b)
	}
	prog, err := cpu.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(k, "cpu0", cpu.Config{
		Program: prog, Bus: b, CPI: sim.NS, Quantum: 100 * sim.NS, IRQ: irq,
	})
	k.Run(sim.RunForever)
	k.Shutdown()
	if !c.Halted() {
		t.Fatalf("program did not halt (pc stuck?)")
	}
	return c
}

func TestArithmetic(t *testing.T) {
	c := runCPU(t, `
		ldi  r1, 6
		ldi  r2, 7
		mul  r3, r1, r2     ; 42
		addi r3, r3, -2     ; 40
		ldi  r4, 2
		shl  r5, r3, r4     ; 160
		sub  r6, r5, r1     ; 154
		xor  r7, r6, r6     ; 0
		halt
	`, nil)
	for r, want := range map[int]uint32{3: 40, 5: 160, 6: 154, 7: 0} {
		if got := c.Reg(r); got != want {
			t.Errorf("r%d = %d, want %d", r, got, want)
		}
	}
}

func TestFibonacciLoop(t *testing.T) {
	c := runCPU(t, `
		ldi  r1, 0      ; fib(0)
		ldi  r2, 1      ; fib(1)
		ldi  r3, 10     ; count
	loop:
		add  r4, r1, r2
		mov  r1, r2
		mov  r2, r4
		addi r3, r3, -1
		bne  r3, r0, loop
		halt
	`, nil)
	if got := c.Reg(2); got != 89 { // fib(11)
		t.Errorf("r2 = %d, want 89", got)
	}
}

func TestR0Hardwired(t *testing.T) {
	c := runCPU(t, `
		ldi r0, 123
		ldi r1, 5
		add r0, r1, r1
		mov r2, r0
		halt
	`, nil)
	if c.Reg(0) != 0 || c.Reg(2) != 0 {
		t.Errorf("r0 = %d, r2 = %d; r0 must stay 0", c.Reg(0), c.Reg(2))
	}
}

func TestLoadStoreViaBus(t *testing.T) {
	var mem *bus.Memory
	c := runCPU(t, `
		ldi  r1, 0x100     ; memory base
		ldi  r2, 0
		ldi  r3, 0         ; sum
		ldi  r4, 8         ; count
	loop:
		ld   r5, 0(r1)
		add  r3, r3, r5
		addi r1, r1, 1
		addi r4, r4, -1
		bne  r4, r0, loop
		ldi  r1, 0x100
		st   r3, 32(r1)    ; store the sum at base+32
		halt
	`, func(k *sim.Kernel, b *bus.Bus) *bus.IRQController {
		mem = bus.NewMemory(64, sim.NS, sim.NS)
		b.Map("mem", 0x100, 64, mem)
		for i := uint32(0); i < 8; i++ {
			mem.Poke(i, i+1) // 1..8, sum 36
		}
		return nil
	})
	if got := c.Reg(3); got != 36 {
		t.Errorf("sum = %d, want 36", got)
	}
	if got := mem.Peek(32); got != 36 {
		t.Errorf("stored sum = %d, want 36", got)
	}
}

func TestSubroutine(t *testing.T) {
	c := runCPU(t, `
		ldi  r1, 4
		jal  r14, double
		jal  r14, double
		halt
	double:
		add  r1, r1, r1
		jr   r14
	`, nil)
	if got := c.Reg(1); got != 16 {
		t.Errorf("r1 = %d, want 16", got)
	}
}

func TestQuantumDecouplesExecution(t *testing.T) {
	run := func(quantum sim.Time) (uint64, uint64) {
		k := sim.NewKernel("t")
		b := bus.NewBus(k, "bus", sim.NS)
		prog := cpu.MustAssemble(`
			ldi  r1, 500
		loop:
			addi r1, r1, -1
			bne  r1, r0, loop
			halt
		`)
		c := cpu.New(k, "cpu0", cpu.Config{Program: prog, Bus: b, CPI: sim.NS, Quantum: quantum})
		k.Run(sim.RunForever)
		return c.Retired(), k.Stats().ContextSwitches
	}
	retiredQ, switchesQ := run(200 * sim.NS)
	retired0, switches0 := run(0)
	if retiredQ != retired0 {
		t.Errorf("instruction counts differ: %d vs %d", retiredQ, retired0)
	}
	if switchesQ*10 > switches0 {
		t.Errorf("quantum keeper not decoupling: %d vs %d switches", switchesQ, switches0)
	}
}

func TestMMIOControlOfAccelerator(t *testing.T) {
	// Firmware programs a generator→sink pair through their register
	// files and spins on the sink's status register — the §IV-C control
	// core as real software.
	var sink *accel.Accel
	c := runCPU(t, `
		ldi  r1, 0x200     ; generator regs
		ldi  r2, 0x300     ; sink regs
		ldi  r3, 32        ; words
		st   r3, 1(r2)     ; sink.RegWords
		ldi  r4, 1
		st   r4, 0(r2)     ; sink.RegCtrl = start
		st   r3, 1(r1)     ; gen.RegWords
		st   r4, 0(r1)     ; gen.RegCtrl = start
	wait:
		ld   r5, 2(r2)     ; sink.RegStatus
		bne  r5, r0, wait
		ld   r6, 3(r2)     ; sink.RegJobsDone
		halt
	`, func(k *sim.Kernel, b *bus.Bus) *bus.IRQController {
		ch := core.NewSmart[uint32](k, "ch", 8)
		gen := accel.New(k, "gen", accel.Config{Kind: accel.Generator, Out: ch, WordLat: 2 * sim.NS, Seed: 3})
		sink = accel.New(k, "sink", accel.Config{Kind: accel.Sink, In: ch, WordLat: 3 * sim.NS})
		b.Map("gen", 0x200, accel.NumRegs, gen.Regs())
		b.Map("sink", 0x300, accel.NumRegs, sink.Regs())
		return nil
	})
	if sink.JobsDone() != 1 {
		t.Fatalf("sink jobs done = %d", sink.JobsDone())
	}
	if got := c.Reg(6); got != 1 {
		t.Errorf("firmware read jobs done = %d, want 1", got)
	}
}

func TestWFIWakesOnInterrupt(t *testing.T) {
	var sink *accel.Accel
	c := runCPU(t, `
		ldi  r1, 0x200     ; generator regs
		ldi  r2, 0x300     ; sink regs
		ldi  r7, 0x400     ; irq controller
		ldi  r4, 1
		st   r4, 1(r7)     ; enable line 0
		ldi  r3, 16
		st   r3, 1(r2)
		st   r4, 0(r2)     ; start sink
		st   r3, 1(r1)
		st   r4, 0(r1)     ; start generator
	sleep:
		wfi
		ld   r5, 0(r7)     ; pending
		beq  r5, r0, sleep
		st   r5, 0(r7)     ; ack
		ld   r6, 3(r2)     ; sink.RegJobsDone
		halt
	`, func(k *sim.Kernel, b *bus.Bus) *bus.IRQController {
		irq := bus.NewIRQController(k, "irq")
		ch := core.NewSmart[uint32](k, "ch", 8)
		gen := accel.New(k, "gen", accel.Config{Kind: accel.Generator, Out: ch, WordLat: 2 * sim.NS, Seed: 3})
		sink = accel.New(k, "sink", accel.Config{
			Kind: accel.Sink, In: ch, WordLat: 3 * sim.NS, IRQ: irq, IRQLine: 0,
		})
		b.Map("gen", 0x200, accel.NumRegs, gen.Regs())
		b.Map("sink", 0x300, accel.NumRegs, sink.Regs())
		b.Map("irq", 0x400, bus.IRQNumRegs, irq)
		return irq
	})
	if c.Reg(6) != 1 || sink.JobsDone() != 1 {
		t.Errorf("jobs done: reg %d, sink %d; want 1", c.Reg(6), sink.JobsDone())
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"bad mnemonic":    "frobnicate r1, r2",
		"bad register":    "ldi r17, 1",
		"missing operand": "add r1, r2",
		"undefined label": "jmp nowhere",
		"dup label":       "a:\na:\nnop",
		"imm overflow":    "ldi r1, 70000",
		"bad mem operand": "ld r1, r2",
		"empty":           "; nothing\n",
	}
	for name, src := range cases {
		if _, err := cpu.Assemble(src); err == nil {
			t.Errorf("%s: Assemble(%q) succeeded", name, src)
		}
	}
}

func TestAssembleCommentAndLabelForms(t *testing.T) {
	prog, err := cpu.Assemble(`
	; leading comment
	start:  ldi r1, 1   ; trailing comment
	mid: end: jmp done
	done: halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 3 {
		t.Errorf("program has %d words, want 3", len(prog))
	}
}

func TestIllegalOpcodePanics(t *testing.T) {
	k := sim.NewKernel("t")
	b := bus.NewBus(k, "bus", 0)
	cpu.New(k, "cpu0", cpu.Config{Program: []uint32{0xff000000}, Bus: b})
	defer func() {
		if recover() == nil {
			t.Error("illegal opcode did not panic")
		}
	}()
	k.Run(sim.RunForever)
}
