// Package cpu implements a small instruction-set simulator for the
// case-study SoC's control cores ("part of this SoC is composed of cores
// sharing a shared memory", §IV-C): a 32-bit RISC-like machine whose data
// accesses are TLM transactions on the bus, temporally decoupled with a
// quantum keeper exactly like the paper's memory-mapped side.
//
// The core executes firmware assembled with Assemble from a private
// instruction ROM (instruction fetch is not simulated as bus traffic —
// control cores have I-caches; data loads/stores go through the bus with
// full latency annotation). Every instruction costs CPI of local time;
// the quantum keeper turns that into a context switch only once per
// quantum.
package cpu

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/sim"
	"repro/internal/td"
)

// Opcodes. The encoding is op[31:24] rd[23:20] ra[19:16] rb[15:12] |
// imm16[15:0]; immediate and register-b forms never coexist.
const (
	opNOP  = 0x00
	opHALT = 0x01
	opLDI  = 0x02 // rd = zext(imm16)
	opLUI  = 0x03 // rd = imm16 << 16
	opMOV  = 0x04 // rd = ra
	opADD  = 0x10
	opSUB  = 0x11
	opAND  = 0x12
	opOR   = 0x13
	opXOR  = 0x14
	opSHL  = 0x15
	opSHR  = 0x16
	opMUL  = 0x17
	opADDI = 0x20 // rd = ra + sext(imm16)
	opANDI = 0x21
	opORI  = 0x22
	opLD   = 0x30 // rd = mem[ra + sext(imm16)]
	opST   = 0x31 // mem[ra + sext(imm16)] = rd
	opBEQ  = 0x40 // if rd == ra: pc += sext(imm16)
	opBNE  = 0x41
	opBLT  = 0x42 // signed
	opBGE  = 0x43
	opJMP  = 0x44 // pc += sext(imm16)
	opJAL  = 0x45 // rd = pc+1; pc += sext(imm16)
	opJR   = 0x46 // pc = ra
	opWFI  = 0x50 // wait for interrupt (needs Config.IRQ)
)

func enc(op, rd, ra, rb, imm int) uint32 {
	return uint32(op)<<24 | uint32(rd&0xf)<<20 | uint32(ra&0xf)<<16 |
		uint32(rb&0xf)<<12 | uint32(imm&0xffff)
}

// Config parameterizes a core.
type Config struct {
	// Program is the instruction ROM (use Assemble).
	Program []uint32
	// Bus carries data loads and stores (word addresses).
	Bus *bus.Bus
	// CPI is the local time per instruction.
	CPI sim.Time
	// Quantum is the decoupling quantum (0 = synchronize every
	// instruction, the TDless-style baseline).
	Quantum sim.Time
	// IRQ, if non-nil, backs the WFI instruction.
	IRQ *bus.IRQController
	// WFITimeout bounds a WFI sleep (lost-wakeup backstop); 0 means
	// 1us.
	WFITimeout sim.Time
}

// CPU is one core instance.
type CPU struct {
	k    *sim.Kernel
	name string
	cfg  Config

	regs [16]uint32
	pc   int

	halted  bool
	retired uint64

	proc *sim.Process
}

// New creates a core and registers its thread process. Execution begins at
// pc 0 when the simulation runs.
func New(k *sim.Kernel, name string, cfg Config) *CPU {
	if len(cfg.Program) == 0 {
		panic(fmt.Sprintf("cpu: %s: empty program", name))
	}
	if cfg.Bus == nil {
		panic(fmt.Sprintf("cpu: %s: no bus", name))
	}
	if cfg.CPI <= 0 {
		cfg.CPI = sim.NS
	}
	if cfg.WFITimeout <= 0 {
		cfg.WFITimeout = sim.US
	}
	c := &CPU{k: k, name: name, cfg: cfg}
	c.proc = k.Thread(name, c.run)
	return c
}

// Name returns the core name.
func (c *CPU) Name() string { return c.name }

// Halted reports whether the core executed HALT.
func (c *CPU) Halted() bool { return c.halted }

// Retired returns the number of executed instructions.
func (c *CPU) Retired() uint64 { return c.retired }

// Reg returns register r's value (testbench access).
func (c *CPU) Reg(r int) uint32 { return c.regs[r] }

// setReg writes a register; r0 is hardwired to zero.
func (c *CPU) setReg(r int, v uint32) {
	if r != 0 {
		c.regs[r] = v
	}
}

func sext16(v uint32) int32 { return int32(int16(v & 0xffff)) }

// run is the core thread: a classic fetch-decode-execute loop with
// quantum-kept timing annotation.
func (c *CPU) run(p *sim.Process) {
	qk := td.NewQuantumKeeper(p, c.cfg.Quantum)
	for !c.halted {
		if c.pc < 0 || c.pc >= len(c.cfg.Program) {
			panic(fmt.Sprintf("cpu: %s: pc %d outside program (%d words)", c.name, c.pc, len(c.cfg.Program)))
		}
		ins := c.cfg.Program[c.pc]
		op := int(ins >> 24)
		rd := int(ins >> 20 & 0xf)
		ra := int(ins >> 16 & 0xf)
		rb := int(ins >> 12 & 0xf)
		imm := ins & 0xffff
		next := c.pc + 1
		switch op {
		case opNOP:
		case opHALT:
			c.halted = true
		case opLDI:
			c.setReg(rd, imm)
		case opLUI:
			c.setReg(rd, imm<<16)
		case opMOV:
			c.setReg(rd, c.regs[ra])
		case opADD:
			c.setReg(rd, c.regs[ra]+c.regs[rb])
		case opSUB:
			c.setReg(rd, c.regs[ra]-c.regs[rb])
		case opAND:
			c.setReg(rd, c.regs[ra]&c.regs[rb])
		case opOR:
			c.setReg(rd, c.regs[ra]|c.regs[rb])
		case opXOR:
			c.setReg(rd, c.regs[ra]^c.regs[rb])
		case opSHL:
			c.setReg(rd, c.regs[ra]<<(c.regs[rb]&31))
		case opSHR:
			c.setReg(rd, c.regs[ra]>>(c.regs[rb]&31))
		case opMUL:
			c.setReg(rd, c.regs[ra]*c.regs[rb])
		case opADDI:
			c.setReg(rd, uint32(int32(c.regs[ra])+sext16(imm)))
		case opANDI:
			c.setReg(rd, c.regs[ra]&imm)
		case opORI:
			c.setReg(rd, c.regs[ra]|imm)
		case opLD:
			addr := uint32(int32(c.regs[ra]) + sext16(imm))
			buf := []uint32{0}
			c.cfg.Bus.BTransport(p, &bus.Transaction{Cmd: bus.Read, Addr: addr, Data: buf})
			c.setReg(rd, buf[0])
		case opST:
			addr := uint32(int32(c.regs[ra]) + sext16(imm))
			c.cfg.Bus.BTransport(p, &bus.Transaction{Cmd: bus.Write, Addr: addr, Data: []uint32{c.regs[rd]}})
		case opBEQ:
			if c.regs[rd] == c.regs[ra] {
				next = c.pc + 1 + int(sext16(imm))
			}
		case opBNE:
			if c.regs[rd] != c.regs[ra] {
				next = c.pc + 1 + int(sext16(imm))
			}
		case opBLT:
			if int32(c.regs[rd]) < int32(c.regs[ra]) {
				next = c.pc + 1 + int(sext16(imm))
			}
		case opBGE:
			if int32(c.regs[rd]) >= int32(c.regs[ra]) {
				next = c.pc + 1 + int(sext16(imm))
			}
		case opJMP:
			next = c.pc + 1 + int(sext16(imm))
		case opJAL:
			c.setReg(rd, uint32(c.pc+1))
			next = c.pc + 1 + int(sext16(imm))
		case opJR:
			next = int(c.regs[ra])
		case opWFI:
			if c.cfg.IRQ == nil {
				panic(fmt.Sprintf("cpu: %s: WFI without an IRQ controller", c.name))
			}
			p.Sync()
			p.WaitEventTimeout(c.cfg.IRQ.Event(), c.cfg.WFITimeout)
		default:
			panic(fmt.Sprintf("cpu: %s: illegal opcode %#x at pc %d", c.name, op, c.pc))
		}
		_ = rb
		c.pc = next
		c.retired++
		qk.Inc(c.cfg.CPI)
	}
}
