package scenario

import "testing"

// TestRandPinnedSequence pins the SplitMix64 stream: every workload
// builder derives its payloads and rates from this sequence, so changing
// it silently changes every campaign's traces. If this test fails, the
// golden campaign results (cmd/campaign/testdata) must be regenerated too.
func TestRandPinnedSequence(t *testing.T) {
	want := []uint64{
		0xbdd732262feb6e95,
		0x28efe333b266f103,
		0x47526757130f9f52,
		0x581ce1ff0e4ae394,
		0x09bc585a244823f2,
	}
	r := Rand(42)
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("Rand(42) value %d = %#016x, want %#016x", i, got, w)
		}
	}
}

func TestRandStreamsIndependent(t *testing.T) {
	a, b := Rand(1), Rand(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Errorf("seeds 1 and 2 collided on %d of 64 draws", same)
	}
}

func TestRandHelpers(t *testing.T) {
	r := Rand(7)
	for i := 0; i < 100; i++ {
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63 negative: %d", v)
		}
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}
