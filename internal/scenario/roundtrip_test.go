package scenario

import (
	"encoding/json"
	"testing"
)

// TestSetJSONRoundTripIsHashStable pins the property the durable
// campaign store leans on: a Set that is marshalled into the journal's
// job-submitted record and parsed back on recovery must expand to the
// same points with the same canonical hashes — otherwise a resumed
// campaign could not match its journaled outcomes to its points.
func TestSetJSONRoundTripIsHashStable(t *testing.T) {
	sets := []Set{
		{Name: "one", Specs: []Spec{{
			Model:  "test",
			Params: Params{"a": 4, "b": 100},
			Matrix: map[string][]any{"c": {1, 2, 8}},
		}}},
		{Name: "multi", Specs: []Spec{
			{Model: "test", Params: Params{"a": 6},
				Matrix: map[string][]any{"b": {1, 2}, "c": {2, 3}}},
			{Model: "test", Params: Params{"c": 2},
				Matrix: map[string][]any{"a": {1, 2}, "b": {50, 75}}},
		}},
		// Float, bool and string axes: json round-trips ints through
		// float64, which must not perturb the canonical hash.
		{Specs: []Spec{{
			Model:  "test",
			Params: Params{"a": 1.5, "b": true},
			Matrix: map[string][]any{"mode": {"chain", "ring"}, "c": {1, 2}},
		}}},
	}
	for _, set := range sets {
		before, err := set.Expand()
		if err != nil {
			t.Fatalf("%s: expand: %v", set.Name, err)
		}
		js, err := json.Marshal(set)
		if err != nil {
			t.Fatalf("%s: marshal: %v", set.Name, err)
		}
		parsed, err := ParseSet(js)
		if err != nil {
			t.Fatalf("%s: ParseSet(marshal): %v", set.Name, err)
		}
		after, err := parsed.Expand()
		if err != nil {
			t.Fatalf("%s: re-expand: %v", set.Name, err)
		}
		if len(before) != len(after) {
			t.Fatalf("%s: %d points before round trip, %d after", set.Name, len(before), len(after))
		}
		for i := range before {
			if before[i].Hash != after[i].Hash {
				t.Errorf("%s point %d: hash %s != %s after JSON round trip (params %v vs %v)",
					set.Name, i, before[i].Hash, after[i].Hash, before[i].Params, after[i].Params)
			}
			if before[i].Model != after[i].Model {
				t.Errorf("%s point %d: model %s != %s", set.Name, i, before[i].Model, after[i].Model)
			}
		}
		// Second-generation stability: journal → recover → journal again.
		js2, err := json.Marshal(parsed)
		if err != nil {
			t.Fatal(err)
		}
		parsed2, err := ParseSet(js2)
		if err != nil {
			t.Fatalf("%s: second round trip: %v", set.Name, err)
		}
		again, err := parsed2.Expand()
		if err != nil {
			t.Fatal(err)
		}
		for i := range after {
			if after[i].Hash != again[i].Hash {
				t.Errorf("%s point %d: hash unstable across second round trip", set.Name, i)
			}
		}
	}
}
