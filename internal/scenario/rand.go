package scenario

// RNG is a deterministic SplitMix64 stream: the payload/rate randomness
// source for all workload builders. Scenario adapters derive every seed
// and random parameter from one RNG seeded by the spec's "seed" value, so
// identical specs produce identical traces across runs, hosts and worker
// counts — there is no global, time- or scheduling-dependent randomness
// anywhere in a campaign. The sequence is pinned by TestRandPinnedSequence.
type RNG struct {
	state uint64
}

// Rand returns a deterministic RNG for the given seed.
func Rand(seed int64) *RNG { return &RNG{state: uint64(seed)} }

// Uint64 returns the next value of the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns the next value as a non-negative int64 — the shape the
// workload generators take as a seed.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("scenario: Intn: n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}
