package scenario

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Outcome is the deterministic result of running one scenario point: a
// pure function of the point's parameters, independent of wall clock,
// worker count and scheduling — the campaign layer relies on that to cache
// by hash and to emit byte-identical reports across worker counts.
type Outcome struct {
	// SimEndNS is the final simulated date in nanoseconds.
	SimEndNS int64 `json:"sim_end_ns"`
	// CtxSwitches counts kernel thread dispatches: the paper's cost
	// metric. Reported only for single-kernel points (0 and omitted
	// otherwise) — under the async coordinator, whether a blocking
	// access parks depends on cross-bridge delivery timing, so the
	// count is interleaving-dependent for sharded runs even though the
	// dates are exact.
	CtxSwitches uint64 `json:"ctx_switches,omitempty"`
	// Checksums prove functional equality (one per sink/stream).
	Checksums []uint64 `json:"checksums,omitempty"`
	// DatesHash digests the dated completion log (block/job/token
	// dates): equal hashes mean date-identical behaviour.
	DatesHash string `json:"dates_hash,omitempty"`
	// Counters holds model-specific activity counters (bus accesses,
	// NoC flits, shard counts, ...). Only deterministic quantities
	// belong here — scheduler telemetry like coordinator advances
	// depends on goroutine interleaving and would break golden
	// comparisons. Maps marshal with sorted keys, keeping the JSON
	// canonical.
	Counters map[string]uint64 `json:"counters,omitempty"`
}

// Model is a registered workload: a named parameter schema plus run and
// check entry points.
type Model struct {
	// Name is the registry key ("pipeline", "soc", ...).
	Name string
	// Keys lists the accepted parameter names; Spec.Validate rejects
	// anything else.
	Keys []string
	// Run executes one concrete point. The context carries the caller's
	// deadline and (via par.WithStallWindow) the stall-watchdog window;
	// models thread it to their guarded run so a runaway or wedged
	// point is interrupted cooperatively instead of hanging its worker.
	// A Run ended by the context returns the guard's error (ctx.Err()
	// or a *par.StallError) with a zero Outcome.
	Run func(context.Context, Params) (Outcome, error)
	// Check is the §IV-A trace-equivalence oracle for the point's
	// workload shape: it runs the decoupled and the reference build and
	// returns a non-empty description if their dated traces differ
	// after reordering (via trace.Diff). Nil if the model has no
	// reference build. The context works as for Run.
	Check func(context.Context, Params) (string, error)
}

var (
	regMu  sync.RWMutex
	models = map[string]Model{}
)

// Register adds a model to the registry; the workload packages call it
// from init. Registering a duplicate or anonymous model panics.
func Register(m Model) {
	if m.Name == "" || m.Run == nil {
		panic("scenario: Register: model needs a name and a Run function")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := models[m.Name]; dup {
		panic(fmt.Sprintf("scenario: Register: duplicate model %q", m.Name))
	}
	models[m.Name] = m
}

// Lookup returns the model registered under name.
func Lookup(name string) (Model, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	m, ok := models[name]
	return m, ok
}

// Models returns the registered model names, sorted.
func Models() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(models))
	for n := range models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
