package scenario

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Reader extracts typed values from a Params map, accumulating the first
// error instead of forcing per-call error handling; model adapters read
// every parameter, then consult Err once.
type Reader struct {
	p   Params
	err error
}

// NewReader wraps p for typed access.
func NewReader(p Params) *Reader { return &Reader{p: p} }

// Err returns the first conversion error, or nil.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(key string, v any, want string) {
	if r.err == nil {
		r.err = fmt.Errorf("scenario: parameter %q: want %s, got %T(%v)", key, want, v, v)
	}
}

// toInt64 converts any accepted numeric kind (JSON numbers arrive as
// float64) to an integer, rejecting fractional values.
func toInt64(v any) (int64, bool) {
	switch n := v.(type) {
	case int:
		return int64(n), true
	case int8:
		return int64(n), true
	case int16:
		return int64(n), true
	case int32:
		return int64(n), true
	case int64:
		return n, true
	case uint:
		return int64(n), true
	case uint8:
		return int64(n), true
	case uint16:
		return int64(n), true
	case uint32:
		return int64(n), true
	case uint64:
		return int64(n), true
	case float32:
		return toInt64(float64(n))
	case float64:
		if n != math.Trunc(n) || math.IsInf(n, 0) || math.IsNaN(n) {
			return 0, false
		}
		return int64(n), true
	}
	return 0, false
}

// Int reads key as an integer, returning def when absent.
func (r *Reader) Int(key string, def int) int {
	return int(r.Int64(key, int64(def)))
}

// Int64 reads key as a 64-bit integer, returning def when absent.
func (r *Reader) Int64(key string, def int64) int64 {
	v, ok := r.p[key]
	if !ok {
		return def
	}
	n, ok := toInt64(v)
	if !ok {
		r.fail(key, v, "integer")
		return def
	}
	return n
}

// Bool reads key as a boolean, returning def when absent.
func (r *Reader) Bool(key string, def bool) bool {
	v, ok := r.p[key]
	if !ok {
		return def
	}
	b, ok := v.(bool)
	if !ok {
		r.fail(key, v, "bool")
		return def
	}
	return b
}

// String reads key as a string, returning def when absent.
func (r *Reader) String(key string, def string) string {
	v, ok := r.p[key]
	if !ok {
		return def
	}
	s, ok := v.(string)
	if !ok {
		r.fail(key, v, "string")
		return def
	}
	return s
}

// Time reads key as a duration in integer nanoseconds, returning def when
// absent. By convention such keys carry a _ns suffix.
func (r *Reader) Time(key string, def sim.Time) sim.Time {
	v, ok := r.p[key]
	if !ok {
		return def
	}
	n, ok := toInt64(v)
	if !ok {
		r.fail(key, v, "integer nanoseconds")
		return def
	}
	return sim.Time(n) * sim.NS
}

// Digest accumulates a deterministic FNV-1a hash over 64-bit values; model
// adapters fold their dated completion logs into one so Outcomes stay
// compact regardless of trace length.
type Digest struct {
	h uint64
	n uint64
}

// NewDigest returns an empty digest.
func NewDigest() *Digest { return &Digest{h: 14695981039346656037} }

// U64 folds one value.
func (d *Digest) U64(v uint64) {
	for i := 0; i < 8; i++ {
		d.h ^= v & 0xff
		d.h *= 1099511628211
		v >>= 8
	}
	d.n++
}

// Time folds one simulated date.
func (d *Digest) Time(t sim.Time) { d.U64(uint64(t)) }

// Str folds a string (trace messages, process names).
func (d *Digest) Str(s string) {
	for i := 0; i < len(s); i++ {
		d.h ^= uint64(s[i])
		d.h *= 1099511628211
	}
	d.n++
}

// Times folds a date slice in order.
func (d *Digest) Times(ts []sim.Time) {
	for _, t := range ts {
		d.Time(t)
	}
}

// Sum renders the digest: "<count>:<hash>" so an empty log is
// distinguishable from a colliding one.
func (d *Digest) Sum() string { return fmt.Sprintf("%d:%016x", d.n, d.h) }
