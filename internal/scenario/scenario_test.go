package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
)

// testModel registers a throwaway model for spec-level tests.
func init() {
	Register(Model{
		Name: "test",
		Keys: []string{"a", "b", "c", "mode"},
		Run: func(_ context.Context, p Params) (Outcome, error) {
			r := NewReader(p)
			a, b := r.Int("a", 0), r.Int("b", 0)
			if err := r.Err(); err != nil {
				return Outcome{}, err
			}
			return Outcome{SimEndNS: int64(a*100 + b)}, nil
		},
	})
}

func TestExpandCartesianOrder(t *testing.T) {
	s := Spec{
		Model:  "test",
		Params: Params{"c": 7},
		Matrix: map[string][]any{
			"b": {10, 20},
			"a": {1, 2, 3},
		},
	}
	points, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("expanded %d points, want 6", len(points))
	}
	// Axes sorted (a before b), last axis fastest.
	want := [][2]int{{1, 10}, {1, 20}, {2, 10}, {2, 20}, {3, 10}, {3, 20}}
	for i, p := range points {
		a, _ := toInt64(p.Params["a"])
		b, _ := toInt64(p.Params["b"])
		if int(a) != want[i][0] || int(b) != want[i][1] {
			t.Errorf("point %d = (a=%d, b=%d), want %v", i, a, b, want[i])
		}
		if c, _ := toInt64(p.Params["c"]); c != 7 {
			t.Errorf("point %d lost fixed param c: %v", i, p.Params["c"])
		}
		if p.Hash == "" {
			t.Errorf("point %d has no hash", i)
		}
	}
}

func TestHashNormalizesNumericKinds(t *testing.T) {
	h1, err := HashPoint("test", Params{"a": 16, "b": int64(3)})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := HashPoint("test", Params{"b": float64(3), "a": float64(16)})
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("hash differs across numeric kinds / key order: %s vs %s", h1, h2)
	}
	h3, _ := HashPoint("test", Params{"a": 17, "b": 3})
	if h3 == h1 {
		t.Error("hash ignores parameter values")
	}
	h4, _ := HashPoint("other", Params{"a": 16, "b": 3})
	if h4 == h1 {
		t.Error("hash ignores the model name")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		s    Spec
	}{
		{"unknown model", Spec{Model: "nope"}},
		{"unknown param", Spec{Model: "test", Params: Params{"zz": 1}}},
		{"unknown axis", Spec{Model: "test", Matrix: map[string][]any{"zz": {1}}}},
		{"fixed and swept", Spec{Model: "test", Params: Params{"a": 1}, Matrix: map[string][]any{"a": {2}}}},
		{"empty axis", Spec{Model: "test", Matrix: map[string][]any{"a": {}}}},
		{"non-scalar param", Spec{Model: "test", Params: Params{"a": []any{1}}}},
		{"non-scalar axis value", Spec{Model: "test", Matrix: map[string][]any{"a": {map[string]any{}}}}},
	}
	for _, c := range cases {
		if err := c.s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the spec", c.name)
		}
	}
}

func TestParseSetForms(t *testing.T) {
	set, err := ParseSet([]byte(`{"name":"n","specs":[{"model":"test"},{"model":"test","params":{"a":1}}]}`))
	if err != nil || len(set.Specs) != 2 || set.Name != "n" {
		t.Fatalf("set form: %+v, %v", set, err)
	}
	set, err = ParseSet([]byte(`{"model":"test","matrix":{"a":[1,2]}}`))
	if err != nil || len(set.Specs) != 1 {
		t.Fatalf("bare spec form: %+v, %v", set, err)
	}
	if _, err := ParseSet([]byte(`{"nothing":true}`)); err == nil {
		t.Error("accepted a document with no model and no specs")
	}
	if _, err := ParseSet([]byte(`{bad json`)); err == nil {
		t.Error("accepted malformed JSON")
	}
	if _, err := ParseSet([]byte(`{"model":"x","specs":[{"model":"y"}]}`)); err == nil {
		t.Error("accepted both top-level model and specs")
	}
}

func TestExpandJSONRoundTrip(t *testing.T) {
	// A spec decoded from JSON (values become float64) must hash
	// identically to the same spec built from Go ints.
	doc := []byte(`{"model":"test","params":{"c":7},"matrix":{"a":[1,2],"b":[10]}}`)
	var s Spec
	if err := json.Unmarshal(doc, &s); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	native := Spec{Model: "test", Params: Params{"c": 7},
		Matrix: map[string][]any{"a": {1, 2}, "b": {10}}}
	fromGo, err := native.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range fromJSON {
		if fromJSON[i].Hash != fromGo[i].Hash {
			t.Errorf("point %d: JSON hash %s != Go hash %s", i, fromJSON[i].Hash, fromGo[i].Hash)
		}
	}
}

func TestReaderTypesAndErrors(t *testing.T) {
	r := NewReader(Params{"a": float64(5), "mode": "fast", "b": true})
	if got := r.Int("a", 0); got != 5 {
		t.Errorf("Int(a) = %d, want 5", got)
	}
	if got := r.String("mode", ""); got != "fast" {
		t.Errorf("String(mode) = %q", got)
	}
	if got := r.Bool("b", false); !got {
		t.Error("Bool(b) = false")
	}
	if got := r.Int("missing", 42); got != 42 {
		t.Errorf("Int default = %d, want 42", got)
	}
	if r.Err() != nil {
		t.Errorf("unexpected error: %v", r.Err())
	}
	bad := NewReader(Params{"a": 1.5})
	bad.Int("a", 0)
	if bad.Err() == nil {
		t.Error("fractional value accepted as Int")
	}
	bad2 := NewReader(Params{"mode": 3})
	bad2.String("mode", "")
	if bad2.Err() == nil {
		t.Error("number accepted as String")
	}
}

func TestRegistryLookup(t *testing.T) {
	if _, ok := Lookup("test"); !ok {
		t.Fatal("test model not registered")
	}
	if _, ok := Lookup("missing"); ok {
		t.Fatal("phantom model")
	}
	names := Models()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Models() not sorted: %v", names)
		}
	}
}

func TestNumPointsGuardsHugeProducts(t *testing.T) {
	// Three modest axes whose product (~5e14) would OOM if materialized:
	// NumPoints must reject it without expanding, and Expand must refuse
	// through the same guard.
	axis := make([]any, 80000)
	for i := range axis {
		axis[i] = i
	}
	s := Spec{Model: "test", Matrix: map[string][]any{"a": axis, "b": axis, "c": axis}}
	if _, err := s.NumPoints(); err == nil {
		t.Fatal("NumPoints accepted a ~5e14-point product")
	}
	if _, err := s.Expand(); err == nil {
		t.Fatal("Expand accepted a ~5e14-point product")
	}
	small := Spec{Model: "test", Matrix: map[string][]any{"a": {1, 2}, "b": {3, 4, 5}}}
	if n, err := small.NumPoints(); err != nil || n != 6 {
		t.Fatalf("NumPoints = %d, %v, want 6", n, err)
	}
	set := Set{Specs: []Spec{small, small}}
	if n, err := set.NumPoints(); err != nil || n != 12 {
		t.Fatalf("Set.NumPoints = %d, %v, want 12", n, err)
	}
}

func TestSetExpandConcatenates(t *testing.T) {
	set := Set{Specs: []Spec{
		{Model: "test", Matrix: map[string][]any{"a": {1, 2}}},
		{Model: "test", Matrix: map[string][]any{"b": {3}}},
	}}
	points, err := set.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	bad := Set{Specs: []Spec{{Model: "ghost"}}}
	if _, err := bad.Expand(); err == nil {
		t.Error("set with unknown model expanded")
	}
}

func TestDigest(t *testing.T) {
	d1, d2 := NewDigest(), NewDigest()
	for i := 0; i < 10; i++ {
		d1.U64(uint64(i) * 977)
		d2.U64(uint64(i) * 977)
	}
	if d1.Sum() != d2.Sum() {
		t.Error("digest not deterministic")
	}
	d3 := NewDigest()
	for i := 9; i >= 0; i-- {
		d3.U64(uint64(i) * 977)
	}
	if d3.Sum() == d1.Sum() {
		t.Error("digest ignores order")
	}
	if NewDigest().Sum() == d1.Sum() {
		t.Error("empty digest collides")
	}
}

func ExampleSpec_Expand() {
	s := Spec{
		Model:  "test",
		Matrix: map[string][]any{"a": {1, 2}, "b": {10, 20}},
	}
	points, _ := s.Expand()
	for _, p := range points {
		fmt.Println(p.Params["a"], p.Params["b"])
	}
	// Output:
	// 1 10
	// 1 20
	// 2 10
	// 2 20
}
