// Package scenario turns declarative what-if specifications into concrete
// simulation points. The paper's value proposition is cheap, accurate
// design-space exploration — sweeping FIFO depths, quanta and topologies to
// size a SoC (§IV) — and this package is the layer that names those sweeps:
//
//   - a Spec is a JSON-decodable description of one workload model
//     (pipeline, soc, soc-clustered, kpn, noc) plus its parameters;
//   - a Matrix lists per-parameter value axes; Expand takes the cartesian
//     product and yields one concrete Point per combination;
//   - every Point carries a canonical hash of (model, parameters), so
//     duplicate points — across axes or across specs — are detected and
//     simulated once;
//   - a model Registry maps model names to run/check functions; the
//     workload packages self-register in their init (internal/pipeline,
//     internal/soc, internal/kpn, internal/noc).
//
// The campaign engine (internal/campaign) consumes expanded points; the
// HTTP front-end (cmd/simd) and the CLI (cmd/campaign) accept Spec/Set
// documents over the wire and from files.
package scenario

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sort"
)

// Params maps parameter names to scalar values (string, bool or number).
// Values decoded from JSON arrive as float64/string/bool; values built in
// Go code may be any integer kind — canonicalization and the Reader accept
// both.
type Params map[string]any

// Clone returns a shallow copy of p (values are scalars).
func (p Params) Clone() Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Spec is one declarative scenario: a model name, fixed parameters, and an
// optional matrix of parameter axes to sweep.
type Spec struct {
	// Name optionally labels the spec in reports.
	Name string `json:"name,omitempty"`
	// Model names a registered workload model (see Models()).
	Model string `json:"model"`
	// Params fixes scalar parameters shared by every expanded point.
	Params Params `json:"params,omitempty"`
	// Matrix maps parameter names to value lists; Expand takes the
	// cartesian product over the axes (sorted by name, last axis
	// fastest). A key may appear in Params or Matrix, not both.
	Matrix map[string][]any `json:"matrix,omitempty"`
}

// Set is a campaign submission: one or more specs whose expansions are
// concatenated (and deduplicated by point hash downstream).
type Set struct {
	// Name optionally labels the campaign.
	Name string `json:"name,omitempty"`
	// Specs are expanded in order.
	Specs []Spec `json:"specs"`
}

// Point is one concrete, fully-parameterized simulation to run.
type Point struct {
	// Model names the registered model.
	Model string `json:"model"`
	// Params holds the concrete parameter assignment.
	Params Params `json:"params"`
	// Hash is the canonical content hash of (Model, Params): equal
	// hashes mean equal simulations.
	Hash string `json:"hash"`
}

// ParseSet decodes a campaign submission: either a Set document
// ({"specs": [...]}) or a single bare Spec ({"model": ...}).
func ParseSet(data []byte) (Set, error) {
	var probe struct {
		Name   string           `json:"name"`
		Specs  []Spec           `json:"specs"`
		Model  string           `json:"model"`
		Params Params           `json:"params"`
		Matrix map[string][]any `json:"matrix"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return Set{}, fmt.Errorf("scenario: bad spec document: %w", err)
	}
	if len(probe.Specs) > 0 {
		if probe.Model != "" {
			return Set{}, fmt.Errorf("scenario: document has both 'specs' and a top-level 'model'")
		}
		return Set{Name: probe.Name, Specs: probe.Specs}, nil
	}
	if probe.Model == "" {
		return Set{}, fmt.Errorf("scenario: document names no model and no specs")
	}
	return Set{
		Name:  probe.Name,
		Specs: []Spec{{Name: probe.Name, Model: probe.Model, Params: probe.Params, Matrix: probe.Matrix}},
	}, nil
}

// scalarOK reports whether v is an acceptable parameter value.
func scalarOK(v any) bool {
	switch v.(type) {
	case string, bool, float64, float32, int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64:
		return true
	}
	return false
}

// Validate checks the spec against the model registry: the model must be
// registered, every parameter key known to it, all values scalar, matrix
// axes non-empty, and no key fixed and swept at once.
func (s Spec) Validate() error {
	m, ok := Lookup(s.Model)
	if !ok {
		return fmt.Errorf("scenario: unknown model %q (have %v)", s.Model, Models())
	}
	known := make(map[string]bool, len(m.Keys))
	for _, k := range m.Keys {
		known[k] = true
	}
	for k, v := range s.Params {
		if !known[k] {
			return fmt.Errorf("scenario: model %q: unknown parameter %q (keys: %v)", s.Model, k, m.Keys)
		}
		if !scalarOK(v) {
			return fmt.Errorf("scenario: model %q: parameter %q: non-scalar value %T", s.Model, k, v)
		}
	}
	for k, vs := range s.Matrix {
		if !known[k] {
			return fmt.Errorf("scenario: model %q: unknown matrix axis %q (keys: %v)", s.Model, k, m.Keys)
		}
		if _, dup := s.Params[k]; dup {
			return fmt.Errorf("scenario: model %q: %q appears in both params and matrix", s.Model, k)
		}
		if len(vs) == 0 {
			return fmt.Errorf("scenario: model %q: matrix axis %q is empty", s.Model, k)
		}
		for _, v := range vs {
			if !scalarOK(v) {
				return fmt.Errorf("scenario: model %q: matrix axis %q: non-scalar value %T", s.Model, k, v)
			}
		}
	}
	return nil
}

// MaxExpansion is the absolute ceiling on a spec's cartesian product —
// a guard against axis products that would exhaust memory (or overflow
// int) before any per-campaign limit could be applied.
const MaxExpansion = 1 << 30

// NumPoints validates the spec and returns the number of points Expand
// would produce, without materializing any of them, erroring beyond
// MaxExpansion. Submission front-ends check this (against their own,
// smaller limits) before paying for the expansion.
func (s Spec) NumPoints() (int, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	n := 1
	for k, vs := range s.Matrix {
		if n > MaxExpansion/len(vs) {
			return 0, fmt.Errorf("scenario: model %q: matrix at axis %q exceeds %d points", s.Model, k, MaxExpansion)
		}
		n *= len(vs)
	}
	return n, nil
}

// NumPoints sums the specs' expansion sizes, erroring beyond MaxExpansion.
func (s Set) NumPoints() (int, error) {
	total := 0
	for i, sp := range s.Specs {
		n, err := sp.NumPoints()
		if err != nil {
			return 0, fmt.Errorf("spec %d: %w", i, err)
		}
		if total > MaxExpansion-n {
			return 0, fmt.Errorf("scenario: set exceeds %d points", MaxExpansion)
		}
		total += n
	}
	return total, nil
}

// Expand validates the spec and returns its concrete points: the cartesian
// product of the matrix axes over the fixed params. Axes iterate in sorted
// name order with the last axis varying fastest, so the expansion order is
// deterministic and independent of map iteration.
func (s Spec) Expand() ([]Point, error) {
	n, err := s.NumPoints()
	if err != nil {
		return nil, err
	}
	axes := make([]string, 0, len(s.Matrix))
	for k := range s.Matrix {
		axes = append(axes, k)
	}
	sort.Strings(axes)
	points := make([]Point, 0, n)
	idx := make([]int, len(axes))
	for {
		p := s.Params.Clone()
		for i, k := range axes {
			p[k] = s.Matrix[k][idx[i]]
		}
		h, err := HashPoint(s.Model, p)
		if err != nil {
			return nil, err
		}
		points = append(points, Point{Model: s.Model, Params: p, Hash: h})
		// Odometer increment, last axis fastest.
		i := len(axes) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(s.Matrix[axes[i]]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return points, nil
		}
	}
}

// Expand expands every spec in order and concatenates the points.
func (s Set) Expand() ([]Point, error) {
	var points []Point
	for i, sp := range s.Specs {
		ps, err := sp.Expand()
		if err != nil {
			return nil, fmt.Errorf("spec %d: %w", i, err)
		}
		points = append(points, ps...)
	}
	return points, nil
}

// HashPoint returns the canonical content hash of a concrete scenario:
// sha256 over the JSON encoding of {model, params} (map keys sorted, and
// numeric values normalized, by encoding/json), truncated to 16 hex
// digits. Two points with the same hash describe the same simulation.
func HashPoint(model string, params Params) (string, error) {
	canon, err := json.Marshal(struct {
		Model  string `json:"model"`
		Params Params `json:"params"`
	}{model, params})
	if err != nil {
		return "", fmt.Errorf("scenario: hashing %q: %w", model, err)
	}
	sum := sha256.Sum256(canon)
	return fmt.Sprintf("%x", sum[:8]), nil
}
