// Package kpn builds Kahn process networks over the simulation kernel: a
// structured, deterministic dataflow layer in the spirit of the KPN model
// of computation the paper cites ([8] HetSC, [9] Kahn 1974).
//
// A Network groups actors (thread processes) and channels (bounded FIFOs),
// declared onto an internal/netlist graph and elaborated when Run builds
// it. Kahn semantics — blocking reads, blocking writes, no peeking at
// channel state from actors — make the produced data and its dates
// independent of scheduling, which is exactly the property the Smart FIFO
// needs to stay exact under temporal decoupling, and the property that
// lets a bound network shard across kernels without changing its trace.
//
// Every network builds in one of two modes:
//
//   - Decoupled: Smart FIFO channels, Delay == Inc (fast);
//   - reference: regular FIFO channels, Delay == Wait (the ground truth).
//
// The two runs of the same builder must produce date-identical traces
// (paper §IV-A); Verify automates that check.
//
// A decoupled network whose channels are bound (Chan.Bind names the
// writing and reading actors) may additionally set Shards/Partitioner:
// Run then elaborates the graph across that many kernels, with
// netlist-inserted Smart-FIFO bridges at the cut edges — same dated
// trace, parallel execution.
package kpn

import (
	"context"
	"fmt"

	"repro/internal/fifo"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Network is a KPN under construction or execution.
type Network struct {
	// K is the first kernel of the build (the only one for unsharded
	// networks), populated by Run. Use Stats for shard-summed counters.
	K *sim.Kernel
	// Decoupled selects Smart FIFOs + Inc (true) or regular FIFOs +
	// Wait (false).
	Decoupled bool
	// Shards partitions the network across that many kernels (requires
	// Decoupled and every channel Bind-ed). 0 or 1 builds one kernel.
	Shards int
	// Partitioner names the netlist partitioner for sharded builds
	// ("single", "roundrobin" — the default — or "mincut").
	Partitioner string

	name  string
	rec   *trace.Recorder
	g     *netlist.Graph
	built *netlist.Build
}

// New creates an empty network.
func New(name string, decoupled bool) *Network {
	return &Network{
		Decoupled: decoupled,
		name:      name,
		rec:       trace.NewRecorder(),
		g:         netlist.New(name),
	}
}

// Name returns the network name.
func (n *Network) Name() string { return n.name }

// Trace returns the dated trace the actors logged.
func (n *Network) Trace() *trace.Recorder { return n.rec }

// Actor is the execution context handed to an actor body.
type Actor struct {
	// P is the underlying process.
	P *sim.Process

	n *Network
}

// Actor registers an actor. The body runs as a thread process; it should
// communicate only through channels and annotate computation with Delay.
// The returned module handle is what Chan.Bind takes.
func (n *Network) Actor(name string, body func(a *Actor)) *netlist.Module {
	return n.g.Thread(name, func(p *sim.Process) {
		body(&Actor{P: p, n: n})
	})
}

// Delay annotates d of computation: a local-clock increment when
// decoupled, a context-switching wait otherwise.
func (a *Actor) Delay(d sim.Time) {
	if a.n.Decoupled {
		a.P.Inc(d)
	} else {
		a.P.Wait(d)
	}
}

// Logf records a dated trace line attributed to the actor.
func (a *Actor) Logf(format string, args ...any) {
	a.n.rec.Logf(a.P, format, args...)
}

// Chan is a typed KPN channel.
type Chan[T any] struct {
	n  *Network
	nc *netlist.Chan[T]
}

// Channel creates a bounded channel in the network's mode. (A package
// function because Go methods cannot introduce type parameters.)
func Channel[T any](n *Network, name string, depth int) *Chan[T] {
	return &Chan[T]{n: n, nc: netlist.AddChan[T](n.g, name, depth)}
}

// WithBurst records the expected words-per-bulk-transfer hint on the
// underlying netlist channel (feeds the min-cut traffic weight).
func (c *Chan[T]) WithBurst(words int) *Chan[T] {
	c.nc.WithBurst(words)
	return c
}

// Bind declares the channel's writing and reading actors (the handles
// Actor returned). Binding is optional for single-kernel networks and
// required for sharded ones: it tells the netlist where the cut edges
// are.
func (c *Chan[T]) Bind(writer, reader *netlist.Module) *Chan[T] {
	c.nc.Output(writer)
	c.nc.Input(reader)
	return c
}

// Read pops the next token, blocking while the channel is empty.
func (c *Chan[T]) Read() T {
	_, r := c.nc.Ends()
	return r.Read()
}

// Write pushes a token, blocking while the channel is full.
func (c *Chan[T]) Write(v T) {
	w, _ := c.nc.Ends()
	w.Write(v)
}

// WriteBurst pushes tokens in order with per of computation annotated
// between consecutive tokens (the burst contract of internal/core): the
// Smart FIFO's bulk fast path when decoupled, the equivalent scalar
// Write/Delay loop in reference mode — so a dual-mode run of a bursting
// network still produces date-identical traces.
func (c *Chan[T]) WriteBurst(a *Actor, vals []T, per sim.Time) {
	w, _ := c.nc.Ends()
	if c.n.Decoupled {
		fifo.WriteBurst(a.P, fifo.Writer[T](w), vals, per)
		return
	}
	for i, v := range vals {
		if i > 0 {
			a.Delay(per)
		}
		w.Write(v)
	}
}

// ReadBurst pops tokens in order with per annotated between consecutive
// tokens, symmetric to WriteBurst.
func (c *Chan[T]) ReadBurst(a *Actor, dst []T, per sim.Time) {
	_, r := c.nc.Ends()
	if c.n.Decoupled {
		fifo.ReadBurst(a.P, fifo.Reader[T](r), dst, per)
		return
	}
	for i := range dst {
		if i > 0 {
			a.Delay(per)
		}
		dst[i] = r.Read()
	}
}

// Monitor exposes the non-Kahn observation interface (fill levels) for
// controllers and probes; actors must not use it for data flow. On a
// sharded build it observes the reader-side endpoint, so monitoring
// actors should be colocated with the reader.
func (c *Chan[T]) Monitor() fifo.Monitor {
	_, r := c.nc.Ends()
	return r
}

// Run builds the network (Smart or regular FIFOs by mode, one kernel or
// Shards kernels with auto-inserted bridges), executes it to quiescence
// and returns an error naming the blocked actors if the network
// deadlocked with tokens still owed.
func (n *Network) Run() error {
	return n.RunCtx(context.Background())
}

// RunCtx is Run under the par supervisor: the run is interrupted when
// ctx ends or the stall watchdog it carries (par.WithStallWindow)
// fires, returning the guard's error. Call Shutdown afterwards either
// way, as with Run.
func (n *Network) RunCtx(ctx context.Context) error {
	if n.built == nil {
		impl := netlist.Plain
		if n.Decoupled {
			impl = netlist.Smart
		}
		shards := n.Shards
		if shards > 1 && !n.Decoupled {
			return fmt.Errorf("kpn: %s: the reference build cannot be sharded (only Smart FIFOs carry the bridge dates)", n.name)
		}
		part, err := netlist.PartitionerByName(n.Partitioner)
		if err != nil {
			return fmt.Errorf("kpn: %s: %w", n.name, err)
		}
		b, err := n.g.Build(netlist.Options{Shards: shards, Partitioner: part, Impl: impl})
		if err != nil {
			return fmt.Errorf("kpn: %s: %w", n.name, err)
		}
		n.built = b
		n.K = b.Kernels[0]
	}
	if err := n.built.RunGuarded(ctx, sim.RunForever); err != nil {
		return err
	}
	if blocked := n.built.Blocked(); len(blocked) != 0 {
		if bl, one := blocked[n.K.Name()]; one && len(blocked) == 1 {
			return fmt.Errorf("kpn: %s: deadlock, blocked actors: %v", n.name, bl)
		}
		return fmt.Errorf("kpn: %s: deadlock, blocked actors: %v", n.name, blocked)
	}
	return nil
}

// Stats sums the kernel activity counters over the build's shards.
func (n *Network) Stats() sim.Stats {
	if n.built == nil {
		return sim.Stats{}
	}
	return n.built.Stats()
}

// Build exposes the elaborated netlist build (nil before Run), for
// callers that report partitioning outcomes (crossings, advances).
func (n *Network) Build() *netlist.Build { return n.built }

// Shutdown force-terminates remaining actor goroutines (after a deadlock,
// or when discarding the network).
func (n *Network) Shutdown() {
	if n.built != nil {
		n.built.Shutdown()
	}
}

// Builder constructs the same network into any mode.
type Builder func(n *Network)

// Verify runs the builder in reference and decoupled modes and returns a
// non-empty description if the dated traces differ after reordering — the
// §IV-A oracle as a one-call library function. Deadlocks must be identical
// in both modes too.
func Verify(name string, build Builder) string {
	run := func(decoupled bool) (*trace.Recorder, error) {
		n := New(name, decoupled)
		build(n)
		err := n.Run()
		n.Shutdown()
		return n.Trace(), err
	}
	refTrace, refErr := run(false)
	smartTrace, smartErr := run(true)
	if (refErr == nil) != (smartErr == nil) {
		return fmt.Sprintf("deadlock mismatch: reference %v, decoupled %v", refErr, smartErr)
	}
	return trace.Diff(refTrace, smartTrace)
}
