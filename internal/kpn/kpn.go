// Package kpn builds Kahn process networks over the simulation kernel: a
// structured, deterministic dataflow layer in the spirit of the KPN model
// of computation the paper cites ([8] HetSC, [9] Kahn 1974).
//
// A Network groups actors (thread processes) and channels (bounded FIFOs).
// Kahn semantics — blocking reads, blocking writes, no peeking at channel
// state from actors — make the produced data and its dates independent of
// scheduling, which is exactly the property the Smart FIFO needs to stay
// exact under temporal decoupling.
//
// Every network builds in one of two modes:
//
//   - Decoupled: Smart FIFO channels, Delay == Inc (fast);
//   - reference: regular FIFO channels, Delay == Wait (the ground truth).
//
// The two runs of the same builder must produce date-identical traces
// (paper §IV-A); Verify automates that check.
package kpn

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fifo"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Network is a KPN under construction or execution.
type Network struct {
	// K is the underlying kernel (exposed for advanced wiring).
	K *sim.Kernel
	// Decoupled selects Smart FIFOs + Inc (true) or regular FIFOs +
	// Wait (false).
	Decoupled bool

	name string
	rec  *trace.Recorder
}

// New creates an empty network with its own kernel.
func New(name string, decoupled bool) *Network {
	return &Network{
		K:         sim.NewKernel(name),
		Decoupled: decoupled,
		name:      name,
		rec:       trace.NewRecorder(),
	}
}

// Name returns the network name.
func (n *Network) Name() string { return n.name }

// Trace returns the dated trace the actors logged.
func (n *Network) Trace() *trace.Recorder { return n.rec }

// Actor is the execution context handed to an actor body.
type Actor struct {
	// P is the underlying process.
	P *sim.Process

	n *Network
}

// Actor registers an actor. The body runs as a thread process; it should
// communicate only through channels and annotate computation with Delay.
func (n *Network) Actor(name string, body func(a *Actor)) {
	n.K.Thread(name, func(p *sim.Process) {
		body(&Actor{P: p, n: n})
	})
}

// Delay annotates d of computation: a local-clock increment when
// decoupled, a context-switching wait otherwise.
func (a *Actor) Delay(d sim.Time) {
	if a.n.Decoupled {
		a.P.Inc(d)
	} else {
		a.P.Wait(d)
	}
}

// Logf records a dated trace line attributed to the actor.
func (a *Actor) Logf(format string, args ...any) {
	a.n.rec.Logf(a.P, format, args...)
}

// Chan is a typed KPN channel.
type Chan[T any] struct {
	n  *Network
	ch fifo.Channel[T]
}

// Channel creates a bounded channel in the network's mode. (A package
// function because Go methods cannot introduce type parameters.)
func Channel[T any](n *Network, name string, depth int) *Chan[T] {
	c := &Chan[T]{n: n}
	if n.Decoupled {
		c.ch = core.NewSmart[T](n.K, name, depth)
	} else {
		c.ch = fifo.New[T](n.K, name, depth)
	}
	return c
}

// Read pops the next token, blocking while the channel is empty.
func (c *Chan[T]) Read() T { return c.ch.Read() }

// Write pushes a token, blocking while the channel is full.
func (c *Chan[T]) Write(v T) { c.ch.Write(v) }

// WriteBurst pushes tokens in order with per of computation annotated
// between consecutive tokens (the burst contract of internal/core): the
// Smart FIFO's bulk fast path when decoupled, the equivalent scalar
// Write/Delay loop in reference mode — so a dual-mode run of a bursting
// network still produces date-identical traces.
func (c *Chan[T]) WriteBurst(a *Actor, vals []T, per sim.Time) {
	if c.n.Decoupled {
		fifo.WriteBurst(a.P, c.ch, vals, per)
		return
	}
	for i, v := range vals {
		if i > 0 {
			a.Delay(per)
		}
		c.ch.Write(v)
	}
}

// ReadBurst pops tokens in order with per annotated between consecutive
// tokens, symmetric to WriteBurst.
func (c *Chan[T]) ReadBurst(a *Actor, dst []T, per sim.Time) {
	if c.n.Decoupled {
		fifo.ReadBurst(a.P, c.ch, dst, per)
		return
	}
	for i := range dst {
		if i > 0 {
			a.Delay(per)
		}
		dst[i] = c.ch.Read()
	}
}

// Monitor exposes the non-Kahn observation interface (fill levels) for
// controllers and probes; actors must not use it for data flow.
func (c *Chan[T]) Monitor() fifo.Monitor { return c.ch }

// Run executes the network to quiescence and returns an error naming the
// blocked actors if the network deadlocked with tokens still owed.
func (n *Network) Run() error {
	n.K.Run(sim.RunForever)
	if blocked := n.K.Blocked(); len(blocked) != 0 {
		return fmt.Errorf("kpn: %s: deadlock, blocked actors: %v", n.name, blocked)
	}
	return nil
}

// Shutdown force-terminates remaining actor goroutines (after a deadlock,
// or when discarding the network).
func (n *Network) Shutdown() { n.K.Shutdown() }

// Builder constructs the same network into any mode.
type Builder func(n *Network)

// Verify runs the builder in reference and decoupled modes and returns a
// non-empty description if the dated traces differ after reordering — the
// §IV-A oracle as a one-call library function. Deadlocks must be identical
// in both modes too.
func Verify(name string, build Builder) string {
	run := func(decoupled bool) (*trace.Recorder, error) {
		n := New(name, decoupled)
		build(n)
		err := n.Run()
		n.Shutdown()
		return n.Trace(), err
	}
	refTrace, refErr := run(false)
	smartTrace, smartErr := run(true)
	if (refErr == nil) != (smartErr == nil) {
		return fmt.Sprintf("deadlock mismatch: reference %v, decoupled %v", refErr, smartErr)
	}
	return trace.Diff(refTrace, smartTrace)
}
