package kpn

import (
	"context"
	"fmt"

	"repro/internal/netlist"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Scenario registry hook: a parameterized linear Kahn chain as a campaign
// model. Every per-stage rate and every payload derives from the spec's
// "seed" through the deterministic scenario RNG, so identical specs give
// identical traces across runs and worker counts.
func init() {
	scenario.Register(scenario.Model{
		Name:  "kpn",
		Keys:  []string{"stages", "depth", "tokens", "seed", "decoupled", "burst", "shards", "partitioner"},
		Run:   runScenario,
		Check: checkScenario,
	})
}

type chainParams struct {
	stages, depth, tokens int
	burst                 int
	decoupled             bool
	shards                int
	partitioner           string
	rateSeed, paySeed     int64
}

func chainConfig(p scenario.Params) (chainParams, error) {
	r := scenario.NewReader(p)
	c := chainParams{
		stages:      r.Int("stages", 3),
		depth:       r.Int("depth", 4),
		tokens:      r.Int("tokens", 50),
		burst:       r.Int("burst", 0),
		decoupled:   r.Bool("decoupled", true),
		shards:      r.Int("shards", 1),
		partitioner: r.String("partitioner", ""),
	}
	rng := scenario.Rand(r.Int64("seed", 1))
	c.rateSeed, c.paySeed = rng.Int63(), rng.Int63()
	if err := r.Err(); err != nil {
		return c, err
	}
	if c.stages < 2 || c.depth < 1 || c.tokens < 1 {
		return c, fmt.Errorf("kpn: want stages >= 2, depth >= 1, tokens >= 1")
	}
	if c.shards < 1 {
		return c, fmt.Errorf("kpn: shards must be >= 1")
	}
	if c.shards > c.stages {
		return c, fmt.Errorf("kpn: %d shards but the chain has only %d stages", c.shards, c.stages)
	}
	if c.shards > 1 && !c.decoupled {
		return c, fmt.Errorf("kpn: the reference (decoupled=false) build cannot be sharded")
	}
	if _, err := netlist.PartitionerByName(c.partitioner); err != nil {
		return c, err
	}
	return c, nil
}

// chainBuilder is a stages-long actor chain: stage 0 generates seeded
// payloads, middle stages transform, the last stage logs dated outputs.
// Per-stage delay schedules come from workload.Random over the derived
// rate seed. The sink's checksum lands in *sum (overwritten per run).
//
// With burst > 1 the chain becomes the burst-dominated variant: per-stage
// rates are constant (sampled once from the same schedule) and tokens move
// in chunks of up to burst through Chan.WriteBurst/ReadBurst — the bulk
// Smart-FIFO fast paths when decoupled, the equivalent scalar loop in
// reference mode, so Verify still pins date equality.
func chainBuilder(c chainParams, sum *uint64) Builder {
	if c.burst > 1 {
		return burstChainBuilder(c, sum)
	}
	return func(net *Network) {
		chans := make([]*Chan[uint32], c.stages-1)
		for i := range chans {
			chans[i] = Channel[uint32](net, fmt.Sprintf("c%d", i), c.depth)
		}
		actors := make([]*netlist.Module, c.stages)
		for s := 0; s < c.stages; s++ {
			s := s
			rate := workload.Random(c.rateSeed+int64(s), 6, 2*sim.NS)
			actors[s] = net.Actor(fmt.Sprintf("a%d", s), func(a *Actor) {
				acc := uint64(0)
				for i := 0; i < c.tokens; i++ {
					var v uint32
					if s == 0 {
						v = workload.WordAt(c.paySeed, i)
					} else {
						v = chans[s-1].Read()
					}
					a.Delay(rate(i) + sim.NS)
					if s < c.stages-1 {
						chans[s].Write(v*3 + uint32(s))
					} else {
						acc = workload.Checksum(acc, v)
						a.Logf("out %08x", v)
					}
				}
				if s == c.stages-1 {
					a.Logf("checksum %016x", acc)
					*sum = acc
				}
			})
		}
		for i, ch := range chans {
			ch.Bind(actors[i], actors[i+1])
		}
	}
}

// burstChainBuilder is the chunked chain: every stage moves tokens in
// chunks with a constant per-stage rate annotated between words, logging
// chunk-end dates at the sink.
func burstChainBuilder(c chainParams, sum *uint64) Builder {
	return func(net *Network) {
		chans := make([]*Chan[uint32], c.stages-1)
		for i := range chans {
			chans[i] = Channel[uint32](net, fmt.Sprintf("c%d", i), c.depth).WithBurst(c.burst)
		}
		actors := make([]*netlist.Module, c.stages)
		for s := 0; s < c.stages; s++ {
			s := s
			per := workload.Random(c.rateSeed+int64(s), 6, 2*sim.NS)(0) + sim.NS
			actors[s] = net.Actor(fmt.Sprintf("a%d", s), func(a *Actor) {
				buf := make([]uint32, c.burst)
				acc := uint64(0)
				for i := 0; i < c.tokens; {
					m := c.burst
					if c.tokens-i < m {
						m = c.tokens - i
					}
					chunk := buf[:m]
					if s == 0 {
						for j := range chunk {
							chunk[j] = workload.WordAt(c.paySeed, i+j)
						}
					} else {
						chans[s-1].ReadBurst(a, chunk, per)
					}
					a.Delay(per)
					if s < c.stages-1 {
						for j := range chunk {
							chunk[j] = chunk[j]*3 + uint32(s)
						}
						chans[s].WriteBurst(a, chunk, per)
						a.Delay(per)
					} else {
						for _, v := range chunk {
							acc = workload.Checksum(acc, v)
						}
						a.Logf("chunk %d sum %016x", i/c.burst, acc)
					}
					i += m
				}
				if s == c.stages-1 {
					a.Logf("checksum %016x", acc)
					*sum = acc
				}
			})
		}
		for i, ch := range chans {
			ch.Bind(actors[i], actors[i+1])
		}
	}
}

func runScenario(ctx context.Context, p scenario.Params) (scenario.Outcome, error) {
	c, err := chainConfig(p)
	if err != nil {
		return scenario.Outcome{}, err
	}
	net := New("kpn", c.decoupled)
	net.Shards, net.Partitioner = c.shards, c.partitioner
	var checksum uint64
	chainBuilder(c, &checksum)(net)
	runErr := net.RunCtx(ctx)
	stats := net.Stats()
	entries := net.Trace().Sorted()
	net.Shutdown()
	if runErr != nil {
		return scenario.Outcome{}, runErr
	}
	d := scenario.NewDigest()
	var simEnd sim.Time
	for _, e := range entries {
		d.Time(e.Date)
		d.Str(e.Msg)
		if e.Date > simEnd {
			simEnd = e.Date
		}
	}
	// Kernel-stat counters are schedule-dependent for sharded runs
	// (see scenario.Outcome.CtxSwitches); report them single-kernel only.
	ctxSw := stats.ContextSwitches
	if net.Build().Shards() > 1 {
		ctxSw = 0
	}
	return scenario.Outcome{
		SimEndNS:    int64(simEnd / sim.NS),
		CtxSwitches: ctxSw,
		Checksums:   []uint64{checksum},
		DatesHash:   d.Sum(),
		Counters: map[string]uint64{
			"trace_entries": uint64(len(entries)),
			"tokens":        uint64(c.tokens),
			"shards":        uint64(net.Build().Shards()),
			"crossings":     uint64(net.Build().Crossings),
		},
	}, nil
}

// checkScenario runs the point's chain through Verify: the reference
// (regular FIFOs + Wait) versus the decoupled (Smart FIFOs + Inc) build
// must produce date-identical traces.
func checkScenario(_ context.Context, p scenario.Params) (string, error) {
	c, err := chainConfig(p)
	if err != nil {
		return "", err
	}
	var sum uint64 // Verify compares traces; the checksum slot is scratch
	return Verify("kpn", chainBuilder(c, &sum)), nil
}
