package kpn_test

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/kpn"
	"repro/internal/sim"
)

// pipelineBuilder is a 3-actor chain with the given depth and rates.
func pipelineBuilder(depth int, n int, rates [3]sim.Time) kpn.Builder {
	return func(net *kpn.Network) {
		c1 := kpn.Channel[int](net, "c1", depth)
		c2 := kpn.Channel[int](net, "c2", depth)
		net.Actor("src", func(a *kpn.Actor) {
			for i := 0; i < n; i++ {
				c1.Write(i)
				a.Delay(rates[0])
			}
		})
		net.Actor("map", func(a *kpn.Actor) {
			for i := 0; i < n; i++ {
				v := c1.Read()
				a.Delay(rates[1])
				c2.Write(v * v)
			}
		})
		net.Actor("sink", func(a *kpn.Actor) {
			for i := 0; i < n; i++ {
				a.Logf("got %d", c2.Read())
				a.Delay(rates[2])
			}
		})
	}
}

func TestVerifyPipeline(t *testing.T) {
	for _, depth := range []int{1, 3, 16} {
		b := pipelineBuilder(depth, 25, [3]sim.Time{7 * sim.NS, 5 * sim.NS, 11 * sim.NS})
		if d := kpn.Verify("pipe", b); d != "" {
			t.Errorf("depth %d: %s", depth, d)
		}
	}
}

func TestForkJoin(t *testing.T) {
	// Diamond: src → (left, right) → join. The join alternates reads,
	// which is Kahn-legal (fixed read order, no peeking).
	build := func(net *kpn.Network) {
		toL := kpn.Channel[int](net, "toL", 4)
		toR := kpn.Channel[int](net, "toR", 4)
		fromL := kpn.Channel[int](net, "fromL", 4)
		fromR := kpn.Channel[int](net, "fromR", 4)
		const n = 20
		net.Actor("src", func(a *kpn.Actor) {
			for i := 0; i < n; i++ {
				toL.Write(i)
				toR.Write(i)
				a.Delay(6 * sim.NS)
			}
		})
		net.Actor("left", func(a *kpn.Actor) {
			for i := 0; i < n; i++ {
				v := toL.Read()
				a.Delay(9 * sim.NS)
				fromL.Write(v + 1)
			}
		})
		net.Actor("right", func(a *kpn.Actor) {
			for i := 0; i < n; i++ {
				v := toR.Read()
				a.Delay(4 * sim.NS)
				fromR.Write(v * 10)
			}
		})
		net.Actor("join", func(a *kpn.Actor) {
			for i := 0; i < n; i++ {
				l := fromL.Read()
				r := fromR.Read()
				a.Logf("pair %d %d", l, r)
				a.Delay(3 * sim.NS)
			}
		})
	}
	if d := kpn.Verify("diamond", build); d != "" {
		t.Error(d)
	}
}

func TestDeadlockReported(t *testing.T) {
	net := kpn.New("dead", true)
	c := kpn.Channel[int](net, "c", 1)
	net.Actor("starved", func(a *kpn.Actor) {
		c.Read() // nobody writes
	})
	err := net.Run()
	if err == nil || !strings.Contains(err.Error(), "starved") {
		t.Errorf("Run error = %v, want deadlock naming 'starved'", err)
	}
	net.Shutdown()
}

func TestVerifyCatchesDeadlockMismatch(t *testing.T) {
	// A builder that deadlocks only in one mode would be a Smart FIFO
	// bug; simulate the check by a builder that deadlocks in both and
	// assert Verify treats equal deadlocks as consistent.
	build := func(net *kpn.Network) {
		c := kpn.Channel[int](net, "c", 1)
		net.Actor("starved", func(a *kpn.Actor) {
			a.Logf("waiting")
			c.Read()
		})
	}
	if d := kpn.Verify("dead", build); d != "" {
		t.Errorf("symmetric deadlock reported as mismatch: %s", d)
	}
}

func TestMonitorAccess(t *testing.T) {
	net := kpn.New("mon", true)
	c := kpn.Channel[int](net, "c", 8)
	var observed int
	net.Actor("prod", func(a *kpn.Actor) {
		for i := 0; i < 5; i++ {
			c.Write(i)
			a.Delay(10 * sim.NS)
		}
	})
	net.Actor("watch", func(a *kpn.Actor) {
		a.P.Wait(25 * sim.NS)
		observed = c.Monitor().Size()
	})
	if err := net.Run(); err != nil {
		t.Fatal(err)
	}
	net.Shutdown()
	if observed != 3 { // writes at 0,10,20 visible at 25ns
		t.Errorf("observed level %d at 25ns, want 3", observed)
	}
}

func TestQuickVerifyRandomGraphs(t *testing.T) {
	// Random linear chains with random depths and rates always verify.
	prop := func(depthRaw, lenRaw uint8, rateRaw []byte) bool {
		depth := int(depthRaw%6) + 1
		stages := int(lenRaw%3) + 2 // 2..4 actors
		const tokens = 15
		rate := func(i, j int) sim.Time {
			b := byte(3)
			if len(rateRaw) > 0 {
				b = rateRaw[(i*7+j)%len(rateRaw)]
			}
			return sim.Time(b%5) * 10 * sim.NS
		}
		build := func(net *kpn.Network) {
			chans := make([]*kpn.Chan[int], stages-1)
			for i := range chans {
				chans[i] = kpn.Channel[int](net, fmt.Sprintf("c%d", i), depth)
			}
			for s := 0; s < stages; s++ {
				s := s
				net.Actor(fmt.Sprintf("a%d", s), func(a *kpn.Actor) {
					for i := 0; i < tokens; i++ {
						v := i
						if s > 0 {
							v = chans[s-1].Read()
						}
						a.Delay(rate(s, i))
						if s < stages-1 {
							chans[s].Write(v + 1)
						} else {
							a.Logf("out %d", v)
						}
					}
				})
			}
		}
		return kpn.Verify("rand", build) == ""
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
