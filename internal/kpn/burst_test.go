package kpn

// Burst-mode KPN pins: a bursting network must stay a Kahn network — the
// §IV-A dual-mode oracle over Chan.WriteBurst/ReadBurst.

import (
	"context"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// TestVerifyBurstChain runs the registered chain model's Verify (reference
// Wait-per-word loops vs decoupled bulk Smart-FIFO paths) across the
// acceptance depth grid with bursts on.
func TestVerifyBurstChain(t *testing.T) {
	for _, depth := range []int{1, 4, 64} {
		for _, burst := range []int{2, 8, 32} {
			c := chainParams{
				stages: 4, depth: depth, tokens: 120, burst: burst,
				rateSeed: 7, paySeed: 11,
			}
			var sum uint64
			if d := Verify("kpn-burst", chainBuilder(c, &sum)); d != "" {
				t.Errorf("depth=%d burst=%d: dual-mode burst traces differ:\n%s", depth, burst, d)
			}
		}
	}
}

// TestBurstScenarioCheck exercises the registry hook with the burst key:
// the campaign spot check must pass for a bursting point.
func TestBurstScenarioCheck(t *testing.T) {
	m, ok := scenario.Lookup("kpn")
	if !ok {
		t.Fatal("kpn model not registered")
	}
	diff, err := m.Check(context.Background(), scenario.Params{"burst": 8.0, "depth": 4.0, "tokens": 64.0})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if diff != "" {
		t.Errorf("burst point failed the trace-equivalence check:\n%s", diff)
	}
}

// TestBurstChanDirect pins Chan.WriteBurst/ReadBurst on a hand-built
// network: values arrive in order with the expected count in both modes.
func TestBurstChanDirect(t *testing.T) {
	for _, decoupled := range []bool{false, true} {
		n := New("direct", decoupled)
		ch := Channel[int](n, "c", 3)
		got := make([]int, 10)
		n.Actor("w", func(a *Actor) {
			buf := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
			ch.WriteBurst(a, buf, 2*sim.NS)
		})
		n.Actor("r", func(a *Actor) {
			ch.ReadBurst(a, got, 5*sim.NS)
		})
		if err := n.Run(); err != nil {
			t.Fatalf("decoupled=%v: %v", decoupled, err)
		}
		n.Shutdown()
		for i, v := range got {
			if v != i {
				t.Fatalf("decoupled=%v: got[%d] = %d", decoupled, i, v)
			}
		}
	}
}
