// Package trace implements the validation framework of paper §IV-A: dated
// trace recording, date reordering, and trace comparison.
//
// Each test is executed twice — once with regular FIFOs and no temporal
// decoupling, once with Smart FIFOs and decoupling — and both runs record
// traces stamped with the *local* date of the printing process. Because
// decoupling changes the schedule, the raw trace orders differ; a test
// passes if the traces are identical after reordering by date. That proves
// behavior and timing are unchanged, which is the paper's headline
// accuracy claim.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
)

// Entry is one dated trace line.
type Entry struct {
	// Date is the local date of the process that emitted the line.
	Date sim.Time
	// Proc is the emitting process name.
	Proc string
	// Msg is the payload.
	Msg string
}

// String renders the entry in the on-disk format: "date\tproc\tmsg".
func (e Entry) String() string {
	return fmt.Sprintf("%v\t%s\t%s", e.Date, e.Proc, e.Msg)
}

// Recorder collects trace entries in emission order. It is safe for
// concurrent logging from processes of different kernels (a sharded
// netlist build); the emission order across kernels is then
// schedule-dependent, which Sorted erases.
type Recorder struct {
	mu      sync.Mutex
	entries []Entry
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Logf records a line stamped with p's local date (paper: "each trace
// contains the local date of the process that printed it").
func (r *Recorder) Logf(p *sim.Process, format string, args ...any) {
	e := Entry{
		Date: p.LocalTime(),
		Proc: p.Name(),
		Msg:  fmt.Sprintf(format, args...),
	}
	r.mu.Lock()
	r.entries = append(r.entries, e)
	r.mu.Unlock()
}

// Log records a pre-built entry.
func (r *Recorder) Log(e Entry) {
	r.mu.Lock()
	r.entries = append(r.entries, e)
	r.mu.Unlock()
}

// Entries returns the recorded entries in emission order. Call it only
// while no kernel is running.
func (r *Recorder) Entries() []Entry { return r.entries }

// Len returns the number of recorded entries.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Sorted returns a copy of the entries reordered by (date, proc, msg). Two
// traces of the same model are equivalent iff their Sorted forms are equal:
// reordering by date erases the schedule differences that temporal
// decoupling introduces, while keeping any behavioral or timing change
// visible.
func (r *Recorder) Sorted() []Entry {
	out := make([]Entry, len(r.entries))
	copy(out, r.entries)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Date != b.Date {
			return a.Date < b.Date
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.Msg < b.Msg
	})
	return out
}

// Equal reports whether two recorders hold the same multiset of entries
// (identical traces after reordering).
func Equal(a, b *Recorder) bool {
	return Diff(a, b) == ""
}

// Diff returns a human-readable description of the first difference
// between the reordered traces, or "" if they are identical.
func Diff(a, b *Recorder) string {
	sa, sb := a.Sorted(), b.Sorted()
	n := len(sa)
	if len(sb) < n {
		n = len(sb)
	}
	for i := 0; i < n; i++ {
		if sa[i] != sb[i] {
			return fmt.Sprintf("entry %d differs:\n  a: %v\n  b: %v", i, sa[i], sb[i])
		}
	}
	if len(sa) != len(sb) {
		return fmt.Sprintf("lengths differ: a has %d entries, b has %d", len(sa), len(sb))
	}
	return ""
}

// Write serializes the entries (emission order) to w, one per line.
func (r *Recorder) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.entries {
		if _, err := fmt.Fprintln(bw, e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a trace written by Write.
func Read(rd io.Reader) (*Recorder, error) {
	r := NewRecorder()
	sc := bufio.NewScanner(rd)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		e, err := parseEntry(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		r.Log(e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return r, nil
}

func parseEntry(line string) (Entry, error) {
	parts := strings.SplitN(line, "\t", 3)
	if len(parts) != 3 {
		return Entry{}, fmt.Errorf("want 3 tab-separated fields, got %d", len(parts))
	}
	d, err := ParseTime(parts[0])
	if err != nil {
		return Entry{}, err
	}
	return Entry{Date: d, Proc: parts[1], Msg: parts[2]}, nil
}

// ParseTime parses the output of sim.Time.String: an integer followed by a
// unit among ps, ns, us, ms, s.
func ParseTime(s string) (sim.Time, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	unit := sim.Time(0)
	var num string
	switch {
	case strings.HasSuffix(s, "ps"):
		unit, num = sim.PS, s[:len(s)-2]
	case strings.HasSuffix(s, "ns"):
		unit, num = sim.NS, s[:len(s)-2]
	case strings.HasSuffix(s, "us"):
		unit, num = sim.US, s[:len(s)-2]
	case strings.HasSuffix(s, "ms"):
		unit, num = sim.MS, s[:len(s)-2]
	case strings.HasSuffix(s, "s"):
		unit, num = sim.SEC, s[:len(s)-1]
	default:
		return 0, fmt.Errorf("bad time %q: no unit", s)
	}
	var v int64
	if _, err := fmt.Sscanf(num, "%d", &v); err != nil {
		return 0, fmt.Errorf("bad time %q: %v", s, err)
	}
	t := sim.Time(v) * unit
	if neg {
		t = -t
	}
	return t, nil
}
