package trace_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/trace"
)

func entry(d sim.Time, p, m string) trace.Entry {
	return trace.Entry{Date: d, Proc: p, Msg: m}
}

func TestSortedReordersByDate(t *testing.T) {
	r := trace.NewRecorder()
	r.Log(entry(30*sim.NS, "b", "x"))
	r.Log(entry(10*sim.NS, "a", "y"))
	r.Log(entry(20*sim.NS, "c", "z"))
	s := r.Sorted()
	if s[0].Date != 10*sim.NS || s[1].Date != 20*sim.NS || s[2].Date != 30*sim.NS {
		t.Errorf("sorted = %v", s)
	}
	// Original order untouched.
	if r.Entries()[0].Date != 30*sim.NS {
		t.Error("Sorted mutated the recorder")
	}
}

func TestEqualIgnoresSchedule(t *testing.T) {
	a := trace.NewRecorder()
	a.Log(entry(10*sim.NS, "w", "wrote 1"))
	a.Log(entry(10*sim.NS, "r", "read 1"))
	a.Log(entry(20*sim.NS, "w", "wrote 2"))
	b := trace.NewRecorder()
	// Decoupled schedule: same entries, emitted in a different order,
	// dates even decrease between processes.
	b.Log(entry(10*sim.NS, "w", "wrote 1"))
	b.Log(entry(20*sim.NS, "w", "wrote 2"))
	b.Log(entry(10*sim.NS, "r", "read 1"))
	if !trace.Equal(a, b) {
		t.Errorf("reordered traces not equal: %s", trace.Diff(a, b))
	}
}

func TestDiffDetectsTimingChange(t *testing.T) {
	a := trace.NewRecorder()
	a.Log(entry(10*sim.NS, "r", "read 1"))
	b := trace.NewRecorder()
	b.Log(entry(15*sim.NS, "r", "read 1"))
	if trace.Equal(a, b) {
		t.Error("timing change not detected")
	}
	if d := trace.Diff(a, b); !strings.Contains(d, "differs") {
		t.Errorf("Diff = %q", d)
	}
}

func TestDiffDetectsMissingEntry(t *testing.T) {
	a := trace.NewRecorder()
	a.Log(entry(10*sim.NS, "r", "read 1"))
	a.Log(entry(20*sim.NS, "r", "read 2"))
	b := trace.NewRecorder()
	b.Log(entry(10*sim.NS, "r", "read 1"))
	if d := trace.Diff(a, b); !strings.Contains(d, "lengths differ") {
		t.Errorf("Diff = %q", d)
	}
}

func TestDuplicateEntriesCounted(t *testing.T) {
	a := trace.NewRecorder()
	a.Log(entry(10*sim.NS, "p", "tick"))
	a.Log(entry(10*sim.NS, "p", "tick"))
	b := trace.NewRecorder()
	b.Log(entry(10*sim.NS, "p", "tick"))
	if trace.Equal(a, b) {
		t.Error("multiset semantics broken: duplicate count ignored")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := trace.NewRecorder()
	r.Log(entry(0, "a", "start"))
	r.Log(entry(1500*sim.PS, "b", "msg with spaces"))
	r.Log(entry(20*sim.NS, "c", "end"))
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !trace.Equal(r, got) {
		t.Errorf("round trip: %s", trace.Diff(r, got))
	}
}

func TestReadBadLine(t *testing.T) {
	if _, err := trace.Read(strings.NewReader("garbage line\n")); err == nil {
		t.Error("no error for malformed line")
	}
	if _, err := trace.Read(strings.NewReader("10xx\ta\tb\n")); err == nil {
		t.Error("no error for bad time unit")
	}
}

func TestLogfStampsLocalDate(t *testing.T) {
	k := sim.NewKernel("t")
	r := trace.NewRecorder()
	k.Thread("p", func(p *sim.Process) {
		p.Inc(42 * sim.NS)
		r.Logf(p, "hello %d", 7)
	})
	k.Run(sim.RunForever)
	e := r.Entries()[0]
	if e.Date != 42*sim.NS || e.Proc != "p" || e.Msg != "hello 7" {
		t.Errorf("entry = %+v", e)
	}
}

func TestParseTimeUnits(t *testing.T) {
	cases := map[string]sim.Time{
		"0s":     0,
		"20ns":   20 * sim.NS,
		"1500ps": 1500 * sim.PS,
		"3us":    3 * sim.US,
		"7ms":    7 * sim.MS,
		"2s":     2 * sim.SEC,
		"-5ns":   -5 * sim.NS,
	}
	for s, want := range cases {
		got, err := trace.ParseTime(s)
		if err != nil || got != want {
			t.Errorf("ParseTime(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
}

func TestQuickTimeStringRoundTrip(t *testing.T) {
	prop := func(raw int64) bool {
		v := sim.Time(raw % (1 << 40))
		got, err := trace.ParseTime(v.String())
		return err == nil && got == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickSortedIsPermutation(t *testing.T) {
	prop := func(dates []int16) bool {
		r := trace.NewRecorder()
		for i, d := range dates {
			r.Log(entry(sim.Time(d)*sim.NS, "p", string(rune('a'+i%26))))
		}
		s := r.Sorted()
		if len(s) != len(dates) {
			return false
		}
		for i := 1; i < len(s); i++ {
			if s[i].Date < s[i-1].Date {
				return false
			}
		}
		// Same multiset: compare against itself via Equal.
		r2 := trace.NewRecorder()
		for _, e := range s {
			r2.Log(e)
		}
		return trace.Equal(r, r2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
