package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/store"
)

func waitCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func canonicalJSON(t *testing.T, res *Results) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.JSON(&buf, false); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEngineJournalAndRecover drives the full durability loop: an engine
// with a store journals a campaign, a second engine recovers the log,
// serves every journaled point from the rebuilt cache (zero
// recomputation) and reproduces the document byte for byte.
func TestEngineJournalAndRecover(t *testing.T) {
	dir := t.TempDir()
	st, rec, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Jobs) != 0 {
		t.Fatalf("fresh store recovered %d jobs", len(rec.Jobs))
	}
	e1 := NewEngine(Options{Workers: 2, Store: st})
	j1, err := e1.Submit(smallSet())
	if err != nil {
		t.Fatal(err)
	}
	res1, err := j1.Wait(waitCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	doc1 := canonicalJSON(t, res1)
	e1.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": recover the journal into a fresh engine.
	st2, rec2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if len(rec2.Jobs) != 1 || rec2.Jobs[0].State != store.JobFinished {
		t.Fatalf("recovered jobs = %+v", rec2.Jobs)
	}
	if len(rec2.Points) != res1.Aggregate.Unique {
		t.Fatalf("recovered %d points, want %d", len(rec2.Points), res1.Aggregate.Unique)
	}
	e2 := NewEngine(Options{Workers: 2, Store: st2})
	defer e2.Close()
	resumed, err := e2.Recover(rec2)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 1 || resumed[0].ID() != j1.ID() {
		t.Fatalf("resumed = %v", resumed)
	}
	res2, err := resumed[0].Wait(waitCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Timing == nil || res2.Timing.CacheHits != res1.Aggregate.Unique {
		t.Errorf("resumed run recomputed points: timing = %+v, want %d cache hits",
			res2.Timing, res1.Aggregate.Unique)
	}
	for _, p := range res2.Points {
		if !p.Dedup && !p.Cached {
			t.Errorf("point %d (%s) not served from the recovered cache", p.Index, p.Hash)
		}
	}
	if !resumed[0].Status().Resumed {
		t.Error("resumed job's status does not carry Resumed")
	}
	if doc2 := canonicalJSON(t, res2); !bytes.Equal(doc1, doc2) {
		t.Errorf("recovered document differs from original:\n--- original\n%s\n--- recovered\n%s", doc1, doc2)
	}

	// The id sequence resumes past the journaled ids.
	j2, err := e2.Submit(smallSet())
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID() == j1.ID() {
		t.Errorf("id sequence restarted: new job reused %s", j2.ID())
	}
}

// TestRecoverInterruptedJob hand-writes the journal a crash mid-campaign
// leaves — a submission plus SOME completion records, no terminal record
// — and checks the resumed run reuses exactly the journaled points and
// still emits the uninterrupted document.
func TestRecoverInterruptedJob(t *testing.T) {
	set := smallSet()
	clean, err := Run(context.Background(), set, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cleanDoc := canonicalJSON(t, clean)

	dir := t.TempDir()
	st, _, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := json.Marshal(set)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.JobSubmitted("c7", set.Name, len(clean.Points), clean.Aggregate.Unique, spec); err != nil {
		t.Fatal(err)
	}
	// Journal only the first unique point: the crash "happened" before
	// the rest completed.
	first := clean.Points[0]
	if err := st.PointCompleted(first.Hash, first.Outcome); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := rec.Interrupted(); len(got) != 1 || got[0].ID != "c7" {
		t.Fatalf("Interrupted = %v", got)
	}
	e := NewEngine(Options{Workers: 2, Store: st2})
	defer e.Close()
	resumed, err := e.Recover(rec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := resumed[0].Wait(waitCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Timing == nil || res.Timing.CacheHits != 1 {
		t.Errorf("timing = %+v, want exactly 1 cache hit (the journaled point)", res.Timing)
	}
	if doc := canonicalJSON(t, res); !bytes.Equal(cleanDoc, doc) {
		t.Errorf("resumed document differs from uninterrupted run:\n--- clean\n%s\n--- resumed\n%s", cleanDoc, doc)
	}

	// The resumed completion was journaled: a third scan sees c7 finished
	// and every unique point cached.
	e.Close()
	st2.Close()
	_, rec3, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec3.Interrupted()) != 0 {
		t.Errorf("c7 still interrupted after resumed run settled")
	}
	if len(rec3.Points) != clean.Aggregate.Unique {
		t.Errorf("journal holds %d points after resume, want %d", len(rec3.Points), clean.Aggregate.Unique)
	}
}

// TestRecoverCancelledTombstone: an explicitly-cancelled job is not
// resumed; it reappears settled, with no results document.
func TestRecoverCancelledTombstone(t *testing.T) {
	dir := t.TempDir()
	st, _, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := json.Marshal(smallSet())
	st.JobSubmitted("c3", "doomed", 2, 2, spec)
	st.JobCancelled("c3")
	st.Close()

	st2, rec, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	e := NewEngine(Options{Workers: 2, Store: st2})
	defer e.Close()
	resumed, err := e.Recover(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 0 {
		t.Fatalf("cancelled job was resumed: %v", resumed)
	}
	j, ok := e.Job("c3")
	if !ok {
		t.Fatal("tombstone not registered")
	}
	st3 := j.Status()
	if st3.State != JobCancelled || !st3.Resumed || st3.Error == "" {
		t.Errorf("tombstone status = %+v", st3)
	}
	res, jerr, done := j.Results()
	if !done || res != nil || jerr == nil {
		t.Errorf("tombstone results: res=%v err=%v done=%v", res, jerr, done)
	}
}

// TestCancelStatuses covers the three Cancel outcomes and checks the
// explicit cancellation reaches the journal as its own record.
func TestCancelStatuses(t *testing.T) {
	dir := t.TempDir()
	st, _, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(Options{Workers: 1, Store: st})

	if got := e.Cancel("nope"); got != CancelUnknown {
		t.Errorf("Cancel(unknown) = %v", got)
	}

	// A wide sweep so cancellation lands while points still run.
	j, err := e.Submit(scenario.Set{Specs: []scenario.Spec{
		{Model: "pipeline", Params: scenario.Params{"blocks": 8, "words_per_block": 400},
			Matrix: map[string][]any{"depth": []any{1, 2, 3, 4, 5, 6, 7, 8}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Cancel(j.ID()); got != CancelRequested {
		t.Errorf("Cancel(running) = %v", got)
	}
	j.Wait(waitCtx(t))
	if got := e.Cancel(j.ID()); got != CancelAlreadySettled {
		t.Errorf("Cancel(settled) = %v", got)
	}

	// A finished job also answers CancelAlreadySettled, and stays
	// finished in the journal.
	j2, err := e.Submit(smallSet())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j2.Wait(waitCtx(t)); err != nil {
		t.Fatal(err)
	}
	if got := e.Cancel(j2.ID()); got != CancelAlreadySettled {
		t.Errorf("Cancel(done) = %v", got)
	}

	e.Close()
	st.Close()
	_, rec, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	states := map[string]store.JobState{}
	for _, jr := range rec.Jobs {
		states[jr.ID] = jr.State
	}
	if states[j.ID()] != store.JobCancelled {
		t.Errorf("journal state of cancelled job = %s, want cancelled", states[j.ID()])
	}
	if states[j2.ID()] != store.JobFinished {
		t.Errorf("journal state of finished job = %s (Cancel on settled job must not journal)", states[j2.ID()])
	}
}

// TestStreamPointsMatchFinalDocument: walking StreamPoint 0..n-1 yields
// exactly the rows of the settled results document.
func TestStreamPointsMatchFinalDocument(t *testing.T) {
	e := NewEngine(Options{Workers: 2})
	defer e.Close()
	j, err := e.Submit(smallSet())
	if err != nil {
		t.Fatal(err)
	}
	ctx := waitCtx(t)
	var streamed []PointResult
	for i := 0; i < j.NumPoints(); i++ {
		pr, err := j.StreamPoint(ctx, i)
		if err != nil {
			t.Fatalf("StreamPoint(%d): %v", i, err)
		}
		canonicalizePoint(&pr)
		streamed = append(streamed, pr)
	}
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.Points) {
		t.Fatalf("streamed %d points, document has %d", len(streamed), len(res.Points))
	}
	for i := range streamed {
		want := res.Points[i]
		canonicalizePoint(&want)
		a, _ := json.Marshal(streamed[i])
		b, _ := json.Marshal(want)
		if !bytes.Equal(a, b) {
			t.Errorf("point %d: streamed %s != final %s", i, a, b)
		}
	}
}
