package campaign

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/scenario"
)

// shardedSet sweeps the two shardable, partitioner-aware models plus one
// model with no partitioner axis (which profile guidance must leave
// alone).
func shardedSet() scenario.Set {
	return scenario.Set{
		Name: "sharded",
		Specs: []scenario.Spec{
			{
				Model:  "netlist",
				Params: scenario.Params{"words": 12},
				Matrix: map[string][]any{
					"kind":   []any{"chain", "mesh"},
					"shards": []any{1, 2},
				},
			},
			{
				Model:  "soc-clustered",
				Params: scenario.Params{"jobs": 1, "words_per_job": 16},
				Matrix: map[string][]any{
					"shards": []any{1, 3},
				},
			},
			{
				Model:  "kpn",
				Params: scenario.Params{"tokens": 8},
				Matrix: map[string][]any{
					"stages": []any{2, 3},
				},
			},
		},
	}
}

// TestProfileGuidedCampaign pins the tentpole loop end to end: sharded
// points of partitioner-aware models are rewritten to the profiled
// partitioner, their dates stay identical to the unguided sweep, the
// placement counters obey the dominance guarantee, and the document
// stays byte-identical across worker counts.
func TestProfileGuidedCampaign(t *testing.T) {
	set := shardedSet()
	run := func(workers int, guided bool) *Results {
		res, err := Run(context.Background(), set, Options{
			Workers: workers, Cache: NewCache(), ProfileGuided: guided,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	base := run(1, false)
	guided := run(1, true)
	if len(base.Points) != len(guided.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(base.Points), len(guided.Points))
	}
	rewritten := 0
	for i := range guided.Points {
		bp, gp := &base.Points[i], &guided.Points[i]
		if gp.Err != "" {
			t.Fatalf("point %d (%s): %s", i, gp.Model, gp.Err)
		}
		// Placement never changes the dated behaviour.
		if bp.Outcome.DatesHash != gp.Outcome.DatesHash {
			t.Errorf("point %d (%s %v): dates_hash %s != unguided %s",
				i, gp.Model, gp.Params, gp.Outcome.DatesHash, bp.Outcome.DatesHash)
		}
		if part, ok := gp.Params["partitioner"]; ok && part == "profiled" {
			rewritten++
			if shardsOf(gp.Params) < 2 {
				t.Errorf("point %d: single-kernel point rewritten", i)
			}
			cb, okc := gp.Outcome.Counters["crossings_before"]
			if !okc {
				t.Errorf("point %d: profiled point has no placement counters: %v", i, gp.Outcome.Counters)
				continue
			}
			if ca := gp.Outcome.Counters["crossings_after"]; ca > cb {
				t.Errorf("point %d: crossings_after %d > crossings_before %d", i, ca, cb)
			}
			if wa, wb := gp.Outcome.Counters["cut_weight_after"], gp.Outcome.Counters["cut_weight_before"]; wa > wb {
				t.Errorf("point %d: cut_weight_after %d > cut_weight_before %d", i, wa, wb)
			}
		} else if shardsOf(gp.Params) > 1 && gp.Model != "kpn" {
			t.Errorf("point %d (%s): sharded point not rewritten: %v", i, gp.Model, gp.Params)
		}
	}
	if rewritten == 0 {
		t.Fatal("no point was rewritten to the profiled partitioner")
	}

	// Determinism across worker counts, rewrite included.
	render := func(r *Results) (string, string) {
		var j, c bytes.Buffer
		if err := r.JSON(&j, false); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteCSV(&c, false); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := render(guided)
	j8, c8 := render(run(8, true))
	if j1 != j8 {
		t.Errorf("profile-guided JSON differs between 1 and 8 workers:\n--- 1\n%s\n--- 8\n%s", j1, j8)
	}
	if c1 != c8 {
		t.Error("profile-guided CSV differs between 1 and 8 workers")
	}
}

// TestProfilePointSeedsCache: the single-kernel measurement twin flows
// through the shared outcome cache, so an explicit single-kernel point
// of the same sweep is served without re-running.
func TestProfilePointSeedsCache(t *testing.T) {
	cache := NewCache()
	set := scenario.Set{
		Name: "twin",
		Specs: []scenario.Spec{{
			Model:  "netlist",
			Params: scenario.Params{"kind": "chain", "words": 8},
			Matrix: map[string][]any{"shards": []any{2}},
		}},
	}
	res, err := Run(context.Background(), set, Options{Workers: 1, Cache: cache, ProfileGuided: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points[0].Err != "" {
		t.Fatal(res.Points[0].Err)
	}
	// The twin's hash: the same point at shards=1 without a partitioner.
	params := res.Points[0].Params.Clone()
	params["shards"] = 1
	delete(params, "partitioner")
	hash, err := scenario.HashPoint("netlist", params)
	if err != nil {
		t.Fatal(err)
	}
	if _, hit := cache.Get(hash); !hit {
		t.Fatalf("measurement twin %s not in the shared cache (%d entries)", hash, cache.Len())
	}
}
