package campaign

// Importing campaign registers every built-in workload model: the
// workload packages self-register in their init (the scenario registry
// hooks), and this is the one place that links them all in, so the CLI,
// the HTTP service and embedders see the same model set.
import (
	_ "repro/internal/kpn"
	_ "repro/internal/netlist"
	_ "repro/internal/noc"
	_ "repro/internal/pipeline"
	_ "repro/internal/soc"
)
