package campaign

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON writes v to w as one indented JSON document, newline
// terminated — the shared emitter behind campaign reports and the
// fifobench/socbench -json trajectories.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// CSV emits formatted rows under a fixed header, quoting via
// encoding/csv. Floats render with three decimals (the bench wall-time
// convention); everything else with %v. Errors stick: check Err (or the
// Flush return) once after the last row.
type CSV struct {
	w    *csv.Writer
	cols int
	err  error
}

// NewCSV writes the header and returns the row writer.
func NewCSV(w io.Writer, columns ...string) *CSV {
	c := &CSV{w: csv.NewWriter(w), cols: len(columns)}
	c.err = c.w.Write(columns)
	return c
}

// Row formats and writes one record; extra or missing fields are an error.
func (c *CSV) Row(values ...any) {
	if c.err != nil {
		return
	}
	if len(values) != c.cols {
		c.err = fmt.Errorf("campaign: CSV row has %d fields, header has %d", len(values), c.cols)
		return
	}
	rec := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			rec[i] = fmt.Sprintf("%.3f", x)
		case float32:
			rec[i] = fmt.Sprintf("%.3f", x)
		default:
			rec[i] = fmt.Sprint(v)
		}
	}
	c.err = c.w.Write(rec)
}

// Err returns the first write or shape error.
func (c *CSV) Err() error { return c.err }

// Flush drains the writer and returns the first error.
func (c *CSV) Flush() error {
	c.w.Flush()
	if c.err != nil {
		return c.err
	}
	return c.w.Error()
}

// JSON writes the canonical results document: with includeTiming false
// (the default everywhere determinism matters — golden files, the
// 1-vs-N-worker equality check) the nondeterministic wall-clock fields
// are stripped, and the bytes depend only on the spec.
func (r *Results) JSON(w io.Writer, includeTiming bool) error {
	doc := *r
	if !includeTiming {
		doc.Timing = nil
		doc.Points = make([]PointResult, len(r.Points))
		copy(doc.Points, r.Points)
		for i := range doc.Points {
			canonicalizePoint(&doc.Points[i])
		}
	}
	return WriteJSON(w, &doc)
}

// canonicalizePoint strips the timing-telemetry fields from a point
// report: wall time, attempt counts and the cache provenance all depend
// on scheduling or on what ran before, not on the spec. Degraded and
// Stall stay — they are outcome provenance, and healthy runs never set
// them. Applied by every canonical emitter (JSON, CSV, streaming) so the
// deterministic document stays byte-identical across worker counts AND
// across restarts.
func canonicalizePoint(p *PointResult) {
	p.WallMS = 0
	p.ProfileWallMS = 0
	p.Attempts = 0
	p.Cached = false
}

// CSVColumns is the header of the per-point CSV emitted by WriteCSV.
var CSVColumns = []string{"index", "model", "hash", "sim_end_ns", "ctx_switches",
	"checksums", "dates_hash", "dedup", "cached", "checked", "check_diff", "degraded", "stalled",
	"attempts", "error", "wall_ms", "profile_wall_ms",
	"crossings_before", "crossings_after", "cut_weight_before", "cut_weight_after", "params"}

// csvPointRow writes one point as a CSV record — shared by the buffered
// WriteCSV and the streaming results path so the column order cannot
// drift between them.
func csvPointRow(c *CSV, p *PointResult, includeTiming bool) error {
	var simEnd int64
	var ctx uint64
	sums, dates := "", ""
	if p.Outcome != nil {
		simEnd, ctx, dates = p.Outcome.SimEndNS, p.Outcome.CtxSwitches, p.Outcome.DatesHash
		for j, s := range p.Outcome.Checksums {
			if j > 0 {
				sums += " "
			}
			sums += fmt.Sprintf("%016x", s)
		}
	}
	wall := p.WallMS
	profWall := p.ProfileWallMS
	attempts := p.Attempts
	cached := p.Cached
	if !includeTiming {
		wall, profWall, attempts, cached = 0, 0, 0, false
	}
	// Placement-cost counters exist only on profile-guided points; zero
	// everywhere else (the counters themselves are deterministic).
	var cb, ca, wb, wa uint64
	if p.Outcome != nil {
		cb = p.Outcome.Counters["crossings_before"]
		ca = p.Outcome.Counters["crossings_after"]
		wb = p.Outcome.Counters["cut_weight_before"]
		wa = p.Outcome.Counters["cut_weight_after"]
	}
	params, err := json.Marshal(p.Params)
	if err != nil {
		return err
	}
	c.Row(p.Index, p.Model, p.Hash, simEnd, ctx, sums, dates,
		p.Dedup, cached, p.Checked, p.CheckDiff, p.Degraded, p.Stall != nil,
		attempts, p.Err, wall, profWall, cb, ca, wb, wa, string(params))
	return nil
}

// WriteCSV emits one row per point. As with JSON, wall times are zeroed
// unless includeTiming is set.
func (r *Results) WriteCSV(w io.Writer, includeTiming bool) error {
	c := NewCSV(w, CSVColumns...)
	for i := range r.Points {
		if err := csvPointRow(c, &r.Points[i], includeTiming); err != nil {
			return err
		}
	}
	return c.Flush()
}

// StreamPointJSON writes one point as a single compact JSON line — the
// newline-delimited streaming flavour of the results document. The
// object's field order is the PointResult struct order, identical to
// the buffered document's; without includeTiming the same canonical
// zeroing applies.
func StreamPointJSON(w io.Writer, p *PointResult, includeTiming bool) error {
	pt := *p
	if !includeTiming {
		canonicalizePoint(&pt)
	}
	js, err := json.Marshal(&pt)
	if err != nil {
		return err
	}
	js = append(js, '\n')
	_, err = w.Write(js)
	return err
}

// StreamPointCSV writes one point row through the shared column writer
// and flushes it, so the row reaches the client before the next point
// completes. The columns are exactly WriteCSV's.
func StreamPointCSV(c *CSV, p *PointResult, includeTiming bool) error {
	if err := csvPointRow(c, p, includeTiming); err != nil {
		return err
	}
	return c.Flush()
}

// StreamAggregateJSON writes the stream's trailing line: the aggregate
// of the settled results document.
func StreamAggregateJSON(w io.Writer, r *Results) error {
	js, err := json.Marshal(map[string]*Aggregate{"aggregate": &r.Aggregate})
	if err != nil {
		return err
	}
	js = append(js, '\n')
	_, err = w.Write(js)
	return err
}
