package campaign

import (
	"context"
	"testing"
	"time"

	"repro/internal/scenario"
)

func smallSet() scenario.Set {
	return scenario.Set{Name: "eng", Specs: []scenario.Spec{
		{Model: "kpn", Params: scenario.Params{"tokens": 6},
			Matrix: map[string][]any{"depth": []any{1, 2}}},
	}}
}

func TestEngineLifecycle(t *testing.T) {
	e := NewEngine(Options{Workers: 2})
	defer e.Close()
	j, err := e.Submit(smallSet())
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := e.Job(j.ID()); !ok || got != j {
		t.Fatalf("Job(%q) lookup failed", j.ID())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := j.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	st := j.Status()
	if st.State != JobDone || st.Done != st.Total || st.Points != 2 {
		t.Errorf("status after Wait: %+v", st)
	}
	if st.Aggregate == nil || st.Aggregate.Points != 2 {
		t.Errorf("aggregate missing from done status: %+v", st)
	}
	if res.Aggregate.Errors != 0 {
		t.Errorf("errors: %+v", res.Aggregate)
	}
	if len(e.Jobs()) != 1 {
		t.Errorf("Jobs() = %d entries, want 1", len(e.Jobs()))
	}
}

func TestEngineSharedCache(t *testing.T) {
	e := NewEngine(Options{Workers: 2})
	defer e.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	j1, err := e.Submit(smallSet())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j1.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	j2, err := e.Submit(smallSet())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := j2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Timing == nil || res2.Timing.CacheHits != 2 {
		t.Errorf("second submission should be fully cache-served: %+v", res2.Timing)
	}
}

func TestEngineRejects(t *testing.T) {
	e := NewEngine(Options{})
	if _, err := e.Submit(scenario.Set{Specs: []scenario.Spec{{Model: "ghost"}}}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := e.Submit(scenario.Set{}); err == nil {
		t.Error("empty set accepted")
	}
	e.Close()
	if _, err := e.Submit(smallSet()); err == nil {
		t.Error("submission accepted after Close")
	}
}

func TestJobResultsBeforeDone(t *testing.T) {
	e := NewEngine(Options{Workers: 1})
	defer e.Close()
	j, err := e.Submit(scenario.Set{Specs: []scenario.Spec{
		{Model: "pipeline", Params: scenario.Params{"blocks": 5, "words_per_block": 200},
			Matrix: map[string][]any{"depth": []any{1, 2, 4, 8}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Immediately after submit the job may or may not still be running;
	// both Results contracts must hold.
	if res, jerr, ok := j.Results(); ok {
		if jerr != nil || res == nil {
			t.Errorf("finished job: res=%v err=%v", res, jerr)
		}
	} else if res != nil || jerr != nil {
		t.Errorf("running job leaked results: res=%v err=%v", res, jerr)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}
