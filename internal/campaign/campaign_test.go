package campaign

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// mixedSet sweeps three workload kinds with small per-point workloads.
func mixedSet() scenario.Set {
	return scenario.Set{
		Name: "mixed",
		Specs: []scenario.Spec{
			{
				Model:  "pipeline",
				Params: scenario.Params{"blocks": 2, "words_per_block": 25},
				Matrix: map[string][]any{
					"depth": []any{1, 4, 16},
					"mode":  []any{"TDless", "TDfull"},
				},
			},
			{
				Model:  "kpn",
				Params: scenario.Params{"tokens": 12},
				Matrix: map[string][]any{
					"stages": []any{2, 3},
					"depth":  []any{1, 4},
				},
			},
			{
				Model:  "noc",
				Params: scenario.Params{"words": 16, "packet_len": 4},
				Matrix: map[string][]any{
					"width": []any{2, 3},
				},
			},
		},
	}
}

// TestDeterministicAcrossWorkerCounts is the campaign determinism
// contract: the same spec run with 1 worker and with N workers produces
// byte-identical results JSON and CSV.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	set := mixedSet()
	render := func(workers int) (string, string) {
		res, err := Run(context.Background(), set, Options{
			Workers: workers, CheckEvery: 4, Cache: NewCache(),
		})
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := res.JSON(&j, false); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteCSV(&c, false); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := render(1)
	j8, c8 := render(8)
	if j1 != j8 {
		t.Errorf("results JSON differs between 1 and 8 workers:\n--- 1 worker\n%s\n--- 8 workers\n%s", j1, j8)
	}
	if c1 != c8 {
		t.Errorf("results CSV differs between 1 and 8 workers")
	}
	if !strings.Contains(j1, `"checked": true`) {
		t.Error("no point carried a spot check")
	}
}

// TestBigMatrixCampaign is the acceptance criterion: a 100+-point matrix
// over >= 3 workload kinds runs to completion (this package is in the CI
// -race list).
func TestBigMatrixCampaign(t *testing.T) {
	set := scenario.Set{
		Name: "big",
		Specs: []scenario.Spec{
			{
				Model:  "pipeline",
				Params: scenario.Params{"blocks": 2, "words_per_block": 20},
				Matrix: map[string][]any{
					"depth": []any{1, 2, 4, 8, 16, 32},
					"mode":  []any{"untimed", "TDless", "TDfull", "quantum"},
					"seed":  []any{1, 2},
				}, // 48 points
			},
			{
				Model:  "kpn",
				Params: scenario.Params{"tokens": 10},
				Matrix: map[string][]any{
					"stages":    []any{2, 3, 4},
					"depth":     []any{1, 2, 8},
					"decoupled": []any{true, false},
					"seed":      []any{1, 2},
				}, // 36 points
			},
			{
				Model:  "noc",
				Params: scenario.Params{"words": 16, "packet_len": 4},
				Matrix: map[string][]any{
					"width":   []any{2, 3},
					"height":  []any{1, 2},
					"streams": []any{1, 2},
				}, // 8 points
			},
			{
				Model:  "soc",
				Params: scenario.Params{"jobs": 1, "words_per_job": 32, "fifo_depth": 4},
				Matrix: map[string][]any{
					"pipelines": []any{1, 2},
					"mode":      []any{"smart", "sync"},
					"use_irq":   []any{true, false},
				}, // 8 points
			},
			{
				Model:  "soc-clustered",
				Params: scenario.Params{"jobs": 1, "words_per_job": 32, "fifo_depth": 4},
				Matrix: map[string][]any{
					"pipelines": []any{2, 3},
					"shards":    []any{1, 2},
				}, // 4 points
			},
		},
	}
	res, err := Run(context.Background(), set, Options{CheckEvery: 25, Cache: NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.Points < 100 {
		t.Fatalf("matrix expanded to %d points, want >= 100", res.Aggregate.Points)
	}
	if len(res.Aggregate.Models) < 3 {
		t.Fatalf("campaign covers %v, want >= 3 workload kinds", res.Aggregate.Models)
	}
	if res.Aggregate.Errors != 0 {
		for _, p := range res.Points {
			if p.Err != "" {
				t.Errorf("point %d (%s %v): %s", p.Index, p.Model, p.Params, p.Err)
			}
		}
	}
	if res.Aggregate.CheckFailures != 0 {
		t.Errorf("%d spot checks failed", res.Aggregate.CheckFailures)
	}
	// Min is 0: the untimed pipeline points carry no simulated clock.
	if res.Aggregate.MinSimEndNS < 0 || res.Aggregate.MaxSimEndNS <= res.Aggregate.MinSimEndNS {
		t.Errorf("implausible date aggregates: %+v", res.Aggregate)
	}
}

// TestDedupAndCache: repeated points execute once per campaign; a shared
// cache carries outcomes across campaigns.
func TestDedupAndCache(t *testing.T) {
	set := scenario.Set{Specs: []scenario.Spec{
		{Model: "kpn", Params: scenario.Params{"tokens": 8}},
		{Model: "kpn", Params: scenario.Params{"tokens": 8}}, // duplicate
		{Model: "kpn", Params: scenario.Params{"tokens": 9}},
	}}
	cache := NewCache()
	res, err := Run(context.Background(), set, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.Points != 3 || res.Aggregate.Unique != 2 {
		t.Fatalf("points/unique = %d/%d, want 3/2", res.Aggregate.Points, res.Aggregate.Unique)
	}
	if !res.Points[1].Dedup || res.Points[0].Dedup {
		t.Errorf("dedup flags wrong: %v %v", res.Points[0].Dedup, res.Points[1].Dedup)
	}
	if res.Points[1].Outcome == nil || res.Points[1].Outcome.DatesHash != res.Points[0].Outcome.DatesHash {
		t.Error("dedup point did not copy the canonical outcome")
	}
	if cache.Len() != 2 {
		t.Errorf("cache holds %d outcomes, want 2", cache.Len())
	}
	// Second campaign over the same points: all served from cache.
	res2, err := Run(context.Background(), set, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Timing.CacheHits != 2 {
		t.Errorf("second campaign hit the cache %d times, want 2", res2.Timing.CacheHits)
	}
	var b1, b2 bytes.Buffer
	res.JSON(&b1, false)
	res2.JSON(&b2, false)
	if b1.String() != b2.String() {
		t.Error("cache-served campaign renders differently")
	}
}

// TestPointErrorsReported: a bad point fails alone, the campaign
// completes, and the aggregate counts it.
func TestPointErrorsReported(t *testing.T) {
	set := scenario.Set{Specs: []scenario.Spec{
		{Model: "pipeline", Params: scenario.Params{"blocks": 2, "words_per_block": 10},
			Matrix: map[string][]any{"mode": []any{"TDfull", "warp"}}},
	}}
	res, err := Run(context.Background(), set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.Errors != 1 {
		t.Fatalf("errors = %d, want 1", res.Aggregate.Errors)
	}
	var bad, good int
	for _, p := range res.Points {
		if p.Err != "" {
			bad++
		} else if p.Outcome != nil {
			good++
		}
	}
	if bad != 1 || good != 1 {
		t.Errorf("bad/good = %d/%d, want 1/1", bad, good)
	}
}

// TestSubmissionErrors: validation problems fail the whole submission.
func TestSubmissionErrors(t *testing.T) {
	if _, err := Run(context.Background(), scenario.Set{}, Options{}); err == nil {
		t.Error("empty set accepted")
	}
	bad := scenario.Set{Specs: []scenario.Spec{{Model: "ghost"}}}
	if _, err := Run(context.Background(), bad, Options{}); err == nil {
		t.Error("unknown model accepted")
	}
	big := scenario.Set{Specs: []scenario.Spec{{
		Model:  "kpn",
		Matrix: map[string][]any{"tokens": []any{1, 2, 3, 4, 5}, "depth": []any{1, 2, 3}},
	}}}
	if _, err := Run(context.Background(), big, Options{MaxPoints: 10}); err == nil {
		t.Error("oversize expansion accepted")
	}
}

// TestCancelledContext: cancellation marks unstarted points as errors
// instead of hanging.
func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	set := scenario.Set{Specs: []scenario.Spec{
		{Model: "kpn", Matrix: map[string][]any{"tokens": []any{5, 6, 7}}},
	}}
	res, err := Run(ctx, set, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.Errors != 3 {
		t.Errorf("errors = %d, want 3 (all cancelled)", res.Aggregate.Errors)
	}
}

// TestProgressCallback reports monotonically increasing completion.
func TestProgressCallback(t *testing.T) {
	var calls []int
	set := scenario.Set{Specs: []scenario.Spec{
		{Model: "kpn", Matrix: map[string][]any{"tokens": []any{3, 4, 5, 6}}},
	}}
	_, err := Run(context.Background(), set, Options{
		Workers: 1,
		OnProgress: func(done, total int) {
			if total != 4 {
				t.Errorf("total = %d, want 4", total)
			}
			calls = append(calls, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 4 || calls[3] != 4 {
		t.Errorf("progress calls = %v, want [1 2 3 4]", calls)
	}
}
