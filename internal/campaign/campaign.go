// Package campaign executes expanded scenario sets — many independent
// simulations, not one — across a pool of workers, and aggregates and
// serializes the results. It is the design-space-exploration layer the
// paper's cheap what-if simulation exists to feed: a Spec matrix over
// FIFO depths, quanta, shard counts and topologies becomes one kernel
// run per point, fanned out over GOMAXPROCS workers (each point builds
// its own sim.Kernel(s), and sharded points additionally parallelize
// inside via internal/par).
//
// Guarantees:
//
//   - deterministic results: points are identified and cached by their
//     canonical scenario hash, executed at most once per campaign, and
//     reported in expansion order — the results document is byte-identical
//     whether the campaign ran on 1 worker or N (wall-clock timing is
//     carried separately and omitted from the deterministic document);
//   - spot-checked accuracy: a deterministic sample of points (every
//     CheckEvery-th expanded index) re-runs through the model's §IV-A
//     trace-equivalence oracle (decoupled vs reference, compared with
//     trace.Diff after date reordering);
//   - shared caching: an Engine's Cache carries outcomes across campaigns,
//     so overlapping sweeps only pay for new points.
package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/scenario"
)

// Options tunes one campaign run.
type Options struct {
	// Workers is the pool size; 0 means GOMAXPROCS.
	Workers int
	// CheckEvery samples the trace-equivalence spot check: every k-th
	// expanded point (by its first-occurrence index) is verified against
	// the model's reference build. 0 disables checking.
	CheckEvery int
	// MaxPoints bounds the expansion (a submission guard for the HTTP
	// front-end); 0 means the 10000 default.
	MaxPoints int
	// Cache, when non-nil, is consulted before running a point and
	// updated after; share one across campaigns to skip repeated points.
	Cache *Cache
	// OnProgress, when non-nil, is called after each completed point
	// with the number of finished points and the total. Calls may come
	// from worker goroutines.
	OnProgress func(done, total int)
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxPoints <= 0 {
		o.MaxPoints = 10000
	}
}

// PointResult is one expanded point's report. All fields except WallMS
// are deterministic functions of the spec.
type PointResult struct {
	// Index is the point's position in expansion order.
	Index int `json:"index"`
	// Model and Params echo the concrete scenario; Hash is its
	// canonical content hash.
	Model  string          `json:"model"`
	Hash   string          `json:"hash"`
	Params scenario.Params `json:"params"`
	// Outcome is the simulation result (nil when Err is set).
	Outcome *scenario.Outcome `json:"outcome,omitempty"`
	// Err reports a per-point failure (bad parameters, model panic).
	Err string `json:"error,omitempty"`
	// Dedup marks a point whose hash already appeared at a lower index;
	// its outcome is copied from that canonical point.
	Dedup bool `json:"dedup,omitempty"`
	// Checked marks a point that ran the trace-equivalence spot check;
	// CheckDiff holds the first difference ("" = traces identical).
	Checked   bool   `json:"checked,omitempty"`
	CheckDiff string `json:"check_diff,omitempty"`
	// WallMS is the point's host execution time. Nondeterministic:
	// zeroed in the canonical results document (see Results.JSON).
	WallMS float64 `json:"wall_ms,omitempty"`
}

// Aggregate summarizes a campaign deterministically.
type Aggregate struct {
	// Points counts expanded points; Unique counts distinct hashes.
	Points int `json:"points"`
	Unique int `json:"unique"`
	// Models lists the distinct model names, sorted.
	Models []string `json:"models"`
	// Errors counts failed points; Checked and CheckFailures count the
	// trace-equivalence spot checks and their failures.
	Errors        int `json:"errors"`
	Checked       int `json:"checked"`
	CheckFailures int `json:"check_failures"`
	// MinSimEndNS/MaxSimEndNS/MeanSimEndNS summarize the final
	// simulated dates across successful points.
	MinSimEndNS  int64   `json:"min_sim_end_ns"`
	MaxSimEndNS  int64   `json:"max_sim_end_ns"`
	MeanSimEndNS float64 `json:"mean_sim_end_ns"`
	// TotalCtxSwitches sums the kernel dispatch counters: the paper's
	// simulation-cost metric, summed over the whole design space.
	TotalCtxSwitches uint64 `json:"total_ctx_switches"`
}

// Timing is the nondeterministic half of a campaign report.
type Timing struct {
	// WallMS is the whole campaign's host duration; PointWallMS sums
	// the per-point durations (compute time if run serially).
	WallMS      float64 `json:"wall_ms"`
	PointWallMS float64 `json:"point_wall_ms"`
	// SpeedupX is PointWallMS / WallMS: the realized parallelism.
	SpeedupX float64 `json:"speedup_x"`
	// Workers echoes the pool size; CacheHits counts points served
	// from the shared engine cache.
	Workers   int `json:"workers"`
	CacheHits int `json:"cache_hits"`
}

// Results is a full campaign report.
type Results struct {
	// Name echoes the set name.
	Name string `json:"name,omitempty"`
	// Points holds one entry per expanded point, in expansion order.
	Points []PointResult `json:"points"`
	// Aggregate is the deterministic summary.
	Aggregate Aggregate `json:"aggregate"`
	// Timing is the nondeterministic summary; omitted by Results.JSON
	// unless requested.
	Timing *Timing `json:"timing,omitempty"`
}

// Run executes the set and blocks until every point completed (or ctx was
// cancelled, which marks the remaining points as errors). The returned
// error covers submission-level problems only — validation, expansion,
// oversize — while per-point failures land in the results.
func Run(ctx context.Context, set scenario.Set, opt Options) (*Results, error) {
	opt.fill()
	points, err := expandChecked(set, opt.MaxPoints)
	if err != nil {
		return nil, err
	}
	return runPoints(ctx, set.Name, points, opt), nil
}

// expandChecked sizes the expansion before materializing it — the count
// (and the scenario.MaxExpansion overflow guard inside it) runs first, so
// an oversize matrix in a small JSON body is rejected without paying for
// a single point.
func expandChecked(set scenario.Set, maxPoints int) ([]scenario.Point, error) {
	n, err := set.NumPoints()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("campaign: the set expands to no points")
	}
	if n > maxPoints {
		return nil, fmt.Errorf("campaign: %d points exceed the %d-point limit", n, maxPoints)
	}
	return set.Expand()
}

// runPoints is the engine core: opt must be filled and points expanded
// and within limits.
func runPoints(ctx context.Context, name string, points []scenario.Point, opt Options) *Results {
	res := &Results{Name: name, Points: make([]PointResult, len(points))}
	// Group by hash: the lowest index computes, the rest copy.
	canonical := map[string]int{}
	var uniques []int
	for i, p := range points {
		res.Points[i] = PointResult{Index: i, Model: p.Model, Hash: p.Hash, Params: p.Params}
		if _, seen := canonical[p.Hash]; !seen {
			canonical[p.Hash] = i
			uniques = append(uniques, i)
		} else {
			res.Points[i].Dedup = true
		}
	}

	var (
		done      atomic.Int64
		cacheHits atomic.Int64
		wg        sync.WaitGroup
		jobs      = make(chan int)
	)
	start := time.Now()
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				runOne(ctx, &res.Points[idx], points[idx], opt, &cacheHits)
				n := int(done.Add(1))
				if opt.OnProgress != nil {
					opt.OnProgress(n, len(uniques))
				}
			}
		}()
	}
	for _, idx := range uniques {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	// Duplicates copy their canonical point's outcome; checks are not
	// repeated (Checked stays false so the flag is deterministic).
	for i := range res.Points {
		if !res.Points[i].Dedup {
			continue
		}
		src := &res.Points[canonical[res.Points[i].Hash]]
		res.Points[i].Outcome = src.Outcome
		res.Points[i].Err = src.Err
	}

	res.Aggregate = aggregate(res.Points)
	wall := time.Since(start)
	t := &Timing{
		WallMS:    float64(wall.Microseconds()) / 1000,
		Workers:   opt.Workers,
		CacheHits: int(cacheHits.Load()),
	}
	for i := range res.Points {
		t.PointWallMS += res.Points[i].WallMS
	}
	if t.WallMS > 0 {
		t.SpeedupX = t.PointWallMS / t.WallMS
	}
	res.Timing = t
	return res
}

// runOne executes (or fetches) one canonical point and its sampled check.
func runOne(ctx context.Context, pr *PointResult, pt scenario.Point, opt Options, cacheHits *atomic.Int64) {
	model, ok := scenario.Lookup(pt.Model)
	if !ok { // unreachable after Expand validation; belt and braces
		pr.Err = fmt.Sprintf("unknown model %q", pt.Model)
		return
	}
	if err := ctx.Err(); err != nil {
		pr.Err = fmt.Sprintf("cancelled: %v", err)
		return
	}
	start := time.Now()
	if out, hit := opt.Cache.Get(pt.Hash); hit {
		pr.Outcome = &out
		cacheHits.Add(1)
	} else {
		out, err := safeRun(model, pt.Params)
		if err != nil {
			pr.Err = err.Error()
		} else {
			pr.Outcome = &out
			opt.Cache.Put(pt.Hash, out)
		}
	}
	if pr.Err == "" && opt.CheckEvery > 0 && pr.Index%opt.CheckEvery == 0 && model.Check != nil {
		diff, err := safeCheck(model, pt.Params)
		if err != nil {
			pr.Err = fmt.Sprintf("check: %v", err)
		} else {
			pr.Checked = true
			pr.CheckDiff = diff
		}
	}
	pr.WallMS = float64(time.Since(start).Microseconds()) / 1000
}

// safeRun converts a model panic (bad config deep in a builder) into a
// per-point error instead of killing the whole campaign.
func safeRun(m scenario.Model, p scenario.Params) (out scenario.Outcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return m.Run(p)
}

func safeCheck(m scenario.Model, p scenario.Params) (diff string, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return m.Check(p)
}

// aggregate folds the per-point reports, iterating in index order so the
// float mean is reproducible.
func aggregate(points []PointResult) Aggregate {
	a := Aggregate{Points: len(points)}
	models := map[string]bool{}
	var sum float64
	var n int
	for i := range points {
		p := &points[i]
		models[p.Model] = true
		if !p.Dedup {
			a.Unique++
		}
		if p.Err != "" {
			a.Errors++
			continue
		}
		if p.Checked {
			a.Checked++
			if p.CheckDiff != "" {
				a.CheckFailures++
			}
		}
		if p.Outcome == nil {
			continue
		}
		e := p.Outcome.SimEndNS
		if n == 0 || e < a.MinSimEndNS {
			a.MinSimEndNS = e
		}
		if n == 0 || e > a.MaxSimEndNS {
			a.MaxSimEndNS = e
		}
		sum += float64(e)
		n++
		a.TotalCtxSwitches += p.Outcome.CtxSwitches
	}
	if n > 0 {
		a.MeanSimEndNS = sum / float64(n)
	}
	for m := range models {
		a.Models = append(a.Models, m)
	}
	sort.Strings(a.Models)
	return a
}
