// Package campaign executes expanded scenario sets — many independent
// simulations, not one — across a pool of workers, and aggregates and
// serializes the results. It is the design-space-exploration layer the
// paper's cheap what-if simulation exists to feed: a Spec matrix over
// FIFO depths, quanta, shard counts and topologies becomes one kernel
// run per point, fanned out over GOMAXPROCS workers (each point builds
// its own sim.Kernel(s), and sharded points additionally parallelize
// inside via internal/par).
//
// Guarantees:
//
//   - deterministic results: points are identified and cached by their
//     canonical scenario hash, executed at most once per campaign, and
//     reported in expansion order — the results document is byte-identical
//     whether the campaign ran on 1 worker or N (wall-clock timing is
//     carried separately and omitted from the deterministic document);
//   - spot-checked accuracy: a deterministic sample of points (every
//     CheckEvery-th expanded index) re-runs through the model's §IV-A
//     trace-equivalence oracle (decoupled vs reference, compared with
//     trace.Diff after date reordering);
//   - shared caching: an Engine's Cache carries outcomes across campaigns,
//     so overlapping sweeps only pay for new points;
//   - fault tolerance: every failure mode of a point — panic, wall-clock
//     deadline (PointDeadline), no-simulated-time-progress stall
//     (StallWindow) — becomes a structured per-point error, never a hang.
//     Transient failures retry with exponential backoff up to MaxAttempts;
//     a sharded point whose attempts are exhausted is quarantined into a
//     single-kernel rerun (flagged Degraded, date-exact by the
//     coordinator-equivalence claim). Cancelling the context stops the
//     campaign cooperatively and returns the partial results document.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/par"
	"repro/internal/scenario"
	"repro/internal/store"
)

// Options tunes one campaign run.
type Options struct {
	// Workers is the pool size; 0 means GOMAXPROCS.
	Workers int
	// CheckEvery samples the trace-equivalence spot check: every k-th
	// expanded point (by its first-occurrence index) is verified against
	// the model's reference build. 0 disables checking.
	CheckEvery int
	// MaxPoints bounds the expansion (a submission guard for the HTTP
	// front-end); 0 means the 10000 default.
	MaxPoints int
	// Cache, when non-nil, is consulted before running a point and
	// updated after; share one across campaigns to skip repeated points.
	Cache *Cache
	// OnProgress, when non-nil, is called after each completed point
	// with the number of finished points and the total. Calls may come
	// from worker goroutines.
	OnProgress func(done, total int)

	// PointDeadline bounds each attempt's wall-clock time: a point still
	// running when it expires is interrupted cooperatively (par guard)
	// and reported as a deadline failure with a stall diagnostic — or
	// retried/degraded, see MaxAttempts. 0 means no deadline.
	PointDeadline time.Duration
	// StallWindow arms the no-progress watchdog inside each attempt: an
	// attempt whose kernels dispatch nothing for a full window is
	// interrupted with par.ErrStalled. 0 disables the watchdog.
	StallWindow time.Duration
	// MaxAttempts bounds the executions of a transiently-failing point
	// (panic, stall, deadline): after the first failure the point is
	// retried with exponential backoff until it succeeds or the budget
	// is spent. 0 or 1 means a single attempt.
	MaxAttempts int
	// RetryBackoff is the sleep before the first retry, doubling per
	// attempt; 0 means 50ms. Only meaningful with MaxAttempts > 1.
	RetryBackoff time.Duration
	// AbandonGrace is how long, past an attempt's cancellation, to wait
	// for a model that does not honour the cooperative interrupt before
	// abandoning its goroutine and failing the attempt; 0 means 5s.
	// Only meaningful when a deadline or cancellable context is in play.
	AbandonGrace time.Duration
	// NoDegrade disables the sharded→single-kernel degradation rerun
	// that otherwise follows a transiently-failed sharded point.
	NoDegrade bool
	// ProfileGuided closes the measurement→placement loop across the
	// whole campaign: every sharded point of a partitioner-aware model
	// is rewritten to the "profiled" netlist partitioner, and before its
	// sharded execution the point's single-kernel twin runs once through
	// the shared cache (it is the same dated run, so it is
	// cache-eligible and dedups against explicit single-kernel points),
	// leaving the model's profile cache warm. The rewrite is a
	// deterministic function of the expansion, so results stay
	// byte-identical across worker counts.
	ProfileGuided bool
	// MaxActive bounds the campaigns an Engine runs concurrently:
	// Submit returns ErrBusy beyond it. 0 means unbounded. Ignored by
	// the synchronous Run.
	MaxActive int
	// Metrics, when non-nil, receives per-point execution counters
	// (see NewMetrics); a nil sink costs nothing.
	Metrics *Metrics
	// Store, when non-nil, is the durable campaign journal: Engine
	// submissions, deterministic point outcomes and terminal states are
	// appended to it, and Engine.Recover rebuilds the job table and the
	// cross-restart cache from it after a crash or restart. Ignored by
	// the synchronous Run (which has no job identity to journal).
	Store *store.Store

	// live receives a running job's counters for the stats endpoint;
	// installed by Engine.Submit, nil for synchronous Run.
	live *liveStats
	// onPoint, when non-nil, receives a snapshot of each canonical
	// point result right after its worker finishes it (calls come from
	// worker goroutines, one per unique hash, in completion order).
	// Installed by Engine.Submit for journaling and result streaming.
	onPoint func(pr PointResult)
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxPoints <= 0 {
		o.MaxPoints = 10000
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 1
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.AbandonGrace <= 0 {
		o.AbandonGrace = 5 * time.Second
	}
}

// PointResult is one expanded point's report. All fields except WallMS
// are deterministic functions of the spec.
type PointResult struct {
	// Index is the point's position in expansion order.
	Index int `json:"index"`
	// Model and Params echo the concrete scenario; Hash is its
	// canonical content hash.
	Model  string          `json:"model"`
	Hash   string          `json:"hash"`
	Params scenario.Params `json:"params"`
	// Outcome is the simulation result (nil when Err is set).
	Outcome *scenario.Outcome `json:"outcome,omitempty"`
	// Err reports a per-point failure (bad parameters, model panic).
	Err string `json:"error,omitempty"`
	// Dedup marks a point whose hash already appeared at a lower index;
	// its outcome is copied from that canonical point.
	Dedup bool `json:"dedup,omitempty"`
	// Cached marks a point whose outcome was served from the shared
	// cache (in-memory or rebuilt from the durable store) instead of
	// executing. Like WallMS it depends on what ran before, so it is
	// zeroed in the canonical results document; the crash-recovery
	// tests read it (with ?wall=1) to prove resumed points were not
	// recomputed.
	Cached bool `json:"cached,omitempty"`
	// Checked marks a point that ran the trace-equivalence spot check;
	// CheckDiff holds the first difference ("" = traces identical).
	Checked   bool   `json:"checked,omitempty"`
	CheckDiff string `json:"check_diff,omitempty"`
	// Degraded marks a sharded point whose outcome comes from the
	// single-kernel quarantine rerun after its sharded attempts failed
	// — date-exact by the coordinator-equivalence claim, with the shard
	// counters reflecting the rerun. Outcome provenance: it stays in
	// the canonical document (healthy runs never set it).
	Degraded bool `json:"degraded,omitempty"`
	// Stall carries the structured stall diagnostic of the last failed
	// attempt (deadline or watchdog), when one was produced. Like
	// Degraded it stays in the canonical document.
	Stall *par.StallDiagnostic `json:"stall,omitempty"`
	// Attempts counts the executions the point needed (retries plus the
	// degradation rerun): present only when more than one. Wall-clock
	// dependent like WallMS, so it is zeroed in the canonical results
	// document (see Results.JSON).
	Attempts int `json:"attempts,omitempty"`
	// WallMS is the point's host execution time. Nondeterministic:
	// zeroed in the canonical results document (see Results.JSON).
	WallMS float64 `json:"wall_ms,omitempty"`
	// ProfileWallMS is the host time of the single-kernel profiling
	// pre-run a profile-guided campaign executed for this point (0 when
	// the twin was served from cache). Nondeterministic like WallMS:
	// zeroed in the canonical results document.
	ProfileWallMS float64 `json:"profile_wall_ms,omitempty"`
}

// Aggregate summarizes a campaign deterministically.
type Aggregate struct {
	// Points counts expanded points; Unique counts distinct hashes.
	Points int `json:"points"`
	Unique int `json:"unique"`
	// Models lists the distinct model names, sorted.
	Models []string `json:"models"`
	// Errors counts failed points; Checked and CheckFailures count the
	// trace-equivalence spot checks and their failures.
	Errors        int `json:"errors"`
	Checked       int `json:"checked"`
	CheckFailures int `json:"check_failures"`
	// Degraded counts points served by the single-kernel quarantine
	// rerun; Stalled counts points whose final state carries a stall
	// diagnostic (deadline or watchdog interrupt). Zero — and omitted —
	// on healthy campaigns.
	Degraded int `json:"degraded,omitempty"`
	Stalled  int `json:"stalled,omitempty"`
	// MinSimEndNS/MaxSimEndNS/MeanSimEndNS summarize the final
	// simulated dates across successful points.
	MinSimEndNS  int64   `json:"min_sim_end_ns"`
	MaxSimEndNS  int64   `json:"max_sim_end_ns"`
	MeanSimEndNS float64 `json:"mean_sim_end_ns"`
	// TotalCtxSwitches sums the kernel dispatch counters: the paper's
	// simulation-cost metric, summed over the whole design space.
	TotalCtxSwitches uint64 `json:"total_ctx_switches"`
}

// Timing is the nondeterministic half of a campaign report.
type Timing struct {
	// WallMS is the whole campaign's host duration; PointWallMS sums
	// the per-point durations (compute time if run serially).
	WallMS      float64 `json:"wall_ms"`
	PointWallMS float64 `json:"point_wall_ms"`
	// SpeedupX is PointWallMS / WallMS: the realized parallelism.
	SpeedupX float64 `json:"speedup_x"`
	// Workers echoes the pool size; CacheHits counts points served
	// from the shared engine cache.
	Workers   int `json:"workers"`
	CacheHits int `json:"cache_hits"`
}

// Results is a full campaign report.
type Results struct {
	// Name echoes the set name.
	Name string `json:"name,omitempty"`
	// Points holds one entry per expanded point, in expansion order.
	Points []PointResult `json:"points"`
	// Aggregate is the deterministic summary.
	Aggregate Aggregate `json:"aggregate"`
	// Timing is the nondeterministic summary; omitted by Results.JSON
	// unless requested.
	Timing *Timing `json:"timing,omitempty"`
}

// Run executes the set and blocks until every point completed (or ctx was
// cancelled, which marks the remaining points as errors). The returned
// error covers submission-level problems only — validation, expansion,
// oversize — while per-point failures land in the results.
func Run(ctx context.Context, set scenario.Set, opt Options) (*Results, error) {
	opt.fill()
	points, err := expandChecked(set, opt.MaxPoints)
	if err != nil {
		return nil, err
	}
	return runPoints(ctx, set.Name, points, opt), nil
}

// expandChecked sizes the expansion before materializing it — the count
// (and the scenario.MaxExpansion overflow guard inside it) runs first, so
// an oversize matrix in a small JSON body is rejected without paying for
// a single point.
func expandChecked(set scenario.Set, maxPoints int) ([]scenario.Point, error) {
	n, err := set.NumPoints()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("campaign: the set expands to no points")
	}
	if n > maxPoints {
		return nil, fmt.Errorf("campaign: %d points exceed the %d-point limit", n, maxPoints)
	}
	return set.Expand()
}

// runPoints is the engine core: opt must be filled and points expanded
// and within limits.
func runPoints(ctx context.Context, name string, points []scenario.Point, opt Options) *Results {
	if opt.ProfileGuided {
		points = profileGuidedPoints(points)
	}
	res := &Results{Name: name, Points: make([]PointResult, len(points))}
	// Group by hash: the lowest index computes, the rest copy.
	canonical := map[string]int{}
	var uniques []int
	for i, p := range points {
		res.Points[i] = PointResult{Index: i, Model: p.Model, Hash: p.Hash, Params: p.Params}
		if _, seen := canonical[p.Hash]; !seen {
			canonical[p.Hash] = i
			uniques = append(uniques, i)
		} else {
			res.Points[i].Dedup = true
		}
	}

	var (
		done      atomic.Int64
		cacheHits atomic.Int64
		wg        sync.WaitGroup
		jobs      = make(chan int)
	)
	start := time.Now()
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if opt.Metrics != nil {
					opt.Metrics.ActiveWorkers.Add(1)
				}
				runOne(ctx, &res.Points[idx], points[idx], opt, &cacheHits)
				if opt.Metrics != nil {
					opt.Metrics.ActiveWorkers.Add(-1)
				}
				if opt.onPoint != nil {
					opt.onPoint(res.Points[idx])
				}
				n := int(done.Add(1))
				if opt.OnProgress != nil {
					opt.OnProgress(n, len(uniques))
				}
			}
		}()
	}
	for _, idx := range uniques {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	// Duplicates copy their canonical point's outcome (including its
	// degradation provenance); checks are not repeated (Checked stays
	// false so the flag is deterministic), and Attempts stays zero —
	// the duplicate itself executed nothing.
	for i := range res.Points {
		if !res.Points[i].Dedup {
			continue
		}
		src := &res.Points[canonical[res.Points[i].Hash]]
		res.Points[i].Outcome = src.Outcome
		res.Points[i].Err = src.Err
		res.Points[i].Degraded = src.Degraded
		res.Points[i].Stall = src.Stall
	}

	res.Aggregate = aggregate(res.Points)
	wall := time.Since(start)
	t := &Timing{
		WallMS:    float64(wall.Microseconds()) / 1000,
		Workers:   opt.Workers,
		CacheHits: int(cacheHits.Load()),
	}
	for i := range res.Points {
		t.PointWallMS += res.Points[i].WallMS
	}
	if t.WallMS > 0 {
		t.SpeedupX = t.PointWallMS / t.WallMS
	}
	res.Timing = t
	return res
}

// ErrAbandoned marks an attempt whose model kept running past its
// cancellation plus the abandon grace: the attempt goroutine is left
// behind (it holds no shared state) and the attempt fails. A model that
// honours the cooperative interrupt never produces it.
var ErrAbandoned = fmt.Errorf("campaign: attempt abandoned (model did not stop within the abandon grace)")

// panicError wraps a recovered model panic so the retry logic can
// recognize it (transient: chaos-induced or scheduling-dependent panics
// deserve a retry; deterministic config panics just fail again).
type panicError struct{ val any }

func (e *panicError) Error() string { return fmt.Sprintf("panic: %v", e.val) }

// transient reports whether an attempt failure is worth retrying or
// degrading: panics, stalls, deadline expiries and abandonments.
// Plain model errors (bad parameters) and the parent context's own
// cancellation are final.
func transient(err error) bool {
	var pe *panicError
	return errors.As(err, &pe) ||
		errors.Is(err, par.ErrStalled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrAbandoned)
}

// profileGuidedPoints rewrites every sharded point of a
// partitioner-aware model (a model whose key set includes
// "partitioner") to the "profiled" partitioner, recomputing the
// canonical hash. A pure, deterministic function of the expansion:
// single-kernel points and models without a partitioner axis pass
// through untouched.
func profileGuidedPoints(points []scenario.Point) []scenario.Point {
	out := make([]scenario.Point, len(points))
	for i, pt := range points {
		out[i] = pt
		if shardsOf(pt.Params) < 2 {
			continue
		}
		m, ok := scenario.Lookup(pt.Model)
		if !ok || !hasKey(m.Keys, "partitioner") {
			continue
		}
		params := pt.Params.Clone()
		params["partitioner"] = "profiled"
		hash, err := scenario.HashPoint(pt.Model, params)
		if err != nil {
			continue // unreachable: the original params hashed
		}
		out[i].Params = params
		out[i].Hash = hash
	}
	return out
}

func hasKey(keys []string, k string) bool {
	for _, key := range keys {
		if key == k {
			return true
		}
	}
	return false
}

// profilePoint executes a profile-guided point's single-kernel twin —
// the measurement phase. The twin is the same dated run (outcomes and
// profiles are schedule-independent), so it flows through the shared
// outcome cache like any point and dedups against explicit
// single-kernel points of the sweep; executing it leaves the model's
// process-wide profile cache warm for the sharded run that follows.
// Twin failures are deliberately non-fatal: the sharded run re-profiles
// inline if it must.
func profilePoint(ctx context.Context, m scenario.Model, pt scenario.Point, opt Options, pr *PointResult, cacheHits *atomic.Int64) {
	params := pt.Params.Clone()
	params["shards"] = 1
	delete(params, "partitioner")
	hash, err := scenario.HashPoint(pt.Model, params)
	if err != nil {
		return
	}
	if _, hit := opt.Cache.Get(hash); hit {
		cacheHits.Add(1)
		return
	}
	start := time.Now()
	out, err := safeRun(ctx, m, params, opt)
	if err != nil {
		return
	}
	pr.ProfileWallMS = float64(time.Since(start).Microseconds()) / 1000
	if opt.Metrics != nil {
		opt.Metrics.ProfileRuns.Inc()
	}
	opt.Cache.Put(hash, out)
}

// shardsOf reads a point's "shards" parameter (the convention every
// shardable model follows); 1 when absent or malformed.
func shardsOf(p scenario.Params) int {
	r := scenario.NewReader(p)
	n := r.Int("shards", 1)
	if r.Err() != nil || n < 1 {
		return 1
	}
	return n
}

// runAttempt executes one model call under the point deadline, the
// stall watchdog and the abandon grace. The default configuration (no
// deadline, non-cancellable parent) stays on the calling goroutine with
// zero overhead; otherwise the attempt runs on its own goroutine so a
// model that ignores the interrupt can be abandoned instead of wedging
// the worker. An abandoned attempt's goroutine writes only to its
// (buffered, private) channel, never to shared state.
func runAttempt(ctx context.Context, opt Options, call func(context.Context) error) error {
	actx := ctx
	if opt.StallWindow > 0 {
		actx = par.WithStallWindow(actx, opt.StallWindow)
	}
	if opt.PointDeadline <= 0 {
		if ctx.Done() == nil {
			return call(actx)
		}
		// Cancellable parent but no deadline: still run on a goroutine
		// so cancellation plus grace cannot wedge the worker forever.
	} else {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(actx, opt.PointDeadline)
		defer cancel()
	}
	res := make(chan error, 1)
	go func() { res <- call(actx) }()
	select {
	case err := <-res:
		return err
	case <-actx.Done():
	}
	// The attempt's context ended; give the cooperative interrupt a
	// grace period to unwind the run before abandoning the goroutine.
	timer := time.NewTimer(opt.AbandonGrace)
	defer timer.Stop()
	select {
	case err := <-res:
		return err
	case <-timer.C:
		return fmt.Errorf("%w after %v + %v grace", ErrAbandoned, opt.PointDeadline, opt.AbandonGrace)
	}
}

// runOne executes (or fetches) one canonical point and its sampled
// check, applying the robustness policy: bounded retries with
// exponential backoff for transient failures, then — for sharded
// points — one quarantined single-kernel degradation rerun.
func runOne(ctx context.Context, pr *PointResult, pt scenario.Point, opt Options, cacheHits *atomic.Int64) {
	model, ok := scenario.Lookup(pt.Model)
	if !ok { // unreachable after Expand validation; belt and braces
		pr.Err = fmt.Sprintf("unknown model %q", pt.Model)
		return
	}
	if err := ctx.Err(); err != nil {
		pr.Err = fmt.Sprintf("cancelled: %v", err)
		return
	}
	if opt.Metrics != nil {
		opt.Metrics.PointsStarted.Inc()
	}
	if opt.live != nil {
		opt.live.started.Add(1)
	}
	start := time.Now()
	if out, hit := opt.Cache.Get(pt.Hash); hit {
		pr.Outcome = &out
		cacheHits.Add(1)
		pr.Cached = true
	} else {
		if opt.ProfileGuided && shardsOf(pt.Params) > 1 {
			profilePoint(ctx, model, pt, opt, pr, cacheHits)
		}
		out, err := runPoint(ctx, model, pt.Params, opt, pr)
		if err != nil {
			pr.Err = err.Error()
		} else {
			pr.Outcome = &out
			if !pr.Degraded {
				// A degraded outcome is not cached: the hash names the
				// sharded point, and the rerun's shard counters differ.
				opt.Cache.Put(pt.Hash, out)
			}
		}
	}
	if pr.Err == "" && opt.CheckEvery > 0 && pr.Index%opt.CheckEvery == 0 && model.Check != nil {
		diff, err := safeCheck(ctx, model, pt.Params, opt)
		if err != nil {
			pr.Err = fmt.Sprintf("check: %v", err)
		} else {
			pr.Checked = true
			pr.CheckDiff = diff
		}
	}
	pr.WallMS = float64(time.Since(start).Microseconds()) / 1000
	observePoint(opt.Metrics, opt.live, pr, pr.Cached)
}

// runPoint drives the attempt loop for one canonical point, recording
// attempt counts and stall diagnostics into pr as it goes.
func runPoint(ctx context.Context, m scenario.Model, params scenario.Params, opt Options, pr *PointResult) (scenario.Outcome, error) {
	record := func(err error) {
		var se *par.StallError
		if errors.As(err, &se) {
			pr.Stall = &se.Diag
		}
	}
	attempts := 0
	backoff := opt.RetryBackoff
	var lastErr error
	for attempts < opt.MaxAttempts {
		if attempts > 0 {
			// Exponential backoff between attempts, cut short by the
			// campaign context.
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return scenario.Outcome{}, lastErr
			}
			backoff *= 2
		}
		attempts++
		out, err := safeRun(ctx, m, params, opt)
		if err == nil {
			if attempts > 1 {
				pr.Attempts = attempts
			}
			return out, nil
		}
		record(err)
		lastErr = err
		if !transient(err) || ctx.Err() != nil {
			pr.Attempts = attempts
			return scenario.Outcome{}, err
		}
	}
	// Quarantine: a sharded point that kept failing transiently is
	// re-run on a single kernel — date-exact by the PR 2/5 equivalence
	// pins, and immune to coordinator-level faults.
	if !opt.NoDegrade && shardsOf(params) > 1 {
		p1 := params.Clone()
		p1["shards"] = 1
		attempts++
		out, err := safeRun(ctx, m, p1, opt)
		pr.Attempts = attempts
		if err == nil {
			pr.Degraded = true
			return out, nil
		}
		record(err)
		return scenario.Outcome{}, fmt.Errorf("%v (degraded rerun also failed: %v)", lastErr, err)
	}
	pr.Attempts = attempts
	return scenario.Outcome{}, lastErr
}

// safeRun runs the model once under the attempt guards, converting a
// panic (bad config deep in a builder, an injected shard fault) into an
// error instead of killing the whole campaign.
func safeRun(ctx context.Context, m scenario.Model, p scenario.Params, opt Options) (out scenario.Outcome, err error) {
	err = runAttempt(ctx, opt, func(actx context.Context) (aerr error) {
		defer func() {
			if r := recover(); r != nil {
				aerr = &panicError{r}
			}
		}()
		out, aerr = m.Run(actx, p)
		return aerr
	})
	if err != nil {
		return scenario.Outcome{}, err
	}
	return out, nil
}

// safeCheck runs the spot check under the same guards (one attempt: the
// check is advisory and never retried or degraded).
func safeCheck(ctx context.Context, m scenario.Model, p scenario.Params, opt Options) (diff string, err error) {
	err = runAttempt(ctx, opt, func(actx context.Context) (aerr error) {
		defer func() {
			if r := recover(); r != nil {
				aerr = &panicError{r}
			}
		}()
		diff, aerr = m.Check(actx, p)
		return aerr
	})
	if err != nil {
		return "", err
	}
	return diff, nil
}

// aggregate folds the per-point reports, iterating in index order so the
// float mean is reproducible.
func aggregate(points []PointResult) Aggregate {
	a := Aggregate{Points: len(points)}
	models := map[string]bool{}
	var sum float64
	var n int
	for i := range points {
		p := &points[i]
		models[p.Model] = true
		if !p.Dedup {
			a.Unique++
		}
		if p.Degraded {
			a.Degraded++
		}
		if p.Stall != nil {
			a.Stalled++
		}
		if p.Err != "" {
			a.Errors++
			continue
		}
		if p.Checked {
			a.Checked++
			if p.CheckDiff != "" {
				a.CheckFailures++
			}
		}
		if p.Outcome == nil {
			continue
		}
		e := p.Outcome.SimEndNS
		if n == 0 || e < a.MinSimEndNS {
			a.MinSimEndNS = e
		}
		if n == 0 || e > a.MaxSimEndNS {
			a.MaxSimEndNS = e
		}
		sum += float64(e)
		n++
		a.TotalCtxSwitches += p.Outcome.CtxSwitches
	}
	if n > 0 {
		a.MeanSimEndNS = sum / float64(n)
	}
	for m := range models {
		a.Models = append(a.Models, m)
	}
	sort.Strings(a.Models)
	return a
}
