package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/scenario"
	"repro/internal/store"
)

// Engine runs campaigns asynchronously and tracks them by id — the
// execution backend shared by the simd HTTP service and embedders. One
// engine owns one outcome cache, so campaigns submitted to it share work.
type Engine struct {
	opts   Options
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	seq    int
	active int
	closed bool
}

// ErrBusy rejects a submission when MaxActive campaigns are already
// running; the caller should retry later (simd maps it to 429 with a
// Retry-After).
var ErrBusy = fmt.Errorf("campaign: engine at max active campaigns")

// NewEngine returns an engine applying opts to every campaign. A nil
// Cache in opts is replaced by a fresh shared cache; per-job progress
// callbacks are managed by the engine (opts.OnProgress is ignored).
func NewEngine(opts Options) *Engine {
	if opts.Cache == nil {
		opts.Cache = NewCache()
	}
	opts.OnProgress = nil
	ctx, cancel := context.WithCancel(context.Background())
	return &Engine{opts: opts, ctx: ctx, cancel: cancel, jobs: map[string]*Job{}}
}

// JobState names a job's lifecycle stage.
type JobState string

const (
	// JobRunning means points are still executing.
	JobRunning JobState = "running"
	// JobDone means the results document is complete.
	JobDone JobState = "done"
	// JobFailed means the run aborted (engine shutdown mid-campaign).
	JobFailed JobState = "failed"
	// JobCancelled means the job was cancelled (Engine.Cancel or
	// shutdown); the partial results document — every point finished
	// before the cut, the rest marked cancelled — is retained.
	JobCancelled JobState = "cancelled"
)

// Job is one submitted campaign.
type Job struct {
	id      string
	name    string
	points  int // expanded
	total   int // unique
	resumed bool

	done     chan struct{}
	cancel   context.CancelFunc
	progress func() int
	live     *liveStats
	stream   *pointStream

	mu      sync.Mutex
	state   JobState
	results *Results
	err     error
}

// Status is a job snapshot for serving.
type Status struct {
	// ID addresses the job; Name echoes the set name.
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// State is running, done, cancelled or failed.
	State JobState `json:"state"`
	// Points counts the expanded points; Total counts the unique
	// simulations to execute (after hash dedup); Done counts the
	// finished ones.
	Points int `json:"points"`
	Total  int `json:"total"`
	Done   int `json:"done"`
	// Error reports a failed job's cause.
	Error string `json:"error,omitempty"`
	// Resumed marks a job recovered from the durable store after a
	// restart: its journaled points were served from the rebuilt cache
	// instead of recomputed.
	Resumed bool `json:"resumed,omitempty"`
	// Aggregate is present once the job is done.
	Aggregate *Aggregate `json:"aggregate,omitempty"`
}

// Submit validates, sizes and expands the set synchronously — malformed
// or oversize submissions fail here, before an id is allocated — then
// starts the campaign in the background. With a store configured the
// submission is journaled (id, sizes and the full spec document) before
// the first point runs, so a crash at any later moment leaves a
// resumable record.
func (e *Engine) Submit(set scenario.Set) (*Job, error) {
	return e.submit(set, "", false)
}

// submit is the Submit core. A non-empty id resumes a recovered job: the
// id is reused, the MaxActive gate is bypassed (a restart must never
// refuse its own backlog) and the submission is not re-journaled — the
// original record is already in the log.
func (e *Engine) submit(set scenario.Set, id string, resumed bool) (*Job, error) {
	opts := e.opts
	opts.fill()
	points, err := expandChecked(set, opts.MaxPoints)
	if err != nil {
		return nil, err
	}
	unique := map[string]bool{}
	for _, p := range points {
		unique[p.Hash] = true
	}

	// Build the job completely — progress plumbing included — before it
	// becomes visible to Status() readers via the job table.
	var finished int
	var pmu sync.Mutex
	opts.OnProgress = func(done, total int) {
		pmu.Lock()
		finished = done
		pmu.Unlock()
	}
	j := &Job{
		name:    set.Name,
		points:  len(points),
		total:   len(unique),
		resumed: resumed,
		state:   JobRunning,
		done:    make(chan struct{}),
		progress: func() int {
			pmu.Lock()
			defer pmu.Unlock()
			return finished
		},
		live:   &liveStats{startedAt: time.Now()},
		stream: newPointStream(points),
	}
	opts.live = j.live
	st := opts.Store
	opts.onPoint = func(pr PointResult) {
		// Journal deterministic outcomes only: errors carry no outcome,
		// degraded outcomes are not cacheable (the hash names the
		// sharded point), and cache hits are already in the log.
		if st != nil && pr.Err == "" && pr.Outcome != nil && !pr.Degraded && !pr.Cached {
			st.PointCompleted(pr.Hash, pr.Outcome)
		}
		j.stream.publish(pr)
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("campaign: engine is shut down")
	}
	if id == "" {
		if opts.MaxActive > 0 && e.active >= opts.MaxActive {
			e.mu.Unlock()
			return nil, ErrBusy
		}
		e.seq++
		j.id = fmt.Sprintf("c%d", e.seq)
		if st != nil {
			spec, err := json.Marshal(set)
			if err == nil {
				err = st.JobSubmitted(j.id, set.Name, len(points), len(unique), spec)
			}
			if err != nil {
				// A journal that cannot record the submission cannot
				// resume it either: refuse loudly rather than accept
				// silently-undurable work. (The id gap is harmless.)
				e.mu.Unlock()
				return nil, fmt.Errorf("campaign: journaling submission: %w", err)
			}
		}
	} else {
		j.id = id
	}
	e.active++
	e.jobs[j.id] = j
	e.order = append(e.order, j.id)
	e.wg.Add(1)
	e.mu.Unlock()

	if opts.Metrics != nil {
		opts.Metrics.ActiveCampaigns.Add(1)
	}
	jctx, jcancel := context.WithCancel(e.ctx)
	j.cancel = jcancel
	go func() {
		defer e.wg.Done()
		defer jcancel()
		res := runPoints(jctx, set.Name, points, opts)
		if opts.Metrics != nil {
			opts.Metrics.ActiveCampaigns.Add(-1)
		}
		e.mu.Lock()
		e.active--
		e.mu.Unlock()
		j.mu.Lock()
		if err := jctx.Err(); err != nil {
			// Keep the partial document: every point that finished
			// before the cancellation carries its real outcome.
			j.state, j.err, j.results = JobCancelled, err, res
		} else {
			j.state, j.results = JobDone, res
			// Journal completion — not cancellation: a job cut short by
			// engine shutdown stays "running" in the log on purpose, so
			// the next boot resumes it. Only an explicit Cancel writes
			// the cancelled record (see Engine.Cancel).
			st.JobFinished(j.id)
		}
		j.mu.Unlock()
		j.stream.finish()
		close(j.done)
	}()
	return j, nil
}

// CancelStatus reports what Engine.Cancel found.
type CancelStatus int

const (
	// CancelUnknown means no job has the id.
	CancelUnknown CancelStatus = iota
	// CancelRequested means the job was running: the cooperative
	// interrupt was delivered and the cancellation journaled.
	CancelRequested
	// CancelAlreadySettled means the job had already finished (done,
	// cancelled or failed) — there was nothing to cancel, and no
	// cancellation record is journaled (the job keeps its real
	// terminal state across restarts).
	CancelAlreadySettled
)

// Cancel interrupts a running job cooperatively: in-flight points are
// aborted through the par guard and the job settles as JobCancelled
// with its partial results. The cancellation is journaled immediately —
// before the job settles — so a crash right after the request still
// refuses to resume the job on the next boot. Cancelling an
// already-settled job reports CancelAlreadySettled, distinct from
// cancelling a live one.
func (e *Engine) Cancel(id string) CancelStatus {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		return CancelUnknown
	}
	j.mu.Lock()
	settled := j.state != JobRunning
	j.mu.Unlock()
	if settled {
		return CancelAlreadySettled
	}
	e.opts.Store.JobCancelled(id)
	j.cancel()
	return CancelRequested
}

// Recover seeds the engine from a journal scan: every recovered point
// outcome enters the shared cache (so no journaled point is ever
// recomputed), the id sequence resumes past the highest journaled id,
// and every job the crash cut short — or that finished, whose document
// is rebuilt instantly from cache — is resubmitted under its original
// id with the resumed flag set. Explicitly-cancelled jobs are NOT
// resumed; they reappear as settled tombstones. Returns the jobs that
// were resubmitted.
func (e *Engine) Recover(rec *store.Recovered) ([]*Job, error) {
	if rec == nil {
		return nil, nil
	}
	for hash, out := range rec.Points {
		e.opts.Cache.Put(hash, out)
	}
	e.mu.Lock()
	for _, jr := range rec.Jobs {
		if n, err := strconv.Atoi(strings.TrimPrefix(jr.ID, "c")); err == nil && n > e.seq {
			e.seq = n
		}
	}
	e.mu.Unlock()

	var resumed []*Job
	for _, jr := range rec.Jobs {
		switch jr.State {
		case store.JobCancelled:
			e.addTombstone(jr)
		default: // running or finished: resubmit; cached points are free
			set, err := scenario.ParseSet(jr.Spec)
			if err != nil {
				return resumed, fmt.Errorf("campaign: recovering job %s: %w", jr.ID, err)
			}
			j, err := e.submit(set, jr.ID, true)
			if err != nil {
				return resumed, fmt.Errorf("campaign: resuming job %s: %w", jr.ID, err)
			}
			resumed = append(resumed, j)
		}
	}
	return resumed, nil
}

// addTombstone registers a recovered, explicitly-cancelled job as a
// settled entry: listed with its terminal state, but its partial results
// document was not retained across the restart.
func (e *Engine) addTombstone(jr *store.JobRecord) {
	j := &Job{
		id: jr.ID, name: jr.Name, points: jr.Points, total: jr.Total,
		resumed: true,
		state:   JobCancelled,
		err:     fmt.Errorf("campaign: cancelled before restart; partial results not retained"),
		done:    make(chan struct{}),
		cancel:  func() {},
	}
	close(j.done)
	e.mu.Lock()
	e.jobs[j.id] = j
	e.order = append(e.order, j.id)
	e.mu.Unlock()
}

// Job returns the job registered under id.
func (e *Engine) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (e *Engine) Jobs() []*Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Job, len(e.order))
	for i, id := range e.order {
		out[i] = e.jobs[id]
	}
	return out
}

// Cache exposes the engine's shared outcome cache.
func (e *Engine) Cache() *Cache { return e.opts.Cache }

// Close rejects further submissions, cancels every running job — the
// in-flight points are interrupted cooperatively through the par guard —
// and waits for all jobs to settle. Cancelled jobs keep their partial
// results documents.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.cancel()
	e.wg.Wait()
}

// ID returns the job id.
func (j *Job) ID() string { return j.id }

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{ID: j.id, Name: j.name, State: j.state, Points: j.points, Total: j.total, Resumed: j.resumed}
	switch j.state {
	case JobDone:
		s.Done = j.total
		s.Aggregate = &j.results.Aggregate
	case JobCancelled:
		s.Error = j.err.Error()
		if j.results != nil {
			s.Done = j.results.Aggregate.Points - j.results.Aggregate.Errors
			s.Aggregate = &j.results.Aggregate
		}
	case JobFailed:
		s.Error = j.err.Error()
	default:
		if j.progress != nil {
			s.Done = j.progress()
		}
	}
	return s
}

// Results returns the finished document, or ok=false while running.
func (j *Job) Results() (res *Results, err error, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == JobRunning {
		return nil, nil, false
	}
	return j.results, j.err, true
}

// Wait blocks until the job settles (or ctx expires) and returns the
// results or the job's failure.
func (j *Job) Wait(ctx context.Context) (*Results, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	res, err, _ := j.Results()
	return res, err
}
