package campaign

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/scenario"
)

// Engine runs campaigns asynchronously and tracks them by id — the
// execution backend shared by the simd HTTP service and embedders. One
// engine owns one outcome cache, so campaigns submitted to it share work.
type Engine struct {
	opts   Options
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	seq    int
	active int
	closed bool
}

// ErrBusy rejects a submission when MaxActive campaigns are already
// running; the caller should retry later (simd maps it to 429 with a
// Retry-After).
var ErrBusy = fmt.Errorf("campaign: engine at max active campaigns")

// NewEngine returns an engine applying opts to every campaign. A nil
// Cache in opts is replaced by a fresh shared cache; per-job progress
// callbacks are managed by the engine (opts.OnProgress is ignored).
func NewEngine(opts Options) *Engine {
	if opts.Cache == nil {
		opts.Cache = NewCache()
	}
	opts.OnProgress = nil
	ctx, cancel := context.WithCancel(context.Background())
	return &Engine{opts: opts, ctx: ctx, cancel: cancel, jobs: map[string]*Job{}}
}

// JobState names a job's lifecycle stage.
type JobState string

const (
	// JobRunning means points are still executing.
	JobRunning JobState = "running"
	// JobDone means the results document is complete.
	JobDone JobState = "done"
	// JobFailed means the run aborted (engine shutdown mid-campaign).
	JobFailed JobState = "failed"
	// JobCancelled means the job was cancelled (Engine.Cancel or
	// shutdown); the partial results document — every point finished
	// before the cut, the rest marked cancelled — is retained.
	JobCancelled JobState = "cancelled"
)

// Job is one submitted campaign.
type Job struct {
	id     string
	name   string
	points int // expanded
	total  int // unique

	done     chan struct{}
	cancel   context.CancelFunc
	progress func() int
	live     *liveStats

	mu      sync.Mutex
	state   JobState
	results *Results
	err     error
}

// Status is a job snapshot for serving.
type Status struct {
	// ID addresses the job; Name echoes the set name.
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// State is running, done, cancelled or failed.
	State JobState `json:"state"`
	// Points counts the expanded points; Total counts the unique
	// simulations to execute (after hash dedup); Done counts the
	// finished ones.
	Points int `json:"points"`
	Total  int `json:"total"`
	Done   int `json:"done"`
	// Error reports a failed job's cause.
	Error string `json:"error,omitempty"`
	// Aggregate is present once the job is done.
	Aggregate *Aggregate `json:"aggregate,omitempty"`
}

// Submit validates, sizes and expands the set synchronously — malformed
// or oversize submissions fail here, before an id is allocated — then
// starts the campaign in the background.
func (e *Engine) Submit(set scenario.Set) (*Job, error) {
	opts := e.opts
	opts.fill()
	points, err := expandChecked(set, opts.MaxPoints)
	if err != nil {
		return nil, err
	}
	unique := map[string]bool{}
	for _, p := range points {
		unique[p.Hash] = true
	}

	// Build the job completely — progress plumbing included — before it
	// becomes visible to Status() readers via the job table.
	var finished int
	var pmu sync.Mutex
	opts.OnProgress = func(done, total int) {
		pmu.Lock()
		finished = done
		pmu.Unlock()
	}
	j := &Job{
		name:   set.Name,
		points: len(points),
		total:  len(unique),
		state:  JobRunning,
		done:   make(chan struct{}),
		progress: func() int {
			pmu.Lock()
			defer pmu.Unlock()
			return finished
		},
		live: &liveStats{startedAt: time.Now()},
	}
	opts.live = j.live

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("campaign: engine is shut down")
	}
	if opts.MaxActive > 0 && e.active >= opts.MaxActive {
		e.mu.Unlock()
		return nil, ErrBusy
	}
	e.seq++
	e.active++
	j.id = fmt.Sprintf("c%d", e.seq)
	e.jobs[j.id] = j
	e.order = append(e.order, j.id)
	e.wg.Add(1)
	e.mu.Unlock()

	if opts.Metrics != nil {
		opts.Metrics.ActiveCampaigns.Add(1)
	}
	jctx, jcancel := context.WithCancel(e.ctx)
	j.cancel = jcancel
	go func() {
		defer e.wg.Done()
		defer jcancel()
		res := runPoints(jctx, set.Name, points, opts)
		if opts.Metrics != nil {
			opts.Metrics.ActiveCampaigns.Add(-1)
		}
		e.mu.Lock()
		e.active--
		e.mu.Unlock()
		j.mu.Lock()
		defer j.mu.Unlock()
		if err := jctx.Err(); err != nil {
			// Keep the partial document: every point that finished
			// before the cancellation carries its real outcome.
			j.state, j.err, j.results = JobCancelled, err, res
		} else {
			j.state, j.results = JobDone, res
		}
		close(j.done)
	}()
	return j, nil
}

// Cancel interrupts a running job cooperatively: in-flight points are
// aborted through the par guard and the job settles as JobCancelled
// with its partial results. Cancelling a settled job is a no-op.
// Returns false if no job has this id.
func (e *Engine) Cancel(id string) bool {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		return false
	}
	j.cancel()
	return true
}

// Job returns the job registered under id.
func (e *Engine) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (e *Engine) Jobs() []*Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*Job, len(e.order))
	for i, id := range e.order {
		out[i] = e.jobs[id]
	}
	return out
}

// Cache exposes the engine's shared outcome cache.
func (e *Engine) Cache() *Cache { return e.opts.Cache }

// Close rejects further submissions, cancels every running job — the
// in-flight points are interrupted cooperatively through the par guard —
// and waits for all jobs to settle. Cancelled jobs keep their partial
// results documents.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.cancel()
	e.wg.Wait()
}

// ID returns the job id.
func (j *Job) ID() string { return j.id }

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{ID: j.id, Name: j.name, State: j.state, Points: j.points, Total: j.total}
	switch j.state {
	case JobDone:
		s.Done = j.total
		s.Aggregate = &j.results.Aggregate
	case JobCancelled:
		s.Error = j.err.Error()
		if j.results != nil {
			s.Done = j.results.Aggregate.Points - j.results.Aggregate.Errors
			s.Aggregate = &j.results.Aggregate
		}
	case JobFailed:
		s.Error = j.err.Error()
	default:
		if j.progress != nil {
			s.Done = j.progress()
		}
	}
	return s
}

// Results returns the finished document, or ok=false while running.
func (j *Job) Results() (res *Results, err error, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == JobRunning {
		return nil, nil, false
	}
	return j.results, j.err, true
}

// Wait blocks until the job settles (or ctx expires) and returns the
// results or the job's failure.
func (j *Job) Wait(ctx context.Context) (*Results, error) {
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	res, err, _ := j.Results()
	return res, err
}
