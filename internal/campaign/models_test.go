package campaign

import (
	"context"
	"testing"

	"repro/internal/scenario"
)

// TestRegisteredModels exercises every built-in model adapter directly:
// default-parameter runs succeed, repeat deterministically, and pass
// their own trace-equivalence check.
func TestRegisteredModels(t *testing.T) {
	want := []string{"kpn", "noc", "pipeline", "soc", "soc-clustered"}
	for _, name := range want {
		m, ok := scenario.Lookup(name)
		if !ok {
			t.Fatalf("model %q not registered (have %v)", name, scenario.Models())
		}
		out1, err := m.Run(context.Background(), scenario.Params{})
		if err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
		out2, err := m.Run(context.Background(), scenario.Params{})
		if err != nil {
			t.Fatalf("%s: second Run: %v", name, err)
		}
		if out1.DatesHash != out2.DatesHash || out1.SimEndNS != out2.SimEndNS ||
			out1.CtxSwitches != out2.CtxSwitches {
			t.Errorf("%s: nondeterministic outcome:\n  %+v\n  %+v", name, out1, out2)
		}
		if out1.SimEndNS <= 0 {
			t.Errorf("%s: SimEndNS = %d, want > 0", name, out1.SimEndNS)
		}
		if m.Check == nil {
			t.Errorf("%s: no trace-equivalence check registered", name)
			continue
		}
		diff, err := m.Check(context.Background(), scenario.Params{})
		if err != nil {
			t.Fatalf("%s: Check: %v", name, err)
		}
		if diff != "" {
			t.Errorf("%s: decoupled vs reference traces differ:\n%s", name, diff)
		}
	}
}

// TestModelSeedsChangeTraces guards the scenario.Rand wiring: different
// spec seeds must reach the payload generators.
func TestModelSeedsChangeTraces(t *testing.T) {
	for _, name := range []string{"pipeline", "kpn", "noc"} {
		m, _ := scenario.Lookup(name)
		a, err := m.Run(context.Background(), scenario.Params{"seed": 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.Run(context.Background(), scenario.Params{"seed": 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Checksums) > 0 && len(b.Checksums) > 0 && a.Checksums[0] == b.Checksums[0] {
			t.Errorf("%s: seed does not reach the payload generator (checksums equal)", name)
		}
	}
}

// TestModelBadParams: parameter errors surface as errors, not panics.
func TestModelBadParams(t *testing.T) {
	cases := []struct {
		model string
		p     scenario.Params
	}{
		{"pipeline", scenario.Params{"mode": "warp"}},
		{"pipeline", scenario.Params{"depth": 0}},
		{"pipeline", scenario.Params{"mode": "quantum", "shards": 3}},
		{"soc", scenario.Params{"mode": "nope"}},
		{"soc", scenario.Params{"use_noc": true, "words_per_job": 30, "packet_len": 8}},
		{"soc-clustered", scenario.Params{"shards": 0}},
		{"kpn", scenario.Params{"stages": 1}},
		{"noc", scenario.Params{"streams": 99}},
		{"noc", scenario.Params{"words": 33, "packet_len": 4}},
		{"kpn", scenario.Params{"tokens": "many"}},
	}
	for _, c := range cases {
		m, _ := scenario.Lookup(c.model)
		if _, err := m.Run(context.Background(), c.p); err == nil {
			t.Errorf("%s %v: Run accepted bad params", c.model, c.p)
		}
	}
}
