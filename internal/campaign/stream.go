package campaign

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/scenario"
)

// pointStream publishes per-point results in expansion order while the
// campaign still runs — the incremental feed behind the streaming
// results endpoint. Workers publish canonical completions (via
// Options.onPoint); the stream fans each one out to every expansion
// index sharing its hash, mirroring exactly the dedup-copy rule the
// buffered results document applies at the end, so a streamed row i is
// byte-identical to row i of the final document.
type pointStream struct {
	mu      sync.Mutex
	pts     []PointResult
	ready   []bool
	settled bool
	changed chan struct{} // closed and replaced on every publish

	byHash map[string][]int
}

// newPointStream builds the skeleton from the expanded points: identity
// fields and the dedup flags are known up front, outcomes arrive later.
func newPointStream(points []scenario.Point) *pointStream {
	s := &pointStream{
		pts:     make([]PointResult, len(points)),
		ready:   make([]bool, len(points)),
		changed: make(chan struct{}),
		byHash:  map[string][]int{},
	}
	for i, p := range points {
		s.pts[i] = PointResult{Index: i, Model: p.Model, Hash: p.Hash, Params: p.Params}
		if len(s.byHash[p.Hash]) > 0 {
			s.pts[i].Dedup = true
		}
		s.byHash[p.Hash] = append(s.byHash[p.Hash], i)
	}
	return s
}

// publish fans one canonical completion out to every index sharing its
// hash. Called from worker goroutines.
func (s *pointStream) publish(pr PointResult) {
	s.mu.Lock()
	for _, idx := range s.byHash[pr.Hash] {
		p := &s.pts[idx]
		if idx == pr.Index {
			*p = pr
		} else {
			// The dedup-copy rule of runPoints: outcome and provenance
			// copy, per-execution telemetry (Checked, Attempts, WallMS,
			// Cached) does not.
			p.Outcome = pr.Outcome
			p.Err = pr.Err
			p.Degraded = pr.Degraded
			p.Stall = pr.Stall
		}
		s.ready[idx] = true
	}
	ch := s.changed
	s.changed = make(chan struct{})
	s.mu.Unlock()
	close(ch)
}

// finish marks the stream settled (no more publishes will come) and
// wakes every waiter.
func (s *pointStream) finish() {
	s.mu.Lock()
	s.settled = true
	ch := s.changed
	s.changed = make(chan struct{})
	s.mu.Unlock()
	close(ch)
}

// NumPoints returns the job's expanded point count (0 for recovered
// tombstones, which retained no expansion).
func (j *Job) NumPoints() int {
	if j.stream == nil {
		return 0
	}
	return len(j.stream.pts)
}

// StreamPoint blocks until point i of the job is complete — or the job
// settles, at which point the final results document answers — and
// returns its report. Points stream in whatever order the caller asks;
// iterating i = 0..NumPoints()-1 yields the rows of the final document
// in order, incrementally, while the campaign still runs. The returned
// error is ctx's when the wait was cut short.
func (j *Job) StreamPoint(ctx context.Context, i int) (PointResult, error) {
	s := j.stream
	if s == nil {
		return PointResult{}, fmt.Errorf("campaign: job %s retained no point stream", j.id)
	}
	if i < 0 || i >= len(s.pts) {
		return PointResult{}, fmt.Errorf("campaign: point %d out of range (%d points)", i, len(s.pts))
	}
	for {
		s.mu.Lock()
		if s.ready[i] {
			pr := s.pts[i]
			s.mu.Unlock()
			return pr, nil
		}
		if s.settled {
			s.mu.Unlock()
			// Settled with this index never published: a cancelled
			// campaign whose remaining points were marked in the final
			// document only. Serve that document's row.
			j.mu.Lock()
			res := j.results
			j.mu.Unlock()
			if res != nil && i < len(res.Points) {
				return res.Points[i], nil
			}
			return PointResult{}, fmt.Errorf("campaign: job %s settled without results", j.id)
		}
		ch := s.changed
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return PointResult{}, ctx.Err()
		}
	}
}
