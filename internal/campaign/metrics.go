package campaign

import (
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Campaign instrumentation. Two layers feed off the same completion
// sites in runOne: the shared Metrics sink (process-wide totals for the
// /metrics scrape, installed via Options.Metrics) and the per-job live
// counters behind Job.Live (the /campaigns/{id}/stats document). Both
// are updated per POINT, never inside a kernel loop, so the cost is
// invisible next to the simulations themselves.

// Metrics is the shared sink for campaign execution. All fields may be
// nil (updates no-op); build one with NewMetrics.
type Metrics struct {
	// PointsStarted counts canonical points entering execution;
	// PointsCompleted/PointsFailed split the outcomes; PointsDegraded
	// counts points served by the single-kernel quarantine rerun.
	PointsStarted   *metrics.Counter
	PointsCompleted *metrics.Counter
	PointsFailed    *metrics.Counter
	PointsDegraded  *metrics.Counter
	// Retries counts extra attempts beyond each point's first.
	Retries *metrics.Counter
	// CacheHits counts points served from the shared outcome cache.
	CacheHits *metrics.Counter
	// ProfileRuns counts single-kernel profiling pre-runs executed by
	// profile-guided campaigns (cache hits are not counted).
	ProfileRuns *metrics.Counter
	// ActiveWorkers gauges workers currently executing a point;
	// ActiveCampaigns gauges engine jobs currently running.
	ActiveWorkers   *metrics.Gauge
	ActiveCampaigns *metrics.Gauge
}

// NewMetrics registers the campaign metric family on r. A nil registry
// returns nil (a no-op sink).
func NewMetrics(r *metrics.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		PointsStarted:   r.Counter("campaign_points_started_total", "Canonical points entering execution."),
		PointsCompleted: r.Counter("campaign_points_completed_total", "Points finished with an outcome."),
		PointsFailed:    r.Counter("campaign_points_failed_total", "Points finished with an error."),
		PointsDegraded:  r.Counter("campaign_points_degraded_total", "Points served by the single-kernel quarantine rerun."),
		Retries:         r.Counter("campaign_retries_total", "Extra attempts beyond each point's first."),
		CacheHits:       r.Counter("campaign_cache_hits_total", "Points served from the shared outcome cache."),
		ProfileRuns:     r.Counter("campaign_profile_runs_total", "Single-kernel profiling pre-runs executed by profile-guided campaigns."),
		ActiveWorkers:   r.Gauge("campaign_active_workers", "Workers currently executing a point."),
		ActiveCampaigns: r.Gauge("campaign_active_campaigns", "Engine campaigns currently running."),
	}
}

// liveStats is one job's live counters, written by the campaign's
// worker goroutines and snapshotted by the stats endpoint while the
// job runs.
type liveStats struct {
	started   atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	degraded  atomic.Uint64
	cacheHits atomic.Uint64
	retries   atomic.Uint64
	startedAt time.Time
}

// Live is a running campaign's counter snapshot, served under
// /campaigns/{id}/stats. Unlike the results document it is
// intentionally nondeterministic: it moves while the campaign runs.
type Live struct {
	// State echoes the job state; Points/Total echo the expansion.
	State  JobState `json:"state"`
	Points int      `json:"points"`
	Total  int      `json:"total"`
	// Started counts canonical points that entered execution;
	// Completed and Failed split the finished ones; Degraded counts
	// quarantine reruns; CacheHits counts points served from cache;
	// Retries counts extra attempts.
	Started   uint64 `json:"started"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Degraded  uint64 `json:"degraded,omitempty"`
	CacheHits uint64 `json:"cache_hits"`
	Retries   uint64 `json:"retries,omitempty"`
	// ElapsedMS is wall time since submission; PointsPerSec is the
	// finished-point rate over it.
	ElapsedMS    float64 `json:"elapsed_ms"`
	PointsPerSec float64 `json:"points_per_sec"`
}

// observePoint folds one finished canonical point into the shared sink
// and the job's live counters.
func observePoint(m *Metrics, ls *liveStats, pr *PointResult, cacheHit bool) {
	failed := pr.Err != ""
	retries := 0
	if pr.Attempts > 1 {
		retries = pr.Attempts - 1
	}
	if m != nil {
		if failed {
			m.PointsFailed.Inc()
		} else {
			m.PointsCompleted.Inc()
		}
		if pr.Degraded {
			m.PointsDegraded.Inc()
		}
		if cacheHit {
			m.CacheHits.Inc()
		}
		m.Retries.Add(uint64(retries))
	}
	if ls != nil {
		if failed {
			ls.failed.Add(1)
		} else {
			ls.completed.Add(1)
		}
		if pr.Degraded {
			ls.degraded.Add(1)
		}
		if cacheHit {
			ls.cacheHits.Add(1)
		}
		ls.retries.Add(uint64(retries))
	}
}

// Live snapshots the job's live counters. Safe to call at any time,
// including while the campaign runs.
func (j *Job) Live() Live {
	st := j.Status()
	l := Live{State: st.State, Points: st.Points, Total: st.Total}
	ls := j.live
	if ls == nil {
		return l
	}
	l.Started = ls.started.Load()
	l.Completed = ls.completed.Load()
	l.Failed = ls.failed.Load()
	l.Degraded = ls.degraded.Load()
	l.CacheHits = ls.cacheHits.Load()
	l.Retries = ls.retries.Load()
	elapsed := time.Since(ls.startedAt)
	l.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	if done := l.Completed + l.Failed; done > 0 && elapsed > 0 {
		l.PointsPerSec = float64(done) / elapsed.Seconds()
	}
	return l
}
