package campaign

import (
	"sync"

	"repro/internal/scenario"
)

// Cache stores point outcomes keyed by canonical scenario hash. Outcomes
// are deterministic functions of the hash, so a hit is always exact. All
// methods are safe for concurrent use and on a nil receiver (a nil cache
// never hits and never stores).
type Cache struct {
	mu sync.Mutex
	m  map[string]scenario.Outcome
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{m: map[string]scenario.Outcome{}} }

// Get fetches the outcome cached under hash.
func (c *Cache) Get(hash string) (scenario.Outcome, bool) {
	if c == nil {
		return scenario.Outcome{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out, ok := c.m[hash]
	return out, ok
}

// Put stores the outcome under hash.
func (c *Cache) Put(hash string, out scenario.Outcome) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[hash] = out
}

// Len returns the number of cached outcomes.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
