package sim

import "sync/atomic"

// Cooperative interruption. A Kernel is single-threaded by design, but a
// supervisor (a per-point deadline in the campaign engine, the shard
// coordinator's stall watchdog, a service shutting down) must be able to
// stop a running kernel from another goroutine without corrupting it. The
// kernel polls an atomic flag at safe points of the evaluate/delta/timed
// loop — between process dispatches, never inside one — so an interrupted
// Step returns with all kernel and model state consistent: the run can be
// resumed with another Step (after ClearInterrupt) or discarded with
// Shutdown, and no goroutine is leaked either way.
//
// The same poll points publish two beacons external watchdogs sample:
// Beat, a counter bumped at every poll (is the kernel dispatching at
// all?), and Beacon, the kernel's simulated time as of the last poll
// (is the simulation going anywhere?). A stall watchdog keys on Beacon:
// frozen simulated time over a whole wall-clock window means the run is
// deadlocked, livelocked in delta cycles at one date, or stuck in a
// non-cooperative blocking call — Beat then tells the diagnostic which.

// pollEvery is the dispatch countdown between interrupt polls inside the
// evaluate drain. Poll points cost one atomic add and one atomic load;
// spacing them keeps the overhead invisible next to the dispatch itself
// (a coroutine handoff, or a method call) while bounding interrupt
// latency to a few dozen dispatches.
const pollEvery = 64

// interruptState is the cross-goroutine half of the kernel, kept apart
// from the single-threaded hot state.
type interruptState struct {
	// intr is latched by Interrupt (any goroutine) and polled by Step.
	intr atomic.Bool
	// beat is the dispatch-liveness beacon: bumped at every poll point.
	beat atomic.Uint64
	// now is the published simulated time: stored at every poll point,
	// read by stall watchdogs (k.now itself is single-threaded state).
	now atomic.Int64
	// countdown spaces the polls inside the evaluate drain. Only the
	// kernel goroutine touches it.
	countdown int
	// hook, when non-nil, is the step-budget hook: polled at safe
	// points; returning true latches an interrupt. Only the kernel's
	// owner may set it, between runs.
	hook func() bool
}

// Interrupt asks the kernel to stop at the next safe point. It is the
// only kernel method that may be called from any goroutine at any time,
// including while the kernel is running. The flag latches: a Step (or
// Run) in progress returns early, and every later Step returns
// immediately until ClearInterrupt. Interrupting a kernel never corrupts
// it — the poll points lie between dispatches, where all state is
// consistent.
func (k *Kernel) Interrupt() { k.is.intr.Store(true) }

// Interrupted reports whether an interrupt is latched.
func (k *Kernel) Interrupted() bool { return k.is.intr.Load() }

// ClearInterrupt unlatches the interrupt flag so the kernel can be
// stepped again. Call it only while the kernel is not running.
func (k *Kernel) ClearInterrupt() { k.is.intr.Store(false) }

// Beat returns the progress beacon: a counter bumped at every safe-point
// poll while the kernel executes. A watchdog that samples Beat twice and
// sees no change knows the kernel dispatched (almost) nothing in
// between; one that sees it climbing while the run never returns is
// looking at a runaway model.
func (k *Kernel) Beat() uint64 { return k.is.beat.Load() }

// Beacon returns the kernel's simulated time as of the last safe-point
// poll — the value a stall watchdog samples from outside. Unlike Now it
// may be read from any goroutine while the kernel runs; it lags Now by
// at most one poll interval.
func (k *Kernel) Beacon() Time { return Time(k.is.now.Load()) }

// SetInterruptHook installs fn as the kernel's step-budget hook: it is
// polled at the same safe points as the interrupt flag, and returning
// true latches an interrupt exactly like Interrupt. A nil fn removes the
// hook. Unlike Interrupt, the hook runs on the kernel's own goroutine,
// so a single-threaded embedder can enforce a dispatch or wall-clock
// budget without a supervisor goroutine. Set it only while the kernel is
// not running.
func (k *Kernel) SetInterruptHook(fn func() bool) {
	if k.running {
		panic("sim: SetInterruptHook called while running")
	}
	k.is.hook = fn
}

// poll is the safe-point check: bump the beacons, consult the hook, and
// report whether the kernel should stop. Called by Step between
// dispatches and at each phase boundary.
func (k *Kernel) poll() bool {
	k.is.beat.Add(1)
	k.is.now.Store(int64(k.now))
	if k.msink != nil {
		k.publishMetrics()
	}
	if k.is.hook != nil && k.is.hook() {
		k.is.intr.Store(true)
	}
	return k.is.intr.Load()
}

// pollDispatch is the countdown-spaced poll used inside the evaluate
// drain, where dispatches are most frequent.
func (k *Kernel) pollDispatch() bool {
	k.is.countdown--
	if k.is.countdown > 0 {
		return false
	}
	k.is.countdown = pollEvery
	return k.poll()
}
