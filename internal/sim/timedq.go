package sim

// The timed-notification queue is the kernel's hottest data structure:
// every Wait, Sync, delayed notification and NextTrigger passes through it.
// It is a concrete 4-ary min-heap of *timedEntry ordered by (at, seq) — no
// container/heap, so pushes and pops move typed pointers instead of boxing
// through `any`, and no entry is ever allocated on a hot path: each Process
// and each Event embeds its single reusable entry (a process has at most
// one pending wakeup or trigger, an event at most one pending timed
// notification), and rescheduling an entry that is already queued fixes its
// position in place instead of the cancel-and-repush that used to strand
// cancelled garbage in the heap.
//
// A 4-ary layout halves the tree depth of a binary heap; sift-down does a
// few more comparisons per level but they hit one cache line, which is the
// better trade for the push/pop mix the kernel generates.

// timedEntry is a pending timed activity: either a process activation
// (proc != nil — a thread wakeup, a thread wait-timeout, or a method's
// timed dynamic trigger) or an event notification (ev != nil). Entries are
// embedded in their owning Process or Event and reused across rounds; the
// discriminating pointer is set once at initialization.
type timedEntry struct {
	at        Time
	seq       uint64
	proc      *Process
	methodGen uint64 // trigger generation for method proc entries
	waitGen   uint64 // wait sequence for thread timeout entries
	evWait    bool   // entry is a WaitEventTimeout timeout
	ev        *Event
	index     int // position in the heap, -1 when not queued
}

// queued reports whether the entry is currently in the timed queue.
func (te *timedEntry) queued() bool { return te.index >= 0 }

// timedQueue is a 4-ary min-heap of timedEntry ordered by (at, seq), so
// same-date activities fire in schedule order (the determinism the §IV-A
// validation relies on).
type timedQueue struct {
	h []*timedEntry
}

func entryLess(a, b *timedEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *timedQueue) len() int { return len(q.h) }

// peek returns the earliest entry without removing it, or nil.
func (q *timedQueue) peek() *timedEntry {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// push inserts te, which must not already be queued.
func (q *timedQueue) push(te *timedEntry) {
	te.index = len(q.h)
	q.h = append(q.h, te)
	q.siftUp(te.index)
}

// pop removes and returns the earliest entry. The queue must be non-empty.
func (q *timedQueue) pop() *timedEntry {
	h := q.h
	te := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[0].index = 0
	h[last] = nil // drop the reference so the slot doesn't pin the entry
	q.h = h[:last]
	if last > 0 {
		q.siftDown(0)
	}
	te.index = -1
	return te
}

// remove deletes te from the queue in place; a no-op if it is not queued.
func (q *timedQueue) remove(te *timedEntry) {
	i := te.index
	if i < 0 {
		return
	}
	h := q.h
	last := len(h) - 1
	if i != last {
		h[i] = h[last]
		h[i].index = i
	}
	h[last] = nil
	q.h = h[:last]
	if i != last {
		q.fixAt(i)
	}
	te.index = -1
}

// fix restores the heap order around te after its (at, seq) key changed.
func (q *timedQueue) fix(te *timedEntry) { q.fixAt(te.index) }

func (q *timedQueue) fixAt(i int) {
	if i > 0 && entryLess(q.h[i], q.h[(i-1)/4]) {
		q.siftUp(i)
	} else {
		q.siftDown(i)
	}
}

func (q *timedQueue) siftUp(i int) {
	h := q.h
	te := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !entryLess(te, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].index = i
		i = parent
	}
	h[i] = te
	te.index = i
}

func (q *timedQueue) siftDown(i int) {
	h := q.h
	n := len(h)
	te := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if entryLess(h[c], h[min]) {
				min = c
			}
		}
		if !entryLess(h[min], te) {
			break
		}
		h[i] = h[min]
		h[i].index = i
		i = min
	}
	h[i] = te
	te.index = i
}

// scheduleEntry (re)schedules te at absolute date at under a fresh sequence
// number: in place if te is already queued (replacing whatever it was
// scheduled for, including a stale trigger or timeout left behind by an
// earlier round), pushing it otherwise. This is the only scheduling
// primitive; it never allocates.
func (k *Kernel) scheduleEntry(te *timedEntry, at Time) {
	k.timedSeq++
	te.at = at
	te.seq = k.timedSeq
	if te.index >= 0 {
		k.timed.fix(te)
	} else {
		k.timed.push(te)
	}
}
