package sim

import "testing"

// Allocation-regression tests: the kernel hot paths must stay at zero
// heap allocations per operation in steady state (after the first rounds
// have grown the reusable queue arrays). These pin the PR's perf win so it
// cannot silently regress — timed entries are embedded in Process/Event,
// the timed queue is a concrete heap, and the delta queues double-buffer.

// steadyAllocs warms the kernel up with one step (growing every recycled
// buffer and goroutine stack), then measures the average allocations per
// step.
func steadyAllocs(step func()) float64 {
	step()
	return testing.AllocsPerRun(100, step)
}

func TestWaitZeroAlloc(t *testing.T) {
	k := NewKernel("alloc")
	k.Thread("p", func(p *Process) {
		for {
			p.Wait(NS)
		}
	})
	var end Time
	step := func() { end += 200 * NS; k.Run(end) }
	if n := steadyAllocs(step); n != 0 {
		t.Errorf("Wait steady state: %v allocs per 200 wakeups, want 0", n)
	}
	k.Shutdown()
}

func TestIncSyncZeroAlloc(t *testing.T) {
	k := NewKernel("alloc")
	k.Thread("p", func(p *Process) {
		for {
			for i := 0; i < 512; i++ {
				p.Inc(NS)
			}
			p.Sync()
		}
	})
	var end Time
	step := func() { end += 2048 * NS; k.Run(end) }
	if n := steadyAllocs(step); n != 0 {
		t.Errorf("Inc+Sync steady state: %v allocs per step, want 0", n)
	}
	k.Shutdown()
}

func TestWaitEventTimeoutZeroAlloc(t *testing.T) {
	// Exercises both outcomes: the event winning (in-place removal of the
	// timeout entry) and the timeout expiring.
	k := NewKernel("alloc")
	e := NewEvent(k, "e")
	k.Thread("notifier", func(p *Process) {
		for {
			p.Wait(3 * NS)
			e.Notify()
		}
	})
	k.Thread("waiter", func(p *Process) {
		for {
			p.WaitEventTimeout(e, 2*NS) // expires
			p.WaitEventTimeout(e, 5*NS) // event wins
		}
	})
	var end Time
	step := func() { end += 300 * NS; k.Run(end) }
	if n := steadyAllocs(step); n != 0 {
		t.Errorf("WaitEventTimeout steady state: %v allocs per step, want 0", n)
	}
	k.Shutdown()
}

func TestDelayedNotifyZeroAlloc(t *testing.T) {
	// A producer replacing a pending timed notification every round (the
	// Smart FIFO pattern) with a parked consumer: the event's embedded
	// entry is rescheduled in place.
	k := NewKernel("alloc")
	e := NewEvent(k, "e")
	k.Thread("producer", func(p *Process) {
		for {
			e.NotifyAtReplace(k.Now() + 2*NS)
			p.Wait(2 * NS)
		}
	})
	k.Thread("consumer", func(p *Process) {
		for {
			p.WaitEvent(e)
		}
	})
	var end Time
	step := func() { end += 200 * NS; k.Run(end) }
	if n := steadyAllocs(step); n != 0 {
		t.Errorf("NotifyAtReplace steady state: %v allocs per step, want 0", n)
	}
	k.Shutdown()
}
