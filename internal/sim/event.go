package sim

// Event is a SystemC-like notification primitive.
//
// Threads block on it with Process.WaitEvent; method processes are attached
// statically (Kernel.Method sensitivity list) or dynamically
// (Process.NextTriggerEvent). An event carries at most one pending delayed
// notification; following SystemC semantics, a new delayed notification
// only replaces the pending one if it would fire earlier, and an immediate
// notification overrides everything.
//
// # Subscriber-aware elision
//
// Channels that recompute an authoritative notification date at every state
// change (the Smart FIFO's NotEmpty/NotFull, the PEQ's ready event) use
// NotifyAtReplace. When nothing is subscribed — no parked thread, no
// static or dynamic method sensitivity — the notification is elided: no
// timed-queue traffic at all, just a recorded date. The record is turned
// back into a real notification the moment a subscriber attaches, or
// silently expires at the same boundary where the real notification would
// have fired and been lost. Every subscriber observes exactly the wakeups
// it always did, and the pure Kahn case (blocking Read/Write only, nobody
// listening) pays nothing.
//
// One deliberate divergence: an elided notification no longer keeps the
// kernel alive, so Run quiesces without advancing Now to dates only such
// unobservable notifications would have reached. A model's end date is
// driven by its processes, not by notifications nobody can see.
type Event struct {
	k    *Kernel
	name string

	// waiting holds dynamically attached processes: parked threads and
	// methods armed with NextTriggerEvent. Cleared on fire; the backing
	// array is recycled through spare to keep steady-state park/wake
	// cycles allocation-free.
	waiting []procRef
	spare   []procRef
	// static holds statically sensitive method processes. Never cleared.
	static []*Process

	// pend is the event's single reusable timed-queue entry (pend.ev is
	// this event); timedPending reports whether it is live. deltaPending
	// marks a pending delta notification.
	pend         timedEntry
	timedPending bool
	deltaPending bool

	// Elided-notification record (see NotifyAtReplace): the authoritative
	// date recorded while the event had no subscribers, plus the global
	// date and delta-promotion count at recording time, which bound the
	// window in which a would-have-been-delta notification is still
	// deliverable. elidedSeq is the timed-queue sequence number drawn at
	// recording time, so a record materialized later still fires in issue
	// order among same-date notifications.
	elided      bool
	elidedAt    Time
	elidedNow   Time
	elidedPromo uint64
	elidedSeq   uint64

	// onFire, if non-nil, runs first when the event fires. Internal
	// hook used by Signal's update phase. An event with an onFire hook
	// always counts as subscribed.
	onFire func()
}

// NewEvent creates an event bound to kernel k.
func NewEvent(k *Kernel, name string) *Event {
	e := &Event{k: k, name: name}
	e.pend.ev = e
	e.pend.index = -1
	return e
}

// Name returns the event's name.
func (e *Event) Name() string { return e.name }

// HasSubscribers reports whether anything can observe a notification of e:
// a parked thread, a statically sensitive method, a dynamically armed
// method, or an internal fire hook. Stale waiter entries (e.g. the losing
// events of a WaitAny) conservatively count until the next fire clears
// them.
func (e *Event) HasSubscribers() bool {
	return len(e.waiting) > 0 || len(e.static) > 0 || e.onFire != nil
}

func (e *Event) addWaiter(p *Process) {
	if e.elided {
		e.deliverElided()
	}
	e.waiting = append(e.waiting, procRef{p: p, gen: p.waitSeq, evWait: true})
}

func (e *Event) addDynMethod(p *Process, gen uint64) {
	if e.elided {
		e.deliverElided()
	}
	e.waiting = append(e.waiting, procRef{p: p, gen: gen})
}

// addStatic registers a statically sensitive method process.
func (e *Event) addStatic(p *Process) {
	if e.elided {
		e.deliverElided()
	}
	e.static = append(e.static, p)
}

// fire activates every attached process: dynamically waiting threads,
// dynamically armed methods whose trigger is still live, and statically
// sensitive methods that are not dynamically overridden.
func (e *Event) fire() {
	k := e.k
	if e.onFire != nil {
		e.onFire()
	}
	if len(e.waiting) > 0 {
		ws := e.waiting
		e.waiting = e.spare[:0]
		e.spare = ws
		for _, r := range ws {
			if r.valid() && k.runnableAdd(r.p) && !r.p.isMethod {
				r.p.wokenBy = e
			}
		}
	}
	for _, p := range e.static {
		if !p.dynArmed {
			k.runnableAdd(p)
		}
	}
}

// Notify triggers the event immediately, within the current evaluate phase.
// Processes activated this way run before the current delta cycle ends.
// Any pending delayed notification is cancelled (immediate wins).
func (e *Event) Notify() {
	e.k.stats.Notifications++
	e.CancelNotify()
	e.fire()
}

// NotifyDelta schedules a notification for the next delta cycle
// (notify(SC_ZERO_TIME)). It overrides a pending timed notification but is
// itself overridden by an immediate one.
func (e *Event) NotifyDelta() {
	e.k.stats.Notifications++
	e.elided = false
	if e.deltaPending {
		return
	}
	if e.timedPending {
		e.k.timed.remove(&e.pend)
		e.timedPending = false
	}
	e.deltaPending = true
	e.k.deltaEvents = append(e.k.deltaEvents, e)
}

// NotifyDelayed schedules a notification after duration d (delta cycle if
// d == 0). Per SystemC semantics it only replaces a pending notification
// that would fire later.
func (e *Event) NotifyDelayed(d Time) {
	if d < 0 {
		panic("sim: NotifyDelayed with negative duration")
	}
	if d == 0 {
		e.NotifyDelta()
		return
	}
	e.k.stats.Notifications++
	e.elided = false
	at := e.k.now + d
	if e.deltaPending {
		return // a delta notification fires earlier than any timed one
	}
	if e.timedPending && e.pend.at <= at {
		return
	}
	e.timedPending = true
	e.k.scheduleEntry(&e.pend, at)
}

// NotifyAt is NotifyDelayed in absolute time: schedule a notification at
// date at, which must not be in the global past.
func (e *Event) NotifyAt(at Time) {
	if at < e.k.now {
		panic("sim: NotifyAt in the past")
	}
	e.NotifyDelayed(at - e.k.now)
}

// NotifyAtReplace schedules a notification at absolute date at — at the
// next delta cycle if at is not in the future — REPLACING any pending
// notification instead of applying the earliest-wins rule. It is the
// primitive for channels that recompute the authoritative
// next-availability date at every state change: a stale earlier
// notification would be both spurious and, worse, would swallow the
// recomputed one.
//
// When the event has no subscribers the notification is elided (see the
// type comment): the hot path costs a few stores and no queue traffic.
func (e *Event) NotifyAtReplace(at Time) {
	k := e.k
	if !e.HasSubscribers() {
		// Nobody can observe the notification: record it instead of
		// scheduling. Any previously scheduled notification is
		// superseded (replace semantics), so drop it too.
		if e.timedPending {
			k.timed.remove(&e.pend)
			e.timedPending = false
		}
		e.deltaPending = false
		k.timedSeq++
		e.elided = true
		e.elidedAt = at
		e.elidedNow = k.now
		e.elidedPromo = k.deltaPromos
		e.elidedSeq = k.timedSeq
		return
	}
	e.elided = false
	k.stats.Notifications++
	if at <= k.now {
		if e.timedPending {
			k.timed.remove(&e.pend)
			e.timedPending = false
		}
		if !e.deltaPending {
			e.deltaPending = true
			k.deltaEvents = append(k.deltaEvents, e)
		}
		return
	}
	e.deltaPending = false
	e.timedPending = true
	k.scheduleEntry(&e.pend, at)
}

// elidedLive reports whether the elided notification record would still be
// pending had it been scheduled for real: a future-dated record is pending
// until its date; a record that would have been a delta notification is
// pending only until the next delta-promotion boundary of the same instant
// (after which the real notification would have fired, observed by nobody,
// and been lost — events are not persistent).
func (e *Event) elidedLive() bool {
	if !e.elided {
		return false
	}
	if e.elidedAt > e.k.now {
		return true
	}
	return e.elidedNow == e.k.now && e.elidedPromo == e.k.deltaPromos
}

// deliverElided converts the elided record into a real notification if it
// is still live, and consumes it either way. Called when a subscriber
// attaches. A timed delivery reuses the sequence number drawn when the
// record was made, so same-date notifications fire exactly in the order
// they were issued, as if none had been elided.
func (e *Event) deliverElided() {
	live := e.elidedLive()
	at := e.elidedAt
	e.elided = false
	if !live {
		return
	}
	k := e.k
	k.stats.Notifications++
	if at <= k.now {
		if !e.deltaPending {
			e.deltaPending = true
			k.deltaEvents = append(k.deltaEvents, e)
		}
		return
	}
	e.timedPending = true
	e.pend.at = at
	e.pend.seq = e.elidedSeq
	if e.pend.index >= 0 {
		k.timed.fix(&e.pend)
	} else {
		k.timed.push(&e.pend)
	}
}

// CancelNotify cancels any pending delayed or delta notification
// (sc_event::cancel), including an elided one.
func (e *Event) CancelNotify() {
	e.elided = false
	if e.timedPending {
		e.k.timed.remove(&e.pend)
		e.timedPending = false
	}
	e.deltaPending = false
}

// HasPending reports whether a delayed or delta notification is pending,
// counting a still-live elided record.
func (e *Event) HasPending() bool {
	return e.timedPending || e.deltaPending || e.elidedLive()
}

// PendingAt returns the date of the pending timed notification and true, or
// (0, false) if none is pending (a delta notification reports the current
// date). An elided record reports the date it would fire at.
func (e *Event) PendingAt() (Time, bool) {
	if e.deltaPending {
		return e.k.now, true
	}
	if e.timedPending {
		return e.pend.at, true
	}
	if e.elidedLive() {
		if e.elidedAt <= e.k.now {
			return e.k.now, true
		}
		return e.elidedAt, true
	}
	return 0, false
}
