package sim

// Event is a SystemC-like notification primitive.
//
// Threads block on it with Process.WaitEvent; method processes are attached
// statically (Kernel.Method sensitivity list) or dynamically
// (Process.NextTriggerEvent). An event carries at most one pending delayed
// notification; following SystemC semantics, a new delayed notification
// only replaces the pending one if it would fire earlier, and an immediate
// notification overrides everything.
type Event struct {
	k    *Kernel
	name string

	// waiting holds dynamically attached processes: parked threads and
	// methods armed with NextTriggerEvent. Cleared on fire.
	waiting []procRef
	// static holds statically sensitive method processes. Never cleared.
	static []*Process

	pending      *timedEntry // pending timed notification, nil if none
	deltaPending bool        // pending delta notification

	// onFire, if non-nil, runs first when the event fires. Internal
	// hook used by Signal's update phase.
	onFire func()
}

// NewEvent creates an event bound to kernel k.
func NewEvent(k *Kernel, name string) *Event {
	return &Event{k: k, name: name}
}

// Name returns the event's name.
func (e *Event) Name() string { return e.name }

func (e *Event) addWaiter(p *Process) {
	e.waiting = append(e.waiting, procRef{p: p, gen: p.waitSeq, evWait: true})
}

func (e *Event) addDynMethod(p *Process, gen uint64) {
	e.waiting = append(e.waiting, procRef{p: p, gen: gen})
}

// fire activates every attached process: dynamically waiting threads,
// dynamically armed methods whose trigger is still live, and statically
// sensitive methods that are not dynamically overridden.
func (e *Event) fire() {
	k := e.k
	if e.onFire != nil {
		e.onFire()
	}
	if len(e.waiting) > 0 {
		ws := e.waiting
		e.waiting = nil
		for _, r := range ws {
			if r.valid() && k.runnableAdd(r.p) && !r.p.isMethod {
				r.p.wokenBy = e
			}
		}
	}
	for _, p := range e.static {
		if !p.dynArmed {
			k.runnableAdd(p)
		}
	}
}

// Notify triggers the event immediately, within the current evaluate phase.
// Processes activated this way run before the current delta cycle ends.
// Any pending delayed notification is cancelled (immediate wins).
func (e *Event) Notify() {
	e.k.stats.Notifications++
	e.CancelNotify()
	e.fire()
}

// NotifyDelta schedules a notification for the next delta cycle
// (notify(SC_ZERO_TIME)). It overrides a pending timed notification but is
// itself overridden by an immediate one.
func (e *Event) NotifyDelta() {
	e.k.stats.Notifications++
	if e.deltaPending {
		return
	}
	if e.pending != nil {
		e.pending.cancelled = true
		e.pending = nil
	}
	e.deltaPending = true
	e.k.deltaEvents = append(e.k.deltaEvents, e)
}

// NotifyDelayed schedules a notification after duration d (delta cycle if
// d == 0). Per SystemC semantics it only replaces a pending notification
// that would fire later.
func (e *Event) NotifyDelayed(d Time) {
	if d < 0 {
		panic("sim: NotifyDelayed with negative duration")
	}
	if d == 0 {
		e.NotifyDelta()
		return
	}
	e.k.stats.Notifications++
	at := e.k.now + d
	if e.deltaPending {
		return // a delta notification fires earlier than any timed one
	}
	if e.pending != nil {
		if e.pending.at <= at {
			return
		}
		e.pending.cancelled = true
	}
	e.pending = e.k.scheduleEvent(e, at)
}

// NotifyAt is NotifyDelayed in absolute time: schedule a notification at
// date at, which must not be in the global past.
func (e *Event) NotifyAt(at Time) {
	if at < e.k.now {
		panic("sim: NotifyAt in the past")
	}
	e.NotifyDelayed(at - e.k.now)
}

// CancelNotify cancels any pending delayed or delta notification
// (sc_event::cancel).
func (e *Event) CancelNotify() {
	if e.pending != nil {
		e.pending.cancelled = true
		e.pending = nil
	}
	e.deltaPending = false
}

// HasPending reports whether a delayed or delta notification is pending.
func (e *Event) HasPending() bool { return e.pending != nil || e.deltaPending }

// PendingAt returns the date of the pending timed notification and true, or
// (0, false) if none is pending (a delta notification reports the current
// date).
func (e *Event) PendingAt() (Time, bool) {
	if e.deltaPending {
		return e.k.now, true
	}
	if e.pending != nil {
		return e.pending.at, true
	}
	return 0, false
}
