// Package sim implements a SystemC-like discrete-event simulation kernel.
//
// The kernel provides the substrate the paper assumes from IEEE SystemC:
// simulated time, events with immediate/delta/timed notification, thread
// processes (cooperative coroutines implemented as goroutines woken one at
// a time), method processes (run-to-completion callbacks with static and
// dynamic sensitivity), and delta cycles.
//
// Temporal decoupling (paper §II) is native: every process carries a local
// time offset manipulated with Inc, read with LocalTime, and discharged with
// Sync. A process whose offset is zero is said to be synchronized.
//
// The kernel is strictly deterministic: exactly one process runs at a time,
// runnable processes execute in FIFO order, and timed notifications fire in
// (time, insertion sequence) order, so a given model always produces the
// same trace. The §IV-A dual-mode validation relies on this.
package sim

import "fmt"

// Time is a simulated date or duration in picoseconds.
//
// It plays the role of sc_time: the same type is used for instants (dates
// since simulation start) and durations. Negative values are only used as
// sentinels (see Run).
type Time int64

// Time units, to be multiplied: 20 * sim.NS.
const (
	PS  Time = 1
	NS  Time = 1000 * PS
	US  Time = 1000 * NS
	MS  Time = 1000 * US
	SEC Time = 1000 * MS
)

// TimeMax is the largest representable date. Shard coordination uses it as
// the "no bound" frontier: a cross-shard channel whose writer has
// terminated can never deliver again, so its reader may run arbitrarily
// far ahead.
const TimeMax Time = 1<<63 - 1

// String renders the time with the largest exact unit, e.g. "20ns" or
// "1500ps".
func (t Time) String() string {
	if t < 0 {
		return fmt.Sprintf("-%v", -t)
	}
	switch {
	case t == 0:
		return "0s"
	case t%SEC == 0:
		return fmt.Sprintf("%ds", t/SEC)
	case t%MS == 0:
		return fmt.Sprintf("%dms", t/MS)
	case t%US == 0:
		return fmt.Sprintf("%dus", t/US)
	case t%NS == 0:
		return fmt.Sprintf("%dns", t/NS)
	default:
		return fmt.Sprintf("%dps", t/PS)
	}
}
