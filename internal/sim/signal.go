package sim

// Signal is an sc_signal-like communication primitive: a value with
// request/update semantics. Writes take effect at the next delta cycle
// (the evaluate/update split of the SystemC scheduler), so all processes
// in one evaluate phase read the same stable value, and ValueChanged fires
// once per effective change.
//
// Signals carry no timestamps: they are for the synchronized parts of a
// model (status lines, interrupt wires, method-process plumbing). A
// decoupled process driving a signal writes at the *global* date, like any
// regular (non-Smart) channel.
type Signal[T comparable] struct {
	k    *Kernel
	name string

	cur     T
	next    T
	pending bool

	update  *Event // private delta hook applying the request
	changed *Event
}

// NewSignal creates a signal with the zero value.
func NewSignal[T comparable](k *Kernel, name string) *Signal[T] {
	s := &Signal[T]{
		k:       k,
		name:    name,
		changed: NewEvent(k, name+".value_changed"),
	}
	s.update = NewEvent(k, name+".update")
	s.update.onFire = func() {
		s.pending = false
		if s.next != s.cur {
			s.cur = s.next
			s.changed.Notify()
		}
	}
	return s
}

// Name returns the signal name.
func (s *Signal[T]) Name() string { return s.name }

// Read returns the current (stable) value.
func (s *Signal[T]) Read() T { return s.cur }

// Write schedules v to become the signal's value at the next delta cycle.
// Several writes in one evaluate phase keep only the last (last-write-wins,
// as sc_signal). If the final value equals the current one, no change
// event fires.
func (s *Signal[T]) Write(v T) {
	s.next = v
	if !s.pending {
		s.pending = true
		s.update.NotifyDelta()
	}
}

// ValueChanged is notified (within the delta cycle of the effective
// update) whenever the stable value changes.
func (s *Signal[T]) ValueChanged() *Event { return s.changed }
