package sim

import "testing"

// Tests for subscriber-aware notification elision (NotifyAtReplace): while
// an event has no subscribers the notification is recorded, not scheduled;
// the record materializes when a subscriber attaches and expires exactly
// where the real notification would have fired unobserved.

func TestHasSubscribersLifecycle(t *testing.T) {
	k := NewKernel("t")
	e := NewEvent(k, "e")
	if e.HasSubscribers() {
		t.Error("fresh event reports subscribers")
	}
	var during bool
	k.Thread("waiter", func(p *Process) {
		p.WaitEvent(e)
	})
	k.Thread("probe", func(p *Process) {
		during = e.HasSubscribers() // waiter is parked on e
		e.Notify()
	})
	k.Run(RunForever)
	if !during {
		t.Error("HasSubscribers = false while a thread was parked")
	}
	if e.HasSubscribers() {
		t.Error("HasSubscribers = true after fire cleared the waiters")
	}
	// Static sensitivity subscribes permanently.
	k.MethodNoInit("m", func(p *Process) {}, e)
	if !e.HasSubscribers() {
		t.Error("HasSubscribers = false with a static method attached")
	}
}

func TestElidedNotificationSkipsQueue(t *testing.T) {
	k := NewKernel("t")
	e := NewEvent(k, "e")
	k.Thread("p", func(p *Process) {
		e.NotifyAtReplace(k.Now() + 40*NS)
		if k.timed.len() != 0 {
			t.Errorf("timed queue holds %d entries for an unobserved notification", k.timed.len())
		}
		// The logical notification is still reported.
		if at, ok := e.PendingAt(); !ok || at != 40*NS {
			t.Errorf("PendingAt = %v,%v; want 40ns,true", at, ok)
		}
		if !e.HasPending() {
			t.Error("HasPending = false for elided notification")
		}
	})
	k.Run(RunForever)
}

func TestElidedDeliveredOnSubscribe(t *testing.T) {
	// The Smart FIFO pattern: the date is recorded while nobody listens
	// and must reach a thread that subscribes before it passes.
	k := NewKernel("t")
	e := NewEvent(k, "e")
	var woken Time = -1
	k.Thread("notifier", func(p *Process) {
		e.NotifyAtReplace(30 * NS)
	})
	k.Thread("waiter", func(p *Process) {
		p.Wait(10 * NS) // subscribe at 10ns, before the recorded date
		p.WaitEvent(e)
		woken = k.Now()
	})
	k.Run(RunForever)
	if woken != 30*NS {
		t.Errorf("woken at %v, want 30ns", woken)
	}
}

func TestElidedDeliveredSamePhaseDelta(t *testing.T) {
	// A present-dated replace with no subscribers would have been a delta
	// notification; a thread subscribing within the same evaluate phase
	// must still observe it.
	k := NewKernel("t")
	e := NewEvent(k, "e")
	var woken Time = -1
	k.Thread("notifier", func(p *Process) {
		e.NotifyAtReplace(k.Now())
	})
	k.Thread("waiter", func(p *Process) { // same evaluate phase, runs after
		p.WaitEvent(e)
		woken = k.Now()
	})
	k.Run(RunForever)
	if woken != 0 {
		t.Errorf("woken at %v, want 0 (same-instant delta)", woken)
	}
}

func TestElidedExpiresLikeRealNotification(t *testing.T) {
	// Events are not persistent: a notification that fires unobserved is
	// lost. A subscriber attaching after the recorded date must therefore
	// NOT be woken by the stale record.
	k := NewKernel("t")
	e := NewEvent(k, "e")
	k.Thread("notifier", func(p *Process) {
		e.NotifyAtReplace(k.Now()) // would fire at the next delta boundary
	})
	k.Thread("late", func(p *Process) {
		p.Wait(5 * NS) // well past the boundary
		p.WaitEvent(e) // must block forever
	})
	k.Run(RunForever)
	if b := k.Blocked(); len(b) != 1 || b[0] != "late" {
		t.Errorf("Blocked = %v, want [late]: stale elided edge delivered", b)
	}
	k.Shutdown()
}

func TestElidedReplaceKeepsOnlyLatestDate(t *testing.T) {
	// Replace semantics survive elision: the channel recomputes the
	// authoritative date, so only the last record counts.
	k := NewKernel("t")
	e := NewEvent(k, "e")
	var wakes []Time
	k.Thread("notifier", func(p *Process) {
		e.NotifyAtReplace(20 * NS)
		e.NotifyAtReplace(50 * NS) // supersedes 20ns
	})
	k.Thread("waiter", func(p *Process) {
		p.WaitEvent(e)
		wakes = append(wakes, k.Now())
	})
	k.Run(RunForever)
	if len(wakes) != 1 || wakes[0] != 50*NS {
		t.Errorf("wakes = %v, want [50ns]", wakes)
	}
}

func TestElidedKeepsIssueOrderAtSameDate(t *testing.T) {
	// Two notifications recorded for the same date, then subscribed in
	// the opposite order: they must still fire in issue order, exactly
	// as if neither had been elided (the (at, seq) determinism rule).
	k := NewKernel("t")
	e1 := NewEvent(k, "e1")
	e2 := NewEvent(k, "e2")
	var winner string
	k.Thread("notifier", func(p *Process) {
		e1.NotifyAtReplace(20 * NS) // issued first
		e2.NotifyAtReplace(20 * NS)
	})
	k.Thread("waiter", func(p *Process) {
		w := p.WaitAny(e2, e1) // subscribes e2 first
		winner = w.Name()
	})
	k.Run(RunForever)
	if winner != "e1" {
		t.Errorf("winner = %q, want e1 (issue order, not subscription order)", winner)
	}
}

func TestCancelNotifyClearsElided(t *testing.T) {
	k := NewKernel("t")
	e := NewEvent(k, "e")
	k.Thread("notifier", func(p *Process) {
		e.NotifyAtReplace(40 * NS)
		e.CancelNotify()
		if e.HasPending() {
			t.Error("HasPending = true after cancelling an elided notification")
		}
	})
	k.Thread("waiter", func(p *Process) {
		p.WaitEvent(e) // must block forever
	})
	k.Run(RunForever)
	if b := k.Blocked(); len(b) != 1 || b[0] != "waiter" {
		t.Errorf("Blocked = %v, want [waiter]", b)
	}
	k.Shutdown()
}

func TestElidedDeliveredToStaticMethod(t *testing.T) {
	// Registering a statically sensitive method is a subscription too:
	// a recorded future date must re-arm for it.
	k := NewKernel("t")
	e := NewEvent(k, "e")
	f := NewEvent(k, "kick")
	var ran []Time
	k.Thread("notifier", func(p *Process) {
		e.NotifyAtReplace(25 * NS)
		// Registration below happens at elaboration, before this runs;
		// use a second elided record created at runtime via kick.
		p.Wait(40 * NS)
		f.NotifyAtReplace(60 * NS)
	})
	k.MethodNoInit("m", func(p *Process) {
		ran = append(ran, k.Now())
	}, e)
	k.Run(RunForever)
	// e's record was made during the run while m was already subscribed?
	// No: m subscribes at elaboration, before the notifier thread runs,
	// so the 25ns replace takes the subscribed (real) path — and must
	// fire. The point: both orders deliver.
	k.MethodNoInit("m2", func(p *Process) {
		ran = append(ran, k.Now())
	}, f) // subscribes after the 60ns record was elided
	k.Run(RunForever)
	if len(ran) != 2 || ran[0] != 25*NS || ran[1] != 60*NS {
		t.Errorf("method activations = %v, want [25ns 60ns]", ran)
	}
}
