package sim

import (
	"fmt"
	"testing"
)

func TestSignalUpdateNextDelta(t *testing.T) {
	k := NewKernel("t")
	s := NewSignal[int](k, "s")
	var samePhase, nextPhase int
	k.Thread("writer", func(p *Process) {
		s.Write(42)
		samePhase = s.Read() // still old value in this evaluate phase
		p.Wait(0)
		nextPhase = s.Read()
	})
	k.Run(RunForever)
	if samePhase != 0 || nextPhase != 42 {
		t.Errorf("same phase %d (want 0), next phase %d (want 42)", samePhase, nextPhase)
	}
}

func TestSignalLastWriteWins(t *testing.T) {
	k := NewKernel("t")
	s := NewSignal[int](k, "s")
	changes := 0
	k.MethodNoInit("watch", func(p *Process) { changes++ }, s.ValueChanged())
	k.Thread("writer", func(p *Process) {
		s.Write(1)
		s.Write(2)
		s.Write(3)
		p.Wait(0)
		if s.Read() != 3 {
			t.Errorf("Read = %d, want 3", s.Read())
		}
	})
	k.Run(RunForever)
	if changes != 1 {
		t.Errorf("ValueChanged fired %d times, want 1", changes)
	}
}

func TestSignalNoChangeNoEvent(t *testing.T) {
	k := NewKernel("t")
	s := NewSignal[string](k, "s")
	changes := 0
	k.MethodNoInit("watch", func(p *Process) { changes++ }, s.ValueChanged())
	k.Thread("writer", func(p *Process) {
		s.Write("x")
		p.Wait(0)
		s.Write("x") // same value: no event
		p.Wait(0)
		s.Write("y")
	})
	k.Run(RunForever)
	if changes != 2 {
		t.Errorf("ValueChanged fired %d times, want 2 (x, y)", changes)
	}
}

func TestSignalThreadWaiter(t *testing.T) {
	k := NewKernel("t")
	s := NewSignal[bool](k, "flag")
	var woken Time = -1
	k.Thread("waiter", func(p *Process) {
		for !s.Read() {
			p.WaitEvent(s.ValueChanged())
		}
		woken = k.Now()
	})
	k.Thread("setter", func(p *Process) {
		p.Wait(30 * NS)
		s.Write(true)
	})
	k.Run(RunForever)
	if woken != 30*NS {
		t.Errorf("woken at %v, want 30ns", woken)
	}
}

func TestSignalMultipleRounds(t *testing.T) {
	k := NewKernel("t")
	s := NewSignal[int](k, "s")
	var seen []string
	k.MethodNoInit("watch", func(p *Process) {
		seen = append(seen, fmt.Sprintf("%d@%v", s.Read(), k.Now()))
	}, s.ValueChanged())
	k.Thread("writer", func(p *Process) {
		for i := 1; i <= 3; i++ {
			s.Write(i * 10)
			p.Wait(5 * NS)
		}
	})
	k.Run(RunForever)
	want := "[10@0s 20@5ns 30@10ns]"
	if got := fmt.Sprint(seen); got != want {
		t.Errorf("seen %v, want %v", got, want)
	}
	if s.Name() != "s" {
		t.Errorf("Name = %q", s.Name())
	}
}
