package sim

import (
	"testing"

	"repro/internal/metrics"
)

// The instrumented kernel must stay allocation-free: publishing Stats
// deltas into the shared registry happens at poll safe points and Step
// exit via atomic adds on pre-registered series, so Kernel.Step costs
// exactly the same 0 allocs whether metrics are enabled or not.

func stepAllocsWithSink() float64 {
	k := NewKernel("alloc-metrics")
	defer k.Shutdown()
	k.Thread("p", func(p *Process) {
		for {
			for i := 0; i < 512; i++ {
				p.Inc(NS)
			}
			p.Sync()
		}
	})
	var end Time
	step := func() { end += 2048 * NS; k.Run(end) }
	return steadyAllocs(step)
}

func TestStepZeroAllocMetricsEnabled(t *testing.T) {
	reg := metrics.NewRegistry()
	EnableMetrics(reg)
	defer EnableMetrics(nil)
	if n := stepAllocsWithSink(); n != 0 {
		t.Errorf("Step with metrics enabled: %v allocs per step, want 0", n)
	}
	// The instrumentation must also have actually counted something.
	snap := reg.Snapshot()
	var dispatches float64
	for _, f := range snap {
		if f.Name == "sim_dispatches_total" {
			for _, s := range f.Series {
				dispatches += s.Value
			}
		}
	}
	if dispatches == 0 {
		t.Error("metrics enabled but sim_dispatches_total stayed 0")
	}
}

func TestStepZeroAllocMetricsDisabled(t *testing.T) {
	EnableMetrics(nil)
	if n := stepAllocsWithSink(); n != 0 {
		t.Errorf("Step with metrics disabled: %v allocs per step, want 0", n)
	}
}
