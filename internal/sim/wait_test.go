package sim

import (
	"fmt"
	"testing"
)

func TestWaitAnyFirstEventWins(t *testing.T) {
	k := NewKernel("t")
	e1 := NewEvent(k, "e1")
	e2 := NewEvent(k, "e2")
	var winner string
	var at Time
	k.Thread("waiter", func(p *Process) {
		e := p.WaitAny(e1, e2)
		winner = e.Name()
		at = k.Now()
	})
	k.Thread("driver", func(p *Process) {
		e2.NotifyDelayed(10 * NS)
		e1.NotifyDelayed(30 * NS)
	})
	k.Run(RunForever)
	if winner != "e2" || at != 10*NS {
		t.Errorf("woken by %q at %v, want e2 at 10ns", winner, at)
	}
}

func TestWaitAnyStaleEntryDropped(t *testing.T) {
	// After e2 wins a WaitAny, a later notify of e1 must NOT wake the
	// thread spuriously out of an unrelated wait.
	k := NewKernel("t")
	e1 := NewEvent(k, "e1")
	e2 := NewEvent(k, "e2")
	e3 := NewEvent(k, "e3")
	var log []string
	k.Thread("waiter", func(p *Process) {
		w := p.WaitAny(e1, e2)
		log = append(log, fmt.Sprintf("any:%s@%v", w.Name(), k.Now()))
		p.WaitEvent(e3)
		log = append(log, fmt.Sprintf("e3@%v", k.Now()))
	})
	k.Thread("driver", func(p *Process) {
		p.Wait(10 * NS)
		e2.Notify()
		p.Wait(10 * NS)
		e1.Notify() // stale WaitAny entry: must be ignored
		p.Wait(10 * NS)
		e3.Notify()
	})
	k.Run(RunForever)
	want := "[any:e2@10ns e3@30ns]"
	if got := fmt.Sprint(log); got != want {
		t.Errorf("log = %v, want %v", got, want)
	}
}

func TestWaitAnySameInstant(t *testing.T) {
	// Both events notified in the same evaluate phase: exactly one wake,
	// attributed to the first notification.
	k := NewKernel("t")
	e1 := NewEvent(k, "e1")
	e2 := NewEvent(k, "e2")
	wakes := 0
	var winner string
	k.Thread("waiter", func(p *Process) {
		w := p.WaitAny(e1, e2)
		winner = w.Name()
		wakes++
	})
	k.Thread("driver", func(p *Process) {
		e1.Notify()
		e2.Notify()
	})
	k.Run(RunForever)
	if wakes != 1 || winner != "e1" {
		t.Errorf("wakes = %d winner = %q, want 1, e1", wakes, winner)
	}
}

func TestWaitAnyNoEventsPanics(t *testing.T) {
	k := NewKernel("t")
	caught := false
	k.Thread("p", func(p *Process) {
		defer func() {
			if recover() != nil {
				caught = true
			}
		}()
		p.WaitAny()
	})
	k.Run(RunForever)
	if !caught {
		t.Error("WaitAny() with no events did not panic")
	}
}

func TestWaitEventTimeoutEventWins(t *testing.T) {
	k := NewKernel("t")
	e := NewEvent(k, "e")
	var ok bool
	var at Time
	k.Thread("waiter", func(p *Process) {
		ok = p.WaitEventTimeout(e, 100*NS)
		at = k.Now()
	})
	k.Thread("driver", func(p *Process) {
		p.Wait(20 * NS)
		e.Notify()
	})
	k.Run(RunForever)
	if !ok || at != 20*NS {
		t.Errorf("got ok=%v at %v, want true at 20ns", ok, at)
	}
	// The cancelled timeout at 120ns must not advance time.
	if k.Now() != 20*NS {
		t.Errorf("final Now = %v, want 20ns (timeout cancelled)", k.Now())
	}
}

func TestWaitEventTimeoutExpires(t *testing.T) {
	k := NewKernel("t")
	e := NewEvent(k, "e")
	var ok bool
	var at Time
	k.Thread("waiter", func(p *Process) {
		ok = p.WaitEventTimeout(e, 40*NS)
		at = k.Now()
	})
	k.Run(RunForever)
	if ok || at != 40*NS {
		t.Errorf("got ok=%v at %v, want false at 40ns", ok, at)
	}
}

func TestWaitEventTimeoutStaleEventEntry(t *testing.T) {
	// The event fires after the timeout expired: the stale waiter entry
	// must not wake the thread out of a later wait.
	k := NewKernel("t")
	e := NewEvent(k, "e")
	var log []string
	k.Thread("waiter", func(p *Process) {
		ok := p.WaitEventTimeout(e, 10*NS)
		log = append(log, fmt.Sprintf("timeout ok=%v@%v", ok, k.Now()))
		p.Wait(50 * NS)
		log = append(log, fmt.Sprintf("resumed@%v", k.Now()))
	})
	k.Thread("driver", func(p *Process) {
		p.Wait(30 * NS)
		e.Notify() // after the timeout: must be ignored by waiter
	})
	k.Run(RunForever)
	want := "[timeout ok=false@10ns resumed@60ns]"
	if got := fmt.Sprint(log); got != want {
		t.Errorf("log = %v, want %v", got, want)
	}
}

func TestWaitEventTimeoutZero(t *testing.T) {
	// A zero timeout expires at the next delta unless the event fires
	// in the current one.
	k := NewKernel("t")
	e := NewEvent(k, "never")
	var ok bool
	k.Thread("waiter", func(p *Process) {
		ok = p.WaitEventTimeout(e, 0)
	})
	k.Run(RunForever)
	if ok {
		t.Error("zero timeout reported event fired")
	}
	if k.Now() != 0 {
		t.Errorf("Now = %v, want 0", k.Now())
	}
}

func TestWaitAnyRepeatedRounds(t *testing.T) {
	// A consumer multiplexing two event sources over many rounds. At
	// t=60ns both drivers notify in the same evaluate phase: the mux is
	// woken by the first (d2 runs first — its wakeup was scheduled
	// earlier), and the second notification is lost because events are
	// not persistent (standard SystemC semantics); the mux then misses
	// its sixth round and ends blocked.
	k := NewKernel("t")
	e1 := NewEvent(k, "e1")
	e2 := NewEvent(k, "e2")
	var got []string
	k.Thread("mux", func(p *Process) {
		for i := 0; i < 6; i++ {
			w := p.WaitAny(e1, e2)
			got = append(got, fmt.Sprintf("%s@%v", w.Name(), k.Now()))
		}
	})
	k.Thread("d1", func(p *Process) {
		for i := 0; i < 3; i++ {
			p.Wait(20 * NS)
			e1.Notify()
		}
	})
	k.Thread("d2", func(p *Process) {
		for i := 0; i < 3; i++ {
			p.Wait(30 * NS)
			e2.Notify()
		}
	})
	k.Run(RunForever)
	want := "[e1@20ns e2@30ns e1@40ns e2@60ns e2@90ns]"
	if fmt.Sprint(got) != want {
		t.Errorf("got %v, want %v", got, want)
	}
	if b := k.Blocked(); len(b) != 1 || b[0] != "mux" {
		t.Errorf("Blocked = %v, want [mux]", b)
	}
	k.Shutdown()
}
