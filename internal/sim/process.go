package sim

import "fmt"

// killSentinel is the panic value used to unwind a killed thread goroutine.
type killPanic struct{}

// Process is a simulation process: either a thread (SC_THREAD analogue, a
// goroutine that may block in Wait/WaitEvent/Sync) or a method (SC_METHOD
// analogue, a run-to-completion callback that must not block).
//
// Every process carries a local-time offset for temporal decoupling
// (paper §II): LocalTime() == kernel.Now() + offset. Inc advances the
// offset cheaply; Sync (threads only) discharges it with a real Wait. For
// methods the offset is reset at each activation and is consumed by delayed
// event notifications (paper §IV-C network interfaces).
type Process struct {
	k        *Kernel
	name     string
	id       int
	isMethod bool
	body     func(*Process)

	// Thread coroutine handoff. The scheduler sends on resume and then
	// receives on yield; the goroutine does the converse.
	resume   chan struct{}
	yield    chan struct{}
	killed   bool
	panicVal any

	terminated bool
	queued     bool // in the runnable queue

	// Method sensitivity.
	static   []*Event
	dynArmed bool   // next activation overridden by NextTrigger
	trigGen  uint64 // invalidates stale dynamic triggers

	// offset is the temporal-decoupling local time offset.
	offset Time

	// waitSeq numbers thread wait rounds; event waiter entries carry the
	// sequence they were registered under, so entries from a completed
	// round (e.g. the losing events of a WaitAny) are dropped when their
	// event later fires.
	waitSeq uint64
	// wokenBy records which event ended the current wait round.
	wokenBy *Event

	// waitingOn is the event list this thread is parked on, for cleanup.
	waitingOn *Event

	// dispatches counts activations of this process (thread dispatches
	// plus method activations). It is the measured compute weight a
	// profile-guided partitioner balances shards by: dispatch counts are
	// dated-behaviour facts, identical across schedules and shardings.
	dispatches uint64

	// wake is the process's single reusable timed-queue entry: a thread
	// has at most one live wakeup (Wait, Sync or a WaitEventTimeout
	// timeout), a method at most one live timed trigger, so every timed
	// activation reuses this embedded entry — zero allocation (see
	// timedq.go). A stale queued entry (a lost timeout, a superseded
	// trigger) is simply rescheduled in place.
	wake timedEntry
}

// Thread registers a thread process. fn runs in its own goroutine but the
// kernel guarantees only one process executes at a time. The process is
// runnable at time zero.
func (k *Kernel) Thread(name string, fn func(p *Process)) *Process {
	p := k.newProcess(name, fn, false)
	k.runnableAdd(p)
	go p.threadMain()
	return p
}

// Method registers a method process with an optional static sensitivity
// list. Method bodies run to completion on the scheduler's stack: no Wait,
// WaitEvent or Sync. By default the method is activated once at time zero
// (like SystemC without dont_initialize); use MethodNoInit to suppress
// that.
func (k *Kernel) Method(name string, fn func(p *Process), sensitive ...*Event) *Process {
	p := k.methodNoRun(name, fn, sensitive...)
	k.runnableAdd(p)
	return p
}

// MethodNoInit is Method without the initial time-zero activation.
func (k *Kernel) MethodNoInit(name string, fn func(p *Process), sensitive ...*Event) *Process {
	return k.methodNoRun(name, fn, sensitive...)
}

func (k *Kernel) methodNoRun(name string, fn func(p *Process), sensitive ...*Event) *Process {
	p := k.newProcess(name, fn, true)
	for _, e := range sensitive {
		e.addStatic(p)
	}
	p.static = append(p.static, sensitive...)
	return p
}

func (k *Kernel) newProcess(name string, fn func(p *Process), isMethod bool) *Process {
	k.nProcID++
	p := &Process{
		k:        k,
		name:     name,
		id:       k.nProcID,
		isMethod: isMethod,
		body:     fn,
	}
	if !isMethod {
		p.resume = make(chan struct{})
		p.yield = make(chan struct{})
	}
	p.wake.proc = p
	p.wake.index = -1
	k.procs = append(k.procs, p)
	return p
}

func (p *Process) threadMain() {
	<-p.resume
	if p.killed {
		p.terminated = true
		p.yield <- struct{}{}
		return
	}
	defer func() {
		if r := recover(); r != nil {
			if _, isKill := r.(killPanic); !isKill {
				// Surface user panics to the Run caller.
				p.panicVal = fmt.Sprintf("sim: process %q panicked: %v", p.name, r)
			}
		}
		p.terminated = true
		p.yield <- struct{}{}
	}()
	p.body(p)
}

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// ID returns the process's unique (per kernel) identifier.
func (p *Process) ID() int { return p.id }

// Kernel returns the owning kernel.
func (p *Process) Kernel() *Kernel { return p.k }

// IsMethod reports whether p is a run-to-completion method process.
func (p *Process) IsMethod() bool { return p.isMethod }

// Terminated reports whether the process body has returned.
func (p *Process) Terminated() bool { return p.terminated }

// Dispatches returns how many times the process has been activated
// (coroutine handoffs for threads, run-to-completion calls for methods).
// The count depends only on the model's dated behaviour, so it is the
// same under any partitioning or scheduler.
func (p *Process) Dispatches() uint64 { return p.dispatches }

// park hands control back to the scheduler and blocks until redispatched.
// Waking invalidates the wait round: entries this round registered on
// events that did not fire become stale.
func (p *Process) park() {
	p.yield <- struct{}{}
	<-p.resume
	p.waitSeq++
	if p.killed {
		panic(killPanic{})
	}
}

func (p *Process) checkThreadContext(op string) {
	if p.isMethod {
		panic(fmt.Sprintf("sim: %s called from method process %q", op, p.name))
	}
	if p.k.current != p {
		panic(fmt.Sprintf("sim: %s called on %q from outside its own context", op, p.name))
	}
}

// Wait suspends the thread for duration d of simulated time (one context
// switch). Wait(0) yields until the next delta cycle.
func (p *Process) Wait(d Time) {
	p.checkThreadContext("Wait")
	p.k.scheduleWake(p, d)
	p.park()
}

// WaitEvent suspends the thread until e is notified (one context switch).
func (p *Process) WaitEvent(e *Event) {
	p.checkThreadContext("WaitEvent")
	e.addWaiter(p)
	p.waitingOn = e
	p.park()
	p.waitingOn = nil
}

// WaitAny suspends the thread until any of the events is notified and
// returns the one that woke it (the earliest if several fire in the same
// instant). SystemC's wait(e1 | e2 | ...).
func (p *Process) WaitAny(events ...*Event) *Event {
	p.checkThreadContext("WaitAny")
	if len(events) == 0 {
		panic(fmt.Sprintf("sim: %s: WaitAny with no events", p.name))
	}
	for _, e := range events {
		e.addWaiter(p)
	}
	p.wokenBy = nil
	p.park()
	return p.wokenBy
}

// WaitEventTimeout suspends the thread until e is notified or d elapses,
// whichever comes first; it reports whether the event fired.
// SystemC's wait(d, e).
func (p *Process) WaitEventTimeout(e *Event, d Time) bool {
	p.checkThreadContext("WaitEventTimeout")
	if d < 0 {
		panic(fmt.Sprintf("sim: %s: WaitEventTimeout with negative duration %v", p.name, d))
	}
	e.addWaiter(p)
	k := p.k
	p.wake.evWait = true
	p.wake.waitGen = p.waitSeq
	k.scheduleEntry(&p.wake, k.now+d)
	p.wokenBy = nil
	p.park()
	if p.wokenBy == e {
		k.timed.remove(&p.wake) // the timeout lost the race
		return true
	}
	return false
}

// Inc advances the process's local time by d without a context switch (the
// paper's inc). Valid for threads and methods.
func (p *Process) Inc(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s: Inc with negative duration %v", p.name, d))
	}
	p.offset += d
}

// LocalTime returns the process's local date (the paper's
// local_time_stamp): the global date plus the decoupling offset.
func (p *Process) LocalTime() Time { return p.k.now + p.offset }

// LocalOffset returns the decoupling offset (local date minus global date).
func (p *Process) LocalOffset() Time { return p.offset }

// AdvanceLocalTo raises the local date to t if t is in the local future.
// The Smart FIFO uses this to lift a reader to a cell's insertion date or a
// writer to a cell's freeing date.
func (p *Process) AdvanceLocalTo(t Time) {
	if t > p.LocalTime() {
		p.offset = t - p.k.now
	}
}

// SetLocalDate sets the local date to exactly t, clamped at the global
// date (a local date cannot be in the global past). Unlike AdvanceLocalTo
// it can lower the date; it exists for channels that park a decoupled
// process and must restore its absolute local date afterwards — the
// decoupling offset is relative to a global date that moved during the
// park.
func (p *Process) SetLocalDate(t Time) {
	if t < p.k.now {
		t = p.k.now
	}
	p.offset = t - p.k.now
}

// Synchronized reports whether the local date equals the global date.
func (p *Process) Synchronized() bool { return p.offset == 0 }

// Sync discharges the decoupling offset: it waits until the global date
// catches up with the local date (one context switch if the offset was
// non-zero). Threads only.
func (p *Process) Sync() {
	p.checkThreadContext("Sync")
	if p.offset == 0 {
		return
	}
	d := p.offset
	p.offset = 0
	p.k.scheduleWake(p, d)
	p.park()
}

// NextTrigger overrides the method's sensitivity for its next activation:
// it will be activated after duration d (next delta cycle if d == 0),
// ignoring its static sensitivity until then. Methods only, during their
// own activation.
func (p *Process) NextTrigger(d Time) {
	p.checkMethodContext("NextTrigger")
	if d < 0 {
		panic(fmt.Sprintf("sim: %s: NextTrigger with negative duration %v", p.name, d))
	}
	p.trigGen++
	p.dynArmed = true
	if d == 0 {
		p.k.deltaProcs = append(p.k.deltaProcs, procRef{p: p, gen: p.trigGen})
		return
	}
	k := p.k
	p.wake.evWait = false
	p.wake.methodGen = p.trigGen
	k.scheduleEntry(&p.wake, k.now+d)
}

// NextTriggerEvent overrides the method's sensitivity for its next
// activation: it will be activated by the next notification of e only.
func (p *Process) NextTriggerEvent(e *Event) {
	p.checkMethodContext("NextTriggerEvent")
	p.trigGen++
	p.dynArmed = true
	e.addDynMethod(p, p.trigGen)
}

func (p *Process) checkMethodContext(op string) {
	if !p.isMethod {
		panic(fmt.Sprintf("sim: %s called from thread process %q", op, p.name))
	}
	if p.k.current != p {
		panic(fmt.Sprintf("sim: %s called on %q from outside its own context", op, p.name))
	}
}
