package sim

import (
	"testing"
	"time"
)

// wedgedKernel builds a delta-cycle livelock: two threads ping-ponging
// zero-delay notifications at date 0, so Run never returns on its own.
func wedgedKernel() *Kernel {
	k := NewKernel("wedge")
	ping := NewEvent(k, "ping")
	pong := NewEvent(k, "pong")
	k.Thread("a", func(p *Process) {
		for {
			ping.NotifyDelta()
			p.WaitEvent(pong)
		}
	})
	k.Thread("b", func(p *Process) {
		for {
			p.WaitEvent(ping)
			pong.NotifyDelta()
		}
	})
	return k
}

// TestInterruptStopsLivelock: an interrupt from another goroutine makes
// a livelocked Run return with consistent state, and the interrupt
// stays latched until cleared.
func TestInterruptStopsLivelock(t *testing.T) {
	k := wedgedKernel()
	defer k.Shutdown()
	go func() {
		// Let the kernel spin long enough to cross several poll points.
		for k.Beat() < 3 {
			time.Sleep(time.Millisecond)
		}
		k.Interrupt()
	}()
	done := make(chan struct{})
	go func() { k.Run(RunForever); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("interrupt did not stop the livelocked run")
	}
	if !k.Interrupted() {
		t.Error("interrupt flag should stay latched after return")
	}
	if k.Now() != 0 {
		t.Errorf("livelock advanced time to %v", k.Now())
	}
	// Latched: another Step returns immediately without dispatching.
	beat := k.Beat()
	k.Step(RunForever)
	if got := k.Beat(); got > beat+1 {
		t.Errorf("latched interrupt still dispatched (beat %d -> %d)", beat, got)
	}
}

// TestClearInterruptResumes: interrupting mid-run leaves the model
// resumable — clearing the flag and stepping again completes the run
// exactly as an uninterrupted one would.
func TestClearInterruptResumes(t *testing.T) {
	mk := func() (*Kernel, *[]Time) {
		k := NewKernel("resume")
		var dates []Time
		k.Thread("p", func(p *Process) {
			for i := 0; i < 100; i++ {
				dates = append(dates, k.Now())
				p.Wait(NS)
			}
		})
		return k, &dates
	}

	ref, refDates := mk()
	ref.Run(RunForever)

	k, dates := mk()
	k.SetInterruptHook(func() bool { return k.Now() >= 10*NS })
	k.Run(RunForever)
	if !k.Interrupted() {
		t.Fatal("step-budget hook did not latch an interrupt")
	}
	if n := len(*dates); n == 0 || n >= 100 {
		t.Fatalf("interrupted run dispatched %d/100 iterations", n)
	}
	k.ClearInterrupt()
	k.SetInterruptHook(nil)
	k.Run(RunForever)
	if len(*dates) != len(*refDates) {
		t.Fatalf("resumed run: %d dates, want %d", len(*dates), len(*refDates))
	}
	for i := range *dates {
		if (*dates)[i] != (*refDates)[i] {
			t.Fatalf("date %d drifted after resume: %v != %v", i, (*dates)[i], (*refDates)[i])
		}
	}
}

// TestBeaconPublishesTime: Beacon tracks simulated time across polls
// (readable cross-goroutine), while a livelock freezes it at one date
// even as Beat keeps climbing — the discrimination the stall watchdog
// relies on.
func TestBeaconPublishesTime(t *testing.T) {
	k := NewKernel("beacon")
	k.Thread("p", func(p *Process) {
		for i := 0; i < 10; i++ {
			p.Wait(10 * NS)
		}
	})
	k.Run(RunForever)
	if got, want := k.Beacon(), k.Now(); got != want {
		t.Errorf("Beacon = %v after run, want %v", got, want)
	}
	if k.Beat() == 0 {
		t.Error("Beat stayed zero across a full run")
	}

	w := wedgedKernel()
	defer w.Shutdown()
	w.SetInterruptHook(func() bool { return w.Beat() > 1000 })
	w.Run(RunForever)
	if w.Beacon() != 0 {
		t.Errorf("livelocked Beacon = %v, want 0", w.Beacon())
	}
	if w.Beat() <= 1000 {
		t.Errorf("livelocked Beat = %d, want climbing past the budget", w.Beat())
	}
}
