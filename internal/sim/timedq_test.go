package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// checkHeapInvariants verifies the 4-ary heap property and the index
// bookkeeping the in-place operations rely on.
func checkHeapInvariants(t *testing.T, q *timedQueue) {
	t.Helper()
	for i, te := range q.h {
		if te.index != i {
			t.Fatalf("entry at slot %d has index %d", i, te.index)
		}
		if i > 0 {
			parent := (i - 1) / 4
			if entryLess(te, q.h[parent]) {
				t.Fatalf("heap violation: slot %d (%v,%d) < parent %d (%v,%d)",
					i, te.at, te.seq, parent, q.h[parent].at, q.h[parent].seq)
			}
		}
	}
}

// oracle is a plain sorted-slice model of the queue.
type oracle []*timedEntry

func (o oracle) sorted() []*timedEntry {
	s := append([]*timedEntry(nil), o...)
	sort.SliceStable(s, func(i, j int) bool { return entryLess(s[i], s[j]) })
	return s
}

func (o *oracle) delete(te *timedEntry) {
	for i, e := range *o {
		if e == te {
			*o = append((*o)[:i], (*o)[i+1:]...)
			return
		}
	}
}

// TestTimedQueueProperty drives random push/pop/remove/reschedule sequences
// against the oracle, checking peek, pop order (including the (at, seq)
// FIFO tie-break) and structural invariants after every step.
func TestTimedQueueProperty(t *testing.T) {
	for trial := int64(0); trial < 30; trial++ {
		rng := rand.New(rand.NewSource(trial))
		var q timedQueue
		var o oracle
		var seq uint64
		newEntry := func() *timedEntry {
			seq++
			// A narrow date range forces plenty of seq tie-breaks.
			return &timedEntry{at: Time(rng.Intn(16)), seq: seq, index: -1}
		}
		for step := 0; step < 400; step++ {
			switch op := rng.Intn(10); {
			case op < 4: // push
				te := newEntry()
				q.push(te)
				o = append(o, te)
			case op < 6: // pop
				if q.len() == 0 {
					if q.peek() != nil {
						t.Fatal("peek on empty queue != nil")
					}
					continue
				}
				want := o.sorted()[0]
				got := q.pop()
				if got != want {
					t.Fatalf("trial %d step %d: pop = (%v,%d), oracle min (%v,%d)",
						trial, step, got.at, got.seq, want.at, want.seq)
				}
				if got.index != -1 {
					t.Fatalf("popped entry keeps index %d", got.index)
				}
				o.delete(got)
			case op < 8: // remove a random live entry (in-place cancel)
				if len(o) == 0 {
					// Removing a non-queued entry must be a no-op.
					q.remove(&timedEntry{index: -1})
					continue
				}
				te := o[rng.Intn(len(o))]
				q.remove(te)
				if te.index != -1 {
					t.Fatalf("removed entry keeps index %d", te.index)
				}
				q.remove(te) // second remove: no-op
				o.delete(te)
			default: // reschedule a random live entry in place
				if len(o) == 0 {
					continue
				}
				te := o[rng.Intn(len(o))]
				seq++
				te.at = Time(rng.Intn(16))
				te.seq = seq
				q.fix(te)
			}
			checkHeapInvariants(t, &q)
			if q.len() != len(o) {
				t.Fatalf("trial %d step %d: len %d != oracle %d", trial, step, q.len(), len(o))
			}
			if q.len() > 0 {
				want := o.sorted()[0]
				if got := q.peek(); got != want {
					t.Fatalf("trial %d step %d: peek = (%v,%d), oracle min (%v,%d)",
						trial, step, got.at, got.seq, want.at, want.seq)
				}
			}
		}
		// Drain: the queue must yield exactly the oracle's sorted order.
		want := o.sorted()
		for i, w := range want {
			got := q.pop()
			if got != w {
				t.Fatalf("trial %d drain %d: pop = (%v,%d), want (%v,%d)",
					trial, i, got.at, got.seq, w.at, w.seq)
			}
		}
		if q.len() != 0 || q.peek() != nil {
			t.Fatalf("trial %d: queue not empty after drain", trial)
		}
	}
}

// TestScheduleEntryReschedulesInPlace covers the kernel-level primitive: an
// already-queued entry moves instead of being duplicated, and gets a fresh
// sequence number (a reschedule is a new notification for tie-breaks).
func TestScheduleEntryReschedulesInPlace(t *testing.T) {
	k := NewKernel("t")
	a := &timedEntry{index: -1}
	b := &timedEntry{index: -1}
	k.scheduleEntry(a, 50*NS)
	k.scheduleEntry(b, 40*NS)
	if got := k.timed.peek(); got != b {
		t.Fatalf("peek = %v, want b@40ns", got.at)
	}
	k.scheduleEntry(a, 10*NS) // in place, ahead of b
	if k.timed.len() != 2 {
		t.Fatalf("len = %d after reschedule, want 2", k.timed.len())
	}
	if got := k.timed.peek(); got != a || got.at != 10*NS {
		t.Fatalf("peek after reschedule = %v@%v, want a@10ns", got, got.at)
	}
	k.scheduleEntry(a, 40*NS) // same date as b, but later seq: b first
	if got := k.timed.pop(); got != b {
		t.Fatal("same-date tie-break: rescheduled entry must fire after b")
	}
	if got := k.timed.pop(); got != a {
		t.Fatal("rescheduled entry lost")
	}
}
