package sim

import "fmt"

// Stats aggregates kernel activity counters. The Fig. 5 reproduction reports
// ContextSwitches alongside wall time: the paper's whole argument is that
// simulation speed is dominated by the number of context switches, which the
// Smart FIFO removes.
type Stats struct {
	// ContextSwitches counts thread process dispatches. Each dispatch is a
	// full coroutine handoff (two channel operations and a goroutine
	// switch), the Go analogue of a SystemC thread context switch.
	ContextSwitches uint64
	// MethodActivations counts run-to-completion method dispatches. These
	// are plain function calls: the cheap alternative the paper uses for
	// NoC routers.
	MethodActivations uint64
	// DeltaCycles counts evaluate phases.
	DeltaCycles uint64
	// TimedSteps counts time advances.
	TimedSteps uint64
	// Notifications counts event notifications of any kind. Elided
	// notifications (NotifyAtReplace on an event with no subscribers) are
	// not counted until they materialize.
	Notifications uint64
}

// Kernel is a discrete-event simulator instance. Create one with NewKernel,
// register processes with Thread and Method, then call Run.
//
// All kernel and model state is owned by the single running process (or the
// caller of Run, between dispatches); there is no concurrent access and
// hence no locking. The coroutine handoff channels provide the necessary
// happens-before edges. Distinct kernels share nothing and may run
// concurrently: a partitioned simulation drives one kernel per shard
// through Step under a conservative coordinator (internal/par), with each
// shard's clock advancing independently between barriers.
//
// The kernel's hot paths — Wait, Sync, delayed notification, the
// evaluate/delta/timed loop — are allocation-free in steady state: timed
// entries are embedded in their owning Process or Event (see timedq.go) and
// every kernel queue recycles its backing array.
type Kernel struct {
	name string
	now  Time

	procs   []*Process
	nProcID int

	// runnable is the evaluate-phase FIFO queue. head indexes the next
	// process to dispatch; the slice is compacted when drained.
	runnable []*Process
	head     int

	// deltaProcs and deltaEvents are activated at the next delta cycle.
	// The spare slices recycle the backing arrays across promotions so the
	// steady state never allocates.
	deltaProcs       []procRef
	deltaEvents      []*Event
	spareDeltaProcs  []procRef
	spareDeltaEvents []*Event

	// deltaPromos counts delta-notification (promotion) phases. Together
	// with now it identifies the boundary at which a pending delta
	// notification fires; Event elision uses it to expire recorded
	// notifications exactly where the real ones would have been lost.
	deltaPromos uint64

	timed    timedQueue
	timedSeq uint64

	current *Process
	running bool

	// is holds the cross-goroutine interrupt/beacon state (see
	// interrupt.go); everything above is owned by the running process or
	// the Run caller.
	is interruptState

	stats Stats

	// msink, when non-nil, receives deltas of stats at poll safe points
	// (metrics.go); mpub is the last published snapshot. Captured at
	// construction, so EnableMetrics never races a running kernel.
	msink *MetricSink
	mpub  Stats
}

// NewKernel returns an empty kernel.
func NewKernel(name string) *Kernel {
	return &Kernel{name: name, msink: defaultSink.Load()}
}

// Name returns the kernel's name.
func (k *Kernel) Name() string { return k.name }

// Now returns the current global simulated time (sc_time_stamp in the
// paper).
func (k *Kernel) Now() Time { return k.now }

// Current returns the process being dispatched, or nil between dispatches.
// Channels use this to attribute accesses to a process and read its local
// date, mirroring the paper's map from process handles to local dates.
func (k *Kernel) Current() *Process { return k.current }

// Stats returns a copy of the kernel activity counters.
func (k *Kernel) Stats() Stats { return k.stats }

// Processes returns all registered processes in creation order.
func (k *Kernel) Processes() []*Process { return k.procs }

// runnableAdd queues p for the current evaluate phase; it reports whether
// p was actually added (false if already queued or terminated).
func (k *Kernel) runnableAdd(p *Process) bool {
	if p.terminated || p.queued {
		return false
	}
	p.queued = true
	k.runnable = append(k.runnable, p)
	return true
}

func (k *Kernel) runnablePop() *Process {
	if k.head >= len(k.runnable) {
		return nil
	}
	p := k.runnable[k.head]
	k.head++
	if k.head == len(k.runnable) {
		k.runnable = k.runnable[:0]
		k.head = 0
	}
	return p
}

// procRef is a queued process activation. For method processes, gen must
// still match the method's trigger generation when the activation is
// promoted, so that re-armed or already-fired dynamic triggers are
// dropped. For thread processes registered on events (evWait), gen is the
// thread's wait sequence: entries left on the losing events of a WaitAny
// or a timed-out WaitEventTimeout become stale once the thread wakes.
type procRef struct {
	p      *Process
	gen    uint64
	evWait bool
}

// valid reports whether the queued activation is still live.
func (r procRef) valid() bool {
	if r.p.isMethod {
		return r.p.dynArmed && r.gen == r.p.trigGen
	}
	return !r.evWait || r.gen == r.p.waitSeq
}

// scheduleWake arranges for thread p to become runnable after d. d == 0
// means the next delta cycle. The timed case reuses the thread's embedded
// wake entry: no allocation.
func (k *Kernel) scheduleWake(p *Process, d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s: Wait with negative duration %v", p.name, d))
	}
	if d == 0 {
		k.deltaProcs = append(k.deltaProcs, procRef{p: p})
		return
	}
	p.wake.evWait = false
	k.scheduleEntry(&p.wake, k.now+d)
}

// dispatch runs one process for one activation.
func (k *Kernel) dispatch(p *Process) {
	p.queued = false
	if p.terminated {
		return
	}
	k.current = p
	p.dispatches++
	if p.isMethod {
		k.stats.MethodActivations++
		p.dynArmed = false
		p.trigGen++
		p.offset = 0
		p.body(p)
	} else {
		k.stats.ContextSwitches++
		p.resume <- struct{}{}
		<-p.yield
		if p.panicVal != nil {
			v := p.panicVal
			p.panicVal = nil
			k.current = nil
			panic(v)
		}
	}
	k.current = nil
}

// RunForever is the sentinel limit for Run: simulate until no activity
// remains.
const RunForever Time = -1

// Run advances the simulation. With limit == RunForever it runs until no
// runnable process, delta notification or timed notification remains (model
// quiescence, which includes deadlock: see Blocked). With limit >= 0 it
// stops once the next timed activity lies strictly beyond limit, leaving Now
// at limit. Run may be called repeatedly to resume.
func (k *Kernel) Run(limit Time) {
	k.Step(limit)
}

// NextEventAt reports the date of the kernel's earliest pending activity:
// Now if a process is runnable or a delta notification is pending, else the
// date of the earliest timed notification. ok is false when the kernel is
// quiescent (nothing would run). Shard coordinators use it to decide
// whether a kernel has work inside a time horizon without dispatching
// anything.
func (k *Kernel) NextEventAt() (at Time, ok bool) {
	if k.head < len(k.runnable) || len(k.deltaProcs) > 0 || len(k.deltaEvents) > 0 {
		return k.now, true
	}
	if te := k.timed.peek(); te != nil {
		return te.at, true
	}
	return 0, false
}

// Step is the resumable core of the evaluate/delta/timed loop: it advances
// the simulation exactly like Run(limit) — processing every runnable
// process, delta notification and timed notification dated at or before
// limit (no bound when limit == RunForever) — and reports whether any
// activity was dispatched. Each kernel is single-threaded, but distinct
// kernels may Step concurrently; the shard coordinator (internal/par) calls
// Step once per barrier round with the shard's conservative horizon as the
// limit.
//
// Step polls the interrupt flag (see Interrupt) at safe points — phase
// boundaries and every few dozen dispatches — and returns early when it
// is latched, leaving the kernel consistent and resumable.
func (k *Kernel) Step(limit Time) bool {
	if k.running {
		panic("sim: kernel already running (re-entrant Run or Step)")
	}
	k.running = true
	defer func() {
		k.running = false
		// Flush the counter deltas accumulated since the last poll, so
		// a returned Step leaves the shared metrics exact.
		if k.msink != nil {
			k.publishMetrics()
		}
	}()
	did := false
	for {
		if k.poll() {
			return did
		}
		// Evaluate phase: drain the runnable queue. Immediate
		// notifications extend the queue within the same phase.
		if k.head < len(k.runnable) {
			k.stats.DeltaCycles++
			did = true
			for {
				p := k.runnablePop()
				if p == nil {
					break
				}
				k.dispatch(p)
				if k.pollDispatch() {
					return did
				}
			}
		}
		// Delta notification phase.
		if len(k.deltaProcs) > 0 || len(k.deltaEvents) > 0 {
			k.deltaPromos++
			procs, evs := k.deltaProcs, k.deltaEvents
			k.deltaProcs = k.spareDeltaProcs[:0]
			k.deltaEvents = k.spareDeltaEvents[:0]
			for _, r := range procs {
				if r.valid() {
					k.runnableAdd(r.p)
				}
			}
			for _, e := range evs {
				if e.deltaPending {
					e.deltaPending = false
					did = true
					e.fire()
				}
			}
			k.spareDeltaProcs = procs[:0]
			k.spareDeltaEvents = evs[:0]
			continue
		}
		// Timed notification phase: advance to the earliest date.
		te := k.timed.peek()
		if te == nil {
			return did
		}
		if limit >= 0 && te.at > limit {
			if k.now < limit {
				k.now = limit
			}
			return did
		}
		k.now = te.at
		k.stats.TimedSteps++
		did = true
		for {
			te := k.timed.peek()
			if te == nil || te.at != k.now {
				break
			}
			k.timed.pop()
			if te.proc != nil {
				if te.proc.isMethod {
					if (procRef{p: te.proc, gen: te.methodGen}).valid() {
						k.runnableAdd(te.proc)
					}
				} else if !te.evWait || te.waitGen == te.proc.waitSeq {
					k.runnableAdd(te.proc)
				}
			} else {
				ev := te.ev
				ev.timedPending = false
				ev.fire()
			}
		}
	}
}

// Blocked returns the names of live thread processes that are neither
// terminated nor runnable — after Run(RunForever) returns, these are
// deadlocked (e.g. blocked forever on an empty FIFO).
func (k *Kernel) Blocked() []string {
	var out []string
	for _, p := range k.procs {
		if !p.isMethod && !p.terminated && !p.queued {
			out = append(out, p.name)
		}
	}
	return out
}

// Shutdown force-terminates every live thread process so their goroutines
// exit. Call it when discarding a kernel whose model did not run to
// completion (benchmarks and tests create many kernels; without Shutdown,
// parked goroutines would leak). The kernel must not be running.
func (k *Kernel) Shutdown() {
	if k.running {
		panic("sim: Shutdown called while running")
	}
	for _, p := range k.procs {
		if p.isMethod || p.terminated {
			continue
		}
		p.killed = true
		p.resume <- struct{}{}
		<-p.yield
	}
}
