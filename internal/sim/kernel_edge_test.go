package sim

import (
	"testing"
)

func TestRunReentrancyPanics(t *testing.T) {
	k := NewKernel("t")
	caught := false
	k.Thread("p", func(p *Process) {
		defer func() {
			if recover() != nil {
				caught = true
			}
		}()
		k.Run(RunForever)
	})
	k.Run(RunForever)
	if !caught {
		t.Error("re-entrant Run did not panic")
	}
}

func TestShutdownTwice(t *testing.T) {
	k := NewKernel("t")
	e := NewEvent(k, "never")
	k.Thread("p", func(p *Process) { p.WaitEvent(e) })
	k.Run(RunForever)
	k.Shutdown()
	k.Shutdown() // second call must be a no-op
}

func TestNotifyWithNoWaiters(t *testing.T) {
	k := NewKernel("t")
	e := NewEvent(k, "e")
	k.Thread("p", func(p *Process) {
		e.Notify()
		e.NotifyDelta()
		e.NotifyDelayed(5 * NS)
		p.Wait(10 * NS)
	})
	k.Run(RunForever)
	if k.Now() != 10*NS {
		t.Errorf("Now = %v", k.Now())
	}
}

func TestNotifyAtPastPanics(t *testing.T) {
	k := NewKernel("t")
	e := NewEvent(k, "e")
	caught := false
	k.Thread("p", func(p *Process) {
		p.Wait(20 * NS)
		defer func() {
			if recover() != nil {
				caught = true
			}
		}()
		e.NotifyAt(10 * NS)
	})
	k.Run(RunForever)
	if !caught {
		t.Error("NotifyAt in the past did not panic")
	}
}

func TestSyncFromMethodPanics(t *testing.T) {
	k := NewKernel("t")
	caught := false
	k.Method("m", func(p *Process) {
		defer func() {
			if recover() != nil {
				caught = true
			}
		}()
		p.Sync()
	})
	k.Run(RunForever)
	if !caught {
		t.Error("Sync from a method did not panic")
	}
}

func TestNextTriggerFromThreadPanics(t *testing.T) {
	k := NewKernel("t")
	caught := false
	k.Thread("p", func(p *Process) {
		defer func() {
			if recover() != nil {
				caught = true
			}
		}()
		p.NextTrigger(NS)
	})
	k.Run(RunForever)
	if !caught {
		t.Error("NextTrigger from a thread did not panic")
	}
}

func TestThreadCreatedDuringRun(t *testing.T) {
	k := NewKernel("t")
	var childRan bool
	k.Thread("parent", func(p *Process) {
		p.Wait(10 * NS)
		k.Thread("child", func(c *Process) {
			c.Wait(5 * NS)
			childRan = true
		})
	})
	k.Run(RunForever)
	if !childRan {
		t.Error("dynamically created thread never ran")
	}
	if k.Now() != 15*NS {
		t.Errorf("Now = %v, want 15ns", k.Now())
	}
}

func TestImmediateSelfRetriggerMethod(t *testing.T) {
	// A method immediately notifying its own static event re-runs in
	// the same evaluate phase (bounded here to avoid livelock).
	k := NewKernel("t")
	e := NewEvent(k, "e")
	runs := 0
	k.MethodNoInit("m", func(p *Process) {
		runs++
		if runs < 5 {
			e.Notify()
		}
	}, e)
	k.Thread("kick", func(p *Process) { e.Notify() })
	k.Run(RunForever)
	if runs != 5 {
		t.Errorf("runs = %d, want 5", runs)
	}
	if got := k.Stats().DeltaCycles; got != 1 {
		t.Errorf("DeltaCycles = %d, want 1 (all within one phase)", got)
	}
}

func TestRunZeroLimit(t *testing.T) {
	// Run(0) executes time-zero activity only.
	k := NewKernel("t")
	var ranAtZero, ranLater bool
	k.Thread("p", func(p *Process) {
		ranAtZero = true
		p.Wait(NS)
		ranLater = true
	})
	k.Run(0)
	if !ranAtZero || ranLater {
		t.Errorf("ranAtZero=%v ranLater=%v", ranAtZero, ranLater)
	}
	k.Run(RunForever)
	if !ranLater {
		t.Error("resumed run did not complete the thread")
	}
}

func TestManyProcessesScale(t *testing.T) {
	// 1000 interleaved threads stay deterministic and complete.
	k := NewKernel("t")
	done := 0
	for i := 0; i < 1000; i++ {
		period := Time(1+i%13) * NS
		k.Thread("p", func(p *Process) {
			for j := 0; j < 20; j++ {
				p.Wait(period)
			}
			done++
		})
	}
	k.Run(RunForever)
	if done != 1000 {
		t.Errorf("done = %d, want 1000", done)
	}
}

func TestBlockedEmptyAfterCompletion(t *testing.T) {
	k := NewKernel("t")
	k.Thread("p", func(p *Process) { p.Wait(NS) })
	k.Run(RunForever)
	if b := k.Blocked(); len(b) != 0 {
		t.Errorf("Blocked = %v, want empty", b)
	}
}
