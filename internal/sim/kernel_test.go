package sim

import (
	"fmt"
	"testing"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0s"},
		{20 * NS, "20ns"},
		{1500 * PS, "1500ps"},
		{3 * US, "3us"},
		{7 * MS, "7ms"},
		{2 * SEC, "2s"},
		{-5 * NS, "-5ns"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestThreadWaitAdvancesTime(t *testing.T) {
	k := NewKernel("t")
	var dates []Time
	k.Thread("p", func(p *Process) {
		for i := 0; i < 3; i++ {
			dates = append(dates, k.Now())
			p.Wait(10 * NS)
		}
		dates = append(dates, k.Now())
	})
	k.Run(RunForever)
	want := []Time{0, 10 * NS, 20 * NS, 30 * NS}
	if fmt.Sprint(dates) != fmt.Sprint(want) {
		t.Errorf("dates = %v, want %v", dates, want)
	}
}

func TestTwoThreadsInterleaveDeterministically(t *testing.T) {
	k := NewKernel("t")
	var log []string
	mk := func(name string, period Time, n int) {
		k.Thread(name, func(p *Process) {
			for i := 0; i < n; i++ {
				log = append(log, fmt.Sprintf("%s@%v", name, k.Now()))
				p.Wait(period)
			}
		})
	}
	mk("a", 10*NS, 3)
	mk("b", 15*NS, 2)
	k.Run(RunForever)
	want := "[a@0s b@0s a@10ns b@15ns a@20ns]"
	if got := fmt.Sprint(log); got != want {
		t.Errorf("log = %v, want %v", got, want)
	}
}

func TestRunWithLimitStopsAtLimit(t *testing.T) {
	k := NewKernel("t")
	n := 0
	k.Thread("p", func(p *Process) {
		for {
			n++
			p.Wait(10 * NS)
		}
	})
	k.Run(45 * NS)
	if k.Now() != 45*NS {
		t.Errorf("Now = %v, want 45ns", k.Now())
	}
	if n != 5 { // activations at 0, 10, 20, 30, 40
		t.Errorf("n = %d, want 5", n)
	}
	// Resume: the pending wakeup at 50ns must still fire.
	k.Run(50 * NS)
	if n != 6 || k.Now() != 50*NS {
		t.Errorf("after resume: n = %d, Now = %v; want 6, 50ns", n, k.Now())
	}
	k.Shutdown()
}

func TestWaitZeroIsDeltaCycle(t *testing.T) {
	k := NewKernel("t")
	var order []string
	k.Thread("a", func(p *Process) {
		order = append(order, "a1")
		p.Wait(0)
		order = append(order, "a2")
	})
	k.Thread("b", func(p *Process) {
		order = append(order, "b1")
	})
	k.Run(RunForever)
	if got := fmt.Sprint(order); got != "[a1 b1 a2]" {
		t.Errorf("order = %v", got)
	}
	if k.Now() != 0 {
		t.Errorf("Now = %v, want 0", k.Now())
	}
}

func TestEventWaitAndNotify(t *testing.T) {
	k := NewKernel("t")
	e := NewEvent(k, "e")
	var got Time = -1
	k.Thread("waiter", func(p *Process) {
		p.WaitEvent(e)
		got = k.Now()
	})
	k.Thread("notifier", func(p *Process) {
		p.Wait(25 * NS)
		e.Notify()
	})
	k.Run(RunForever)
	if got != 25*NS {
		t.Errorf("woken at %v, want 25ns", got)
	}
}

func TestImmediateNotifySameEvaluatePhase(t *testing.T) {
	k := NewKernel("t")
	e := NewEvent(k, "e")
	var deltas []uint64
	k.Thread("waiter", func(p *Process) {
		p.WaitEvent(e)
		deltas = append(deltas, k.Stats().DeltaCycles)
	})
	k.Thread("notifier", func(p *Process) {
		e.Notify()
		deltas = append(deltas, k.Stats().DeltaCycles)
	})
	k.Run(RunForever)
	if len(deltas) != 2 || deltas[0] != deltas[1] {
		t.Errorf("immediate notify crossed delta cycles: %v", deltas)
	}
}

func TestNotifyDeltaCrossesOneDelta(t *testing.T) {
	k := NewKernel("t")
	e := NewEvent(k, "e")
	var woken bool
	var sawWokenInSamePhase bool
	k.Thread("waiter", func(p *Process) {
		p.WaitEvent(e)
		woken = true
	})
	k.Thread("notifier", func(p *Process) {
		e.NotifyDelta()
		sawWokenInSamePhase = woken
	})
	k.Run(RunForever)
	if !woken {
		t.Fatal("waiter never woken")
	}
	if sawWokenInSamePhase {
		t.Error("delta notification fired within the same evaluate phase")
	}
}

func TestNotifyDelayedEarlierOverridesLater(t *testing.T) {
	k := NewKernel("t")
	e := NewEvent(k, "e")
	var woken []Time
	k.Thread("waiter", func(p *Process) {
		for i := 0; i < 2; i++ {
			p.WaitEvent(e)
			woken = append(woken, k.Now())
		}
	})
	k.Thread("notifier", func(p *Process) {
		e.NotifyDelayed(30 * NS) // will be replaced: 10ns is earlier
		e.NotifyDelayed(10 * NS)
		p.Wait(50 * NS)
		e.NotifyDelayed(5 * NS) // later notify at 55ns
		e.NotifyDelayed(20 * NS)
	})
	k.Run(RunForever)
	want := []Time{10 * NS, 55 * NS}
	if fmt.Sprint(woken) != fmt.Sprint(want) {
		t.Errorf("woken = %v, want %v", woken, want)
	}
}

func TestCancelNotify(t *testing.T) {
	k := NewKernel("t")
	e := NewEvent(k, "e")
	woken := false
	k.Thread("waiter", func(p *Process) {
		p.WaitEvent(e)
		woken = true
	})
	k.Thread("canceller", func(p *Process) {
		e.NotifyDelayed(10 * NS)
		p.Wait(5 * NS)
		e.CancelNotify()
	})
	k.Run(RunForever)
	if woken {
		t.Error("waiter woken despite cancelled notification")
	}
	if got := k.Blocked(); len(got) != 1 || got[0] != "waiter" {
		t.Errorf("Blocked() = %v, want [waiter]", got)
	}
	k.Shutdown()
}

func TestPendingAt(t *testing.T) {
	k := NewKernel("t")
	e := NewEvent(k, "e")
	if _, ok := e.PendingAt(); ok {
		t.Error("fresh event has pending notification")
	}
	k.Thread("p", func(p *Process) {
		e.NotifyDelayed(40 * NS)
		if at, ok := e.PendingAt(); !ok || at != 40*NS {
			t.Errorf("PendingAt = %v,%v; want 40ns,true", at, ok)
		}
		if !e.HasPending() {
			t.Error("HasPending = false")
		}
	})
	k.Run(RunForever)
}

func TestMethodStaticSensitivity(t *testing.T) {
	k := NewKernel("t")
	e := NewEvent(k, "e")
	var dates []Time
	k.MethodNoInit("m", func(p *Process) {
		dates = append(dates, k.Now())
	}, e)
	k.Thread("driver", func(p *Process) {
		for i := 0; i < 3; i++ {
			p.Wait(10 * NS)
			e.Notify()
		}
	})
	k.Run(RunForever)
	want := []Time{10 * NS, 20 * NS, 30 * NS}
	if fmt.Sprint(dates) != fmt.Sprint(want) {
		t.Errorf("dates = %v, want %v", dates, want)
	}
}

func TestMethodInitialActivation(t *testing.T) {
	k := NewKernel("t")
	ran := 0
	k.Method("m", func(p *Process) { ran++ })
	k.Run(RunForever)
	if ran != 1 {
		t.Errorf("method ran %d times, want 1 (initial activation)", ran)
	}
}

func TestMethodNextTriggerTimed(t *testing.T) {
	k := NewKernel("t")
	var dates []Time
	k.Method("m", func(p *Process) {
		dates = append(dates, k.Now())
		if len(dates) < 4 {
			p.NextTrigger(7 * NS)
		}
	})
	k.Run(RunForever)
	want := []Time{0, 7 * NS, 14 * NS, 21 * NS}
	if fmt.Sprint(dates) != fmt.Sprint(want) {
		t.Errorf("dates = %v, want %v", dates, want)
	}
}

func TestMethodNextTriggerOverridesStatic(t *testing.T) {
	k := NewKernel("t")
	e := NewEvent(k, "e")
	var dates []Time
	k.MethodNoInit("m", func(p *Process) {
		dates = append(dates, k.Now())
		if len(dates) == 1 {
			// Ignore further e notifications for 100ns.
			p.NextTrigger(100 * NS)
		}
	}, e)
	k.Thread("driver", func(p *Process) {
		for i := 0; i < 5; i++ {
			p.Wait(10 * NS) // notifies at 10,20,30,40,50
			e.Notify()
		}
	})
	k.Run(RunForever)
	// First trigger at 10ns; NextTrigger suppresses the static
	// notifications at 20..50ns; the timed trigger runs it at 110ns.
	want := []Time{10 * NS, 110 * NS}
	if fmt.Sprint(dates) != fmt.Sprint(want) {
		t.Errorf("dates = %v, want %v", dates, want)
	}
}

func TestMethodNextTriggerEvent(t *testing.T) {
	k := NewKernel("t")
	e1 := NewEvent(k, "e1")
	e2 := NewEvent(k, "e2")
	var log []string
	k.MethodNoInit("m", func(p *Process) {
		log = append(log, fmt.Sprintf("m@%v", k.Now()))
		if len(log) == 1 {
			p.NextTriggerEvent(e2) // switch sensitivity to e2 only, once
		}
	}, e1)
	k.Thread("driver", func(p *Process) {
		p.Wait(10 * NS)
		e1.Notify() // triggers m (static)
		p.Wait(10 * NS)
		e1.Notify() // ignored: m waits on e2
		p.Wait(10 * NS)
		e2.Notify() // triggers m (dynamic)
		p.Wait(10 * NS)
		e2.Notify() // ignored: after dyn trigger, m is static on e1 again
		p.Wait(10 * NS)
		e1.Notify() // triggers m
	})
	k.Run(RunForever)
	want := "[m@10ns m@30ns m@50ns]"
	if got := fmt.Sprint(log); got != want {
		t.Errorf("log = %v, want %v", got, want)
	}
}

func TestMethodStaleTimedTriggerDropped(t *testing.T) {
	k := NewKernel("t")
	e := NewEvent(k, "e")
	var dates []Time
	k.MethodNoInit("m", func(p *Process) {
		dates = append(dates, k.Now())
		if len(dates) == 1 {
			p.NextTrigger(100 * NS)
			// Then re-arm on the event instead: the 100ns trigger
			// must be invalidated.
			p.NextTriggerEvent(e)
		}
	}, e)
	k.Thread("driver", func(p *Process) {
		p.Wait(10 * NS)
		e.Notify() // first activation
		p.Wait(10 * NS)
		e.Notify() // second activation (dyn on e)
	})
	k.Run(RunForever)
	want := []Time{10 * NS, 20 * NS} // nothing at 110ns
	if fmt.Sprint(dates) != fmt.Sprint(want) {
		t.Errorf("dates = %v, want %v", dates, want)
	}
}

func TestLocalTimeIncSync(t *testing.T) {
	k := NewKernel("t")
	k.Thread("p", func(p *Process) {
		if !p.Synchronized() {
			t.Error("fresh process not synchronized")
		}
		p.Inc(30 * NS)
		if p.LocalTime() != 30*NS || k.Now() != 0 {
			t.Errorf("LocalTime = %v, Now = %v; want 30ns, 0", p.LocalTime(), k.Now())
		}
		if p.LocalOffset() != 30*NS {
			t.Errorf("LocalOffset = %v, want 30ns", p.LocalOffset())
		}
		p.Sync()
		if k.Now() != 30*NS || !p.Synchronized() {
			t.Errorf("after Sync: Now = %v, sync = %v", k.Now(), p.Synchronized())
		}
		p.Sync() // no-op when synchronized
		if k.Now() != 30*NS {
			t.Errorf("second Sync moved time to %v", k.Now())
		}
	})
	k.Run(RunForever)
}

func TestAdvanceLocalTo(t *testing.T) {
	k := NewKernel("t")
	k.Thread("p", func(p *Process) {
		p.Wait(10 * NS)
		p.AdvanceLocalTo(25 * NS)
		if p.LocalTime() != 25*NS {
			t.Errorf("LocalTime = %v, want 25ns", p.LocalTime())
		}
		p.AdvanceLocalTo(5 * NS) // in the past: no-op
		if p.LocalTime() != 25*NS {
			t.Errorf("LocalTime = %v after past advance, want 25ns", p.LocalTime())
		}
	})
	k.Run(RunForever)
}

func TestIncEquivalentToWaitTiming(t *testing.T) {
	// inc(d); sync() must be equivalent to wait(d) (paper §II-B).
	run := func(decoupled bool) []Time {
		k := NewKernel("t")
		var dates []Time
		k.Thread("p", func(p *Process) {
			for i := 0; i < 3; i++ {
				if decoupled {
					p.Inc(10 * NS)
					p.Sync()
				} else {
					p.Wait(10 * NS)
				}
				dates = append(dates, k.Now())
			}
		})
		k.Run(RunForever)
		return dates
	}
	if fmt.Sprint(run(true)) != fmt.Sprint(run(false)) {
		t.Errorf("inc+sync %v != wait %v", run(true), run(false))
	}
}

func TestMethodIncResetPerActivation(t *testing.T) {
	k := NewKernel("t")
	var offsets []Time
	k.Method("m", func(p *Process) {
		offsets = append(offsets, p.LocalOffset())
		p.Inc(5 * NS)
		if len(offsets) < 3 {
			p.NextTrigger(10 * NS)
		}
	})
	k.Run(RunForever)
	want := []Time{0, 0, 0} // offset reset at each activation
	if fmt.Sprint(offsets) != fmt.Sprint(want) {
		t.Errorf("offsets = %v, want %v", offsets, want)
	}
}

func TestContextSwitchCounting(t *testing.T) {
	k := NewKernel("t")
	k.Thread("p", func(p *Process) {
		for i := 0; i < 9; i++ {
			p.Wait(NS)
		}
	})
	k.Run(RunForever)
	// 1 initial dispatch + 9 wakeups.
	if got := k.Stats().ContextSwitches; got != 10 {
		t.Errorf("ContextSwitches = %d, want 10", got)
	}
}

func TestIncDoesNotContextSwitch(t *testing.T) {
	k := NewKernel("t")
	k.Thread("p", func(p *Process) {
		for i := 0; i < 1000; i++ {
			p.Inc(NS)
		}
		p.Sync()
	})
	k.Run(RunForever)
	// 1 initial dispatch + 1 sync.
	if got := k.Stats().ContextSwitches; got != 2 {
		t.Errorf("ContextSwitches = %d, want 2", got)
	}
	if k.Now() != 1000*NS {
		t.Errorf("Now = %v, want 1us", k.Now())
	}
}

func TestShutdownUnblocksParkedThreads(t *testing.T) {
	k := NewKernel("t")
	e := NewEvent(k, "never")
	for i := 0; i < 10; i++ {
		k.Thread(fmt.Sprintf("p%d", i), func(p *Process) {
			p.WaitEvent(e)
		})
	}
	k.Run(RunForever)
	if got := len(k.Blocked()); got != 10 {
		t.Fatalf("Blocked = %d procs, want 10", got)
	}
	k.Shutdown()
	for _, p := range k.Processes() {
		if !p.Terminated() {
			t.Errorf("process %s not terminated after Shutdown", p.Name())
		}
	}
}

func TestShutdownNeverStartedThread(t *testing.T) {
	k := NewKernel("t")
	k.Thread("p", func(p *Process) {})
	// Never run the kernel at all.
	k.Shutdown()
}

func TestProcessPanicPropagates(t *testing.T) {
	k := NewKernel("t")
	k.Thread("bad", func(p *Process) {
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate to Run")
		}
		if s, ok := r.(string); !ok || s != `sim: process "bad" panicked: boom` {
			t.Errorf("unexpected panic value %v", r)
		}
	}()
	k.Run(RunForever)
}

func TestWaitFromMethodPanics(t *testing.T) {
	k := NewKernel("t")
	caught := false
	k.Method("m", func(p *Process) {
		defer func() {
			if recover() != nil {
				caught = true
			}
		}()
		p.Wait(NS)
	})
	k.Run(RunForever)
	if !caught {
		t.Error("Wait from a method did not panic")
	}
}

func TestNegativeDurationsPanic(t *testing.T) {
	k := NewKernel("t")
	caught := 0
	k.Thread("p", func(p *Process) {
		for _, f := range []func(){
			func() { p.Wait(-NS) },
			func() { p.Inc(-NS) },
		} {
			func() {
				defer func() {
					if recover() != nil {
						caught++
					}
				}()
				f()
			}()
		}
	})
	k.Run(RunForever)
	if caught != 2 {
		t.Errorf("caught %d panics, want 2", caught)
	}
}

func TestCurrentProcess(t *testing.T) {
	k := NewKernel("t")
	if k.Current() != nil {
		t.Error("Current non-nil outside Run")
	}
	var ok bool
	k.Thread("p", func(p *Process) {
		ok = k.Current() == p
	})
	k.Run(RunForever)
	if !ok {
		t.Error("Current() != running process")
	}
	if k.Current() != nil {
		t.Error("Current non-nil after Run")
	}
}

func TestDeterministicReplay(t *testing.T) {
	// The same model must produce the identical activation log on every
	// run: the §IV-A validation methodology depends on it.
	run := func() string {
		k := NewKernel("t")
		e := NewEvent(k, "e")
		var log []string
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("p%d", i)
			period := Time(i+1) * 3 * NS
			k.Thread(name, func(p *Process) {
				for j := 0; j < 10; j++ {
					log = append(log, fmt.Sprintf("%s@%v", name, k.Now()))
					p.Wait(period)
					if j%3 == 0 {
						e.Notify()
					}
				}
			})
		}
		k.MethodNoInit("watcher", func(p *Process) {
			log = append(log, fmt.Sprintf("w@%v", k.Now()))
		}, e)
		k.Run(RunForever)
		k.Shutdown()
		return fmt.Sprint(log)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two runs differ:\n%s\n%s", a, b)
	}
}

func TestRunForeverTerminatesOnQuiescence(t *testing.T) {
	k := NewKernel("t")
	k.Run(RunForever) // empty model: returns immediately
	if k.Now() != 0 {
		t.Errorf("Now = %v", k.Now())
	}
}

func TestStatsCounters(t *testing.T) {
	k := NewKernel("t")
	e := NewEvent(k, "e")
	k.MethodNoInit("m", func(p *Process) {}, e)
	k.Thread("p", func(p *Process) {
		p.Wait(NS)
		e.Notify()
		p.Wait(NS)
	})
	k.Run(RunForever)
	s := k.Stats()
	if s.MethodActivations != 1 {
		t.Errorf("MethodActivations = %d, want 1", s.MethodActivations)
	}
	if s.Notifications != 1 {
		t.Errorf("Notifications = %d, want 1", s.Notifications)
	}
	if s.TimedSteps != 2 {
		t.Errorf("TimedSteps = %d, want 2", s.TimedSteps)
	}
	if s.ContextSwitches != 3 {
		t.Errorf("ContextSwitches = %d, want 3", s.ContextSwitches)
	}
}

func TestManyTimedNotificationsOrder(t *testing.T) {
	// Same-date notifications must fire in insertion order.
	k := NewKernel("t")
	var order []int
	for i := 0; i < 20; i++ {
		i := i
		e := NewEvent(k, fmt.Sprintf("e%d", i))
		k.MethodNoInit(fmt.Sprintf("m%d", i), func(p *Process) {
			order = append(order, i)
		}, e)
		e.NotifyDelayed(10 * NS)
	}
	k.Run(RunForever)
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d; want insertion order %v", i, v, order)
		}
	}
}
