package sim

import (
	"sync/atomic"

	"repro/internal/metrics"
)

// Kernel instrumentation. The kernel already maintains its activity
// counters (Stats) as plain single-threaded fields; publishing them as
// shared metrics per dispatch would put an atomic RMW on the hottest
// path in the repository. Instead the kernel publishes DELTAS of its
// own Stats into the shared counters at the same spaced safe points
// that already pay for two atomic stores (the interrupt poll,
// interrupt.go) — so a fleet of campaign workers feeds one registry
// with bounded lag and the dispatch loop stays allocation- and
// contention-free. Everything no-ops when EnableMetrics was never
// called: a kernel built under a nil sink carries nil metric pointers
// and the poll-point hook is a single nil check.

// MetricSink is the set of kernel-level metrics a kernel publishes
// into. All fields may be nil (updates no-op).
type MetricSink struct {
	// Dispatches counts process dispatches (thread context switches
	// plus method activations) — the paper's simulation-cost unit.
	Dispatches *metrics.Counter
	// DeltaCycles counts evaluate phases; TimedSteps counts simulated
	// time advances; Notifications counts event notifications.
	DeltaCycles   *metrics.Counter
	TimedSteps    *metrics.Counter
	Notifications *metrics.Counter
	// BeaconNS tracks the last published simulated date (ns) across
	// the kernels feeding this sink — last writer wins, so with many
	// concurrent kernels it is a liveness beacon, not a global clock.
	BeaconNS *metrics.Gauge
}

// defaultSink is the process-wide sink captured by NewKernel. Atomic so
// EnableMetrics can race with kernel construction in tests.
var defaultSink atomic.Pointer[MetricSink]

// EnableMetrics registers the kernel metric family on r and makes every
// subsequently created kernel publish into it. A nil registry disables
// publication for new kernels. Existing kernels are unaffected.
func EnableMetrics(r *metrics.Registry) {
	if r == nil {
		defaultSink.Store(nil)
		return
	}
	defaultSink.Store(&MetricSink{
		Dispatches:    r.Counter("sim_dispatches_total", "Process dispatches (thread context switches + method activations) across all kernels."),
		DeltaCycles:   r.Counter("sim_delta_cycles_total", "Evaluate phases across all kernels."),
		TimedSteps:    r.Counter("sim_timed_steps_total", "Simulated-time advances across all kernels."),
		Notifications: r.Counter("sim_notifications_total", "Event notifications fired across all kernels."),
		BeaconNS:      r.Gauge("sim_beacon_ns", "Simulated date (ns) last published by any kernel poll point (liveness beacon, last writer wins)."),
	})
}

// publishMetrics folds the growth of k.stats since the last publish
// into the shared sink. Called at interrupt-poll safe points and at
// Step exit; k.msink is non-nil.
func (k *Kernel) publishMetrics() {
	m := k.msink
	s, p := &k.stats, &k.mpub
	if d := (s.ContextSwitches + s.MethodActivations) - (p.ContextSwitches + p.MethodActivations); d > 0 {
		m.Dispatches.Add(d)
	}
	if d := s.DeltaCycles - p.DeltaCycles; d > 0 {
		m.DeltaCycles.Add(d)
	}
	if d := s.TimedSteps - p.TimedSteps; d > 0 {
		m.TimedSteps.Add(d)
	}
	if d := s.Notifications - p.Notifications; d > 0 {
		m.Notifications.Add(d)
	}
	*p = *s
	m.BeaconNS.Set(int64(k.now))
}
