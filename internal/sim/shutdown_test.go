package sim_test

import (
	"testing"

	"repro/internal/sim"
)

// parkEach builds one thread per parking primitive — WaitEvent, WaitAny,
// WaitEventTimeout (with an unreachable timeout) and plain Wait — runs the
// kernel until all four are parked, and returns the kernel.
func parkEach(t *testing.T) (*sim.Kernel, *int) {
	t.Helper()
	k := sim.NewKernel("park")
	never1 := sim.NewEvent(k, "never1")
	never2 := sim.NewEvent(k, "never2")
	never3 := sim.NewEvent(k, "never3")
	unwound := new(int)
	k.Thread("waitevent", func(p *sim.Process) {
		defer func() { *unwound++ }()
		p.WaitEvent(never1)
		t.Error("waitevent woke")
	})
	k.Thread("waitany", func(p *sim.Process) {
		defer func() { *unwound++ }()
		p.WaitAny(never1, never2, never3)
		t.Error("waitany woke")
	})
	k.Thread("waittimeout", func(p *sim.Process) {
		defer func() { *unwound++ }()
		p.WaitEventTimeout(never2, sim.SEC)
		t.Error("waittimeout woke")
	})
	k.Thread("plainwait", func(p *sim.Process) {
		defer func() { *unwound++ }()
		p.Wait(sim.SEC)
		t.Error("plainwait woke")
	})
	// Run only to a date before both the timeout and the plain wait:
	// all four threads end up parked, two of them with live timed
	// entries still in the queue.
	k.Run(1 * sim.NS)
	return k, unwound
}

// TestShutdownUnwindsAllParkingPrimitives pins that Shutdown kills
// threads parked in every wait primitive — not just plain Wait — running
// their deferred cleanups and marking them terminated.
func TestShutdownUnwindsAllParkingPrimitives(t *testing.T) {
	k, unwound := parkEach(t)
	if got := len(k.Blocked()); got != 4 {
		t.Fatalf("want 4 parked threads before Shutdown, Blocked() reports %d", got)
	}
	k.Shutdown()
	if *unwound != 4 {
		t.Errorf("want 4 deferred unwinds after Shutdown, got %d", *unwound)
	}
	for _, p := range k.Processes() {
		if !p.Terminated() {
			t.Errorf("process %q not terminated after Shutdown", p.Name())
		}
	}
	if got := k.Blocked(); len(got) != 0 {
		t.Errorf("Blocked() after Shutdown: %v", got)
	}
}

// TestShutdownThenRunIsQuiescent: the timed entries of killed threads
// (the lost timeout, the pending wait) must not resurrect activity.
func TestShutdownThenRunIsQuiescent(t *testing.T) {
	k, _ := parkEach(t)
	k.Shutdown()
	k.Run(sim.RunForever)
	if now := k.Now(); now > sim.SEC {
		t.Errorf("dead threads advanced time to %v", now)
	}
}

// TestBlockedNamesEachPrimitive: Blocked reports every parked thread by
// name, whatever primitive parked it.
func TestBlockedNamesEachPrimitive(t *testing.T) {
	k, _ := parkEach(t)
	defer k.Shutdown()
	want := map[string]bool{
		"waitevent": true, "waitany": true, "waittimeout": true, "plainwait": true,
	}
	for _, name := range k.Blocked() {
		if !want[name] {
			t.Errorf("unexpected blocked name %q", name)
		}
		delete(want, name)
	}
	for name := range want {
		t.Errorf("blocked thread %q not reported", name)
	}
}
