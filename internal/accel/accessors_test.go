package accel_test

import (
	"testing"

	"repro/internal/accel"
)

func TestKindStrings(t *testing.T) {
	cases := map[accel.Kind]string{
		accel.Generator: "generator",
		accel.Scale:     "scale",
		accel.FIR:       "fir",
		accel.Decimate:  "decimate",
		accel.Sink:      "sink",
		accel.Kind(99):  "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if accel.MemToStream.String() != "mem-to-stream" || accel.StreamToMem.String() != "stream-to-mem" {
		t.Error("Direction strings wrong")
	}
}

func TestAccelConstructorChecks(t *testing.T) {
	for name, f := range map[string]func(){
		"scale-no-input": func() {
			accel.New(nil, "x", accel.Config{Kind: accel.Scale})
		},
		"gen-no-output": func() {
			accel.New(nil, "x", accel.Config{Kind: accel.Generator})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
