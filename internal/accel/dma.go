package accel

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/fifo"
	"repro/internal/sim"
)

// DMA register indices.
const (
	// DMARegCtrl starts a transfer when written with 1.
	DMARegCtrl = 0
	// DMARegWords holds the transfer length in words.
	DMARegWords = 1
	// DMARegAddr holds the memory word address.
	DMARegAddr = 2
	// DMARegStatus reads 1 while a transfer is running.
	DMARegStatus = 3
	// DMARegJobsDone counts completed transfers.
	DMARegJobsDone = 4
	// DMANumRegs is the register file size.
	DMANumRegs = 5
)

// Direction selects what a DMA engine does.
type Direction int

const (
	// MemToStream reads memory and produces a word stream.
	MemToStream Direction = iota
	// StreamToMem consumes a word stream and writes memory.
	StreamToMem
)

// String names the direction.
func (d Direction) String() string {
	if d == MemToStream {
		return "mem-to-stream"
	}
	return "stream-to-mem"
}

// DMAConfig parameterizes a DMA engine.
type DMAConfig struct {
	// Dir is the transfer direction.
	Dir Direction
	// Channel is the stream side.
	Channel fifo.Channel[uint32]
	// Bus is the memory side.
	Bus *bus.Bus
	// Quantum decouples the bus side (TLM-2.0 style).
	Quantum sim.Time
	// WordLat is the per-word streaming latency.
	WordLat sim.Time
	// ChunkWords is the burst length per bus transaction.
	ChunkWords int
	// IRQ, if non-nil, receives a Raise(IRQLine) at each transfer
	// completion.
	IRQ *bus.IRQController
	// IRQLine is the interrupt line to raise.
	IRQLine int
}

// DMA is a bus-mastering stream engine: the piece that connects the
// memory-mapped half of the SoC (decoupled with a quantum keeper, §II-A)
// to the FIFO-based half (decoupled with Smart FIFOs, §III).
type DMA struct {
	k    *sim.Kernel
	name string
	cfg  DMAConfig

	regs  *bus.RegisterFile
	start *sim.Event

	pendingJobs int
	busy        bool
	jobsDone    uint32
	jobDates    []sim.Time

	proc *sim.Process
}

// NewDMA creates a DMA engine and registers its thread process.
func NewDMA(k *sim.Kernel, name string, cfg DMAConfig) *DMA {
	if cfg.Channel == nil || cfg.Bus == nil {
		panic(fmt.Sprintf("accel: dma %s: needs both a channel and a bus", name))
	}
	if cfg.ChunkWords <= 0 {
		cfg.ChunkWords = 16
	}
	d := &DMA{
		k:     k,
		name:  name,
		cfg:   cfg,
		regs:  bus.NewRegisterFile(DMANumRegs, sim.NS),
		start: sim.NewEvent(k, name+".start"),
	}
	d.regs.OnWrite = func(p *sim.Process, idx int, v uint32) bool {
		if idx == DMARegCtrl && v == 1 {
			d.pendingJobs++
			d.start.Notify()
			return false
		}
		return true
	}
	d.regs.OnRead = func(p *sim.Process, idx int) (uint32, bool) {
		switch idx {
		case DMARegStatus:
			if d.busy || d.pendingJobs > 0 {
				return 1, true
			}
			return 0, true
		case DMARegJobsDone:
			return d.jobsDone, true
		}
		return 0, false
	}
	d.proc = k.Thread(name, d.run)
	return d
}

// Name returns the engine name.
func (d *DMA) Name() string { return d.name }

// Regs returns the register file to map onto a bus.
func (d *DMA) Regs() *bus.RegisterFile { return d.regs }

// JobsDone returns the number of completed transfers.
func (d *DMA) JobsDone() uint32 { return d.jobsDone }

// JobDates returns the local completion date of every finished transfer.
func (d *DMA) JobDates() []sim.Time { return d.jobDates }

func (d *DMA) run(p *sim.Process) {
	in := bus.NewInitiator(p, d.cfg.Bus, d.cfg.Quantum)
	buf := make([]uint32, d.cfg.ChunkWords)
	for {
		for d.pendingJobs == 0 {
			// See accel.run: re-check after Sync so a start
			// command landing mid-sync is not lost.
			if !p.Synchronized() {
				p.Sync()
				continue
			}
			p.WaitEvent(d.start)
		}
		d.pendingJobs--
		d.busy = true
		words := int(d.regs.Get(DMARegWords))
		addr := d.regs.Get(DMARegAddr)
		for done := 0; done < words; {
			n := d.cfg.ChunkWords
			if words-done < n {
				n = words - done
			}
			chunk := buf[:n]
			// Stream-side chunks move through the bulk burst APIs;
			// the Inc placement makes each chunk date-identical to
			// the scalar per-word loop (see accel.Accel.job).
			switch d.cfg.Dir {
			case MemToStream:
				in.ReadBurst(addr+uint32(done), chunk)
				p.Inc(d.cfg.WordLat)
				fifo.WriteBurst(p, d.cfg.Channel, chunk, d.cfg.WordLat)
			case StreamToMem:
				fifo.ReadBurst(p, d.cfg.Channel, chunk, d.cfg.WordLat)
				p.Inc(d.cfg.WordLat)
				in.WriteBurst(addr+uint32(done), chunk)
			}
			done += n
		}
		d.busy = false
		d.jobsDone++
		d.jobDates = append(d.jobDates, p.LocalTime())
		if d.cfg.IRQ != nil {
			d.cfg.IRQ.Raise(d.cfg.IRQLine)
		}
	}
}
