// Package accel models the hardware accelerators of the case-study SoC
// (paper §IV-C): stream kernels implemented as temporally decoupled thread
// processes, fully annotated with per-word timings, communicating through
// FIFO channels and controlled by memory-mapped register files.
//
// Each accelerator is controlled by embedded software through its register
// file: the controller programs a job (word count), sets the start bit and
// polls the status register; the live FIFO-level registers expose the
// monitor interface of the attached channels ("knowing the FIFO filling
// levels can be used for debug and dynamic performance tuning").
package accel

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/fifo"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Register indices within an accelerator's register file.
const (
	// RegCtrl starts a job when written with 1.
	RegCtrl = 0
	// RegWords holds the job length in words (input words).
	RegWords = 1
	// RegStatus reads 1 while a job is running, 0 when idle.
	RegStatus = 2
	// RegJobsDone counts completed jobs.
	RegJobsDone = 3
	// RegInLevel reads the input FIFO fill level (live monitor access).
	RegInLevel = 4
	// RegOutLevel reads the output FIFO fill level (live monitor access).
	RegOutLevel = 5
	// NumRegs is the register file size.
	NumRegs = 6
)

// Kind selects the stream kernel an accelerator runs.
type Kind int

const (
	// Generator produces pseudo-random words (no input).
	Generator Kind = iota
	// Scale multiplies each word by Factor.
	Scale
	// FIR applies a small finite-impulse-response filter.
	FIR
	// Decimate forwards one word out of Factor.
	Decimate
	// Sink consumes words into a running checksum (no output).
	Sink
)

// String names the kind.
func (kd Kind) String() string {
	switch kd {
	case Generator:
		return "generator"
	case Scale:
		return "scale"
	case FIR:
		return "fir"
	case Decimate:
		return "decimate"
	case Sink:
		return "sink"
	}
	return fmt.Sprintf("Kind(%d)", int(kd))
}

// Config parameterizes an accelerator.
type Config struct {
	// Kind selects the kernel.
	Kind Kind
	// In and Out are the stream channel endpoints; Generator needs no
	// In, Sink no Out. The end interfaces (rather than full Channels)
	// let a sharded model hand an accelerator one endpoint of a
	// core.ShardedFIFO whose other side lives on a different kernel.
	In  fifo.ReadEnd[uint32]
	Out fifo.WriteEnd[uint32]
	// WordLat is the per-word processing latency.
	WordLat sim.Time
	// Factor parameterizes Scale (multiplier) and Decimate (keep 1 in
	// Factor).
	Factor uint32
	// Taps are the FIR coefficients (defaults to {1, 2, 3, 2, 1}).
	Taps []uint32
	// Seed feeds the Generator.
	Seed int64
	// IRQ, if non-nil, receives a Raise(IRQLine) at each job completion
	// (dated with the accelerator's local clock).
	IRQ *bus.IRQController
	// IRQLine is the interrupt line to raise.
	IRQLine int
}

// Accel is one hardware accelerator: a decoupled thread plus its register
// file.
type Accel struct {
	k    *sim.Kernel
	name string
	cfg  Config

	regs  *bus.RegisterFile
	start *sim.Event

	pendingJobs int
	busy        bool
	jobsDone    uint32
	produced    int // total words generated (Generator word index)

	// Checksum accumulates everything a Sink consumed.
	checksum uint64
	// JobDates records the accelerator's local date at each job
	// completion: the timing-accuracy witness compared across FIFO
	// implementations.
	jobDates []sim.Time

	// buf is the bulk-transfer staging buffer of the stream endpoints.
	buf []uint32

	proc *sim.Process
}

// New creates an accelerator and registers its thread process.
func New(k *sim.Kernel, name string, cfg Config) *Accel {
	if cfg.Kind != Generator && cfg.In == nil {
		panic(fmt.Sprintf("accel: %s: kind %v needs an input channel", name, cfg.Kind))
	}
	if cfg.Kind != Sink && cfg.Out == nil {
		panic(fmt.Sprintf("accel: %s: kind %v needs an output channel", name, cfg.Kind))
	}
	if cfg.WordLat < 0 {
		panic(fmt.Sprintf("accel: %s: negative word latency", name))
	}
	if cfg.Factor == 0 {
		cfg.Factor = 2
	}
	if len(cfg.Taps) == 0 {
		cfg.Taps = []uint32{1, 2, 3, 2, 1}
	}
	a := &Accel{
		k:     k,
		name:  name,
		cfg:   cfg,
		regs:  bus.NewRegisterFile(NumRegs, sim.NS),
		start: sim.NewEvent(k, name+".start"),
	}
	a.regs.OnWrite = func(p *sim.Process, idx int, v uint32) bool {
		if idx == RegCtrl && v == 1 {
			a.pendingJobs++
			a.start.Notify()
			return false
		}
		return true
	}
	a.regs.OnRead = func(p *sim.Process, idx int) (uint32, bool) {
		switch idx {
		case RegStatus:
			if a.busy || a.pendingJobs > 0 {
				return 1, true
			}
			return 0, true
		case RegJobsDone:
			return a.jobsDone, true
		case RegInLevel:
			if a.cfg.In == nil {
				return 0, true
			}
			return uint32(a.cfg.In.Size()), true
		case RegOutLevel:
			if a.cfg.Out == nil {
				return 0, true
			}
			return uint32(a.cfg.Out.Size()), true
		}
		return 0, false
	}
	a.proc = k.Thread(name, a.run)
	return a
}

// Name returns the accelerator name.
func (a *Accel) Name() string { return a.name }

// Regs returns the register file to map onto a bus.
func (a *Accel) Regs() *bus.RegisterFile { return a.regs }

// Checksum returns the Sink checksum.
func (a *Accel) Checksum() uint64 { return a.checksum }

// JobDates returns the local completion date of every finished job.
func (a *Accel) JobDates() []sim.Time { return a.jobDates }

// JobsDone returns the number of completed jobs.
func (a *Accel) JobsDone() uint32 { return a.jobsDone }

// burstChunk is the staging-buffer size (words) the pure stream endpoints
// (Generator, Sink) move per bulk transfer. Chunking is timing-neutral:
// "Inc(lat); Write" per word equals one leading Inc(lat) plus a burst with
// lat between words, so the chunked job is date-identical to the scalar
// loop at any chunk size.
const burstChunk = 64

// run is the accelerator thread: wait for a start command, stream one
// job's worth of words through the kernel, raise done, repeat forever (the
// process parks when the simulation has no more work for it).
func (a *Accel) run(p *sim.Process) {
	if a.cfg.Kind == Generator || a.cfg.Kind == Sink {
		a.buf = make([]uint32, burstChunk)
	}
	for {
		for a.pendingJobs == 0 {
			// Synchronize before parking: a blocked accelerator
			// must not hold a stale local date across an idle
			// period (commands arrive at global time). A start
			// command may land while we are inside Sync — its
			// notification would be lost — so re-check the
			// condition after synchronizing, exactly like the
			// Smart FIFO's blocking loops.
			if !p.Synchronized() {
				p.Sync()
				continue
			}
			p.WaitEvent(a.start)
		}
		a.pendingJobs--
		a.busy = true
		a.job(p, int(a.regs.Get(RegWords)))
		a.busy = false
		a.jobsDone++
		a.jobDates = append(a.jobDates, p.LocalTime())
		if a.cfg.IRQ != nil {
			a.cfg.IRQ.Raise(a.cfg.IRQLine)
		}
	}
}

// job processes n input words (or produces n words for a Generator).
func (a *Accel) job(p *sim.Process, n int) {
	switch a.cfg.Kind {
	case Generator:
		// Bulk path: stage a chunk of generated words, lead with one
		// Inc (the scalar loop's pre-word annotation), then burst with
		// WordLat between words — date-identical to the scalar loop.
		for done := 0; done < n; {
			m := len(a.buf)
			if n-done < m {
				m = n - done
			}
			for j := 0; j < m; j++ {
				a.buf[j] = workload.WordAt(a.cfg.Seed, a.produced)
				a.produced++
			}
			p.Inc(a.cfg.WordLat)
			fifo.WriteBurst(p, a.cfg.Out, a.buf[:m], a.cfg.WordLat)
			done += m
		}
	case Scale:
		for i := 0; i < n; i++ {
			w := a.cfg.In.Read()
			p.Inc(a.cfg.WordLat)
			a.cfg.Out.Write(w * a.cfg.Factor)
		}
	case FIR:
		win := make([]uint32, len(a.cfg.Taps))
		for i := 0; i < n; i++ {
			copy(win[1:], win)
			win[0] = a.cfg.In.Read()
			var acc uint32
			for j, t := range a.cfg.Taps {
				acc += t * win[j]
			}
			p.Inc(a.cfg.WordLat)
			a.cfg.Out.Write(acc)
		}
	case Decimate:
		for i := 0; i < n; i++ {
			w := a.cfg.In.Read()
			p.Inc(a.cfg.WordLat)
			if i%int(a.cfg.Factor) == 0 {
				a.cfg.Out.Write(w)
			}
		}
	case Sink:
		// Bulk path: burst a chunk in ("Read; Inc" per word equals a
		// burst with WordLat between words plus one trailing Inc), then
		// fold the checksum — same values in the same order.
		for done := 0; done < n; {
			m := len(a.buf)
			if n-done < m {
				m = n - done
			}
			fifo.ReadBurst(p, a.cfg.In, a.buf[:m], a.cfg.WordLat)
			p.Inc(a.cfg.WordLat)
			for _, w := range a.buf[:m] {
				a.checksum = workload.Checksum(a.checksum, w)
			}
			done += m
		}
	}
}
