package accel_test

import (
	"fmt"
	"testing"

	"repro/internal/accel"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/fifo"
	"repro/internal/sim"
	"repro/internal/workload"
)

// startJob programs and starts an accelerator through its bus-mapped
// registers, as the control software would.
func startJob(in *bus.Initiator, base uint32, words uint32) {
	in.WriteWord(base+accel.RegWords, words)
	in.WriteWord(base+accel.RegCtrl, 1)
}

func waitIdle(p *sim.Process, in *bus.Initiator, base uint32, poll sim.Time) {
	for in.ReadWord(base+accel.RegStatus) != 0 {
		p.Inc(poll)
	}
}

func TestGeneratorToSinkJob(t *testing.T) {
	k := sim.NewKernel("t")
	b := bus.NewBus(k, "bus", sim.NS)
	ch := core.NewSmart[uint32](k, "ch", 8)
	gen := accel.New(k, "gen", accel.Config{Kind: accel.Generator, Out: ch, WordLat: 2 * sim.NS, Seed: 5})
	sink := accel.New(k, "sink", accel.Config{Kind: accel.Sink, In: ch, WordLat: 3 * sim.NS})
	b.Map("gen", 0x000, accel.NumRegs, gen.Regs())
	b.Map("sink", 0x100, accel.NumRegs, sink.Regs())
	const words = 32
	k.Thread("ctrl", func(p *sim.Process) {
		in := bus.NewInitiator(p, b, 50*sim.NS)
		startJob(in, 0x100, words)
		startJob(in, 0x000, words)
		waitIdle(p, in, 0x000, 100*sim.NS)
		waitIdle(p, in, 0x100, 100*sim.NS)
	})
	k.Run(sim.RunForever)
	k.Shutdown()
	if gen.JobsDone() != 1 || sink.JobsDone() != 1 {
		t.Fatalf("jobs done: gen %d sink %d", gen.JobsDone(), sink.JobsDone())
	}
	want := uint64(0)
	for i := 0; i < words; i++ {
		want = workload.Checksum(want, workload.WordAt(5, i))
	}
	if sink.Checksum() != want {
		t.Errorf("checksum %x, want %x", sink.Checksum(), want)
	}
}

func TestScaleFIRDecimatePipeline(t *testing.T) {
	k := sim.NewKernel("t")
	b := bus.NewBus(k, "bus", sim.NS)
	c1 := core.NewSmart[uint32](k, "c1", 4)
	c2 := core.NewSmart[uint32](k, "c2", 4)
	c3 := core.NewSmart[uint32](k, "c3", 4)
	c4 := core.NewSmart[uint32](k, "c4", 4)
	gen := accel.New(k, "gen", accel.Config{Kind: accel.Generator, Out: c1, WordLat: sim.NS, Seed: 9})
	sc := accel.New(k, "scale", accel.Config{Kind: accel.Scale, In: c1, Out: c2, WordLat: sim.NS, Factor: 3})
	fir := accel.New(k, "fir", accel.Config{Kind: accel.FIR, In: c2, Out: c3, WordLat: sim.NS, Taps: []uint32{1, 1}})
	dec := accel.New(k, "dec", accel.Config{Kind: accel.Decimate, In: c3, Out: c4, WordLat: sim.NS, Factor: 4})
	sink := accel.New(k, "sink", accel.Config{Kind: accel.Sink, In: c4, WordLat: sim.NS})
	for i, a := range []*accel.Accel{gen, sc, fir, dec, sink} {
		b.Map(a.Name(), uint32(i*0x100), accel.NumRegs, a.Regs())
	}
	const words = 64
	k.Thread("ctrl", func(p *sim.Process) {
		in := bus.NewInitiator(p, b, 20*sim.NS)
		// Start downstream first so everyone is listening.
		startJob(in, 4*0x100, words/4) // sink gets words/4 after decimation
		startJob(in, 3*0x100, words)
		startJob(in, 2*0x100, words)
		startJob(in, 1*0x100, words)
		startJob(in, 0*0x100, words)
		for _, base := range []uint32{0, 0x100, 0x200, 0x300, 0x400} {
			waitIdle(p, in, base, 200*sim.NS)
		}
	})
	k.Run(sim.RunForever)
	k.Shutdown()
	// Reference computation.
	want := uint64(0)
	win := []uint32{0, 0}
	outIdx := 0
	for i := 0; i < words; i++ {
		w := workload.WordAt(9, i) * 3
		win[1] = win[0]
		win[0] = w
		acc := win[0] + win[1]
		if i%4 == 0 {
			_ = outIdx
			want = workload.Checksum(want, acc)
		}
	}
	if sink.Checksum() != want {
		t.Errorf("checksum %x, want %x", sink.Checksum(), want)
	}
}

func TestMultipleJobsSequence(t *testing.T) {
	k := sim.NewKernel("t")
	b := bus.NewBus(k, "bus", sim.NS)
	ch := core.NewSmart[uint32](k, "ch", 8)
	gen := accel.New(k, "gen", accel.Config{Kind: accel.Generator, Out: ch, WordLat: sim.NS, Seed: 2})
	sink := accel.New(k, "sink", accel.Config{Kind: accel.Sink, In: ch, WordLat: sim.NS})
	b.Map("gen", 0x000, accel.NumRegs, gen.Regs())
	b.Map("sink", 0x100, accel.NumRegs, sink.Regs())
	const jobs, words = 4, 16
	k.Thread("ctrl", func(p *sim.Process) {
		in := bus.NewInitiator(p, b, 30*sim.NS)
		for j := 0; j < jobs; j++ {
			startJob(in, 0x100, words)
			startJob(in, 0x000, words)
			waitIdle(p, in, 0x000, 50*sim.NS)
			waitIdle(p, in, 0x100, 50*sim.NS)
		}
	})
	k.Run(sim.RunForever)
	k.Shutdown()
	if gen.JobsDone() != jobs || sink.JobsDone() != jobs {
		t.Fatalf("jobs done: gen %d sink %d, want %d", gen.JobsDone(), sink.JobsDone(), jobs)
	}
	dates := sink.JobDates()
	for i := 1; i < len(dates); i++ {
		if dates[i] <= dates[i-1] {
			t.Errorf("job dates not increasing: %v", dates)
		}
	}
}

func TestFIFOLevelRegisters(t *testing.T) {
	k := sim.NewKernel("t")
	b := bus.NewBus(k, "bus", sim.NS)
	ch := core.NewSmart[uint32](k, "ch", 8)
	gen := accel.New(k, "gen", accel.Config{Kind: accel.Generator, Out: ch, WordLat: sim.NS, Seed: 1})
	b.Map("gen", 0, accel.NumRegs, gen.Regs())
	var levels []uint32
	k.Thread("ctrl", func(p *sim.Process) {
		in := bus.NewInitiator(p, b, 10*sim.NS)
		in.WriteWord(accel.RegWords, 6)
		in.WriteWord(accel.RegCtrl, 1)
		// Nobody drains ch: the level must reach 6 and stay.
		for i := 0; i < 10; i++ {
			levels = append(levels, in.ReadWord(accel.RegOutLevel))
			p.Inc(10 * sim.NS)
		}
	})
	k.Run(sim.RunForever)
	k.Shutdown()
	last := levels[len(levels)-1]
	if last != 6 {
		t.Errorf("final level %d, want 6 (levels: %v)", last, levels)
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] < levels[i-1] {
			t.Errorf("level decreased without reader: %v", levels)
		}
	}
}

func TestDMARoundTrip(t *testing.T) {
	k := sim.NewKernel("t")
	b := bus.NewBus(k, "bus", sim.NS)
	mem := bus.NewMemory(1024, sim.NS, sim.NS)
	b.Map("mem", 0x1000, 1024, mem)
	ch := core.NewSmart[uint32](k, "ch", 8)
	rd := accel.NewDMA(k, "dma.rd", accel.DMAConfig{
		Dir: accel.MemToStream, Channel: ch, Bus: b, Quantum: 100 * sim.NS, WordLat: 2 * sim.NS, ChunkWords: 8,
	})
	wr := accel.NewDMA(k, "dma.wr", accel.DMAConfig{
		Dir: accel.StreamToMem, Channel: ch, Bus: b, Quantum: 100 * sim.NS, WordLat: 2 * sim.NS, ChunkWords: 8,
	})
	b.Map("dma.rd", 0x000, accel.DMANumRegs, rd.Regs())
	b.Map("dma.wr", 0x100, accel.DMANumRegs, wr.Regs())
	const words = 48
	for i := uint32(0); i < words; i++ {
		mem.Poke(i, i*i+1)
	}
	k.Thread("ctrl", func(p *sim.Process) {
		in := bus.NewInitiator(p, b, 50*sim.NS)
		// Writer DMA: stream → mem at offset 512.
		in.WriteWord(0x100+accel.DMARegWords, words)
		in.WriteWord(0x100+accel.DMARegAddr, 0x1000+512)
		in.WriteWord(0x100+accel.DMARegCtrl, 1)
		// Reader DMA: mem offset 0 → stream.
		in.WriteWord(0x000+accel.DMARegWords, words)
		in.WriteWord(0x000+accel.DMARegAddr, 0x1000)
		in.WriteWord(0x000+accel.DMARegCtrl, 1)
		for in.ReadWord(0x100+accel.DMARegStatus) != 0 {
			p.Inc(100 * sim.NS)
		}
	})
	k.Run(sim.RunForever)
	k.Shutdown()
	if rd.JobsDone() != 1 || wr.JobsDone() != 1 {
		t.Fatalf("jobs: rd %d wr %d", rd.JobsDone(), wr.JobsDone())
	}
	for i := uint32(0); i < words; i++ {
		if got := mem.Peek(512 + i); got != i*i+1 {
			t.Fatalf("mem[512+%d] = %d, want %d", i, got, i*i+1)
		}
	}
}

// TestSmartVsSyncSameJobDates: the §IV-C accuracy statement at accelerator
// scale — smart and sync FIFO versions produce identical job completion
// dates.
func TestSmartVsSyncSameJobDates(t *testing.T) {
	run := func(smart bool) ([]sim.Time, uint64) {
		k := sim.NewKernel("t")
		b := bus.NewBus(k, "bus", sim.NS)
		var c1, c2 fifo.Channel[uint32]
		if smart {
			c1 = core.NewSmart[uint32](k, "c1", 4)
			c2 = core.NewSmart[uint32](k, "c2", 4)
		} else {
			c1 = fifo.NewSync[uint32](k, "c1", 4)
			c2 = fifo.NewSync[uint32](k, "c2", 4)
		}
		gen := accel.New(k, "gen", accel.Config{Kind: accel.Generator, Out: c1, WordLat: 3 * sim.NS, Seed: 4})
		sc := accel.New(k, "scale", accel.Config{Kind: accel.Scale, In: c1, Out: c2, WordLat: 2 * sim.NS, Factor: 7})
		sink := accel.New(k, "sink", accel.Config{Kind: accel.Sink, In: c2, WordLat: 4 * sim.NS})
		for i, a := range []*accel.Accel{gen, sc, sink} {
			b.Map(a.Name(), uint32(i*0x100), accel.NumRegs, a.Regs())
		}
		const jobs, words = 3, 40
		k.Thread("ctrl", func(p *sim.Process) {
			in := bus.NewInitiator(p, b, 40*sim.NS)
			for j := 0; j < jobs; j++ {
				for _, base := range []uint32{0x200, 0x100, 0x000} {
					startJob(in, base, words)
				}
				for _, base := range []uint32{0x000, 0x100, 0x200} {
					waitIdle(p, in, base, 80*sim.NS)
				}
			}
		})
		k.Run(sim.RunForever)
		k.Shutdown()
		return sink.JobDates(), sink.Checksum()
	}
	smartDates, smartSum := run(true)
	syncDates, syncSum := run(false)
	if smartSum != syncSum {
		t.Errorf("checksums differ: smart %x sync %x", smartSum, syncSum)
	}
	if fmt.Sprint(smartDates) != fmt.Sprint(syncDates) {
		t.Errorf("job dates differ:\nsmart %v\nsync  %v", smartDates, syncDates)
	}
}
