package bus_test

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/sim"
)

func TestIRQRaiseAndAck(t *testing.T) {
	k := sim.NewKernel("t")
	b := bus.NewBus(k, "bus", 0)
	c := bus.NewIRQController(k, "irq")
	b.Map("irq", 0x100, bus.IRQNumRegs, c)
	var wokenAt sim.Time = -1
	k.Thread("cpu", func(p *sim.Process) {
		in := bus.NewInitiator(p, b, 100*sim.NS)
		in.WriteWord(0x100+bus.IRQRegEnable, 0b10) // enable line 1 only
		p.WaitEvent(c.Event())
		wokenAt = k.Now()
		pend := in.ReadWord(0x100 + bus.IRQRegPending)
		if pend != 0b10 {
			t.Errorf("pending = %#b, want 0b10 (line 0 disabled)", pend)
		}
		in.WriteWord(0x100+bus.IRQRegPending, 0b10) // ack
		if in.ReadWord(0x100+bus.IRQRegPending) != 0 {
			t.Error("pending not cleared by ack")
		}
	})
	k.Thread("dev", func(p *sim.Process) {
		p.Wait(20 * sim.NS)
		c.Raise(0) // disabled: no event
		p.Wait(20 * sim.NS)
		c.Raise(1)
	})
	k.Run(sim.RunForever)
	k.Shutdown()
	if wokenAt != 40*sim.NS {
		t.Errorf("woken at %v, want 40ns", wokenAt)
	}
}

func TestIRQDecoupledRaiseDateRespected(t *testing.T) {
	// A device raising with a future local date: the interrupt must be
	// observable only at that date.
	k := sim.NewKernel("t")
	c := bus.NewIRQController(k, "irq")
	var wokenAt sim.Time = -1
	k.Thread("cpu", func(p *sim.Process) {
		// Enable directly (testbench shortcut through a transaction).
		c.BTransport(p, &bus.Transaction{Cmd: bus.Write, Addr: bus.IRQRegEnable, Data: []uint32{1}})
		p.WaitEvent(c.Event())
		wokenAt = k.Now()
	})
	k.Thread("dev", func(p *sim.Process) {
		p.Inc(75 * sim.NS) // decoupled: raise dated 75ns at global 0
		c.Raise(0)
	})
	k.Run(sim.RunForever)
	k.Shutdown()
	if wokenAt != 75*sim.NS {
		t.Errorf("woken at %v, want 75ns (raise date)", wokenAt)
	}
}

func TestIRQEnableAfterRaise(t *testing.T) {
	// Enabling a line that is already pending fires the event.
	k := sim.NewKernel("t")
	c := bus.NewIRQController(k, "irq")
	var wokenAt sim.Time = -1
	k.Thread("dev", func(p *sim.Process) {
		c.Raise(3)
	})
	k.Thread("cpu", func(p *sim.Process) {
		p.Wait(50 * sim.NS)
		c.BTransport(p, &bus.Transaction{Cmd: bus.Write, Addr: bus.IRQRegEnable, Data: []uint32{1 << 3}})
		p.WaitEvent(c.Event())
		wokenAt = k.Now()
	})
	k.Run(sim.RunForever)
	k.Shutdown()
	if wokenAt < 50*sim.NS {
		t.Errorf("woken at %v, want >= 50ns", wokenAt)
	}
	if wokenAt == -1 {
		t.Fatal("never woken after late enable")
	}
}

func TestIRQVisibilityBeforeRaiseDate(t *testing.T) {
	k := sim.NewKernel("t")
	c := bus.NewIRQController(k, "irq")
	k.Thread("dev", func(p *sim.Process) {
		p.Inc(60 * sim.NS)
		c.Raise(0)
	})
	k.Thread("poller", func(p *sim.Process) {
		c.BTransport(p, &bus.Transaction{Cmd: bus.Write, Addr: bus.IRQRegEnable, Data: []uint32{1}})
		p.Wait(30 * sim.NS)
		got := []uint32{9}
		c.BTransport(p, &bus.Transaction{Cmd: bus.Read, Addr: bus.IRQRegPending, Data: got})
		if got[0] != 0 {
			t.Errorf("pending visible at 30ns (%#x), raise dated 60ns", got[0])
		}
		p.Wait(40 * sim.NS)
		c.BTransport(p, &bus.Transaction{Cmd: bus.Read, Addr: bus.IRQRegPending, Data: got})
		if got[0] != 1 {
			t.Errorf("pending not visible at 70ns: %#x", got[0])
		}
	})
	k.Run(sim.RunForever)
	k.Shutdown()
}

func TestIRQBadLinePanics(t *testing.T) {
	c := bus.NewIRQController(sim.NewKernel("t"), "irq")
	defer func() {
		if recover() == nil {
			t.Error("no panic for line 32")
		}
	}()
	c.Raise(32)
}
