package bus

import (
	"fmt"

	"repro/internal/sim"
)

// IRQ controller register indices.
const (
	// IRQRegPending reads the pending-and-enabled mask as observable at
	// the caller's date; writing acknowledges (clears) the written bits.
	IRQRegPending = 0
	// IRQRegEnable reads/writes the enable mask.
	IRQRegEnable = 1
	// IRQNumRegs is the register file size.
	IRQNumRegs = 2
)

// IRQController is a level-latched interrupt controller: devices Raise
// lines at their local dates, software waits on Event and acknowledges
// through the bus. It gives the case-study SoC an alternative to status
// polling.
//
// Like the Smart FIFO, the controller is temporal-decoupling aware: a
// device may raise an interrupt with a local date ahead of the global
// date. The pending bit becomes *observable* (through IRQRegPending and
// Event) only at the raise date, so interrupt timing matches a
// non-decoupled model exactly.
type IRQController struct {
	k    *sim.Kernel
	name string

	pending   uint32 // raised, not yet acknowledged (internal view)
	raiseDate [32]sim.Time
	enable    uint32

	ev *sim.Event
}

// NewIRQController creates a controller with all lines disabled.
func NewIRQController(k *sim.Kernel, name string) *IRQController {
	return &IRQController{k: k, name: name, ev: sim.NewEvent(k, name+".irq")}
}

// Name returns the controller name.
func (c *IRQController) Name() string { return c.name }

// Event is notified when an enabled line becomes pending (delayed to the
// raise date, §III-B style).
func (c *IRQController) Event() *sim.Event { return c.ev }

// Raise latches line at the calling process's local date (the global date
// outside any process). Raising an already-pending line keeps the earlier
// date.
func (c *IRQController) Raise(line int) {
	if line < 0 || line >= 32 {
		panic(fmt.Sprintf("bus: %s: bad IRQ line %d", c.name, line))
	}
	bit := uint32(1) << line
	if c.pending&bit != 0 {
		return
	}
	at := c.k.Now()
	if p := c.k.Current(); p != nil {
		at = p.LocalTime()
	}
	c.pending |= bit
	c.raiseDate[line] = at
	c.rearm()
}

// visiblePending returns the pending-and-enabled bits observable at date t.
func (c *IRQController) visiblePending(t sim.Time) uint32 {
	var v uint32
	for line := 0; line < 32; line++ {
		bit := uint32(1) << line
		if c.pending&c.enable&bit != 0 && c.raiseDate[line] <= t {
			v |= bit
		}
	}
	return v
}

// rearm (re)schedules the interrupt event for the earliest enabled pending
// raise date, replacing any stale pending notification. The date is
// authoritative, so this uses NotifyAtReplace — which also elides all
// queue traffic while no handler is subscribed to the line.
func (c *IRQController) rearm() {
	var earliest sim.Time = -1
	for line := 0; line < 32; line++ {
		bit := uint32(1) << line
		if c.pending&c.enable&bit == 0 {
			continue
		}
		if earliest < 0 || c.raiseDate[line] < earliest {
			earliest = c.raiseDate[line]
		}
	}
	if earliest < 0 {
		c.ev.CancelNotify()
		return
	}
	c.ev.NotifyAtReplace(earliest)
}

// BTransport implements Target: pending (read/ack) and enable registers.
func (c *IRQController) BTransport(p *sim.Process, t *Transaction) {
	if int(t.Addr)+len(t.Data) > IRQNumRegs {
		panic(fmt.Sprintf("bus: %s: access beyond IRQ registers", c.name))
	}
	p.Inc(sim.NS)
	for i := range t.Data {
		switch int(t.Addr) + i {
		case IRQRegPending:
			if t.Cmd == Read {
				t.Data[i] = c.visiblePending(p.LocalTime())
			} else {
				c.pending &^= t.Data[i] // acknowledge
				c.rearm()
			}
		case IRQRegEnable:
			if t.Cmd == Read {
				t.Data[i] = c.enable
			} else {
				c.enable = t.Data[i]
				c.rearm()
			}
		}
	}
}

var _ Target = (*IRQController)(nil)
