package bus_test

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/sim"
)

func TestRoutingAndLatency(t *testing.T) {
	k := sim.NewKernel("t")
	b := bus.NewBus(k, "bus", 2*sim.NS)
	mem := bus.NewMemory(64, 3*sim.NS, 4*sim.NS)
	b.Map("mem", 0x100, 64, mem)
	k.Thread("init", func(p *sim.Process) {
		b.BTransport(p, &bus.Transaction{Cmd: bus.Write, Addr: 0x110, Data: []uint32{7, 8}})
		// 2ns bus + 2×4ns memory write.
		if p.LocalTime() != 10*sim.NS {
			t.Errorf("after write: local %v, want 10ns", p.LocalTime())
		}
		got := make([]uint32, 2)
		b.BTransport(p, &bus.Transaction{Cmd: bus.Read, Addr: 0x110, Data: got})
		if got[0] != 7 || got[1] != 8 {
			t.Errorf("read back %v", got)
		}
		// +2ns bus + 2×3ns read.
		if p.LocalTime() != 18*sim.NS {
			t.Errorf("after read: local %v, want 18ns", p.LocalTime())
		}
	})
	k.Run(sim.RunForever)
	if b.Accesses() != 2 {
		t.Errorf("Accesses = %d, want 2", b.Accesses())
	}
	if mem.Peek(0x10) != 7 {
		t.Errorf("memory word 0x10 = %d", mem.Peek(0x10))
	}
}

func TestUnmappedPanics(t *testing.T) {
	k := sim.NewKernel("t")
	b := bus.NewBus(k, "bus", 0)
	b.Map("mem", 0, 16, bus.NewMemory(16, 0, 0))
	caught := false
	k.Thread("init", func(p *sim.Process) {
		defer func() {
			if recover() != nil {
				caught = true
			}
		}()
		b.BTransport(p, &bus.Transaction{Cmd: bus.Read, Addr: 0x999, Data: []uint32{0}})
	})
	k.Run(sim.RunForever)
	if !caught {
		t.Error("unmapped access did not panic")
	}
}

func TestSplitBurstPanics(t *testing.T) {
	k := sim.NewKernel("t")
	b := bus.NewBus(k, "bus", 0)
	b.Map("a", 0, 4, bus.NewMemory(4, 0, 0))
	b.Map("b", 4, 4, bus.NewMemory(4, 0, 0))
	caught := false
	k.Thread("init", func(p *sim.Process) {
		defer func() {
			if recover() != nil {
				caught = true
			}
		}()
		b.BTransport(p, &bus.Transaction{Cmd: bus.Read, Addr: 2, Data: make([]uint32, 4)})
	})
	k.Run(sim.RunForever)
	if !caught {
		t.Error("window-crossing burst did not panic")
	}
}

func TestOverlappingMapPanics(t *testing.T) {
	k := sim.NewKernel("t")
	b := bus.NewBus(k, "bus", 0)
	b.Map("a", 0, 16, bus.NewMemory(16, 0, 0))
	defer func() {
		if recover() == nil {
			t.Error("overlapping Map did not panic")
		}
	}()
	b.Map("b", 8, 16, bus.NewMemory(16, 0, 0))
}

func TestRegisterFileCallbacks(t *testing.T) {
	k := sim.NewKernel("t")
	b := bus.NewBus(k, "bus", sim.NS)
	rf := bus.NewRegisterFile(4, sim.NS)
	var startedAt sim.Time = -1
	rf.OnWrite = func(p *sim.Process, idx int, v uint32) bool {
		if idx == 0 && v == 1 {
			startedAt = p.LocalTime()
			return false // start bit does not store
		}
		return true
	}
	rf.OnRead = func(p *sim.Process, idx int) (uint32, bool) {
		if idx == 3 {
			return 0xdead, true // live status register
		}
		return 0, false
	}
	b.Map("regs", 0x200, 4, rf)
	k.Thread("init", func(p *sim.Process) {
		b.BTransport(p, &bus.Transaction{Cmd: bus.Write, Addr: 0x201, Data: []uint32{42}})
		b.BTransport(p, &bus.Transaction{Cmd: bus.Write, Addr: 0x200, Data: []uint32{1}})
		got := []uint32{0}
		b.BTransport(p, &bus.Transaction{Cmd: bus.Read, Addr: 0x203, Data: got})
		if got[0] != 0xdead {
			t.Errorf("status read %#x, want 0xdead", got[0])
		}
	})
	k.Run(sim.RunForever)
	if rf.Get(1) != 42 {
		t.Errorf("reg1 = %d, want 42", rf.Get(1))
	}
	if rf.Get(0) != 0 {
		t.Error("start bit stored despite callback veto")
	}
	if startedAt != 4*sim.NS { // 2 transactions × (1ns bus + 1ns reg)
		t.Errorf("start at %v, want 4ns", startedAt)
	}
}

func TestInitiatorQuantumDecoupling(t *testing.T) {
	k := sim.NewKernel("t")
	b := bus.NewBus(k, "bus", sim.NS)
	mem := bus.NewMemory(1024, sim.NS, sim.NS)
	b.Map("mem", 0, 1024, mem)
	k.Thread("cpu", func(p *sim.Process) {
		in := bus.NewInitiator(p, b, 100*sim.NS)
		for i := uint32(0); i < 50; i++ {
			in.WriteWord(i, i*3)
		}
		for i := uint32(0); i < 50; i++ {
			if in.ReadWord(i) != i*3 {
				t.Errorf("word %d corrupted", i)
			}
		}
	})
	k.Run(sim.RunForever)
	// 100 accesses × 2ns = 200ns of annotations with a 100ns quantum:
	// only a couple of context switches, not one per access.
	if cs := k.Stats().ContextSwitches; cs > 5 {
		t.Errorf("ContextSwitches = %d; quantum keeper not decoupling", cs)
	}
	if k.Now() < 100*sim.NS {
		t.Errorf("Now = %v; time did not advance past a quantum", k.Now())
	}
}

func TestCascadedBuses(t *testing.T) {
	k := sim.NewKernel("t")
	top := bus.NewBus(k, "top", sim.NS)
	sub := bus.NewBus(k, "sub", sim.NS)
	mem := bus.NewMemory(16, 0, 0)
	sub.Map("mem", 0, 16, mem)
	top.Map("sub", 0x1000, 16, sub)
	k.Thread("init", func(p *sim.Process) {
		top.BTransport(p, &bus.Transaction{Cmd: bus.Write, Addr: 0x1002, Data: []uint32{5}})
		if p.LocalTime() != 2*sim.NS { // two bus hops
			t.Errorf("local %v, want 2ns", p.LocalTime())
		}
	})
	k.Run(sim.RunForever)
	if mem.Peek(2) != 5 {
		t.Errorf("mem[2] = %d", mem.Peek(2))
	}
}
