package bus_test

import (
	"testing"
	"testing/quick"

	"repro/internal/bus"
	"repro/internal/sim"
)

// TestQuickMemoryRoundTrip: arbitrary bursts written through the bus read
// back identically, and the annotated latency equals the word count times
// the per-word latencies plus the bus hops.
func TestQuickMemoryRoundTrip(t *testing.T) {
	prop := func(addrRaw uint16, data []uint32) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 64 {
			data = data[:64]
		}
		const size = 4096
		addr := uint32(addrRaw) % (size - uint32(len(data)))
		k := sim.NewKernel("q")
		b := bus.NewBus(k, "bus", 2*sim.NS)
		mem := bus.NewMemory(size, 3*sim.NS, 5*sim.NS)
		b.Map("mem", 0, size, mem)
		ok := true
		k.Thread("init", func(p *sim.Process) {
			b.BTransport(p, &bus.Transaction{Cmd: bus.Write, Addr: addr, Data: data})
			wantW := 2*sim.NS + 5*sim.NS*sim.Time(len(data))
			if p.LocalTime() != wantW {
				ok = false
			}
			got := make([]uint32, len(data))
			b.BTransport(p, &bus.Transaction{Cmd: bus.Read, Addr: addr, Data: got})
			for i := range data {
				if got[i] != data[i] {
					ok = false
				}
			}
			wantR := wantW + 2*sim.NS + 3*sim.NS*sim.Time(len(data))
			if p.LocalTime() != wantR {
				ok = false
			}
		})
		k.Run(sim.RunForever)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickRegisterFileStores: register writes store and read back through
// the bus for arbitrary index/value pairs.
func TestQuickRegisterFileStores(t *testing.T) {
	prop := func(idxRaw uint8, v uint32) bool {
		const n = 32
		idx := uint32(idxRaw) % n
		k := sim.NewKernel("q")
		b := bus.NewBus(k, "bus", sim.NS)
		rf := bus.NewRegisterFile(n, sim.NS)
		b.Map("regs", 0x400, n, rf)
		ok := true
		k.Thread("init", func(p *sim.Process) {
			b.BTransport(p, &bus.Transaction{Cmd: bus.Write, Addr: 0x400 + idx, Data: []uint32{v}})
			got := []uint32{0}
			b.BTransport(p, &bus.Transaction{Cmd: bus.Read, Addr: 0x400 + idx, Data: got})
			ok = got[0] == v && rf.Get(int(idx)) == v
		})
		k.Run(sim.RunForever)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
