// Package bus is the memory-mapped TLM substrate of the case-study SoC
// (paper §IV-C): an address-routed interconnect with blocking transport,
// memory and register-file targets, and an initiator helper that applies
// TLM-2.0-style quantum-keeper temporal decoupling. This is the side of
// the SoC the paper calls "communications done by TLM transactions ...
// temporally decoupled using existing methods".
package bus

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/td"
)

// Cmd is a transaction command.
type Cmd int

const (
	// Read copies from the target into Data.
	Read Cmd = iota
	// Write copies Data into the target.
	Write
)

// String names the command.
func (c Cmd) String() string {
	if c == Read {
		return "read"
	}
	return "write"
}

// Transaction is a word-granular generic payload: Addr is a word address,
// Data the word burst to move.
type Transaction struct {
	Cmd  Cmd
	Addr uint32
	Data []uint32
}

// Target handles transactions. BTransport follows TLM b_transport: it runs
// in the initiator process's context and annotates its latency onto the
// caller with Inc, so decoupled initiators keep decoupling across the
// interconnect.
type Target interface {
	// BTransport executes t; addr is already target-relative.
	BTransport(p *sim.Process, t *Transaction)
}

// mapping binds a word-address window to a target.
type mapping struct {
	base, size uint32
	t          Target
	name       string
}

// Bus routes transactions to targets by address and charges a per-access
// routing latency.
type Bus struct {
	k       *sim.Kernel
	name    string
	latency sim.Time
	maps    []mapping
	// Accesses counts routed transactions.
	accesses uint64
}

// NewBus creates a bus with the given per-transaction routing latency.
func NewBus(k *sim.Kernel, name string, latency sim.Time) *Bus {
	if latency < 0 {
		panic(fmt.Sprintf("bus: %s: negative latency", name))
	}
	return &Bus{k: k, name: name, latency: latency}
}

// Name returns the bus name.
func (b *Bus) Name() string { return b.name }

// Accesses returns the number of transactions routed so far.
func (b *Bus) Accesses() uint64 { return b.accesses }

// Map binds [base, base+size) to target t. Windows must not overlap.
func (b *Bus) Map(name string, base, size uint32, t Target) {
	if size == 0 {
		panic(fmt.Sprintf("bus: %s: empty window %q", b.name, name))
	}
	for _, m := range b.maps {
		if base < m.base+m.size && m.base < base+size {
			panic(fmt.Sprintf("bus: %s: window %q [%#x,%#x) overlaps %q [%#x,%#x)",
				b.name, name, base, base+size, m.name, m.base, m.base+m.size))
		}
	}
	b.maps = append(b.maps, mapping{base: base, size: size, t: t, name: name})
	sort.Slice(b.maps, func(i, j int) bool { return b.maps[i].base < b.maps[j].base })
}

// BTransport routes t to the mapped target, charging the bus latency onto
// the calling process. It panics on unmapped addresses (a modeling error).
//
// The whole burst is routed as one transaction: the payload slice is
// handed through untouched (targets move it with copy and one lumped
// latency Inc), and the address is rebased in place for the duration of
// the downstream call instead of copying the transaction — the bulk
// transfer path allocates nothing per hop.
func (b *Bus) BTransport(p *sim.Process, t *Transaction) {
	end := t.Addr + uint32(len(t.Data))
	i := sort.Search(len(b.maps), func(i int) bool {
		return b.maps[i].base+b.maps[i].size > t.Addr
	})
	if i == len(b.maps) || t.Addr < b.maps[i].base || end > b.maps[i].base+b.maps[i].size {
		panic(fmt.Sprintf("bus: %s: %v at unmapped/split address %#x..%#x", b.name, t.Cmd, t.Addr, end))
	}
	b.accesses++
	p.Inc(b.latency)
	abs := t.Addr
	t.Addr = abs - b.maps[i].base
	b.maps[i].t.BTransport(p, t)
	t.Addr = abs
}

var _ Target = (*Bus)(nil) // buses can cascade

// Memory is a word-addressed RAM target with per-word access latencies.
type Memory struct {
	words    []uint32
	readLat  sim.Time
	writeLat sim.Time
}

// NewMemory creates a memory of size words.
func NewMemory(size uint32, readLat, writeLat sim.Time) *Memory {
	return &Memory{words: make([]uint32, size), readLat: readLat, writeLat: writeLat}
}

// Size returns the capacity in words.
func (m *Memory) Size() uint32 { return uint32(len(m.words)) }

// Peek reads a word without timing (testbench access).
func (m *Memory) Peek(addr uint32) uint32 { return m.words[addr] }

// Poke writes a word without timing (testbench access).
func (m *Memory) Poke(addr uint32, v uint32) { m.words[addr] = v }

// BTransport implements Target with len(Data) × per-word latency.
func (m *Memory) BTransport(p *sim.Process, t *Transaction) {
	if int(t.Addr)+len(t.Data) > len(m.words) {
		panic(fmt.Sprintf("bus: memory access beyond size: %#x+%d > %d", t.Addr, len(t.Data), len(m.words)))
	}
	switch t.Cmd {
	case Read:
		p.Inc(m.readLat * sim.Time(len(t.Data)))
		copy(t.Data, m.words[t.Addr:])
	case Write:
		p.Inc(m.writeLat * sim.Time(len(t.Data)))
		copy(m.words[t.Addr:], t.Data)
	}
}

var _ Target = (*Memory)(nil)

// RegisterFile is a small control/status target. Reads and writes go
// through optional callbacks so device models can implement side effects
// (start bits, status registers, FIFO level registers).
type RegisterFile struct {
	regs []uint32
	lat  sim.Time
	// OnWrite, if non-nil, intercepts writes to register idx; returning
	// false suppresses the default store.
	OnWrite func(p *sim.Process, idx int, v uint32) bool
	// OnRead, if non-nil, overrides reads from register idx.
	OnRead func(p *sim.Process, idx int) (uint32, bool)
}

// NewRegisterFile creates a register file with n registers and a fixed
// per-access latency.
func NewRegisterFile(n int, lat sim.Time) *RegisterFile {
	return &RegisterFile{regs: make([]uint32, n), lat: lat}
}

// Get reads register idx without timing or callbacks.
func (r *RegisterFile) Get(idx int) uint32 { return r.regs[idx] }

// Set writes register idx without timing or callbacks.
func (r *RegisterFile) Set(idx int, v uint32) { r.regs[idx] = v }

// BTransport implements Target register by register.
func (r *RegisterFile) BTransport(p *sim.Process, t *Transaction) {
	if int(t.Addr)+len(t.Data) > len(r.regs) {
		panic(fmt.Sprintf("bus: register access beyond file: %#x+%d > %d", t.Addr, len(t.Data), len(r.regs)))
	}
	p.Inc(r.lat * sim.Time(len(t.Data)))
	for i := range t.Data {
		idx := int(t.Addr) + i
		switch t.Cmd {
		case Read:
			if r.OnRead != nil {
				if v, ok := r.OnRead(p, idx); ok {
					t.Data[i] = v
					continue
				}
			}
			t.Data[i] = r.regs[idx]
		case Write:
			if r.OnWrite != nil && !r.OnWrite(p, idx, t.Data[i]) {
				continue
			}
			r.regs[idx] = t.Data[i]
		}
	}
}

var _ Target = (*RegisterFile)(nil)

// Initiator is a convenience front end for a thread process issuing bus
// transactions under quantum-keeper decoupling, the "existing methods" the
// paper uses for the memory-mapped side.
type Initiator struct {
	p   *sim.Process
	bus *Bus
	qk  *td.QuantumKeeper

	// word and tx are reused across single-word accesses so the polling
	// hot path (status and FIFO-level reads) allocates nothing.
	word [1]uint32
	tx   Transaction
}

// NewInitiator binds process p to bus b with the given quantum.
func NewInitiator(p *sim.Process, b *Bus, quantum sim.Time) *Initiator {
	return &Initiator{p: p, bus: b, qk: td.NewQuantumKeeper(p, quantum)}
}

// Keeper exposes the quantum keeper (e.g. to force syncs).
func (in *Initiator) Keeper() *td.QuantumKeeper { return in.qk }

// ReadWord reads one word.
func (in *Initiator) ReadWord(addr uint32) uint32 {
	in.word[0] = 0
	in.transport(Read, addr, in.word[:])
	return in.word[0]
}

// WriteWord writes one word.
func (in *Initiator) WriteWord(addr uint32, v uint32) {
	in.word[0] = v
	in.transport(Write, addr, in.word[:])
}

// ReadBurst fills data from addr in one bus transaction.
func (in *Initiator) ReadBurst(addr uint32, data []uint32) {
	in.transport(Read, addr, data)
}

// WriteBurst stores data at addr in one bus transaction.
func (in *Initiator) WriteBurst(addr uint32, data []uint32) {
	in.transport(Write, addr, data)
}

func (in *Initiator) transport(cmd Cmd, addr uint32, data []uint32) {
	in.tx = Transaction{Cmd: cmd, Addr: addr, Data: data}
	in.bus.BTransport(in.p, &in.tx)
	in.tx.Data = nil // do not pin the caller's burst buffer
	in.checkSync()
}

func (in *Initiator) checkSync() {
	if in.qk.NeedSync() {
		in.qk.Sync()
	}
}
