package noc

import (
	"fmt"

	"repro/internal/fifo"
	"repro/internal/sim"
)

// NIConfig parameterizes a network interface.
type NIConfig struct {
	// PacketLen is the fixed packet size in words. Streams crossing the
	// NoC must carry a multiple of PacketLen words.
	PacketLen int
	// Cycle is the per-flit processing time of the interface.
	Cycle sim.Time
	// Dst is the destination router index for the ingress stream
	// (ignored if the NI has no ingress side).
	Dst int
}

// NI is a network interface: the §IV-C module "in charge of packetizing
// data" between a (possibly temporally decoupled) accelerator FIFO and the
// mesh. It is modeled entirely as a run-to-completion method process — the
// paper's point that the Smart FIFO's non-blocking interface makes
// SC_THREAD-free interface models possible.
//
// The ingress side collects PacketLen words from src once they are
// externally available, frames them into flits and injects one flit per
// cycle. The egress side delivers one flit per cycle from the mesh into
// dst, back-pressured by dst's external fullness.
type NI struct {
	m    *Mesh
	name string
	idx  int
	cfg  NIConfig

	// src and dst are end interfaces (rather than full Channels) so a
	// netlist build can hand the NI one endpoint of a core.ShardedFIFO
	// whose other side lives on a different kernel.
	src fifo.ReadEnd[uint32]  // accelerator → NoC (nil if egress-only)
	dst fifo.WriteEnd[uint32] // NoC → accelerator (nil if ingress-only)

	inj *fifo.FIFO[Flit]
	del *fifo.FIFO[Flit]

	assembly    []uint32 // words collected toward the current packet
	pending     []Flit   // assembled flits awaiting injection (reused)
	pendingHead int      // next flit of pending to inject
	tickArmed   bool     // a self-scheduled cycle tick is pending

	proc *sim.Process
}

// AttachNI creates a network interface on the router at (x, y). src is the
// accelerator output to packetize into the mesh (nil for an egress-only
// NI); dst is the accelerator input fed from the mesh (nil for an
// ingress-only NI).
func (m *Mesh) AttachNI(name string, x, y int, src fifo.ReadEnd[uint32], dst fifo.WriteEnd[uint32], cfg NIConfig) *NI {
	if cfg.PacketLen <= 0 {
		panic(fmt.Sprintf("noc: NI %s: non-positive packet length", name))
	}
	if cfg.Cycle <= 0 {
		cfg.Cycle = sim.NS
	}
	if src == nil && dst == nil {
		panic(fmt.Sprintf("noc: NI %s: needs at least one side", name))
	}
	idx := m.RouterIndex(x, y)
	r := m.routers[idx]
	if src != nil {
		if r.ingressNI {
			panic(fmt.Sprintf("noc: NI %s: router (%d,%d) already has an ingress NI", name, x, y))
		}
		r.ingressNI = true
	}
	if dst != nil {
		if r.egressNI {
			panic(fmt.Sprintf("noc: NI %s: router (%d,%d) already has an egress NI", name, x, y))
		}
		r.egressNI = true
	}
	ni := &NI{
		m:    m,
		name: name,
		idx:  idx,
		cfg:  cfg,
		src:  src,
		dst:  dst,
		inj:  m.injectionQueue(idx),
		del:  m.deliveryQueue(idx),
	}
	if src != nil {
		// Preallocated packet staging: the assembly buffer fills via
		// bulk TryReadBurst and the flit buffer is reused per packet,
		// so steady-state packetization allocates nothing.
		ni.assembly = make([]uint32, 0, cfg.PacketLen)
		ni.pending = make([]Flit, 0, cfg.PacketLen)
	}
	var events []*sim.Event
	if src != nil {
		events = append(events, src.NotEmpty(), ni.inj.NotFull())
	}
	if dst != nil {
		events = append(events, ni.del.NotEmpty(), dst.NotFull())
	}
	ni.proc = m.k.MethodNoInit(name, ni.step, events...)
	return ni
}

// Name returns the interface name.
func (ni *NI) Name() string { return ni.name }

// RouterIndex returns the index of the router the NI is attached to.
func (ni *NI) RouterIndex() int { return ni.idx }

// step is the NI method body, with the same cycle-boundary discipline as
// the routers: event activations arm a tick, the tick does the work, and
// both directions may each move one flit per tick. As for the routers,
// the tick is only re-armed while progress is possible; work blocked on a
// full queue idles on the static NotFull sensitivity instead of polling,
// so a deadlocked configuration quiesces instead of spinning.
func (ni *NI) step(p *sim.Process) {
	if ni.tickArmed {
		ni.tickArmed = false
		if ni.src != nil {
			ni.ingress(p)
		}
		if ni.dst != nil {
			ni.egress()
		}
	}
	if !ni.tickArmed && ni.progressPossible() {
		ni.tickArmed = true
		p.NextTrigger(ni.cfg.Cycle)
	}
}

// progressPossible reports whether a tick now would move data.
func (ni *NI) progressPossible() bool {
	if ni.src != nil {
		if ni.pendingHead < len(ni.pending) && !ni.inj.IsFull() {
			return true
		}
		if ni.pendingHead == len(ni.pending) && !ni.src.IsEmpty() {
			return true
		}
	}
	if ni.dst != nil && !ni.del.IsEmpty() && !ni.dst.IsFull() {
		return true
	}
	return false
}

// ingress assembles and injects packets; it reports whether work was done
// or blocked work remains.
//
// The Smart FIFO's NotEmpty is an edge event (it fires when the channel
// becomes externally non-empty, §III-B), so the NI must drain what is
// visible on every activation rather than poll for a level: words are
// collected into an assembly buffer as they become externally available
// (IsEmpty/TryRead evaluate availability at the method's synchronized
// activation date, so a decoupled producer's future-dated words are not
// visible early), and a packet is framed when PacketLen words have been
// gathered.
func (ni *NI) ingress(p *sim.Process) bool {
	busy := false
	if ni.pendingHead == len(ni.pending) {
		if got := len(ni.assembly); got < ni.cfg.PacketLen {
			// Bulk collection: one TryReadBurst (per = 0, the NI is
			// a synchronized method) drains every externally visible
			// word into the assembly buffer — the Smart FIFO's bulk
			// fast path instead of a TryRead per word.
			space := ni.assembly[got:ni.cfg.PacketLen]
			n := fifo.TryReadBurst(p, ni.src, space, 0)
			ni.assembly = ni.assembly[:got+n]
			busy = busy || n > 0
		}
		if len(ni.assembly) == ni.cfg.PacketLen {
			ni.pending = ni.pending[:0]
			ni.pendingHead = 0
			for i, w := range ni.assembly {
				ni.pending = append(ni.pending, Flit{
					Dst:  ni.cfg.Dst,
					Src:  ni.idx,
					Word: w,
					Head: i == 0,
					Tail: i == ni.cfg.PacketLen-1,
				})
			}
			ni.assembly = ni.assembly[:0]
			ni.m.stats.PacketsInjected++
		}
	}
	if ni.pendingHead < len(ni.pending) {
		// Inject one flit per cycle.
		if ni.inj.TryWrite(ni.pending[ni.pendingHead]) {
			ni.pendingHead++
		}
		busy = true
	}
	// More words already available: keep pacing ourselves — no edge
	// event will announce them again.
	if !ni.src.IsEmpty() {
		busy = true
	}
	return busy
}

// egress delivers one flit per cycle into the accelerator FIFO; it reports
// whether work was done or blocked work remains.
func (ni *NI) egress() bool {
	f, ok := ni.del.Peek()
	if !ok {
		return false
	}
	if !ni.dst.TryWrite(f.Word) {
		// Accelerator back-pressure; re-armed by dst.NotFull.
		return true
	}
	ni.del.TryRead()
	if f.Tail {
		ni.m.stats.PacketsDelivered++
	}
	return true
}
