package noc_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fifo"
	"repro/internal/noc"
	"repro/internal/sim"
)

// buildStream wires src-accel → NI → mesh → NI → dst-accel across the mesh
// corners and returns the endpoint channels.
func buildStream(k *sim.Kernel, m *noc.Mesh, w, h, packetLen int) (src, dst fifo.Channel[uint32]) {
	srcCh := core.NewSmart[uint32](k, "srcCh", 16)
	dstCh := core.NewSmart[uint32](k, "dstCh", 16)
	m.AttachNI("ni.in", 0, 0, srcCh, nil, noc.NIConfig{
		PacketLen: packetLen,
		Cycle:     sim.NS,
		Dst:       m.RouterIndex(w-1, h-1),
	})
	m.AttachNI("ni.out", w-1, h-1, nil, dstCh, noc.NIConfig{
		PacketLen: packetLen,
		Cycle:     sim.NS,
	})
	return srcCh, dstCh
}

func TestMeshDeliversAcrossCorners(t *testing.T) {
	const w, h, packetLen, nWords = 3, 3, 4, 64
	k := sim.NewKernel("mesh")
	m := noc.NewMesh(k, "noc", noc.Config{Width: w, Height: h, Cycle: sim.NS, FIFODepth: 4})
	srcCh, dstCh := buildStream(k, m, w, h, packetLen)
	k.Thread("producer", func(p *sim.Process) {
		for i := uint32(0); i < nWords; i++ {
			srcCh.Write(i * 7)
			p.Inc(2 * sim.NS)
		}
	})
	var got []uint32
	k.Thread("consumer", func(p *sim.Process) {
		for i := 0; i < nWords; i++ {
			got = append(got, dstCh.Read())
		}
	})
	k.Run(sim.RunForever)
	k.Shutdown()
	if len(got) != nWords {
		t.Fatalf("delivered %d words, want %d", len(got), nWords)
	}
	for i, v := range got {
		if v != uint32(i*7) {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*7)
		}
	}
	st := m.Stats()
	if st.PacketsInjected != nWords/packetLen || st.PacketsDelivered != nWords/packetLen {
		t.Errorf("packets injected/delivered = %d/%d, want %d", st.PacketsInjected, st.PacketsDelivered, nWords/packetLen)
	}
	// Corner to corner in a 3x3 mesh: 4 hops + local delivery per flit.
	if st.FlitsForwarded < nWords*4 {
		t.Errorf("FlitsForwarded = %d, want >= %d", st.FlitsForwarded, nWords*4)
	}
}

func TestMeshLatencyGrowsWithDistance(t *testing.T) {
	// One packet to an adjacent router vs across a 4x1 mesh: the longer
	// path must take strictly longer.
	arrival := func(width, dstX int) sim.Time {
		k := sim.NewKernel("mesh")
		m := noc.NewMesh(k, "noc", noc.Config{Width: width, Height: 1, Cycle: sim.NS, FIFODepth: 4})
		srcCh := core.NewSmart[uint32](k, "s", 8)
		dstCh := core.NewSmart[uint32](k, "d", 8)
		m.AttachNI("in", 0, 0, srcCh, nil, noc.NIConfig{PacketLen: 2, Cycle: sim.NS, Dst: m.RouterIndex(dstX, 0)})
		m.AttachNI("out", dstX, 0, nil, dstCh, noc.NIConfig{PacketLen: 2, Cycle: sim.NS})
		k.Thread("producer", func(p *sim.Process) {
			srcCh.Write(1)
			srcCh.Write(2)
		})
		var at sim.Time
		k.Thread("consumer", func(p *sim.Process) {
			dstCh.Read()
			dstCh.Read()
			at = p.LocalTime()
		})
		k.Run(sim.RunForever)
		k.Shutdown()
		return at
	}
	near, far := arrival(4, 1), arrival(4, 3)
	if far <= near {
		t.Errorf("far delivery (%v) not after near delivery (%v)", far, near)
	}
}

func TestTwoOpposingStreams(t *testing.T) {
	// Streams in both directions share routers without deadlock or loss.
	const w, h, packetLen, nWords = 4, 1, 4, 40
	k := sim.NewKernel("mesh")
	m := noc.NewMesh(k, "noc", noc.Config{Width: w, Height: h, Cycle: sim.NS, FIFODepth: 2})
	aOut := core.NewSmart[uint32](k, "aOut", 8)
	aIn := core.NewSmart[uint32](k, "aIn", 8)
	bOut := core.NewSmart[uint32](k, "bOut", 8)
	bIn := core.NewSmart[uint32](k, "bIn", 8)
	m.AttachNI("niA", 0, 0, aOut, aIn, noc.NIConfig{PacketLen: packetLen, Cycle: sim.NS, Dst: m.RouterIndex(3, 0)})
	m.AttachNI("niB", 3, 0, bOut, bIn, noc.NIConfig{PacketLen: packetLen, Cycle: sim.NS, Dst: m.RouterIndex(0, 0)})
	mk := func(name string, out *core.SmartFIFO[uint32], in *core.SmartFIFO[uint32], base uint32) {
		k.Thread(name+".p", func(p *sim.Process) {
			for i := uint32(0); i < nWords; i++ {
				out.Write(base + i)
				p.Inc(3 * sim.NS)
			}
		})
		k.Thread(name+".c", func(p *sim.Process) {
			for i := uint32(0); i < nWords; i++ {
				if v := in.Read(); v != (1000-base)+i {
					t.Errorf("%s: got %d, want %d", name, v, (1000-base)+i)
					return
				}
			}
		})
	}
	mk("a", aOut, aIn, 0)    // a sends 0.. and receives b's 1000..
	mk("b", bOut, bIn, 1000) // b sends 1000.. and receives a's 0..
	k.Run(sim.RunForever)
	k.Shutdown()
	if got := m.Stats().PacketsDelivered; got != 2*nWords/packetLen {
		t.Errorf("PacketsDelivered = %d, want %d", got, 2*nWords/packetLen)
	}
}

func TestDecoupledProducerDatesRespected(t *testing.T) {
	// A producer running far ahead in local time must not make its data
	// cross the NoC before the insertion dates: the NI collects packets
	// only when words are really available.
	k := sim.NewKernel("mesh")
	m := noc.NewMesh(k, "noc", noc.Config{Width: 2, Height: 1, Cycle: sim.NS, FIFODepth: 4})
	srcCh := core.NewSmart[uint32](k, "s", 64)
	dstCh := core.NewSmart[uint32](k, "d", 64)
	m.AttachNI("in", 0, 0, srcCh, nil, noc.NIConfig{PacketLen: 2, Cycle: sim.NS, Dst: 1})
	m.AttachNI("out", 1, 0, nil, dstCh, noc.NIConfig{PacketLen: 2, Cycle: sim.NS})
	k.Thread("producer", func(p *sim.Process) {
		// Entirely decoupled: all writes internal at global 0, dated
		// 100ns apart.
		for i := uint32(0); i < 4; i++ {
			srcCh.Write(i)
			p.Inc(100 * sim.NS)
		}
	})
	var dates []sim.Time
	k.Thread("consumer", func(p *sim.Process) {
		for i := 0; i < 4; i++ {
			dstCh.Read()
			dates = append(dates, p.LocalTime())
		}
	})
	k.Run(sim.RunForever)
	k.Shutdown()
	// Words dated 0,100,200,300; packets of 2 complete at 100 and 300,
	// so nothing can arrive before those dates.
	if dates[0] < 100*sim.NS {
		t.Errorf("first word delivered at %v, before its packet existed (100ns)", dates[0])
	}
	if dates[2] < 300*sim.NS {
		t.Errorf("third word delivered at %v, before its packet existed (300ns)", dates[2])
	}
}

func TestRouterIndexBounds(t *testing.T) {
	k := sim.NewKernel("mesh")
	m := noc.NewMesh(k, "noc", noc.Config{Width: 2, Height: 2, Cycle: sim.NS, FIFODepth: 2})
	if m.RouterIndex(1, 1) != 3 {
		t.Errorf("RouterIndex(1,1) = %d", m.RouterIndex(1, 1))
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-mesh coordinates did not panic")
		}
	}()
	m.RouterIndex(2, 0)
}

func TestManyParallelStreams(t *testing.T) {
	// A 3x3 mesh with 4 streams; all words delivered, per-stream order
	// preserved.
	const packetLen, nWords = 4, 32
	k := sim.NewKernel("mesh")
	m := noc.NewMesh(k, "noc", noc.Config{Width: 3, Height: 3, Cycle: sim.NS, FIFODepth: 4})
	routes := [][4]int{ // srcX, srcY, dstX, dstY
		{0, 0, 2, 2},
		{2, 0, 0, 2},
		{0, 2, 2, 0},
		{1, 1, 0, 0},
	}
	var okCount int
	for si, rt := range routes {
		si, rt := si, rt
		out := core.NewSmart[uint32](k, fmt.Sprintf("out%d", si), 8)
		in := core.NewSmart[uint32](k, fmt.Sprintf("in%d", si), 8)
		m.AttachNI(fmt.Sprintf("ni.in%d", si), rt[0], rt[1], out, nil,
			noc.NIConfig{PacketLen: packetLen, Cycle: sim.NS, Dst: m.RouterIndex(rt[2], rt[3])})
		m.AttachNI(fmt.Sprintf("ni.out%d", si), rt[2], rt[3], nil, in,
			noc.NIConfig{PacketLen: packetLen, Cycle: sim.NS})
		base := uint32(si * 10000)
		k.Thread(fmt.Sprintf("p%d", si), func(p *sim.Process) {
			for i := uint32(0); i < nWords; i++ {
				out.Write(base + i)
				p.Inc(sim.Time(1+si) * sim.NS)
			}
		})
		k.Thread(fmt.Sprintf("c%d", si), func(p *sim.Process) {
			for i := uint32(0); i < nWords; i++ {
				if v := in.Read(); v != base+i {
					t.Errorf("stream %d: got %d, want %d", si, v, base+i)
					return
				}
			}
			okCount++
		})
	}
	k.Run(sim.RunForever)
	k.Shutdown()
	if okCount != len(routes) {
		t.Errorf("only %d/%d streams completed", okCount, len(routes))
	}
}
