package noc

import (
	"context"
	"fmt"

	"repro/internal/netlist"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Scenario registry hook: a mesh streaming workload as a campaign model —
// N producer/consumer pairs crossing a mesh through packetizing NIs, with
// rates and payloads derived from the spec's "seed" through the
// deterministic scenario RNG.
//
// The workload is declared as a netlist graph of mesh islands. A mesh and
// its stream endpoints form ONE colocation unit: the routers and NIs are
// non-decoupled method processes whose arbitration depends on same-date
// delta ordering, which no barrier protocol can reproduce across kernels
// — the paper's own point that the NoC is the globally-synchronized part
// of the model ("NoC routers continue to use regular FIFOs"). The model
// scales out with the "meshes" parameter instead: independent replicated
// islands, partitioned across shards as whole units — trivially
// date-exact at any shard count.
func init() {
	scenario.Register(scenario.Model{
		Name: "noc",
		Keys: []string{"width", "height", "streams", "packet_len", "words",
			"fifo_depth", "cycle_ns", "seed", "decoupled", "meshes", "shards", "partitioner"},
		Run:   runScenario,
		Check: checkScenario,
	})
}

type streamParams struct {
	width, height, streams int
	packetLen, words       int
	fifoDepth              int
	cycle                  sim.Time
	decoupled              bool
	meshes                 int
	shards                 int
	partitioner            string
	seeds                  []int64 // rateSeed, paySeed per island
}

func streamConfig(p scenario.Params) (streamParams, error) {
	r := scenario.NewReader(p)
	c := streamParams{
		width:       r.Int("width", 2),
		height:      r.Int("height", 2),
		streams:     r.Int("streams", 1),
		packetLen:   r.Int("packet_len", 4),
		words:       r.Int("words", 32),
		fifoDepth:   r.Int("fifo_depth", 4),
		cycle:       r.Time("cycle_ns", sim.NS),
		decoupled:   r.Bool("decoupled", true),
		meshes:      r.Int("meshes", 1),
		shards:      r.Int("shards", 1),
		partitioner: r.String("partitioner", ""),
	}
	rng := scenario.Rand(r.Int64("seed", 1))
	if c.meshes >= 1 {
		// Island 0 draws the same two seeds the pre-netlist model drew,
		// so single-island digests are unchanged.
		for i := 0; i < c.meshes; i++ {
			c.seeds = append(c.seeds, rng.Int63(), rng.Int63())
		}
	}
	if err := r.Err(); err != nil {
		return c, err
	}
	if c.width < 1 || c.height < 1 {
		return c, fmt.Errorf("noc: bad mesh dimensions %dx%d", c.width, c.height)
	}
	if c.streams < 1 || c.streams > c.width {
		return c, fmt.Errorf("noc: streams (%d) must be in 1..width (%d)", c.streams, c.width)
	}
	if c.packetLen < 1 || c.words < 1 || c.words%c.packetLen != 0 {
		return c, fmt.Errorf("noc: words (%d) must be a positive multiple of packet_len (%d)", c.words, c.packetLen)
	}
	if c.fifoDepth < 1 {
		return c, fmt.Errorf("noc: fifo_depth must be >= 1")
	}
	if c.meshes < 1 {
		return c, fmt.Errorf("noc: meshes must be >= 1")
	}
	if c.shards < 1 {
		return c, fmt.Errorf("noc: shards must be >= 1")
	}
	if c.shards > c.meshes {
		return c, fmt.Errorf("noc: %d shards but only %d mesh islands (a mesh and its streams must share a kernel; raise 'meshes' to shard)",
			c.shards, c.meshes)
	}
	if c.shards > 1 && !c.decoupled {
		return c, fmt.Errorf("noc: the reference (decoupled=false) build cannot be sharded")
	}
	if _, err := netlist.PartitionerByName(c.partitioner); err != nil {
		return c, err
	}
	return c, nil
}

// islandGraph declares one mesh island onto g: the mesh (routers + NIs)
// as a structural module plus per-stream producer/consumer threads, all
// in one colocation group. Stream s injects at router (s, 0) and drains
// at (width-1-s, height-1), so streams share links and exercise
// arbitration. Island 0 keeps the historical unprefixed names. The
// consumers log dated deliveries into rec; checksums land in
// sums[island*streams+s]; the mesh pointer lands in meshes[island].
func islandGraph(g *netlist.Graph, island int, c streamParams, rec *trace.Recorder, sums []uint64, meshes []*Mesh) {
	prefix := ""
	if island > 0 {
		prefix = fmt.Sprintf("m%d.", island)
	}
	group := fmt.Sprintf("island%d", island)
	rateSeed, paySeed := c.seeds[2*island], c.seeds[2*island+1]

	meshMod := g.Structural(prefix+"mesh", nil).InGroup(group)
	type stream struct {
		src, dst *netlist.Chan[uint32]
		srcIn    netlist.InPort[uint32]  // the mesh (NI) reads the producer stream
		dstOut   netlist.OutPort[uint32] // the mesh (NI) writes the consumer stream
	}
	streams := make([]stream, c.streams)
	for s := 0; s < c.streams; s++ {
		streams[s].src = netlist.AddChan[uint32](g, fmt.Sprintf("%ss%d.src", prefix, s), c.fifoDepth).WithBurst(c.packetLen)
		streams[s].dst = netlist.AddChan[uint32](g, fmt.Sprintf("%ss%d.dst", prefix, s), c.fifoDepth)
		streams[s].srcIn = streams[s].src.Input(meshMod)
		streams[s].dstOut = streams[s].dst.Output(meshMod)
	}
	meshMod.Elab(func(k *sim.Kernel) {
		m := NewMesh(k, prefix+"noc", Config{Width: c.width, Height: c.height, Cycle: c.cycle, FIFODepth: c.fifoDepth})
		for s := 0; s < c.streams; s++ {
			m.AttachNI(fmt.Sprintf("%ss%d.ni.in", prefix, s), s, 0, streams[s].srcIn.End(), nil, NIConfig{
				PacketLen: c.packetLen, Cycle: c.cycle,
				Dst: m.RouterIndex(c.width-1-s, c.height-1),
			})
			m.AttachNI(fmt.Sprintf("%ss%d.ni.out", prefix, s), c.width-1-s, c.height-1, nil, streams[s].dstOut.End(), NIConfig{
				PacketLen: c.packetLen, Cycle: c.cycle,
			})
		}
		meshes[island] = m
	})

	delay := func(p *sim.Process, d sim.Time) {
		if c.decoupled {
			p.Inc(d)
		} else {
			p.Wait(d)
		}
	}
	for s := 0; s < c.streams; s++ {
		s := s
		prodRate := workload.Random(rateSeed+2*int64(s), 5, sim.NS)
		consRate := workload.Random(rateSeed+2*int64(s)+1, 3, sim.NS)
		prod := g.Thread(fmt.Sprintf("%ss%d.prod", prefix, s), nil).InGroup(group)
		srcOut := streams[s].src.Output(prod)
		prod.Body(func(p *sim.Process) {
			w := srcOut.End()
			for i := 0; i < c.words; i++ {
				w.Write(workload.WordAt(paySeed+int64(s), i))
				delay(p, prodRate(i)+sim.NS)
			}
		})
		cons := g.Thread(fmt.Sprintf("%ss%d.cons", prefix, s), nil).InGroup(group)
		dstIn := streams[s].dst.Input(cons)
		cons.Body(func(p *sim.Process) {
			r := dstIn.End()
			sum := uint64(0)
			for i := 0; i < c.words; i++ {
				v := r.Read()
				sum = workload.Checksum(sum, v)
				delay(p, consRate(i))
				rec.Logf(p, "got %08x", v)
			}
			sums[island*c.streams+s] = sum
		})
	}
}

// buildStreams elaborates the island graph: one kernel for the classic
// single-island build, up to `meshes` kernels otherwise.
func buildStreams(c streamParams, rec *trace.Recorder, sums []uint64) ([]*Mesh, *netlist.Build, error) {
	g := netlist.New("noc")
	meshes := make([]*Mesh, c.meshes)
	for i := 0; i < c.meshes; i++ {
		islandGraph(g, i, c, rec, sums, meshes)
	}
	impl := netlist.Plain
	if c.decoupled {
		impl = netlist.Smart
	}
	part, err := netlist.PartitionerByName(c.partitioner)
	if err != nil {
		return nil, nil, err
	}
	b, err := g.Build(netlist.Options{Shards: c.shards, Partitioner: part, Impl: impl})
	if err != nil {
		return nil, nil, err
	}
	return meshes, b, nil
}

func runScenario(ctx context.Context, p scenario.Params) (scenario.Outcome, error) {
	c, err := streamConfig(p)
	if err != nil {
		return scenario.Outcome{}, err
	}
	rec := trace.NewRecorder()
	sums := make([]uint64, c.meshes*c.streams)
	ms, b, err := buildStreams(c, rec, sums)
	if err != nil {
		return scenario.Outcome{}, err
	}
	runErr := b.RunGuarded(ctx, sim.RunForever)
	blocked := b.Blocked()
	stats := b.Stats()
	b.Shutdown()
	if runErr != nil {
		return scenario.Outcome{}, runErr
	}
	if len(blocked) != 0 {
		return scenario.Outcome{}, fmt.Errorf("noc: deadlock, blocked processes: %v", blocked)
	}
	entries := rec.Sorted()
	if len(entries) != c.meshes*c.streams*c.words {
		return scenario.Outcome{}, fmt.Errorf("noc: delivered %d words, want %d", len(entries), c.meshes*c.streams*c.words)
	}
	d := scenario.NewDigest()
	var simEnd sim.Time
	for _, e := range entries {
		d.Time(e.Date)
		d.Str(e.Msg)
		if e.Date > simEnd {
			simEnd = e.Date
		}
	}
	var flits, packets uint64
	for _, m := range ms {
		st := m.Stats()
		flits += st.FlitsForwarded
		packets += st.PacketsDelivered
	}
	// Kernel-stat counters (context switches, method activations) are
	// schedule-dependent for sharded runs (see
	// scenario.Outcome.CtxSwitches); report them single-kernel only.
	// Flit and packet counts are model behaviour — date-deterministic
	// at any shard count.
	counters := map[string]uint64{
		"flits":     flits,
		"packets":   packets,
		"shards":    uint64(b.Shards()),
		"crossings": uint64(b.Crossings),
	}
	ctxSw := stats.ContextSwitches
	if b.Shards() > 1 {
		ctxSw = 0
	} else {
		counters["method_activations"] = stats.MethodActivations
	}
	return scenario.Outcome{
		SimEndNS:    int64(simEnd / sim.NS),
		CtxSwitches: ctxSw,
		Checksums:   sums,
		DatesHash:   d.Sum(),
		Counters:    counters,
	}, nil
}

// checkScenario runs the point's stream shape in the decoupled build at
// the point's shard count (Smart FIFO endpoints + Inc) and the
// single-kernel reference build (regular FIFOs + Wait) and diffs the
// consumers' dated delivery traces — the §IV-A oracle applied to the
// NI/mesh boundary, composed with the island-partitioning claim.
//
// As with the soc model's poll-boundary sensitivity, a non-empty diff on
// a MULTI-stream shape is a real property of the shape, not necessarily a
// Smart-FIFO bug: router arbitration between streams contending for a
// link depends on same-date delta ordering, which the decoupled and
// reference schedules may resolve differently. Single-stream shapes (the
// default) have no contention and must always diff empty; the sharded
// island partitioning never changes the diff either way (islands are
// whole units).
func checkScenario(ctx context.Context, p scenario.Params) (string, error) {
	c, err := streamConfig(p)
	if err != nil {
		return "", err
	}
	run := func(decoupled bool, shards int) (*trace.Recorder, error) {
		cc := c
		cc.decoupled, cc.shards = decoupled, shards
		rec := trace.NewRecorder()
		sums := make([]uint64, cc.meshes*cc.streams)
		_, b, err := buildStreams(cc, rec, sums)
		if err != nil {
			return nil, err
		}
		runErr := b.RunGuarded(ctx, sim.RunForever)
		blocked := b.Blocked()
		b.Shutdown()
		if runErr != nil {
			return nil, runErr
		}
		if len(blocked) != 0 {
			return nil, fmt.Errorf("noc: deadlock (decoupled=%v): %v", decoupled, blocked)
		}
		return rec, nil
	}
	ref, err := run(false, 1)
	if err != nil {
		return "", err
	}
	dec, err := run(true, c.shards)
	if err != nil {
		return "", err
	}
	return trace.Diff(ref, dec), nil
}
