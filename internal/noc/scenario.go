package noc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fifo"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Scenario registry hook: a standalone mesh streaming workload as a
// campaign model — N producer/consumer pairs crossing the mesh through
// packetizing NIs, with rates and payloads derived from the spec's "seed"
// through the deterministic scenario RNG.
func init() {
	scenario.Register(scenario.Model{
		Name: "noc",
		Keys: []string{"width", "height", "streams", "packet_len", "words",
			"fifo_depth", "cycle_ns", "seed", "decoupled"},
		Run:   runScenario,
		Check: checkScenario,
	})
}

type streamParams struct {
	width, height, streams int
	packetLen, words       int
	fifoDepth              int
	cycle                  sim.Time
	decoupled              bool
	rateSeed, paySeed      int64
}

func streamConfig(p scenario.Params) (streamParams, error) {
	r := scenario.NewReader(p)
	c := streamParams{
		width:     r.Int("width", 2),
		height:    r.Int("height", 2),
		streams:   r.Int("streams", 1),
		packetLen: r.Int("packet_len", 4),
		words:     r.Int("words", 32),
		fifoDepth: r.Int("fifo_depth", 4),
		cycle:     r.Time("cycle_ns", sim.NS),
		decoupled: r.Bool("decoupled", true),
	}
	rng := scenario.Rand(r.Int64("seed", 1))
	c.rateSeed, c.paySeed = rng.Int63(), rng.Int63()
	if err := r.Err(); err != nil {
		return c, err
	}
	if c.width < 1 || c.height < 1 {
		return c, fmt.Errorf("noc: bad mesh dimensions %dx%d", c.width, c.height)
	}
	if c.streams < 1 || c.streams > c.width {
		return c, fmt.Errorf("noc: streams (%d) must be in 1..width (%d)", c.streams, c.width)
	}
	if c.packetLen < 1 || c.words < 1 || c.words%c.packetLen != 0 {
		return c, fmt.Errorf("noc: words (%d) must be a positive multiple of packet_len (%d)", c.words, c.packetLen)
	}
	if c.fifoDepth < 1 {
		return c, fmt.Errorf("noc: fifo_depth must be >= 1")
	}
	return c, nil
}

// buildStreams wires the mesh and its producer/consumer pairs on k.
// Stream s injects at router (s, 0) and drains at (width-1-s, height-1),
// so streams share links and exercise arbitration. The consumers log
// dated deliveries into rec; checksums land in sums.
func buildStreams(k *sim.Kernel, c streamParams, rec *trace.Recorder, sums []uint64) *Mesh {
	m := NewMesh(k, "noc", Config{Width: c.width, Height: c.height, Cycle: c.cycle, FIFODepth: c.fifoDepth})
	newChannel := func(name string) fifo.Channel[uint32] {
		if c.decoupled {
			return core.NewSmart[uint32](k, name, c.fifoDepth)
		}
		return fifo.New[uint32](k, name, c.fifoDepth)
	}
	for s := 0; s < c.streams; s++ {
		s := s
		src := newChannel(fmt.Sprintf("s%d.src", s))
		dst := newChannel(fmt.Sprintf("s%d.dst", s))
		m.AttachNI(fmt.Sprintf("s%d.ni.in", s), s, 0, src, nil, NIConfig{
			PacketLen: c.packetLen, Cycle: c.cycle,
			Dst: m.RouterIndex(c.width-1-s, c.height-1),
		})
		m.AttachNI(fmt.Sprintf("s%d.ni.out", s), c.width-1-s, c.height-1, nil, dst, NIConfig{
			PacketLen: c.packetLen, Cycle: c.cycle,
		})
		prodRate := workload.Random(c.rateSeed+2*int64(s), 5, sim.NS)
		consRate := workload.Random(c.rateSeed+2*int64(s)+1, 3, sim.NS)
		delay := func(p *sim.Process, d sim.Time) {
			if c.decoupled {
				p.Inc(d)
			} else {
				p.Wait(d)
			}
		}
		k.Thread(fmt.Sprintf("s%d.prod", s), func(p *sim.Process) {
			for i := 0; i < c.words; i++ {
				src.Write(workload.WordAt(c.paySeed+int64(s), i))
				delay(p, prodRate(i)+sim.NS)
			}
		})
		k.Thread(fmt.Sprintf("s%d.cons", s), func(p *sim.Process) {
			sum := uint64(0)
			for i := 0; i < c.words; i++ {
				v := dst.Read()
				sum = workload.Checksum(sum, v)
				delay(p, consRate(i))
				rec.Logf(p, "got %08x", v)
			}
			sums[s] = sum
		})
	}
	return m
}

func runScenario(p scenario.Params) (scenario.Outcome, error) {
	c, err := streamConfig(p)
	if err != nil {
		return scenario.Outcome{}, err
	}
	k := sim.NewKernel("noc")
	rec := trace.NewRecorder()
	sums := make([]uint64, c.streams)
	m := buildStreams(k, c, rec, sums)
	k.Run(sim.RunForever)
	blocked := k.Blocked()
	stats := k.Stats()
	k.Shutdown()
	if len(blocked) != 0 {
		return scenario.Outcome{}, fmt.Errorf("noc: deadlock, blocked processes: %v", blocked)
	}
	entries := rec.Sorted()
	if len(entries) != c.streams*c.words {
		return scenario.Outcome{}, fmt.Errorf("noc: delivered %d words, want %d", len(entries), c.streams*c.words)
	}
	d := scenario.NewDigest()
	var simEnd sim.Time
	for _, e := range entries {
		d.Time(e.Date)
		d.Str(e.Msg)
		if e.Date > simEnd {
			simEnd = e.Date
		}
	}
	st := m.Stats()
	return scenario.Outcome{
		SimEndNS:    int64(simEnd / sim.NS),
		CtxSwitches: stats.ContextSwitches,
		Checksums:   sums,
		DatesHash:   d.Sum(),
		Counters: map[string]uint64{
			"flits":              st.FlitsForwarded,
			"packets":            st.PacketsDelivered,
			"method_activations": stats.MethodActivations,
		},
	}, nil
}

// checkScenario runs the point's stream shape in the decoupled build
// (Smart FIFO endpoints + Inc) and the reference build (regular FIFOs +
// Wait) and diffs the consumers' dated delivery traces — the §IV-A oracle
// applied to the NI/mesh boundary.
func checkScenario(p scenario.Params) (string, error) {
	c, err := streamConfig(p)
	if err != nil {
		return "", err
	}
	run := func(decoupled bool) (*trace.Recorder, error) {
		cc := c
		cc.decoupled = decoupled
		k := sim.NewKernel("noc")
		rec := trace.NewRecorder()
		sums := make([]uint64, cc.streams)
		buildStreams(k, cc, rec, sums)
		k.Run(sim.RunForever)
		blocked := k.Blocked()
		k.Shutdown()
		if len(blocked) != 0 {
			return nil, fmt.Errorf("noc: deadlock (decoupled=%v): %v", decoupled, blocked)
		}
		return rec, nil
	}
	ref, err := run(false)
	if err != nil {
		return "", err
	}
	dec, err := run(true)
	if err != nil {
		return "", err
	}
	return trace.Diff(ref, dec), nil
}
