package noc_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/sim"
)

// TestQuickRandomTrafficDelivered: random mesh sizes, random stream
// placements and rates — every stream delivers all words in order.
func TestQuickRandomTrafficDelivered(t *testing.T) {
	prop := func(wRaw, hRaw, nRaw uint8, rateRaw []byte) bool {
		w := int(wRaw%3) + 2 // 2..4
		h := int(hRaw%2) + 1 // 1..2
		routers := w * h
		// One ingress NI and one egress NI per router at most: stream s
		// sources at router s and sinks at router s+1 (mod R), giving
		// unique ingress and egress routers per stream.
		streams := int(nRaw%3) + 1
		if streams > routers-1 {
			streams = routers - 1
		}
		const packetLen, nWords = 4, 24
		k := sim.NewKernel("mesh")
		m := noc.NewMesh(k, "noc", noc.Config{Width: w, Height: h, Cycle: sim.NS, FIFODepth: 3})
		okAll := true
		completed := 0
		for s := 0; s < streams; s++ {
			s := s
			srcX, srcY := s%w, s/w
			dstIdx := (s + 1) % routers
			dstX, dstY := dstIdx%w, dstIdx/w
			out := core.NewSmart[uint32](k, fmt.Sprintf("o%d", s), 8)
			in := core.NewSmart[uint32](k, fmt.Sprintf("i%d", s), 8)
			m.AttachNI(fmt.Sprintf("ni.i%d", s), srcX, srcY, out, nil,
				noc.NIConfig{PacketLen: packetLen, Cycle: sim.NS, Dst: m.RouterIndex(dstX, dstY)})
			m.AttachNI(fmt.Sprintf("ni.o%d", s), dstX, dstY, nil, in,
				noc.NIConfig{PacketLen: packetLen, Cycle: sim.NS})
			base := uint32(s * 1000)
			rate := func(i int) sim.Time {
				b := byte(2)
				if len(rateRaw) > 0 {
					b = rateRaw[(s*13+i)%len(rateRaw)]
				}
				return sim.Time(b%6) * sim.NS
			}
			k.Thread(fmt.Sprintf("p%d", s), func(p *sim.Process) {
				for i := uint32(0); i < nWords; i++ {
					out.Write(base + i)
					p.Inc(rate(int(i)))
				}
			})
			k.Thread(fmt.Sprintf("c%d", s), func(p *sim.Process) {
				for i := uint32(0); i < nWords; i++ {
					if in.Read() != base+i {
						okAll = false
						return
					}
				}
				completed++
			})
		}
		k.Run(sim.RunForever)
		k.Shutdown()
		return okAll && completed == streams
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestNILoopbackBothSides: a single NI with both an ingress and an egress
// side services traffic in the two directions simultaneously.
func TestNILoopbackBothSides(t *testing.T) {
	k := sim.NewKernel("mesh")
	m := noc.NewMesh(k, "noc", noc.Config{Width: 2, Height: 1, Cycle: sim.NS, FIFODepth: 4})
	aOut := core.NewSmart[uint32](k, "aOut", 8)
	aIn := core.NewSmart[uint32](k, "aIn", 8)
	bOut := core.NewSmart[uint32](k, "bOut", 8)
	bIn := core.NewSmart[uint32](k, "bIn", 8)
	m.AttachNI("niA", 0, 0, aOut, aIn, noc.NIConfig{PacketLen: 4, Cycle: sim.NS, Dst: 1})
	m.AttachNI("niB", 1, 0, bOut, bIn, noc.NIConfig{PacketLen: 4, Cycle: sim.NS, Dst: 0})
	const n = 16
	// A sends i, B echoes i+1 back; A verifies.
	var verified bool
	k.Thread("a", func(p *sim.Process) {
		for i := uint32(0); i < n; i++ {
			aOut.Write(i)
			p.Inc(2 * sim.NS)
		}
		for i := uint32(0); i < n; i++ {
			if v := aIn.Read(); v != i+1 {
				t.Errorf("a got %d, want %d", v, i+1)
				return
			}
		}
		verified = true
	})
	k.Thread("b", func(p *sim.Process) {
		for i := uint32(0); i < n; i++ {
			v := bIn.Read()
			p.Inc(sim.NS)
			bOut.Write(v + 1)
		}
	})
	k.Run(sim.RunForever)
	k.Shutdown()
	if !verified {
		t.Error("echo round trip incomplete")
	}
}

// TestRouterContentionDeterministic: two streams converging on one output
// link produce the same delivery order on every run.
func TestRouterContentionDeterministic(t *testing.T) {
	run := func() string {
		k := sim.NewKernel("mesh")
		m := noc.NewMesh(k, "noc", noc.Config{Width: 3, Height: 1, Cycle: sim.NS, FIFODepth: 2})
		// Streams from routers 0 and 2 both target router 1.
		var got []uint32
		in := core.NewSmart[uint32](k, "in", 8)
		m.AttachNI("dst", 1, 0, nil, in, noc.NIConfig{PacketLen: 2, Cycle: sim.NS})
		for s := 0; s < 2; s++ {
			s := s
			out := core.NewSmart[uint32](k, fmt.Sprintf("o%d", s), 8)
			m.AttachNI(fmt.Sprintf("src%d", s), 2*s, 0, out, nil,
				noc.NIConfig{PacketLen: 2, Cycle: sim.NS, Dst: 1})
			k.Thread(fmt.Sprintf("p%d", s), func(p *sim.Process) {
				for i := uint32(0); i < 8; i++ {
					out.Write(uint32(s)*100 + i)
					p.Inc(sim.NS)
				}
			})
		}
		k.Thread("c", func(p *sim.Process) {
			for i := 0; i < 16; i++ {
				got = append(got, in.Read())
			}
		})
		k.Run(sim.RunForever)
		k.Shutdown()
		return fmt.Sprint(got)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two runs differ:\n%s\n%s", a, b)
	}
}
