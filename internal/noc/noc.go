// Package noc models the stream-based network-on-chip of the case-study
// SoC (paper §IV-C): a 2-D mesh whose routers are non-decoupled
// SC_METHOD-style processes over regular FIFOs ("for the NoC itself, where
// a lot of arbitration has to be done, we decided to model the routers
// using only non-decoupled SC METHODs; thus NoC routers continue to use
// regular FIFOs"), plus packetizing network interfaces bridging the
// temporally decoupled accelerators (over Smart FIFOs) to the mesh.
package noc

import (
	"fmt"

	"repro/internal/fifo"
	"repro/internal/sim"
)

// Flit is one mesh transfer unit: a word plus routing/framing metadata.
type Flit struct {
	// Dst is the destination router index (y*width + x).
	Dst int
	// Src is the source router index.
	Src int
	// Word is the payload.
	Word uint32
	// Head and Tail frame packets.
	Head, Tail bool
}

// Port indexes a router port.
type port int

const (
	north port = iota
	south
	east
	west
	local
	nPorts
)

// Stats counts mesh activity.
type Stats struct {
	// FlitsForwarded counts router forwarding operations (one per hop).
	FlitsForwarded uint64
	// PacketsInjected and PacketsDelivered count NI-level packets.
	PacketsInjected  uint64
	PacketsDelivered uint64
}

// Config parameterizes a mesh.
type Config struct {
	// Width and Height give the mesh dimensions in routers.
	Width, Height int
	// Cycle is the router cycle time: one flit per port per cycle.
	Cycle sim.Time
	// FIFODepth is the depth of the router input/output FIFOs.
	FIFODepth int
}

// Mesh is a 2-D XY-routed mesh of method-process routers.
type Mesh struct {
	k    *sim.Kernel
	name string
	cfg  Config

	routers []*router
	stats   Stats
}

// router is one mesh node. Inputs are regular FIFOs; outputs are the
// neighbours' input FIFOs (or the local output FIFO toward the NI).
type router struct {
	m    *Mesh
	idx  int
	x, y int

	in  [nPorts]*fifo.FIFO[Flit] // in[local] is the NI injection queue
	out *fifo.FIFO[Flit]         // local delivery queue toward the NI

	next      port // round-robin pointer
	tickArmed bool // a self-scheduled cycle tick is pending
	proc      *sim.Process

	// Each router can host at most one ingress-side NI (owning in[local])
	// and one egress-side NI (owning out).
	ingressNI, egressNI bool
}

// NewMesh builds the mesh and its router processes.
func NewMesh(k *sim.Kernel, name string, cfg Config) *Mesh {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic(fmt.Sprintf("noc: %s: bad dimensions %dx%d", name, cfg.Width, cfg.Height))
	}
	if cfg.FIFODepth <= 0 {
		cfg.FIFODepth = 4
	}
	if cfg.Cycle <= 0 {
		cfg.Cycle = sim.NS
	}
	m := &Mesh{k: k, name: name, cfg: cfg}
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			idx := y*cfg.Width + x
			r := &router{m: m, idx: idx, x: x, y: y}
			for pt := port(0); pt < nPorts; pt++ {
				r.in[pt] = fifo.New[Flit](k, fmt.Sprintf("%s.r%d.in%d", name, idx, pt), cfg.FIFODepth)
			}
			r.out = fifo.New[Flit](k, fmt.Sprintf("%s.r%d.out", name, idx), cfg.FIFODepth)
			m.routers = append(m.routers, r)
		}
	}
	// Create the router processes after the full topology exists, since
	// sensitivity lists reference neighbour FIFOs.
	for _, r := range m.routers {
		r := r
		events := make([]*sim.Event, 0, nPorts+1)
		for pt := port(0); pt < nPorts; pt++ {
			events = append(events, r.in[pt].NotEmpty())
		}
		// Output back-pressure release: neighbours' input NotFull and
		// the local output NotFull.
		for _, nb := range r.neighbours() {
			if nb != nil {
				events = append(events, nb.NotFull())
			}
		}
		events = append(events, r.out.NotFull())
		r.proc = k.MethodNoInit(fmt.Sprintf("%s.router%d", name, r.idx), r.step, events...)
	}
	return m
}

// Name returns the mesh name.
func (m *Mesh) Name() string { return m.name }

// Stats returns a copy of the activity counters.
func (m *Mesh) Stats() Stats { return m.stats }

// RouterIndex converts coordinates to a router index.
func (m *Mesh) RouterIndex(x, y int) int {
	if x < 0 || x >= m.cfg.Width || y < 0 || y >= m.cfg.Height {
		panic(fmt.Sprintf("noc: %s: coordinates (%d,%d) outside %dx%d", m.name, x, y, m.cfg.Width, m.cfg.Height))
	}
	return y*m.cfg.Width + x
}

// injectionQueue returns the NI-facing input FIFO of router idx.
func (m *Mesh) injectionQueue(idx int) *fifo.FIFO[Flit] { return m.routers[idx].in[local] }

// deliveryQueue returns the NI-facing output FIFO of router idx.
func (m *Mesh) deliveryQueue(idx int) *fifo.FIFO[Flit] { return m.routers[idx].out }

// neighbours returns the destination input FIFO for each outgoing
// direction (nil when at the mesh edge), indexed by port.
func (r *router) neighbours() [4]*fifo.FIFO[Flit] {
	m := r.m
	var nb [4]*fifo.FIFO[Flit]
	if r.y > 0 {
		nb[north] = m.routers[r.idx-m.cfg.Width].in[south]
	}
	if r.y < m.cfg.Height-1 {
		nb[south] = m.routers[r.idx+m.cfg.Width].in[north]
	}
	if r.x < m.cfg.Width-1 {
		nb[east] = m.routers[r.idx+1].in[west]
	}
	if r.x > 0 {
		nb[west] = m.routers[r.idx-1].in[east]
	}
	return nb
}

// route gives the output for a flit at this router under XY routing:
// correct X first, then Y, then deliver locally.
func (r *router) route(f Flit) (dst *fifo.FIFO[Flit]) {
	m := r.m
	dx, dy := f.Dst%m.cfg.Width, f.Dst/m.cfg.Width
	nb := r.neighbours()
	switch {
	case dx > r.x:
		return nb[east]
	case dx < r.x:
		return nb[west]
	case dy > r.y:
		return nb[south]
	case dy < r.y:
		return nb[north]
	default:
		return r.out
	}
}

// step is the router method body. The router works at cycle boundaries: an
// activation from its static sensitivity (a flit arrived / back-pressure
// released) only arms a tick one cycle later; the tick activation does the
// forwarding. That gives each hop a one-cycle latency and one flit per
// output per cycle, and while the tick is armed the dynamic trigger
// suppresses the statics, so the router runs at most once per cycle.
func (r *router) step(p *sim.Process) {
	progressed := false
	if r.tickArmed {
		r.tickArmed = false
		progressed = r.forward() > 0
		r.next = (r.next + 1) % nPorts
	}
	// Re-arm only when another cycle can plausibly make progress: after
	// a productive tick, or when a flit is waiting for a non-full
	// output. A flit blocked on a full output does NOT re-arm — the
	// output queue's NotFull is in the static sensitivity and will wake
	// the router when space appears. Without this distinction a
	// genuinely deadlocked mesh would self-retrigger every cycle
	// forever and the simulation would never quiesce.
	if !r.tickArmed && (progressed || r.forwardableWork()) {
		r.tickArmed = true
		p.NextTrigger(r.m.cfg.Cycle)
	}
}

// forwardableWork reports whether some input flit currently has a
// non-full output queue.
func (r *router) forwardableWork() bool {
	for pt := port(0); pt < nPorts; pt++ {
		f, ok := r.in[pt].Peek()
		if !ok {
			continue
		}
		if out := r.route(f); out != nil && !out.IsFull() {
			return true
		}
	}
	return false
}

// forward moves one cycle's worth of flits: each input port may forward
// one flit, with at most one flit per output (peek first, pop only on
// success, so blocked flits stay in place). It returns the number of flits
// forwarded.
func (r *router) forward() int {
	var claimed [nPorts]bool // output ports used this cycle (local = r.out)
	n := 0
	for i := 0; i < int(nPorts); i++ {
		pt := port((int(r.next) + i) % int(nPorts))
		f, ok := r.in[pt].Peek()
		if !ok {
			continue
		}
		out := r.route(f)
		if out == nil {
			panic(fmt.Sprintf("noc: router %d: XY routing escaped the mesh", r.idx))
		}
		outIdx := r.outIndex(out)
		if claimed[outIdx] || !out.TryWrite(f) {
			// Output contended or full this cycle; the flit stays
			// at the head of its input.
			continue
		}
		r.in[pt].TryRead() // commit the pop
		claimed[outIdx] = true
		r.m.stats.FlitsForwarded++
		n++
	}
	return n
}

// outIndex maps an output FIFO to its claim slot.
func (r *router) outIndex(out *fifo.FIFO[Flit]) int {
	if out == r.out {
		return int(local)
	}
	nb := r.neighbours()
	for d, f := range nb {
		if f == out {
			return d
		}
	}
	return int(local)
}
