package vcd_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/vcd"
)

func TestHeaderAndChanges(t *testing.T) {
	var sb strings.Builder
	w := vcd.NewWriter(&sb)
	a := w.AddSignal("top.a", 1)
	b := w.AddSignal("top.b", 8)
	a.Set(0, 1)
	b.Set(0, 0xA5)
	a.Set(10*sim.PS, 0)
	b.Set(10*sim.PS, 0xA5) // unchanged: deduplicated
	b.Set(25*sim.PS, 3)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 1ps $end",
		"$var wire 1 ! top.a $end",
		"$var wire 8 \" top.b $end",
		"$enddefinitions $end",
		"#0\n1!\nb10100101 \"\n",
		"#10\n0!\n",
		"#25\nb11 \"\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The dedup must have suppressed a second b-change at #10.
	if strings.Count(out, "b10100101") != 1 {
		t.Errorf("duplicate value emitted:\n%s", out)
	}
}

func TestTimeBackwardsPanics(t *testing.T) {
	w := vcd.NewWriter(&strings.Builder{})
	s := w.AddSignal("x", 4)
	s.Set(10*sim.PS, 1)
	defer func() {
		if recover() == nil {
			t.Error("no panic for backwards time")
		}
	}()
	s.Set(5*sim.PS, 2)
}

func TestAddSignalAfterChangePanics(t *testing.T) {
	w := vcd.NewWriter(&strings.Builder{})
	s := w.AddSignal("x", 1)
	s.Set(0, 1)
	defer func() {
		if recover() == nil {
			t.Error("no panic for late AddSignal")
		}
	}()
	w.AddSignal("y", 1)
}

func TestIDCodesUnique(t *testing.T) {
	var sb strings.Builder
	w := vcd.NewWriter(&sb)
	const n = 300 // forces multi-character identifiers
	sigs := make([]*vcd.Signal, n)
	for i := range sigs {
		sigs[i] = w.AddSignal(strings.Repeat("s", 1+i%3)+string(rune('a'+i%26)), 1)
	}
	for i, s := range sigs {
		s.Set(sim.Time(i)*sim.PS, 1)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Each $var line must use a distinct id.
	ids := map[string]bool{}
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, "$var wire 1 ") {
			continue
		}
		fields := strings.Fields(line)
		id := fields[3]
		if ids[id] {
			t.Fatalf("duplicate id %q", id)
		}
		ids[id] = true
	}
	if len(ids) != n {
		t.Fatalf("declared %d ids, want %d", len(ids), n)
	}
}

func TestProbeFIFOWaveform(t *testing.T) {
	k := sim.NewKernel("t")
	f := core.NewSmart[int](k, "f", 4)
	var sb strings.Builder
	w := vcd.NewWriter(&sb)
	vcd.ProbeFIFO(k, w, f, "f.level", 5*sim.NS, 200*sim.NS)
	k.Thread("writer", func(p *sim.Process) {
		for i := 0; i < 4; i++ {
			f.Write(i)
			p.Inc(20 * sim.NS)
		}
	})
	k.Thread("reader", func(p *sim.Process) {
		p.Wait(100 * sim.NS)
		for i := 0; i < 4; i++ {
			f.Read()
			p.Inc(10 * sim.NS)
		}
	})
	k.Run(sim.RunForever)
	k.Shutdown()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "$var wire 3 ! f.level $end") {
		t.Errorf("missing level variable (width 3 for depth 4):\n%s", out)
	}
	// The fill level must reach 4 (b100) while the reader sleeps and
	// return to 0 after draining.
	if !strings.Contains(out, "b100 !") {
		t.Errorf("level never reached 4:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if last != "b0 !" {
		t.Errorf("final change %q, want b0 ! (drained)", last)
	}
}
