// Package vcd writes IEEE 1364 Value Change Dump files from simulation
// models, so FIFO fill levels, decoupling offsets and other quantities can
// be inspected in any waveform viewer. It complements the Smart FIFO's
// monitor interface (paper §III-C): the level a probe records is exactly
// what embedded software would read at that date.
package vcd

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/fifo"
	"repro/internal/sim"
)

// Writer emits a VCD file. Declare signals with AddSignal before the first
// value change; changes must be recorded in non-decreasing time order
// (changes at one date are coalesced into a single #timestamp block).
type Writer struct {
	bw      *bufio.Writer
	signals []*Signal

	headerDone bool
	curTime    sim.Time
	haveTime   bool
	err        error
}

// Signal is one VCD variable.
type Signal struct {
	w     *Writer
	name  string
	width int
	id    string

	cur     uint64
	haveCur bool
}

// NewWriter creates a VCD writer with a 1 ps timescale (matching
// sim.Time's resolution).
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// AddSignal declares a variable of the given bit width (1..64). The name
// may contain dots for hierarchy (kept literal, viewers split on it).
func (w *Writer) AddSignal(name string, width int) *Signal {
	if w.headerDone {
		panic("vcd: AddSignal after the first value change")
	}
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("vcd: bad width %d for %s", width, name))
	}
	s := &Signal{w: w, name: name, width: width, id: idCode(len(w.signals))}
	w.signals = append(w.signals, s)
	return s
}

// idCode builds the compact VCD identifier for signal index i from the
// printable ASCII range ! .. ~.
func idCode(i int) string {
	const lo, hi = 33, 127
	var b []byte
	for {
		b = append(b, byte(lo+i%(hi-lo)))
		i /= hi - lo
		if i == 0 {
			break
		}
		i--
	}
	return string(b)
}

func (w *Writer) writeHeader() {
	w.headerDone = true
	fmt.Fprintln(w.bw, "$comment Smart FIFO TLM reproduction $end")
	fmt.Fprintln(w.bw, "$timescale 1ps $end")
	fmt.Fprintln(w.bw, "$scope module top $end")
	ss := make([]*Signal, len(w.signals))
	copy(ss, w.signals)
	sort.Slice(ss, func(i, j int) bool { return ss[i].name < ss[j].name })
	for _, s := range ss {
		fmt.Fprintf(w.bw, "$var wire %d %s %s $end\n", s.width, s.id, s.name)
	}
	fmt.Fprintln(w.bw, "$upscope $end")
	fmt.Fprintln(w.bw, "$enddefinitions $end")
}

// advance emits the #timestamp line when the date moves.
func (w *Writer) advance(t sim.Time) {
	if !w.headerDone {
		w.writeHeader()
	}
	if w.haveTime && t < w.curTime {
		panic(fmt.Sprintf("vcd: time going backwards: %v after %v", t, w.curTime))
	}
	if !w.haveTime || t > w.curTime {
		fmt.Fprintf(w.bw, "#%d\n", int64(t))
		w.curTime = t
		w.haveTime = true
	}
}

// Set records signal value v at date t. Equal consecutive values are
// deduplicated.
func (s *Signal) Set(t sim.Time, v uint64) {
	if s.haveCur && s.cur == v {
		return
	}
	s.w.advance(t)
	s.cur, s.haveCur = v, true
	if s.width == 1 {
		fmt.Fprintf(s.w.bw, "%d%s\n", v&1, s.id)
		return
	}
	fmt.Fprintf(s.w.bw, "b%b %s\n", v, s.id)
}

// Close flushes the stream. The Writer must not be used afterwards.
func (w *Writer) Close() error {
	if !w.headerDone {
		w.writeHeader()
	}
	return w.bw.Flush()
}

// ProbeFIFO registers a thread process that samples a channel's monitored
// Size into signal name every period, producing a fill-level waveform.
// Sampling stops at date until; with until == 0 the probe runs forever, in
// which case the kernel must be run with a time limit.
func ProbeFIFO(k *sim.Kernel, w *Writer, ch fifo.Monitor, name string, period, until sim.Time) *Signal {
	if period <= 0 {
		panic("vcd: non-positive probe period")
	}
	width := 1
	for 1<<width <= ch.Depth() {
		width++
	}
	s := w.AddSignal(name, width)
	k.Thread("vcd."+name, func(p *sim.Process) {
		for until == 0 || k.Now() <= until {
			s.Set(k.Now(), uint64(ch.Size()))
			p.Wait(period)
		}
	})
	return s
}
