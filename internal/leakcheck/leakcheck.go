// Package leakcheck asserts that a test leaves no goroutines behind —
// the hand-rolled core of the robustness contract's "never a leak"
// clause. Model goroutines live on sim.Kernel stacks and must be torn
// down by Shutdown; a guard/watchdog/abandon path that forgot one shows
// up here as a stable extra goroutine.
//
// Usage, first line of the test:
//
//	defer leakcheck.Check(t)()
//
// The returned func snapshots the goroutine count at defer time and
// retries with backoff (runtime shutdown of freshly-killed goroutines
// is asynchronous) before failing with a full stack dump.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// Check records the current goroutine count and returns the assertion
// to defer. Tests that themselves run in parallel with goroutine-churny
// siblings should not use it (the count is process-global).
func Check(t testing.TB) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		// Allow the runtime to retire goroutines that just exited
		// (kernel Shutdown kills via panic-unwind; the dying goroutine
		// is still counted for a few scheduler ticks).
		deadline := time.Now().Add(2 * time.Second)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before || time.Now().After(deadline) {
				break
			}
			runtime.Gosched()
			time.Sleep(5 * time.Millisecond)
		}
		if after > before {
			t.Errorf("leakcheck: %d goroutines before, %d after\n%s",
				before, after, stacks())
		}
	}
}

// stacks renders all goroutine stacks, trimming runtime-internal noise
// so the leaked model/guard goroutine is easy to spot.
func stacks() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var b strings.Builder
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, "testing.") || strings.Contains(g, "runtime.gc") {
			continue
		}
		fmt.Fprintf(&b, "%s\n\n", g)
	}
	return b.String()
}
