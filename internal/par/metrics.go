package par

import (
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Scheduler instrumentation. The async frontier-driven scheduler made
// coordination behaviour — parks, graded pokes, rendezvous fallbacks,
// exchange latency — the dominant performance variable; these metrics
// expose it live. Counters are bumped at the scheduling edges (park,
// wake, rendezvous), never inside Kernel.Step, and the exchange-loop
// histogram samples time.Now only when a sink is attached, so an
// uninstrumented coordinator pays a nil check per loop and nothing
// else.

// SchedMetrics is the shared sink for coordinator scheduling activity.
// All fields may be nil (updates no-op).
type SchedMetrics struct {
	// Parks counts worker park entries (a worker out of safe work);
	// ParkedWorkers is the live frontier-stall gauge: how many workers
	// are parked right now, waiting for a peer's frontier to move.
	Parks         *metrics.Counter
	ParkedWorkers *metrics.Gauge
	// WakesHard counts pokes delivered to a parked worker for a
	// publication that can make a process runnable (data, credits);
	// WakesSoft counts bound-only pokes delivered to a horizon-capped
	// parked worker.
	WakesHard *metrics.Counter
	WakesSoft *metrics.Counter
	// Rendezvous counts all-parked global safe points; Fallbacks the
	// subset resolved by the global-minimum rule; Advances the kernel
	// Step dispatches (Stats.Advances, live).
	Rendezvous *metrics.Counter
	Fallbacks  *metrics.Counter
	Advances   *metrics.Counter
	// ExchangeSeconds is the latency distribution of one worker
	// exchange+horizon pass over its adjacent bridges.
	ExchangeSeconds *metrics.Histogram
}

// defaultSchedMetrics is captured by NewCoordinator; atomic so enabling
// can race coordinator construction in tests.
var defaultSchedMetrics atomic.Pointer[SchedMetrics]

// EnableMetrics registers the scheduler metric family on r and makes
// every subsequently created Coordinator publish into it. A nil
// registry disables publication for new coordinators.
func EnableMetrics(r *metrics.Registry) {
	if r == nil {
		defaultSchedMetrics.Store(nil)
		return
	}
	defaultSchedMetrics.Store(&SchedMetrics{
		Parks:         r.Counter("par_parks_total", "Shard-worker park entries (worker out of safe work)."),
		ParkedWorkers: r.Gauge("par_parked_workers", "Workers currently parked on a frontier stall."),
		WakesHard:     r.Counter("par_wakes_total", "Pokes delivered to parked workers, by publication grade.", metrics.Label{Name: "grade", Value: "hard"}),
		WakesSoft:     r.Counter("par_wakes_total", "Pokes delivered to parked workers, by publication grade.", metrics.Label{Name: "grade", Value: "soft"}),
		Rendezvous:    r.Counter("par_rendezvous_total", "All-parked rendezvous (global safe points) entered."),
		Fallbacks:     r.Counter("par_fallbacks_total", "Rendezvous resolved by the global-minimum rule."),
		Advances:      r.Counter("par_advances_total", "Kernel Step dispatches that found work, across coordinators."),
		ExchangeSeconds: r.Histogram("par_exchange_seconds", "Latency of one worker exchange+horizon pass over its bridges.",
			[]float64{1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 5e-4, 1e-3, 1e-2}),
	})
}

// obsExchange folds one exchange+horizon pass into the sink; t0 is
// non-zero only when the caller decided instrumentation is on.
func (m *SchedMetrics) obsExchange(t0 time.Time) {
	if m != nil {
		m.ExchangeSeconds.Observe(time.Since(t0).Seconds())
	}
}
