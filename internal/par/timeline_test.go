package par_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/leakcheck"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/sim"
)

// chromeTrace mirrors the trace_event JSON object form for decoding.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestTimelineChromeTrace: an explicitly attached timeline records the
// async run and encodes as valid Chrome trace_event JSON — one
// thread_name row per shard plus the coordinator, and at least
// exchange/step spans with sane timestamps.
func TestTimelineChromeTrace(t *testing.T) {
	defer leakcheck.Check(t)()
	c, _ := buildChain(500)
	defer c.Shutdown()
	tl := c.NewTimeline(1024)
	c.SetTimeline(tl)
	c.Run(sim.RunForever)

	if tl.Events() == 0 {
		t.Fatal("attached timeline recorded no events")
	}
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	threads := map[int]string{}
	kinds := map[string]int{}
	for _, e := range ct.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				threads[e.Tid] = e.Args["name"].(string)
			}
		case "X":
			if e.Dur < 0 || e.Ts < 0 {
				t.Fatalf("negative ts/dur in %+v", e)
			}
			kinds[e.Name]++
		case "i":
			kinds[e.Name]++
		default:
			t.Fatalf("unexpected phase %q in %+v", e.Ph, e)
		}
	}
	// 3 shards + the coordinator row, each named.
	if len(threads) != 4 {
		t.Fatalf("thread_name rows = %v, want 4", threads)
	}
	if threads[3] != "coordinator" {
		t.Errorf("last row named %q, want coordinator", threads[3])
	}
	for _, want := range []string{"exchange", "step"} {
		if kinds[want] == 0 {
			t.Errorf("no %q events in trace; kinds=%v", want, kinds)
		}
	}
}

// TestTraceCaptureAuto: arming SetTraceCapture makes a multi-shard Run
// publish a timeline through LastTrace without any explicit attachment
// (the -simtrace / simd /debug/trace path).
func TestTraceCaptureAuto(t *testing.T) {
	defer leakcheck.Check(t)()
	par.SetTraceCapture(256)
	defer par.SetTraceCapture(0)
	c, _ := buildChain(200)
	defer c.Shutdown()
	c.Run(sim.RunForever)
	tl := par.LastTrace()
	if tl == nil {
		t.Fatal("SetTraceCapture armed but LastTrace is nil after a multi-shard run")
	}
	if tl.Events() == 0 {
		t.Fatal("auto-captured timeline is empty")
	}
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("auto-captured trace is not valid JSON")
	}
}

// TestSchedMetricsCount: with the scheduler sink enabled, an async run
// moves the advance/rendezvous counters and the exchange histogram.
func TestSchedMetricsCount(t *testing.T) {
	defer leakcheck.Check(t)()
	reg := metrics.NewRegistry()
	par.EnableMetrics(reg)
	defer par.EnableMetrics(nil)
	c, _ := buildChain(500)
	defer c.Shutdown()
	c.Run(sim.RunForever)

	vals := map[string]float64{}
	counts := map[string]uint64{}
	for _, f := range reg.Snapshot() {
		for _, s := range f.Series {
			vals[f.Name] += s.Value
			counts[f.Name] += s.Count
		}
	}
	if vals["par_advances_total"] == 0 {
		t.Error("par_advances_total stayed 0 across an async run")
	}
	if counts["par_exchange_seconds"] == 0 {
		t.Error("par_exchange_seconds histogram observed nothing")
	}
}
