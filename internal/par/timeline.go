package par

// Scheduler timeline tracing: per-worker ring buffers of
// park/wake/exchange/rendezvous/step records, dumpable as Chrome
// trace_event JSON — load the file in chrome://tracing or
// https://ui.perfetto.dev to see, on one horizontal track per shard,
// exactly when each worker exchanged, stepped, parked and was poked.
// "Why is shard 3 idle" becomes a picture instead of a printf session.
//
// Each ring is written by exactly one goroutine (a worker records only
// its own row; the rendezvous goroutine owns the last row), so
// recording takes no locks and — once a ring has wrapped — no
// allocations. Reading a Timeline is safe after the Run that fed it
// returned (the worker join provides the happens-before edge).

import (
	"bufio"
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// tlKind enumerates timeline record types.
type tlKind uint8

const (
	tlExchange tlKind = iota // duration: one exchange+horizon pass; arg = derived horizon
	tlStep                   // duration: one Kernel.Step; arg = shard advance ordinal
	tlPark                   // duration: parked; arg = 1 when horizon-capped
	tlPokeHard               // instant on the POKER's row; arg = poked peer
	tlPokeSoft               // instant on the poker's row; arg = poked peer
	tlRendezvous             // duration on the coordinator row; arg = grants issued
	tlFallback               // instant on the coordinator row
	tlRound                  // duration: one barrier round; arg = shards stepped
)

// tlEvent is one ring record; offsets are ns since the timeline start.
type tlEvent struct {
	kind   tlKind
	t0, t1 int64
	arg    int64
}

// tlRing is one row's bounded history: the most recent capacity events.
type tlRing struct {
	ev  []tlEvent
	pos int    // next overwrite slot once full
	n   uint64 // total ever recorded (n - len(ev) were dropped)
}

func (r *tlRing) add(e tlEvent) {
	if len(r.ev) < cap(r.ev) {
		r.ev = append(r.ev, e)
	} else {
		r.ev[r.pos] = e
		r.pos++
		if r.pos == len(r.ev) {
			r.pos = 0
		}
	}
	r.n++
}

// ordered returns the ring's events oldest-first.
func (r *tlRing) ordered() []tlEvent {
	if len(r.ev) < cap(r.ev) || r.pos == 0 {
		return r.ev
	}
	out := make([]tlEvent, 0, len(r.ev))
	out = append(out, r.ev[r.pos:]...)
	return append(out, r.ev[:r.pos]...)
}

// Timeline is one run's (or several consecutive runs') scheduler trace:
// one ring per shard worker plus one for the coordinator's rendezvous
// loop.
type Timeline struct {
	start time.Time
	names []string // row names; the last row is the coordinator
	rings []tlRing
}

// newTimeline sizes one ring of perWorker events per shard plus the
// coordinator row.
func (c *Coordinator) newTimeline(perWorker int) *Timeline {
	t := &Timeline{start: time.Now()}
	for _, s := range c.shards {
		t.names = append(t.names, fmt.Sprintf("shard %d %s", s.idx, s.k.Name()))
		t.rings = append(t.rings, tlRing{ev: make([]tlEvent, 0, perWorker)})
	}
	t.names = append(t.names, "coordinator")
	t.rings = append(t.rings, tlRing{ev: make([]tlEvent, 0, perWorker)})
	return t
}

// coordRow returns the coordinator row index.
func (t *Timeline) coordRow() int { return len(t.rings) - 1 }

// span records a duration event on row.
func (t *Timeline) span(row int, kind tlKind, t0, t1 time.Time, arg int64) {
	t.rings[row].add(tlEvent{kind: kind,
		t0: t0.Sub(t.start).Nanoseconds(), t1: t1.Sub(t.start).Nanoseconds(), arg: arg})
}

// mark records an instant event on row.
func (t *Timeline) mark(row int, kind tlKind, arg int64) {
	at := time.Since(t.start).Nanoseconds()
	t.rings[row].add(tlEvent{kind: kind, t0: at, t1: at, arg: arg})
}

// Events returns the total number of records currently retained.
func (t *Timeline) Events() int {
	n := 0
	for i := range t.rings {
		n += len(t.rings[i].ev)
	}
	return n
}

// kindMeta maps a record to its Chrome trace name and argument key.
func kindMeta(k tlKind) (name, argKey string) {
	switch k {
	case tlExchange:
		return "exchange", "horizon"
	case tlStep:
		return "step", "advance"
	case tlPark:
		return "park", "capped"
	case tlPokeHard:
		return "poke.hard", "peer"
	case tlPokeSoft:
		return "poke.soft", "peer"
	case tlRendezvous:
		return "rendezvous", "grants"
	case tlFallback:
		return "fallback", "tmin"
	case tlRound:
		return "round", "work"
	}
	return "?", "arg"
}

// WriteChromeTrace encodes the timeline as Chrome trace_event JSON
// (the {"traceEvents":[...]} object form): one metadata thread_name
// record per row, then every retained record as a complete ("X")
// duration event or an instant ("i"), timestamps in microseconds.
// Loadable in chrome://tracing and ui.perfetto.dev.
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	b := bufio.NewWriter(w)
	b.WriteString(`{"traceEvents":[`)
	b.WriteString(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"par scheduler"}}`)
	for tid, name := range t.names {
		fmt.Fprintf(b, `,{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%q}}`, tid, name)
	}
	for tid := range t.rings {
		for _, e := range t.rings[tid].ordered() {
			name, argKey := kindMeta(e.kind)
			ts := float64(e.t0) / 1e3
			if e.t1 > e.t0 || e.kind == tlExchange || e.kind == tlStep ||
				e.kind == tlPark || e.kind == tlRendezvous || e.kind == tlRound {
				fmt.Fprintf(b, `,{"name":%q,"ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{%q:%d}}`,
					name, tid, ts, float64(e.t1-e.t0)/1e3, argKey, e.arg)
			} else {
				fmt.Fprintf(b, `,{"name":%q,"ph":"i","pid":1,"tid":%d,"ts":%.3f,"s":"t","args":{%q:%d}}`,
					name, tid, ts, argKey, e.arg)
			}
		}
	}
	b.WriteString("]}\n")
	return b.Flush()
}

// traceCapacity, when positive, arms automatic capture: every
// subsequent multi-shard Run records a fresh Timeline of that many
// events per row and publishes it through LastTrace on completion.
var traceCapacity atomic.Int64

// lastTrace is the most recently completed auto-captured timeline.
var lastTrace atomic.Pointer[Timeline]

// SetTraceCapture arms (perWorker > 0) or disarms (0) automatic
// timeline capture for multi-shard runs; the finished trace of the
// most recent Run is available from LastTrace. This is the switch
// behind the -simtrace benchmark flags and the simd debug endpoint.
func SetTraceCapture(perWorker int) { traceCapacity.Store(int64(perWorker)) }

// LastTrace returns the most recent auto-captured timeline, or nil.
func LastTrace() *Timeline { return lastTrace.Load() }

// SetTimeline attaches an explicit timeline for the next Run (tests,
// embedders that want a private trace); pass nil to detach. Must not
// be called while Run is in progress. An attached timeline suppresses
// auto-capture and accumulates across consecutive Runs.
func (c *Coordinator) SetTimeline(t *Timeline) {
	if c.running {
		panic("par: SetTimeline called while running")
	}
	c.tl = t
	c.tlOwned = true
}

// NewTimeline returns an empty timeline for SetTimeline, sized at
// perWorker retained events per row. Call after every AddShard.
func (c *Coordinator) NewTimeline(perWorker int) *Timeline {
	return c.newTimeline(perWorker)
}
