package par_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/par"
	"repro/internal/sim"
)

// wedged builds a single-kernel delta-cycle livelock pinned at date 0.
func wedged() *sim.Kernel {
	k := sim.NewKernel("wedge")
	ping := sim.NewEvent(k, "ping")
	pong := sim.NewEvent(k, "pong")
	k.Thread("a", func(p *sim.Process) {
		for {
			ping.NotifyDelta()
			p.WaitEvent(pong)
		}
	})
	k.Thread("b", func(p *sim.Process) {
		for {
			p.WaitEvent(ping)
			pong.NotifyDelta()
		}
	})
	return k
}

// TestGuardDeadline: a context deadline interrupts a runaway single
// kernel and surfaces as a *StallError wrapping DeadlineExceeded, with
// the one-shard diagnostic showing the frozen date and climbing beat.
func TestGuardDeadline(t *testing.T) {
	defer leakcheck.Check(t)()
	k := wedged()
	defer k.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := par.RunKernel(ctx, k, sim.RunForever, 0)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to bite", elapsed)
	}
	var se *par.StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v (%T), want *StallError", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("cause = %v, want DeadlineExceeded", se.Cause)
	}
	if len(se.Diag.Shards) != 1 {
		t.Fatalf("diagnostic has %d shards, want 1", len(se.Diag.Shards))
	}
	sd := se.Diag.Shards[0]
	if sd.Now != 0 || sd.Beat == 0 {
		t.Errorf("shard diag now=%v beat=%d, want frozen date with nonzero beat", sd.Now, sd.Beat)
	}
	if k.Interrupted() {
		t.Error("guard should unlatch the interrupt before returning")
	}
}

// TestGuardCancel: plain cancellation returns ctx.Err() without a
// diagnostic — the caller abandoned the run, nothing is "stalled".
func TestGuardCancel(t *testing.T) {
	defer leakcheck.Check(t)()
	k := wedged()
	defer k.Shutdown()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	err := par.RunKernel(ctx, k, sim.RunForever, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var se *par.StallError
	if errors.As(err, &se) {
		t.Error("plain cancellation should not carry a StallError")
	}
}

// TestGuardHealthyRun: guarding a run that completes normally returns
// nil even with an armed watchdog and deadline.
func TestGuardHealthyRun(t *testing.T) {
	defer leakcheck.Check(t)()
	k := sim.NewKernel("healthy")
	k.Thread("p", func(p *sim.Process) {
		for i := 0; i < 50; i++ {
			p.Wait(sim.NS)
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := par.RunKernel(ctx, k, sim.RunForever, 5*time.Second); err != nil {
		t.Fatalf("healthy guarded run: %v", err)
	}
	if k.Now() != 50*sim.NS {
		t.Errorf("now = %v, want 50ns", k.Now())
	}
}

// TestStallDiagnosticStringTimeMax: a bridge whose writer has
// terminated publishes WriteFrontier = TimeMax; the rendered dump must
// name the sentinel explicitly and mark the terminated writer, so the
// write side of every bridge is unambiguous.
func TestStallDiagnosticStringTimeMax(t *testing.T) {
	d := par.StallDiagnostic{
		GlobalNow: 100,
		Shards:    []par.ShardDiag{{Name: "s0", Now: 100, Horizon: sim.TimeMax}},
		Bridges: []par.BridgeDiag{
			{Name: "b0", Writer: "s0", Reader: "s1", Frontier: 150, WriteFrontier: sim.TimeMax},
			{Name: "b1", Writer: "s1", Reader: "s0", Frontier: 150, WriteFrontier: 200},
		},
	}
	out := d.String()
	if !strings.Contains(out, "write_frontier=TimeMax (writer terminated)") {
		t.Errorf("terminated-writer bridge not marked explicitly:\n%s", out)
	}
	if !strings.Contains(out, "write_frontier=200") || strings.Contains(out, "200 (writer terminated)") {
		t.Errorf("live-writer bridge misrendered:\n%s", out)
	}
	if !strings.Contains(out, "horizon=TimeMax") {
		t.Errorf("unbounded horizon should render as TimeMax:\n%s", out)
	}
	if strings.Contains(out, "=max") {
		t.Errorf("ambiguous 'max' fold still present:\n%s", out)
	}
}
