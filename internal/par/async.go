package par

// The asynchronous frontier-driven scheduler: one long-lived worker
// goroutine per shard, each advancing the moment its own inbound bridge
// frontiers allow, with an all-parked rendezvous on the Run goroutine as
// the deadlock-free slow path. See the package doc for the protocol and
// its safety argument.

import (
	"sync"
	"time"

	"repro/internal/sim"
)

// AsyncBridge is the bridge extension the frontier-driven scheduler
// needs: the two directional halves of Flush, each safe to call from its
// own shard's worker goroutine while the peer shard keeps running.
// core.ShardedFIFO implements it. A coordinator holding any bridge
// without it stays on the barrier scheduler.
type AsyncBridge interface {
	Bridge
	// FlushWriterSide is the writer shard's half of an exchange: stage
	// the outbox, import freed-cell credits, and publish the frontier
	// base — or, with deferData set (the DeferFlush injection), skip
	// the exchange entirely and leave the previously published (still
	// valid) bounds in place. It returns the current write-frontier
	// bound plus two publication grades: data when words were staged
	// (can make a reader process runnable), bound when only a frontier
	// bound was raised (useful solely to a horizon-capped reader shard).
	FlushWriterSide(deferData bool) (writeFrontier sim.Time, data, bound bool)
	// FlushReaderSide is the reader shard's half: publish freed-cell
	// credits and the pop floor, import delivered data, and return the
	// effective inbound frontier (monotone across calls) plus the
	// graded publication flags: credit when freed cells crossed against
	// a writer-published full window (can make a credit-parked writer
	// process runnable), bound for any credit or floor publication.
	FlushReaderSide() (frontier sim.Time, credit, bound bool)
}

// sched is the park/poke state shared by one async run's workers and its
// rendezvous goroutine. Everything in it is guarded by mu; the bridges
// themselves carry their own locks, so a poke never has to be delivered
// under a bridge lock.
type sched struct {
	mu sync.Mutex
	// One condition variable per shard worker, all on mu: a poke or a
	// grant wakes exactly its target, never the whole fleet — a
	// broadcast here would charge every parked worker a full exchange
	// loop per wake, a cost that grows with system size.
	workers []*sync.Cond
	rendez  *sync.Cond // the Run goroutine waits here for all-parked
	// poke marks a shard whose inbound bounds may have moved since it
	// last derived its horizon; grant hands a shard a one-shot horizon
	// from the rendezvous (0 = none — every real grant is at least 1,
	// the exclusive bound above a date-0 event).
	poke   []bool
	grant  []sim.Time
	parked []bool
	// capped records, for a parked worker, whether its kernel still held
	// a timed event beyond the horizon. Only such a worker can profit
	// from a bound-only publication; a worker parked with no event at
	// all is woken solely by hard pokes (data or credits — the
	// publications that can make one of its processes runnable).
	capped []bool
	// dead marks workers that exited after recovering a model panic;
	// they never park again, so the all-parked count excludes them.
	dead    []bool
	nParked int
	nDead   int
	stop    bool
	panics  []any
}

// readyLocked reports whether the run is at a global safe point: every
// live worker parked with no wake reason pending. Pending pokes or
// grants mean a parked worker is about to resume — not quiescent.
func (sc *sched) readyLocked() bool {
	if sc.nParked != len(sc.parked)-sc.nDead {
		return false
	}
	for i := range sc.parked {
		if !sc.dead[i] && (sc.poke[i] || sc.grant[i] != 0) {
			return false
		}
	}
	return true
}

// poke marks shard i's inputs as changed and wakes it if parked. Always
// called after the publication it reports, so a peer that re-derives its
// horizon on this wake observes the new bound. from is the poking
// shard's index (for the timeline trace).
//
// hard marks a publication that can make one of the peer's processes
// runnable (delivered data, credits against a full window). A soft poke —
// a raised bound — is delivered to an awake peer (it re-checks the flag
// under this mutex before parking, so the bound is never missed) and to a
// horizon-capped parked one, but skipped entirely for a peer parked with
// no pending event: no bound can conjure an event, its next exchange
// re-reads every published value anyway, and the rendezvous recomputes
// all frontiers with full knowledge should everyone end up parked.
func (c *Coordinator) poke(sc *sched, from, i int, hard bool) {
	if tl := c.tl; tl != nil {
		k := tlPokeSoft
		if hard {
			k = tlPokeHard
		}
		tl.mark(from, k, int64(i))
	}
	sc.mu.Lock()
	if !sc.dead[i] {
		if !sc.parked[i] {
			sc.poke[i] = true
		} else if hard || sc.capped[i] {
			sc.poke[i] = true
			sc.workers[i].Signal()
			if m := c.m; m != nil {
				if hard {
					m.WakesHard.Inc()
				} else {
					m.WakesSoft.Inc()
				}
			}
		}
	}
	sc.mu.Unlock()
}

// park blocks shard s's worker until a wake reason arrives. capped
// reports whether the kernel still holds a timed event beyond the
// horizon (see sched.capped). It returns (g, true) when the rendezvous
// granted the one-shot horizon g, (0, true) when a peer poked —
// re-derive the horizon — and (0, false) when the run is stopping. The
// poke flag is checked before waiting, under the same mutex the poker
// sets it under, so a bound published between this shard's horizon
// derivation and its park is never missed.
func (c *Coordinator) park(s *shard, sc *sched, capped bool) (grant sim.Time, ok bool) {
	m, tl := c.m, c.tl
	var t0 time.Time
	waited := false
	if tl != nil {
		t0 = time.Now()
		defer func() {
			if waited {
				var a int64
				if capped {
					a = 1
				}
				tl.span(s.idx, tlPark, t0, time.Now(), a)
			}
		}()
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for {
		if sc.stop {
			return 0, false
		}
		if g := sc.grant[s.idx]; g != 0 {
			sc.grant[s.idx] = 0
			sc.poke[s.idx] = false
			return g, true
		}
		if sc.poke[s.idx] {
			sc.poke[s.idx] = false
			return 0, true
		}
		if !waited {
			waited = true
			if m != nil {
				m.Parks.Inc()
			}
		}
		sc.capped[s.idx] = capped
		sc.parked[s.idx] = true
		sc.nParked++
		if m != nil {
			m.ParkedWorkers.Set(int64(sc.nParked))
		}
		if sc.readyLocked() {
			sc.rendez.Signal()
		}
		sc.workers[s.idx].Wait()
		sc.parked[s.idx] = false
		sc.nParked--
		if m != nil {
			m.ParkedWorkers.Set(int64(sc.nParked))
		}
	}
}

// asyncStep advances s's kernel inside s.horizon, bumping the shard's
// advance ordinal and firing the injection hook (which receives that
// ordinal as its round — see Hooks.BeforeStep).
func (c *Coordinator) asyncStep(s *shard) {
	s.advs++
	if c.hooks != nil && c.hooks.BeforeStep != nil {
		c.hooks.BeforeStep(s.idx, s.k, s.advs)
	}
	c.ctr.advances.Add(1)
	if m := c.m; m != nil {
		m.Advances.Inc()
	}
	if tl := c.tl; tl != nil {
		t0 := time.Now()
		s.k.Step(stepLimit(s.horizon))
		tl.span(s.idx, tlStep, t0, time.Now(), int64(s.advs))
		return
	}
	s.k.Step(stepLimit(s.horizon))
}

// asyncWorker is one shard's long-lived scheduling loop: exchange both
// halves of every adjacent bridge, derive the horizon, step if an event
// lies inside it, park otherwise. A model panic retires the worker —
// peers keep running until they park on the frozen frontiers, so a
// second shard failing in the same window is never masked (the
// rendezvous joins every recorded panic into a PanicSet).
func (c *Coordinator) asyncWorker(s *shard, sc *sched, limit sim.Time, wg *sync.WaitGroup) {
	defer wg.Done()
	defer func() {
		if r := recover(); r != nil {
			sc.mu.Lock()
			sc.panics = append(sc.panics, r)
			sc.dead[s.idx] = true
			sc.nDead++
			if sc.readyLocked() {
				sc.rendez.Signal()
			}
			sc.mu.Unlock()
		}
	}()
	m, tl := c.m, c.tl
	for {
		if c.intr.Load() {
			// Interrupted: park. In-flight peers return at their own
			// next safe point (their kernels are latched too); when the
			// last one parks, the rendezvous observes the latch and
			// stops the run.
			if _, ok := c.park(s, sc, false); !ok {
				return
			}
			continue
		}
		// Exchange this shard's half of every adjacent bridge, poking
		// the peer after each publication (hard for data/credits, soft
		// for bare bound raises — see poke), and derive the horizon:
		// the inbound effective frontiers taken STRICTLY, the outbound
		// write frontiers inclusively (see selectByFrontiers for why).
		var tx time.Time
		if m != nil || tl != nil {
			tx = time.Now()
		}
		h := sim.TimeMax
		for i, ab := range s.aIn {
			f, credit, bound := ab.FlushReaderSide()
			if credit || bound {
				c.ctr.flushes.Add(1)
				c.poke(sc, s.idx, s.inPeer[i], credit)
			}
			if f < h {
				h = f
			}
		}
		for i, ab := range s.aOut {
			deferData := false
			if c.hooks != nil && c.hooks.DeferFlush != nil {
				if _, staged := ab.(StagedBridge); staged {
					deferData = c.hooks.DeferFlush(ab, s.advs)
				}
			}
			wf, data, bound := ab.FlushWriterSide(deferData)
			if data || bound {
				c.ctr.flushes.Add(1)
				c.poke(sc, s.idx, s.outPeer[i], data)
			}
			if wf != sim.TimeMax && wf+1 < h {
				h = wf + 1
			}
		}
		if limit >= 0 && limit+1 > 0 && limit+1 < h {
			h = limit + 1
		}
		s.horizon = h
		if m != nil {
			m.obsExchange(tx)
		}
		if tl != nil {
			tl.span(s.idx, tlExchange, tx, time.Now(), int64(h))
		}
		hasEvent := false
		if at, ok := s.k.NextEventAt(); ok {
			if at < h {
				c.asyncStep(s)
				continue
			}
			hasEvent = true
		}
		grant, ok := c.park(s, sc, hasEvent)
		if !ok {
			return
		}
		if grant != 0 {
			// One-shot horizon from the rendezvous (full-knowledge
			// frontier selection or the global-minimum fallback): step
			// directly — re-deriving from the published bounds would
			// discard exactly the knowledge the grant encodes.
			s.horizon = grant
			c.asyncStep(s)
		}
	}
}

// runAsync drives a multi-shard run under the frontier-driven scheduler.
// Between rendezvous the workers own all shared state (each bridge is
// touched only by its two endpoint workers, through the bridge's own
// lock); at a rendezvous every live worker is parked under sc.mu, so
// this goroutine has exclusive access to everything — the same global
// safe point a barrier provides, reached only when asynchronous progress
// is exhausted.
func (c *Coordinator) runAsync(limit sim.Time) {
	n := len(c.shards)
	sc := &sched{
		poke:   make([]bool, n),
		grant:  make([]sim.Time, n),
		parked: make([]bool, n),
		capped: make([]bool, n),
		dead:   make([]bool, n),
	}
	sc.workers = make([]*sync.Cond, n)
	for i := range sc.workers {
		sc.workers[i] = sync.NewCond(&sc.mu)
	}
	sc.rendez = sync.NewCond(&sc.mu)
	var wg sync.WaitGroup
	for _, s := range c.shards {
		wg.Add(1)
		go c.asyncWorker(s, sc, limit, &wg)
	}
	// Every exit below — quiescence, interrupt, re-panic — stops and
	// joins the workers, so no goroutine outlives Run.
	defer func() {
		sc.mu.Lock()
		sc.stop = true
		for _, w := range sc.workers {
			w.Signal()
		}
		sc.mu.Unlock()
		wg.Wait()
	}()

	m, tl := c.m, c.tl
	for {
		sc.mu.Lock()
		for !sc.readyLocked() {
			sc.rendez.Wait()
		}
		panics := sc.panics
		sc.panics = nil
		sc.mu.Unlock()
		var tr time.Time
		if tl != nil {
			tr = time.Now()
		}
		if m != nil {
			m.Rendezvous.Inc()
		}
		if len(panics) > 0 {
			if len(panics) == 1 {
				panic(panics[0])
			}
			panic(PanicSet(panics))
		}
		if c.intr.Load() {
			return
		}
		// Global safe point. Force-flush every bridge (delivering
		// anything an injection hook withheld) and recompute every
		// horizon with full barrier-grade knowledge — Frontier() sees
		// the writer kernel's clock and local dates, which the
		// asynchronously published bounds conservatively lag.
		c.flushBridges(true)
		work := c.selectByFrontiers(limit)
		if work == 0 {
			if work = c.fallback(limit); work == 0 {
				return // globally quiescent within the limit
			}
			c.ctr.fallbacks.Add(1)
			if m != nil {
				m.Fallbacks.Inc()
			}
			if tl != nil {
				tl.mark(tl.coordRow(), tlFallback, 0)
			}
		}
		c.ctr.rounds.Add(1)
		granted := 0
		sc.mu.Lock()
		for _, s := range c.shards {
			if s.run && !sc.dead[s.idx] {
				sc.grant[s.idx] = s.horizon
				sc.workers[s.idx].Signal()
				granted++
			}
		}
		sc.mu.Unlock()
		if tl != nil {
			tl.span(tl.coordRow(), tlRendezvous, tr, time.Now(), int64(granted))
		}
	}
}
