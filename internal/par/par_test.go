package par_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/trace"
)

// prodRate/consRate give varying per-item periods so producer and consumer
// alternate between running ahead and lagging.
func prodRate(i int) sim.Time {
	return sim.Time(3+i%5) * sim.NS
}

func consRate(i int) sim.Time {
	return sim.Time(2+(i/7)%6) * sim.NS
}

// runSmartRef runs the producer/consumer pair on one kernel over a plain
// SmartFIFO and records the consumer's dated pops: the timing reference.
func runSmartRef(t *testing.T, depth, n int) *trace.Recorder {
	t.Helper()
	rec := trace.NewRecorder()
	k := sim.NewKernel("ref")
	f := core.NewSmart[int](k, "ch", depth)
	k.Thread("producer", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			p.Inc(prodRate(i))
			f.Write(i * 3)
		}
	})
	k.Thread("consumer", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			v := f.Read()
			p.Inc(consRate(i))
			rec.Logf(p, "pop %d", v)
		}
	})
	k.Run(sim.RunForever)
	k.Shutdown()
	return rec
}

// runSharded runs the same pair split across two shards over a
// ShardedFIFO bridge.
func runSharded(t *testing.T, depth, n int) (*trace.Recorder, *par.Coordinator) {
	t.Helper()
	rec := trace.NewRecorder()
	kw := sim.NewKernel("shard.w")
	kr := sim.NewKernel("shard.r")
	f := core.NewSharded[int](kw, kr, "ch", depth)
	kw.Thread("producer", func(p *sim.Process) {
		w := f.Writer()
		for i := 0; i < n; i++ {
			p.Inc(prodRate(i))
			w.Write(i * 3)
		}
	})
	kr.Thread("consumer", func(p *sim.Process) {
		r := f.Reader()
		for i := 0; i < n; i++ {
			v := r.Read()
			p.Inc(consRate(i))
			rec.Logf(p, "pop %d", v)
		}
	})
	c := par.NewCoordinator()
	c.AddShard(kw)
	c.AddShard(kr)
	c.AddBridge(f)
	c.Run(sim.RunForever)
	return rec, c
}

// TestShardedFIFOMatchesSmart pins the headline bridge property: a
// two-shard run over a ShardedFIFO produces exactly the dates and values
// of a one-kernel run over a SmartFIFO, at every depth.
func TestShardedFIFOMatchesSmart(t *testing.T) {
	for _, depth := range []int{1, 2, 7, 64} {
		ref := runSmartRef(t, depth, 500)
		got, c := runSharded(t, depth, 500)
		if d := trace.Diff(ref, got); d != "" {
			t.Errorf("depth %d: sharded trace differs from SmartFIFO reference:\n%s", depth, d)
		}
		if blocked := c.Blocked(); len(blocked) != 0 {
			t.Errorf("depth %d: blocked shards after clean run: %v", depth, blocked)
		}
		c.Shutdown()
	}
}

// TestShardedSelfBridge runs both endpoints on the same kernel: the
// degenerate 1-shard mapping every sharded model must support.
func TestShardedSelfBridge(t *testing.T) {
	ref := runSmartRef(t, 4, 300)
	rec := trace.NewRecorder()
	k := sim.NewKernel("solo")
	f := core.NewSharded[int](k, k, "ch", 4)
	k.Thread("producer", func(p *sim.Process) {
		for i := 0; i < 300; i++ {
			p.Inc(prodRate(i))
			f.Writer().Write(i * 3)
		}
	})
	k.Thread("consumer", func(p *sim.Process) {
		for i := 0; i < 300; i++ {
			v := f.Reader().Read()
			p.Inc(consRate(i))
			rec.Logf(p, "pop %d", v)
		}
	})
	c := par.NewCoordinator()
	c.AddShard(k)
	c.AddBridge(f)
	c.Run(sim.RunForever)
	defer c.Shutdown()
	if d := trace.Diff(ref, rec); d != "" {
		t.Fatalf("self-bridge trace differs from SmartFIFO reference:\n%s", d)
	}
}

// TestShardedChain runs a three-stage chain over two bridges on three
// shards, with a middle stage that transforms data, and checks values and
// final dates against a one-kernel SmartFIFO build of the same model.
func TestShardedChain(t *testing.T) {
	const n = 400
	build := func(k1, k2, k3 *sim.Kernel, mk func(a, b *sim.Kernel, name string) (w interface{ Write(int) }, r interface{ Read() int }), rec *trace.Recorder) {
		w1, r1 := mk(k1, k2, "c1")
		w2, r2 := mk(k2, k3, "c2")
		k1.Thread("src", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				p.Inc(prodRate(i))
				w1.Write(i)
			}
		})
		k2.Thread("mid", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				v := r1.Read()
				p.Inc(2 * sim.NS)
				w2.Write(v ^ 0x55)
			}
		})
		k3.Thread("dst", func(p *sim.Process) {
			for i := 0; i < n; i++ {
				v := r2.Read()
				p.Inc(consRate(i))
				rec.Logf(p, "out %d", v)
			}
		})
	}

	ref := trace.NewRecorder()
	k := sim.NewKernel("mono")
	build(k, k, k, func(a, b *sim.Kernel, name string) (interface{ Write(int) }, interface{ Read() int }) {
		f := core.NewSmart[int](a, name, 8)
		return f, f
	}, ref)
	k.Run(sim.RunForever)
	k.Shutdown()

	got := trace.NewRecorder()
	ks := []*sim.Kernel{sim.NewKernel("s0"), sim.NewKernel("s1"), sim.NewKernel("s2")}
	c := par.NewCoordinator()
	for _, sk := range ks {
		c.AddShard(sk)
	}
	build(ks[0], ks[1], ks[2], func(a, b *sim.Kernel, name string) (interface{ Write(int) }, interface{ Read() int }) {
		f := core.NewSharded[int](a, b, name, 8)
		c.AddBridge(f)
		return f.Writer(), f.Reader()
	}, got)
	c.Run(sim.RunForever)
	defer c.Shutdown()

	if d := trace.Diff(ref, got); d != "" {
		t.Fatalf("3-shard chain differs from 1-kernel reference:\n%s", d)
	}
	if st := c.Stats(); st.Advances == 0 || st.Flushes == 0 {
		t.Fatalf("coordinator did no sharded work: %+v", st)
	}
}

// TestCoordinatorHorizonThrottlesFreeRunner checks the conservative
// contract: a process that advances time freely (a poller) on the reading
// shard is bounded by the inbound frontier, so its shard advances in
// step with the writer instead of blasting ahead — visible as many
// barrier rounds instead of one. All mutable state stays shard-local;
// only the bridge crosses the boundary.
func TestCoordinatorHorizonThrottlesFreeRunner(t *testing.T) {
	const n = 50
	kw := sim.NewKernel("w")
	kr := sim.NewKernel("r")
	f := core.NewSharded[int](kw, kr, "ch", 4)
	kw.Thread("producer", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			p.Wait(10 * sim.NS) // synchronized writer: frontier == kernel date
			f.Writer().Write(i)
		}
	})
	var got int
	done := false
	kr.Thread("consumer", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			if v := f.Reader().Read(); v == i {
				got++
			}
		}
		done = true
	})
	var polls int
	kr.Thread("poller", func(p *sim.Process) {
		for !done {
			p.Wait(1 * sim.NS)
			polls++
		}
	})
	c := par.NewCoordinator()
	c.AddShard(kw)
	c.AddShard(kr)
	c.AddBridge(f)
	c.Run(sim.RunForever)
	defer c.Shutdown()
	if got != n {
		t.Fatalf("consumer saw %d/%d values", got, n)
	}
	// The poller runs at 1ns; the producer commits 10ns at a time with a
	// 4-deep credit window, so the reader shard needs many separate
	// advances to cover the stream — a single blast to quiescence would
	// mean the horizon did not throttle it.
	if st := c.Stats(); st.Advances < uint64(n)/4 {
		t.Errorf("only %d advances for %d credit-limited writes: horizon not throttling", st.Advances, n)
	}
	if polls == 0 {
		t.Error("poller never ran")
	}
}

// TestFallbackBreaksFrontierStall: a writer that parks forever (like an
// idle accelerator waiting for its next job) freezes its bridge's
// frontier, so the reading shard's remaining timed work can only proceed
// through the coordinator's global-minimum fallback.
func TestFallbackBreaksFrontierStall(t *testing.T) {
	ka := sim.NewKernel("a")
	kb := sim.NewKernel("b")
	f := core.NewSharded[int](ka, kb, "ch", 2)
	parkForever := sim.NewEvent(ka, "never")
	ka.Thread("writer", func(p *sim.Process) {
		f.Writer().Write(1)
		p.WaitEvent(parkForever) // parked, not terminated: frontier freezes
	})
	var got bool
	kb.Thread("reader", func(p *sim.Process) {
		got = f.Reader().Read() == 1
	})
	const polls = 40
	var ticked int
	kb.Thread("poller", func(p *sim.Process) {
		for i := 0; i < polls; i++ {
			p.Wait(5 * sim.NS)
			ticked++
		}
	})
	c := par.NewCoordinator()
	c.AddShard(ka)
	c.AddShard(kb)
	c.AddBridge(f)
	c.Run(sim.RunForever)
	defer c.Shutdown()
	if !got || ticked != polls {
		t.Fatalf("got=%v ticked=%d/%d: run did not complete", got, ticked, polls)
	}
	if st := c.Stats(); st.Fallbacks == 0 {
		t.Errorf("expected fallback rounds against a frozen frontier, stats %+v", st)
	}
	if b := c.Blocked(); len(b["a"]) != 1 || b["a"][0] != "writer" {
		t.Errorf("want parked writer reported on shard a, got %v", b)
	}
}

// TestBlockedPerShard: a starved consumer shard is reported by Blocked
// under its shard's name.
func TestBlockedPerShard(t *testing.T) {
	kw := sim.NewKernel("w")
	kr := sim.NewKernel("r")
	f := core.NewSharded[int](kw, kr, "ch", 2)
	kw.Thread("producer", func(p *sim.Process) {
		for i := 0; i < 3; i++ {
			p.Inc(sim.NS)
			f.Writer().Write(i)
		}
	})
	kr.Thread("consumer", func(p *sim.Process) {
		for i := 0; i < 10; i++ { // wants more than the producer sends
			f.Reader().Read()
		}
	})
	c := par.NewCoordinator()
	c.AddShard(kw)
	c.AddShard(kr)
	c.AddBridge(f)
	c.Run(sim.RunForever)
	defer c.Shutdown()
	blocked := c.Blocked()
	if len(blocked["w"]) != 0 {
		t.Errorf("writer shard unexpectedly blocked: %v", blocked["w"])
	}
	if len(blocked["r"]) != 1 || blocked["r"][0] != "consumer" {
		t.Errorf("want consumer blocked on shard r, got %v", blocked)
	}
}

// TestCoordinatorRunLimit: Run(limit) stops with work pending beyond the
// limit and resumes exactly.
func TestCoordinatorRunLimit(t *testing.T) {
	kw := sim.NewKernel("w")
	kr := sim.NewKernel("r")
	f := core.NewSharded[int](kw, kr, "ch", 8)
	const n = 20
	kw.Thread("producer", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			p.Wait(10 * sim.NS)
			f.Writer().Write(i)
		}
	})
	var dates []sim.Time
	kr.Thread("consumer", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			f.Reader().Read()
			dates = append(dates, p.LocalTime())
		}
	})
	c := par.NewCoordinator()
	c.AddShard(kw)
	c.AddShard(kr)
	c.AddBridge(f)
	c.Run(55 * sim.NS)
	defer c.Shutdown()
	if len(dates) >= n {
		t.Fatalf("limit 55ns: consumer finished all %d pops", n)
	}
	mid := len(dates)
	if mid < 3 {
		t.Fatalf("limit 55ns: only %d pops happened", mid)
	}
	c.Run(sim.RunForever)
	if len(dates) != n {
		t.Fatalf("resume: got %d/%d pops", len(dates), n)
	}
	for i := 1; i < n; i++ {
		if dates[i] < dates[i-1] {
			t.Fatalf("pop dates went backwards at %d: %v", i, dates)
		}
	}
}
