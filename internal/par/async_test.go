package par_test

// Edge cases of the asynchronous frontier-driven scheduler: frontier
// publication racing Interrupt, the credit-blocked write-frontier cap,
// the global-minimum fallback, and barrier/async date equivalence. Run
// with -race: these tests exist to expose cross-worker ordering bugs.

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/leakcheck"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/trace"
)

// buildChain assembles the three-stage, two-bridge chain used by the
// async tests on three fresh shards and returns the coordinator plus the
// sink's dated trace.
func buildChain(n int) (*par.Coordinator, *trace.Recorder) {
	rec := trace.NewRecorder()
	k1, k2, k3 := sim.NewKernel("s0"), sim.NewKernel("s1"), sim.NewKernel("s2")
	c := par.NewCoordinator()
	for _, k := range []*sim.Kernel{k1, k2, k3} {
		c.AddShard(k)
	}
	f1 := core.NewSharded[int](k1, k2, "c1", 8)
	f2 := core.NewSharded[int](k2, k3, "c2", 8)
	c.AddBridge(f1)
	c.AddBridge(f2)
	k1.Thread("src", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			p.Inc(prodRate(i))
			f1.Writer().Write(i)
		}
	})
	k2.Thread("mid", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			v := f1.Reader().Read()
			p.Inc(2 * sim.NS)
			f2.Writer().Write(v ^ 0x55)
		}
	})
	k3.Thread("dst", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			v := f2.Reader().Read()
			p.Inc(consRate(i))
			rec.Logf(p, "out %d", v)
		}
	})
	return c, rec
}

// chainRef runs the same chain on one kernel over SmartFIFOs.
func chainRef(n int) *trace.Recorder {
	rec := trace.NewRecorder()
	k := sim.NewKernel("mono")
	f1 := core.NewSmart[int](k, "c1", 8)
	f2 := core.NewSmart[int](k, "c2", 8)
	k.Thread("src", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			p.Inc(prodRate(i))
			f1.Write(i)
		}
	})
	k.Thread("mid", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			v := f1.Read()
			p.Inc(2 * sim.NS)
			f2.Write(v ^ 0x55)
		}
	})
	k.Thread("dst", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			v := f2.Read()
			p.Inc(consRate(i))
			rec.Logf(p, "out %d", v)
		}
	})
	k.Run(sim.RunForever)
	k.Shutdown()
	return rec
}

// TestBarrierMatchesAsyncDates pins the scheduler-equivalence contract:
// the forced barrier scheduler and the default async one produce traces
// byte-identical to each other and to the single-kernel reference.
func TestBarrierMatchesAsyncDates(t *testing.T) {
	defer leakcheck.Check(t)()
	const n = 400
	ref := chainRef(n)

	async, asyncRec := buildChain(n)
	async.Run(sim.RunForever)
	defer async.Shutdown()
	if d := trace.Diff(ref, asyncRec); d != "" {
		t.Fatalf("async trace differs from single-kernel reference:\n%s", d)
	}

	barrier, barrierRec := buildChain(n)
	barrier.SetBarrier(true)
	barrier.Run(sim.RunForever)
	defer barrier.Shutdown()
	if d := trace.Diff(ref, barrierRec); d != "" {
		t.Fatalf("barrier trace differs from single-kernel reference:\n%s", d)
	}
	// The barrier scheduler dispatches every advance from a rendezvous;
	// the async one mostly advances between rendezvous.
	if st := barrier.Stats(); st.Rounds == 0 || st.Advances == 0 {
		t.Errorf("barrier run recorded no work: %+v", st)
	}
	if st := async.Stats(); st.Advances == 0 {
		t.Errorf("async run recorded no advances: %+v", st)
	}
}

// TestAsyncInterruptRace interrupts the async run from another goroutine
// at arbitrary wall-clock moments — racing the workers' frontier
// publications and parks — then resumes, repeatedly, and requires the
// final trace to be byte-identical to the uninterrupted reference. Every
// interrupt must return Run with all workers joined (the leak check
// would catch a stuck worker).
func TestAsyncInterruptRace(t *testing.T) {
	defer leakcheck.Check(t)()
	const n = 1500
	ref := chainRef(n)
	for iter := 0; iter < 4; iter++ {
		c, rec := buildChain(n)
		stop := make(chan struct{})
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
					c.Interrupt()
					time.Sleep(200 * time.Microsecond)
				}
			}
		}()
		// Resume until the model actually finishes: a return with the
		// latch set was an interrupt stop, not quiescence.
		interrupts := 0
		for {
			c.Run(sim.RunForever)
			if !c.Interrupted() {
				break
			}
			interrupts++
			c.ClearInterrupt()
		}
		close(stop)
		if d := trace.Diff(ref, rec); d != "" {
			t.Fatalf("iter %d: trace after %d interrupts differs from reference:\n%s", iter, interrupts, d)
		}
		c.Shutdown()
	}
}

// TestAsyncWriteFrontierCreditCap drives the two directional exchange
// halves by hand through a credit-blocked episode and checks the bounds
// they publish: a blocked writer's write frontier stays finite (the
// shard's clock must not pass it), credits published by the reader raise
// it, and termination lifts it to TimeMax.
func TestAsyncWriteFrontierCreditCap(t *testing.T) {
	defer leakcheck.Check(t)()
	kw, kr := sim.NewKernel("w"), sim.NewKernel("r")
	f := core.NewSharded[int](kw, kr, "ch", 2)
	kw.Thread("producer", func(p *sim.Process) {
		for i := 0; i < 3; i++ {
			p.Inc(10 * sim.NS)
			f.Writer().Write(i) // 3rd write blocks: the window holds 2
		}
	})
	var got []sim.Time
	kr.Thread("consumer", func(p *sim.Process) {
		for i := 0; i < 3; i++ {
			f.Reader().Read()
			got = append(got, p.LocalTime())
			p.Inc(7 * sim.NS)
		}
	})

	// Writer runs alone: fills the window at 10ns and 20ns, blocks on
	// the third write. Its write frontier must be finite — the cap the
	// scheduler enforces on the shard clock — and at least the last
	// committed write date.
	kw.Run(sim.RunForever)
	wf, _, _ := f.FlushWriterSide(false)
	if wf == sim.TimeMax {
		t.Fatalf("credit-blocked writer published an unbounded write frontier")
	}
	if wf < 20*sim.NS {
		t.Fatalf("write frontier %v below the last committed write date 20ns", wf)
	}

	// Reader side: importing the two delivered words must publish a
	// finite inbound frontier (the writer is blocked, not terminated).
	front, _, _ := f.FlushReaderSide()
	if front == sim.TimeMax {
		t.Fatalf("frontier unbounded while the writer is alive and blocked")
	}

	// Reader pops both words; its freed credits cross on the next
	// exchange pair and must RAISE the writer's frontier bound (the
	// blocked write resumes at or after the freeing date). Against a
	// writer-published full window the publication must grade as a
	// credit — the hard poke that wakes a credit-parked writer shard.
	kr.Run(sim.RunForever)
	if _, credit, _ := f.FlushReaderSide(); !credit {
		t.Fatalf("freed credits against a blocked window were not published as a credit")
	}
	wf2, _, _ := f.FlushWriterSide(false)
	if wf2 < wf {
		t.Fatalf("write frontier went backwards after credits: %v -> %v", wf, wf2)
	}

	// With credits imported the writer completes and terminates; a
	// terminated writer can never block again, so the bound lifts to
	// TimeMax and the reader drains unthrottled.
	kw.Run(sim.RunForever)
	if wf3, _, _ := f.FlushWriterSide(false); wf3 != sim.TimeMax {
		t.Fatalf("terminated writer's write frontier = %v, want TimeMax", wf3)
	}
	if front, _, _ := f.FlushReaderSide(); front != sim.TimeMax {
		t.Fatalf("terminated writer's frontier = %v, want TimeMax", front)
	}
	kr.Run(sim.RunForever)
	if len(got) != 3 {
		t.Fatalf("consumer saw %d/3 words", len(got))
	}
	kw.Shutdown()
	kr.Shutdown()
}

// TestAsyncGlobalMinFallback freezes every frontier — the source parks
// forever mid-stream, starving the whole chain — while the sink shard
// still holds standalone timed work. Only the rendezvous' global-minimum
// fallback can legalise that work; the run must finish it and report the
// parked processes rather than deadlock.
func TestAsyncGlobalMinFallback(t *testing.T) {
	defer leakcheck.Check(t)()
	k1, k2 := sim.NewKernel("a"), sim.NewKernel("b")
	f := core.NewSharded[int](k1, k2, "ch", 4)
	never := sim.NewEvent(k1, "never")
	k1.Thread("writer", func(p *sim.Process) {
		p.Inc(3 * sim.NS)
		f.Writer().Write(7)
		p.WaitEvent(never) // frontier freezes at a finite date
	})
	var got bool
	k2.Thread("reader", func(p *sim.Process) {
		got = f.Reader().Read() == 7
	})
	const ticks = 30
	ticked := 0
	k2.Thread("ticker", func(p *sim.Process) {
		for i := 0; i < ticks; i++ {
			p.Wait(5 * sim.NS)
			ticked++
		}
	})
	c := par.NewCoordinator()
	c.AddShard(k1)
	c.AddShard(k2)
	c.AddBridge(f)
	c.Run(sim.RunForever)
	defer c.Shutdown()
	if !got || ticked != ticks {
		t.Fatalf("got=%v ticked=%d/%d: fallback did not carry the run to quiescence", got, ticked, ticks)
	}
	if st := c.Stats(); st.Fallbacks == 0 {
		t.Errorf("no fallback recorded against frozen frontiers: %+v", st)
	}
	if b := c.Blocked(); len(b["a"]) != 1 || b["a"][0] != "writer" {
		t.Errorf("want the parked writer reported on shard a, got %v", b)
	}
}
