// Package par executes a partitioned simulation: N sim.Kernel shards, each
// advanced on its own OS thread, coordinated by a conservative barrier
// scheduler over the Smart-FIFO dates carried by cross-shard bridges
// (core.ShardedFIFO).
//
// # Protocol
//
// The coordinator runs barrier rounds. Each round:
//
//  1. every bridge is flushed: data and freeing dates staged during the
//     previous round cross the shard boundary and wake blocked endpoint
//     processes;
//  2. every shard's horizon is computed: the minimum over the Frontiers
//     of its inbound bridges — a lower bound on the insertion dates of
//     anything that can still arrive, taken STRICTLY (the shard stops
//     short of the bound, so a non-blocking reader polling at date D has
//     every word inserted at or before D already delivered) — and the
//     WriteFrontiers of its outbound bridges — the shard's kernel clock
//     must never pass the date a credit-blocked writer resumes at, or
//     the writer's restored decoupled local date would clamp to the
//     clock. A shard with no bridges is unbounded;
//  3. every shard with pending activity dated inside its horizon runs
//     concurrently (Kernel.Step) up to it.
//
// The scheme is null-message-free: the lookahead a CMB-style scheduler
// would ship in null messages is already present in the Smart-FIFO access
// discipline — write dates on a side never decrease, so the last insertion
// date (plus the writer's local clock, which a temporally decoupled writer
// pushes far ahead of its kernel's date) bounds all future traffic on the
// bridge. A shard therefore runs ahead of the global date exactly as far
// as the paper's cell timestamps prove safe, and blocking bridge accesses
// reproduce single-kernel Smart-FIFO dates bit for bit.
//
// When no shard has work inside its horizon but events remain, the
// coordinator falls back to the globally earliest event date (see
// Stats.Fallbacks) — the standard conservative floor, needed only when
// every frontier is frozen. The coordinator stops at global quiescence:
// after flushing every bridge, no shard has any pending event inside the
// run limit. That covers both normal termination and model deadlock;
// Blocked distinguishes them.
package par

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Bridge is a cross-shard channel. core.ShardedFIFO implements it; any
// channel that can report a conservative frontier and deliver at barriers
// can participate.
type Bridge interface {
	// Name identifies the bridge in diagnostics.
	Name() string
	// WriterKernel is the shard that produces into the bridge.
	WriterKernel() *sim.Kernel
	// ReaderKernel is the shard that consumes from the bridge.
	ReaderKernel() *sim.Kernel
	// Frontier returns a lower bound on the dates of all future
	// deliveries. Called only at barriers, after Flush. sim.TimeMax
	// means the bridge can never deliver again.
	Frontier() sim.Time
	// WriteFrontier returns a lower bound on the resume date of any
	// writer-side access that blocks on exhausted credits. The writer's
	// shard must not advance its kernel clock past it: a parked writer
	// restores its decoupled local date on wake, and the kernel cannot
	// represent a local date in the global past — an overshooting
	// co-located process would clamp the restore and corrupt the dates.
	// Called only at barriers, after Flush. sim.TimeMax means the writer
	// can never block again.
	WriteFrontier() sim.Time
	// Flush moves staged data across the boundary and reports whether
	// anything moved. Called only at barriers.
	Flush() bool
}

// Stats counts coordinator activity.
type Stats struct {
	// Rounds is the number of barrier rounds executed.
	Rounds uint64
	// Steps counts Kernel.Step calls that found work.
	Steps uint64
	// Flushes counts bridge flushes that moved data or credits.
	Flushes uint64
	// Fallbacks counts rounds resolved by the global-minimum rule: no
	// shard had work inside its frontier-derived horizon, so the shards
	// holding the globally earliest event were advanced to exactly that
	// date. This happens when every frontier is frozen — typically the
	// drain phase of a model whose producers park forever instead of
	// terminating (idle accelerators waiting for a next job).
	Fallbacks uint64
}

// shard is one kernel plus its coordination state.
type shard struct {
	k        *sim.Kernel
	idx      int
	inbound  []Bridge
	outbound []Bridge
	horizon  sim.Time
	run      bool          // selected to run this round
	work     chan sim.Time // persistent worker's horizon feed (multi-shard runs)
}

// Coordinator drives a set of shards to global quiescence.
type Coordinator struct {
	shards   []*shard
	byKernel map[*sim.Kernel]*shard
	bridges  []Bridge
	stats    Stats
	running  bool

	// Round barrier state, shared with the shard workers.
	wg        sync.WaitGroup
	panicMu   sync.Mutex
	panicVals []any

	// intr is the coordinator-level interrupt latch (see Interrupt).
	intr atomic.Bool

	// hooks is the fault-injection surface (nil in production);
	// deferred marks bridges whose Flush the hook withheld this round.
	hooks    *Hooks
	deferred map[Bridge]bool
}

// Hooks is the coordinator's fault-injection surface, used by the chaos
// harness (internal/chaos) to perturb scheduling without touching the
// protocol. All hooks are optional; a nil *Hooks disables injection.
type Hooks struct {
	// BeforeStep runs on the shard's worker goroutine immediately before
	// Kernel.Step each round. It may sleep (scheduling jitter) or panic
	// (an induced shard failure); it must not touch kernel state.
	BeforeStep func(shard int, k *sim.Kernel, round uint64)
	// DeferFlush, when it returns true, withholds the bridge's Flush
	// this round: staged data stays on the writer side and the
	// coordinator bounds the reader with the bridge's staged frontier
	// instead, so the delay never changes dates. Deferred bridges are
	// force-flushed before the coordinator concludes quiescence or
	// falls back to the global minimum.
	DeferFlush func(b Bridge, round uint64) bool
}

// SetHooks installs (or, with nil, removes) the fault-injection hooks.
// Must not be called while Run is in progress.
func (c *Coordinator) SetHooks(h *Hooks) {
	if c.running {
		panic("par: SetHooks called while running")
	}
	c.hooks = h
}

// StagedBridge is the optional bridge extension the deferred-flush
// injection relies on: a lower bound on the insertion dates of data
// staged but not yet flushed. core.ShardedFIFO implements it. A bridge
// without it is never deferred.
type StagedBridge interface {
	// StagedFrontier returns the minimum insertion date staged in the
	// writer-side outbox, and ok=false when nothing is staged.
	StagedFrontier() (at sim.Time, ok bool)
}

// Interrupt asks the coordinator and every shard kernel to stop at the
// next safe point (the current barrier round completes first). Safe from
// any goroutine. The latch persists until ClearInterrupt.
func (c *Coordinator) Interrupt() {
	c.intr.Store(true)
	for _, s := range c.shards {
		s.k.Interrupt()
	}
}

// Interrupted reports whether an interrupt is latched.
func (c *Coordinator) Interrupted() bool { return c.intr.Load() }

// ClearInterrupt unlatches the coordinator and every shard kernel so the
// run can be resumed. Call only while Run is not in progress.
func (c *Coordinator) ClearInterrupt() {
	c.intr.Store(false)
	for _, s := range c.shards {
		s.k.ClearInterrupt()
	}
}

// Progress returns the simulated-time beacon stall watchdogs sample:
// the sum of every shard's published simulated time (sim.Kernel.Beacon).
// Two equal samples a stall window apart mean no shard advanced
// simulated time at all in between — the run is deadlocked across a
// bridge, livelocked in delta cycles at one date, or stuck in a
// non-cooperative call; the stall diagnostic's per-shard Beat and
// blocked-thread snapshot say which. Wall-clock-slow but advancing
// models keep the beacon climbing and are never flagged.
func (c *Coordinator) Progress() uint64 {
	var p uint64
	for _, s := range c.shards {
		p += uint64(s.k.Beacon())
	}
	return p
}

// PanicSet carries the panic values of every shard that failed in one
// barrier round, joined so no secondary failure is masked. It is the
// value Run re-panics when more than one shard panicked.
type PanicSet []any

// Error formats all joined panics; PanicSet satisfies error so recovered
// values print usefully through %v.
func (p PanicSet) Error() string {
	s := fmt.Sprintf("par: %d shards panicked in one round:", len(p))
	for i, v := range p {
		s += fmt.Sprintf(" [%d] %v;", i, v)
	}
	return s
}

// NewCoordinator returns an empty coordinator.
func NewCoordinator() *Coordinator {
	return &Coordinator{byKernel: make(map[*sim.Kernel]*shard)}
}

// AddShard registers a kernel as a shard. Every kernel referenced by a
// bridge must be added before AddBridge.
func (c *Coordinator) AddShard(k *sim.Kernel) {
	if _, dup := c.byKernel[k]; dup {
		panic(fmt.Sprintf("par: shard %q added twice", k.Name()))
	}
	s := &shard{k: k, idx: len(c.shards)}
	c.byKernel[k] = s
	c.shards = append(c.shards, s)
}

// AddBridge registers a cross-shard channel. Both endpoint kernels must
// already be shards; they may be the same shard (a degenerate bridge,
// still flushed at barriers — how an N-shard model collapses to 1 shard).
func (c *Coordinator) AddBridge(b Bridge) {
	r, ok := c.byKernel[b.ReaderKernel()]
	if !ok {
		panic(fmt.Sprintf("par: bridge %q: reader kernel %q is not a shard", b.Name(), b.ReaderKernel().Name()))
	}
	w, ok := c.byKernel[b.WriterKernel()]
	if !ok {
		panic(fmt.Sprintf("par: bridge %q: writer kernel %q is not a shard", b.Name(), b.WriterKernel().Name()))
	}
	r.inbound = append(r.inbound, b)
	w.outbound = append(w.outbound, b)
	c.bridges = append(c.bridges, b)
}

// Kernels returns the shard kernels in registration order.
func (c *Coordinator) Kernels() []*sim.Kernel {
	out := make([]*sim.Kernel, len(c.shards))
	for i, s := range c.shards {
		out[i] = s.k
	}
	return out
}

// Stats returns a copy of the coordinator counters.
func (c *Coordinator) Stats() Stats { return c.stats }

// KernelStats sums the activity counters of every shard.
func (c *Coordinator) KernelStats() sim.Stats {
	var t sim.Stats
	for _, s := range c.shards {
		st := s.k.Stats()
		t.ContextSwitches += st.ContextSwitches
		t.MethodActivations += st.MethodActivations
		t.DeltaCycles += st.DeltaCycles
		t.TimedSteps += st.TimedSteps
		t.Notifications += st.Notifications
	}
	return t
}

// Now returns the conservative global date: the minimum of the shard
// clocks (every event before it has been simulated).
func (c *Coordinator) Now() sim.Time {
	if len(c.shards) == 0 {
		return 0
	}
	min := c.shards[0].k.Now()
	for _, s := range c.shards[1:] {
		if n := s.k.Now(); n < min {
			min = n
		}
	}
	return min
}

// Run executes barrier rounds until global quiescence, or — with
// limit >= 0 — until no shard has activity dated at or before limit.
// Like Kernel.Run it may be called again to resume with a larger limit.
func (c *Coordinator) Run(limit sim.Time) {
	if c.running {
		panic("par: Run called re-entrantly")
	}
	c.running = true
	defer func() { c.running = false }()
	if len(c.shards) > 1 {
		// One persistent worker goroutine per shard for the whole run:
		// barrier rounds are frequent (one per exhausted lookahead), so
		// spawning goroutines per round would tax exactly the path the
		// parallel speedup depends on.
		c.startWorkers()
		defer c.stopWorkers()
	}

	for {
		// Cooperative abort: an Interrupt latched during the previous
		// round (every shard kernel is latched too, so in-flight Steps
		// returned at their next safe point) ends the run at the
		// barrier, where all state is consistent and diagnosable.
		if c.intr.Load() {
			return
		}
		// Barrier: deliver everything staged during the previous round,
		// then bound each shard by its inbound frontiers. Flushing first
		// makes Frontier's bound cover all undelivered traffic.
		c.flushBridges(false)
		work := 0
		for _, s := range c.shards {
			// The inbound bound is STRICT: a shard may only process
			// events dated before its bridges' frontiers. An inclusive
			// bound would let a non-blocking (method/Try) reader poll at
			// date D before a word inserted exactly at D has crossed the
			// barrier — a visibility miss a single-kernel Smart FIFO
			// cannot have. (Blocking access is indifferent: a parked
			// reader advances to the datum's exact date either way.)
			h := sim.TimeMax
			for _, b := range s.inbound {
				f := b.Frontier()
				// A bridge whose Flush was withheld by the chaos hook
				// may still hold staged data older than its frontier;
				// bound the reader by the staged dates so the deferral
				// can never cause a visibility miss.
				if c.deferred[b] {
					if at, ok := b.(StagedBridge).StagedFrontier(); ok && at < f {
						f = at
					}
				}
				if f < h {
					h = f
				}
			}
			// The outbound bound is inclusive: never run the kernel
			// clock PAST the date a credit-blocked writer on this shard
			// must resume at, or its restored (decoupled) local date
			// would clamp to the clock.
			for _, b := range s.outbound {
				if f := b.WriteFrontier(); f != sim.TimeMax && f+1 < h {
					h = f + 1
				}
			}
			if limit >= 0 && limit+1 > 0 && limit+1 < h {
				h = limit + 1
			}
			s.horizon = h
			s.run = false
			if at, ok := s.k.NextEventAt(); ok && at < h {
				s.run = true
				work++
			}
		}
		if work == 0 {
			// A deferred flush may be hiding the only deliverable work:
			// force everything across and re-derive the horizons before
			// concluding anything about quiescence or frozen frontiers.
			if len(c.deferred) > 0 {
				c.flushBridges(true)
				continue
			}
			// No shard can act inside its horizon. Either the model is
			// globally quiescent, or every frontier is frozen because
			// the processes that would advance them are themselves
			// waiting (a conservative stall, not a model deadlock).
			// The globally earliest pending event is always safe to
			// process: any shard can only act at its kernel date or
			// later, so nothing can ever be delivered with an earlier
			// insertion date.
			tmin := sim.TimeMax
			for _, s := range c.shards {
				if at, ok := s.k.NextEventAt(); ok && at < tmin {
					tmin = at
				}
			}
			if tmin == sim.TimeMax || (limit >= 0 && tmin > limit) {
				return
			}
			for _, s := range c.shards {
				if at, ok := s.k.NextEventAt(); ok && at <= tmin {
					s.horizon = tmin + 1 // exclusive, like the frontier bound
					s.run = true
					work++
				}
			}
			c.stats.Fallbacks++
		}
		c.stats.Rounds++
		c.stats.Steps += uint64(work)
		c.runRound()
	}
}

// flushBridges flushes every bridge, honouring the DeferFlush injection
// hook unless force is set. Only bridges that can report a staged
// frontier (StagedBridge) are ever deferred: the horizon computation
// needs that bound to keep the delay invisible to dates.
func (c *Coordinator) flushBridges(force bool) {
	for _, b := range c.bridges {
		if !force && c.hooks != nil && c.hooks.DeferFlush != nil {
			if _, ok := b.(StagedBridge); ok && c.hooks.DeferFlush(b, c.stats.Rounds) {
				if c.deferred == nil {
					c.deferred = make(map[Bridge]bool)
				}
				c.deferred[b] = true
				continue
			}
		}
		delete(c.deferred, b)
		if b.Flush() {
			c.stats.Flushes++
		}
	}
}

// startWorkers spawns one long-lived goroutine per shard; each waits for
// a horizon on its channel, steps its kernel, and signals the round
// WaitGroup. The channel send / WaitGroup barrier provide the
// happens-before edges between a shard's round and the next flush;
// shards share no mutable state while running.
func (c *Coordinator) startWorkers() {
	for _, s := range c.shards {
		s.work = make(chan sim.Time)
		go func(s *shard, work <-chan sim.Time) {
			for h := range work {
				c.stepShard(s, h)
			}
		}(s, s.work)
	}
}

func (c *Coordinator) stopWorkers() {
	for _, s := range c.shards {
		close(s.work)
		s.work = nil
	}
}

// stepShard runs one shard's round, capturing a model panic so the
// barrier still completes; Run re-panics on the caller's goroutine —
// every captured value, joined, so a second shard's failure in the same
// round is never masked by the first.
func (c *Coordinator) stepShard(s *shard, h sim.Time) {
	defer c.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			c.panicMu.Lock()
			c.panicVals = append(c.panicVals, r)
			c.panicMu.Unlock()
		}
	}()
	// Reading stats.Rounds here is race-free: Run wrote it before the
	// channel send that started this round, and writes it again only
	// after the round's wg.Wait.
	if c.hooks != nil && c.hooks.BeforeStep != nil {
		c.hooks.BeforeStep(s.idx, s.k, c.stats.Rounds)
	}
	s.k.Step(stepLimit(h))
}

// runRound advances every selected shard to its horizon, concurrently.
func (c *Coordinator) runRound() {
	var single *shard
	n := 0
	for _, s := range c.shards {
		if s.run {
			single = s
			n++
		}
	}
	if n == 1 {
		// Only one shard has work: step it inline, skipping the barrier.
		// The injection hook still fires — a chaos-induced panic here
		// propagates directly, like any single-kernel model panic.
		if c.hooks != nil && c.hooks.BeforeStep != nil {
			c.hooks.BeforeStep(single.idx, single.k, c.stats.Rounds)
		}
		single.k.Step(stepLimit(single.horizon))
		return
	}
	for _, s := range c.shards {
		if !s.run {
			continue
		}
		c.wg.Add(1)
		s.work <- s.horizon
	}
	c.wg.Wait()
	if len(c.panicVals) > 0 {
		vals := c.panicVals
		c.panicVals = nil
		if len(vals) == 1 {
			panic(vals[0])
		}
		panic(PanicSet(vals))
	}
}

// stepLimit maps an exclusive horizon onto Kernel.Step's inclusive limit
// (and the unbounded horizon onto the run-forever sentinel).
func stepLimit(h sim.Time) sim.Time {
	if h == sim.TimeMax {
		return sim.RunForever
	}
	return h - 1
}

// Blocked reports, per shard, the thread processes that are neither
// terminated nor runnable after Run returned. Shards whose names collide
// are keyed by registration index. A non-empty result after a Run with
// limit == sim.RunForever means the model deadlocked (or parks processes
// by design, like idle accelerators waiting for their next job).
func (c *Coordinator) Blocked() map[string][]string {
	out := make(map[string][]string)
	for i, s := range c.shards {
		if b := s.k.Blocked(); len(b) > 0 {
			key := s.k.Name()
			if _, dup := out[key]; dup {
				key = fmt.Sprintf("%s#%d", key, i)
			}
			out[key] = b
		}
	}
	return out
}

// Shutdown force-terminates every shard's live thread processes. Call it
// when discarding the coordinator, exactly like Kernel.Shutdown.
func (c *Coordinator) Shutdown() {
	for _, s := range c.shards {
		s.k.Shutdown()
	}
}
