// Package par executes a partitioned simulation: N sim.Kernel shards, each
// advanced on its own long-lived worker goroutine, scheduled conservatively
// over the Smart-FIFO dates carried by cross-shard bridges
// (core.ShardedFIFO).
//
// # Protocol
//
// Progress is frontier-driven and asynchronous: each shard's worker loops
// through
//
//  1. exchange — for every inbound bridge, publish freed-cell credits and
//     import delivered data; for every outbound bridge, stage written data
//     and publish the frontier bound (AsyncBridge's locked, directional
//     halves of Flush). Peers whose inputs changed are poked awake;
//  2. horizon — the minimum over the inbound bridges' effective frontiers
//     — a lower bound on the insertion dates of anything that can still
//     arrive, taken STRICTLY (the shard stops short of the bound, so a
//     non-blocking reader polling at date D has every word inserted at or
//     before D already delivered) — and the outbound bridges'
//     WriteFrontiers — the shard's kernel clock must never pass the date
//     a credit-blocked writer resumes at, or the writer's restored
//     decoupled local date would clamp to the clock. A shard with no
//     bridges is unbounded;
//  3. step — if the shard holds an event inside its horizon, run the
//     kernel up to it (Kernel.Step) and loop; otherwise park until a peer
//     pokes.
//
// A shard therefore advances the moment its own inbound frontiers allow —
// no all-shard rendezvous, no global round as the unit of progress. When
// every live worker is parked, the Run goroutine takes the all-parked
// rendezvous: a global safe point where it force-flushes every bridge
// (delivering anything withheld), recomputes horizons with full knowledge,
// and either hands the runnable shards one-shot horizon grants, applies
// the global-minimum fallback (see Stats.Fallbacks) when every frontier is
// frozen, or concludes global quiescence: no shard has any pending event
// inside the run limit. That covers both normal termination and model
// deadlock; Blocked distinguishes them.
//
// The scheme is null-message-free: the lookahead a CMB-style scheduler
// would ship in null messages is already present in the Smart-FIFO access
// discipline — write dates on a side never decrease, so the last insertion
// date (plus the writer's local clock, which a temporally decoupled writer
// pushes far ahead of its kernel's date) bounds all future traffic on the
// bridge. A shard runs ahead of the global date exactly as far as the
// paper's cell timestamps prove safe, and blocking bridge accesses
// reproduce single-kernel Smart-FIFO dates bit for bit — under either
// scheduler, since every published bound is conservative no matter when
// it is observed.
//
// The legacy all-shard barrier scheduler is retained (SetBarrier, and
// automatically when a bridge does not implement AsyncBridge): it flushes
// every bridge, bounds every shard, and steps the runnable ones in
// lockstep rounds. Single-shard coordinators always take it — there is
// nothing to overlap.
package par

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Bridge is a cross-shard channel. core.ShardedFIFO implements it; any
// channel that can report a conservative frontier and deliver at barriers
// can participate.
type Bridge interface {
	// Name identifies the bridge in diagnostics.
	Name() string
	// WriterKernel is the shard that produces into the bridge.
	WriterKernel() *sim.Kernel
	// ReaderKernel is the shard that consumes from the bridge.
	ReaderKernel() *sim.Kernel
	// Frontier returns a lower bound on the dates of all future
	// deliveries. Called only at global safe points (barriers and
	// rendezvous), after Flush. sim.TimeMax means the bridge can never
	// deliver again.
	Frontier() sim.Time
	// WriteFrontier returns a lower bound on the resume date of any
	// writer-side access that blocks on exhausted credits. The writer's
	// shard must not advance its kernel clock past it: a parked writer
	// restores its decoupled local date on wake, and the kernel cannot
	// represent a local date in the global past — an overshooting
	// co-located process would clamp the restore and corrupt the dates.
	// Called only at global safe points, after Flush. sim.TimeMax means
	// the writer can never block again.
	WriteFrontier() sim.Time
	// Flush moves staged data across the boundary and reports whether
	// anything moved. Called only at global safe points.
	Flush() bool
}

// Stats counts coordinator activity. The counters are scheduler-neutral:
// they are meaningful under both the async frontier-driven scheduler and
// the legacy barrier scheduler, but their values depend on goroutine
// interleaving under the async one — report them as performance
// telemetry, never as part of a deterministic model output.
type Stats struct {
	// Advances counts kernel Step dispatches that found work, summed
	// over the shards — the scheduler-neutral unit of progress (a
	// barrier round advances every selected shard once; the async
	// scheduler advances shards independently).
	Advances uint64
	// Rounds counts global rendezvous that dispatched work: barrier
	// rounds under the barrier scheduler, all-parked rendezvous under
	// the async one (where most progress happens between rendezvous,
	// so Rounds is far below Advances).
	Rounds uint64
	// Flushes counts bridge exchanges that moved data or credits across
	// a shard boundary, or raised a published bound.
	Flushes uint64
	// Fallbacks counts rendezvous resolved by the global-minimum rule:
	// no shard had work inside its frontier-derived horizon, so the
	// shards holding the globally earliest event were advanced to
	// exactly that date. This happens when every frontier is frozen —
	// typically the drain phase of a model whose producers park forever
	// instead of terminating (idle accelerators waiting for a next job).
	Fallbacks uint64
}

// counters is the internal, atomically updated form of Stats: the async
// scheduler's workers bump them concurrently.
type counters struct {
	advances  atomic.Uint64
	rounds    atomic.Uint64
	flushes   atomic.Uint64
	fallbacks atomic.Uint64
}

// shard is one kernel plus its coordination state.
type shard struct {
	k        *sim.Kernel
	idx      int
	inbound  []Bridge
	outbound []Bridge
	// aIn/aOut are the async views of inbound/outbound (nil entries when
	// a bridge lacks them — the coordinator then stays on the barrier
	// scheduler); inPeer/outPeer are the peer shard indices, for pokes.
	aIn     []AsyncBridge
	aOut    []AsyncBridge
	inPeer  []int
	outPeer []int
	horizon sim.Time
	run     bool          // selected to run this round/rendezvous
	advs    uint64        // per-shard advance ordinal (worker-local)
	work    chan sim.Time // persistent worker's horizon feed (barrier multi-shard runs)
}

// Coordinator drives a set of shards to global quiescence.
type Coordinator struct {
	shards   []*shard
	byKernel map[*sim.Kernel]*shard
	bridges  []Bridge
	ctr      counters
	running  bool

	// asyncOK is true while every registered bridge supports the
	// frontier-driven scheduler; barrierOnly forces the legacy barrier
	// scheduler regardless (SetBarrier).
	asyncOK     bool
	barrierOnly bool

	// Round barrier state, shared with the shard workers (barrier mode).
	wg        sync.WaitGroup
	panicMu   sync.Mutex
	panicVals []any

	// intr is the coordinator-level interrupt latch (see Interrupt).
	intr atomic.Bool

	// hooks is the fault-injection surface (nil in production);
	// deferred marks bridges whose Flush the hook withheld this round
	// (barrier mode only; the async scheduler withholds the writer-side
	// exchange instead).
	hooks    *Hooks
	deferred map[Bridge]bool

	// m is the optional shared metrics sink, captured at construction
	// (metrics.go); tl is the scheduler timeline recording the next Run
	// (timeline.go) — attached explicitly (SetTimeline, tlOwned) or
	// auto-created per Run while SetTraceCapture is armed.
	m       *SchedMetrics
	tl      *Timeline
	tlOwned bool
}

// Hooks is the coordinator's fault-injection surface, used by the chaos
// harness (internal/chaos) to perturb scheduling without touching the
// protocol. All hooks are optional; a nil *Hooks disables injection.
type Hooks struct {
	// BeforeStep runs on the shard's worker goroutine immediately before
	// Kernel.Step. It may sleep (scheduling jitter) or panic (an induced
	// shard failure); it must not touch kernel state. round is the
	// barrier round under the barrier scheduler and the shard's own
	// advance ordinal (1-based) under the async one — either way, "the
	// shard's first step at or after round R" is well-defined. Hooks
	// must be safe for concurrent calls from different shard workers.
	BeforeStep func(shard int, k *sim.Kernel, round uint64)
	// DeferFlush, when it returns true, withholds the bridge's delivery
	// once: under the barrier scheduler the whole Flush is skipped and
	// the coordinator bounds the reader with the bridge's staged
	// frontier instead; under the async scheduler the writer shard's
	// half of the exchange is withheld, leaving the previously published
	// (still valid) bounds in place. Either way the delay never changes
	// dates, and withheld bridges are force-flushed at the next global
	// safe point before the coordinator concludes anything about
	// quiescence. Hooks must be safe for concurrent calls.
	DeferFlush func(b Bridge, round uint64) bool
}

// SetHooks installs (or, with nil, removes) the fault-injection hooks.
// Must not be called while Run is in progress.
func (c *Coordinator) SetHooks(h *Hooks) {
	if c.running {
		panic("par: SetHooks called while running")
	}
	c.hooks = h
}

// StagedBridge is the optional bridge extension the deferred-flush
// injection relies on: a lower bound on the insertion dates of data
// staged but not yet flushed. core.ShardedFIFO implements it. A bridge
// without it is never deferred.
type StagedBridge interface {
	// StagedFrontier returns the minimum insertion date staged in the
	// writer-side outbox, and ok=false when nothing is staged.
	StagedFrontier() (at sim.Time, ok bool)
}

// Interrupt asks the coordinator and every shard kernel to stop at the
// next safe point (the current barrier round completes first). Safe from
// any goroutine. The latch persists until ClearInterrupt.
func (c *Coordinator) Interrupt() {
	c.intr.Store(true)
	for _, s := range c.shards {
		s.k.Interrupt()
	}
}

// Interrupted reports whether an interrupt is latched.
func (c *Coordinator) Interrupted() bool { return c.intr.Load() }

// ClearInterrupt unlatches the coordinator and every shard kernel so the
// run can be resumed. Call only while Run is not in progress.
func (c *Coordinator) ClearInterrupt() {
	c.intr.Store(false)
	for _, s := range c.shards {
		s.k.ClearInterrupt()
	}
}

// Progress returns the simulated-time beacon stall watchdogs sample:
// the sum of every shard's published simulated time (sim.Kernel.Beacon).
// Two equal samples a stall window apart mean no shard advanced
// simulated time at all in between — the run is deadlocked across a
// bridge, livelocked in delta cycles at one date, or stuck in a
// non-cooperative call; the stall diagnostic's per-shard Beat and
// blocked-thread snapshot say which. Wall-clock-slow but advancing
// models keep the beacon climbing and are never flagged.
func (c *Coordinator) Progress() uint64 {
	var p uint64
	for _, s := range c.shards {
		p += uint64(s.k.Beacon())
	}
	return p
}

// PanicSet carries the panic values of every shard that failed in one
// barrier round, joined so no secondary failure is masked. It is the
// value Run re-panics when more than one shard panicked.
type PanicSet []any

// Error formats all joined panics; PanicSet satisfies error so recovered
// values print usefully through %v.
func (p PanicSet) Error() string {
	s := fmt.Sprintf("par: %d shards panicked in one round:", len(p))
	for i, v := range p {
		s += fmt.Sprintf(" [%d] %v;", i, v)
	}
	return s
}

// NewCoordinator returns an empty coordinator.
func NewCoordinator() *Coordinator {
	return &Coordinator{
		byKernel: make(map[*sim.Kernel]*shard),
		asyncOK:  true,
		m:        defaultSchedMetrics.Load(),
	}
}

// SetBarrier forces (or, with false, releases) the legacy all-shard
// barrier scheduler even when every bridge supports the asynchronous
// frontier-driven one — for scheduler comparisons (cmd/parlat) and
// debugging. Must not be called while Run is in progress. Dates are
// byte-identical under both schedulers.
func (c *Coordinator) SetBarrier(on bool) {
	if c.running {
		panic("par: SetBarrier called while running")
	}
	c.barrierOnly = on
}

// AddShard registers a kernel as a shard. Every kernel referenced by a
// bridge must be added before AddBridge.
func (c *Coordinator) AddShard(k *sim.Kernel) {
	if _, dup := c.byKernel[k]; dup {
		panic(fmt.Sprintf("par: shard %q added twice", k.Name()))
	}
	s := &shard{k: k, idx: len(c.shards)}
	c.byKernel[k] = s
	c.shards = append(c.shards, s)
}

// AddBridge registers a cross-shard channel. Both endpoint kernels must
// already be shards; they may be the same shard (a degenerate bridge,
// still flushed at barriers — how an N-shard model collapses to 1 shard).
func (c *Coordinator) AddBridge(b Bridge) {
	r, ok := c.byKernel[b.ReaderKernel()]
	if !ok {
		panic(fmt.Sprintf("par: bridge %q: reader kernel %q is not a shard", b.Name(), b.ReaderKernel().Name()))
	}
	w, ok := c.byKernel[b.WriterKernel()]
	if !ok {
		panic(fmt.Sprintf("par: bridge %q: writer kernel %q is not a shard", b.Name(), b.WriterKernel().Name()))
	}
	r.inbound = append(r.inbound, b)
	w.outbound = append(w.outbound, b)
	ab, isAsync := b.(AsyncBridge)
	if !isAsync {
		c.asyncOK = false
	}
	r.aIn = append(r.aIn, ab)
	r.inPeer = append(r.inPeer, w.idx)
	w.aOut = append(w.aOut, ab)
	w.outPeer = append(w.outPeer, r.idx)
	c.bridges = append(c.bridges, b)
}

// Kernels returns the shard kernels in registration order.
func (c *Coordinator) Kernels() []*sim.Kernel {
	out := make([]*sim.Kernel, len(c.shards))
	for i, s := range c.shards {
		out[i] = s.k
	}
	return out
}

// Stats returns a snapshot of the coordinator counters. Safe to call
// concurrently with a run, though the counters move while it does.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Advances:  c.ctr.advances.Load(),
		Rounds:    c.ctr.rounds.Load(),
		Flushes:   c.ctr.flushes.Load(),
		Fallbacks: c.ctr.fallbacks.Load(),
	}
}

// KernelStats sums the activity counters of every shard.
func (c *Coordinator) KernelStats() sim.Stats {
	var t sim.Stats
	for _, s := range c.shards {
		st := s.k.Stats()
		t.ContextSwitches += st.ContextSwitches
		t.MethodActivations += st.MethodActivations
		t.DeltaCycles += st.DeltaCycles
		t.TimedSteps += st.TimedSteps
		t.Notifications += st.Notifications
	}
	return t
}

// Now returns the conservative global date: the minimum of the shard
// clocks (every event before it has been simulated).
func (c *Coordinator) Now() sim.Time {
	if len(c.shards) == 0 {
		return 0
	}
	min := c.shards[0].k.Now()
	for _, s := range c.shards[1:] {
		if n := s.k.Now(); n < min {
			min = n
		}
	}
	return min
}

// Run executes the shards until global quiescence, or — with
// limit >= 0 — until no shard has activity dated at or before limit.
// Like Kernel.Run it may be called again to resume with a larger limit.
// Multi-shard runs whose bridges all support AsyncBridge take the
// frontier-driven scheduler (see the package doc) unless SetBarrier
// forced the legacy barrier one; dates are identical either way.
func (c *Coordinator) Run(limit sim.Time) {
	if c.running {
		panic("par: Run called re-entrantly")
	}
	c.running = true
	defer func() { c.running = false }()
	// Arm the scheduler timeline: an explicitly attached one keeps
	// accumulating; otherwise a fresh per-Run capture while
	// SetTraceCapture is on. Either way the finished trace is published
	// through LastTrace when the run returns.
	if !c.tlOwned && len(c.shards) > 1 {
		if n := traceCapacity.Load(); n > 0 {
			c.tl = c.newTimeline(int(n))
		} else {
			c.tl = nil
		}
	}
	if c.tl != nil {
		defer func() {
			lastTrace.Store(c.tl)
			if !c.tlOwned {
				c.tl = nil
			}
		}()
	}
	if len(c.shards) > 1 && c.asyncOK && !c.barrierOnly {
		c.runAsync(limit)
		return
	}
	if len(c.shards) > 1 {
		// One persistent worker goroutine per shard for the whole run:
		// barrier rounds are frequent (one per exhausted lookahead), so
		// spawning goroutines per round would tax exactly the path the
		// parallel speedup depends on.
		c.startWorkers()
		defer c.stopWorkers()
	}

	for {
		// Cooperative abort: an Interrupt latched during the previous
		// round (every shard kernel is latched too, so in-flight Steps
		// returned at their next safe point) ends the run at the
		// barrier, where all state is consistent and diagnosable.
		if c.intr.Load() {
			return
		}
		// Barrier: deliver everything staged during the previous round,
		// then bound each shard by its inbound frontiers. Flushing first
		// makes Frontier's bound cover all undelivered traffic.
		c.flushBridges(false)
		work := c.selectByFrontiers(limit)
		if work == 0 {
			// A deferred flush may be hiding the only deliverable work:
			// force everything across and re-derive the horizons before
			// concluding anything about quiescence or frozen frontiers.
			if len(c.deferred) > 0 {
				c.flushBridges(true)
				continue
			}
			if work = c.fallback(limit); work == 0 {
				return
			}
			c.ctr.fallbacks.Add(1)
			if c.m != nil {
				c.m.Fallbacks.Inc()
			}
			if c.tl != nil {
				c.tl.mark(c.tl.coordRow(), tlFallback, 0)
			}
		}
		c.ctr.rounds.Add(1)
		c.ctr.advances.Add(uint64(work))
		if c.m != nil {
			c.m.Rendezvous.Inc()
			c.m.Advances.Add(uint64(work))
		}
		if tl := c.tl; tl != nil {
			t0 := time.Now()
			c.runRound()
			tl.span(tl.coordRow(), tlRound, t0, time.Now(), int64(work))
			continue
		}
		c.runRound()
	}
}

// selectByFrontiers recomputes every shard's horizon from its bridges'
// published bounds and marks the shards holding an event inside it,
// returning how many there are. Called only at global safe points, after
// the bridges were flushed (or, for deferred ones, with their staged
// frontier folded in).
func (c *Coordinator) selectByFrontiers(limit sim.Time) int {
	work := 0
	for _, s := range c.shards {
		// The inbound bound is STRICT: a shard may only process
		// events dated before its bridges' frontiers. An inclusive
		// bound would let a non-blocking (method/Try) reader poll at
		// date D before a word inserted exactly at D has crossed the
		// barrier — a visibility miss a single-kernel Smart FIFO
		// cannot have. (Blocking access is indifferent: a parked
		// reader advances to the datum's exact date either way.)
		h := sim.TimeMax
		for _, b := range s.inbound {
			f := b.Frontier()
			// A bridge whose Flush was withheld by the chaos hook
			// may still hold staged data older than its frontier;
			// bound the reader by the staged dates so the deferral
			// can never cause a visibility miss.
			if c.deferred[b] {
				if at, ok := b.(StagedBridge).StagedFrontier(); ok && at < f {
					f = at
				}
			}
			if f < h {
				h = f
			}
		}
		// The outbound bound is inclusive: never run the kernel
		// clock PAST the date a credit-blocked writer on this shard
		// must resume at, or its restored (decoupled) local date
		// would clamp to the clock.
		for _, b := range s.outbound {
			if f := b.WriteFrontier(); f != sim.TimeMax && f+1 < h {
				h = f + 1
			}
		}
		if limit >= 0 && limit+1 > 0 && limit+1 < h {
			h = limit + 1
		}
		s.horizon = h
		s.run = false
		if at, ok := s.k.NextEventAt(); ok && at < h {
			s.run = true
			work++
		}
	}
	return work
}

// fallback applies the global-minimum rule after selectByFrontiers found
// no runnable shard: either the model is globally quiescent (returns 0 —
// nothing pending inside the limit), or every frontier is frozen because
// the processes that would advance them are themselves waiting (a
// conservative stall, not a model deadlock). The globally earliest
// pending event is always safe to process: any shard can only act at its
// kernel date or later, so nothing can ever be delivered with an earlier
// insertion date.
func (c *Coordinator) fallback(limit sim.Time) int {
	tmin := sim.TimeMax
	for _, s := range c.shards {
		if at, ok := s.k.NextEventAt(); ok && at < tmin {
			tmin = at
		}
	}
	if tmin == sim.TimeMax || (limit >= 0 && tmin > limit) {
		return 0
	}
	work := 0
	for _, s := range c.shards {
		if at, ok := s.k.NextEventAt(); ok && at <= tmin {
			s.horizon = tmin + 1 // exclusive, like the frontier bound
			s.run = true
			work++
		}
	}
	return work
}

// flushBridges flushes every bridge, honouring the DeferFlush injection
// hook unless force is set. Only bridges that can report a staged
// frontier (StagedBridge) are ever deferred: the horizon computation
// needs that bound to keep the delay invisible to dates.
func (c *Coordinator) flushBridges(force bool) {
	for _, b := range c.bridges {
		if !force && c.hooks != nil && c.hooks.DeferFlush != nil {
			if _, ok := b.(StagedBridge); ok && c.hooks.DeferFlush(b, c.ctr.rounds.Load()) {
				if c.deferred == nil {
					c.deferred = make(map[Bridge]bool)
				}
				c.deferred[b] = true
				continue
			}
		}
		delete(c.deferred, b)
		if b.Flush() {
			c.ctr.flushes.Add(1)
		}
	}
}

// startWorkers spawns one long-lived goroutine per shard; each waits for
// a horizon on its channel, steps its kernel, and signals the round
// WaitGroup. The channel send / WaitGroup barrier provide the
// happens-before edges between a shard's round and the next flush;
// shards share no mutable state while running.
func (c *Coordinator) startWorkers() {
	for _, s := range c.shards {
		s.work = make(chan sim.Time)
		go func(s *shard, work <-chan sim.Time) {
			for h := range work {
				c.stepShard(s, h)
			}
		}(s, s.work)
	}
}

func (c *Coordinator) stopWorkers() {
	for _, s := range c.shards {
		close(s.work)
		s.work = nil
	}
}

// stepShard runs one shard's round, capturing a model panic so the
// barrier still completes; Run re-panics on the caller's goroutine —
// every captured value, joined, so a second shard's failure in the same
// round is never masked by the first.
func (c *Coordinator) stepShard(s *shard, h sim.Time) {
	defer c.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			c.panicMu.Lock()
			c.panicVals = append(c.panicVals, r)
			c.panicMu.Unlock()
		}
	}()
	if c.hooks != nil && c.hooks.BeforeStep != nil {
		c.hooks.BeforeStep(s.idx, s.k, c.ctr.rounds.Load())
	}
	if tl := c.tl; tl != nil {
		t0 := time.Now()
		s.k.Step(stepLimit(h))
		tl.span(s.idx, tlStep, t0, time.Now(), int64(c.ctr.rounds.Load()))
		return
	}
	s.k.Step(stepLimit(h))
}

// runRound advances every selected shard to its horizon, concurrently.
func (c *Coordinator) runRound() {
	var single *shard
	n := 0
	for _, s := range c.shards {
		if s.run {
			single = s
			n++
		}
	}
	if n == 1 {
		// Only one shard has work: step it inline, skipping the barrier.
		// The injection hook still fires — a chaos-induced panic here
		// propagates directly, like any single-kernel model panic.
		if c.hooks != nil && c.hooks.BeforeStep != nil {
			c.hooks.BeforeStep(single.idx, single.k, c.ctr.rounds.Load())
		}
		single.k.Step(stepLimit(single.horizon))
		return
	}
	for _, s := range c.shards {
		if !s.run {
			continue
		}
		c.wg.Add(1)
		s.work <- s.horizon
	}
	c.wg.Wait()
	if len(c.panicVals) > 0 {
		vals := c.panicVals
		c.panicVals = nil
		if len(vals) == 1 {
			panic(vals[0])
		}
		panic(PanicSet(vals))
	}
}

// stepLimit maps an exclusive horizon onto Kernel.Step's inclusive limit
// (and the unbounded horizon onto the run-forever sentinel).
func stepLimit(h sim.Time) sim.Time {
	if h == sim.TimeMax {
		return sim.RunForever
	}
	return h - 1
}

// Blocked reports, per shard, the thread processes that are neither
// terminated nor runnable after Run returned. Shards whose names collide
// are keyed by registration index. A non-empty result after a Run with
// limit == sim.RunForever means the model deadlocked (or parks processes
// by design, like idle accelerators waiting for their next job).
func (c *Coordinator) Blocked() map[string][]string {
	out := make(map[string][]string)
	for i, s := range c.shards {
		if b := s.k.Blocked(); len(b) > 0 {
			key := s.k.Name()
			if _, dup := out[key]; dup {
				key = fmt.Sprintf("%s#%d", key, i)
			}
			out[key] = b
		}
	}
	return out
}

// Shutdown force-terminates every shard's live thread processes. Call it
// when discarding the coordinator, exactly like Kernel.Shutdown.
func (c *Coordinator) Shutdown() {
	for _, s := range c.shards {
		s.k.Shutdown()
	}
}
