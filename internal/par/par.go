// Package par executes a partitioned simulation: N sim.Kernel shards, each
// advanced on its own OS thread, coordinated by a conservative barrier
// scheduler over the Smart-FIFO dates carried by cross-shard bridges
// (core.ShardedFIFO).
//
// # Protocol
//
// The coordinator runs barrier rounds. Each round:
//
//  1. every bridge is flushed: data and freeing dates staged during the
//     previous round cross the shard boundary and wake blocked endpoint
//     processes;
//  2. every shard's horizon is computed: the minimum over the Frontiers
//     of its inbound bridges — a lower bound on the insertion dates of
//     anything that can still arrive, taken STRICTLY (the shard stops
//     short of the bound, so a non-blocking reader polling at date D has
//     every word inserted at or before D already delivered) — and the
//     WriteFrontiers of its outbound bridges — the shard's kernel clock
//     must never pass the date a credit-blocked writer resumes at, or
//     the writer's restored decoupled local date would clamp to the
//     clock. A shard with no bridges is unbounded;
//  3. every shard with pending activity dated inside its horizon runs
//     concurrently (Kernel.Step) up to it.
//
// The scheme is null-message-free: the lookahead a CMB-style scheduler
// would ship in null messages is already present in the Smart-FIFO access
// discipline — write dates on a side never decrease, so the last insertion
// date (plus the writer's local clock, which a temporally decoupled writer
// pushes far ahead of its kernel's date) bounds all future traffic on the
// bridge. A shard therefore runs ahead of the global date exactly as far
// as the paper's cell timestamps prove safe, and blocking bridge accesses
// reproduce single-kernel Smart-FIFO dates bit for bit.
//
// When no shard has work inside its horizon but events remain, the
// coordinator falls back to the globally earliest event date (see
// Stats.Fallbacks) — the standard conservative floor, needed only when
// every frontier is frozen. The coordinator stops at global quiescence:
// after flushing every bridge, no shard has any pending event inside the
// run limit. That covers both normal termination and model deadlock;
// Blocked distinguishes them.
package par

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// Bridge is a cross-shard channel. core.ShardedFIFO implements it; any
// channel that can report a conservative frontier and deliver at barriers
// can participate.
type Bridge interface {
	// Name identifies the bridge in diagnostics.
	Name() string
	// WriterKernel is the shard that produces into the bridge.
	WriterKernel() *sim.Kernel
	// ReaderKernel is the shard that consumes from the bridge.
	ReaderKernel() *sim.Kernel
	// Frontier returns a lower bound on the dates of all future
	// deliveries. Called only at barriers, after Flush. sim.TimeMax
	// means the bridge can never deliver again.
	Frontier() sim.Time
	// WriteFrontier returns a lower bound on the resume date of any
	// writer-side access that blocks on exhausted credits. The writer's
	// shard must not advance its kernel clock past it: a parked writer
	// restores its decoupled local date on wake, and the kernel cannot
	// represent a local date in the global past — an overshooting
	// co-located process would clamp the restore and corrupt the dates.
	// Called only at barriers, after Flush. sim.TimeMax means the writer
	// can never block again.
	WriteFrontier() sim.Time
	// Flush moves staged data across the boundary and reports whether
	// anything moved. Called only at barriers.
	Flush() bool
}

// Stats counts coordinator activity.
type Stats struct {
	// Rounds is the number of barrier rounds executed.
	Rounds uint64
	// Steps counts Kernel.Step calls that found work.
	Steps uint64
	// Flushes counts bridge flushes that moved data or credits.
	Flushes uint64
	// Fallbacks counts rounds resolved by the global-minimum rule: no
	// shard had work inside its frontier-derived horizon, so the shards
	// holding the globally earliest event were advanced to exactly that
	// date. This happens when every frontier is frozen — typically the
	// drain phase of a model whose producers park forever instead of
	// terminating (idle accelerators waiting for a next job).
	Fallbacks uint64
}

// shard is one kernel plus its coordination state.
type shard struct {
	k        *sim.Kernel
	inbound  []Bridge
	outbound []Bridge
	horizon  sim.Time
	run      bool          // selected to run this round
	work     chan sim.Time // persistent worker's horizon feed (multi-shard runs)
}

// Coordinator drives a set of shards to global quiescence.
type Coordinator struct {
	shards   []*shard
	byKernel map[*sim.Kernel]*shard
	bridges  []Bridge
	stats    Stats
	running  bool

	// Round barrier state, shared with the shard workers.
	wg       sync.WaitGroup
	panicMu  sync.Mutex
	panicVal any
}

// NewCoordinator returns an empty coordinator.
func NewCoordinator() *Coordinator {
	return &Coordinator{byKernel: make(map[*sim.Kernel]*shard)}
}

// AddShard registers a kernel as a shard. Every kernel referenced by a
// bridge must be added before AddBridge.
func (c *Coordinator) AddShard(k *sim.Kernel) {
	if _, dup := c.byKernel[k]; dup {
		panic(fmt.Sprintf("par: shard %q added twice", k.Name()))
	}
	s := &shard{k: k}
	c.byKernel[k] = s
	c.shards = append(c.shards, s)
}

// AddBridge registers a cross-shard channel. Both endpoint kernels must
// already be shards; they may be the same shard (a degenerate bridge,
// still flushed at barriers — how an N-shard model collapses to 1 shard).
func (c *Coordinator) AddBridge(b Bridge) {
	r, ok := c.byKernel[b.ReaderKernel()]
	if !ok {
		panic(fmt.Sprintf("par: bridge %q: reader kernel %q is not a shard", b.Name(), b.ReaderKernel().Name()))
	}
	w, ok := c.byKernel[b.WriterKernel()]
	if !ok {
		panic(fmt.Sprintf("par: bridge %q: writer kernel %q is not a shard", b.Name(), b.WriterKernel().Name()))
	}
	r.inbound = append(r.inbound, b)
	w.outbound = append(w.outbound, b)
	c.bridges = append(c.bridges, b)
}

// Kernels returns the shard kernels in registration order.
func (c *Coordinator) Kernels() []*sim.Kernel {
	out := make([]*sim.Kernel, len(c.shards))
	for i, s := range c.shards {
		out[i] = s.k
	}
	return out
}

// Stats returns a copy of the coordinator counters.
func (c *Coordinator) Stats() Stats { return c.stats }

// KernelStats sums the activity counters of every shard.
func (c *Coordinator) KernelStats() sim.Stats {
	var t sim.Stats
	for _, s := range c.shards {
		st := s.k.Stats()
		t.ContextSwitches += st.ContextSwitches
		t.MethodActivations += st.MethodActivations
		t.DeltaCycles += st.DeltaCycles
		t.TimedSteps += st.TimedSteps
		t.Notifications += st.Notifications
	}
	return t
}

// Now returns the conservative global date: the minimum of the shard
// clocks (every event before it has been simulated).
func (c *Coordinator) Now() sim.Time {
	if len(c.shards) == 0 {
		return 0
	}
	min := c.shards[0].k.Now()
	for _, s := range c.shards[1:] {
		if n := s.k.Now(); n < min {
			min = n
		}
	}
	return min
}

// Run executes barrier rounds until global quiescence, or — with
// limit >= 0 — until no shard has activity dated at or before limit.
// Like Kernel.Run it may be called again to resume with a larger limit.
func (c *Coordinator) Run(limit sim.Time) {
	if c.running {
		panic("par: Run called re-entrantly")
	}
	c.running = true
	defer func() { c.running = false }()
	if len(c.shards) > 1 {
		// One persistent worker goroutine per shard for the whole run:
		// barrier rounds are frequent (one per exhausted lookahead), so
		// spawning goroutines per round would tax exactly the path the
		// parallel speedup depends on.
		c.startWorkers()
		defer c.stopWorkers()
	}

	for {
		// Barrier: deliver everything staged during the previous round,
		// then bound each shard by its inbound frontiers. Flushing first
		// makes Frontier's bound cover all undelivered traffic.
		for _, b := range c.bridges {
			if b.Flush() {
				c.stats.Flushes++
			}
		}
		work := 0
		for _, s := range c.shards {
			// The inbound bound is STRICT: a shard may only process
			// events dated before its bridges' frontiers. An inclusive
			// bound would let a non-blocking (method/Try) reader poll at
			// date D before a word inserted exactly at D has crossed the
			// barrier — a visibility miss a single-kernel Smart FIFO
			// cannot have. (Blocking access is indifferent: a parked
			// reader advances to the datum's exact date either way.)
			h := sim.TimeMax
			for _, b := range s.inbound {
				if f := b.Frontier(); f < h {
					h = f
				}
			}
			// The outbound bound is inclusive: never run the kernel
			// clock PAST the date a credit-blocked writer on this shard
			// must resume at, or its restored (decoupled) local date
			// would clamp to the clock.
			for _, b := range s.outbound {
				if f := b.WriteFrontier(); f != sim.TimeMax && f+1 < h {
					h = f + 1
				}
			}
			if limit >= 0 && limit+1 > 0 && limit+1 < h {
				h = limit + 1
			}
			s.horizon = h
			s.run = false
			if at, ok := s.k.NextEventAt(); ok && at < h {
				s.run = true
				work++
			}
		}
		if work == 0 {
			// No shard can act inside its horizon. Either the model is
			// globally quiescent, or every frontier is frozen because
			// the processes that would advance them are themselves
			// waiting (a conservative stall, not a model deadlock).
			// The globally earliest pending event is always safe to
			// process: any shard can only act at its kernel date or
			// later, so nothing can ever be delivered with an earlier
			// insertion date.
			tmin := sim.TimeMax
			for _, s := range c.shards {
				if at, ok := s.k.NextEventAt(); ok && at < tmin {
					tmin = at
				}
			}
			if tmin == sim.TimeMax || (limit >= 0 && tmin > limit) {
				return
			}
			for _, s := range c.shards {
				if at, ok := s.k.NextEventAt(); ok && at <= tmin {
					s.horizon = tmin + 1 // exclusive, like the frontier bound
					s.run = true
					work++
				}
			}
			c.stats.Fallbacks++
		}
		c.stats.Rounds++
		c.stats.Steps += uint64(work)
		c.runRound()
	}
}

// startWorkers spawns one long-lived goroutine per shard; each waits for
// a horizon on its channel, steps its kernel, and signals the round
// WaitGroup. The channel send / WaitGroup barrier provide the
// happens-before edges between a shard's round and the next flush;
// shards share no mutable state while running.
func (c *Coordinator) startWorkers() {
	for _, s := range c.shards {
		s.work = make(chan sim.Time)
		go func(s *shard, work <-chan sim.Time) {
			for h := range work {
				c.stepShard(s, h)
			}
		}(s, s.work)
	}
}

func (c *Coordinator) stopWorkers() {
	for _, s := range c.shards {
		close(s.work)
		s.work = nil
	}
}

// stepShard runs one shard's round, capturing a model panic so the
// barrier still completes; Run re-panics it on the caller's goroutine.
func (c *Coordinator) stepShard(s *shard, h sim.Time) {
	defer c.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			c.panicMu.Lock()
			if c.panicVal == nil {
				c.panicVal = r
			}
			c.panicMu.Unlock()
		}
	}()
	s.k.Step(stepLimit(h))
}

// runRound advances every selected shard to its horizon, concurrently.
func (c *Coordinator) runRound() {
	var single *shard
	n := 0
	for _, s := range c.shards {
		if s.run {
			single = s
			n++
		}
	}
	if n == 1 {
		// Only one shard has work: step it inline, skipping the barrier.
		single.k.Step(stepLimit(single.horizon))
		return
	}
	for _, s := range c.shards {
		if !s.run {
			continue
		}
		c.wg.Add(1)
		s.work <- s.horizon
	}
	c.wg.Wait()
	if c.panicVal != nil {
		v := c.panicVal
		c.panicVal = nil
		panic(v)
	}
}

// stepLimit maps an exclusive horizon onto Kernel.Step's inclusive limit
// (and the unbounded horizon onto the run-forever sentinel).
func stepLimit(h sim.Time) sim.Time {
	if h == sim.TimeMax {
		return sim.RunForever
	}
	return h - 1
}

// Blocked reports, per shard, the thread processes that are neither
// terminated nor runnable after Run returned. Shards whose names collide
// are keyed by registration index. A non-empty result after a Run with
// limit == sim.RunForever means the model deadlocked (or parks processes
// by design, like idle accelerators waiting for their next job).
func (c *Coordinator) Blocked() map[string][]string {
	out := make(map[string][]string)
	for i, s := range c.shards {
		if b := s.k.Blocked(); len(b) > 0 {
			key := s.k.Name()
			if _, dup := out[key]; dup {
				key = fmt.Sprintf("%s#%d", key, i)
			}
			out[key] = b
		}
	}
	return out
}

// Shutdown force-terminates every shard's live thread processes. Call it
// when discarding the coordinator, exactly like Kernel.Shutdown.
func (c *Coordinator) Shutdown() {
	for _, s := range c.shards {
		s.k.Shutdown()
	}
}
