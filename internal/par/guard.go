package par

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
)

// Guarded execution. Run and Kernel.Run can block forever on a model
// that never quiesces — a runaway process racking up timed steps, or a
// conservative stall where every frontier is frozen. RunGuarded and
// RunKernel wrap them with a supervisor goroutine that watches a
// context (the campaign engine's per-point deadline) and a no-progress
// watchdog, latches the cooperative interrupt when either fires, and —
// once the run has returned at a safe point — assembles a structured
// StallDiagnostic explaining what each shard and bridge was doing.
//
// The guards are strictly additive: with a background context and no
// stall window they take the plain Run path with zero overhead, so the
// default (healthy) configuration pays nothing.

// ErrStalled is the sentinel cause recorded when the no-progress
// watchdog — not the caller's context — ended a run: no kernel advanced
// simulated time across a full wall-clock stall window. That covers
// conservative deadlocks across bridges, delta-cycle livelocks pinned
// at one date, and model goroutines stuck in non-cooperative blocking
// calls; a merely wall-clock-slow model keeps simulated time moving and
// never trips it.
var ErrStalled = errors.New("par: no simulated-time progress within stall window")

// StallError is the structured failure returned by a guarded run that
// was interrupted. Cause is ErrStalled or the context's error;
// Unwrap exposes it to errors.Is, so context.DeadlineExceeded and
// ErrStalled both remain matchable.
type StallError struct {
	Cause error
	Diag  StallDiagnostic
}

func (e *StallError) Error() string {
	return fmt.Sprintf("%v\n%s", e.Cause, e.Diag.String())
}

func (e *StallError) Unwrap() error { return e.Cause }

// StallDiagnostic is a barrier-consistent snapshot of a stopped
// simulation: what every shard was waiting on and where every bridge's
// frontiers stood. It is collected only after the interrupted run has
// returned, when no kernel is executing, so it is exact — not a racy
// sample of a moving target.
type StallDiagnostic struct {
	// Advances is the number of kernel Step dispatches that found work,
	// summed over the shards (0 for single-kernel runs) — the
	// scheduler-neutral unit of coordinator progress (Stats.Advances).
	Advances uint64 `json:"advances"`
	// GlobalNow is the conservative global date at the stop.
	GlobalNow sim.Time `json:"global_now"`
	// Shards describes every shard; single-kernel runs have one.
	Shards []ShardDiag `json:"shards"`
	// Bridges describes every cross-shard channel.
	Bridges []BridgeDiag `json:"bridges,omitempty"`
}

// ShardDiag is one shard's state at the stop.
type ShardDiag struct {
	Name string   `json:"name"`
	Now  sim.Time `json:"now"`
	// NextEvent is the shard's earliest pending activity; HasWork is
	// false when the shard is quiescent (NextEvent is then 0).
	NextEvent sim.Time `json:"next_event"`
	HasWork   bool     `json:"has_work"`
	// Horizon is the shard's last conservative bound (TimeMax when
	// unbounded or never computed).
	Horizon sim.Time `json:"horizon"`
	// Blocked lists thread processes that are neither terminated nor
	// runnable — what the shard was waiting on.
	Blocked []string `json:"blocked,omitempty"`
	// Beat is the shard's dispatch-liveness counter at the stop: in a
	// stalled run, a climbing Beat (vs an earlier diagnostic, or just
	// nonzero activity at a frozen date) distinguishes a delta-cycle
	// livelock from a kernel that is not dispatching at all.
	Beat uint64 `json:"beat"`
}

// BridgeDiag is one bridge's frontier state at the stop.
type BridgeDiag struct {
	Name   string `json:"name"`
	Writer string `json:"writer"`
	Reader string `json:"reader"`
	// Frontier bounds future deliveries to the reader; WriteFrontier
	// bounds the resume date of a credit-blocked writer.
	Frontier      sim.Time `json:"frontier"`
	WriteFrontier sim.Time `json:"write_frontier"`
}

// fmtTime renders a date, naming the unbounded sentinel explicitly —
// "TimeMax", never a fold that could read as a real (huge) date.
func fmtTime(t sim.Time) string {
	if t == sim.TimeMax {
		return "TimeMax"
	}
	return fmt.Sprintf("%d", int64(t))
}

// String renders the diagnostic as an indented multi-line report.
func (d StallDiagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stall diagnostic: advances %d, global now %s", d.Advances, fmtTime(d.GlobalNow))
	for _, s := range d.Shards {
		fmt.Fprintf(&b, "\n  shard %s: now=%s", s.Name, fmtTime(s.Now))
		if s.HasWork {
			fmt.Fprintf(&b, " next_event=%s", fmtTime(s.NextEvent))
		} else {
			b.WriteString(" next_event=none")
		}
		fmt.Fprintf(&b, " horizon=%s", fmtTime(s.Horizon))
		if len(s.Blocked) > 0 {
			fmt.Fprintf(&b, " blocked=[%s]", strings.Join(s.Blocked, " "))
		}
	}
	for _, br := range d.Bridges {
		// A terminated writer publishes WriteFrontier = TimeMax; print
		// it explicitly (with the reason) so a stall dump never leaves
		// a bridge's write side ambiguous.
		fmt.Fprintf(&b, "\n  bridge %s (%s->%s): frontier=%s write_frontier=%s",
			br.Name, br.Writer, br.Reader, fmtTime(br.Frontier), fmtTime(br.WriteFrontier))
		if br.WriteFrontier == sim.TimeMax {
			b.WriteString(" (writer terminated)")
		}
	}
	return b.String()
}

// Diagnose snapshots the coordinator's shards and bridges. Call it only
// while no shard kernel is running (after Run returned).
func (c *Coordinator) Diagnose() StallDiagnostic {
	d := StallDiagnostic{Advances: c.ctr.advances.Load(), GlobalNow: c.Now()}
	for _, s := range c.shards {
		sd := ShardDiag{
			Name:    s.k.Name(),
			Now:     s.k.Now(),
			Horizon: s.horizon,
			Blocked: s.k.Blocked(),
			Beat:    s.k.Beat(),
		}
		if s.horizon == 0 {
			sd.Horizon = sim.TimeMax // never computed
		}
		if at, ok := s.k.NextEventAt(); ok {
			sd.NextEvent, sd.HasWork = at, true
		}
		d.Shards = append(d.Shards, sd)
	}
	for _, b := range c.bridges {
		d.Bridges = append(d.Bridges, BridgeDiag{
			Name:          b.Name(),
			Writer:        b.WriterKernel().Name(),
			Reader:        b.ReaderKernel().Name(),
			Frontier:      b.Frontier(),
			WriteFrontier: b.WriteFrontier(),
		})
	}
	return d
}

// diagnoseKernel is the single-kernel analogue of Diagnose.
func diagnoseKernel(k *sim.Kernel) StallDiagnostic {
	d := StallDiagnostic{GlobalNow: k.Now()}
	sd := ShardDiag{
		Name:    k.Name(),
		Now:     k.Now(),
		Horizon: sim.TimeMax,
		Blocked: k.Blocked(),
		Beat:    k.Beat(),
	}
	if at, ok := k.NextEventAt(); ok {
		sd.NextEvent, sd.HasWork = at, true
	}
	d.Shards = append(d.Shards, sd)
	return d
}

// stallWindowKey carries the watchdog window through a context, so a
// scenario model — which receives only a ctx — can hand it down to the
// guarded run it builds internally.
type stallWindowKey struct{}

// WithStallWindow returns a context carrying the no-progress watchdog
// window for guarded runs built under it. A non-positive window
// disables the watchdog.
func WithStallWindow(ctx context.Context, w time.Duration) context.Context {
	return context.WithValue(ctx, stallWindowKey{}, w)
}

// StallWindowFrom extracts the watchdog window installed by
// WithStallWindow, or 0 (disabled) when absent.
func StallWindowFrom(ctx context.Context) time.Duration {
	if w, ok := ctx.Value(stallWindowKey{}).(time.Duration); ok {
		return w
	}
	return 0
}

// interruptible abstracts the two run shapes the supervisor guards.
type interruptible interface {
	interrupt()
	clearInterrupt()
	progressBeacon() uint64
	diagnose() StallDiagnostic
}

type coordTarget struct{ c *Coordinator }

func (t coordTarget) interrupt()                { t.c.Interrupt() }
func (t coordTarget) clearInterrupt()           { t.c.ClearInterrupt() }
func (t coordTarget) progressBeacon() uint64    { return t.c.Progress() }
func (t coordTarget) diagnose() StallDiagnostic { return t.c.Diagnose() }

type kernelTarget struct{ k *sim.Kernel }

func (t kernelTarget) interrupt()                { t.k.Interrupt() }
func (t kernelTarget) clearInterrupt()           { t.k.ClearInterrupt() }
func (t kernelTarget) progressBeacon() uint64    { return uint64(t.k.Beacon()) }
func (t kernelTarget) diagnose() StallDiagnostic { return diagnoseKernel(t.k) }

// guard runs body under a supervisor that interrupts the target when
// ctx ends or the progress beacon freezes for a full stall window. It
// returns nil when the run completed, ctx.Err() on plain cancellation,
// and a *StallError carrying the diagnostic on deadline or stall.
func guard(ctx context.Context, t interruptible, stall time.Duration, body func()) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() == nil && stall <= 0 {
		body() // fast path: nothing to guard, zero overhead
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	var (
		mu       sync.Mutex
		cause    error
		finished bool
	)
	fire := func(err error) {
		mu.Lock()
		if !finished && cause == nil {
			cause = err
			t.interrupt()
		}
		mu.Unlock()
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var tick <-chan time.Time
		if stall > 0 {
			ticker := time.NewTicker(stall)
			defer ticker.Stop()
			tick = ticker.C
		}
		last := t.progressBeacon()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				fire(ctx.Err())
				return
			case <-tick:
				if p := t.progressBeacon(); p == last {
					fire(ErrStalled)
					return
				} else {
					last = p
				}
			}
		}
	}()
	// The supervisor never blocks on the run, so a shard panic
	// propagating out of body still tears it down via this defer.
	defer func() {
		close(done)
		wg.Wait()
	}()
	body()
	mu.Lock()
	finished = true
	err := cause
	mu.Unlock()
	if err == nil {
		return nil
	}
	// The run was interrupted at a safe point: unlatch so the caller
	// can resume or retry, and snapshot the consistent stopped state.
	t.clearInterrupt()
	if errors.Is(err, context.Canceled) {
		return err // caller abandoned the run; no diagnostic wanted
	}
	return &StallError{Cause: err, Diag: t.diagnose()}
}

// RunGuarded is Run with a supervisor: the run is interrupted when ctx
// is cancelled or its deadline passes, or when no shard makes progress
// for a full stall window (stall <= 0 disables the watchdog). It
// returns nil on completion, ctx.Err() on plain cancellation, and a
// *StallError with a barrier-consistent StallDiagnostic on deadline or
// stall. With a background ctx and no stall window it is exactly Run.
func (c *Coordinator) RunGuarded(ctx context.Context, limit sim.Time, stall time.Duration) error {
	return guard(ctx, coordTarget{c}, stall, func() { c.Run(limit) })
}

// RunKernel guards a single-kernel run the same way RunGuarded guards a
// coordinated one, so unsharded models get the same deadline and
// watchdog semantics (with a one-shard diagnostic).
func RunKernel(ctx context.Context, k *sim.Kernel, limit sim.Time, stall time.Duration) error {
	return guard(ctx, kernelTarget{k}, stall, func() { k.Run(limit) })
}
