// Package store is the durable campaign log: an append-only, crash-safe
// write-ahead journal that turns the campaign layer's in-process fault
// tolerance into restart-surviving robustness. The engine journals job
// lifecycle events (submission with the full spec document, per-point
// completion keyed by the canonical scenario hash, finish, explicit
// cancellation) as length-prefixed CRC32C-checksummed records appended
// to segment files; recovery scans the segments, truncates a torn tail
// record left by a crash instead of failing, and rebuilds (a) the job
// table — which jobs were running when the process died — and (b) a
// cross-restart point cache feeding campaign.Cache, so a resumed job
// re-executes only the points whose completion records never reached
// the disk. Because points are keyed by a canonical sha256 hash and
// outcomes are deterministic, replay is exactly-once by construction:
// the resumed campaign's results document is byte-identical to an
// uninterrupted run's.
//
// Durability is group-committed: appends land in a buffered writer and a
// single committer goroutine fsyncs batches (fsync-on-commit, never one
// fsync per record), so the journal costs one syscall per burst of
// completions. Losing the unsynced tail in a crash is safe — the only
// consequence is recomputing the dropped points, never wrong output.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/scenario"
)

// WriteSyncer is the sink a segment file is written through: an
// io.Writer whose Sync makes everything written so far durable.
// *os.File satisfies it; tests inject fault-injecting implementations
// (see TruncatingSyncer) to simulate crashes that drop tail bytes.
type WriteSyncer interface {
	io.Writer
	Sync() error
	Close() error
}

// Record types. The byte values are on-disk format: never renumber.
const (
	recJobSubmitted   byte = 1
	recPointCompleted byte = 2
	recJobFinished    byte = 3
	recJobCancelled   byte = 4
)

// frame layout: u32le payload length | u32le CRC32C(payload) | payload,
// payload = type byte + JSON body.
const (
	headerBytes = 8
	// maxRecordBytes bounds one record; a longer length field is treated
	// as corruption (a torn tail when it is the last record).
	maxRecordBytes = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a store.
type Options struct {
	// SegmentBytes rotates to a new segment file once the current one
	// exceeds this size; 0 means 8 MiB.
	SegmentBytes int64
	// Metrics, when non-nil, receives record/fsync/recovery counters.
	Metrics *Metrics
	// OpenSegment opens (creating if needed, appending if existing) the
	// syncer a segment is written through; nil means the os.File
	// default. Tests inject fault-injecting syncers here.
	OpenSegment func(path string) (WriteSyncer, error)
}

func (o *Options) fill() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.OpenSegment == nil {
		o.OpenSegment = func(path string) (WriteSyncer, error) {
			return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		}
	}
}

// Store is the append-only campaign journal. All append methods are safe
// for concurrent use from campaign worker goroutines and are no-ops on a
// nil receiver, so callers never special-case "no store configured".
// Write errors are sticky: the first one is kept and reported by Err and
// Close, and later appends are dropped (the in-memory campaign keeps
// running; only durability is lost).
type Store struct {
	dir string
	opt Options

	mu      sync.Mutex
	f       WriteSyncer
	buf     *appendBuf
	segIdx  int
	segSize int64
	dirty   bool
	err     error
	closed  bool

	commitC chan struct{}
	doneC   chan struct{}
}

// appendBuf is a minimal whole-frame buffered writer (flush-only, no
// partial-flush states) so a short write never leaves the frame
// accounting and the file contents disagreeing silently.
type appendBuf struct {
	w    io.Writer
	b    []byte
	keep int
}

func newAppendBuf(w io.Writer, keep int) *appendBuf { return &appendBuf{w: w, keep: keep} }

func (b *appendBuf) Write(p []byte) {
	b.b = append(b.b, p...)
}

func (b *appendBuf) Flush() error {
	if len(b.b) == 0 {
		return nil
	}
	_, err := b.w.Write(b.b)
	b.b = b.b[:0]
	if cap(b.b) > 4*b.keep {
		b.b = nil // shed an unusually large burst's buffer
	}
	return err
}

// Open recovers the journal in dir (created if missing) and returns the
// store positioned to append after the last valid record, plus what the
// scan rebuilt. A torn tail record in the final segment — the signature
// of a crash mid-append or mid-sync — is truncated away and counted,
// never an error; corruption anywhere else is.
func Open(dir string, opt Options) (*Store, *Recovered, error) {
	opt.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	segs, err := segments(dir)
	if err != nil {
		return nil, nil, err
	}
	rec := newRecovered()
	lastIdx, lastSize := 0, int64(0)
	for i, seg := range segs {
		final := i == len(segs)-1
		size, err := replaySegment(filepath.Join(dir, seg.name), final, rec)
		if err != nil {
			return nil, nil, err
		}
		if final {
			lastIdx, lastSize = seg.idx, size
		}
	}
	rec.finish()
	if opt.Metrics != nil {
		opt.Metrics.RecoveredPoints.Add(uint64(len(rec.Points)))
		opt.Metrics.TornTails.Add(uint64(rec.TornTails))
	}

	s := &Store{
		dir:     dir,
		opt:     opt,
		segIdx:  lastIdx,
		segSize: lastSize,
		commitC: make(chan struct{}, 1),
		doneC:   make(chan struct{}),
	}
	if s.segIdx == 0 {
		s.segIdx = 1
		s.segSize = 0
	}
	f, err := opt.OpenSegment(s.segPath(s.segIdx))
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	s.f = f
	s.buf = newAppendBuf(f, 1<<16)
	syncDir(dir)
	go s.committer()
	return s, rec, nil
}

func (s *Store) segPath(idx int) string {
	return filepath.Join(s.dir, fmt.Sprintf("%08d.wal", idx))
}

// segment is one discovered journal file.
type segment struct {
	name string
	idx  int
}

// segments lists the *.wal files in dir in index order.
func segments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "%08d.wal", &idx); err != nil || idx <= 0 {
			continue
		}
		segs = append(segs, segment{name: e.Name(), idx: idx})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].idx < segs[j].idx })
	return segs, nil
}

// syncDir fsyncs a directory so segment creation survives a crash on
// filesystems that need it; best-effort (some platforms refuse).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// committer is the group-commit goroutine: one fsync covers every append
// since the previous one, so a burst of point completions costs a single
// syscall.
func (s *Store) committer() {
	defer close(s.doneC)
	for range s.commitC {
		s.mu.Lock()
		s.commitLocked()
		s.mu.Unlock()
	}
}

// commitLocked flushes the buffer and fsyncs if anything is pending.
func (s *Store) commitLocked() {
	if s.err != nil || s.f == nil || !s.dirty {
		return
	}
	if err := s.buf.Flush(); err != nil {
		s.err = fmt.Errorf("store: append: %w", err)
		return
	}
	if err := s.f.Sync(); err != nil {
		s.err = fmt.Errorf("store: sync: %w", err)
		return
	}
	s.dirty = false
	if s.opt.Metrics != nil {
		s.opt.Metrics.Fsyncs.Inc()
	}
}

// append frames and buffers one record and rings the commit doorbell.
func (s *Store) append(typ byte, body any) error {
	if s == nil {
		return nil
	}
	js, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("store: encoding record: %w", err)
	}
	payload := make([]byte, 0, 1+len(js))
	payload = append(payload, typ)
	payload = append(payload, js...)
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if s.err != nil {
		return s.err
	}
	s.buf.Write(hdr[:])
	s.buf.Write(payload)
	s.dirty = true
	s.segSize += int64(headerBytes + len(payload))
	s.opt.Metrics.countRecord(typ)
	if s.segSize >= s.opt.SegmentBytes {
		s.rotateLocked()
	}
	select {
	case s.commitC <- struct{}{}:
	default:
	}
	return s.err
}

// rotateLocked seals the current segment (flush + fsync + close) and
// opens the next one.
func (s *Store) rotateLocked() {
	s.commitLocked()
	if s.err != nil {
		return
	}
	if err := s.f.Close(); err != nil {
		s.err = fmt.Errorf("store: sealing segment: %w", err)
		return
	}
	s.segIdx++
	s.segSize = 0
	f, err := s.opt.OpenSegment(s.segPath(s.segIdx))
	if err != nil {
		s.f = nil
		s.err = fmt.Errorf("store: %w", err)
		return
	}
	s.f = f
	s.buf = newAppendBuf(f, 1<<16)
	syncDir(s.dir)
}

// JobSubmitted journals a campaign submission: the id, display name,
// expansion sizes and the full spec document (what recovery re-expands
// to resume the job).
func (s *Store) JobSubmitted(id, name string, points, total int, spec []byte) error {
	return s.append(recJobSubmitted, &jobSubmittedBody{
		ID: id, Name: name, Points: points, Total: total, Spec: spec,
	})
}

// PointCompleted journals one deterministic point outcome under its
// canonical scenario hash. Recovery feeds these to the cross-restart
// cache, so journaled points are never recomputed.
func (s *Store) PointCompleted(hash string, out *scenario.Outcome) error {
	return s.append(recPointCompleted, &pointCompletedBody{Hash: hash, Outcome: out})
}

// JobFinished journals a campaign that completed its results document.
func (s *Store) JobFinished(id string) error {
	return s.append(recJobFinished, &jobMarkBody{ID: id})
}

// JobCancelled journals an explicit cancellation — its own record type,
// distinct from JobFinished, so recovery knows not to resume the job.
// Engine shutdown deliberately does NOT write it: a drained job is still
// "running" in the log and resumes on the next boot.
func (s *Store) JobCancelled(id string) error {
	return s.append(recJobCancelled, &jobMarkBody{ID: id})
}

// Sync blocks until every record appended so far is durable (or the
// sticky write error is reported).
func (s *Store) Sync() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commitLocked()
	return s.err
}

// Err reports the sticky write error, if any.
func (s *Store) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close commits everything pending, stops the committer and closes the
// current segment.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return s.err
	}
	s.closed = true
	s.commitLocked()
	if s.f != nil {
		if err := s.f.Close(); err != nil && s.err == nil {
			s.err = fmt.Errorf("store: close: %w", err)
		}
		s.f = nil
	}
	err := s.err
	close(s.commitC)
	s.mu.Unlock()
	<-s.doneC
	return err
}

// Record bodies (JSON, versioned implicitly by their record type).

type jobSubmittedBody struct {
	ID     string          `json:"id"`
	Name   string          `json:"name,omitempty"`
	Points int             `json:"points"`
	Total  int             `json:"total"`
	Spec   json.RawMessage `json:"spec"`
}

type pointCompletedBody struct {
	Hash    string            `json:"hash"`
	Outcome *scenario.Outcome `json:"outcome"`
}

type jobMarkBody struct {
	ID string `json:"id"`
}

// TruncatingSyncer is the fault-injection WriteSyncer: it reports every
// write as fully persisted but silently drops all bytes past Limit —
// exactly what a crash between a buffered append and its fsync leaves on
// disk (a torn tail record). Tests wrap the real segment file in one to
// prove recovery survives arbitrary truncation points.
type TruncatingSyncer struct {
	WS    WriteSyncer
	Limit int64

	off int64
}

// Write persists at most the bytes that fit under Limit and lies about
// the rest, like a crashed kernel would.
func (t *TruncatingSyncer) Write(p []byte) (int, error) {
	keep := t.Limit - t.off
	if keep > int64(len(p)) {
		keep = int64(len(p))
	}
	if keep > 0 {
		if _, err := t.WS.Write(p[:keep]); err != nil {
			return 0, err
		}
	}
	t.off += int64(len(p))
	return len(p), nil
}

// Sync passes through (the persisted prefix really is durable).
func (t *TruncatingSyncer) Sync() error { return t.WS.Sync() }

// Close passes through.
func (t *TruncatingSyncer) Close() error { return t.WS.Close() }
