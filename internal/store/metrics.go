package store

import "repro/internal/metrics"

// Metrics is the store's observability sink: per-type record counts,
// fsync batches, and the recovery counters the crash tests pin (points
// served from the journal instead of recomputed, torn tails truncated).
// All fields may be nil (updates no-op); build one with NewMetrics.
type Metrics struct {
	// RecJobSubmitted..RecJobCancelled split store_records_total by the
	// record type label.
	RecJobSubmitted   *metrics.Counter
	RecPointCompleted *metrics.Counter
	RecJobFinished    *metrics.Counter
	RecJobCancelled   *metrics.Counter
	// Fsyncs counts group commits (one fsync may cover many records).
	Fsyncs *metrics.Counter
	// RecoveredPoints counts point outcomes rebuilt from the journal at
	// Open — work a restart did NOT redo.
	RecoveredPoints *metrics.Counter
	// TornTails counts partial tail records truncated during recovery.
	TornTails *metrics.Counter
}

// NewMetrics registers the store metric family on r. A nil registry
// returns nil (a no-op sink).
func NewMetrics(r *metrics.Registry) *Metrics {
	if r == nil {
		return nil
	}
	rec := func(typ string) *metrics.Counter {
		return r.Counter("store_records_total", "Journal records appended, by record type.",
			metrics.Label{Name: "type", Value: typ})
	}
	return &Metrics{
		RecJobSubmitted:   rec("job_submitted"),
		RecPointCompleted: rec("point_completed"),
		RecJobFinished:    rec("job_finished"),
		RecJobCancelled:   rec("job_cancelled"),
		Fsyncs:            r.Counter("store_fsyncs_total", "Group commits flushed to stable storage."),
		RecoveredPoints:   r.Counter("store_recovered_points_total", "Point outcomes rebuilt from the journal at recovery."),
		TornTails:         r.Counter("store_torn_tail_total", "Partial tail records truncated during recovery."),
	}
}

// countRecord increments the counter matching one appended record type;
// nil-safe like every metrics update.
func (m *Metrics) countRecord(typ byte) {
	if m == nil {
		return
	}
	switch typ {
	case recJobSubmitted:
		m.RecJobSubmitted.Inc()
	case recPointCompleted:
		m.RecPointCompleted.Inc()
	case recJobFinished:
		m.RecJobFinished.Inc()
	case recJobCancelled:
		m.RecJobCancelled.Inc()
	}
}
