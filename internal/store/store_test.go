package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

func outcome(i int) *scenario.Outcome {
	return &scenario.Outcome{
		SimEndNS:    int64(1000 + i),
		CtxSwitches: uint64(i),
		Checksums:   []uint64{uint64(i) * 7, uint64(i) * 13},
		DatesHash:   fmt.Sprintf("dh-%04d", i),
	}
}

// writeSampleLog journals one finished job, one interrupted job and a
// batch of point outcomes, then closes the store.
func writeSampleLog(t *testing.T, dir string, opt Options) {
	t.Helper()
	s, rec, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(rec.Jobs) != 0 || len(rec.Points) != 0 {
		t.Fatalf("fresh dir recovered %d jobs, %d points", len(rec.Jobs), len(rec.Points))
	}
	if err := s.JobSubmitted("c1", "alpha", 4, 3, []byte(`{"model":"pipeline"}`)); err != nil {
		t.Fatalf("JobSubmitted: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := s.PointCompleted(fmt.Sprintf("h%d", i), outcome(i)); err != nil {
			t.Fatalf("PointCompleted: %v", err)
		}
	}
	if err := s.JobFinished("c1"); err != nil {
		t.Fatalf("JobFinished: %v", err)
	}
	if err := s.JobSubmitted("c2", "beta", 2, 2, []byte(`{"model":"fifo"}`)); err != nil {
		t.Fatalf("JobSubmitted c2: %v", err)
	}
	if err := s.PointCompleted("h9", outcome(9)); err != nil {
		t.Fatalf("PointCompleted h9: %v", err)
	}
	// c2 gets no terminal record: it must replay as interrupted.
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeSampleLog(t, dir, Options{})

	s, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s.Close()
	if rec.TornTails != 0 {
		t.Errorf("TornTails = %d, want 0", rec.TornTails)
	}
	if rec.Records != 7 {
		t.Errorf("Records = %d, want 7", rec.Records)
	}
	if len(rec.Jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(rec.Jobs))
	}
	c1, c2 := rec.Jobs[0], rec.Jobs[1]
	if c1.ID != "c1" || c1.State != JobFinished || c1.Name != "alpha" || c1.Points != 4 || c1.Total != 3 {
		t.Errorf("c1 = %+v", c1)
	}
	if string(c1.Spec) != `{"model":"pipeline"}` {
		t.Errorf("c1 spec = %s", c1.Spec)
	}
	if c2.ID != "c2" || c2.State != JobRunning {
		t.Errorf("c2 = %+v", c2)
	}
	if got := rec.Interrupted(); len(got) != 1 || got[0].ID != "c2" {
		t.Errorf("Interrupted = %v", got)
	}
	if len(rec.Points) != 4 {
		t.Fatalf("recovered %d points, want 4", len(rec.Points))
	}
	for i := 0; i < 3; i++ {
		got, ok := rec.Points[fmt.Sprintf("h%d", i)]
		if !ok {
			t.Fatalf("point h%d missing", i)
		}
		want := outcome(i)
		if got.SimEndNS != want.SimEndNS || got.DatesHash != want.DatesHash ||
			len(got.Checksums) != 2 || got.Checksums[0] != want.Checksums[0] {
			t.Errorf("h%d = %+v, want %+v", i, got, *want)
		}
	}
	if hs := rec.Hashes(); len(hs) != 4 || hs[0] != "h0" || hs[3] != "h9" {
		t.Errorf("Hashes = %v", hs)
	}
}

func TestAppendAfterReopen(t *testing.T) {
	dir := t.TempDir()
	writeSampleLog(t, dir, Options{})

	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := s.JobFinished("c2"); err != nil {
		t.Fatalf("JobFinished after reopen: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	if len(rec.Interrupted()) != 0 {
		t.Errorf("c2 still interrupted after journaled finish")
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record or two forces a rotation.
	opt := Options{SegmentBytes: 128}
	s, _, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s.JobSubmitted("c1", "rot", 40, 40, []byte(`{"model":"pipeline"}`))
	for i := 0; i < 40; i++ {
		s.PointCompleted(fmt.Sprintf("h%02d", i), outcome(i))
	}
	s.JobFinished("c1")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("got %d segments, want rotation to produce >= 3", len(segs))
	}

	_, rec, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if rec.Segments != len(segs) && rec.Segments != len(segs)+1 {
		t.Errorf("scanned %d segments, dir has %d", rec.Segments, len(segs))
	}
	if len(rec.Points) != 40 {
		t.Errorf("recovered %d points across segments, want 40", len(rec.Points))
	}
	if rec.Jobs[0].State != JobFinished {
		t.Errorf("c1 state = %s", rec.Jobs[0].State)
	}
}

func TestTerminalRecordsLatch(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.JobSubmitted("c1", "", 1, 1, []byte(`{}`))
	s.JobFinished("c1")
	s.JobCancelled("c1")  // later terminal record must not overwrite
	s.JobCancelled("c99") // unknown id: tolerated, not an error
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if rec.Jobs[0].State != JobFinished {
		t.Errorf("state = %s, want finished (first terminal record wins)", rec.Jobs[0].State)
	}
}

func TestNilStoreNoOps(t *testing.T) {
	var s *Store
	if err := s.JobSubmitted("c1", "", 0, 0, nil); err != nil {
		t.Errorf("nil JobSubmitted: %v", err)
	}
	if err := s.PointCompleted("h", outcome(0)); err != nil {
		t.Errorf("nil PointCompleted: %v", err)
	}
	if err := s.JobFinished("c1"); err != nil {
		t.Errorf("nil JobFinished: %v", err)
	}
	if err := s.JobCancelled("c1"); err != nil {
		t.Errorf("nil JobCancelled: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Errorf("nil Sync: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	s, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.JobFinished("c1"); err == nil {
		t.Error("append after Close succeeded")
	}
}

// lastSegment returns the path of the highest-index segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := segments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments(%s): %v (%d)", dir, err, len(segs))
	}
	return filepath.Join(dir, segs[len(segs)-1].name)
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	writeSampleLog(t, dir, Options{})
	seg := lastSegment(t, dir)

	// A crash mid-append leaves a partial frame: simulate with garbage.
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe})
	f.Close()

	s, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open with torn tail: %v", err)
	}
	s.Close()
	if rec.TornTails != 1 {
		t.Errorf("TornTails = %d, want 1", rec.TornTails)
	}
	if rec.Records != 7 {
		t.Errorf("Records = %d, want all 7 intact records", rec.Records)
	}

	// The truncation is repaired on disk: a second scan is clean.
	_, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.TornTails != 0 {
		t.Errorf("second scan TornTails = %d, want 0 (tail was repaired)", rec2.TornTails)
	}
}

// TestRecoverEveryPrefix is the property test: for EVERY byte length L of
// the segment, a log truncated to L bytes recovers without error, yields
// exactly the records whose frames fit wholly inside L, and counts at
// most one torn tail.
func TestRecoverEveryPrefix(t *testing.T) {
	master := t.TempDir()
	writeSampleLog(t, master, Options{})
	data, err := os.ReadFile(lastSegment(t, master))
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries, for predicting how many records survive a cut.
	var bounds []int64
	for off := int64(0); off < int64(len(data)); {
		bounds = append(bounds, off)
		// Advance by one frame using the length field at off.
		n := int64(data[off]) | int64(data[off+1])<<8 | int64(data[off+2])<<16 | int64(data[off+3])<<24
		off += headerBytes + n
	}
	bounds = append(bounds, int64(len(data)))
	recordsBelow := func(l int64) int {
		n := 0
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= l {
				n = i
			}
		}
		return n
	}

	for l := int64(0); l <= int64(len(data)); l++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "00000001.wal"), data[:l], 0o644); err != nil {
			t.Fatal(err)
		}
		s, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("truncated to %d bytes: Open: %v", l, err)
		}
		s.Close()
		wantRecords := recordsBelow(l)
		if rec.Records != wantRecords {
			t.Fatalf("truncated to %d: recovered %d records, want %d", l, rec.Records, wantRecords)
		}
		onBoundary := bounds[wantRecords] == l
		if onBoundary && rec.TornTails != 0 {
			t.Fatalf("truncated to %d (frame boundary): TornTails = %d", l, rec.TornTails)
		}
		if !onBoundary && rec.TornTails != 1 {
			t.Fatalf("truncated to %d (mid-frame): TornTails = %d, want 1", l, rec.TornTails)
		}
	}
}

// TestTruncatingSyncer drives the fault-injection path end to end: a
// store whose segment silently drops bytes past Limit — a crash between
// append and fsync — recovers to the persisted prefix.
func TestTruncatingSyncer(t *testing.T) {
	dir := t.TempDir()
	const limit = 100
	opt := Options{OpenSegment: func(path string) (WriteSyncer, error) {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		return &TruncatingSyncer{WS: f, Limit: limit}, nil
	}}
	s, _, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	s.JobSubmitted("c1", "faulty", 8, 8, []byte(`{"model":"pipeline"}`))
	for i := 0; i < 8; i++ {
		s.PointCompleted(fmt.Sprintf("h%d", i), outcome(i))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close through truncating syncer: %v", err)
	}

	if fi, err := os.Stat(lastSegment(t, dir)); err != nil || fi.Size() > limit {
		t.Fatalf("segment size = %v (err %v), want <= %d", fi.Size(), err, limit)
	}
	s2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovering dropped-tail log: %v", err)
	}
	defer s2.Close()
	if len(rec.Points) >= 8 {
		t.Fatalf("recovered %d points, expected the tail to be lost", len(rec.Points))
	}
	if len(rec.Jobs) != 1 || rec.Jobs[0].State != JobRunning {
		t.Fatalf("jobs = %+v, want one interrupted job", rec.Jobs)
	}
}

func TestCorruptNonFinalSegmentIsError(t *testing.T) {
	dir := t.TempDir()
	opt := Options{SegmentBytes: 128}
	s, _, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	s.JobSubmitted("c1", "corrupt", 20, 20, []byte(`{"model":"pipeline"}`))
	for i := 0; i < 20; i++ {
		s.PointCompleted(fmt.Sprintf("h%02d", i), outcome(i))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := segments(dir)
	if len(segs) < 2 {
		t.Fatalf("need >= 2 segments, got %d", len(segs))
	}
	// Flip one payload byte in the FIRST segment: not a torn tail, real
	// corruption — recovery must refuse.
	first := filepath.Join(dir, segs[0].name)
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[headerBytes+2] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, opt); err == nil {
		t.Fatal("Open accepted a corrupt non-final segment")
	} else if !strings.Contains(err.Error(), "non-final segment") {
		t.Fatalf("error = %v, want non-final segment corruption", err)
	}
}

func TestDuplicateSubmissionIsError(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.JobSubmitted("c1", "", 1, 1, []byte(`{}`))
	s.JobSubmitted("c1", "", 1, 1, []byte(`{}`))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a duplicate submission record")
	} else if !strings.Contains(err.Error(), "duplicate submission") {
		t.Fatalf("error = %v", err)
	}
}
