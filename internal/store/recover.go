package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sort"

	"repro/internal/scenario"
)

// JobState is a journaled job's replayed lifecycle stage.
type JobState string

const (
	// JobRunning means the log holds a submission but no terminal
	// record: the process died mid-campaign and the job should resume.
	JobRunning JobState = "running"
	// JobFinished means the job completed its results document.
	JobFinished JobState = "finished"
	// JobCancelled means the job was explicitly cancelled; recovery
	// must NOT resume it.
	JobCancelled JobState = "cancelled"
)

// JobRecord is one replayed campaign submission.
type JobRecord struct {
	// ID is the engine job id ("c3"); Name echoes the set name.
	ID   string
	Name string
	// Points and Total echo the expansion sizes at submission.
	Points int
	Total  int
	// Spec is the full submitted Set document, re-expanded on resume.
	Spec json.RawMessage
	// State is the replayed lifecycle stage (terminal records latch:
	// the first one wins).
	State JobState
}

// Recovered is what a journal scan rebuilds.
type Recovered struct {
	// Jobs holds every journaled submission in submission order.
	Jobs []*JobRecord
	// Points is the cross-restart cache: every journaled deterministic
	// outcome, keyed by canonical scenario hash.
	Points map[string]scenario.Outcome
	// Records counts valid replayed records; Segments counts scanned
	// files; TornTails counts truncated partial tail records.
	Records   int
	Segments  int
	TornTails int

	byID map[string]*JobRecord
}

func newRecovered() *Recovered {
	return &Recovered{
		Points: map[string]scenario.Outcome{},
		byID:   map[string]*JobRecord{},
	}
}

// Interrupted returns the jobs the crash cut short, in submission order.
func (r *Recovered) Interrupted() []*JobRecord {
	var out []*JobRecord
	for _, j := range r.Jobs {
		if j.State == JobRunning {
			out = append(out, j)
		}
	}
	return out
}

// finish sorts nothing (order is append order) but exists as the
// single post-scan hook; kept for symmetry and future invariants.
func (r *Recovered) finish() {}

// apply folds one decoded record into the replay state.
func (r *Recovered) apply(typ byte, body []byte) error {
	switch typ {
	case recJobSubmitted:
		var b jobSubmittedBody
		if err := json.Unmarshal(body, &b); err != nil {
			return fmt.Errorf("store: bad job-submitted record: %w", err)
		}
		if _, dup := r.byID[b.ID]; dup {
			return fmt.Errorf("store: duplicate submission record for job %s", b.ID)
		}
		j := &JobRecord{ID: b.ID, Name: b.Name, Points: b.Points,
			Total: b.Total, Spec: b.Spec, State: JobRunning}
		r.Jobs = append(r.Jobs, j)
		r.byID[b.ID] = j
	case recPointCompleted:
		var b pointCompletedBody
		if err := json.Unmarshal(body, &b); err != nil {
			return fmt.Errorf("store: bad point-completed record: %w", err)
		}
		if b.Outcome != nil {
			r.Points[b.Hash] = *b.Outcome
		}
	case recJobFinished, recJobCancelled:
		var b jobMarkBody
		if err := json.Unmarshal(body, &b); err != nil {
			return fmt.Errorf("store: bad job terminal record: %w", err)
		}
		j, ok := r.byID[b.ID]
		if !ok {
			// A terminal record whose submission fell in a lost tail of
			// an earlier store generation; nothing to latch.
			return nil
		}
		if j.State == JobRunning { // terminal records latch, first wins
			if typ == recJobFinished {
				j.State = JobFinished
			} else {
				j.State = JobCancelled
			}
		}
	default:
		return fmt.Errorf("store: unknown record type %d", typ)
	}
	r.Records++
	return nil
}

// replaySegment scans one segment file into rec and returns the size of
// its valid prefix. In the final segment a torn tail — a partial header,
// a length running past EOF, or a checksum mismatch on the last frame —
// is truncated off the file and counted; anywhere else it is corruption
// and an error.
func replaySegment(path string, final bool, rec *Recovered) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	rec.Segments++
	off := int64(0)
	torn := func(reason string) (int64, error) {
		if !final {
			return 0, fmt.Errorf("store: %s: corrupt record at offset %d (%s) in a non-final segment", path, off, reason)
		}
		if err := os.Truncate(path, off); err != nil {
			return 0, fmt.Errorf("store: truncating torn tail: %w", err)
		}
		rec.TornTails++
		return off, nil
	}
	for {
		remain := int64(len(data)) - off
		if remain == 0 {
			return off, nil // clean end
		}
		if remain < headerBytes {
			return torn("partial header")
		}
		n := int64(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > maxRecordBytes {
			return torn("implausible length")
		}
		if remain < headerBytes+n {
			return torn("payload past EOF")
		}
		payload := data[off+headerBytes : off+headerBytes+n]
		if crc32.Checksum(payload, castagnoli) != crc {
			// A checksum mismatch invalidates the framing from here on:
			// in the final segment that is the torn tail, elsewhere it
			// is corruption.
			return torn("checksum mismatch")
		}
		if err := rec.apply(payload[0], payload[1:]); err != nil {
			return 0, fmt.Errorf("%w (%s offset %d)", err, path, off)
		}
		off += headerBytes + n
	}
}

// Hashes returns the recovered point hashes, sorted — a deterministic
// view for tests and logs.
func (r *Recovered) Hashes() []string {
	out := make([]string, 0, len(r.Points))
	for h := range r.Points {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}
