// Package netlist is the declarative component-graph layer over the
// simulation kernel: models declare Modules (a process body or a
// structural elaboration hook, plus typed in/out Ports) and Channels
// (depth, burst hint, optional traffic weight), and Build elaborates the
// graph onto N kernels.
//
// The paper's Smart-FIFO temporal decoupling is topology-agnostic — any
// process network wired with dated FIFOs gets accurate loosely-timed
// simulation — so the netlist turns topology itself into a first-class,
// sweepable axis:
//
//   - within a kernel a channel elaborates as a plain core.SmartFIFO (or a
//     regular/sync FIFO for reference builds);
//   - at every cut edge — a channel whose writer and reader modules land
//     on different shards — Build auto-inserts a core.ShardedFIFO bridge
//     and registers it with the conservative coordinator (internal/par).
//     Because the bridge reproduces single-kernel Smart-FIFO dates
//     exactly, the partitioning never changes the dated behaviour: every
//     partitioner at every shard count yields the same dated logs as the
//     single-kernel build (pinned by the package's trace-equivalence
//     tests);
//   - pluggable Partitioners (single, roundrobin, mincut, profiled)
//     assign colocation units to shards; a traffic-weighted greedy
//     min-cut minimizes bridge crossings.
//
// Modules that must share a kernel (a bus and the cores behind it, a NoC
// mesh and its network interfaces) declare a common colocation group; the
// partitioner places each group as one unit.
//
// The "profiled" partitioner closes the loop from measured traffic to
// placement: run the model once (typically single-kernel), harvest
// Build.Profile — per-channel word counts and per-module dispatch
// counts — and feed the artifact back through Options.Profile. Build
// re-weights the unit graph with the measured counters, runs the same
// greedy min-cut, and keeps the measured placement only when it
// dominates the hint-driven one on both crossings and cut weight
// (Build.Placement reports both costs). Profiles are
// schedule-independent: word and dispatch counts are facts of the
// model's dated behaviour, which every partitioning reproduces exactly,
// so a profile harvested under any schedule is valid for every build of
// the same model and never goes stale in a ProfileCache.
package netlist

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/fifo"
	"repro/internal/par"
	"repro/internal/sim"
)

// Graph is a netlist under construction: a set of modules and the typed
// channels connecting their ports. Declaration order is elaboration order
// (channels first, then modules), so thread processes start in module
// declaration order — exactly like a hand-wired build that creates its
// threads in source order.
type Graph struct {
	name    string
	modules []*Module
	chans   []chanDecl

	// Duplicate-name detection in O(1) per declaration: generated
	// topologies declare thousands of modules and channels.
	moduleNames map[string]bool
	chanNames   map[string]bool
}

// New returns an empty graph. The name seeds the kernel names.
func New(name string) *Graph {
	return &Graph{
		name:        name,
		moduleNames: map[string]bool{},
		chanNames:   map[string]bool{},
	}
}

// Name returns the graph name.
func (g *Graph) Name() string { return g.name }

// Module is one component of the graph: either a thread process body or a
// structural elaboration hook, plus the ports bound to it by the channels.
type Module struct {
	g      *Graph
	idx    int
	name   string
	group  string
	weight float64

	body func(p *sim.Process) // thread module
	elab func(k *sim.Kernel)  // structural module
}

// Thread declares a module whose behaviour is a single thread process; the
// body runs on whatever kernel the partitioner assigns the module to.
func (g *Graph) Thread(name string, body func(p *sim.Process)) *Module {
	return g.add(&Module{name: name, body: body})
}

// Structural declares a module elaborated by a hook instead of a single
// process body: the hook runs once during Build, on the module's assigned
// kernel, and may instantiate any sub-structure (a bus, a NoC mesh plus
// its network interfaces, an accelerator). Ports bound to the module are
// resolved before the hook runs.
func (g *Graph) Structural(name string, elab func(k *sim.Kernel)) *Module {
	return g.add(&Module{name: name, elab: elab})
}

func (g *Graph) add(m *Module) *Module {
	if g.moduleNames[m.name] {
		panic(fmt.Sprintf("netlist: %s: duplicate module %q", g.name, m.name))
	}
	g.moduleNames[m.name] = true
	m.g = g
	m.idx = len(g.modules)
	m.weight = 1
	g.modules = append(g.modules, m)
	return m
}

// Name returns the module name.
func (m *Module) Name() string { return m.name }

// Body sets (or replaces) a thread module's process body. Declaring a
// module with a nil body and setting it afterwards lets the body close
// over ports bound to the module after its declaration.
func (m *Module) Body(body func(p *sim.Process)) *Module {
	if m.elab != nil {
		panic(fmt.Sprintf("netlist: %s: structural module %q cannot take a thread body", m.g.name, m.name))
	}
	m.body = body
	return m
}

// Elab sets (or replaces) a structural module's elaboration hook, the
// deferred-declaration twin of Body.
func (m *Module) Elab(elab func(k *sim.Kernel)) *Module {
	if m.body != nil {
		panic(fmt.Sprintf("netlist: %s: thread module %q cannot take an elaboration hook", m.g.name, m.name))
	}
	m.elab = elab
	return m
}

// InGroup assigns the module to a colocation group: all modules of a group
// elaborate onto the same kernel and are placed by the partitioner as one
// unit. Modules with no group are units of their own.
func (m *Module) InGroup(group string) *Module {
	m.group = group
	return m
}

// WithWeight sets the module's compute-weight hint (default 1) used by
// balancing partitioners. Zero is allowed and means "no measurable
// compute": the balancer still counts the module as one unit of
// schedulable work (see Graph.units), it just adds no hint weight of
// its own on top of that floor.
func (m *Module) WithWeight(w float64) *Module {
	if w < 0 {
		panic(fmt.Sprintf("netlist: %s: negative module weight %v", m.name, w))
	}
	m.weight = w
	return m
}

// chanMeta is the type-erased channel metadata the graph core works with.
type chanMeta struct {
	idx    int
	name   string
	depth  int
	weight float64 // explicit traffic weight (0 = derive from burst hint)
	burst  int     // burst hint (words per bulk transfer)
	writer int     // writing module index, -1 while unbound
	reader int     // reading module index, -1 while unbound
}

// trafficWeight is the edge weight the partitioners see: the explicit
// weight when set, otherwise the burst hint (a bursty channel carries
// proportionally more words per annotation), otherwise 1.
func (cm *chanMeta) trafficWeight() float64 {
	if cm.weight > 0 {
		return cm.weight
	}
	if cm.burst > 1 {
		return float64(cm.burst)
	}
	return 1
}

// chanDecl is the graph-facing interface of a typed channel.
type chanDecl interface {
	meta() *chanMeta
	// elabLocal creates the in-kernel implementation on k.
	elabLocal(k *sim.Kernel, impl ChanImpl)
	// elabBridge creates a cross-shard bridge from wk to rk.
	elabBridge(wk, rk *sim.Kernel) par.Bridge
	// profileTraffic reads the elaborated channel's traffic counters
	// (see profile.go); ok is false when the implementation has none.
	profileTraffic() (core.ChanTraffic, bool)
}

// Chan is a typed channel declaration: one writer port, one reader port, a
// depth in cells, and optional partitioning hints. The concrete
// implementation (Smart FIFO, regular FIFO, sync FIFO or sharded bridge)
// is chosen at Build.
type Chan[T any] struct {
	g *Graph
	chanMeta

	// Resolved endpoints, valid after Build; br is the bridge when the
	// channel elaborated across a cut edge (its traffic counters feed
	// Build.Profile).
	w  fifo.WriteEnd[T]
	r  fifo.ReadEnd[T]
	br par.Bridge
}

// AddChan declares a channel of the given depth.
func AddChan[T any](g *Graph, name string, depth int) *Chan[T] {
	if depth <= 0 {
		panic(fmt.Sprintf("netlist: %s: channel %q: non-positive depth %d", g.name, name, depth))
	}
	if g.chanNames[name] {
		panic(fmt.Sprintf("netlist: %s: duplicate channel %q", g.name, name))
	}
	g.chanNames[name] = true
	c := &Chan[T]{g: g, chanMeta: chanMeta{
		idx: len(g.chans), name: name, depth: depth, writer: -1, reader: -1,
	}}
	g.chans = append(g.chans, c)
	return c
}

// WithWeight sets the channel's traffic weight: the cost the min-cut
// partitioner pays for turning this channel into a cross-shard bridge.
func (c *Chan[T]) WithWeight(w float64) *Chan[T] {
	if w <= 0 {
		panic(fmt.Sprintf("netlist: channel %q: non-positive weight %v", c.name, w))
	}
	c.weight = w
	return c
}

// WithBurst records the expected words-per-bulk-transfer hint. It feeds
// the default traffic weight (bursty channels are more expensive to cut)
// and documents the access pattern.
func (c *Chan[T]) WithBurst(words int) *Chan[T] {
	c.burst = words
	return c
}

// meta implements chanDecl.
func (c *Chan[T]) meta() *chanMeta { return &c.chanMeta }

// OutPort is a module's typed handle on the writing side of a channel.
type OutPort[T any] struct{ c *Chan[T] }

// InPort is a module's typed handle on the reading side of a channel.
type InPort[T any] struct{ c *Chan[T] }

// Output binds m as the channel's (sole) writing module and returns the
// out-port the module's body resolves with End.
func (c *Chan[T]) Output(m *Module) OutPort[T] {
	if m.g != c.g {
		panic(fmt.Sprintf("netlist: channel %q and module %q belong to different graphs", c.name, m.name))
	}
	if c.writer >= 0 {
		panic(fmt.Sprintf("netlist: channel %q already has writer %q", c.name, c.g.modules[c.writer].name))
	}
	c.writer = m.idx
	return OutPort[T]{c}
}

// Input binds m as the channel's (sole) reading module and returns the
// in-port the module's body resolves with End.
func (c *Chan[T]) Input(m *Module) InPort[T] {
	if m.g != c.g {
		panic(fmt.Sprintf("netlist: channel %q and module %q belong to different graphs", c.name, m.name))
	}
	if c.reader >= 0 {
		panic(fmt.Sprintf("netlist: channel %q already has reader %q", c.name, c.g.modules[c.reader].name))
	}
	c.reader = m.idx
	return InPort[T]{c}
}

// End resolves the port to the elaborated write endpoint: the channel
// itself when writer and reader share a kernel, the writer-side endpoint
// of the auto-inserted bridge otherwise. Valid only after Build.
func (p OutPort[T]) End() fifo.WriteEnd[T] {
	if p.c.w == nil {
		panic(fmt.Sprintf("netlist: out-port of channel %q used before Build", p.c.name))
	}
	return p.c.w
}

// End resolves the port to the elaborated read endpoint. Valid only after
// Build.
func (p InPort[T]) End() fifo.ReadEnd[T] {
	if p.c.r == nil {
		panic(fmt.Sprintf("netlist: in-port of channel %q used before Build", p.c.name))
	}
	return p.c.r
}

// Ends returns both resolved endpoints without going through ports — the
// escape hatch for layers (like kpn) whose channels may stay unbound in
// single-kernel builds. Valid only after Build.
func (c *Chan[T]) Ends() (fifo.WriteEnd[T], fifo.ReadEnd[T]) {
	if c.w == nil {
		panic(fmt.Sprintf("netlist: channel %q used before Build", c.name))
	}
	return c.w, c.r
}

// ChanImpl selects the in-kernel channel implementation of a build.
type ChanImpl int

const (
	// Smart elaborates channels as core.SmartFIFO — the paper's
	// contribution, and the only implementation that can be sharded (the
	// bridges carry its dates).
	Smart ChanImpl = iota
	// Plain elaborates channels as regular fifo.FIFO (the TDless /
	// untimed reference builds).
	Plain
	// Sync elaborates channels as fifo.SyncFIFO (the sync-on-every-access
	// §IV-C baseline).
	Sync
)

// String names the implementation.
func (i ChanImpl) String() string {
	switch i {
	case Smart:
		return "smart"
	case Plain:
		return "plain"
	case Sync:
		return "sync"
	}
	return fmt.Sprintf("ChanImpl(%d)", int(i))
}

func (c *Chan[T]) elabLocal(k *sim.Kernel, impl ChanImpl) {
	var ch fifo.Channel[T]
	switch impl {
	case Smart:
		ch = core.NewSmart[T](k, c.name, c.depth)
	case Plain:
		ch = fifo.New[T](k, c.name, c.depth)
	case Sync:
		ch = fifo.NewSync[T](k, c.name, c.depth)
	default:
		panic(fmt.Sprintf("netlist: channel %q: unknown implementation %v", c.name, impl))
	}
	c.w, c.r = ch, ch
}

func (c *Chan[T]) elabBridge(wk, rk *sim.Kernel) par.Bridge {
	b := core.NewSharded[T](wk, rk, c.name, c.depth)
	c.w, c.r = b.Writer(), b.Reader()
	c.br = b
	return b
}

// Options parameterizes Build.
type Options struct {
	// Shards is the number of kernels to elaborate onto (0 and 1 both
	// mean a single kernel, no coordinator).
	Shards int
	// Partitioner assigns colocation units to shards (nil: RoundRobin).
	Partitioner Partitioner
	// Impl is the in-kernel channel implementation (default Smart). Only
	// Smart builds can be sharded.
	Impl ChanImpl
	// Profile is the measured-traffic artifact consumed by the
	// "profiled" partitioner (harvested from a prior run of the same
	// model via Build.Profile). Required when Partitioner is Profiled
	// and Shards > 1; ignored otherwise.
	Profile *Profile
}

// Build is an elaborated graph: the kernels, the coordinator when sharded,
// and the partitioning outcome.
type Build struct {
	// Kernels are the shards, in index order. Single-kernel builds have
	// exactly one and no coordinator.
	Kernels []*sim.Kernel
	// Coord is the conservative barrier coordinator driving the shards;
	// nil for single-kernel builds.
	Coord *par.Coordinator
	// Assignment maps module index to shard index.
	Assignment []int
	// Crossings is the number of channels elaborated as cross-shard
	// bridges; CutWeight sums their traffic weights.
	Crossings int
	CutWeight float64
	// Bridges names the channels that became bridges, in declaration
	// order.
	Bridges []string
	// Placement is the before/after cost of a profile-guided build
	// (measured weights); nil for every other partitioner.
	Placement *PlacementCost

	g *Graph
	// procs records each module's elaborated processes (by module
	// index) so Profile can attribute dispatch counts to modules.
	procs [][]*sim.Process
}

// Build partitions the graph and elaborates it: kernels are created,
// every channel becomes a Smart FIFO (or the requested reference
// implementation) when its two ports share a shard and a ShardedFIFO
// bridge when they do not, and every module elaborates on its assigned
// kernel — structural hooks run immediately, thread bodies register as
// processes. A graph elaborates at most once.
func (g *Graph) Build(opt Options) (*Build, error) {
	shards := opt.Shards
	if shards < 1 {
		shards = 1
	}
	if len(g.modules) == 0 {
		return nil, fmt.Errorf("netlist: %s: graph has no modules", g.name)
	}
	for _, m := range g.modules {
		if m.body == nil && m.elab == nil {
			return nil, fmt.Errorf("netlist: %s: module %q has neither a thread body nor an elaboration hook", g.name, m.name)
		}
	}
	for _, d := range g.chans {
		cm := d.meta()
		if shards > 1 && (cm.writer < 0 || cm.reader < 0) {
			return nil, fmt.Errorf("netlist: %s: channel %q: unbound %s (sharded builds need both ports bound to locate cut edges)",
				g.name, cm.name, boundDesc(cm))
		}
	}
	if shards > 1 && opt.Impl != Smart {
		return nil, fmt.Errorf("netlist: %s: %v channels cannot be sharded (only Smart FIFOs carry the bridge dates)", g.name, opt.Impl)
	}

	units, unitOf := g.units()
	if shards > len(units) {
		return nil, fmt.Errorf("netlist: %s: %d shards but only %d partitionable units (%d modules; group colocated modules or lower the shard count)",
			g.name, shards, len(units), len(g.modules))
	}
	pg := g.partGraph(units, unitOf)
	p := opt.Partitioner
	if p == nil {
		p = RoundRobin
	}
	var placement *PlacementCost
	var ua []int
	if p.Name() == Profiled.Name() && shards > 1 {
		// The measurement→placement loop: cost the hint-driven greedy
		// min-cut under the measured weights, cut the measured graph,
		// and keep the measured placement only where it dominates the
		// hint placement on both crossings and cut weight — so a
		// profiled build never pays more than the static mincut would.
		if opt.Profile == nil {
			return nil, fmt.Errorf("netlist: %s: partitioner %q needs Options.Profile (run the model single-kernel and harvest Build.Profile)", g.name, p.Name())
		}
		mpg := g.measuredPartGraph(units, unitOf, opt.Profile)
		aHint := greedyMinCut(pg, shards)
		aMeas := greedyMinCut(mpg, shards)
		cb, wb := cutOf(mpg, aHint)
		ca, wa := cutOf(mpg, aMeas)
		if ca <= cb && wa <= wb {
			ua = aMeas
		} else {
			ua = aHint
			ca, wa = cb, wb
		}
		placement = &PlacementCost{
			CrossingsBefore: cb, CrossingsAfter: ca,
			CutWeightBefore: wb, CutWeightAfter: wa,
		}
		if nm := defaultNetlistMetrics.Load(); nm != nil {
			nm.Repartitions.Inc()
		}
	} else {
		ua = p.Partition(pg, shards)
	}
	if len(ua) != len(units) {
		return nil, fmt.Errorf("netlist: %s: partitioner %q returned %d assignments for %d units", g.name, p.Name(), len(ua), len(units))
	}
	for i, s := range ua {
		if s < 0 || s >= shards {
			return nil, fmt.Errorf("netlist: %s: partitioner %q assigned unit %q to shard %d of %d", g.name, p.Name(), units[i].Name, s, shards)
		}
	}

	b := &Build{
		g:          g,
		Assignment: make([]int, len(g.modules)),
		Placement:  placement,
		procs:      make([][]*sim.Process, len(g.modules)),
	}
	for mi := range g.modules {
		b.Assignment[mi] = ua[unitOf[mi]]
	}
	if shards == 1 {
		b.Kernels = []*sim.Kernel{sim.NewKernel(g.name)}
	} else {
		b.Coord = par.NewCoordinator()
		b.Kernels = make([]*sim.Kernel, shards)
		for i := range b.Kernels {
			b.Kernels[i] = sim.NewKernel(fmt.Sprintf("%s.s%d", g.name, i))
			b.Coord.AddShard(b.Kernels[i])
		}
	}

	// Channels first (they create only events, never processes), then
	// modules in declaration order so thread processes start in the same
	// order a hand-wired build would create them.
	for _, d := range g.chans {
		cm := d.meta()
		ws := b.shardOfChanSide(cm.writer, cm.reader)
		rs := b.shardOfChanSide(cm.reader, cm.writer)
		if ws == rs {
			d.elabLocal(b.Kernels[ws], opt.Impl)
			continue
		}
		bridge := d.elabBridge(b.Kernels[ws], b.Kernels[rs])
		b.Coord.AddBridge(bridge)
		b.Crossings++
		b.CutWeight += cm.trafficWeight()
		b.Bridges = append(b.Bridges, cm.name)
	}
	for _, m := range g.modules {
		k := b.Kernels[b.Assignment[m.idx]]
		if m.body != nil {
			b.procs[m.idx] = append(b.procs[m.idx], k.Thread(m.name, m.body))
		}
		if m.elab != nil {
			before := len(k.Processes())
			m.elab(k)
			b.procs[m.idx] = append(b.procs[m.idx], k.Processes()[before:]...)
		}
	}
	if shards > 1 {
		if nm := defaultNetlistMetrics.Load(); nm != nil {
			w := b.CutWeight
			if b.Placement != nil {
				w = b.Placement.CutWeightAfter
			}
			nm.CutWeight.Set(int64(w))
		}
	}
	return b, nil
}

// MustBuild is Build, panicking on error — for builders whose graphs are
// statically known to be valid.
func (g *Graph) MustBuild(opt Options) *Build {
	b, err := g.Build(opt)
	if err != nil {
		panic(err)
	}
	return b
}

// shardOfChanSide places one side of a channel: the bound module's shard,
// falling back to the other side's shard (then 0) for unbound sides —
// which only occur in single-shard builds, where every answer is 0.
func (b *Build) shardOfChanSide(side, other int) int {
	if side >= 0 {
		return b.Assignment[side]
	}
	if other >= 0 {
		return b.Assignment[other]
	}
	return 0
}

func boundDesc(cm *chanMeta) string {
	switch {
	case cm.writer < 0 && cm.reader < 0:
		return "writer and reader"
	case cm.writer < 0:
		return "writer"
	default:
		return "reader"
	}
}

// units collapses colocation groups: modules sharing a non-empty group
// form one unit (named after the group), every other module is a unit of
// its own. Units are ordered by first appearance, so a grouped model's
// unit order follows its declaration order. Every module contributes at
// least 1 to its unit's weight: a WithWeight(0) module is still a
// schedulable process the balancer must account for.
func (g *Graph) units() (units []Unit, unitOf []int) {
	unitOf = make([]int, len(g.modules))
	byGroup := map[string]int{}
	for i, m := range g.modules {
		w := m.weight
		if w <= 0 {
			w = 1
		}
		if m.group == "" {
			unitOf[i] = len(units)
			units = append(units, Unit{Name: m.name, Weight: w})
			continue
		}
		u, ok := byGroup[m.group]
		if !ok {
			u = len(units)
			byGroup[m.group] = u
			units = append(units, Unit{Name: m.group})
		}
		units[u].Weight += w
		unitOf[i] = u
	}
	return units, unitOf
}

// partGraph assembles the unit graph the partitioners see: units plus one
// edge per channel whose ports live in different units (unbound sides
// contribute no edge).
func (g *Graph) partGraph(units []Unit, unitOf []int) PartGraph {
	pg := PartGraph{Units: units}
	for _, d := range g.chans {
		cm := d.meta()
		if cm.writer < 0 || cm.reader < 0 {
			continue
		}
		a, b := unitOf[cm.writer], unitOf[cm.reader]
		if a == b {
			continue
		}
		pg.Edges = append(pg.Edges, Edge{A: a, B: b, Weight: cm.trafficWeight()})
	}
	return pg
}

// KernelOf returns the kernel the module elaborated onto.
func (b *Build) KernelOf(m *Module) *sim.Kernel {
	return b.Kernels[b.Assignment[m.idx]]
}

// Shards returns the number of kernels.
func (b *Build) Shards() int { return len(b.Kernels) }

// Run executes the build to quiescence (or to limit): Kernel.Run for a
// single kernel, the conservative coordinator for a sharded build.
func (b *Build) Run(limit sim.Time) {
	if b.Coord != nil {
		b.Coord.Run(limit)
		return
	}
	b.Kernels[0].Run(limit)
}

// RunGuarded is Run under the par supervisor: the run is interrupted
// when ctx ends or when no progress is made for the stall window
// carried by ctx (par.WithStallWindow; absent means no watchdog). It
// returns nil on completion, ctx.Err() on plain cancellation, and a
// *par.StallError with a structured diagnostic on deadline or stall.
// With a background ctx and no window it is exactly Run.
func (b *Build) RunGuarded(ctx context.Context, limit sim.Time) error {
	stall := par.StallWindowFrom(ctx)
	if b.Coord != nil {
		return b.Coord.RunGuarded(ctx, limit, stall)
	}
	return par.RunKernel(ctx, b.Kernels[0], limit, stall)
}

// Stats sums the kernel activity counters over the shards.
func (b *Build) Stats() sim.Stats {
	if b.Coord != nil {
		return b.Coord.KernelStats()
	}
	return b.Kernels[0].Stats()
}

// Advances returns the number of coordinator kernel advances (0 for a
// single-kernel build). Scheduler telemetry: the value depends on
// goroutine interleaving under the async coordinator, so never fold it
// into a deterministic model output.
func (b *Build) Advances() uint64 {
	if b.Coord == nil {
		return 0
	}
	return b.Coord.Stats().Advances
}

// Blocked reports the thread processes that are neither terminated nor
// runnable, per kernel — non-empty after an unlimited Run means the model
// deadlocked (or parks processes by design).
func (b *Build) Blocked() map[string][]string {
	if b.Coord != nil {
		return b.Coord.Blocked()
	}
	out := map[string][]string{}
	if bl := b.Kernels[0].Blocked(); len(bl) > 0 {
		out[b.Kernels[0].Name()] = bl
	}
	return out
}

// Shutdown force-terminates every kernel's live thread processes; call it
// when discarding the build.
func (b *Build) Shutdown() {
	for _, k := range b.Kernels {
		k.Shutdown()
	}
}
