package netlist

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestProfileHarvest pins the measured artifact: word counts are the
// exact words moved per channel, and every module has dispatches.
func TestProfileHarvest(t *testing.T) {
	g, _, _ := smallGraph(40, 4)
	b, err := g.Build(Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	b.Run(sim.RunForever)
	b.Shutdown()
	prof := b.Profile()
	for _, ch := range []string{"f1", "f2"} {
		cp, ok := prof.Channels[ch]
		if !ok {
			t.Fatalf("channel %q missing from profile: %v", ch, prof.Channels)
		}
		if cp.Words != 40 {
			t.Errorf("%s: %d words measured, want 40", ch, cp.Words)
		}
	}
	for _, m := range []string{"source", "relay", "sink"} {
		mp, ok := prof.Modules[m]
		if !ok || mp.Dispatches == 0 {
			t.Errorf("module %q: dispatches %d (present %v), want > 0", m, mp.Dispatches, ok)
		}
	}
}

// TestProfiledBuildNeedsProfile: a sharded profiled build without the
// measured artifact is a configuration error, not a silent fallback.
func TestProfiledBuildNeedsProfile(t *testing.T) {
	g, _, _ := smallGraph(4, 2)
	_, err := g.Build(Options{Shards: 2, Partitioner: Profiled})
	if err == nil || !strings.Contains(err.Error(), "Options.Profile") {
		t.Fatalf("err = %v, want an Options.Profile error", err)
	}
	// At one shard there is nothing to place: no profile needed.
	g2, _, _ := smallGraph(4, 2)
	b, err := g2.Build(Options{Shards: 1, Partitioner: Profiled})
	if err != nil {
		t.Fatalf("single-shard profiled build: %v", err)
	}
	b.Run(sim.RunForever)
	b.Shutdown()
}

// TestProfileGuidedBuild closes the loop by hand: harvest a single-kernel
// profile, feed it into a fresh sharded build, and check the dates stay
// byte-identical while the kept placement dominates the hint placement.
func TestProfileGuidedBuild(t *testing.T) {
	g, refDates, refSum := smallGraph(40, 4)
	b, err := g.Build(Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	b.Run(sim.RunForever)
	b.Shutdown()
	prof := b.Profile()

	for shards := 2; shards <= 3; shards++ {
		g2, dates, sum := smallGraph(40, 4)
		b2, err := g2.Build(Options{Shards: shards, Partitioner: Profiled, Profile: prof})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		b2.Run(sim.RunForever)
		b2.Shutdown()
		if *sum != *refSum || !reflect.DeepEqual(*dates, *refDates) {
			t.Fatalf("shards=%d: profiled build diverged from the single-kernel reference", shards)
		}
		pc := b2.Placement
		if pc == nil {
			t.Fatalf("shards=%d: no placement cost on a profiled build", shards)
		}
		if pc.CrossingsAfter > pc.CrossingsBefore || pc.CutWeightAfter > pc.CutWeightBefore {
			t.Fatalf("shards=%d: kept placement does not dominate: %+v", shards, pc)
		}
	}
}

// TestMeasuredPartGraphWeights: measured word counts replace hint edge
// weights, dispatch counts replace hint unit weights, and both floor at
// one so quiet parts stay schedulable.
func TestMeasuredPartGraphWeights(t *testing.T) {
	g, _, _ := smallGraph(8, 2)
	units, unitOf := g.units()
	prof := &Profile{
		Channels: map[string]ChanProfile{"f1": {Words: 500}, "f2": {Words: 0}},
		Modules:  map[string]ModuleProfile{"source": {Dispatches: 9}, "relay": {Dispatches: 0}},
	}
	pg := g.measuredPartGraph(units, unitOf, prof)
	byName := map[string]float64{}
	for _, u := range pg.Units {
		byName[u.Name] = u.Weight
	}
	if byName["source"] != 9 {
		t.Errorf("source weight = %v, want the 9 measured dispatches", byName["source"])
	}
	// relay measured zero dispatches, sink is absent: both floor at 1.
	if byName["relay"] != 1 || byName["sink"] != 1 {
		t.Errorf("relay/sink weights = %v/%v, want the 1-dispatch floor", byName["relay"], byName["sink"])
	}
	byEdge := map[[2]int]float64{}
	for _, e := range pg.Edges {
		byEdge[[2]int{e.A, e.B}] = e.Weight
	}
	if len(byEdge) != 2 {
		t.Fatalf("edges = %v, want f1 and f2", pg.Edges)
	}
	for k, w := range byEdge {
		if w != 500 && w != 1 {
			t.Errorf("edge %v weight %v, want 500 (measured) or 1 (floored zero)", k, w)
		}
	}
}

// TestProfileJSONRoundTrip: the artifact survives serialization, so it
// can live in files and caches between the two phases.
func TestProfileJSONRoundTrip(t *testing.T) {
	in := &Profile{
		Channels: map[string]ChanProfile{"c": {Words: 7, WriterBlocks: 2, ReaderBlocks: 1}},
		Modules:  map[string]ModuleProfile{"m": {Dispatches: 11}},
	}
	js, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Profile
	if err := json.Unmarshal(js, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, &out) {
		t.Fatalf("round trip: %+v != %+v", &out, in)
	}
}

// TestZeroWeightModulesSchedulable: WithWeight(0) modules still count as
// one unit of schedulable work each, so a build of only zero-weight
// modules still fills every shard.
func TestZeroWeightModulesSchedulable(t *testing.T) {
	g, _, _ := smallGraph(4, 2)
	for _, m := range g.modules {
		m.WithWeight(0)
	}
	b, err := g.Build(Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{}
	for _, s := range b.Assignment {
		used[s] = true
	}
	if len(used) != 3 {
		t.Fatalf("zero-weight modules landed on %d of 3 shards: %v", len(used), b.Assignment)
	}
	b.Run(sim.RunForever)
	b.Shutdown()

	defer func() {
		if recover() == nil {
			t.Fatal("negative weight did not panic")
		}
	}()
	New("neg").Thread("m", nil).WithWeight(-1)
}

// TestPlacementCostCounters covers the counter fold, including the nil
// no-op every unprofiled model path relies on.
func TestPlacementCostCounters(t *testing.T) {
	m := map[string]uint64{"existing": 1}
	(*PlacementCost)(nil).AddCounters(m)
	if len(m) != 1 {
		t.Fatalf("nil placement touched the counters: %v", m)
	}
	pc := &PlacementCost{CrossingsBefore: 3, CrossingsAfter: 1, CutWeightBefore: 40, CutWeightAfter: 8}
	pc.AddCounters(m)
	if m["crossings_before"] != 3 || m["crossings_after"] != 1 ||
		m["cut_weight_before"] != 40 || m["cut_weight_after"] != 8 {
		t.Fatalf("counters = %v", m)
	}
}

// TestProfileCache covers hit, miss and the overflow clear.
func TestProfileCache(t *testing.T) {
	c := NewProfileCache()
	if _, ok := c.Get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	p := &Profile{}
	c.Put("k", p)
	if got, ok := c.Get("k"); !ok || got != p {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	for i := 0; i < profileCacheLimit; i++ {
		c.Put(i, p)
	}
	if len(c.m) > profileCacheLimit {
		t.Fatalf("cache grew to %d entries past the limit", len(c.m))
	}
}
