package netlist

import (
	"sync/atomic"

	"repro/internal/metrics"
)

// Metrics is the shared sink for partitioning activity. All fields may
// be nil (updates no-op).
type Metrics struct {
	// Repartitions counts profile-guided repartitions: sharded builds
	// that re-weighted the unit graph with a measured profile.
	Repartitions *metrics.Counter
	// CutWeight is the summed edge weight cut by the most recent
	// sharded placement (measured weight for profiled builds, hint
	// weight otherwise), truncated to an integer.
	CutWeight *metrics.Gauge
}

// defaultNetlistMetrics is loaded by Build; atomic so enabling can race
// concurrent builds in tests.
var defaultNetlistMetrics atomic.Pointer[Metrics]

// EnableMetrics registers the partitioning family on r and makes every
// subsequent Build publish into it. A nil registry disables publication.
func EnableMetrics(r *metrics.Registry) {
	if r == nil {
		defaultNetlistMetrics.Store(nil)
		return
	}
	defaultNetlistMetrics.Store(&Metrics{
		Repartitions: r.Counter("netlist_repartitions_total", "Profile-guided repartitions (sharded builds re-weighted by a measured profile)."),
		CutWeight:    r.Gauge("netlist_cut_weight", "Summed edge weight cut by the most recent sharded placement."),
	})
}
