package netlist

import (
	"fmt"
	"sort"
)

// Unit is one partitionable element of the unit graph: a module, or a
// colocation group of modules, with its summed compute weight.
type Unit struct {
	Name   string
	Weight float64
}

// Edge is a channel between two units, carrying its traffic weight.
// Parallel channels stay separate edges; partitioners merge as needed.
type Edge struct {
	A, B   int
	Weight float64
}

// PartGraph is the view of a graph a Partitioner sees: the colocation
// units and the weighted cross-unit channels.
type PartGraph struct {
	Units []Unit
	Edges []Edge
}

// Partitioner assigns units to shards. Implementations must be
// deterministic — equal inputs give equal assignments — because the
// assignment participates in reproducible campaign outcomes. Partitioning
// never changes dated results (bridges are date-exact); it only changes
// how much traffic crosses shard boundaries.
type Partitioner interface {
	// Name is the registry key ("single", "roundrobin", "mincut",
	// "profiled").
	Name() string
	// Partition returns one shard index in [0, shards) per unit. Build
	// guarantees 1 <= shards <= len(pg.Units).
	Partition(pg PartGraph, shards int) []int
}

// Single places every unit on shard 0: the degenerate partitioning whose
// build is exactly the classic single-kernel model (zero crossings), the
// baseline the equivalence tests pin everything else against.
var Single Partitioner = singlePart{}

type singlePart struct{}

func (singlePart) Name() string { return "single" }

func (singlePart) Partition(pg PartGraph, shards int) []int {
	return make([]int, len(pg.Units))
}

// RoundRobin deals units to shards in declaration order (unit i on shard
// i mod N) — the modulo mapping the hand-wired sharded builds used, kept
// as the default for reproducibility.
var RoundRobin Partitioner = roundRobinPart{}

type roundRobinPart struct{}

func (roundRobinPart) Name() string { return "roundrobin" }

func (roundRobinPart) Partition(pg PartGraph, shards int) []int {
	out := make([]int, len(pg.Units))
	for i := range out {
		out[i] = i % shards
	}
	return out
}

// MinCut is a traffic-weighted greedy min-cut: units are placed in
// decreasing order of adjacent traffic, each onto the shard where the most
// already-placed traffic keeps it company — subject to a soft compute
// balance bound and to leaving no shard empty. It minimizes bridge
// crossings, the quantity that throttles the conservative coordinator.
var MinCut Partitioner = minCutPart{}

type minCutPart struct{}

func (minCutPart) Name() string { return "mincut" }

func (minCutPart) Partition(pg PartGraph, shards int) []int {
	return greedyMinCut(pg, shards)
}

// Profiled is the measured twin of MinCut: the same greedy min-cut, but
// Build re-weights the unit graph with a measured Profile first — edges
// carry observed word counts instead of hints, units carry observed
// dispatch counts — and keeps the measured placement only where it
// dominates the hint placement on both cut weight and crossings (so a
// profiled build never cuts more than the static mincut would). Used
// directly on an un-reweighted graph it behaves exactly like MinCut.
var Profiled Partitioner = profiledPart{}

type profiledPart struct{}

func (profiledPart) Name() string { return "profiled" }

func (profiledPart) Partition(pg PartGraph, shards int) []int {
	return greedyMinCut(pg, shards)
}

func greedyMinCut(pg PartGraph, shards int) []int {
	n := len(pg.Units)
	// Merged adjacency and per-unit total traffic.
	adj := make([]map[int]float64, n)
	for i := range adj {
		adj[i] = map[int]float64{}
	}
	degree := make([]float64, n)
	for _, e := range pg.Edges {
		if e.A == e.B {
			continue
		}
		adj[e.A][e.B] += e.Weight
		adj[e.B][e.A] += e.Weight
		degree[e.A] += e.Weight
		degree[e.B] += e.Weight
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if degree[order[a]] != degree[order[b]] {
			return degree[order[a]] > degree[order[b]]
		}
		return order[a] < order[b]
	})

	total := 0.0
	for _, u := range pg.Units {
		total += u.Weight
	}
	// Soft balance cap: a shard may exceed its fair share by 25% before
	// the greedy stops preferring it (hard overflows are still allowed
	// when every shard is over — cut quality beats balance).
	softCap := total / float64(shards) * 1.25

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	load := make([]float64, shards)
	count := make([]int, shards)
	empty := shards
	for placed, ui := range order {
		remaining := n - placed // units not yet placed, including ui
		// Leaving-no-shard-empty feasibility: placing ui on a non-empty
		// shard must leave enough units for the still-empty shards.
		mustFillEmpty := remaining-1 < empty
		gain := make([]float64, shards)
		for nb, w := range adj[ui] {
			if s := assign[nb]; s >= 0 {
				gain[s] += w
			}
		}
		best := -1
		bestKey := [3]float64{}
		for s := 0; s < shards; s++ {
			if mustFillEmpty && count[s] > 0 {
				continue
			}
			// Rank: most co-located traffic, then within the soft cap,
			// then least loaded, then lowest index (determinism).
			key := [3]float64{gain[s], 0, -load[s]}
			if load[s]+pg.Units[ui].Weight <= softCap {
				key[1] = 1
			}
			if best < 0 || keyLess(bestKey, key) {
				best, bestKey = s, key
			}
		}
		if count[best] == 0 {
			empty--
		}
		assign[ui] = best
		load[best] += pg.Units[ui].Weight
		count[best]++
	}
	return assign
}

// cutOf costs an assignment against a unit graph: how many edges it
// cuts (one per channel, matching Build.Crossings) and their summed
// weight.
func cutOf(pg PartGraph, assign []int) (crossings int, weight float64) {
	for _, e := range pg.Edges {
		if e.A != e.B && assign[e.A] != assign[e.B] {
			crossings++
			weight += e.Weight
		}
	}
	return crossings, weight
}

// keyLess reports whether candidate key b beats a (lexicographic,
// larger-is-better).
func keyLess(a, b [3]float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// partitioners is the name registry behind the -partitioner flags and the
// scenario "partitioner" parameter.
var partitioners = map[string]Partitioner{
	Single.Name():     Single,
	RoundRobin.Name(): RoundRobin,
	MinCut.Name():     MinCut,
	Profiled.Name():   Profiled,
}

// PartitionerNames returns the registered partitioner names, sorted.
func PartitionerNames() []string {
	names := make([]string, 0, len(partitioners))
	for n := range partitioners {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PartitionerByName resolves a partitioner; the empty name means the
// default (RoundRobin, the hand-wired builds' modulo mapping).
func PartitionerByName(name string) (Partitioner, error) {
	if name == "" {
		return RoundRobin, nil
	}
	p, ok := partitioners[name]
	if !ok {
		return nil, fmt.Errorf("netlist: unknown partitioner %q (have %v)", name, PartitionerNames())
	}
	return p, nil
}
