package netlist

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Topo describes a generated dataflow topology: a family of process
// networks over uint32 words whose stages annotate seeded per-stage rates
// and whose sinks record dated completions — the topology axis of a
// campaign sweep. All four kinds are Kahn networks (blocking reads and
// writes in a fixed order, no channel peeking), so their dated logs are
// schedule-independent: the same for every partitioner at every shard
// count, and for the decoupled build versus the synchronized reference.
type Topo struct {
	// Kind is "chain", "ring", "tree" or "mesh".
	Kind string
	// Stages is the chain/ring length (>= 2).
	Stages int
	// Width and Height size the mesh wavefront (>= 1 each).
	Width, Height int
	// Arity and Levels size the reduction tree: Arity^Levels leaf
	// sources merging level by level into the root sink (arity >= 2,
	// levels >= 1).
	Arity, Levels int
	// Depth is the channel depth in cells.
	Depth int
	// Words is the number of words each source injects.
	Words int
	// Decoupled selects Smart FIFOs + Inc (true) or regular FIFOs + Wait
	// (the reference).
	Decoupled bool
	// RateSeed and PaySeed derive the per-stage rate schedules and the
	// source payloads (typically both drawn from scenario.Rand).
	RateSeed, PaySeed int64
}

// Validate checks the topology parameters for the requested kind. Sizes
// are bounded (stages/nodes <= 1024, tree leaves <= 256) so a campaign
// spec — user input to cmd/simd — cannot request a graph whose mere
// construction exhausts memory; the bounds are checked directly on each
// parameter before any product is computed, so they cannot be bypassed
// by overflow.
func (t Topo) Validate() error {
	if t.Depth < 1 || t.Words < 1 {
		return fmt.Errorf("netlist: topology needs depth >= 1 and words >= 1")
	}
	switch t.Kind {
	case "chain", "ring":
		if t.Stages < 2 || t.Stages > 1024 {
			return fmt.Errorf("netlist: %s topology needs 2 <= stages <= 1024 (got %d)", t.Kind, t.Stages)
		}
	case "tree":
		if t.Arity < 2 || t.Arity > 16 {
			return fmt.Errorf("netlist: tree topology needs 2 <= arity <= 16 (got %d)", t.Arity)
		}
		if t.Levels < 1 || t.Levels > 8 {
			return fmt.Errorf("netlist: tree topology needs 1 <= levels <= 8 (got %d)", t.Levels)
		}
		if pow(t.Arity, t.Levels) > 256 {
			return fmt.Errorf("netlist: tree topology with %d leaves exceeds 256", pow(t.Arity, t.Levels))
		}
	case "mesh":
		if t.Width < 1 || t.Width > 1024 || t.Height < 1 || t.Height > 1024 {
			return fmt.Errorf("netlist: mesh topology needs width and height in 1..1024 (got %dx%d)", t.Width, t.Height)
		}
		if n := t.Width * t.Height; n < 2 || n > 1024 {
			return fmt.Errorf("netlist: mesh topology needs 2 <= width x height <= 1024 nodes (got %d)", n)
		}
	default:
		return fmt.Errorf("netlist: unknown topology kind %q (want chain, ring, tree or mesh)", t.Kind)
	}
	return nil
}

// TopoProbe collects the deterministic results of a generated topology
// run. Each sink module owns its slot, so concurrent shards never share a
// slice.
type TopoProbe struct {
	sinks []string     // sink module names, declaration order
	dates [][]sim.Time // per sink, the dated completion log
	sums  []uint64     // per sink, the payload checksum
}

// Sinks returns the sink module names in declaration order.
func (p *TopoProbe) Sinks() []string { return p.sinks }

// Dates returns sink s's dated completion log.
func (p *TopoProbe) Dates(s int) []sim.Time { return p.dates[s] }

// Checksums returns the per-sink payload checksums.
func (p *TopoProbe) Checksums() []uint64 { return append([]uint64(nil), p.sums...) }

// SimEnd returns the latest dated completion across the sinks.
func (p *TopoProbe) SimEnd() sim.Time {
	var end sim.Time
	for _, ds := range p.dates {
		for _, d := range ds {
			if d > end {
				end = d
			}
		}
	}
	return end
}

func (p *TopoProbe) addSink(name string) int {
	p.sinks = append(p.sinks, name)
	p.dates = append(p.dates, nil)
	p.sums = append(p.sums, 0)
	return len(p.sinks) - 1
}

// NewTopoGraph generates the graph for t and the probe its sinks fill
// while running. Stage s's per-word delay schedule is
// workload.Random(RateSeed+s, 6, 2ns)+1ns, sampled per word index —
// seeded, deterministic and different per stage.
func NewTopoGraph(t Topo) (*Graph, *TopoProbe, error) {
	if err := t.Validate(); err != nil {
		return nil, nil, err
	}
	g := New("topo-" + t.Kind)
	p := &TopoProbe{}
	b := topoBuilder{t: t, g: g, probe: p}
	switch t.Kind {
	case "chain":
		b.chain()
	case "ring":
		b.ring()
	case "tree":
		b.tree()
	case "mesh":
		b.mesh()
	}
	return g, p, nil
}

// topoBuilder shares the stage-body helpers across the four kinds.
type topoBuilder struct {
	t     Topo
	g     *Graph
	probe *TopoProbe
	stage int // next stage ordinal, feeds the per-stage rate seed
}

// delay returns the annotation function of the build mode.
func (b *topoBuilder) delay(p *sim.Process) func(sim.Time) {
	if b.t.Decoupled {
		return p.Inc
	}
	return p.Wait
}

// rate allocates the next per-stage word-delay schedule.
func (b *topoBuilder) rate() workload.Rate {
	r := workload.Random(b.t.RateSeed+int64(b.stage), 6, 2*sim.NS)
	b.stage++
	return func(i int) sim.Time { return r(i) + sim.NS }
}

// transform is the per-hop payload function.
func transform(v uint32, stage int) uint32 { return v*3 + uint32(stage) }

// chain builds s0 -> c0 -> s1 -> ... -> s{n-1}: stage 0 generates, middle
// stages transform, the last stage checksums and logs dated completions.
func (b *topoBuilder) chain() {
	t := b.t
	chans := make([]*Chan[uint32], t.Stages-1)
	for i := range chans {
		chans[i] = AddChan[uint32](b.g, fmt.Sprintf("c%d", i), t.Depth)
	}
	for s := 0; s < t.Stages; s++ {
		s := s
		rate := b.rate()
		m := b.g.Thread(fmt.Sprintf("n%d", s), nil)
		var in InPort[uint32]
		var out OutPort[uint32]
		if s > 0 {
			in = chans[s-1].Input(m)
		}
		if s < t.Stages-1 {
			out = chans[s].Output(m)
		}
		switch {
		case s == 0:
			m.body = func(p *sim.Process) {
				delay := b.delay(p)
				w := out.End()
				for i := 0; i < t.Words; i++ {
					w.Write(workload.WordAt(t.PaySeed, i))
					delay(rate(i))
				}
			}
		case s < t.Stages-1:
			m.body = func(p *sim.Process) {
				delay := b.delay(p)
				r, w := in.End(), out.End()
				for i := 0; i < t.Words; i++ {
					v := r.Read()
					delay(rate(i))
					w.Write(transform(v, s))
				}
			}
		default:
			slot := b.probe.addSink(m.name)
			m.body = func(p *sim.Process) {
				delay := b.delay(p)
				r := in.End()
				sum := uint64(0)
				for i := 0; i < t.Words; i++ {
					v := r.Read()
					delay(rate(i))
					sum = workload.Checksum(sum, v)
					b.probe.dates[slot] = append(b.probe.dates[slot], p.LocalTime())
				}
				b.probe.sums[slot] = sum
			}
		}
	}
}

// ring builds n stages in a cycle. Stage 0 is the pump: it keeps at most
// prime = min(depth, words) words in flight (so the bounded cycle can
// never deadlock), reading each word back off the closing channel,
// checksumming and logging it. Other stages forward with a transform.
func (b *topoBuilder) ring() {
	t := b.t
	chans := make([]*Chan[uint32], t.Stages)
	for i := range chans {
		chans[i] = AddChan[uint32](b.g, fmt.Sprintf("c%d", i), t.Depth)
	}
	prime := t.Depth
	if t.Words < prime {
		prime = t.Words
	}
	for s := 0; s < t.Stages; s++ {
		s := s
		rate := b.rate()
		m := b.g.Thread(fmt.Sprintf("n%d", s), nil)
		in := chans[(s+t.Stages-1)%t.Stages].Input(m)
		out := chans[s].Output(m)
		if s == 0 {
			slot := b.probe.addSink(m.name)
			m.body = func(p *sim.Process) {
				delay := b.delay(p)
				r, w := in.End(), out.End()
				sum := uint64(0)
				take := func(i int) {
					v := r.Read()
					delay(rate(i))
					sum = workload.Checksum(sum, v)
					b.probe.dates[slot] = append(b.probe.dates[slot], p.LocalTime())
				}
				for i := 0; i < t.Words; i++ {
					if i >= prime {
						take(i)
					}
					w.Write(workload.WordAt(t.PaySeed, i))
					delay(rate(i))
				}
				for i := 0; i < prime; i++ {
					take(t.Words + i)
				}
				b.probe.sums[slot] = sum
			}
			continue
		}
		m.body = func(p *sim.Process) {
			delay := b.delay(p)
			r, w := in.End(), out.End()
			for i := 0; i < t.Words; i++ {
				v := r.Read()
				delay(rate(i))
				w.Write(transform(v, s))
			}
		}
	}
}

// tree builds an Arity-ary reduction tree of depth Levels: Arity^Levels
// leaf sources inject seeded words; each internal node reads one word
// from every child, folds them, and emits the fold; the root checksums
// and logs dated completions. Modules declare leaves-to-root so data
// producers start first.
func (b *topoBuilder) tree() {
	t := b.t
	// level l has Arity^l nodes; build from the leaf level down to 0.
	leafLevel := t.Levels
	prev := []*Chan[uint32]{} // channels produced by the level below (towards parents)
	for l := leafLevel; l >= 0; l-- {
		nodes := pow(t.Arity, l)
		var up []*Chan[uint32]
		if l > 0 {
			up = make([]*Chan[uint32], nodes)
			for i := range up {
				up[i] = AddChan[uint32](b.g, fmt.Sprintf("l%d.c%d", l, i), t.Depth)
			}
		}
		if l == leafLevel {
			for i := 0; i < nodes; i++ {
				i := i
				rate := b.rate()
				m := b.g.Thread(fmt.Sprintf("leaf%d", i), nil)
				out := up[i].Output(m)
				m.body = func(p *sim.Process) {
					delay := b.delay(p)
					w := out.End()
					for j := 0; j < t.Words; j++ {
						w.Write(workload.WordAt(t.PaySeed+int64(i), j))
						delay(rate(j))
					}
				}
			}
		} else {
			for i := 0; i < nodes; i++ {
				i := i
				rate := b.rate()
				m := b.g.Thread(fmt.Sprintf("l%d.n%d", l, i), nil)
				ins := make([]InPort[uint32], t.Arity)
				for a := 0; a < t.Arity; a++ {
					ins[a] = prev[i*t.Arity+a].Input(m)
				}
				if l > 0 {
					out := up[i].Output(m)
					m.body = func(p *sim.Process) {
						delay := b.delay(p)
						w := out.End()
						for j := 0; j < t.Words; j++ {
							acc := uint32(0)
							for _, in := range ins {
								acc = acc*31 + in.End().Read()
							}
							delay(rate(j))
							w.Write(transform(acc, l))
						}
					}
				} else {
					slot := b.probe.addSink(m.name)
					m.body = func(p *sim.Process) {
						delay := b.delay(p)
						sum := uint64(0)
						for j := 0; j < t.Words; j++ {
							acc := uint32(0)
							for _, in := range ins {
								acc = acc*31 + in.End().Read()
							}
							delay(rate(j))
							sum = workload.Checksum(sum, acc)
							b.probe.dates[slot] = append(b.probe.dates[slot], p.LocalTime())
						}
						b.probe.sums[slot] = sum
					}
				}
			}
		}
		prev = up
	}
}

// mesh builds a Width x Height wavefront: cell (x,y) reads from its west
// and north neighbours (cells with none generate), transforms, and writes
// copies east and south. The channel graph is a DAG, so any depth >= 1 is
// deadlock-free. Cells on the east or south boundary checksum the copies
// they drop off-grid and log dated completions — the wavefront's sinks.
func (b *topoBuilder) mesh() {
	t := b.t
	idx := func(x, y int) int { return y*t.Width + x }
	east := make([]*Chan[uint32], t.Width*t.Height) // east[i]: cell i -> (x+1,y)
	south := make([]*Chan[uint32], t.Width*t.Height)
	for y := 0; y < t.Height; y++ {
		for x := 0; x < t.Width; x++ {
			if x < t.Width-1 {
				east[idx(x, y)] = AddChan[uint32](b.g, fmt.Sprintf("e%d.%d", x, y), t.Depth)
			}
			if y < t.Height-1 {
				south[idx(x, y)] = AddChan[uint32](b.g, fmt.Sprintf("s%d.%d", x, y), t.Depth)
			}
		}
	}
	for y := 0; y < t.Height; y++ {
		for x := 0; x < t.Width; x++ {
			x, y := x, y
			rate := b.rate()
			m := b.g.Thread(fmt.Sprintf("m%d.%d", x, y), nil)
			var west, north InPort[uint32]
			var toEast, toSouth OutPort[uint32]
			hasWest, hasNorth := x > 0, y > 0
			hasEast, hasSouth := x < t.Width-1, y < t.Height-1
			if hasWest {
				west = east[idx(x-1, y)].Input(m)
			}
			if hasNorth {
				north = south[idx(x, y-1)].Input(m)
			}
			if hasEast {
				toEast = east[idx(x, y)].Output(m)
			}
			if hasSouth {
				toSouth = south[idx(x, y)].Output(m)
			}
			isSink := !hasEast || !hasSouth
			slot := -1
			if isSink {
				slot = b.probe.addSink(m.name)
			}
			stage := idx(x, y)
			m.body = func(p *sim.Process) {
				delay := b.delay(p)
				sum := uint64(0)
				for i := 0; i < t.Words; i++ {
					v := workload.WordAt(t.PaySeed+int64(stage), i)
					if hasWest {
						v = v*31 + west.End().Read()
					}
					if hasNorth {
						v = v*31 + north.End().Read()
					}
					delay(rate(i))
					v = transform(v, stage)
					// Each dropped copy (east or south, both at the
					// bottom-right corner) folds into the checksum.
					if hasEast {
						toEast.End().Write(v)
					} else {
						sum = workload.Checksum(sum, v)
					}
					if hasSouth {
						toSouth.End().Write(v)
					} else {
						sum = workload.Checksum(sum, v)
					}
					if isSink {
						b.probe.dates[slot] = append(b.probe.dates[slot], p.LocalTime())
					}
				}
				if isSink {
					b.probe.sums[slot] = sum
				}
			}
		}
	}
}

func pow(a, b int) int {
	out := 1
	for i := 0; i < b; i++ {
		out *= a
	}
	return out
}
