package netlist

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/scenario"
	"repro/internal/trace"
)

// topoCases are the shapes the equivalence suite sweeps.
var topoCases = []Topo{
	{Kind: "chain", Stages: 5, Depth: 1, Words: 24},
	{Kind: "chain", Stages: 5, Depth: 4, Words: 24},
	{Kind: "ring", Stages: 4, Depth: 2, Words: 16},
	{Kind: "ring", Stages: 3, Depth: 8, Words: 24},
	{Kind: "tree", Arity: 2, Levels: 2, Depth: 2, Words: 12},
	{Kind: "mesh", Width: 3, Height: 2, Depth: 2, Words: 10},
	{Kind: "mesh", Width: 2, Height: 2, Depth: 1, Words: 8},
}

func seeded(t Topo) Topo {
	rng := scenario.Rand(1)
	t.RateSeed, t.PaySeed = rng.Int63(), rng.Int63()
	return t
}

// digestOf runs a topology and digests its dated sink logs.
func digestOf(t *testing.T, topo Topo, shards int, part Partitioner) (string, *Build) {
	t.Helper()
	probe, b, err := RunTopo(topo, shards, part)
	if err != nil {
		t.Fatalf("%s/%d/%v: %v", topo.Kind, shards, part, err)
	}
	d := scenario.NewDigest()
	for s, name := range probe.Sinks() {
		d.Str(name)
		d.Times(probe.Dates(s))
		d.U64(probe.Checksums()[s])
	}
	return d.Sum(), b
}

// TestPartitionerTraceEquivalence is the satellite acceptance test: every
// partitioner at shards 1..N yields byte-identical dated-log digests to
// the single-kernel build, over all four topology generators.
func TestPartitionerTraceEquivalence(t *testing.T) {
	for _, tc := range topoCases {
		tc := seeded(tc)
		tc.Decoupled = true
		t.Run(fmt.Sprintf("%s-d%d", tc.Kind, tc.Depth), func(t *testing.T) {
			ref, _ := digestOf(t, tc, 1, Single)
			g, _, _ := NewTopoGraph(tc)
			maxShards := len(g.modules)
			if maxShards > 5 {
				maxShards = 5
			}
			for _, part := range []Partitioner{Single, RoundRobin, MinCut, Profiled} {
				for shards := 1; shards <= maxShards; shards++ {
					got, b := digestOf(t, tc, shards, part)
					if got != ref {
						t.Fatalf("%s shards=%d: digest %s, want %s (crossings %d)",
							part.Name(), shards, got, ref, b.Crossings)
					}
				}
			}
		})
	}
}

// TestTopoReferenceEquivalence runs the §IV-A oracle per shape: the
// synchronized reference build against the decoupled build.
func TestTopoReferenceEquivalence(t *testing.T) {
	for _, tc := range topoCases {
		tc := seeded(tc)
		t.Run(tc.Kind, func(t *testing.T) {
			ref := tc
			ref.Decoupled = false
			dec := tc
			dec.Decoupled = true
			rp, _, err := RunTopo(ref, 1, Single)
			if err != nil {
				t.Fatal(err)
			}
			dp, _, err := RunTopo(dec, 1, Single)
			if err != nil {
				t.Fatal(err)
			}
			if diff := trace.Diff(topoTrace(rp), topoTrace(dp)); diff != "" {
				t.Fatalf("reference vs decoupled:\n%s", diff)
			}
		})
	}
}

// TestNetlistScenarioModel exercises the registered campaign model,
// including its Check, across topology kinds.
func TestNetlistScenarioModel(t *testing.T) {
	m, ok := scenario.Lookup("netlist")
	if !ok {
		t.Fatal("netlist model not registered")
	}
	for _, params := range []scenario.Params{
		{"kind": "chain", "stages": 4, "words": 16, "shards": 2},
		{"kind": "ring", "stages": 3, "depth": 2, "words": 12, "shards": 3, "partitioner": "mincut"},
		{"kind": "tree", "arity": 2, "levels": 2, "words": 8, "shards": 4},
		{"kind": "mesh", "width": 2, "height": 3, "words": 8, "shards": 2, "partitioner": "mincut"},
		{"kind": "mesh", "width": 2, "height": 2, "words": 8, "shards": 2, "partitioner": "profiled"},
		{"kind": "chain", "stages": 5, "words": 16, "shards": 3, "partitioner": "profiled"},
	} {
		out, err := m.Run(context.Background(), params)
		if err != nil {
			t.Fatalf("%v: %v", params, err)
		}
		if out.DatesHash == "" || len(out.Checksums) == 0 {
			t.Fatalf("%v: empty outcome %+v", params, out)
		}
		if params["partitioner"] == "profiled" {
			// Profiled points report the placement cost, and the kept
			// placement must dominate the hint placement by construction.
			cb, ok := out.Counters["crossings_before"]
			if !ok {
				t.Fatalf("%v: no placement counters: %v", params, out.Counters)
			}
			if ca := out.Counters["crossings_after"]; ca > cb {
				t.Fatalf("%v: crossings_after %d > crossings_before %d", params, ca, cb)
			}
			if wa, wb := out.Counters["cut_weight_after"], out.Counters["cut_weight_before"]; wa > wb {
				t.Fatalf("%v: cut_weight_after %d > cut_weight_before %d", params, wa, wb)
			}
		}
		// The same point at 1 shard must produce the same digest.
		single := scenario.Params{}
		for k, v := range params {
			single[k] = v
		}
		single["shards"] = 1
		delete(single, "partitioner")
		ref, err := m.Run(context.Background(), single)
		if err != nil {
			t.Fatal(err)
		}
		if ref.DatesHash != out.DatesHash || fmt.Sprint(ref.Checksums) != fmt.Sprint(out.Checksums) {
			t.Fatalf("%v: sharded digest %s != single %s", params, out.DatesHash, ref.DatesHash)
		}
		if diff, err := m.Check(context.Background(), params); err != nil || diff != "" {
			t.Fatalf("%v: check: %v %s", params, err, diff)
		}
	}
	// Validation errors surface.
	if _, err := m.Run(context.Background(), scenario.Params{"kind": "blimp"}); err == nil {
		t.Fatal("bad kind accepted")
	}
	if _, err := m.Run(context.Background(), scenario.Params{"decoupled": false, "shards": 2}); err == nil {
		t.Fatal("sharded reference build accepted")
	}
	if _, err := m.Run(context.Background(), scenario.Params{"kind": "chain", "stages": 3, "shards": 9}); err == nil {
		t.Fatal("shards > modules accepted")
	}
}
