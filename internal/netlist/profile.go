package netlist

import (
	"sync"

	"repro/internal/core"
)

// A Profile is the measured-traffic artifact the profile-guided
// partitioner consumes: per-channel word counts and block rates, and
// per-module dispatch counts, keyed by the graph's channel and module
// names. Harvest one from a finished build with Build.Profile and feed
// it back through Options.Profile.
//
// Profiles are schedule-independent: word counts, block occurrences and
// dispatch counts are facts of the model's dated behaviour, which every
// partitioning and every scheduler reproduces exactly (the package's
// trace-equivalence invariant). Any run of the same model therefore
// yields the same profile — a single-kernel run can profile for a
// sharded one, and a cached profile never goes stale for the point that
// produced it.
type Profile struct {
	Channels map[string]ChanProfile   `json:"channels"`
	Modules  map[string]ModuleProfile `json:"modules"`
}

// ChanProfile is one channel's measured traffic.
type ChanProfile struct {
	// Words is the number of words written into the channel (burst
	// transfers count their full length).
	Words uint64 `json:"words"`
	// WriterBlocks and ReaderBlocks count accesses that found the
	// channel internally full (resp. empty) — where decoupling stalls.
	WriterBlocks uint64 `json:"writer_blocks,omitempty"`
	ReaderBlocks uint64 `json:"reader_blocks,omitempty"`
}

// ModuleProfile is one module's measured compute weight.
type ModuleProfile struct {
	// Dispatches sums the activation counts of every process the module
	// elaborated (thread dispatches plus method activations).
	Dispatches uint64 `json:"dispatches"`
}

// Profile harvests the measured profile from an elaborated build: run
// the build first, then call Profile, then hand the artifact to a fresh
// Build via Options.Profile. Channels whose implementation carries no
// counters (Plain/Sync reference builds) are omitted; the partitioner
// falls back to their static hints.
func (b *Build) Profile() *Profile {
	p := &Profile{
		Channels: make(map[string]ChanProfile, len(b.g.chans)),
		Modules:  make(map[string]ModuleProfile, len(b.g.modules)),
	}
	for _, d := range b.g.chans {
		if t, ok := d.profileTraffic(); ok {
			p.Channels[d.meta().name] = ChanProfile{
				Words:        t.WordsWritten,
				WriterBlocks: t.WriterBlocks,
				ReaderBlocks: t.ReaderBlocks,
			}
		}
	}
	for i, m := range b.g.modules {
		var n uint64
		for _, pr := range b.procs[i] {
			n += pr.Dispatches()
		}
		p.Modules[m.name] = ModuleProfile{Dispatches: n}
	}
	return p
}

// measuredPartGraph re-weights the unit graph with a profile: edge
// weights become observed word counts (floored at 1 — a quiet channel
// is still a channel), unit weights become observed dispatch counts
// (each module floored at 1 dispatch, so an empty-profile unit still
// counts as schedulable work and never wedges the balance pass).
// Channels absent from the profile keep their static hint.
func (g *Graph) measuredPartGraph(units []Unit, unitOf []int, prof *Profile) PartGraph {
	mu := make([]Unit, len(units))
	for i := range units {
		mu[i] = Unit{Name: units[i].Name}
	}
	for i, m := range g.modules {
		w := 1.0
		if mp, ok := prof.Modules[m.name]; ok && mp.Dispatches > 1 {
			w = float64(mp.Dispatches)
		}
		mu[unitOf[i]].Weight += w
	}
	pg := PartGraph{Units: mu}
	for _, d := range g.chans {
		cm := d.meta()
		if cm.writer < 0 || cm.reader < 0 {
			continue
		}
		a, b := unitOf[cm.writer], unitOf[cm.reader]
		if a == b {
			continue
		}
		w := cm.trafficWeight()
		if cp, ok := prof.Channels[cm.name]; ok {
			w = float64(cp.Words)
			if w < 1 {
				w = 1
			}
		}
		pg.Edges = append(pg.Edges, Edge{A: a, B: b, Weight: w})
	}
	return pg
}

// PlacementCost reports what a profile-guided build paid before and
// after repartitioning, both costed under the measured edge weights:
// "before" is the hint-driven greedy min-cut placement, "after" is the
// placement actually elaborated. Build keeps the measured placement
// only when it dominates the hint placement on both counts, so
// CrossingsAfter <= CrossingsBefore and CutWeightAfter <=
// CutWeightBefore always hold.
type PlacementCost struct {
	CrossingsBefore int     `json:"crossings_before"`
	CrossingsAfter  int     `json:"crossings_after"`
	CutWeightBefore float64 `json:"cut_weight_before"`
	CutWeightAfter  float64 `json:"cut_weight_after"`
}

// AddCounters folds the placement cost into a model's outcome-counter
// map (a no-op on a nil receiver, i.e. an unprofiled build). Measured
// weights are integral word counts, so the uint64 truncation is exact;
// the values are dated-behaviour facts and therefore safe in
// deterministic outcomes.
func (pc *PlacementCost) AddCounters(m map[string]uint64) {
	if pc == nil {
		return
	}
	m["crossings_before"] = uint64(pc.CrossingsBefore)
	m["crossings_after"] = uint64(pc.CrossingsAfter)
	m["cut_weight_before"] = uint64(pc.CutWeightBefore)
	m["cut_weight_after"] = uint64(pc.CutWeightAfter)
}

// ProfileCache memoizes profiles by an arbitrary comparable key
// (typically the model's config struct), shared across goroutines.
// Because profiles are schedule-independent, a cached entry is always
// valid for its key; the cache is bounded only to keep long campaign
// sweeps from accumulating entries without limit.
type ProfileCache struct {
	mu sync.Mutex
	m  map[any]*Profile
}

// profileCacheLimit bounds the cache; on overflow it is simply cleared
// (a miss just re-runs a single-kernel profiling pass).
const profileCacheLimit = 256

// NewProfileCache returns an empty cache.
func NewProfileCache() *ProfileCache {
	return &ProfileCache{m: map[any]*Profile{}}
}

// Get returns the cached profile for key, if any.
func (c *ProfileCache) Get(key any) (*Profile, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.m[key]
	return p, ok
}

// Put stores the profile for key.
func (c *ProfileCache) Put(key any, p *Profile) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= profileCacheLimit {
		c.m = map[any]*Profile{}
	}
	c.m[key] = p
}

// profileTraffic is the type-erased per-channel counter feed: the
// SmartFIFO's always-on ChanTraffic for local channels, the bridge's
// crossing counters for cut channels; ok is false when the elaborated
// implementation carries no counters.
func (c *Chan[T]) profileTraffic() (core.ChanTraffic, bool) {
	if sf, ok := c.w.(*core.SmartFIFO[T]); ok {
		return sf.Traffic(), true
	}
	if c.br != nil {
		if tp, ok := c.br.(interface{ Traffic() core.Traffic }); ok {
			t := tp.Traffic()
			return core.ChanTraffic{WordsWritten: t.WordsCrossed, WordsRead: t.WordsCrossed}, true
		}
	}
	return core.ChanTraffic{}, false
}
