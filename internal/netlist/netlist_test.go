package netlist

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// smallGraph wires a 3-stage chain by hand (source -> f1 -> relay -> f2 ->
// sink) and returns the graph plus the result slots.
func smallGraph(words, depth int) (*Graph, *[]sim.Time, *uint64) {
	g := New("small")
	f1 := AddChan[uint32](g, "f1", depth)
	f2 := AddChan[uint32](g, "f2", depth)
	dates := &[]sim.Time{}
	sum := new(uint64)

	src := g.Thread("source", nil)
	o1 := f1.Output(src)
	src.body = func(p *sim.Process) {
		w := o1.End()
		for i := 0; i < words; i++ {
			w.Write(workload.WordAt(7, i))
			p.Inc(3 * sim.NS)
		}
	}
	rel := g.Thread("relay", nil)
	i1, o2 := f1.Input(rel), f2.Output(rel)
	rel.body = func(p *sim.Process) {
		r, w := i1.End(), o2.End()
		for i := 0; i < words; i++ {
			v := r.Read()
			p.Inc(2 * sim.NS)
			w.Write(v ^ 0xffff)
		}
	}
	snk := g.Thread("sink", nil)
	i2 := f2.Input(snk)
	snk.body = func(p *sim.Process) {
		r := i2.End()
		for i := 0; i < words; i++ {
			v := r.Read()
			p.Inc(5 * sim.NS)
			*sum = workload.Checksum(*sum, v)
			*dates = append(*dates, p.LocalTime())
		}
	}
	return g, dates, sum
}

// TestBuildShardEquivalence pins the bridge auto-insertion contract: the
// same graph built on 1, 2 and 3 kernels produces identical dated logs
// and checksums.
func TestBuildShardEquivalence(t *testing.T) {
	run := func(shards int, part Partitioner) ([]sim.Time, uint64, *Build) {
		g, dates, sum := smallGraph(40, 4)
		b, err := g.Build(Options{Shards: shards, Partitioner: part})
		if err != nil {
			t.Fatalf("Build(%d): %v", shards, err)
		}
		b.Run(sim.RunForever)
		if bl := b.Blocked(); len(bl) != 0 {
			t.Fatalf("Build(%d): blocked %v", shards, bl)
		}
		b.Shutdown()
		return *dates, *sum, b
	}
	refDates, refSum, refB := run(1, nil)
	if refB.Crossings != 0 || refB.Coord != nil {
		t.Fatalf("single-kernel build has %d crossings, coord %v", refB.Crossings, refB.Coord)
	}
	if len(refDates) != 40 {
		t.Fatalf("got %d dates", len(refDates))
	}
	for _, part := range []Partitioner{Single, RoundRobin, MinCut} {
		for shards := 1; shards <= 3; shards++ {
			dates, sum, b := run(shards, part)
			if sum != refSum {
				t.Errorf("%s/%d shards: checksum %x, want %x", part.Name(), shards, sum, refSum)
			}
			if len(dates) != len(refDates) {
				t.Fatalf("%s/%d shards: %d dates, want %d", part.Name(), shards, len(dates), len(refDates))
			}
			for i := range dates {
				if dates[i] != refDates[i] {
					t.Fatalf("%s/%d shards: date[%d] = %v, want %v", part.Name(), shards, i, dates[i], refDates[i])
				}
			}
			if part == Single && b.Crossings != 0 {
				t.Errorf("single partitioner produced %d crossings", b.Crossings)
			}
			if shards > 1 && part == RoundRobin && b.Crossings == 0 {
				t.Errorf("roundrobin over %d shards cut no edges", shards)
			}
		}
	}
}

// TestMinCutFewerCrossings: on the 3-stage chain over 2 shards, mincut
// must cut exactly one channel where roundrobin cuts two.
func TestMinCutFewerCrossings(t *testing.T) {
	build := func(part Partitioner) *Build {
		g, _, _ := smallGraph(1, 1)
		b, err := g.Build(Options{Shards: 2, Partitioner: part})
		if err != nil {
			t.Fatal(err)
		}
		b.Run(sim.RunForever)
		b.Shutdown()
		return b
	}
	if rr := build(RoundRobin); rr.Crossings != 2 {
		t.Errorf("roundrobin crossings = %d, want 2", rr.Crossings)
	}
	if mc := build(MinCut); mc.Crossings != 1 {
		t.Errorf("mincut crossings = %d, want 1", mc.Crossings)
	}
}

// TestColocationGroups: grouped modules land on one kernel and their
// channels never become bridges.
func TestColocationGroups(t *testing.T) {
	g, _, _ := smallGraph(4, 2)
	g.modules[0].InGroup("front")
	g.modules[1].InGroup("front")
	b, err := g.Build(Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if b.Assignment[0] != b.Assignment[1] {
		t.Fatalf("grouped modules on shards %d and %d", b.Assignment[0], b.Assignment[1])
	}
	if b.Crossings != 1 || b.Bridges[0] != "f2" {
		t.Fatalf("crossings %d bridges %v, want only f2", b.Crossings, b.Bridges)
	}
	b.Run(sim.RunForever)
	b.Shutdown()
}

// TestBuildErrors covers the declarative validation surface.
func TestBuildErrors(t *testing.T) {
	wantErr := func(name string, g *Graph, opt Options, frag string) {
		t.Helper()
		_, err := g.Build(opt)
		if err == nil || !strings.Contains(err.Error(), frag) {
			t.Errorf("%s: err = %v, want %q", name, err, frag)
		}
	}
	wantErr("empty", New("g"), Options{}, "no modules")

	g := New("g")
	g.Thread("a", func(p *sim.Process) {})
	g.Thread("b", func(p *sim.Process) {})
	wantErr("too many shards", g, Options{Shards: 3}, "2 partitionable units")

	g2 := New("g")
	m := g2.Thread("a", func(p *sim.Process) {})
	c := AddChan[int](g2, "c", 1)
	c.Output(m)
	g2.Thread("b", func(p *sim.Process) {})
	wantErr("unbound reader", g2, Options{Shards: 2}, "unbound reader")

	g3 := New("g")
	m3 := g3.Thread("a", func(p *sim.Process) {})
	m4 := g3.Thread("b", func(p *sim.Process) {})
	c3 := AddChan[int](g3, "c", 1)
	c3.Output(m3)
	c3.Input(m4)
	wantErr("non-smart sharded", g3, Options{Shards: 2, Impl: Plain}, "cannot be sharded")

	g4 := New("g")
	g4.Thread("a", nil)
	wantErr("bodyless", g4, Options{}, "neither a thread body")
}

// TestDoubleBindPanics pins the one-writer-one-reader rule.
func TestDoubleBindPanics(t *testing.T) {
	g := New("g")
	a := g.Thread("a", func(p *sim.Process) {})
	b := g.Thread("b", func(p *sim.Process) {})
	c := AddChan[int](g, "c", 1)
	c.Output(a)
	defer func() {
		if recover() == nil {
			t.Fatal("second Output did not panic")
		}
	}()
	c.Output(b)
}

// TestPartitionerRegistry pins names and the default.
func TestPartitionerRegistry(t *testing.T) {
	names := PartitionerNames()
	want := []string{"mincut", "profiled", "roundrobin", "single"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	if p, err := PartitionerByName(""); err != nil || p.Name() != "roundrobin" {
		t.Fatalf("default = %v, %v", p, err)
	}
	if _, err := PartitionerByName("bogus"); err == nil {
		t.Fatal("bogus partitioner accepted")
	}
}

// TestMinCutProperties: assignments are valid, leave no shard empty, and
// respect determinism.
func TestMinCutProperties(t *testing.T) {
	pg := PartGraph{
		Units: []Unit{{"a", 1}, {"b", 1}, {"c", 1}, {"d", 1}, {"e", 1}, {"f", 1}},
		Edges: []Edge{{0, 1, 10}, {1, 2, 10}, {3, 4, 10}, {4, 5, 10}, {2, 3, 1}},
	}
	for shards := 1; shards <= 6; shards++ {
		a1 := MinCut.Partition(pg, shards)
		a2 := MinCut.Partition(pg, shards)
		used := map[int]bool{}
		for i, s := range a1 {
			if s < 0 || s >= shards {
				t.Fatalf("shards=%d: unit %d on shard %d", shards, i, s)
			}
			if a2[i] != s {
				t.Fatalf("shards=%d: nondeterministic assignment", shards)
			}
			used[s] = true
		}
		if len(used) != shards {
			t.Fatalf("shards=%d: only %d shards used: %v", shards, len(used), a1)
		}
	}
	// Two heavy cliques over 2 shards: the weight-1 edge is the cut.
	a := MinCut.Partition(pg, 2)
	if a[0] != a[1] || a[1] != a[2] || a[3] != a[4] || a[4] != a[5] || a[2] == a[3] {
		t.Fatalf("mincut split cliques: %v", a)
	}
}
