package netlist

import (
	"context"
	"fmt"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Scenario registry hook: generated topologies as a campaign model, making
// topology itself — kind, size, shard count, partitioner — a sweepable
// axis. The per-stage rate schedules and source payloads derive from the
// spec's "seed" through the deterministic scenario RNG.
func init() {
	scenario.Register(scenario.Model{
		Name: "netlist",
		Keys: []string{"kind", "stages", "width", "height", "arity", "levels",
			"depth", "words", "seed", "decoupled", "shards", "partitioner"},
		Run:   runScenario,
		Check: checkScenario,
	})
}

func topoConfig(p scenario.Params) (Topo, int, Partitioner, error) {
	r := scenario.NewReader(p)
	t := Topo{
		Kind:      r.String("kind", "chain"),
		Stages:    r.Int("stages", 4),
		Width:     r.Int("width", 2),
		Height:    r.Int("height", 2),
		Arity:     r.Int("arity", 2),
		Levels:    r.Int("levels", 2),
		Depth:     r.Int("depth", 4),
		Words:     r.Int("words", 32),
		Decoupled: r.Bool("decoupled", true),
	}
	shards := r.Int("shards", 1)
	partName := r.String("partitioner", "")
	rng := scenario.Rand(r.Int64("seed", 1))
	t.RateSeed, t.PaySeed = rng.Int63(), rng.Int63()
	if err := r.Err(); err != nil {
		return t, 0, nil, err
	}
	if err := t.Validate(); err != nil {
		return t, 0, nil, err
	}
	if shards < 1 {
		return t, 0, nil, fmt.Errorf("netlist: shards must be >= 1")
	}
	if shards > 1 && !t.Decoupled {
		return t, 0, nil, fmt.Errorf("netlist: the reference (decoupled=false) build cannot be sharded (only Smart FIFOs carry the bridge dates)")
	}
	part, err := PartitionerByName(partName)
	if err != nil {
		return t, 0, nil, err
	}
	return t, shards, part, nil
}

// RunTopo generates, builds and runs a topology, returning the probe and
// the finished build (already shut down). The shards/partitioner choice
// never changes the probe's dated logs — only wall time and coordinator
// activity.
func RunTopo(t Topo, shards int, part Partitioner) (*TopoProbe, *Build, error) {
	return RunTopoCtx(context.Background(), t, shards, part)
}

// RunTopoCtx is RunTopo under the par supervisor: the run is
// interrupted when ctx ends or the stall watchdog it carries fires,
// returning the guard's error. The build is shut down either way, so no
// goroutine outlives an aborted run.
func RunTopoCtx(ctx context.Context, t Topo, shards int, part Partitioner) (*TopoProbe, *Build, error) {
	g, probe, err := NewTopoGraph(t)
	if err != nil {
		return nil, nil, err
	}
	impl := Smart
	if !t.Decoupled {
		impl = Plain
	}
	opt := Options{Shards: shards, Partitioner: part, Impl: impl}
	if part != nil && part.Name() == Profiled.Name() && shards > 1 {
		prof, err := topoProfile(ctx, t)
		if err != nil {
			return nil, nil, err
		}
		opt.Profile = prof
	}
	b, err := g.Build(opt)
	if err != nil {
		return nil, nil, err
	}
	err = b.RunGuarded(ctx, sim.RunForever)
	blocked := b.Blocked()
	b.Shutdown()
	if err != nil {
		return nil, nil, err
	}
	if len(blocked) != 0 {
		return nil, nil, fmt.Errorf("netlist: %s topology deadlocked: %v", t.Kind, blocked)
	}
	// Opportunistic harvest: any completed single-kernel Smart run is a
	// valid profiling run (profiles are schedule-independent), so keep
	// its counters around for a later profile-guided build of the same
	// topology.
	if b.Shards() == 1 && t.Decoupled {
		topoProfiles.Put(t, b.Profile())
	}
	return probe, b, nil
}

// topoProfiles memoizes measured profiles per Topo value across runs —
// safe because profiles are schedule-independent (any run of the same
// topology yields the same word and dispatch counts).
var topoProfiles = NewProfileCache()

// topoProfile returns the measured profile for t, running the topology
// once single-kernel on a cache miss (phase one of a profile-guided
// sharded run).
func topoProfile(ctx context.Context, t Topo) (*Profile, error) {
	if p, ok := topoProfiles.Get(t); ok {
		return p, nil
	}
	g, _, err := NewTopoGraph(t)
	if err != nil {
		return nil, err
	}
	b, err := g.Build(Options{Shards: 1, Impl: Smart})
	if err != nil {
		return nil, err
	}
	err = b.RunGuarded(ctx, sim.RunForever)
	b.Shutdown()
	if err != nil {
		return nil, err
	}
	prof := b.Profile()
	topoProfiles.Put(t, prof)
	return prof, nil
}

func runScenario(ctx context.Context, p scenario.Params) (scenario.Outcome, error) {
	t, shards, part, err := topoConfig(p)
	if err != nil {
		return scenario.Outcome{}, err
	}
	probe, b, err := RunTopoCtx(ctx, t, shards, part)
	if err != nil {
		return scenario.Outcome{}, err
	}
	d := scenario.NewDigest()
	for s, name := range probe.Sinks() {
		d.Str(name)
		d.Times(probe.Dates(s))
	}
	// Kernel-stat counters are schedule-dependent for sharded runs
	// (see scenario.Outcome.CtxSwitches); report them single-kernel only.
	ctxSw := b.Stats().ContextSwitches
	if b.Shards() > 1 {
		ctxSw = 0
	}
	counters := map[string]uint64{
		"modules":   uint64(len(b.Assignment)),
		"sinks":     uint64(len(probe.Sinks())),
		"shards":    uint64(b.Shards()),
		"crossings": uint64(b.Crossings),
	}
	b.Placement.AddCounters(counters)
	return scenario.Outcome{
		SimEndNS:    int64(probe.SimEnd() / sim.NS),
		CtxSwitches: ctxSw,
		Checksums:   probe.Checksums(),
		DatesHash:   d.Sum(),
		Counters:    counters,
	}, nil
}

// topoTrace renders a probe's dated per-sink logs (and checksums) as a
// trace for the §IV-A oracle.
func topoTrace(p *TopoProbe) *trace.Recorder {
	rec := trace.NewRecorder()
	for s, name := range p.Sinks() {
		for i, d := range p.Dates(s) {
			rec.Log(trace.Entry{Date: d, Proc: name, Msg: fmt.Sprintf("word %d", i)})
		}
	}
	end := p.SimEnd()
	for s, name := range p.Sinks() {
		rec.Log(trace.Entry{Date: end, Proc: name, Msg: fmt.Sprintf("checksum %016x", p.Checksums()[s])})
	}
	return rec
}

// checkScenario is the model's trace-equivalence spot check: the
// synchronized reference build (regular FIFOs + Wait, one kernel) against
// the decoupled build at the point's shard count and partitioner. Their
// dated sink logs must be identical — the §IV-A oracle composed with the
// bridge-exactness claim.
func checkScenario(ctx context.Context, p scenario.Params) (string, error) {
	t, shards, part, err := topoConfig(p)
	if err != nil {
		return "", err
	}
	ref := t
	ref.Decoupled = false
	refProbe, _, err := RunTopoCtx(ctx, ref, 1, Single)
	if err != nil {
		return "", err
	}
	dec := t
	dec.Decoupled = true
	decProbe, _, err := RunTopoCtx(ctx, dec, shards, part)
	if err != nil {
		return "", err
	}
	return trace.Diff(topoTrace(refProbe), topoTrace(decProbe)), nil
}
