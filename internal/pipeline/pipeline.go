// Package pipeline implements the paper's §IV-B performance benchmark: a
// simple system with three modules (source, transmitter, sink) connected
// by two FIFOs, moving a configurable number of blocks of words with
// varying data rates. The FIFO depth is a parameter, and the same model
// runs in four modes:
//
//   - Untimed: regular FIFOs, no timing annotations at all;
//   - TDless: timed, no decoupling, regular FIFOs (one context switch per
//     annotation) — the accuracy reference;
//   - TDfull: timed, temporal decoupling, Smart FIFOs — the paper's
//     contribution, same accuracy as TDless;
//   - Quantum: timed, quantum-keeper decoupling over regular FIFOs — the
//     TLM-2.0 state of the art the paper improves on; fast but introduces
//     timing errors (our ablation).
//
// Run returns wall time, kernel statistics and the dated per-block
// completion log, so callers can regenerate Fig. 5 and quantify accuracy.
package pipeline

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fifo"
	"repro/internal/par"
	"repro/internal/sim"
	"repro/internal/td"
	"repro/internal/workload"
)

// Mode selects the timing/channel implementation of the benchmark model.
type Mode int

const (
	// Untimed uses regular FIFOs and no annotations.
	Untimed Mode = iota
	// TDless uses regular FIFOs and a context-switching Wait per
	// annotation.
	TDless
	// TDfull uses Smart FIFOs and temporal decoupling.
	TDfull
	// Quantum uses regular FIFOs and quantum-keeper decoupling.
	Quantum
)

// String names the mode as in the paper's Fig. 5 legend.
func (m Mode) String() string {
	switch m {
	case Untimed:
		return "untimed"
	case TDless:
		return "TDless"
	case TDfull:
		return "TDfull"
	case Quantum:
		return "quantum"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Config parameterizes one benchmark run.
type Config struct {
	// Mode is the implementation under test.
	Mode Mode
	// Depth is the FIFO depth in cells (the Fig. 5 x-axis).
	Depth int
	// Blocks and WordsPerBlock size the workload (paper: 1000 × 1000).
	Blocks        int
	WordsPerBlock int
	// SourceRate, TransmitRate and SinkRate give the per-word periods.
	// Zero values default to the varying rates of §IV-B.
	SourceRate   workload.Rate
	TransmitRate workload.Rate
	SinkRate     workload.Rate
	// QuantumValue is the quantum for Mode == Quantum.
	QuantumValue sim.Time
	// Shards partitions the model across that many kernels (≤ 3, one
	// per module) run in parallel by a conservative coordinator
	// (internal/par) over core.ShardedFIFO bridges. 0 or 1 keeps the
	// classic single-kernel build. Only Mode == TDfull can be sharded:
	// the bridges are Smart FIFOs, and their dates are what makes the
	// partitioning conservative.
	Shards int
	// Burst, when > 1, moves words through the FIFOs in chunks of up to
	// Burst words: the burst-dominated configuration of the §IV-C
	// packetization extension. The chunked workload samples each rate
	// function once per chunk (argument = the module's chunk ordinal)
	// and applies it between consecutive words of the chunk and once
	// after it; the transmitter becomes store-and-forward per chunk.
	// Every mode implements the same chunked timing model — TDless and
	// Quantum with their per-word delayer between words, TDfull and
	// Untimed through the bulk burst fast paths — so cross-mode date
	// equivalence is preserved (pinned by TestBurstTraceEquivalence).
	// 0 or 1 keeps the word-at-a-time model.
	Burst int
	// Seed feeds the data generator.
	Seed int64
}

func (c *Config) fill() {
	if c.Blocks == 0 {
		c.Blocks = 1000
	}
	if c.WordsPerBlock == 0 {
		c.WordsPerBlock = 1000
	}
	if c.Depth == 0 {
		c.Depth = 16
	}
	// "with varying data rates": stepped periods, transmitter fastest.
	if c.SourceRate == nil {
		c.SourceRate = workload.Steps(10*sim.NS, 12*sim.NS, 8*sim.NS)
	}
	if c.TransmitRate == nil {
		c.TransmitRate = workload.Constant(7 * sim.NS)
	}
	if c.SinkRate == nil {
		c.SinkRate = workload.Steps(9*sim.NS, 13*sim.NS)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Result reports one run's outcome.
type Result struct {
	// Mode and Depth echo the configuration.
	Mode  Mode
	Depth int
	// Wall is the host execution duration of Kernel.Run.
	Wall time.Duration
	// Words is the number of words transported end to end.
	Words int
	// SimEnd is the final simulated date (0 for Untimed).
	SimEnd sim.Time
	// BlockDates holds the sink's local date at each block completion
	// (empty for Untimed); comparing them across modes measures timing
	// accuracy.
	BlockDates []sim.Time
	// Checksum proves functional equality across modes.
	Checksum uint64
	// Stats are the kernel activity counters; ContextSwitches is the
	// quantity Fig. 5 is really about. For a sharded run they are
	// summed over the shards.
	Stats sim.Stats
	// Shards echoes the partitioning (1 for the single-kernel build);
	// Rounds is the number of coordinator barrier rounds (0 when
	// unsharded).
	Shards int
	Rounds uint64
}

// delayer abstracts the annotation style of a process.
type delayer func(d sim.Time)

// Run executes the benchmark once and reports the outcome.
func Run(cfg Config) Result {
	cfg.fill()
	if cfg.Shards > 1 {
		return runSharded(cfg)
	}
	k := sim.NewKernel("fig5")
	timed := cfg.Mode != Untimed

	newFIFO := func(name string) fifo.Channel[workload.Word] {
		if cfg.Mode == TDfull {
			return core.NewSmart[workload.Word](k, name, cfg.Depth)
		}
		return fifo.New[workload.Word](k, name, cfg.Depth)
	}
	newDelay := func(p *sim.Process) delayer {
		switch cfg.Mode {
		case Untimed:
			return func(sim.Time) {}
		case TDless:
			return p.Wait
		case TDfull:
			return p.Inc
		case Quantum:
			q := td.NewQuantumKeeper(p, cfg.QuantumValue)
			return q.Inc
		}
		panic("pipeline: unknown mode")
	}

	f1 := newFIFO("f1")
	f2 := newFIFO("f2")
	n := cfg.Blocks * cfg.WordsPerBlock
	res := Result{Mode: cfg.Mode, Depth: cfg.Depth, Words: n}

	// A decoupled process may terminate with its local date ahead of the
	// global clock; the simulated end date is the latest local end.
	end := func(p *sim.Process) {
		if timed && p.LocalTime() > res.SimEnd {
			res.SimEnd = p.LocalTime()
		}
	}

	if cfg.Burst > 1 {
		// Burst-dominated configuration: words move in chunks through
		// the burst APIs (bulk fast paths for TDfull and Untimed, the
		// mode's per-word delayer for TDless and Quantum).
		writeChunk := func(p *sim.Process, ch fifo.Channel[workload.Word], delay delayer, chunk []workload.Word, per sim.Time) {
			switch cfg.Mode {
			case TDfull:
				fifo.WriteBurst(p, ch, chunk, per)
			case Untimed:
				fifo.WriteBurst(p, ch, chunk, 0)
			default:
				for i, v := range chunk {
					if i > 0 {
						delay(per)
					}
					ch.Write(v)
				}
			}
		}
		readChunk := func(p *sim.Process, ch fifo.Channel[workload.Word], delay delayer, chunk []workload.Word, per sim.Time) {
			switch cfg.Mode {
			case TDfull:
				fifo.ReadBurst(p, ch, chunk, per)
			case Untimed:
				fifo.ReadBurst(p, ch, chunk, 0)
			default:
				for i := range chunk {
					if i > 0 {
						delay(per)
					}
					chunk[i] = ch.Read()
				}
			}
		}
		k.Thread("source", func(p *sim.Process) {
			delay := newDelay(p)
			buf := make([]workload.Word, cfg.Burst)
			for i, ci := 0, 0; i < n; ci++ {
				m := min(cfg.Burst, n-i)
				per := cfg.SourceRate(ci)
				for j := 0; j < m; j++ {
					buf[j] = workload.WordAt(cfg.Seed, i+j)
				}
				writeChunk(p, f1, delay, buf[:m], per)
				delay(per)
				i += m
			}
			end(p)
		})
		k.Thread("transmitter", func(p *sim.Process) {
			delay := newDelay(p)
			buf := make([]workload.Word, cfg.Burst)
			for i, ci := 0, 0; i < n; ci++ {
				m := min(cfg.Burst, n-i)
				per := cfg.TransmitRate(ci)
				readChunk(p, f1, delay, buf[:m], per)
				delay(per)
				for j := 0; j < m; j++ {
					buf[j] ^= 0xa5a5a5a5 // the "transmission" transform
				}
				writeChunk(p, f2, delay, buf[:m], per)
				delay(per)
				i += m
			}
			end(p)
		})
		k.Thread("sink", func(p *sim.Process) {
			delay := newDelay(p)
			buf := make([]workload.Word, cfg.Burst)
			sum := uint64(0)
			for i, ci := 0, 0; i < n; ci++ {
				// Chunks never straddle a block boundary, so the
				// dated block-completion log keeps its place.
				m := min(cfg.Burst, n-i, cfg.WordsPerBlock-i%cfg.WordsPerBlock)
				per := cfg.SinkRate(ci)
				readChunk(p, f2, delay, buf[:m], per)
				delay(per)
				for _, w := range buf[:m] {
					sum = workload.Checksum(sum, w)
				}
				i += m
				if timed && i%cfg.WordsPerBlock == 0 {
					res.BlockDates = append(res.BlockDates, p.LocalTime())
				}
			}
			res.Checksum = sum
			end(p)
		})
	} else {
		k.Thread("source", func(p *sim.Process) {
			delay := newDelay(p)
			for i := 0; i < n; i++ {
				f1.Write(workload.WordAt(cfg.Seed, i))
				delay(cfg.SourceRate(i))
			}
			end(p)
		})
		k.Thread("transmitter", func(p *sim.Process) {
			delay := newDelay(p)
			for i := 0; i < n; i++ {
				v := f1.Read()
				delay(cfg.TransmitRate(i))
				f2.Write(v ^ 0xa5a5a5a5) // the "transmission" transform
			}
			end(p)
		})
		k.Thread("sink", func(p *sim.Process) {
			delay := newDelay(p)
			sum := uint64(0)
			for i := 0; i < n; i++ {
				sum = workload.Checksum(sum, f2.Read())
				delay(cfg.SinkRate(i))
				if timed && (i+1)%cfg.WordsPerBlock == 0 {
					res.BlockDates = append(res.BlockDates, p.LocalTime())
				}
			}
			res.Checksum = sum
			end(p)
		})
	}

	start := time.Now()
	k.Run(sim.RunForever)
	res.Wall = time.Since(start)
	res.Stats = k.Stats()
	res.Shards = 1
	return res
}

// runSharded builds the same three-module model across up to three
// kernels — source, transmitter and sink each on their own shard — with
// the two FIFOs as cross-shard Smart-FIFO bridges, and runs them in
// parallel under the conservative coordinator. The dates and values are
// identical to the single-kernel TDfull build (pinned by
// TestShardedRunMatchesSingleKernel); only the wall time changes.
func runSharded(cfg Config) Result {
	if cfg.Mode != TDfull {
		panic(fmt.Sprintf("pipeline: mode %v cannot be sharded (only TDfull carries the Smart-FIFO dates)", cfg.Mode))
	}
	nShards := cfg.Shards
	if nShards > 3 {
		nShards = 3
	}
	ks := make([]*sim.Kernel, nShards)
	c := par.NewCoordinator()
	for i := range ks {
		ks[i] = sim.NewKernel(fmt.Sprintf("fig5.s%d", i))
		c.AddShard(ks[i])
	}
	kOf := func(module int) *sim.Kernel { return ks[module%nShards] }

	f1 := core.NewSharded[workload.Word](kOf(0), kOf(1), "f1", cfg.Depth)
	f2 := core.NewSharded[workload.Word](kOf(1), kOf(2), "f2", cfg.Depth)
	c.AddBridge(f1)
	c.AddBridge(f2)

	n := cfg.Blocks * cfg.WordsPerBlock
	res := Result{Mode: cfg.Mode, Depth: cfg.Depth, Words: n, Shards: nShards}

	// Each thread writes only its own slot: shards run concurrently.
	var ends [3]sim.Time
	if cfg.Burst > 1 {
		// The chunked model over the bridge endpoints' bulk burst
		// paths: same chunk boundaries and rate sampling as the
		// single-kernel build, hence identical dates.
		kOf(0).Thread("source", func(p *sim.Process) {
			w := f1.Writer()
			buf := make([]workload.Word, cfg.Burst)
			for i, ci := 0, 0; i < n; ci++ {
				m := min(cfg.Burst, n-i)
				per := cfg.SourceRate(ci)
				for j := 0; j < m; j++ {
					buf[j] = workload.WordAt(cfg.Seed, i+j)
				}
				w.WriteBurst(buf[:m], per)
				p.Inc(per)
				i += m
			}
			ends[0] = p.LocalTime()
		})
		kOf(1).Thread("transmitter", func(p *sim.Process) {
			r, w := f1.Reader(), f2.Writer()
			buf := make([]workload.Word, cfg.Burst)
			for i, ci := 0, 0; i < n; ci++ {
				m := min(cfg.Burst, n-i)
				per := cfg.TransmitRate(ci)
				r.ReadBurst(buf[:m], per)
				p.Inc(per)
				for j := 0; j < m; j++ {
					buf[j] ^= 0xa5a5a5a5
				}
				w.WriteBurst(buf[:m], per)
				p.Inc(per)
				i += m
			}
			ends[1] = p.LocalTime()
		})
		kOf(2).Thread("sink", func(p *sim.Process) {
			r := f2.Reader()
			buf := make([]workload.Word, cfg.Burst)
			sum := uint64(0)
			for i, ci := 0, 0; i < n; ci++ {
				m := min(cfg.Burst, n-i, cfg.WordsPerBlock-i%cfg.WordsPerBlock)
				per := cfg.SinkRate(ci)
				r.ReadBurst(buf[:m], per)
				p.Inc(per)
				for _, w := range buf[:m] {
					sum = workload.Checksum(sum, w)
				}
				i += m
				if i%cfg.WordsPerBlock == 0 {
					res.BlockDates = append(res.BlockDates, p.LocalTime())
				}
			}
			res.Checksum = sum
			ends[2] = p.LocalTime()
		})
	} else {
		kOf(0).Thread("source", func(p *sim.Process) {
			w := f1.Writer()
			for i := 0; i < n; i++ {
				w.Write(workload.WordAt(cfg.Seed, i))
				p.Inc(cfg.SourceRate(i))
			}
			ends[0] = p.LocalTime()
		})
		kOf(1).Thread("transmitter", func(p *sim.Process) {
			r, w := f1.Reader(), f2.Writer()
			for i := 0; i < n; i++ {
				v := r.Read()
				p.Inc(cfg.TransmitRate(i))
				w.Write(v ^ 0xa5a5a5a5)
			}
			ends[1] = p.LocalTime()
		})
		kOf(2).Thread("sink", func(p *sim.Process) {
			r := f2.Reader()
			sum := uint64(0)
			for i := 0; i < n; i++ {
				sum = workload.Checksum(sum, r.Read())
				p.Inc(cfg.SinkRate(i))
				if (i+1)%cfg.WordsPerBlock == 0 {
					res.BlockDates = append(res.BlockDates, p.LocalTime())
				}
			}
			res.Checksum = sum
			ends[2] = p.LocalTime()
		})
	}

	start := time.Now()
	c.Run(sim.RunForever)
	res.Wall = time.Since(start)
	res.Stats = c.KernelStats()
	res.Rounds = c.Stats().Rounds
	for _, e := range ends {
		if e > res.SimEnd {
			res.SimEnd = e
		}
	}
	return res
}

// MaxTimingError returns the largest absolute difference between the
// per-block completion dates of r and the reference ref (typically a
// TDless run): the accuracy metric of the quantum ablation. It panics if
// the runs transported different workloads.
func MaxTimingError(ref, r Result) sim.Time {
	if len(ref.BlockDates) != len(r.BlockDates) {
		panic("pipeline: incomparable results")
	}
	var max sim.Time
	for i := range ref.BlockDates {
		d := r.BlockDates[i] - ref.BlockDates[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}
