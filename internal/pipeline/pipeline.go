// Package pipeline implements the paper's §IV-B performance benchmark: a
// simple system with three modules (source, transmitter, sink) connected
// by two FIFOs, moving a configurable number of blocks of words with
// varying data rates. The FIFO depth is a parameter, and the same model
// runs in four modes:
//
//   - Untimed: regular FIFOs, no timing annotations at all;
//   - TDless: timed, no decoupling, regular FIFOs (one context switch per
//     annotation) — the accuracy reference;
//   - TDfull: timed, temporal decoupling, Smart FIFOs — the paper's
//     contribution, same accuracy as TDless;
//   - Quantum: timed, quantum-keeper decoupling over regular FIFOs — the
//     TLM-2.0 state of the art the paper improves on; fast but introduces
//     timing errors (our ablation).
//
// The model is wired once, declaratively, as an internal/netlist graph:
// the same three module bodies build single-kernel (any mode) or
// partitioned over up to three kernels (TDfull only; the netlist inserts
// core.ShardedFIFO bridges at cut edges and drives the shards through the
// conservative coordinator). The dates are identical either way — pinned
// by TestShardedRunMatchesSingleKernel.
//
// Run returns wall time, kernel statistics and the dated per-block
// completion log, so callers can regenerate Fig. 5 and quantify accuracy.
package pipeline

import (
	"context"
	"fmt"
	"time"

	"repro/internal/fifo"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/td"
	"repro/internal/workload"
)

// Mode selects the timing/channel implementation of the benchmark model.
type Mode int

const (
	// Untimed uses regular FIFOs and no annotations.
	Untimed Mode = iota
	// TDless uses regular FIFOs and a context-switching Wait per
	// annotation.
	TDless
	// TDfull uses Smart FIFOs and temporal decoupling.
	TDfull
	// Quantum uses regular FIFOs and quantum-keeper decoupling.
	Quantum
)

// String names the mode as in the paper's Fig. 5 legend.
func (m Mode) String() string {
	switch m {
	case Untimed:
		return "untimed"
	case TDless:
		return "TDless"
	case TDfull:
		return "TDfull"
	case Quantum:
		return "quantum"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Config parameterizes one benchmark run.
type Config struct {
	// Mode is the implementation under test.
	Mode Mode
	// Depth is the FIFO depth in cells (the Fig. 5 x-axis).
	Depth int
	// Blocks and WordsPerBlock size the workload (paper: 1000 × 1000).
	Blocks        int
	WordsPerBlock int
	// SourceRate, TransmitRate and SinkRate give the per-word periods.
	// Zero values default to the varying rates of §IV-B.
	SourceRate   workload.Rate
	TransmitRate workload.Rate
	SinkRate     workload.Rate
	// QuantumValue is the quantum for Mode == Quantum.
	QuantumValue sim.Time
	// Shards partitions the model across that many kernels run in
	// parallel by the conservative coordinator (internal/par) over
	// netlist-inserted core.ShardedFIFO bridges. 0 or 1 keeps the classic
	// single-kernel build. Only Mode == TDfull can be sharded: the
	// bridges are Smart FIFOs, and their dates are what makes the
	// partitioning conservative. Asking for more shards than the model
	// has modules (three) is an error — Run panics with a clear message
	// instead of silently clamping.
	Shards int
	// Partitioner names the netlist partitioner assigning modules to
	// shards: "single", "roundrobin" (default), "mincut" or "profiled"
	// (two-phase: a single-kernel run of the same config harvests a
	// measured traffic profile, then the sharded build places by it).
	Partitioner string
	// Burst, when > 1, moves words through the FIFOs in chunks of up to
	// Burst words: the burst-dominated configuration of the §IV-C
	// packetization extension. The chunked workload samples each rate
	// function once per chunk (argument = the module's chunk ordinal)
	// and applies it between consecutive words of the chunk and once
	// after it; the transmitter becomes store-and-forward per chunk.
	// Every mode implements the same chunked timing model — TDless and
	// Quantum with their per-word delayer between words, TDfull and
	// Untimed through the bulk burst fast paths — so cross-mode date
	// equivalence is preserved (pinned by TestBurstTraceEquivalence).
	// 0 or 1 keeps the word-at-a-time model.
	Burst int
	// Seed feeds the data generator.
	Seed int64
}

func (c *Config) fill() {
	if c.Blocks == 0 {
		c.Blocks = 1000
	}
	if c.WordsPerBlock == 0 {
		c.WordsPerBlock = 1000
	}
	if c.Depth == 0 {
		c.Depth = 16
	}
	// "with varying data rates": stepped periods, transmitter fastest.
	if c.SourceRate == nil {
		c.SourceRate = workload.Steps(10*sim.NS, 12*sim.NS, 8*sim.NS)
	}
	if c.TransmitRate == nil {
		c.TransmitRate = workload.Constant(7 * sim.NS)
	}
	if c.SinkRate == nil {
		c.SinkRate = workload.Steps(9*sim.NS, 13*sim.NS)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Result reports one run's outcome.
type Result struct {
	// Mode and Depth echo the configuration.
	Mode  Mode
	Depth int
	// Wall is the host execution duration of Kernel.Run.
	Wall time.Duration
	// Words is the number of words transported end to end.
	Words int
	// SimEnd is the final simulated date (0 for Untimed).
	SimEnd sim.Time
	// BlockDates holds the sink's local date at each block completion
	// (empty for Untimed); comparing them across modes measures timing
	// accuracy.
	BlockDates []sim.Time
	// Checksum proves functional equality across modes.
	Checksum uint64
	// Stats are the kernel activity counters; ContextSwitches is the
	// quantity Fig. 5 is really about. For a sharded run they are
	// summed over the shards.
	Stats sim.Stats
	// Shards echoes the partitioning (1 for the single-kernel build);
	// Advances is the number of coordinator kernel advances (0 when
	// unsharded — interleaving-dependent telemetry, not model output);
	// Crossings counts the channels the netlist elaborated as
	// cross-shard bridges.
	Shards    int
	Advances  uint64
	Crossings int
	// Placement is the before/after placement cost of a profiled run
	// (nil for every other partitioner).
	Placement *netlist.PlacementCost
}

// delayer abstracts the annotation style of a process.
type delayer func(d sim.Time)

// Run executes the benchmark once and reports the outcome. The model is
// one netlist graph for every mode and shard count; Build chooses the
// channel implementation and the partitioning.
func Run(cfg Config) Result {
	res, err := RunCtx(context.Background(), cfg)
	if err != nil {
		// Unreachable: only a guarded abort errors, and a background
		// context with no stall window never aborts.
		panic(fmt.Sprintf("pipeline: %v", err))
	}
	return res
}

// RunCtx is Run under the par supervisor: the run is interrupted when
// ctx ends or the stall watchdog it carries (par.WithStallWindow)
// fires, returning the guard's error with all model goroutines shut
// down.
func RunCtx(ctx context.Context, cfg Config) (Result, error) {
	// Custom rate functions are not comparable, so only default-rate
	// configs are profile-cache keyable.
	cacheable := cfg.SourceRate == nil && cfg.TransmitRate == nil && cfg.SinkRate == nil
	cfg.fill()
	nShards := cfg.Shards
	if nShards < 1 {
		nShards = 1
	}
	if nShards > 1 && cfg.Mode != TDfull {
		panic(fmt.Sprintf("pipeline: mode %v cannot be sharded (only TDfull carries the Smart-FIFO dates)", cfg.Mode))
	}
	part, err := netlist.PartitionerByName(cfg.Partitioner)
	if err != nil {
		panic(fmt.Sprintf("pipeline: %v", err))
	}
	impl := netlist.Plain
	if cfg.Mode == TDfull {
		impl = netlist.Smart
	}

	var prof *netlist.Profile
	if part.Name() == netlist.Profiled.Name() && nShards > 1 {
		if prof, err = profileFor(ctx, cfg, cacheable); err != nil {
			return Result{}, err
		}
	}

	g, res, ends := modelGraph(cfg)
	b, err := g.Build(netlist.Options{Shards: nShards, Partitioner: part, Impl: impl, Profile: prof})
	if err != nil {
		panic(fmt.Sprintf("pipeline: %v", err))
	}

	start := time.Now()
	if err := b.RunGuarded(ctx, sim.RunForever); err != nil {
		b.Shutdown()
		return Result{}, err
	}
	res.Wall = time.Since(start)
	res.Stats = b.Stats()
	res.Shards = b.Shards()
	res.Advances = b.Advances()
	res.Crossings = b.Crossings
	res.Placement = b.Placement
	// Opportunistic harvest: a completed single-kernel TDfull run is a
	// valid profiling run (profiles are schedule-independent), so keep
	// its counters for a later profile-guided build of the same config.
	if cacheable && res.Shards == 1 && cfg.Mode == TDfull {
		pipeProfiles.Put(profileKey{cfg.Depth, cfg.Blocks, cfg.WordsPerBlock, cfg.Burst, cfg.Seed}, b.Profile())
	}
	if cfg.Mode != Untimed {
		for _, e := range ends {
			if e > res.SimEnd {
				res.SimEnd = e
			}
		}
	}
	return *res, nil
}

// pipeProfiles memoizes measured profiles per default-rate config —
// safe because profiles are schedule-independent.
var pipeProfiles = netlist.NewProfileCache()

// profileKey is the comparable cache key of a default-rate config.
type profileKey struct {
	Depth, Blocks, WordsPerBlock, Burst int
	Seed                                int64
}

// profileFor runs phase one of a profile-guided build: the same config
// once single-kernel (necessarily TDfull — only Smart-FIFO builds
// shard), harvesting the measured traffic profile for the sharded
// placement.
func profileFor(ctx context.Context, cfg Config, cacheable bool) (*netlist.Profile, error) {
	key := profileKey{cfg.Depth, cfg.Blocks, cfg.WordsPerBlock, cfg.Burst, cfg.Seed}
	if cacheable {
		if p, ok := pipeProfiles.Get(key); ok {
			return p, nil
		}
	}
	g, _, _ := modelGraph(cfg)
	b, err := g.Build(netlist.Options{Shards: 1, Impl: netlist.Smart})
	if err != nil {
		panic(fmt.Sprintf("pipeline: %v", err))
	}
	err = b.RunGuarded(ctx, sim.RunForever)
	b.Shutdown()
	if err != nil {
		return nil, err
	}
	prof := b.Profile()
	if cacheable {
		pipeProfiles.Put(key, prof)
	}
	return prof, nil
}

// modelGraph wires the three-module benchmark graph and returns the
// result and per-module end-date slots its bodies write into. A fresh
// graph per call: a netlist graph elaborates at most once, and the
// profiled two-phase builds the model twice. cfg must be filled.
func modelGraph(cfg Config) (*netlist.Graph, *Result, *[3]sim.Time) {
	timed := cfg.Mode != Untimed
	newDelay := func(p *sim.Process) delayer {
		switch cfg.Mode {
		case Untimed:
			return func(sim.Time) {}
		case TDless:
			return p.Wait
		case TDfull:
			return p.Inc
		case Quantum:
			q := td.NewQuantumKeeper(p, cfg.QuantumValue)
			return q.Inc
		}
		panic("pipeline: unknown mode")
	}

	g := netlist.New("fig5")
	f1 := netlist.AddChan[workload.Word](g, "f1", cfg.Depth).WithBurst(cfg.Burst)
	f2 := netlist.AddChan[workload.Word](g, "f2", cfg.Depth).WithBurst(cfg.Burst)

	n := cfg.Blocks * cfg.WordsPerBlock
	res := &Result{Mode: cfg.Mode, Depth: cfg.Depth, Words: n}

	// Each module records its own final local date; the simulated end
	// date is the latest (a decoupled process may terminate with its
	// local date ahead of the global clock). Per-module slots keep the
	// bodies race-free across shards.
	var ends [3]sim.Time

	src := g.Thread("source", nil)
	out1 := f1.Output(src)
	tx := g.Thread("transmitter", nil)
	in1, out2 := f1.Input(tx), f2.Output(tx)
	snk := g.Thread("sink", nil)
	in2 := f2.Input(snk)

	if cfg.Burst > 1 {
		// Burst-dominated configuration: words move in chunks through
		// the burst APIs (bulk fast paths for TDfull and Untimed, the
		// mode's per-word delayer for TDless and Quantum).
		writeChunk := func(p *sim.Process, w fifo.Writer[workload.Word], delay delayer, chunk []workload.Word, per sim.Time) {
			switch cfg.Mode {
			case TDfull:
				fifo.WriteBurst(p, w, chunk, per)
			case Untimed:
				fifo.WriteBurst(p, w, chunk, 0)
			default:
				for i, v := range chunk {
					if i > 0 {
						delay(per)
					}
					w.Write(v)
				}
			}
		}
		readChunk := func(p *sim.Process, r fifo.Reader[workload.Word], delay delayer, chunk []workload.Word, per sim.Time) {
			switch cfg.Mode {
			case TDfull:
				fifo.ReadBurst(p, r, chunk, per)
			case Untimed:
				fifo.ReadBurst(p, r, chunk, 0)
			default:
				for i := range chunk {
					if i > 0 {
						delay(per)
					}
					chunk[i] = r.Read()
				}
			}
		}
		src.Body(func(p *sim.Process) {
			delay := newDelay(p)
			w := out1.End()
			buf := make([]workload.Word, cfg.Burst)
			for i, ci := 0, 0; i < n; ci++ {
				m := min(cfg.Burst, n-i)
				per := cfg.SourceRate(ci)
				for j := 0; j < m; j++ {
					buf[j] = workload.WordAt(cfg.Seed, i+j)
				}
				writeChunk(p, w, delay, buf[:m], per)
				delay(per)
				i += m
			}
			ends[0] = p.LocalTime()
		})
		tx.Body(func(p *sim.Process) {
			delay := newDelay(p)
			r, w := in1.End(), out2.End()
			buf := make([]workload.Word, cfg.Burst)
			for i, ci := 0, 0; i < n; ci++ {
				m := min(cfg.Burst, n-i)
				per := cfg.TransmitRate(ci)
				readChunk(p, r, delay, buf[:m], per)
				delay(per)
				for j := 0; j < m; j++ {
					buf[j] ^= 0xa5a5a5a5 // the "transmission" transform
				}
				writeChunk(p, w, delay, buf[:m], per)
				delay(per)
				i += m
			}
			ends[1] = p.LocalTime()
		})
		snk.Body(func(p *sim.Process) {
			delay := newDelay(p)
			r := in2.End()
			buf := make([]workload.Word, cfg.Burst)
			sum := uint64(0)
			for i, ci := 0, 0; i < n; ci++ {
				// Chunks never straddle a block boundary, so the
				// dated block-completion log keeps its place.
				m := min(cfg.Burst, n-i, cfg.WordsPerBlock-i%cfg.WordsPerBlock)
				per := cfg.SinkRate(ci)
				readChunk(p, r, delay, buf[:m], per)
				delay(per)
				for _, w := range buf[:m] {
					sum = workload.Checksum(sum, w)
				}
				i += m
				if timed && i%cfg.WordsPerBlock == 0 {
					res.BlockDates = append(res.BlockDates, p.LocalTime())
				}
			}
			res.Checksum = sum
			ends[2] = p.LocalTime()
		})
	} else {
		src.Body(func(p *sim.Process) {
			delay := newDelay(p)
			w := out1.End()
			for i := 0; i < n; i++ {
				w.Write(workload.WordAt(cfg.Seed, i))
				delay(cfg.SourceRate(i))
			}
			ends[0] = p.LocalTime()
		})
		tx.Body(func(p *sim.Process) {
			delay := newDelay(p)
			r, w := in1.End(), out2.End()
			for i := 0; i < n; i++ {
				v := r.Read()
				delay(cfg.TransmitRate(i))
				w.Write(v ^ 0xa5a5a5a5) // the "transmission" transform
			}
			ends[1] = p.LocalTime()
		})
		snk.Body(func(p *sim.Process) {
			delay := newDelay(p)
			r := in2.End()
			sum := uint64(0)
			for i := 0; i < n; i++ {
				sum = workload.Checksum(sum, r.Read())
				delay(cfg.SinkRate(i))
				if timed && (i+1)%cfg.WordsPerBlock == 0 {
					res.BlockDates = append(res.BlockDates, p.LocalTime())
				}
			}
			res.Checksum = sum
			ends[2] = p.LocalTime()
		})
	}

	return g, res, &ends
}

// MaxTimingError returns the largest absolute difference between the
// per-block completion dates of r and the reference ref (typically a
// TDless run): the accuracy metric of the quantum ablation. It panics if
// the runs transported different workloads.
func MaxTimingError(ref, r Result) sim.Time {
	if len(ref.BlockDates) != len(r.BlockDates) {
		panic("pipeline: incomparable results")
	}
	var max sim.Time
	for i := range ref.BlockDates {
		d := r.BlockDates[i] - ref.BlockDates[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}
