package pipeline

// Trace-equivalence pins for the burst-dominated configuration
// (Config.Burst): the bulk transfer paths must reproduce, bit for bit, the
// dated block log of the scalar per-word reference — across modes, depths
// and shard counts.

import (
	"fmt"
	"testing"
)

func resultKey(r Result) string {
	return fmt.Sprintf("%v|%x|%v", r.BlockDates, r.Checksum, r.SimEnd)
}

// TestBurstTraceEquivalence: at every depth of the acceptance grid, the
// chunked TDfull build (bulk Smart-FIFO paths) produces exactly the dates
// of the chunked TDless build (regular FIFOs, one Wait per word) — the
// §IV-A oracle on the bulk paths — and the chunked untimed build moves the
// same data.
func TestBurstTraceEquivalence(t *testing.T) {
	for _, depth := range []int{1, 4, 64} {
		for _, burst := range []int{2, 16, 64} {
			cfg := Config{Depth: depth, Burst: burst, Blocks: 5, WordsPerBlock: 192}
			ref := cfg
			ref.Mode = TDless
			bulk := cfg
			bulk.Mode = TDfull
			r1, r2 := Run(ref), Run(bulk)
			if resultKey(r1) != resultKey(r2) {
				t.Errorf("depth=%d burst=%d: TDburst diverges from chunked TDless:\nref  %s\nbulk %s",
					depth, burst, resultKey(r1), resultKey(r2))
			}
			un := cfg
			un.Mode = Untimed
			if r3 := Run(un); r3.Checksum != r1.Checksum {
				t.Errorf("depth=%d burst=%d: untimed chunked checksum differs", depth, burst)
			}
		}
	}
}

// TestBurstShardedMatchesSingleKernel: the chunked model over ShardedFIFO
// bridges on 2 and 3 kernels keeps the single-kernel dates (1-vs-N-shard
// bulk trace equivalence).
func TestBurstShardedMatchesSingleKernel(t *testing.T) {
	for _, depth := range []int{1, 4, 64} {
		cfg := Config{Mode: TDfull, Depth: depth, Burst: 16, Blocks: 5, WordsPerBlock: 192}
		single := Run(cfg)
		for _, shards := range []int{2, 3} {
			sc := cfg
			sc.Shards = shards
			sh := Run(sc)
			if resultKey(single) != resultKey(sh) {
				t.Errorf("depth=%d shards=%d: sharded burst run diverges:\nsingle  %s\nsharded %s",
					depth, shards, resultKey(single), resultKey(sh))
			}
		}
	}
}

// TestBurstQuantumChunkedRuns: the quantum ablation also accepts the
// chunked model (its per-word delayer between chunk words), moving the
// same data; its timing error stays the ablation's business.
func TestBurstQuantumChunkedRuns(t *testing.T) {
	ref := Run(Config{Mode: TDless, Depth: 8, Burst: 16, Blocks: 3, WordsPerBlock: 96})
	q := Run(Config{Mode: Quantum, Depth: 8, Burst: 16, Blocks: 3, WordsPerBlock: 96, QuantumValue: 100})
	if q.Checksum != ref.Checksum {
		t.Errorf("quantum chunked checksum differs: %x vs %x", q.Checksum, ref.Checksum)
	}
	if len(q.BlockDates) != len(ref.BlockDates) {
		t.Errorf("quantum chunked block count differs: %d vs %d", len(q.BlockDates), len(ref.BlockDates))
	}
}
