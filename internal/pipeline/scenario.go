package pipeline

import (
	"context"
	"fmt"

	"repro/internal/netlist"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Scenario registry hook: the §IV-B three-module benchmark as a campaign
// model. The payload seed is derived from the spec's "seed" through the
// deterministic scenario RNG, so identical specs give identical traces
// across runs and worker counts.
func init() {
	scenario.Register(scenario.Model{
		Name:  "pipeline",
		Keys:  []string{"mode", "depth", "blocks", "words_per_block", "quantum_ns", "shards", "partitioner", "seed"},
		Run:   runScenario,
		Check: checkScenario,
	})
}

// scenarioConfig translates spec params into a Config. Campaign workloads
// default far smaller than the paper's 1000×1000 so that matrix sweeps
// with hundreds of points stay cheap; the paper-scale run is one
// parameter away.
func scenarioConfig(p scenario.Params) (Config, error) {
	r := scenario.NewReader(p)
	cfg := Config{
		Depth:         r.Int("depth", 16),
		Blocks:        r.Int("blocks", 20),
		WordsPerBlock: r.Int("words_per_block", 100),
		QuantumValue:  r.Time("quantum_ns", sim.US),
		Shards:        r.Int("shards", 0),
		Partitioner:   r.String("partitioner", ""),
	}
	switch m := r.String("mode", "TDfull"); m {
	case "untimed":
		cfg.Mode = Untimed
	case "TDless":
		cfg.Mode = TDless
	case "TDfull":
		cfg.Mode = TDfull
	case "quantum":
		cfg.Mode = Quantum
	default:
		return cfg, fmt.Errorf("pipeline: unknown mode %q (want untimed, TDless, TDfull or quantum)", m)
	}
	rng := scenario.Rand(r.Int64("seed", 1))
	cfg.Seed = rng.Int63()
	if err := r.Err(); err != nil {
		return cfg, err
	}
	if cfg.Shards > 1 && cfg.Mode != TDfull {
		return cfg, fmt.Errorf("pipeline: mode %v cannot be sharded (only TDfull carries the Smart-FIFO dates)", cfg.Mode)
	}
	if cfg.Shards > 3 {
		return cfg, fmt.Errorf("pipeline: %d shards but the model has only 3 modules", cfg.Shards)
	}
	if _, err := netlist.PartitionerByName(cfg.Partitioner); err != nil {
		return cfg, err
	}
	if cfg.Depth < 1 || cfg.Blocks < 1 || cfg.WordsPerBlock < 1 {
		return cfg, fmt.Errorf("pipeline: depth, blocks and words_per_block must be >= 1")
	}
	return cfg, nil
}

func runScenario(ctx context.Context, p scenario.Params) (scenario.Outcome, error) {
	cfg, err := scenarioConfig(p)
	if err != nil {
		return scenario.Outcome{}, err
	}
	res, err := RunCtx(ctx, cfg)
	if err != nil {
		return scenario.Outcome{}, err
	}
	d := scenario.NewDigest()
	d.Times(res.BlockDates)
	// Kernel-stat counters are schedule-dependent for sharded runs
	// (see scenario.Outcome.CtxSwitches); report them single-kernel only.
	ctxSw := res.Stats.ContextSwitches
	if res.Shards > 1 {
		ctxSw = 0
	}
	counters := map[string]uint64{
		"words":  uint64(res.Words),
		"blocks": uint64(len(res.BlockDates)),
		"shards": uint64(res.Shards),
	}
	res.Placement.AddCounters(counters)
	return scenario.Outcome{
		SimEndNS:    int64(res.SimEnd / sim.NS),
		CtxSwitches: ctxSw,
		Checksums:   []uint64{res.Checksum},
		DatesHash:   d.Sum(),
		Counters:    counters,
	}, nil
}

// blockTrace renders a run's dated block completions (and final checksum)
// as a trace, so two runs compare through the §IV-A oracle.
func blockTrace(r Result) *trace.Recorder {
	rec := trace.NewRecorder()
	for i, d := range r.BlockDates {
		rec.Log(trace.Entry{Date: d, Proc: "sink", Msg: fmt.Sprintf("block %d", i)})
	}
	rec.Log(trace.Entry{Date: r.SimEnd, Proc: "sink", Msg: fmt.Sprintf("checksum %016x", r.Checksum)})
	return rec
}

// checkScenario is the model's trace-equivalence spot check: it runs the
// point's workload shape through the TDless reference and the decoupled
// TDfull build (with the point's shard count) and diffs the dated traces.
// The point's own mode is deliberately ignored: quantum points have a
// known nonzero timing error — that is the ablation, not a bug — while
// the TDless/TDfull pair must agree exactly for every shape.
func checkScenario(ctx context.Context, p scenario.Params) (string, error) {
	cfg, err := scenarioConfig(p)
	if err != nil {
		return "", err
	}
	ref := cfg
	ref.Mode, ref.Shards = TDless, 0
	dec := cfg
	dec.Mode = TDfull
	refRes, err := RunCtx(ctx, ref)
	if err != nil {
		return "", err
	}
	decRes, err := RunCtx(ctx, dec)
	if err != nil {
		return "", err
	}
	return trace.Diff(blockTrace(refRes), blockTrace(decRes)), nil
}
