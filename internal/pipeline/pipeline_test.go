package pipeline_test

import (
	"testing"

	"fmt"
	"strings"

	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// small returns a quick configuration for tests.
func small(m pipeline.Mode, depth int) pipeline.Config {
	return pipeline.Config{
		Mode:          m,
		Depth:         depth,
		Blocks:        8,
		WordsPerBlock: 50,
		Seed:          3,
	}
}

func TestAllModesSameChecksum(t *testing.T) {
	ref := pipeline.Run(small(pipeline.TDless, 4))
	for _, m := range []pipeline.Mode{pipeline.Untimed, pipeline.TDfull} {
		r := pipeline.Run(small(m, 4))
		if r.Checksum != ref.Checksum {
			t.Errorf("%v checksum %x != TDless %x", m, r.Checksum, ref.Checksum)
		}
	}
	q := small(pipeline.Quantum, 4)
	q.QuantumValue = 100 * sim.NS
	if r := pipeline.Run(q); r.Checksum != ref.Checksum {
		t.Errorf("quantum checksum %x != TDless %x", r.Checksum, ref.Checksum)
	}
}

// TestTDfullExactAccuracy is the paper's claim on the benchmark system:
// TDfull reproduces every TDless block-completion date exactly, at every
// depth.
func TestTDfullExactAccuracy(t *testing.T) {
	for _, depth := range []int{1, 2, 4, 32} {
		ref := pipeline.Run(small(pipeline.TDless, depth))
		got := pipeline.Run(small(pipeline.TDfull, depth))
		if ref.SimEnd != got.SimEnd {
			t.Errorf("depth %d: SimEnd %v != %v", depth, got.SimEnd, ref.SimEnd)
		}
		if e := pipeline.MaxTimingError(ref, got); e != 0 {
			t.Errorf("depth %d: TDfull timing error %v, want 0", depth, e)
		}
	}
}

// TestQuantumHasTimingError: the ablation's premise — with a large quantum
// the block dates drift, unlike TDfull.
func TestQuantumHasTimingError(t *testing.T) {
	depth := 4
	ref := pipeline.Run(small(pipeline.TDless, depth))
	q := small(pipeline.Quantum, depth)
	q.QuantumValue = 10 * sim.US
	got := pipeline.Run(q)
	if e := pipeline.MaxTimingError(ref, got); e == 0 {
		t.Error("quantum 10us produced zero timing error; ablation premise broken")
	}
}

// TestQuantumZeroIsTDless: quantum 0 degenerates to wait-per-annotation,
// hence exact timing.
func TestQuantumZeroIsTDless(t *testing.T) {
	depth := 2
	ref := pipeline.Run(small(pipeline.TDless, depth))
	q := small(pipeline.Quantum, depth)
	q.QuantumValue = 0
	got := pipeline.Run(q)
	if e := pipeline.MaxTimingError(ref, got); e != 0 {
		t.Errorf("quantum 0 timing error %v, want 0", e)
	}
	if ref.SimEnd != got.SimEnd {
		t.Errorf("SimEnd %v != %v", got.SimEnd, ref.SimEnd)
	}
}

// TestContextSwitchShape verifies the Fig. 5 mechanism on switch counts
// (robust, unlike wall time, under `go test` noise):
//   - TDless is depth-independent (one switch per annotation);
//   - TDfull decreases with depth;
//   - at large depth TDfull does far fewer switches than TDless.
func TestContextSwitchShape(t *testing.T) {
	cs := func(m pipeline.Mode, depth int) uint64 {
		return pipeline.Run(small(m, depth)).Stats.ContextSwitches
	}
	tdless1, tdless64 := cs(pipeline.TDless, 1), cs(pipeline.TDless, 64)
	ratio := float64(tdless1) / float64(tdless64)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("TDless switches vary with depth: d1=%d d64=%d", tdless1, tdless64)
	}
	full1, full4, full64 := cs(pipeline.TDfull, 1), cs(pipeline.TDfull, 4), cs(pipeline.TDfull, 64)
	if !(full1 > full4 && full4 > full64) {
		t.Errorf("TDfull switches not decreasing: %d, %d, %d", full1, full4, full64)
	}
	if full64*4 > tdless64 {
		t.Errorf("TDfull at depth 64 (%d switches) not ≪ TDless (%d)", full64, tdless64)
	}
	un1, un64 := cs(pipeline.Untimed, 1), cs(pipeline.Untimed, 64)
	if un64 >= un1 {
		t.Errorf("untimed switches not decreasing with depth: %d → %d", un1, un64)
	}
}

// TestSimEndReasonable: the simulated end date must be bounded below by the
// slowest stage's total service demand.
func TestSimEndReasonable(t *testing.T) {
	cfg := small(pipeline.TDless, 8)
	r := pipeline.Run(cfg)
	words := sim.Time(cfg.Blocks * cfg.WordsPerBlock)
	minEnd := words * 7 * sim.NS // transmitter is the fastest stage
	if r.SimEnd < minEnd {
		t.Errorf("SimEnd %v below service demand %v", r.SimEnd, minEnd)
	}
	if len(r.BlockDates) != cfg.Blocks {
		t.Errorf("got %d block dates, want %d", len(r.BlockDates), cfg.Blocks)
	}
}

// TestCustomRates exercises the rate-schedule plumbing.
func TestCustomRates(t *testing.T) {
	cfg := small(pipeline.TDless, 4)
	cfg.SourceRate = workload.Constant(5 * sim.NS)
	cfg.TransmitRate = workload.Constant(5 * sim.NS)
	cfg.SinkRate = workload.Constant(5 * sim.NS)
	ref := pipeline.Run(cfg)
	cfg.Mode = pipeline.TDfull
	got := pipeline.Run(cfg)
	if e := pipeline.MaxTimingError(ref, got); e != 0 {
		t.Errorf("timing error %v with constant rates", e)
	}
}

// TestRandomRatesAccuracy uses the random schedule on both modes.
func TestRandomRatesAccuracy(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := small(pipeline.TDless, 3)
		cfg.SourceRate = workload.Random(seed, 4, 5*sim.NS)
		cfg.TransmitRate = workload.Random(seed+100, 4, 5*sim.NS)
		cfg.SinkRate = workload.Random(seed+200, 4, 5*sim.NS)
		ref := pipeline.Run(cfg)
		cfg.Mode = pipeline.TDfull
		got := pipeline.Run(cfg)
		if e := pipeline.MaxTimingError(ref, got); e != 0 {
			t.Errorf("seed %d: timing error %v", seed, e)
		}
	}
}

// blockTrace turns a result's dated block completions into a trace, so the
// §IV-A equivalence framework can compare runs.
func blockTrace(r pipeline.Result) *trace.Recorder {
	rec := trace.NewRecorder()
	for i, d := range r.BlockDates {
		rec.Log(trace.Entry{Date: d, Proc: "sink", Msg: fmt.Sprintf("block %d sum", i)})
	}
	rec.Log(trace.Entry{Date: r.SimEnd, Proc: "sink", Msg: fmt.Sprintf("checksum %x", r.Checksum)})
	return rec
}

// TestShardedRunMatchesSingleKernel pins the tentpole claim on the Fig. 5
// model: partitioning the three modules over 2 or 3 shards changes the
// wall-clock schedule but not a single date or value.
func TestShardedRunMatchesSingleKernel(t *testing.T) {
	for _, depth := range []int{1, 4, 64} {
		cfg := small(pipeline.TDfull, depth)
		ref := pipeline.Run(cfg)
		refTrace := blockTrace(ref)
		for _, shards := range []int{2, 3} {
			cfg.Shards = shards
			r := pipeline.Run(cfg)
			if r.Shards != shards {
				t.Fatalf("depth %d: want %d shards, ran with %d", depth, shards, r.Shards)
			}
			if d := trace.Diff(refTrace, blockTrace(r)); d != "" {
				t.Errorf("depth %d, %d shards: trace differs from single kernel:\n%s", depth, shards, d)
			}
			if r.Advances == 0 {
				t.Errorf("depth %d, %d shards: no coordinator advances recorded", depth, shards)
			}
		}
	}
}

// TestShardedTDlessPanics: only TDfull carries the dates that make
// sharding conservative.
func TestShardedTDlessPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sharding a TDless run should panic")
		}
	}()
	cfg := small(pipeline.TDless, 4)
	cfg.Shards = 2
	pipeline.Run(cfg)
}

// TestShardsBeyondModulesPanics pins the lifted clamp's replacement: more
// shards than modules is a clear error, not a silent clamp to 3.
func TestShardsBeyondModulesPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("shards > modules should panic")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "3 partitionable units") {
			t.Fatalf("panic message %q does not name the unit count", msg)
		}
	}()
	cfg := small(pipeline.TDfull, 4)
	cfg.Shards = 5
	pipeline.Run(cfg)
}

// TestPartitionerEquivalence: every registered partitioner at every legal
// shard count reproduces the single-kernel dates, and mincut cuts fewer
// channels than roundrobin at 2 shards.
func TestPartitionerEquivalence(t *testing.T) {
	cfg := small(pipeline.TDfull, 4)
	refTrace := blockTrace(pipeline.Run(cfg))
	crossings := map[string]int{}
	for _, part := range []string{"single", "roundrobin", "mincut"} {
		for shards := 1; shards <= 3; shards++ {
			c := cfg
			c.Shards, c.Partitioner = shards, part
			r := pipeline.Run(c)
			if d := trace.Diff(refTrace, blockTrace(r)); d != "" {
				t.Errorf("%s/%d shards: trace differs:\n%s", part, shards, d)
			}
			if shards == 2 {
				crossings[part] = r.Crossings
			}
		}
	}
	if crossings["mincut"] >= crossings["roundrobin"] {
		t.Errorf("mincut crossings (%d) not below roundrobin (%d) at 2 shards",
			crossings["mincut"], crossings["roundrobin"])
	}
	if crossings["single"] != 0 {
		t.Errorf("single partitioner crossed %d channels", crossings["single"])
	}
}
