// Package metrics is the dependency-free observability substrate: a
// registry of atomically-updated counters, gauges and fixed-bucket
// histograms, encoded on demand in the Prometheus text exposition
// format (0.0.4, prometheus.go) and reduced to report quantiles by the
// shared nearest-rank helpers (quantile.go).
//
// The update path is built for simulation hot loops: every metric
// method is allocation-free and safe from any goroutine (shard workers
// bump the same counter concurrently), and every method is a no-op on
// a nil receiver — instrumented code holds plain *Counter fields and
// never branches on "metrics enabled", because a disabled registry
// simply hands out nil metrics. Reads are snapshot-consistent: Snapshot
// and WritePrometheus take the registry lock, so a scrape never
// observes a half-registered family.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind names a metric family's type.
type Kind uint8

const (
	// KindCounter is a monotonically increasing value.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one name="value" pair on a series. Labels are fixed at
// registration: acquire the labeled series once, at setup, and the
// update path stays zero-alloc.
type Label struct {
	Name, Value string
}

// Counter is a monotonically increasing, atomically updated value. All
// methods are no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated value that can go up and down. All
// methods are no-ops on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution: upper bounds chosen at
// registration, one atomic counter per bucket plus a float-bits sum.
// The observation count is the sum of the buckets, so a scrape's
// _count always equals its +Inf bucket. Observe is allocation-free and
// safe from any goroutine; all methods are no-ops on a nil receiver.
type Histogram struct {
	bounds  []float64 // sorted inclusive upper bounds; +Inf is implicit
	buckets []atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records v in the first bucket whose upper bound is >= v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[sort.SearchFloat64s(h.bounds, v)].Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// series is one registered time series: a metric plus its label set.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	bounds []float64 // histogram families only
	// series is keyed by the joined label values (registration returns
	// the existing series, so re-enabling metrics is idempotent).
	series map[string]*series
}

// Registry holds metric families and hands out their series. A nil
// *Registry is the disabled state: every registration method returns a
// nil metric, whose updates are no-ops — instrumented packages never
// special-case "metrics off".
type Registry struct {
	mu  sync.Mutex
	fam map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fam: map[string]*family{}}
}

// validName reports whether name is a legal Prometheus metric or label
// name: [a-zA-Z_:][a-zA-Z0-9_:]* (labels additionally may not use ':',
// but the registry is not the place to split that hair).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// seriesKey joins label values; label NAMES are fixed per family, so
// values alone identify the series.
func seriesKey(labels []Label) string {
	k := ""
	for _, l := range labels {
		k += l.Value + "\x00"
	}
	return k
}

// register returns the series for (name, labels), creating family and
// series as needed. Registration is idempotent; a kind or label-name
// mismatch against an existing family panics (a programming error, like
// a duplicate flag).
func (r *Registry) register(name, help string, kind Kind, bounds []float64, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Name) {
			panic(fmt.Sprintf("metrics: %s: invalid label name %q", name, l.Name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fam[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, series: map[string]*series{}}
		r.fam[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s re-registered as %v (was %v)", name, kind, f.kind))
	}
	key := seriesKey(labels)
	s, ok := f.series[key]
	if ok {
		return s
	}
	s = &series{labels: append([]Label(nil), labels...)}
	switch kind {
	case KindCounter:
		s.c = &Counter{}
	case KindGauge:
		s.g = &Gauge{}
	case KindHistogram:
		s.h = &Histogram{
			bounds:  f.bounds,
			buckets: make([]atomic.Uint64, len(f.bounds)+1),
		}
	}
	f.series[key] = s
	return s
}

// Counter registers (or finds) the counter named name with the given
// labels. Nil registry returns nil (a no-op counter).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindCounter, nil, labels).c
}

// Gauge registers (or finds) the gauge named name with the given
// labels. Nil registry returns nil (a no-op gauge).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, KindGauge, nil, labels).g
}

// Histogram registers (or finds) the histogram named name with the
// given inclusive upper bucket bounds (sorted ascending; the +Inf
// bucket is implicit). Nil registry returns nil (a no-op histogram).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: %s: histogram needs at least one bound", name))
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("metrics: %s: histogram bounds not sorted", name))
	}
	b := append([]float64(nil), bounds...)
	return r.register(name, help, KindHistogram, b, labels).h
}

// SeriesSnap is one series in a snapshot.
type SeriesSnap struct {
	Labels []Label
	// Value carries counters (as a float) and gauges.
	Value float64
	// Histogram payload: per-bucket (non-cumulative) counts aligned
	// with Bounds, plus the +Inf bucket at the end.
	Bounds  []float64
	Buckets []uint64
	Count   uint64
	Sum     float64
}

// FamilySnap is one metric family in a snapshot.
type FamilySnap struct {
	Name   string
	Help   string
	Kind   Kind
	Series []SeriesSnap
}

// Snapshot returns every family, sorted by name (series sorted by label
// values), under the registry lock — a scrape-consistent view. The
// individual atomic loads are not a global atomic cut (writers keep
// running), but each counter value is monotone across snapshots.
func (r *Registry) Snapshot() []FamilySnap {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FamilySnap, 0, len(r.fam))
	for _, f := range r.fam {
		fs := FamilySnap{Name: f.name, Help: f.help, Kind: f.kind}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			ss := SeriesSnap{Labels: s.labels}
			switch f.kind {
			case KindCounter:
				ss.Value = float64(s.c.Value())
			case KindGauge:
				ss.Value = float64(s.g.Value())
			case KindHistogram:
				ss.Bounds = f.bounds
				ss.Buckets = make([]uint64, len(s.h.buckets))
				for i := range s.h.buckets {
					ss.Buckets[i] = s.h.buckets[i].Load()
					ss.Count += ss.Buckets[i]
				}
				ss.Sum = math.Float64frombits(s.h.sumBits.Load())
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
