package metrics

import (
	"math"
	"sort"
)

// Report quantiles, shared by the latency harnesses (cmd/parlat) and
// the histogram snapshots: one nearest-rank convention instead of a
// percentile-index formula re-derived per report.

// NearestRank returns the 0-based index of the q-quantile in a sorted
// sample of size n under the floor(q*n) nearest-rank convention — the
// integer-arithmetic rule (n/2 for p50, n*99/100 for p99) the latency
// reports have always used. The product is nudged before flooring so
// binary floating point cannot pull an exactly-representable rank (like
// 0.99*300) one below its integer value. The index is clamped to
// [0, n-1]; n must be positive.
func NearestRank(n int, q float64) int {
	idx := int(math.Floor(q*float64(n) + 1e-9))
	if idx < 0 {
		idx = 0
	}
	if idx > n-1 {
		idx = n - 1
	}
	return idx
}

// Quantile returns the q-quantile of an ascending-sorted sample by
// nearest rank. It panics on an empty sample.
func Quantile(sorted []float64, q float64) float64 {
	return sorted[NearestRank(len(sorted), q)]
}

// Quantiles sorts a copy of samples and returns one nearest-rank value
// per requested quantile. It panics on an empty sample.
func Quantiles(samples []float64, qs ...float64) []float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = Quantile(s, q)
	}
	return out
}

// HistogramQuantile estimates the q-quantile of a bucketed
// distribution: per-bucket (non-cumulative) counts aligned with their
// inclusive upper bounds, the +Inf bucket last. The target rank is
// located by the same nearest-rank rule as Quantile, then interpolated
// linearly within its bucket (the +Inf bucket answers the last finite
// bound). NaN on an empty distribution.
func HistogramQuantile(bounds []float64, buckets []uint64, q float64) float64 {
	var total uint64
	for _, c := range buckets {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	rank := uint64(NearestRank(int(total), q)) + 1 // 1-based target observation
	var cum uint64
	for i, c := range buckets {
		cum += c
		if cum < rank {
			continue
		}
		if i >= len(bounds) {
			return bounds[len(bounds)-1] // +Inf bucket: best finite answer
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		frac := float64(rank-(cum-c)) / float64(c)
		return lo + (bounds[i]-lo)*frac
	}
	return bounds[len(bounds)-1]
}

// SnapQuantile estimates the q-quantile of a histogram series snapshot.
func (s SeriesSnap) SnapQuantile(q float64) float64 {
	return HistogramQuantile(s.Bounds, s.Buckets, q)
}
