package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type served on
// a /metrics endpoint.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// escapeHelp escapes a HELP string per the exposition format: backslash
// and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// fmtFloat renders a sample value the way Prometheus expects.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeLabels renders {a="x",b="y"}, with extra (used for the
// histogram le label) appended last. Empty label sets render nothing.
func writeLabels(b *bufio.Writer, labels []Label, extra ...Label) {
	if len(labels)+len(extra) == 0 {
		return
	}
	b.WriteByte('{')
	first := true
	for _, l := range append(append([]Label(nil), labels...), extra...) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// WritePrometheus encodes the registry in the text exposition format
// (version 0.0.4): families sorted by name, each with its # HELP and
// # TYPE lines, histograms expanded into cumulative _bucket series plus
// _sum and _count. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	b := bufio.NewWriter(w)
	for _, f := range r.Snapshot() {
		if f.Help != "" {
			fmt.Fprintf(b, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(b, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, s := range f.Series {
			switch f.Kind {
			case KindCounter, KindGauge:
				b.WriteString(f.Name)
				writeLabels(b, s.Labels)
				fmt.Fprintf(b, " %s\n", fmtFloat(s.Value))
			case KindHistogram:
				cum := uint64(0)
				for i, bound := range s.Bounds {
					cum += s.Buckets[i]
					b.WriteString(f.Name + "_bucket")
					writeLabels(b, s.Labels, Label{"le", fmtFloat(bound)})
					fmt.Fprintf(b, " %d\n", cum)
				}
				b.WriteString(f.Name + "_bucket")
				writeLabels(b, s.Labels, Label{"le", "+Inf"})
				fmt.Fprintf(b, " %d\n", s.Count)
				b.WriteString(f.Name + "_sum")
				writeLabels(b, s.Labels)
				fmt.Fprintf(b, " %s\n", fmtFloat(s.Sum))
				b.WriteString(f.Name + "_count")
				writeLabels(b, s.Labels)
				fmt.Fprintf(b, " %d\n", s.Count)
			}
		}
	}
	return b.Flush()
}

// ParseExposition validates r as Prometheus text exposition format and
// returns the sorted set of metric family names it declares (the names
// on # TYPE lines). It checks the line grammar a scraper relies on —
// every sample belongs to a declared family, sample lines parse as
// name{labels} value, histogram sub-series map back to their family —
// without implementing the full protobuf-equivalent model. It is the
// shared validator behind cmd/metricscheck and the scrape tests.
func ParseExposition(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	types := map[string]string{}
	var order []string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			name, kind := parts[2], parts[3]
			if !validName(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, kind)
			}
			if _, dup := types[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
			}
			types[name] = kind
			order = append(order, name)
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or comment
		}
		name, rest, err := splitSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if _, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err != nil {
			return nil, fmt.Errorf("line %d: bad sample value in %q", lineNo, line)
		}
		fam := name
		if t, ok := types[fam]; !ok || t == "histogram" || t == "summary" {
			// A histogram sample carries a _bucket/_sum/_count suffix.
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base, ok2 := strings.CutSuffix(name, suf); ok2 {
					if t2, ok3 := types[base]; ok3 && (t2 == "histogram" || t2 == "summary") {
						fam = base
						break
					}
				}
			}
		}
		if _, ok := types[fam]; !ok {
			return nil, fmt.Errorf("line %d: sample %q has no # TYPE declaration", lineNo, name)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Strings(order)
	return order, nil
}

// splitSample splits a sample line into its metric name and the value
// text after the (optionally labeled) name, validating the label block
// syntax.
func splitSample(line string) (name, rest string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return "", "", fmt.Errorf("malformed sample line %q", line)
	}
	name = line[:i]
	if !validName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	if line[i] == ' ' {
		return name, line[i+1:], nil
	}
	// Scan the {...} label block, honouring escaped quotes.
	inQuote, esc := false, false
	for j := i + 1; j < len(line); j++ {
		c := line[j]
		if inQuote {
			switch {
			case esc:
				esc = false
			case c == '\\':
				esc = true
			case c == '"':
				inQuote = false
			}
			continue
		}
		switch c {
		case '"':
			inQuote = true
		case '}':
			return name, line[j+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated label block in %q", line)
}
