package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestNearestRankOracle pins NearestRank against the integer-arithmetic
// sorted-slice indexing the latency reports have always used: n/2 for
// p50 and n*99/100 for p99 — including the sizes where a naive
// float64 floor(q*n) would land one rank low (0.99*300 is
// 296.999... in binary floating point).
func TestNearestRankOracle(t *testing.T) {
	for n := 1; n <= 2048; n++ {
		if got, want := NearestRank(n, 0.5), n/2; got != want {
			t.Fatalf("n=%d p50: got %d, want %d", n, got, want)
		}
		if got, want := NearestRank(n, 0.99), n*99/100; got != want {
			t.Fatalf("n=%d p99: got %d, want %d", n, got, want)
		}
		if got, want := NearestRank(n, 1.0), n-1; got != want {
			t.Fatalf("n=%d p100: got %d, want %d", n, got, want)
		}
		if got := NearestRank(n, 0); got != 0 {
			t.Fatalf("n=%d p0: got %d, want 0", n, got)
		}
	}
	// n-1 clamping: p50 of a 1-sample set is that sample.
	if got := NearestRank(1, 0.5); got != 0 {
		t.Fatalf("n=1 p50: got %d, want 0", got)
	}
}

// TestQuantilesOracle compares Quantiles against direct sorted-slice
// indexing on random samples.
func TestQuantilesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 17, 100, 300, 1950} {
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.Float64() * 1e4
		}
		got := Quantiles(samples, 0.5, 0.99, 1.0)
		s := append([]float64(nil), samples...)
		sort.Float64s(s)
		want := []float64{s[n/2], s[n*99/100], s[n-1]}
		if n*99/100 > n-1 {
			want[1] = s[n-1]
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d q[%d]: got %v, want %v", n, i, got[i], want[i])
			}
		}
	}
	// The input sample must not be reordered.
	in := []float64{3, 1, 2}
	Quantiles(in, 0.5)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("Quantiles reordered its input: %v", in)
	}
}

func TestHistogramQuantile(t *testing.T) {
	bounds := []float64{10, 20, 40}
	// 10 observations <=10, 10 in (10,20], none in (20,40], 5 beyond.
	buckets := []uint64{10, 10, 0, 5}
	if got := HistogramQuantile(bounds, buckets, 0.0); got != 1 {
		// rank 1 of 25 → first bucket, 1/10 through (0,10].
		t.Fatalf("p0 = %v, want 1", got)
	}
	if got := HistogramQuantile(bounds, buckets, 0.5); math.Abs(got-13) > 1e-9 {
		// rank floor(0.5*25)+1 = 13 → 3rd observation of the (10,20]
		// bucket → 10 + 10*3/10 = 13.
		t.Fatalf("p50 = %v, want 13", got)
	}
	if got := HistogramQuantile(bounds, buckets, 1.0); got != 40 {
		// +Inf bucket answers the last finite bound.
		t.Fatalf("p100 = %v, want 40", got)
	}
	if got := HistogramQuantile(bounds, []uint64{0, 0, 0, 0}, 0.5); !math.IsNaN(got) {
		t.Fatalf("empty histogram = %v, want NaN", got)
	}
}
