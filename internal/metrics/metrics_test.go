package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", []float64{1})
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil metrics")
	}
	c.Add(3)
	c.Inc()
	g.Set(7)
	g.Add(-2)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("nil metrics must read zero")
	}
	if snap := r.Snapshot(); snap != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", snap)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("steps_total", "steps")
	b := r.Counter("steps_total", "steps")
	if a != b {
		t.Fatalf("same name must return the same counter")
	}
	la := r.Counter("wakes_total", "", Label{"grade", "hard"})
	lb := r.Counter("wakes_total", "", Label{"grade", "soft"})
	lc := r.Counter("wakes_total", "", Label{"grade", "hard"})
	if la == lb {
		t.Fatalf("distinct label values must be distinct series")
	}
	if la != lc {
		t.Fatalf("same label values must return the same series")
	}
	la.Add(2)
	lb.Inc()
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("want 2 families, got %d", len(snap))
	}
	if got := len(snap[1].Series); got != 2 {
		t.Fatalf("wakes_total: want 2 series, got %d", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("thing_total", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("thing_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "2fast", "has-dash", "has space"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q must panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.001, 0.005, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	snap := r.Snapshot()[0].Series[0]
	// 0.0005 and 0.001 land in le=0.001 (inclusive), 0.005 in le=0.01,
	// 0.05 in le=0.1, 0.5 and 2 in +Inf.
	want := []uint64{2, 1, 1, 2}
	for i, w := range want {
		if snap.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, snap.Buckets[i], w, snap.Buckets)
		}
	}
	if snap.Count != 6 {
		t.Fatalf("count = %d, want 6", snap.Count)
	}
	if snap.Sum < 2.5564 || snap.Sum > 2.5566 {
		t.Fatalf("sum = %v, want ~2.5565", snap.Sum)
	}
}

// TestConcurrentWritersAndScrapers is the -race regression: N writer
// goroutines hammer every metric kind while M scrapers snapshot and
// encode, and every counter must be monotone across the snapshots each
// scraper takes.
func TestConcurrentWritersAndScrapers(t *testing.T) {
	const (
		writers = 8
		scrapes = 40
		perG    = 5000
	)
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	lc := r.Counter("graded_total", "", Label{"grade", "hard"})
	g := r.Gauge("active", "")
	h := r.Histogram("lat_seconds", "", []float64{1e-6, 1e-5, 1e-4, 1e-3})

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				lc.Add(2)
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(seed*perG+i) * 1e-8)
			}
		}(w)
	}
	errc := make(chan error, 4)
	for m := 0; m < 4; m++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastOps, lastGraded, lastHist uint64
			for i := 0; i < scrapes; i++ {
				for _, f := range r.Snapshot() {
					for _, s := range f.Series {
						switch f.Name {
						case "ops_total":
							if v := uint64(s.Value); v < lastOps {
								t.Errorf("ops_total went backwards: %d -> %d", lastOps, v)
							} else {
								lastOps = v
							}
						case "graded_total":
							if v := uint64(s.Value); v < lastGraded {
								t.Errorf("graded_total went backwards: %d -> %d", lastGraded, v)
							} else {
								lastGraded = v
							}
						case "lat_seconds":
							if s.Count < lastHist {
								t.Errorf("histogram count went backwards: %d -> %d", lastHist, s.Count)
							} else {
								lastHist = s.Count
							}
						}
					}
				}
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if got := c.Value(); got != writers*perG {
		t.Fatalf("ops_total = %d, want %d", got, writers*perG)
	}
	if got := lc.Value(); got != 2*writers*perG {
		t.Fatalf("graded_total = %d, want %d", got, 2*writers*perG)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != writers*perG {
		t.Fatalf("histogram count = %d, want %d", got, writers*perG)
	}
}

// TestUpdatePathAllocs pins the zero-allocation guarantee of the hot
// update methods, enabled and disabled (nil) alike.
func TestUpdatePathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total", "")
	g := r.Gauge("b", "")
	h := r.Histogram("c_seconds", "", []float64{1e-6, 1e-3, 1})
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	for name, fn := range map[string]func(){
		"counter":        func() { c.Add(1) },
		"gauge":          func() { g.Set(42) },
		"histogram":      func() { h.Observe(0.5) },
		"nil-counter":    func() { nc.Add(1) },
		"nil-gauge":      func() { ng.Set(42) },
		"nil-histogram":  func() { nh.Observe(0.5) },
		"counter-read":   func() { _ = c.Value() },
		"histogram-read": func() { _ = h.Count() },
	} {
		if avg := testing.AllocsPerRun(200, fn); avg != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, avg)
		}
	}
}
