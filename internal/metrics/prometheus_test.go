package metrics

import (
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exposition byte-for-byte: family
// ordering (sorted by name), HELP/TYPE lines, label rendering and
// escaping, and the histogram expansion into cumulative _bucket series
// plus _sum/_count.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last_total", "sorts last").Add(7)
	r.Gauge("active_workers", "currently running").Set(3)
	c := r.Counter("points_total", "points by state", Label{"state", "ok"})
	c.Add(12)
	r.Counter("points_total", "points by state", Label{"state", "failed"}).Inc()
	r.Counter("escaped_total", `a "quoted\" help`+"\nsecond line",
		Label{"path", `C:\tmp` + "\n" + `"x"`}).Inc()
	h := r.Histogram("lat_seconds", "exchange latency", []float64{0.001, 0.25})
	h.Observe(0.0001)
	h.Observe(0.0001)
	h.Observe(0.1)
	h.Observe(9)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP active_workers currently running
# TYPE active_workers gauge
active_workers 3
# HELP escaped_total a "quoted\\" help\nsecond line
# TYPE escaped_total counter
escaped_total{path="C:\\tmp\n\"x\""} 1
# HELP lat_seconds exchange latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.001"} 2
lat_seconds_bucket{le="0.25"} 3
lat_seconds_bucket{le="+Inf"} 4
lat_seconds_sum 9.1002
lat_seconds_count 4
# HELP points_total points by state
# TYPE points_total counter
points_total{state="failed"} 1
points_total{state="ok"} 12
# HELP zz_last_total sorts last
# TYPE zz_last_total counter
zz_last_total 7
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The golden output must round-trip through the shared validator.
	names, err := ParseExposition(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("golden output does not parse: %v", err)
	}
	wantNames := []string{"active_workers", "escaped_total", "lat_seconds", "points_total", "zz_last_total"}
	if len(names) != len(wantNames) {
		t.Fatalf("names = %v, want %v", names, wantNames)
	}
	for i := range names {
		if names[i] != wantNames[i] {
			t.Fatalf("names = %v, want %v", names, wantNames)
		}
	}
}

func TestParseExpositionRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"undeclared sample": "foo_total 3\n",
		"bad value":         "# TYPE foo_total counter\nfoo_total three\n",
		"bad type":          "# TYPE foo_total weird\n",
		"malformed TYPE":    "# TYPE foo_total\n",
		"unterminated":      "# TYPE foo_total counter\nfoo_total{a=\"x 3\n",
		"duplicate TYPE":    "# TYPE a counter\n# TYPE a counter\n",
		"bad name":          "# TYPE 2fast counter\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestParseExpositionHistogramSuffixes(t *testing.T) {
	in := `# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="+Inf"} 2
lat_seconds_sum 0.3
lat_seconds_count 2
`
	names, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "lat_seconds" {
		t.Fatalf("names = %v, want [lat_seconds]", names)
	}
}
