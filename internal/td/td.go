// Package td provides temporal-decoupling utilities above the simulation
// kernel: the TLM-2.0-style quantum keeper used by memory-mapped initiators
// (paper §II-A) and by the quantum ablation study.
//
// The Smart FIFO (package core) needs none of this — that is the paper's
// point — but the memory-mapped side of the case-study SoC uses a global
// quantum exactly as the TLM reference manual suggests.
package td

import (
	"fmt"

	"repro/internal/sim"
)

// QuantumKeeper accumulates local time for a thread process and
// synchronizes when the accumulated offset reaches the quantum, following
// tlm_utils::tlm_quantumkeeper.
//
// A quantum of zero disables decoupling: every Inc synchronizes
// immediately, which degenerates to wait(d) per annotation (the paper's
// TDless mode). A larger quantum means fewer context switches but a timing
// error bounded by the quantum for inter-process interactions.
type QuantumKeeper struct {
	p       *sim.Process
	quantum sim.Time
}

// NewQuantumKeeper returns a keeper for process p with the given quantum.
// The quantum must be non-negative.
func NewQuantumKeeper(p *sim.Process, quantum sim.Time) *QuantumKeeper {
	if quantum < 0 {
		panic(fmt.Sprintf("td: negative quantum %v", quantum))
	}
	return &QuantumKeeper{p: p, quantum: quantum}
}

// Process returns the process this keeper drives.
func (q *QuantumKeeper) Process() *sim.Process { return q.p }

// Quantum returns the current quantum.
func (q *QuantumKeeper) Quantum() sim.Time { return q.quantum }

// SetQuantum changes the quantum. It does not retroactively synchronize;
// the next Inc applies the new value.
func (q *QuantumKeeper) SetQuantum(quantum sim.Time) {
	if quantum < 0 {
		panic(fmt.Sprintf("td: negative quantum %v", quantum))
	}
	q.quantum = quantum
}

// Inc advances local time by d and synchronizes if the local offset has
// reached the quantum (always, when the quantum is zero).
func (q *QuantumKeeper) Inc(d sim.Time) {
	q.p.Inc(d)
	if q.NeedSync() {
		q.p.Sync()
	}
}

// NeedSync reports whether the local offset has reached the quantum.
func (q *QuantumKeeper) NeedSync() bool {
	return q.p.LocalOffset() >= q.quantum
}

// Sync synchronizes the process unconditionally.
func (q *QuantumKeeper) Sync() { q.p.Sync() }
