package td_test

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/td"
)

func TestQuantumKeeperSyncsAtQuantum(t *testing.T) {
	k := sim.NewKernel("t")
	k.Thread("p", func(p *sim.Process) {
		q := td.NewQuantumKeeper(p, 100*sim.NS)
		for i := 0; i < 9; i++ {
			q.Inc(30 * sim.NS)
		}
		// 270ns of annotations: syncs at 120ns and 240ns offsets.
		if p.LocalTime() != 270*sim.NS {
			t.Errorf("local = %v, want 270ns", p.LocalTime())
		}
	})
	k.Run(sim.RunForever)
	// Two syncs: 2 wakeups + 1 initial dispatch.
	if cs := k.Stats().ContextSwitches; cs != 3 {
		t.Errorf("ContextSwitches = %d, want 3", cs)
	}
}

func TestQuantumZeroDisablesDecoupling(t *testing.T) {
	k := sim.NewKernel("t")
	k.Thread("p", func(p *sim.Process) {
		q := td.NewQuantumKeeper(p, 0)
		for i := 0; i < 5; i++ {
			q.Inc(10 * sim.NS)
			if !p.Synchronized() {
				t.Error("process decoupled despite quantum 0")
			}
		}
	})
	k.Run(sim.RunForever)
	// Every Inc synchronizes: 5 wakeups + initial.
	if cs := k.Stats().ContextSwitches; cs != 6 {
		t.Errorf("ContextSwitches = %d, want 6", cs)
	}
}

func TestQuantumTimingError(t *testing.T) {
	// The §II-A flag example: a flag set for 10ns is invisible to a
	// second process unless the quantum is below 10ns. This is the
	// timing-accuracy loss the Smart FIFO avoids.
	observe := func(quantum sim.Time) bool {
		k := sim.NewKernel("t")
		flag := false
		k.Thread("setter", func(p *sim.Process) {
			q := td.NewQuantumKeeper(p, quantum)
			flag = true
			q.Inc(10 * sim.NS)
			flag = false
		})
		seen := false
		k.Thread("watcher", func(p *sim.Process) {
			for i := 0; i < 4; i++ {
				p.Wait(5 * sim.NS)
				if flag {
					seen = true
				}
			}
		})
		k.Run(sim.RunForever)
		k.Shutdown()
		return seen
	}
	if observe(5*sim.NS) != true {
		t.Error("flag invisible with quantum 5ns < 10ns")
	}
	if observe(1000*sim.NS) != false {
		t.Error("flag visible with quantum 1000ns: expected the documented inaccuracy")
	}
}

func TestNeedSyncAndSetQuantum(t *testing.T) {
	k := sim.NewKernel("t")
	k.Thread("p", func(p *sim.Process) {
		q := td.NewQuantumKeeper(p, 50*sim.NS)
		p.Inc(30 * sim.NS)
		if q.NeedSync() {
			t.Error("NeedSync at 30/50")
		}
		q.SetQuantum(20 * sim.NS)
		if !q.NeedSync() {
			t.Error("no NeedSync at 30/20")
		}
		if q.Quantum() != 20*sim.NS {
			t.Errorf("Quantum = %v", q.Quantum())
		}
		q.Sync()
		if !p.Synchronized() {
			t.Error("not synchronized after Sync")
		}
		if q.Process() != p {
			t.Error("Process() mismatch")
		}
	})
	k.Run(sim.RunForever)
}

func TestNegativeQuantumPanics(t *testing.T) {
	k := sim.NewKernel("t")
	k.Thread("p", func(p *sim.Process) {
		defer func() {
			if recover() == nil {
				t.Error("no panic for negative quantum")
			}
		}()
		td.NewQuantumKeeper(p, -sim.NS)
	})
	k.Run(sim.RunForever)
}
