// Package chaos is the fault-injection harness behind the robustness
// contract's soak tests. A Plan compiles into par.Hooks that perturb a
// coordinated run from the inside — scheduling jitter around barrier
// rounds, withheld bridge flushes, induced shard panics — without
// touching the model. The package's own tests are the chaos soak: they
// assert that under every perturbation the simulated dates stay
// byte-identical (the conservative protocol's promise), failures
// surface as structured errors rather than hangs, and no goroutines
// leak.
//
// The harness is deliberately deterministic-per-seed: a failing soak
// run reproduces from its printed seed.
package chaos

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/par"
	"repro/internal/sim"
)

// Plan describes one fault-injection schedule.
type Plan struct {
	// Seed drives the jitter and defer-flush draws; same seed, same
	// perturbation schedule (modulo goroutine interleaving, which is
	// exactly what the soak is exercising).
	Seed int64
	// JitterMax, when positive, sleeps each shard worker a random
	// duration in [0, JitterMax) immediately before each barrier step —
	// the "worker descheduled at the worst moment" perturbation.
	JitterMax time.Duration
	// FlushDeferProb is the per-bridge, per-round probability that a
	// staged bridge's flush is withheld for the round, forcing the
	// coordinator through its deferred-frontier path.
	FlushDeferProb float64
	// PanicRound, when nonzero, makes every shard listed in PanicShards
	// panic at the top of its first step at or after that barrier round
	// (a shard does not necessarily step in any given round) — the
	// induced-crash perturbation (and, with two or more shards listed,
	// the multi-panic join test).
	PanicRound  uint64
	PanicShards []int
}

// PanicValue is what induced shard panics throw; tests assert on it.
type PanicValue struct{ Shard int }

// Hooks compiles the plan into the par fault-injection surface. The
// returned hooks are safe for concurrent shard workers: the RNG is
// mutex-guarded and sleeps happen outside the lock.
func (p Plan) Hooks() *par.Hooks {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(p.Seed))
	h := &par.Hooks{}
	if p.JitterMax > 0 || p.PanicRound > 0 {
		h.BeforeStep = func(shard int, _ *sim.Kernel, round uint64) {
			if p.PanicRound > 0 && round >= p.PanicRound {
				for _, s := range p.PanicShards {
					if s == shard {
						panic(PanicValue{Shard: shard})
					}
				}
			}
			if p.JitterMax > 0 {
				mu.Lock()
				d := time.Duration(rng.Int63n(int64(p.JitterMax)))
				mu.Unlock()
				time.Sleep(d)
			}
		}
	}
	if p.FlushDeferProb > 0 {
		h.DeferFlush = func(_ par.Bridge, _ uint64) bool {
			mu.Lock()
			defer mu.Unlock()
			return rng.Float64() < p.FlushDeferProb
		}
	}
	return h
}
