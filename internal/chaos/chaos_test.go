package chaos_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/chaos"
	"repro/internal/leakcheck"
	"repro/internal/par"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// The chaos scenario model: the soak workload behind the campaign-level
// tests. "wedge" livelocks the run; "panic_round", on sharded builds
// only, injects a shard panic — so the single-kernel degradation rerun
// of a panicking sharded point is clean, exactly the quarantine story.
func init() {
	scenario.Register(scenario.Model{
		Name: "chaos",
		Keys: []string{"stages", "words", "depth", "shards", "seed", "wedge", "panic_round"},
		Run: func(ctx context.Context, p scenario.Params) (scenario.Outcome, error) {
			r := scenario.NewReader(p)
			w := chaos.Workload{
				Stages: r.Int("stages", 3),
				Words:  r.Int("words", 64),
				Depth:  r.Int("depth", 4),
				Shards: r.Int("shards", 1),
				Seed:   r.Int64("seed", 1),
				Wedge:  r.Bool("wedge", false),
			}
			panicRound := r.Int("panic_round", 0)
			if err := r.Err(); err != nil {
				return scenario.Outcome{}, err
			}
			b, fp := w.Build()
			// Deferred so an injected shard panic unwinding through the
			// guard still tears the kernels down before the campaign's
			// recover converts it to an error.
			defer b.Shutdown()
			if panicRound > 0 && b.Coord != nil {
				b.Coord.SetHooks(chaos.Plan{
					PanicRound:  uint64(panicRound),
					PanicShards: []int{0},
				}.Hooks())
			}
			if err := b.RunGuarded(ctx, sim.RunForever); err != nil {
				return scenario.Outcome{}, err
			}
			return scenario.Outcome{
				SimEndNS:    int64(b.Kernels[0].Now() / sim.NS),
				CtxSwitches: b.Stats().ContextSwitches,
				DatesHash:   fmt.Sprintf("%016x", fp()),
			}, nil
		},
	})
}

// fingerprint runs one workload cleanly and returns the dated-output
// hash.
func fingerprint(t *testing.T, w chaos.Workload, plan *chaos.Plan) uint64 {
	t.Helper()
	b, fp := w.Build()
	defer b.Shutdown()
	if plan != nil && b.Coord != nil {
		b.Coord.SetHooks(plan.Hooks())
	}
	if err := b.RunGuarded(context.Background(), sim.RunForever); err != nil {
		t.Fatalf("run: %v", err)
	}
	return fp()
}

// TestJitterDeterminism is the core soak: scheduling jitter around the
// barrier steps must never change a single dated word. Three seeds, all
// byte-identical to the unperturbed run.
func TestJitterDeterminism(t *testing.T) {
	defer leakcheck.Check(t)()
	w := chaos.Workload{Stages: 4, Words: 200, Depth: 8, Shards: 3, Seed: 7}
	want := fingerprint(t, w, nil)
	for seed := int64(1); seed <= 3; seed++ {
		got := fingerprint(t, w, &chaos.Plan{Seed: seed, JitterMax: 200 * time.Microsecond})
		if got != want {
			t.Errorf("jitter seed %d: fingerprint %016x, want %016x", seed, got, want)
		}
	}
}

// TestDeferFlushDeterminism: withholding bridge flushes (delayed
// delivery) must be invisible to dates — the coordinator bounds readers
// by the staged frontier instead.
func TestDeferFlushDeterminism(t *testing.T) {
	defer leakcheck.Check(t)()
	w := chaos.Workload{Stages: 4, Words: 200, Depth: 8, Shards: 3, Seed: 11}
	want := fingerprint(t, w, nil)
	for seed := int64(1); seed <= 3; seed++ {
		got := fingerprint(t, w, &chaos.Plan{Seed: seed, FlushDeferProb: 0.5})
		if got != want {
			t.Errorf("defer seed %d: fingerprint %016x, want %016x", seed, got, want)
		}
	}
}

// TestCombinedChaosDeterminism layers jitter and flush deferral.
func TestCombinedChaosDeterminism(t *testing.T) {
	defer leakcheck.Check(t)()
	w := chaos.Workload{Stages: 5, Words: 150, Depth: 4, Shards: 4, Seed: 3}
	want := fingerprint(t, w, nil)
	got := fingerprint(t, w, &chaos.Plan{Seed: 42, JitterMax: 100 * time.Microsecond, FlushDeferProb: 0.3})
	if got != want {
		t.Errorf("combined chaos: fingerprint %016x, want %016x", got, want)
	}
}

// TestShardPanicJoin: when several shards panic in the same round, the
// coordinator must join every panic value, not drop all but the first.
func TestShardPanicJoin(t *testing.T) {
	defer leakcheck.Check(t)()
	w := chaos.Workload{Stages: 4, Words: 64, Shards: 3, Seed: 1}
	b, _ := w.Build()
	defer b.Shutdown()
	// Every thread starts runnable at date 0, so all three shards step
	// in round 1; shards 0 and 2 both panic there.
	b.Coord.SetHooks(chaos.Plan{PanicRound: 1, PanicShards: []int{0, 2}}.Hooks())
	var rec any
	func() {
		defer func() { rec = recover() }()
		b.Coord.Run(sim.RunForever)
	}()
	set, ok := rec.(par.PanicSet)
	if !ok {
		t.Fatalf("recovered %T %v, want par.PanicSet with two values", rec, rec)
	}
	if len(set) != 2 {
		t.Fatalf("PanicSet has %d values, want 2: %v", len(set), set)
	}
	shards := map[int]bool{}
	for _, v := range set {
		pv, ok := v.(chaos.PanicValue)
		if !ok {
			t.Fatalf("panic value %T %v, want chaos.PanicValue", v, v)
		}
		shards[pv.Shard] = true
	}
	if !shards[0] || !shards[2] {
		t.Errorf("joined panics from shards %v, want 0 and 2", shards)
	}
}

// TestStallDiagnosticWithinDeadline is the pinned robustness-contract
// test: a deadlocked model (delta-cycle livelock, simulated time frozen
// at 0 while the kernel dispatches forever) must return a structured
// stall diagnostic — naming the shards, bridges and frontiers — within
// the stall window, not hang.
func TestStallDiagnosticWithinDeadline(t *testing.T) {
	defer leakcheck.Check(t)()
	w := chaos.Workload{Stages: 3, Words: 64, Shards: 3, Seed: 1, Wedge: true}
	b, _ := w.Build()
	defer b.Shutdown()
	start := time.Now()
	err := b.RunGuarded(par.WithStallWindow(context.Background(), 100*time.Millisecond), sim.RunForever)
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("guarded run took %v, want well under the 5s bound", elapsed)
	}
	var se *par.StallError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want *par.StallError", err)
	}
	if !errors.Is(err, par.ErrStalled) {
		t.Errorf("cause %v, want par.ErrStalled", se.Cause)
	}
	if len(se.Diag.Shards) != 3 {
		t.Errorf("diagnostic has %d shards, want 3", len(se.Diag.Shards))
	}
	if len(se.Diag.Bridges) == 0 {
		t.Errorf("diagnostic has no bridges; want the cross-shard channels")
	}
	// The wedged shard is distinguishable: frozen at date 0 with a
	// climbing dispatch beat (livelock, not an idle kernel).
	var wedged *par.ShardDiag
	for i := range se.Diag.Shards {
		if se.Diag.Shards[i].Now == 0 && se.Diag.Shards[i].Beat > 0 {
			wedged = &se.Diag.Shards[i]
		}
	}
	if wedged == nil {
		t.Errorf("no shard pinned at date 0 with nonzero beat in:\n%s", se.Diag.String())
	}
	if s := se.Diag.String(); !strings.Contains(s, "shard") || !strings.Contains(s, "bridge") {
		t.Errorf("diagnostic report missing shard/bridge lines:\n%s", s)
	}
}

// TestStallSingleKernel: the same wedge on an unsharded build goes
// through par.RunKernel and still yields a one-shard diagnostic.
func TestStallSingleKernel(t *testing.T) {
	defer leakcheck.Check(t)()
	w := chaos.Workload{Stages: 2, Words: 32, Shards: 1, Seed: 1, Wedge: true}
	b, _ := w.Build()
	defer b.Shutdown()
	err := b.RunGuarded(par.WithStallWindow(context.Background(), 80*time.Millisecond), sim.RunForever)
	var se *par.StallError
	if !errors.As(err, &se) || !errors.Is(err, par.ErrStalled) {
		t.Fatalf("got %v, want stall error", err)
	}
	if len(se.Diag.Shards) != 1 {
		t.Fatalf("diagnostic has %d shards, want 1", len(se.Diag.Shards))
	}
}

// TestDegradedRerunMatchesReference: a sharded point whose coordinator
// keeps panicking is quarantined and re-run single-kernel; the rerun
// must reproduce the reference dates_hash exactly and be flagged.
func TestDegradedRerunMatchesReference(t *testing.T) {
	defer leakcheck.Check(t)()
	params := scenario.Params{
		"stages": 3, "words": 64, "shards": 3, "seed": 5, "panic_round": 2,
	}
	set := scenario.Set{Specs: []scenario.Spec{{Model: "chaos", Params: params}}}
	res, err := campaign.Run(context.Background(), set, campaign.Options{
		Workers:      1,
		MaxAttempts:  2,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	pt := res.Points[0]
	if pt.Err != "" {
		t.Fatalf("point failed outright: %s", pt.Err)
	}
	if !pt.Degraded {
		t.Fatalf("point not flagged Degraded; attempts=%d", pt.Attempts)
	}
	if pt.Attempts != 3 { // 2 sharded attempts + 1 degraded rerun
		t.Errorf("attempts = %d, want 3", pt.Attempts)
	}
	if res.Aggregate.Degraded != 1 {
		t.Errorf("aggregate degraded = %d, want 1", res.Aggregate.Degraded)
	}
	// Reference: the same point run cleanly on one kernel.
	ref, err := campaign.Run(context.Background(), scenario.Set{Specs: []scenario.Spec{{
		Model:  "chaos",
		Params: scenario.Params{"stages": 3, "words": 64, "shards": 1, "seed": 5},
	}}}, campaign.Options{Workers: 1})
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	want := ref.Points[0].Outcome.DatesHash
	if got := pt.Outcome.DatesHash; got != want {
		t.Errorf("degraded dates_hash %s, want reference %s", got, want)
	}
}

// TestDeadlineStorm: a burst of wedged points under a tight deadline
// and stall window must all fail cleanly — structured errors, stall
// diagnostics recorded, healthy points unaffected, campaign returns.
func TestDeadlineStorm(t *testing.T) {
	defer leakcheck.Check(t)()
	specs := []scenario.Spec{
		{Model: "chaos", Params: scenario.Params{"words": 32, "seed": 1}},
		{Model: "chaos", Params: scenario.Params{"words": 32, "wedge": true, "seed": 2}},
		{Model: "chaos", Params: scenario.Params{"words": 32, "wedge": true, "seed": 3}},
		{Model: "chaos", Params: scenario.Params{"words": 32, "seed": 4}},
	}
	start := time.Now()
	res, err := campaign.Run(context.Background(), scenario.Set{Specs: specs}, campaign.Options{
		Workers:       2,
		PointDeadline: 5 * time.Second,
		StallWindow:   60 * time.Millisecond,
		NoDegrade:     true,
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	if e := time.Since(start); e > 20*time.Second {
		t.Fatalf("storm took %v; points are not being cut off", e)
	}
	if res.Aggregate.Errors != 2 {
		t.Errorf("errors = %d, want 2 (the wedged points)", res.Aggregate.Errors)
	}
	if res.Aggregate.Stalled != 2 {
		t.Errorf("stalled = %d, want 2", res.Aggregate.Stalled)
	}
	for _, p := range res.Points {
		if w, _ := p.Params["wedge"].(bool); w {
			if p.Err == "" || p.Stall == nil {
				t.Errorf("wedged point %d: err=%q stall=%v, want stall failure", p.Index, p.Err, p.Stall)
			}
		} else if p.Err != "" {
			t.Errorf("healthy point %d failed: %s", p.Index, p.Err)
		}
	}
}

// TestCancellationPartialResults: cancelling a campaign mid-flight
// yields the finished points' real outcomes and marks the rest.
func TestCancellationPartialResults(t *testing.T) {
	defer leakcheck.Check(t)()
	var specs []scenario.Spec
	for i := 0; i < 6; i++ {
		specs = append(specs, scenario.Spec{Model: "chaos",
			Params: scenario.Params{"words": 64, "seed": i}})
	}
	// Cancel after the first point completes.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := campaign.Run(ctx, scenario.Set{Specs: specs}, campaign.Options{
		Workers: 1,
		OnProgress: func(done, total int) {
			if done == 1 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	var okPts, cancelled int
	for _, p := range res.Points {
		switch {
		case p.Err == "" && p.Outcome != nil:
			okPts++
		case strings.Contains(p.Err, "cancel"):
			cancelled++
		}
	}
	if okPts == 0 || cancelled == 0 {
		t.Errorf("want both finished and cancelled points, got %d finished, %d cancelled of %d",
			okPts, cancelled, len(res.Points))
	}
}
