package chaos

import (
	"fmt"
	"hash/fnv"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// Workload is the soak tests' representative model: a seeded stream
// chain (source → stages → sink) over Smart-FIFO channels, shardable
// through the netlist partitioner so every stage boundary can become a
// bridge. Its observable result is a fingerprint over the sink's dated
// words — exactly the quantity the conservative protocol promises is
// invariant under scheduling, so any chaos-induced date drift fails a
// simple equality check.
type Workload struct {
	// Stages is the number of processing stages between source and
	// sink; 0 means 4. The graph has Stages+2 modules.
	Stages int
	// Words is the stream length; 0 means 256.
	Words int
	// Depth is the channel depth; 0 means 8.
	Depth int
	// Shards is the kernel count; 0 means 1.
	Shards int
	// Seed varies the payload.
	Seed int64
	// Wedge, when set, adds a delta-cycle livelock to the source's
	// shard: two threads ping-ponging zero-delay notifications at date
	// 0, so the run dispatches forever without advancing simulated
	// time. This is the reproducible "deadlocked model" the stall
	// watchdog must catch.
	Wedge bool
}

func (w *Workload) fill() {
	if w.Stages <= 0 {
		w.Stages = 4
	}
	if w.Words <= 0 {
		w.Words = 256
	}
	if w.Depth <= 0 {
		w.Depth = 8
	}
	if w.Shards <= 0 {
		w.Shards = 1
	}
}

// Build elaborates the workload and returns the build plus the
// fingerprint collector (valid after a completed run).
func (w Workload) Build() (*netlist.Build, func() uint64) {
	w.fill()
	g := netlist.New("chaos")
	group := func(i int) string { return fmt.Sprintf("g%d", i) }

	nch := w.Stages + 1
	chans := make([]*netlist.Chan[uint32], nch)
	for i := range chans {
		chans[i] = netlist.AddChan[uint32](g, fmt.Sprintf("c%d", i), w.Depth)
	}

	var out netlist.OutPort[uint32]
	src := g.Thread("src", func(p *sim.Process) {
		we := out.End()
		v := uint32(w.Seed)*2654435761 + 12345
		for i := 0; i < w.Words; i++ {
			v = v*1664525 + 1013904223
			we.Write(v)
			p.Inc(3 * sim.NS)
		}
	}).InGroup(group(0))
	out = chans[0].Output(src)

	for s := 0; s < w.Stages; s++ {
		s := s
		var in netlist.InPort[uint32]
		var sout netlist.OutPort[uint32]
		m := g.Thread(fmt.Sprintf("s%d", s), func(p *sim.Process) {
			re, we := in.End(), sout.End()
			for i := 0; i < w.Words; i++ {
				v := re.Read()
				p.Inc(2 * sim.NS)
				we.Write(v*2654435761 + uint32(s))
			}
		}).InGroup(group(s + 1))
		in = chans[s].Input(m)
		sout = chans[s+1].Output(m)
	}

	h := fnv.New64a()
	var buf [12]byte
	var sinkIn netlist.InPort[uint32]
	sink := g.Thread("sink", func(p *sim.Process) {
		re := sinkIn.End()
		for i := 0; i < w.Words; i++ {
			v := re.Read()
			p.Inc(4 * sim.NS)
			d := p.LocalTime()
			buf[0], buf[1], buf[2], buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			u := uint64(d)
			for j := 0; j < 8; j++ {
				buf[4+j] = byte(u >> (8 * j))
			}
			h.Write(buf[:])
		}
	}).InGroup(group(w.Stages + 1))
	sinkIn = chans[nch-1].Input(sink)

	if w.Wedge {
		var ping, pong *sim.Event
		g.Structural("wedge.events", func(k *sim.Kernel) {
			ping = sim.NewEvent(k, "wedge.ping")
			pong = sim.NewEvent(k, "wedge.pong")
		}).InGroup(group(0))
		g.Thread("wedge.a", func(p *sim.Process) {
			for {
				ping.NotifyDelta()
				p.WaitEvent(pong)
			}
		}).InGroup(group(0))
		g.Thread("wedge.b", func(p *sim.Process) {
			for {
				p.WaitEvent(ping)
				pong.NotifyDelta()
			}
		}).InGroup(group(0))
	}

	b, err := g.Build(netlist.Options{Shards: w.Shards, Impl: netlist.Smart})
	if err != nil {
		panic(fmt.Sprintf("chaos: %v", err))
	}
	return b, h.Sum64
}
