package soc

import (
	"context"
	"fmt"

	"repro/internal/netlist"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Scenario registry hooks: the §IV-C case study in both shapes — the
// single-kernel accuracy-ablation model ("soc") and the multi-kernel
// clustered variant ("soc-clustered"). Payload seeds come from the
// deterministic scenario RNG.
func init() {
	scenario.Register(scenario.Model{
		Name: "soc",
		Keys: []string{"mode", "pipelines", "jobs", "words_per_job", "fifo_depth",
			"use_noc", "packet_len", "quantum_ns", "poll_period_ns", "use_irq",
			"with_dma", "seed"},
		Run:   runScenario,
		Check: checkScenario,
	})
	scenario.Register(scenario.Model{
		Name: "soc-clustered",
		Keys: []string{"pipelines", "jobs", "words_per_job", "fifo_depth",
			"quantum_ns", "poll_period_ns", "seed", "shards", "partitioner"},
		Run:   runClusteredScenario,
		Check: checkClusteredScenario,
	})
}

// scenarioConfig translates spec params into a Config (plus the clustered
// shard count). Defaults are campaign-sized, far below the bench defaults.
func scenarioConfig(p scenario.Params) (Config, int, error) {
	r := scenario.NewReader(p)
	cfg := Config{
		Pipelines:    r.Int("pipelines", 3),
		Jobs:         r.Int("jobs", 2),
		WordsPerJob:  r.Int("words_per_job", 64),
		FIFODepth:    r.Int("fifo_depth", 8),
		UseNoC:       r.Bool("use_noc", false),
		NoCPacketLen: r.Int("packet_len", 8),
		Quantum:      r.Time("quantum_ns", 500*sim.NS),
		PollPeriod:   r.Time("poll_period_ns", 200*sim.NS),
		UseIRQ:       r.Bool("use_irq", false),
		WithDMA:      r.Bool("with_dma", false),
		Partitioner:  r.String("partitioner", ""),
	}
	switch m := r.String("mode", "smart"); m {
	case "smart":
		cfg.Mode = SmartFIFOs
	case "sync":
		cfg.Mode = SyncFIFOs
	default:
		return cfg, 0, fmt.Errorf("soc: unknown mode %q (want smart or sync)", m)
	}
	shards := r.Int("shards", 1)
	rng := scenario.Rand(r.Int64("seed", 1))
	cfg.Seed = rng.Int63()
	if err := r.Err(); err != nil {
		return cfg, 0, err
	}
	if cfg.Pipelines < 1 || cfg.Jobs < 1 || cfg.WordsPerJob < 1 || cfg.FIFODepth < 1 {
		return cfg, 0, fmt.Errorf("soc: pipelines, jobs, words_per_job and fifo_depth must be >= 1")
	}
	if cfg.UseNoC && cfg.WordsPerJob%cfg.NoCPacketLen != 0 {
		return cfg, 0, fmt.Errorf("soc: words_per_job (%d) must be a multiple of packet_len (%d)",
			cfg.WordsPerJob, cfg.NoCPacketLen)
	}
	if shards < 1 {
		return cfg, 0, fmt.Errorf("soc: shards must be >= 1")
	}
	if shards > cfg.Pipelines {
		return cfg, 0, fmt.Errorf("soc: %d shards but only %d clusters (one per pipeline)", shards, cfg.Pipelines)
	}
	if _, err := netlist.PartitionerByName(cfg.Partitioner); err != nil {
		return cfg, 0, err
	}
	return cfg, shards, nil
}

// outcome assembles the deterministic fields shared by both models. The
// monitor's MaxLevels are deliberately excluded for sharded runs: they
// observe in-flight state and are schedule-dependent (see RunClustered).
func outcome(res Result) scenario.Outcome {
	d := scenario.NewDigest()
	for _, dates := range res.JobDates {
		d.Times(dates)
	}
	counters := map[string]uint64{
		"bus_accesses": res.BusAccesses,
		"shards":       uint64(res.Shards),
	}
	if res.NoC.PacketsInjected != 0 || res.NoC.FlitsForwarded != 0 {
		counters["noc_packets"] = res.NoC.PacketsDelivered
		counters["noc_flits"] = res.NoC.FlitsForwarded
	}
	res.Placement.AddCounters(counters)
	// Kernel-stat counters are schedule-dependent for sharded runs
	// (see scenario.Outcome.CtxSwitches); report them single-kernel only.
	ctxSw := res.Stats.ContextSwitches
	if res.Shards > 1 {
		ctxSw = 0
	}
	return scenario.Outcome{
		SimEndNS:    int64(res.SimEnd / sim.NS),
		CtxSwitches: ctxSw,
		Checksums:   append([]uint64(nil), res.Checksums...),
		DatesHash:   d.Sum(),
		Counters:    counters,
	}
}

func runScenario(ctx context.Context, p scenario.Params) (scenario.Outcome, error) {
	cfg, _, err := scenarioConfig(p)
	if err != nil {
		return scenario.Outcome{}, err
	}
	res, err := RunCtx(ctx, cfg)
	if err != nil {
		return scenario.Outcome{}, err
	}
	return outcome(res), nil
}

func runClusteredScenario(ctx context.Context, p scenario.Params) (scenario.Outcome, error) {
	cfg, shards, err := scenarioConfig(p)
	if err != nil {
		return scenario.Outcome{}, err
	}
	cfg.Mode = SmartFIFOs // the clustered variant is Smart-FIFO only
	res, err := RunClusteredCtx(ctx, cfg, shards)
	if err != nil {
		return scenario.Outcome{}, err
	}
	return outcome(res), nil
}

// jobTrace renders a run's dated job completions and checksums as a trace
// for the §IV-A oracle.
func jobTrace(r Result) *trace.Recorder {
	rec := trace.NewRecorder()
	for pi, dates := range r.JobDates {
		for ji, d := range dates {
			rec.Log(trace.Entry{Date: d, Proc: fmt.Sprintf("p%d.sink", pi), Msg: fmt.Sprintf("job %d", ji)})
		}
	}
	for i, sum := range r.Checksums {
		rec.Log(trace.Entry{Date: r.SimEnd, Proc: fmt.Sprintf("sum%d", i), Msg: fmt.Sprintf("%016x", sum)})
	}
	return rec
}

// checkScenario runs the point's SoC shape with Smart FIFOs and with
// sync-on-every-access FIFOs — the paper's accuracy baseline — and diffs
// the dated job completions. A non-empty diff is a real property of the
// shape, not necessarily a Smart-FIFO bug: job re-programming is driven
// by the control core *polling* status registers (a monitor observation
// of in-flight state), so shapes where a job completion lands exactly on
// a poll boundary can reprogram one tick apart across builds. The stream
// dates inside a job, and all checksums, never differ.
func checkScenario(ctx context.Context, p scenario.Params) (string, error) {
	cfg, _, err := scenarioConfig(p)
	if err != nil {
		return "", err
	}
	smart, syncCfg := cfg, cfg
	smart.Mode, syncCfg.Mode = SmartFIFOs, SyncFIFOs
	syncRes, err := RunCtx(ctx, syncCfg)
	if err != nil {
		return "", err
	}
	smartRes, err := RunCtx(ctx, smart)
	if err != nil {
		return "", err
	}
	return trace.Diff(jobTrace(syncRes), jobTrace(smartRes)), nil
}

// checkClusteredScenario runs the clustered shape on 1 kernel and on the
// point's shard count and diffs the dated job completions: the
// conservative-coordinator equivalence claim.
func checkClusteredScenario(ctx context.Context, p scenario.Params) (string, error) {
	cfg, shards, err := scenarioConfig(p)
	if err != nil {
		return "", err
	}
	cfg.Mode = SmartFIFOs
	one, err := RunClusteredCtx(ctx, cfg, 1)
	if err != nil {
		return "", err
	}
	many, err := RunClusteredCtx(ctx, cfg, shards)
	if err != nil {
		return "", err
	}
	return trace.Diff(jobTrace(one), jobTrace(many)), nil
}
