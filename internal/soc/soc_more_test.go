package soc_test

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/soc"
)

// TestSmartEqualsSyncAcrossConfigs widens the §IV-C accuracy check over a
// grid of SoC shapes: depths, pipeline counts, packet sizes, quanta, DMA
// on/off.
func TestSmartEqualsSyncAcrossConfigs(t *testing.T) {
	configs := []soc.Config{
		{Pipelines: 1, Jobs: 1, WordsPerJob: 32, FIFODepth: 1, Quantum: 100 * sim.NS},
		{Pipelines: 2, Jobs: 3, WordsPerJob: 48, FIFODepth: 2, Quantum: 50 * sim.NS, WithDMA: true},
		{Pipelines: 5, Jobs: 2, WordsPerJob: 60, FIFODepth: 4, UseNoC: true, NoCPacketLen: 4, Quantum: 1 * sim.US},
		{Pipelines: 4, Jobs: 2, WordsPerJob: 64, FIFODepth: 32, UseNoC: true, NoCPacketLen: 16, Quantum: 2 * sim.US, WithDMA: true},
		{Pipelines: 3, Jobs: 4, WordsPerJob: 40, FIFODepth: 8, Quantum: 10 * sim.NS, PollPeriod: 50 * sim.NS},
	}
	for i, cfg := range configs {
		cfg := cfg
		t.Run(fmt.Sprintf("cfg%d", i), func(t *testing.T) {
			cfg.Seed = int64(i + 1)
			cfg.Mode = soc.SmartFIFOs
			smart := soc.Run(cfg)
			cfg.Mode = soc.SyncFIFOs
			sync := soc.Run(cfg)
			if fmt.Sprint(smart.Checksums) != fmt.Sprint(sync.Checksums) {
				t.Errorf("checksums differ:\nsmart %x\nsync  %x", smart.Checksums, sync.Checksums)
			}
			if fmt.Sprint(smart.JobDates) != fmt.Sprint(sync.JobDates) {
				t.Errorf("job dates differ:\nsmart %v\nsync  %v", smart.JobDates, sync.JobDates)
			}
		})
	}
}

// TestJobDatesIncreaseWithWork: more words per job must push completion
// dates out (sanity of the timing model).
func TestJobDatesIncreaseWithWork(t *testing.T) {
	base := small(soc.SmartFIFOs, false)
	base.Jobs = 1
	short := soc.Run(base)
	base.WordsPerJob *= 4
	long := soc.Run(base)
	for i := range short.JobDates {
		if long.JobDates[i][0] <= short.JobDates[i][0] {
			t.Errorf("pipeline %d: 4x work finished no later (%v vs %v)",
				i, long.JobDates[i][0], short.JobDates[i][0])
		}
	}
}

// TestQuantumAffectsControlNotStreams: shrinking the control core's
// quantum must not change the accelerators' job dates (the FIFO side needs
// no quantum — the paper's independence claim).
func TestQuantumAffectsControlNotStreams(t *testing.T) {
	a := small(soc.SmartFIFOs, false)
	a.Quantum = 50 * sim.NS
	b := small(soc.SmartFIFOs, false)
	b.Quantum = 5 * sim.US
	ra, rb := soc.Run(a), soc.Run(b)
	// Job *dates* can shift slightly because the control core issues
	// start commands at quantum-rounded dates; checksums must be
	// identical, and with the same PollPeriod the dates must still be
	// equal here because commands are issued at the same dates in both
	// runs (writes synchronize the initiator through the register
	// file's natural ordering).
	if fmt.Sprint(ra.Checksums) != fmt.Sprint(rb.Checksums) {
		t.Errorf("checksums differ across quanta:\n%x\n%x", ra.Checksums, rb.Checksums)
	}
}

// TestIRQModeCompletesAndBeatsPolling: interrupt-driven control yields the
// same data as polling, and reacts at exact completion dates, so no job
// round ever starts later than under polling (which rounds reaction up to
// the poll period).
func TestIRQModeCompletesAndBeatsPolling(t *testing.T) {
	base := small(soc.SmartFIFOs, true)
	polled := soc.Run(base)
	base.UseIRQ = true
	irq := soc.Run(base)
	if fmt.Sprint(polled.Checksums) != fmt.Sprint(irq.Checksums) {
		t.Errorf("checksums differ:\npoll %x\nirq  %x", polled.Checksums, irq.Checksums)
	}
	for i := range polled.JobDates {
		for j := range polled.JobDates[i] {
			if irq.JobDates[i][j] > polled.JobDates[i][j] {
				t.Errorf("pipeline %d job %d: IRQ date %v after polled date %v",
					i, j, irq.JobDates[i][j], polled.JobDates[i][j])
			}
		}
	}
}

// TestIRQModeSmartEqualsSync: the §IV-C accuracy statement holds under
// interrupt-driven control too.
func TestIRQModeSmartEqualsSync(t *testing.T) {
	cfg := small(soc.SmartFIFOs, true)
	cfg.UseIRQ = true
	smart := soc.Run(cfg)
	cfg.Mode = soc.SyncFIFOs
	sync := soc.Run(cfg)
	if fmt.Sprint(smart.Checksums) != fmt.Sprint(sync.Checksums) {
		t.Errorf("checksums differ:\nsmart %x\nsync  %x", smart.Checksums, sync.Checksums)
	}
	if fmt.Sprint(smart.JobDates) != fmt.Sprint(sync.JobDates) {
		t.Errorf("job dates differ:\nsmart %v\nsync  %v", smart.JobDates, sync.JobDates)
	}
	if smart.SimEnd != sync.SimEnd {
		t.Errorf("SimEnd: smart %v sync %v", smart.SimEnd, sync.SimEnd)
	}
}

// TestIRQModeFewerBusAccesses: interrupts cut the control core's polling
// traffic.
func TestIRQModeFewerBusAccesses(t *testing.T) {
	base := small(soc.SmartFIFOs, false)
	base.Jobs = 4
	base.WordsPerJob = 256
	polled := soc.Run(base)
	base.UseIRQ = true
	irq := soc.Run(base)
	if irq.BusAccesses >= polled.BusAccesses {
		t.Errorf("IRQ mode bus accesses (%d) not below polling (%d)",
			irq.BusAccesses, polled.BusAccesses)
	}
}
