package soc

import (
	"context"
	"fmt"
	"time"

	"repro/internal/accel"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// RunClustered builds and executes the sharding-friendly variant of the
// case study: a multi-cluster SoC whose stream traffic crosses cluster
// boundaries over Smart-FIFO bridges, declared as an internal/netlist
// graph and partitioned across `shards` kernels by a pluggable netlist
// partitioner (cfg.Partitioner; roundrobin by default, reproducing the
// historical cluster-modulo mapping).
//
// The model has cfg.Pipelines clusters in a ring. Pipeline i's front half
// (generator → c1 → scale) lives on cluster i; its back half
// (fir → c3 → sink) lives on cluster (i+1) mod C, with the middle hop a
// netlist channel cut at the cluster boundary — Build inserts a
// core.ShardedFIFO bridge wherever the partitioner separates the two
// halves. Each cluster has its own memory-mapped side — bus, register
// files and an embedded control core that programs every job up front
// (consumers first), then polls its local stages' status and the sink's
// input FIFO fill level (the §III-C monitor interface) until the cluster
// is idle. A cluster is one netlist colocation group: its bus couples the
// control core to the stages synchronously.
//
// The same model runs on 1 kernel or on N: the stream dates, checksums
// and job completion dates are identical (pinned by
// TestClusteredShardEquivalence) because every cross-cluster interaction
// is a dated Kahn channel. Only the wall-clock schedule — and therefore
// the monitor's MaxLevels samples, which observe in-flight state — may
// differ.
//
// The clustered variant always uses Smart FIFOs and ignores the UseNoC,
// WithDMA and UseIRQ knobs: it is the scaling axis of the reproduction,
// not the accuracy-ablation axis.
func RunClustered(cfg Config, shards int) Result {
	res, err := RunClusteredCtx(context.Background(), cfg, shards)
	if err != nil {
		// Unreachable: only a guarded abort errors, and a background
		// context with no stall window never aborts.
		panic(fmt.Sprintf("soc: %v", err))
	}
	return res
}

// RunClusteredCtx is RunClustered under the par supervisor: the run is
// interrupted when ctx ends or the stall watchdog it carries
// (par.WithStallWindow) fires, returning the guard's error with all
// model goroutines shut down.
func RunClusteredCtx(ctx context.Context, cfg Config, shards int) (Result, error) {
	cfg.fill()
	nClusters := cfg.Pipelines
	if shards < 1 {
		shards = 1
	}
	if shards > nClusters {
		panic(fmt.Sprintf("soc: %d shards but only %d clusters (a cluster is one colocation unit)", shards, nClusters))
	}
	part, err := netlist.PartitionerByName(cfg.Partitioner)
	if err != nil {
		panic(fmt.Sprintf("soc: %v", err))
	}

	var prof *netlist.Profile
	if part.Name() == netlist.Profiled.Name() && shards > 1 {
		if prof, err = clusteredProfile(ctx, cfg); err != nil {
			return Result{}, err
		}
	}

	g, st := clusteredGraph(cfg)
	built, err := g.Build(netlist.Options{Shards: shards, Partitioner: part, Impl: netlist.Smart, Profile: prof})
	if err != nil {
		panic(fmt.Sprintf("soc: %v", err))
	}

	res := Result{
		Mode:      SmartFIFOs,
		Shards:    built.Shards(),
		MaxLevels: make([]uint32, nClusters),
		Placement: built.Placement,
	}
	start := time.Now()
	if err := built.RunGuarded(ctx, sim.RunForever); err != nil {
		built.Shutdown()
		return Result{}, err
	}
	res.Wall = time.Since(start)
	res.Stats = built.Stats()
	res.Advances = built.Advances()
	res.Crossings = built.Crossings
	for i := 0; i < nClusters; i++ {
		res.Checksums = append(res.Checksums, st.sinks[i].Checksum())
		res.JobDates = append(res.JobDates, st.sinks[i].JobDates())
		res.MaxLevels[i] = st.maxLevels[(i+1)%nClusters]
	}
	for _, b := range st.buses {
		res.BusAccesses += b.Accesses()
	}
	for _, dates := range res.JobDates {
		for _, d := range dates {
			if d > res.SimEnd {
				res.SimEnd = d
			}
		}
	}
	// Opportunistic harvest: a completed single-kernel clustered run is
	// a valid profiling run (profiles are schedule-independent), so keep
	// its counters for a later profile-guided build of the same config.
	if built.Shards() == 1 {
		clusteredProfiles.Put(profileCfgKey(cfg), built.Profile())
	}
	built.Shutdown()
	return res, nil
}

// clusteredProfiles memoizes measured profiles per normalized Config
// value (every field is comparable) — safe because profiles are
// schedule-independent.
var clusteredProfiles = netlist.NewProfileCache()

// profileCfgKey normalizes a Config into a profile-cache key: the
// partitioner choice never changes the measured counters (the
// trace-equivalence invariant), and the clustered variant is Smart-FIFO
// only.
func profileCfgKey(cfg Config) Config {
	cfg.Mode = SmartFIFOs
	cfg.Partitioner = ""
	return cfg
}

// clusteredProfile runs phase one of a profile-guided clustered build:
// the same config once single-kernel, harvesting the measured profile
// for the sharded placement.
func clusteredProfile(ctx context.Context, cfg Config) (*netlist.Profile, error) {
	key := profileCfgKey(cfg)
	if p, ok := clusteredProfiles.Get(key); ok {
		return p, nil
	}
	g, _ := clusteredGraph(cfg)
	b, err := g.Build(netlist.Options{Shards: 1, Impl: netlist.Smart})
	if err != nil {
		panic(fmt.Sprintf("soc: %v", err))
	}
	err = b.RunGuarded(ctx, sim.RunForever)
	b.Shutdown()
	if err != nil {
		return nil, err
	}
	prof := b.Profile()
	clusteredProfiles.Put(key, prof)
	return prof, nil
}

// clusteredState is the host-side bookkeeping a clustered graph's
// modules write into.
type clusteredState struct {
	buses     []*bus.Bus
	sinks     []*accel.Accel // sink of pipeline i (homed on cluster (i+1)%C)
	maxLevels []uint32       // indexed by hosting cluster
}

// clusteredGraph wires the multi-cluster graph and its state. A fresh
// graph per call: a netlist graph elaborates at most once, and the
// profiled two-phase builds the model twice. cfg must be filled.
func clusteredGraph(cfg Config) (*netlist.Graph, *clusteredState) {
	nClusters := cfg.Pipelines
	g := netlist.New("soc")
	group := func(c int) string { return fmt.Sprintf("cl%d", c%nClusters) }

	// Middle hops: pipeline i, cluster i → cluster (i+1)%C.
	mids := make([]*netlist.Chan[uint32], nClusters)
	for i := 0; i < nClusters; i++ {
		mids[i] = netlist.AddChan[uint32](g, fmt.Sprintf("p%d.mid", i), cfg.FIFODepth)
	}

	// Per-cluster register layout on the local bus.
	const (
		genBase   = 0x1000
		scaleBase = 0x1010
		firBase   = 0x1020
		sinkBase  = 0x1030
	)

	buses := make([]*bus.Bus, nClusters)
	sinks := make([]*accel.Accel, nClusters)
	maxLevels := make([]uint32, nClusters)

	// First pass: the front halves (bus, gen → c1 → scale → mid).
	for c := 0; c < nClusters; c++ {
		c := c
		front := g.Structural(fmt.Sprintf("cl%d.front", c), nil).InGroup(group(c))
		midOut := mids[c].Output(front)
		front.Elab(func(k *sim.Kernel) {
			buses[c] = bus.NewBus(k, fmt.Sprintf("cl%d.bus", c), sim.NS)
			name := func(s string) string { return fmt.Sprintf("p%d.%s", c, s) }
			c1 := core.NewSmart[uint32](k, name("c1"), cfg.FIFODepth)
			gen := accel.New(k, name("gen"), accel.Config{
				Kind: accel.Generator, Out: c1, WordLat: 3 * sim.NS, Seed: cfg.Seed + int64(c),
			})
			scale := accel.New(k, name("scale"), accel.Config{
				Kind: accel.Scale, In: c1, Out: midOut.End(), WordLat: 2 * sim.NS, Factor: 3,
			})
			buses[c].Map(gen.Name(), genBase, accel.NumRegs, gen.Regs())
			buses[c].Map(scale.Name(), scaleBase, accel.NumRegs, scale.Regs())
		})
	}
	// Second pass: the back halves (mid → fir → c3 → sink), homed one
	// cluster downstream.
	for i := 0; i < nClusters; i++ {
		i := i
		home := (i + 1) % nClusters
		back := g.Structural(fmt.Sprintf("cl%d.back", home), nil).InGroup(group(home))
		midIn := mids[i].Input(back)
		back.Elab(func(k *sim.Kernel) {
			name := func(s string) string { return fmt.Sprintf("p%d.%s", i, s) }
			c3 := core.NewSmart[uint32](k, name("c3"), cfg.FIFODepth)
			fir := accel.New(k, name("fir"), accel.Config{
				Kind: accel.FIR, In: midIn.End(), Out: c3, WordLat: 2 * sim.NS,
			})
			sink := accel.New(k, name("sink"), accel.Config{
				Kind: accel.Sink, In: c3, WordLat: 4 * sim.NS,
			})
			buses[home].Map(fir.Name(), firBase, accel.NumRegs, fir.Regs())
			buses[home].Map(sink.Name(), sinkBase, accel.NumRegs, sink.Regs())
			sinks[i] = sink
		})
	}

	// Control cores: one per cluster, driving the four stages homed there.
	for c := 0; c < nClusters; c++ {
		c := c
		g.Thread(fmt.Sprintf("cl%d.ctrl", c), func(p *sim.Process) {
			in := bus.NewInitiator(p, buses[c], cfg.Quantum)
			words := uint32(cfg.WordsPerJob)
			// Program every job up front, consumers first, so job
			// back-to-back timing is carried by the streams alone.
			for _, base := range []uint32{sinkBase, firBase, scaleBase, genBase} {
				in.WriteWord(base+accel.RegWords, words)
				for j := 0; j < cfg.Jobs; j++ {
					in.WriteWord(base+accel.RegCtrl, 1)
				}
			}
			// Poll until the cluster is idle, sampling the sink's input
			// fill level for dynamic performance tuning (§III-C).
			for {
				idle := true
				for _, base := range []uint32{genBase, scaleBase, firBase, sinkBase} {
					if in.ReadWord(base+accel.RegStatus) != 0 {
						idle = false
					}
				}
				if lvl := in.ReadWord(sinkBase + accel.RegInLevel); lvl > maxLevels[c] {
					maxLevels[c] = lvl
				}
				if idle {
					break
				}
				p.Inc(cfg.PollPeriod)
			}
		}).InGroup(group(c))
	}

	return g, &clusteredState{buses: buses, sinks: sinks, maxLevels: maxLevels}
}
