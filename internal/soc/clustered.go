package soc

import (
	"fmt"
	"time"

	"repro/internal/accel"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/sim"
)

// RunClustered builds and executes the sharding-friendly variant of the
// case study: a multi-cluster SoC whose stream traffic crosses cluster
// boundaries over Smart-FIFO bridges, run on `shards` kernels in parallel
// by the conservative coordinator (internal/par).
//
// The model has cfg.Pipelines clusters in a ring. Pipeline i's front half
// (generator → c1 → scale) lives on cluster i; its back half
// (fir → c3 → sink) lives on cluster (i+1) mod C, with the middle hop a
// core.ShardedFIFO bridge. Each cluster has its own memory-mapped side —
// bus, register files and an embedded control core that programs every
// job up front (consumers first), then polls its local stages' status and
// the sink's input FIFO fill level (the §III-C monitor interface) until
// the cluster is idle.
//
// Cluster c maps onto kernel c mod shards, so the same model runs on 1
// kernel or on N: the stream dates, checksums and job completion dates
// are identical (pinned by TestClusteredShardEquivalence) because every
// cross-cluster interaction is a dated Kahn channel. Only the wall-clock
// schedule — and therefore the monitor's MaxLevels samples, which observe
// in-flight state — may differ.
//
// The clustered variant always uses Smart FIFOs and ignores the UseNoC,
// WithDMA and UseIRQ knobs: it is the scaling axis of the reproduction,
// not the accuracy-ablation axis.
func RunClustered(cfg Config, shards int) Result {
	cfg.fill()
	nClusters := cfg.Pipelines
	if shards < 1 {
		shards = 1
	}
	if shards > nClusters {
		shards = nClusters
	}

	coord := par.NewCoordinator()
	kernels := make([]*sim.Kernel, shards)
	for i := range kernels {
		kernels[i] = sim.NewKernel(fmt.Sprintf("soc.s%d", i))
		coord.AddShard(kernels[i])
	}
	kOf := func(cluster int) *sim.Kernel { return kernels[cluster%shards] }

	// Bridges: pipeline i's middle hop, cluster i → cluster (i+1)%C.
	bridges := make([]*core.ShardedFIFO[uint32], nClusters)
	for i := 0; i < nClusters; i++ {
		bridges[i] = core.NewSharded[uint32](
			kOf(i), kOf((i+1)%nClusters),
			fmt.Sprintf("p%d.mid", i), cfg.FIFODepth)
		coord.AddBridge(bridges[i])
	}

	// Per-cluster register layout on the local bus.
	const (
		genBase   = 0x1000
		scaleBase = 0x1010
		firBase   = 0x1020
		sinkBase  = 0x1030
	)

	type cluster struct {
		bus  *bus.Bus
		sink *accel.Accel // sink of pipeline (c-1+C)%C, homed here
	}
	clusters := make([]*cluster, nClusters)
	maxLevels := make([]uint32, nClusters) // indexed by hosting cluster

	// First pass: buses and the front halves (gen → c1 → scale → bridge).
	for c := 0; c < nClusters; c++ {
		k := kOf(c)
		clusters[c] = &cluster{bus: bus.NewBus(k, fmt.Sprintf("cl%d.bus", c), sim.NS)}
		name := func(s string) string { return fmt.Sprintf("p%d.%s", c, s) }
		c1 := core.NewSmart[uint32](k, name("c1"), cfg.FIFODepth)
		gen := accel.New(k, name("gen"), accel.Config{
			Kind: accel.Generator, Out: c1, WordLat: 3 * sim.NS, Seed: cfg.Seed + int64(c),
		})
		scale := accel.New(k, name("scale"), accel.Config{
			Kind: accel.Scale, In: c1, Out: bridges[c].Writer(), WordLat: 2 * sim.NS, Factor: 3,
		})
		clusters[c].bus.Map(gen.Name(), genBase, accel.NumRegs, gen.Regs())
		clusters[c].bus.Map(scale.Name(), scaleBase, accel.NumRegs, scale.Regs())
	}
	// Second pass: the back halves (bridge → fir → c3 → sink), homed one
	// cluster downstream.
	for i := 0; i < nClusters; i++ {
		home := (i + 1) % nClusters
		k := kOf(home)
		name := func(s string) string { return fmt.Sprintf("p%d.%s", i, s) }
		c3 := core.NewSmart[uint32](k, name("c3"), cfg.FIFODepth)
		fir := accel.New(k, name("fir"), accel.Config{
			Kind: accel.FIR, In: bridges[i].Reader(), Out: c3, WordLat: 2 * sim.NS,
		})
		sink := accel.New(k, name("sink"), accel.Config{
			Kind: accel.Sink, In: c3, WordLat: 4 * sim.NS,
		})
		clusters[home].bus.Map(fir.Name(), firBase, accel.NumRegs, fir.Regs())
		clusters[home].bus.Map(sink.Name(), sinkBase, accel.NumRegs, sink.Regs())
		clusters[home].sink = sink
	}

	// Control cores: one per cluster, driving the four stages homed there.
	for c := 0; c < nClusters; c++ {
		c := c
		k := kOf(c)
		b := clusters[c].bus
		k.Thread(fmt.Sprintf("cl%d.ctrl", c), func(p *sim.Process) {
			in := bus.NewInitiator(p, b, cfg.Quantum)
			words := uint32(cfg.WordsPerJob)
			// Program every job up front, consumers first, so job
			// back-to-back timing is carried by the streams alone.
			for _, base := range []uint32{sinkBase, firBase, scaleBase, genBase} {
				in.WriteWord(base+accel.RegWords, words)
				for j := 0; j < cfg.Jobs; j++ {
					in.WriteWord(base+accel.RegCtrl, 1)
				}
			}
			// Poll until the cluster is idle, sampling the sink's input
			// fill level for dynamic performance tuning (§III-C).
			for {
				idle := true
				for _, base := range []uint32{genBase, scaleBase, firBase, sinkBase} {
					if in.ReadWord(base+accel.RegStatus) != 0 {
						idle = false
					}
				}
				if lvl := in.ReadWord(sinkBase + accel.RegInLevel); lvl > maxLevels[c] {
					maxLevels[c] = lvl
				}
				if idle {
					break
				}
				p.Inc(cfg.PollPeriod)
			}
		})
	}

	res := Result{
		Mode:      SmartFIFOs,
		Shards:    shards,
		MaxLevels: make([]uint32, nClusters),
	}
	start := time.Now()
	coord.Run(sim.RunForever)
	res.Wall = time.Since(start)
	res.Stats = coord.KernelStats()
	res.Rounds = coord.Stats().Rounds
	for i := 0; i < nClusters; i++ {
		sink := clusters[(i+1)%nClusters].sink
		res.Checksums = append(res.Checksums, sink.Checksum())
		res.JobDates = append(res.JobDates, sink.JobDates())
		res.MaxLevels[i] = maxLevels[(i+1)%nClusters]
	}
	for _, b := range clusters {
		res.BusAccesses += b.bus.Accesses()
	}
	for _, dates := range res.JobDates {
		for _, d := range dates {
			if d > res.SimEnd {
				res.SimEnd = d
			}
		}
	}
	coord.Shutdown()
	return res
}
