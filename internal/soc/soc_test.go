package soc_test

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/soc"
)

func small(mode soc.FIFOMode, useNoC bool) soc.Config {
	return soc.Config{
		Mode:         mode,
		Pipelines:    3,
		Jobs:         2,
		WordsPerJob:  64,
		FIFODepth:    8,
		UseNoC:       useNoC,
		NoCPacketLen: 8,
		Quantum:      200 * sim.NS,
		WithDMA:      true,
		Seed:         11,
	}
}

func TestSoCCompletes(t *testing.T) {
	r := soc.Run(small(soc.SmartFIFOs, false))
	if len(r.Checksums) != 4 { // 3 sinks + DMA
		t.Fatalf("checksums = %d entries, want 4", len(r.Checksums))
	}
	for i, d := range r.JobDates {
		if len(d) != 2 {
			t.Errorf("pipeline %d completed %d jobs, want 2", i, len(d))
		}
	}
	if r.SimEnd == 0 {
		t.Error("SimEnd = 0")
	}
	if r.BusAccesses == 0 {
		t.Error("no bus traffic recorded")
	}
}

// TestSmartEqualsSyncAccuracy is the §IV-C accuracy statement at SoC
// scale: both FIFO implementations yield identical checksums and job
// completion dates ("both versions provide the same timing accuracy").
func TestSmartEqualsSyncAccuracy(t *testing.T) {
	for _, useNoC := range []bool{false, true} {
		t.Run(fmt.Sprintf("noc=%v", useNoC), func(t *testing.T) {
			smart := soc.Run(small(soc.SmartFIFOs, useNoC))
			sync := soc.Run(small(soc.SyncFIFOs, useNoC))
			if fmt.Sprint(smart.Checksums) != fmt.Sprint(sync.Checksums) {
				t.Errorf("checksums differ:\nsmart %x\nsync  %x", smart.Checksums, sync.Checksums)
			}
			if fmt.Sprint(smart.JobDates) != fmt.Sprint(sync.JobDates) {
				t.Errorf("job dates differ:\nsmart %v\nsync  %v", smart.JobDates, sync.JobDates)
			}
			if smart.SimEnd != sync.SimEnd {
				t.Errorf("SimEnd: smart %v sync %v", smart.SimEnd, sync.SimEnd)
			}
		})
	}
}

// TestSmartFewerContextSwitches: the mechanism behind the paper's 42.3%
// gain — the Smart FIFO build does substantially fewer context switches
// for the same simulated behaviour.
func TestSmartFewerContextSwitches(t *testing.T) {
	smart := soc.Run(small(soc.SmartFIFOs, true))
	sync := soc.Run(small(soc.SyncFIFOs, true))
	if smart.Stats.ContextSwitches*2 > sync.Stats.ContextSwitches {
		t.Errorf("smart switches %d not ≪ sync switches %d",
			smart.Stats.ContextSwitches, sync.Stats.ContextSwitches)
	}
}

func TestNoCTrafficWhenEnabled(t *testing.T) {
	r := soc.Run(small(soc.SmartFIFOs, true))
	if r.NoC.PacketsInjected == 0 || r.NoC.PacketsDelivered != r.NoC.PacketsInjected {
		t.Errorf("NoC packets injected/delivered = %d/%d", r.NoC.PacketsInjected, r.NoC.PacketsDelivered)
	}
	if r.NoC.FlitsForwarded == 0 {
		t.Error("no flits forwarded despite UseNoC")
	}
}

func TestMonitorLevelsObserved(t *testing.T) {
	r := soc.Run(small(soc.SmartFIFOs, false))
	// The control core polls scale's input level; with a fast generator
	// it must observe a non-zero level at least once over the run.
	any := false
	for _, l := range r.MaxLevels {
		if l > 0 {
			any = true
		}
		if l > 8 {
			t.Errorf("observed level %d above FIFO depth 8", l)
		}
	}
	if !any {
		t.Error("monitor never observed a non-empty FIFO")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := soc.Run(small(soc.SmartFIFOs, true))
	b := soc.Run(small(soc.SmartFIFOs, true))
	if fmt.Sprint(a.Checksums) != fmt.Sprint(b.Checksums) ||
		fmt.Sprint(a.JobDates) != fmt.Sprint(b.JobDates) ||
		a.Stats.ContextSwitches != b.Stats.ContextSwitches {
		t.Error("two identical runs differ")
	}
}

func TestBadPacketMultiplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for WordsPerJob not multiple of NoCPacketLen")
		}
	}()
	cfg := small(soc.SmartFIFOs, true)
	cfg.WordsPerJob = 65
	soc.Run(cfg)
}
