// Package soc assembles the case-study system of paper §IV-C: a
// heterogeneous many-core SoC model with
//
//   - a memory-mapped side (control core, shared memory, DMA engines,
//     register files on a bus) temporally decoupled with quantum keepers,
//     the "existing methods" for memory-mapped transactions;
//   - a stream side: accelerator pipelines (decoupled threads) connected
//     by hardwired FIFOs, some hops crossing a stream NoC whose routers
//     are non-decoupled method processes and whose network interfaces
//     packetize via the Smart FIFO's non-blocking interface;
//   - embedded control software (a bus-mastering thread) that programs
//     jobs, polls status registers and reads FIFO fill levels through the
//     monitor interface for dynamic performance tuning.
//
// The same model builds with Smart FIFOs or with sync-on-every-access
// FIFOs (identical timing accuracy, §IV-C baseline); Run reports wall
// time, kernel statistics and dated results so callers can reproduce the
// paper's 42.3% speedup comparison and verify that the two builds agree
// date for date.
package soc

import (
	"context"
	"fmt"
	"time"

	"repro/internal/accel"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/fifo"
	"repro/internal/netlist"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/workload"
)

// FIFOMode selects the accelerator channel implementation.
type FIFOMode int

const (
	// SmartFIFOs uses the paper's contribution.
	SmartFIFOs FIFOMode = iota
	// SyncFIFOs uses regular FIFOs that synchronize on every access:
	// same accuracy, one context switch per access (the §IV-C baseline).
	SyncFIFOs
)

// String names the mode.
func (m FIFOMode) String() string {
	if m == SmartFIFOs {
		return "smart"
	}
	return "sync"
}

// Config sizes the SoC and its workload.
type Config struct {
	// Mode selects the accelerator FIFO implementation.
	Mode FIFOMode
	// Pipelines is the number of accelerator chains (≥ 1).
	Pipelines int
	// Jobs is the number of job rounds the control core runs.
	Jobs int
	// WordsPerJob is the stream length per job (must be a multiple of
	// NoCPacketLen when UseNoC).
	WordsPerJob int
	// FIFODepth is the accelerator FIFO depth.
	FIFODepth int
	// UseNoC routes the middle hop of odd pipelines through the mesh.
	UseNoC bool
	// NoCPacketLen is the NI packet size in words.
	NoCPacketLen int
	// Quantum is the memory-mapped side's global quantum.
	Quantum sim.Time
	// PollPeriod is the control core's status/level polling period (also
	// the interrupt-wait timeout in IRQ mode).
	PollPeriod sim.Time
	// Partitioner names the netlist partitioner for RunClustered
	// ("single", "roundrobin" — the default —, "mincut" or
	// "profiled", which first runs the model once single-kernel to
	// harvest a measured traffic profile). Run ignores
	// it: the single-SoC model is one colocation unit.
	Partitioner string
	// UseIRQ makes the control core sleep on an interrupt controller
	// instead of polling status registers; accelerator sinks and the DMA
	// writer raise lines at job completion.
	UseIRQ bool
	// WithDMA adds a memory-to-memory DMA pipeline exercising the bus.
	WithDMA bool
	// Seed feeds the generators.
	Seed int64
}

func (c *Config) fill() {
	if c.Pipelines == 0 {
		c.Pipelines = 4
	}
	if c.Jobs == 0 {
		c.Jobs = 3
	}
	if c.WordsPerJob == 0 {
		c.WordsPerJob = 256
	}
	if c.FIFODepth == 0 {
		c.FIFODepth = 8
	}
	if c.NoCPacketLen == 0 {
		c.NoCPacketLen = 8
	}
	if c.Quantum == 0 {
		c.Quantum = 500 * sim.NS
	}
	if c.PollPeriod == 0 {
		c.PollPeriod = 200 * sim.NS
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.UseNoC && c.WordsPerJob%c.NoCPacketLen != 0 {
		panic(fmt.Sprintf("soc: WordsPerJob (%d) must be a multiple of NoCPacketLen (%d)",
			c.WordsPerJob, c.NoCPacketLen))
	}
}

// Result reports one SoC run.
type Result struct {
	// Mode echoes the configuration.
	Mode FIFOMode
	// Wall is the host duration of Kernel.Run.
	Wall time.Duration
	// SimEnd is the last job completion date across all sinks.
	SimEnd sim.Time
	// Checksums holds one checksum per pipeline sink (plus the DMA
	// output checksum last, when WithDMA).
	Checksums []uint64
	// JobDates holds, per pipeline, the sink's dated job completions;
	// identical across modes iff the timing is accurate.
	JobDates [][]sim.Time
	// MaxLevels holds the maximum FIFO fill level the control software
	// observed per pipeline (the §III-C monitor use case).
	MaxLevels []uint32
	// Stats are the kernel counters (ContextSwitches is the §IV-C
	// quantity).
	Stats sim.Stats
	// BusAccesses counts routed bus transactions.
	BusAccesses uint64
	// NoC reports mesh activity (zero when !UseNoC).
	NoC noc.Stats
	// Shards is the number of kernels the run was partitioned over (1
	// for Run); Advances is the number of coordinator kernel advances
	// (0 for Run — interleaving-dependent telemetry, not model output);
	// Crossings counts the channels elaborated as cross-shard bridges
	// (0 for Run). See RunClustered.
	Shards    int
	Advances  uint64
	Crossings int
	// Placement is the before/after placement cost of a profiled
	// clustered run (nil for every other partitioner).
	Placement *netlist.PlacementCost
}

// pipeline groups the per-chain bookkeeping.
type pipeline struct {
	gen, scale, fir, sink *accel.Accel
	regBase               uint32
}

// Run builds and executes the SoC once. The model is declared as an
// internal/netlist graph — the fabric (bus, NoC, IRQ controller), every
// accelerator and the DMA engines are modules, the stream hops are
// netlist channels — and elaborated onto one kernel: the whole SoC is a
// single colocation unit, because the bus couples the control core to
// every register file synchronously.
func Run(cfg Config) Result {
	res, err := RunCtx(context.Background(), cfg)
	if err != nil {
		// Unreachable: only a guarded abort errors, and a background
		// context with no stall window never aborts.
		panic(fmt.Sprintf("soc: %v", err))
	}
	return res
}

// RunCtx is Run under the par supervisor: the run is interrupted when
// ctx ends or the stall watchdog it carries (par.WithStallWindow)
// fires, returning the guard's error with all model goroutines shut
// down.
func RunCtx(ctx context.Context, cfg Config) (Result, error) {
	cfg.fill()
	g := netlist.New("soc")
	impl := netlist.Smart
	if cfg.Mode == SyncFIFOs {
		impl = netlist.Sync
	}

	// Shared fabric state, populated by the module elaboration hooks in
	// declaration order (fabric first).
	var b *bus.Bus
	var mesh *noc.Mesh
	var irq *bus.IRQController
	var mem *bus.Memory
	const irqBase = 0xf00
	const memBase, memSize = 0x100000, 16384

	// NI attachments requested by the pipeline declarations below; the
	// fabric elaboration performs them (the NIs belong to the mesh).
	type niReq struct {
		name string
		x, y int
		src  *netlist.InPort[uint32]
		dst  *netlist.OutPort[uint32]
		dstX int // ingress destination router coordinates
		dstY int
	}
	var niReqs []niReq

	fabric := g.Structural("fabric", nil).InGroup("soc")
	fabric.Elab(func(k *sim.Kernel) {
		b = bus.NewBus(k, "bus", sim.NS)
		// Stream NoC: one column per pipeline, two rows; odd pipelines
		// send their middle hop to the neighbouring column's bottom row,
		// forcing X-then-Y routing and shared links.
		if cfg.UseNoC {
			mesh = noc.NewMesh(k, "noc", noc.Config{
				Width:     cfg.Pipelines,
				Height:    2,
				Cycle:     sim.NS,
				FIFODepth: 4,
			})
			for _, rq := range niReqs {
				nicfg := noc.NIConfig{PacketLen: cfg.NoCPacketLen, Cycle: sim.NS}
				if rq.src != nil {
					nicfg.Dst = mesh.RouterIndex(rq.dstX, rq.dstY)
					mesh.AttachNI(rq.name, rq.x, rq.y, rq.src.End(), nil, nicfg)
				} else {
					mesh.AttachNI(rq.name, rq.x, rq.y, nil, rq.dst.End(), nicfg)
				}
			}
		}
		// Interrupt controller: sink of pipeline i raises line i, the
		// DMA writer raises line cfg.Pipelines.
		if cfg.UseIRQ {
			irq = bus.NewIRQController(k, "irq")
			b.Map("irq", irqBase, bus.IRQNumRegs, irq)
		}
	})

	// Accelerator pipelines: generator → scale → (NoC) → fir → sink.
	// Each accelerator is a structural module holding one end of its
	// stream channels; the channels are netlist channels, so the same
	// declaration would shard if the colocation allowed it.
	pipes := make([]*pipeline, cfg.Pipelines)
	regBase := uint32(0x1000)
	for i := range pipes {
		i := i
		name := func(s string) string { return fmt.Sprintf("p%d.%s", i, s) }
		p := &pipeline{regBase: regBase}
		pipes[i] = p
		base := regBase

		c1 := netlist.AddChan[uint32](g, name("c1"), cfg.FIFODepth)
		var midOut netlist.OutPort[uint32] // written by scale
		var midIn netlist.InPort[uint32]   // read by fir
		genMod := g.Structural(name("gen"), nil).InGroup("soc")
		scaleMod := g.Structural(name("scale"), nil).InGroup("soc")
		firMod := g.Structural(name("fir"), nil).InGroup("soc")
		sinkMod := g.Structural(name("sink"), nil).InGroup("soc")
		c1Out, c1In := c1.Output(genMod), c1.Input(scaleMod)
		if cfg.UseNoC && i%2 == 1 {
			a := netlist.AddChan[uint32](g, name("toNoC"), cfg.FIFODepth).WithBurst(cfg.NoCPacketLen)
			z := netlist.AddChan[uint32](g, name("fromNoC"), cfg.FIFODepth).WithBurst(cfg.NoCPacketLen)
			midOut = a.Output(scaleMod)
			toNoC := a.Input(fabric)
			fromNoC := z.Output(fabric)
			midIn = z.Input(firMod)
			niReqs = append(niReqs,
				niReq{name: name("ni.in"), x: i, y: 0, src: &toNoC,
					dstX: (i + 1) % cfg.Pipelines, dstY: 1},
				niReq{name: name("ni.out"), x: (i + 1) % cfg.Pipelines, y: 1, dst: &fromNoC})
		} else {
			c := netlist.AddChan[uint32](g, name("c2"), cfg.FIFODepth)
			midOut, midIn = c.Output(scaleMod), c.Input(firMod)
		}
		c3 := netlist.AddChan[uint32](g, name("c3"), cfg.FIFODepth)
		c3Out, c3In := c3.Output(firMod), c3.Input(sinkMod)

		genMod.Elab(func(k *sim.Kernel) {
			p.gen = accel.New(k, name("gen"), accel.Config{
				Kind: accel.Generator, Out: c1Out.End(), WordLat: 3 * sim.NS, Seed: cfg.Seed + int64(i),
			})
			b.Map(p.gen.Name(), base+0x00, accel.NumRegs, p.gen.Regs())
		})
		scaleMod.Elab(func(k *sim.Kernel) {
			p.scale = accel.New(k, name("scale"), accel.Config{
				Kind: accel.Scale, In: c1In.End(), Out: midOut.End(), WordLat: 2 * sim.NS, Factor: 3,
			})
			b.Map(p.scale.Name(), base+0x10, accel.NumRegs, p.scale.Regs())
		})
		firMod.Elab(func(k *sim.Kernel) {
			p.fir = accel.New(k, name("fir"), accel.Config{
				Kind: accel.FIR, In: midIn.End(), Out: c3Out.End(), WordLat: 2 * sim.NS,
			})
			b.Map(p.fir.Name(), base+0x20, accel.NumRegs, p.fir.Regs())
		})
		sinkMod.Elab(func(k *sim.Kernel) {
			p.sink = accel.New(k, name("sink"), accel.Config{
				Kind: accel.Sink, In: c3In.End(), WordLat: 4 * sim.NS,
				IRQ: irq, IRQLine: i,
			})
			b.Map(p.sink.Name(), base+0x30, accel.NumRegs, p.sink.Regs())
		})
		regBase += 0x100
	}

	// Optional memory↔memory DMA pipeline over the bus. The DMA channel
	// is internal wiring of the module (both engines live in it).
	var dmaRdBase, dmaWrBase uint32
	if cfg.WithDMA {
		dmaRdBase, dmaWrBase = regBase, regBase+0x10
		g.Structural("dma", nil).InGroup("soc").Elab(func(k *sim.Kernel) {
			mem = bus.NewMemory(memSize, sim.NS, sim.NS)
			b.Map("mem", memBase, memSize, mem)
			var ch fifo.Channel[uint32]
			if cfg.Mode == SmartFIFOs {
				ch = core.NewSmart[uint32](k, "dma.ch", cfg.FIFODepth)
			} else {
				ch = fifo.NewSync[uint32](k, "dma.ch", cfg.FIFODepth)
			}
			dmaRd := accel.NewDMA(k, "dma.rd", accel.DMAConfig{
				Dir: accel.MemToStream, Channel: ch, Bus: b,
				Quantum: cfg.Quantum, WordLat: 2 * sim.NS, ChunkWords: 16,
			})
			dmaWr := accel.NewDMA(k, "dma.wr", accel.DMAConfig{
				Dir: accel.StreamToMem, Channel: ch, Bus: b,
				Quantum: cfg.Quantum, WordLat: 2 * sim.NS, ChunkWords: 16,
				IRQ: irq, IRQLine: cfg.Pipelines,
			})
			b.Map("dma.rd", dmaRdBase, accel.DMANumRegs, dmaRd.Regs())
			b.Map("dma.wr", dmaWrBase, accel.DMANumRegs, dmaWr.Regs())
			for i := 0; i < cfg.WordsPerJob && i < memSize/2; i++ {
				mem.Poke(uint32(i), uint32(workload.WordAt(cfg.Seed+99, i)))
			}
		})
	}

	res := Result{Mode: cfg.Mode, Shards: 1, MaxLevels: make([]uint32, cfg.Pipelines)}

	// The control core: embedded software on the memory-mapped side.
	g.Thread("ctrl", func(p *sim.Process) {
		in := bus.NewInitiator(p, b, cfg.Quantum)
		words := uint32(cfg.WordsPerJob)
		for j := 0; j < cfg.Jobs; j++ {
			// Program every pipeline, consumers first.
			for _, pl := range pipes {
				for _, off := range []uint32{0x30, 0x20, 0x10, 0x00} {
					in.WriteWord(pl.regBase+off+accel.RegWords, words)
					in.WriteWord(pl.regBase+off+accel.RegCtrl, 1)
				}
			}
			if cfg.WithDMA {
				in.WriteWord(dmaWrBase+accel.DMARegWords, words)
				in.WriteWord(dmaWrBase+accel.DMARegAddr, memBase+memSize/2)
				in.WriteWord(dmaWrBase+accel.DMARegCtrl, 1)
				in.WriteWord(dmaRdBase+accel.DMARegWords, words)
				in.WriteWord(dmaRdBase+accel.DMARegAddr, memBase)
				in.WriteWord(dmaRdBase+accel.DMARegCtrl, 1)
			}
			if cfg.UseIRQ {
				// Sleep on the interrupt controller instead of
				// polling; the timeout is a lost-wakeup backstop
				// (a quantum sync between the pending check and
				// the wait could miss a one-shot notification).
				var mask uint32
				for i := 0; i < cfg.Pipelines; i++ {
					mask |= 1 << i
				}
				if cfg.WithDMA {
					mask |= 1 << cfg.Pipelines
				}
				in.WriteWord(irqBase+bus.IRQRegEnable, mask)
				for got := uint32(0); got != mask; {
					p.Sync()
					pend := in.ReadWord(irqBase + bus.IRQRegPending)
					if pend == 0 {
						p.WaitEventTimeout(irq.Event(), cfg.PollPeriod)
						continue
					}
					in.WriteWord(irqBase+bus.IRQRegPending, pend)
					got |= pend
					for i, pl := range pipes {
						lvl := in.ReadWord(pl.regBase + 0x30 + accel.RegInLevel)
						if lvl > res.MaxLevels[i] {
							res.MaxLevels[i] = lvl
						}
					}
				}
				continue
			}
			// Poll until the round completes, sampling FIFO levels
			// for dynamic performance tuning (§III-C).
			for {
				idle := true
				for i, pl := range pipes {
					if in.ReadWord(pl.regBase+0x30+accel.RegStatus) != 0 {
						idle = false
					}
					// Sample the sink's input fill level: the
					// sink is the slowest stage, so this is
					// where congestion shows.
					lvl := in.ReadWord(pl.regBase + 0x30 + accel.RegInLevel)
					if lvl > res.MaxLevels[i] {
						res.MaxLevels[i] = lvl
					}
				}
				if cfg.WithDMA && in.ReadWord(dmaWrBase+accel.DMARegStatus) != 0 {
					idle = false
				}
				if idle {
					break
				}
				p.Inc(cfg.PollPeriod)
			}
		}
		// Harvest results.
		for _, pl := range pipes {
			res.Checksums = append(res.Checksums, pl.sink.Checksum())
			res.JobDates = append(res.JobDates, pl.sink.JobDates())
		}
		if cfg.WithDMA {
			sum := uint64(0)
			buf := make([]uint32, cfg.WordsPerJob)
			in.ReadBurst(memBase+memSize/2, buf)
			for _, w := range buf {
				sum = workload.Checksum(sum, w)
			}
			res.Checksums = append(res.Checksums, sum)
		}
	})

	built, err := g.Build(netlist.Options{Shards: 1, Impl: impl})
	if err != nil {
		panic(fmt.Sprintf("soc: %v", err))
	}
	start := time.Now()
	if err := built.RunGuarded(ctx, sim.RunForever); err != nil {
		built.Shutdown()
		return Result{}, err
	}
	res.Wall = time.Since(start)
	res.Stats = built.Stats()
	res.BusAccesses = b.Accesses()
	if mesh != nil {
		res.NoC = mesh.Stats()
	}
	for _, dates := range res.JobDates {
		for _, d := range dates {
			if d > res.SimEnd {
				res.SimEnd = d
			}
		}
	}
	built.Shutdown()
	return res, nil
}
