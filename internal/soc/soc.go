// Package soc assembles the case-study system of paper §IV-C: a
// heterogeneous many-core SoC model with
//
//   - a memory-mapped side (control core, shared memory, DMA engines,
//     register files on a bus) temporally decoupled with quantum keepers,
//     the "existing methods" for memory-mapped transactions;
//   - a stream side: accelerator pipelines (decoupled threads) connected
//     by hardwired FIFOs, some hops crossing a stream NoC whose routers
//     are non-decoupled method processes and whose network interfaces
//     packetize via the Smart FIFO's non-blocking interface;
//   - embedded control software (a bus-mastering thread) that programs
//     jobs, polls status registers and reads FIFO fill levels through the
//     monitor interface for dynamic performance tuning.
//
// The same model builds with Smart FIFOs or with sync-on-every-access
// FIFOs (identical timing accuracy, §IV-C baseline); Run reports wall
// time, kernel statistics and dated results so callers can reproduce the
// paper's 42.3% speedup comparison and verify that the two builds agree
// date for date.
package soc

import (
	"fmt"
	"time"

	"repro/internal/accel"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/fifo"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/workload"
)

// FIFOMode selects the accelerator channel implementation.
type FIFOMode int

const (
	// SmartFIFOs uses the paper's contribution.
	SmartFIFOs FIFOMode = iota
	// SyncFIFOs uses regular FIFOs that synchronize on every access:
	// same accuracy, one context switch per access (the §IV-C baseline).
	SyncFIFOs
)

// String names the mode.
func (m FIFOMode) String() string {
	if m == SmartFIFOs {
		return "smart"
	}
	return "sync"
}

// Config sizes the SoC and its workload.
type Config struct {
	// Mode selects the accelerator FIFO implementation.
	Mode FIFOMode
	// Pipelines is the number of accelerator chains (≥ 1).
	Pipelines int
	// Jobs is the number of job rounds the control core runs.
	Jobs int
	// WordsPerJob is the stream length per job (must be a multiple of
	// NoCPacketLen when UseNoC).
	WordsPerJob int
	// FIFODepth is the accelerator FIFO depth.
	FIFODepth int
	// UseNoC routes the middle hop of odd pipelines through the mesh.
	UseNoC bool
	// NoCPacketLen is the NI packet size in words.
	NoCPacketLen int
	// Quantum is the memory-mapped side's global quantum.
	Quantum sim.Time
	// PollPeriod is the control core's status/level polling period (also
	// the interrupt-wait timeout in IRQ mode).
	PollPeriod sim.Time
	// UseIRQ makes the control core sleep on an interrupt controller
	// instead of polling status registers; accelerator sinks and the DMA
	// writer raise lines at job completion.
	UseIRQ bool
	// WithDMA adds a memory-to-memory DMA pipeline exercising the bus.
	WithDMA bool
	// Seed feeds the generators.
	Seed int64
}

func (c *Config) fill() {
	if c.Pipelines == 0 {
		c.Pipelines = 4
	}
	if c.Jobs == 0 {
		c.Jobs = 3
	}
	if c.WordsPerJob == 0 {
		c.WordsPerJob = 256
	}
	if c.FIFODepth == 0 {
		c.FIFODepth = 8
	}
	if c.NoCPacketLen == 0 {
		c.NoCPacketLen = 8
	}
	if c.Quantum == 0 {
		c.Quantum = 500 * sim.NS
	}
	if c.PollPeriod == 0 {
		c.PollPeriod = 200 * sim.NS
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.UseNoC && c.WordsPerJob%c.NoCPacketLen != 0 {
		panic(fmt.Sprintf("soc: WordsPerJob (%d) must be a multiple of NoCPacketLen (%d)",
			c.WordsPerJob, c.NoCPacketLen))
	}
}

// Result reports one SoC run.
type Result struct {
	// Mode echoes the configuration.
	Mode FIFOMode
	// Wall is the host duration of Kernel.Run.
	Wall time.Duration
	// SimEnd is the last job completion date across all sinks.
	SimEnd sim.Time
	// Checksums holds one checksum per pipeline sink (plus the DMA
	// output checksum last, when WithDMA).
	Checksums []uint64
	// JobDates holds, per pipeline, the sink's dated job completions;
	// identical across modes iff the timing is accurate.
	JobDates [][]sim.Time
	// MaxLevels holds the maximum FIFO fill level the control software
	// observed per pipeline (the §III-C monitor use case).
	MaxLevels []uint32
	// Stats are the kernel counters (ContextSwitches is the §IV-C
	// quantity).
	Stats sim.Stats
	// BusAccesses counts routed bus transactions.
	BusAccesses uint64
	// NoC reports mesh activity (zero when !UseNoC).
	NoC noc.Stats
	// Shards is the number of kernels the run was partitioned over (1
	// for Run); Rounds is the number of coordinator barrier rounds (0
	// for Run). See RunClustered.
	Shards int
	Rounds uint64
}

// pipeline groups the per-chain bookkeeping.
type pipeline struct {
	gen, scale, fir, sink *accel.Accel
	regBase               uint32
}

// Run builds and executes the SoC once.
func Run(cfg Config) Result {
	cfg.fill()
	k := sim.NewKernel("soc")
	b := bus.NewBus(k, "bus", sim.NS)

	newChannel := func(name string) fifo.Channel[uint32] {
		if cfg.Mode == SmartFIFOs {
			return core.NewSmart[uint32](k, name, cfg.FIFODepth)
		}
		return fifo.NewSync[uint32](k, name, cfg.FIFODepth)
	}

	// Stream NoC: one column per pipeline, two rows; odd pipelines send
	// their middle hop to the neighbouring column's bottom row, forcing
	// X-then-Y routing and shared links.
	var mesh *noc.Mesh
	if cfg.UseNoC {
		mesh = noc.NewMesh(k, "noc", noc.Config{
			Width:     cfg.Pipelines,
			Height:    2,
			Cycle:     sim.NS,
			FIFODepth: 4,
		})
	}

	// Interrupt controller: sink of pipeline i raises line i, the DMA
	// writer raises line cfg.Pipelines.
	var irq *bus.IRQController
	const irqBase = 0xf00
	if cfg.UseIRQ {
		irq = bus.NewIRQController(k, "irq")
		b.Map("irq", irqBase, bus.IRQNumRegs, irq)
	}

	// Accelerator pipelines: generator → scale → (NoC) → fir → sink.
	pipes := make([]*pipeline, cfg.Pipelines)
	regBase := uint32(0x1000)
	for i := range pipes {
		name := func(s string) string { return fmt.Sprintf("p%d.%s", i, s) }
		c1 := newChannel(name("c1"))
		var mid struct{ out, in fifo.Channel[uint32] }
		if cfg.UseNoC && i%2 == 1 {
			a := newChannel(name("toNoC"))
			z := newChannel(name("fromNoC"))
			dst := mesh.RouterIndex((i+1)%cfg.Pipelines, 1)
			mesh.AttachNI(name("ni.in"), i, 0, a, nil, noc.NIConfig{
				PacketLen: cfg.NoCPacketLen, Cycle: sim.NS, Dst: dst,
			})
			mesh.AttachNI(name("ni.out"), (i+1)%cfg.Pipelines, 1, nil, z, noc.NIConfig{
				PacketLen: cfg.NoCPacketLen, Cycle: sim.NS,
			})
			mid.out, mid.in = a, z
		} else {
			c := newChannel(name("c2"))
			mid.out, mid.in = c, c
		}
		c3 := newChannel(name("c3"))
		p := &pipeline{regBase: regBase}
		p.gen = accel.New(k, name("gen"), accel.Config{
			Kind: accel.Generator, Out: c1, WordLat: 3 * sim.NS, Seed: cfg.Seed + int64(i),
		})
		p.scale = accel.New(k, name("scale"), accel.Config{
			Kind: accel.Scale, In: c1, Out: mid.out, WordLat: 2 * sim.NS, Factor: 3,
		})
		p.fir = accel.New(k, name("fir"), accel.Config{
			Kind: accel.FIR, In: mid.in, Out: c3, WordLat: 2 * sim.NS,
		})
		p.sink = accel.New(k, name("sink"), accel.Config{
			Kind: accel.Sink, In: c3, WordLat: 4 * sim.NS,
			IRQ: irq, IRQLine: i,
		})
		for j, a := range []*accel.Accel{p.gen, p.scale, p.fir, p.sink} {
			b.Map(a.Name(), regBase+uint32(j)*0x10, accel.NumRegs, a.Regs())
		}
		pipes[i] = p
		regBase += 0x100
	}

	// Optional memory↔memory DMA pipeline over the bus.
	const memBase, memSize = 0x100000, 16384
	var mem *bus.Memory
	var dmaRd, dmaWr *accel.DMA
	var dmaRdBase, dmaWrBase uint32
	if cfg.WithDMA {
		mem = bus.NewMemory(memSize, sim.NS, sim.NS)
		b.Map("mem", memBase, memSize, mem)
		ch := newChannel("dma.ch")
		dmaRd = accel.NewDMA(k, "dma.rd", accel.DMAConfig{
			Dir: accel.MemToStream, Channel: ch, Bus: b,
			Quantum: cfg.Quantum, WordLat: 2 * sim.NS, ChunkWords: 16,
		})
		dmaWr = accel.NewDMA(k, "dma.wr", accel.DMAConfig{
			Dir: accel.StreamToMem, Channel: ch, Bus: b,
			Quantum: cfg.Quantum, WordLat: 2 * sim.NS, ChunkWords: 16,
			IRQ: irq, IRQLine: cfg.Pipelines,
		})
		dmaRdBase, dmaWrBase = regBase, regBase+0x10
		b.Map("dma.rd", dmaRdBase, accel.DMANumRegs, dmaRd.Regs())
		b.Map("dma.wr", dmaWrBase, accel.DMANumRegs, dmaWr.Regs())
		for i := 0; i < cfg.WordsPerJob && i < memSize/2; i++ {
			mem.Poke(uint32(i), uint32(workload.WordAt(cfg.Seed+99, i)))
		}
	}

	res := Result{Mode: cfg.Mode, Shards: 1, MaxLevels: make([]uint32, cfg.Pipelines)}

	// The control core: embedded software on the memory-mapped side.
	k.Thread("ctrl", func(p *sim.Process) {
		in := bus.NewInitiator(p, b, cfg.Quantum)
		words := uint32(cfg.WordsPerJob)
		for j := 0; j < cfg.Jobs; j++ {
			// Program every pipeline, consumers first.
			for _, pl := range pipes {
				for _, off := range []uint32{0x30, 0x20, 0x10, 0x00} {
					in.WriteWord(pl.regBase+off+accel.RegWords, words)
					in.WriteWord(pl.regBase+off+accel.RegCtrl, 1)
				}
			}
			if cfg.WithDMA {
				in.WriteWord(dmaWrBase+accel.DMARegWords, words)
				in.WriteWord(dmaWrBase+accel.DMARegAddr, memBase+memSize/2)
				in.WriteWord(dmaWrBase+accel.DMARegCtrl, 1)
				in.WriteWord(dmaRdBase+accel.DMARegWords, words)
				in.WriteWord(dmaRdBase+accel.DMARegAddr, memBase)
				in.WriteWord(dmaRdBase+accel.DMARegCtrl, 1)
			}
			if cfg.UseIRQ {
				// Sleep on the interrupt controller instead of
				// polling; the timeout is a lost-wakeup backstop
				// (a quantum sync between the pending check and
				// the wait could miss a one-shot notification).
				var mask uint32
				for i := 0; i < cfg.Pipelines; i++ {
					mask |= 1 << i
				}
				if cfg.WithDMA {
					mask |= 1 << cfg.Pipelines
				}
				in.WriteWord(irqBase+bus.IRQRegEnable, mask)
				for got := uint32(0); got != mask; {
					p.Sync()
					pend := in.ReadWord(irqBase + bus.IRQRegPending)
					if pend == 0 {
						p.WaitEventTimeout(irq.Event(), cfg.PollPeriod)
						continue
					}
					in.WriteWord(irqBase+bus.IRQRegPending, pend)
					got |= pend
					for i, pl := range pipes {
						lvl := in.ReadWord(pl.regBase + 0x30 + accel.RegInLevel)
						if lvl > res.MaxLevels[i] {
							res.MaxLevels[i] = lvl
						}
					}
				}
				continue
			}
			// Poll until the round completes, sampling FIFO levels
			// for dynamic performance tuning (§III-C).
			for {
				idle := true
				for i, pl := range pipes {
					if in.ReadWord(pl.regBase+0x30+accel.RegStatus) != 0 {
						idle = false
					}
					// Sample the sink's input fill level: the
					// sink is the slowest stage, so this is
					// where congestion shows.
					lvl := in.ReadWord(pl.regBase + 0x30 + accel.RegInLevel)
					if lvl > res.MaxLevels[i] {
						res.MaxLevels[i] = lvl
					}
				}
				if cfg.WithDMA && in.ReadWord(dmaWrBase+accel.DMARegStatus) != 0 {
					idle = false
				}
				if idle {
					break
				}
				p.Inc(cfg.PollPeriod)
			}
		}
		// Harvest results.
		for _, pl := range pipes {
			res.Checksums = append(res.Checksums, pl.sink.Checksum())
			res.JobDates = append(res.JobDates, pl.sink.JobDates())
		}
		if cfg.WithDMA {
			sum := uint64(0)
			buf := make([]uint32, cfg.WordsPerJob)
			in.ReadBurst(memBase+memSize/2, buf)
			for _, w := range buf {
				sum = workload.Checksum(sum, w)
			}
			res.Checksums = append(res.Checksums, sum)
		}
	})

	start := time.Now()
	k.Run(sim.RunForever)
	res.Wall = time.Since(start)
	res.Stats = k.Stats()
	res.BusAccesses = b.Accesses()
	if mesh != nil {
		res.NoC = mesh.Stats()
	}
	for _, dates := range res.JobDates {
		for _, d := range dates {
			if d > res.SimEnd {
				res.SimEnd = d
			}
		}
	}
	k.Shutdown()
	return res
}
