package soc_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/soc"
	"repro/internal/trace"
)

func clusteredCfg() soc.Config {
	return soc.Config{
		Pipelines:   4,
		Jobs:        3,
		WordsPerJob: 96,
		FIFODepth:   8,
		Seed:        7,
	}
}

// jobTrace turns a result's dated job completions and checksums into a
// trace for the §IV-A equivalence framework. MaxLevels is deliberately
// excluded: the monitor samples in-flight state, which is
// schedule-dependent by design.
func jobTrace(r soc.Result) *trace.Recorder {
	rec := trace.NewRecorder()
	for i, dates := range r.JobDates {
		for j, d := range dates {
			rec.Log(trace.Entry{Date: d, Proc: fmt.Sprintf("p%d.sink", i), Msg: fmt.Sprintf("job %d done", j)})
		}
		rec.Log(trace.Entry{Date: r.SimEnd, Proc: fmt.Sprintf("p%d.sink", i), Msg: fmt.Sprintf("checksum %x", r.Checksums[i])})
	}
	return rec
}

// TestClusteredShardEquivalence pins the tentpole claim on the SoC case
// study: the clustered model produces identical job completion dates and
// checksums on 1 kernel and on N kernels.
func TestClusteredShardEquivalence(t *testing.T) {
	cfg := clusteredCfg()
	ref := soc.RunClustered(cfg, 1)
	if ref.SimEnd == 0 || len(ref.JobDates) != cfg.Pipelines {
		t.Fatalf("reference run looks empty: %+v", ref)
	}
	for _, p := range ref.JobDates {
		if len(p) != cfg.Jobs {
			t.Fatalf("reference run completed %d/%d jobs: %v", len(p), cfg.Jobs, ref.JobDates)
		}
	}
	refTrace := jobTrace(ref)
	for _, shards := range []int{2, 4} {
		r := soc.RunClustered(cfg, shards)
		if r.Shards != shards {
			t.Fatalf("want %d shards, ran with %d", shards, r.Shards)
		}
		if d := trace.Diff(refTrace, jobTrace(r)); d != "" {
			t.Errorf("%d shards: trace differs from 1-shard reference:\n%s", shards, d)
		}
		if r.Advances == 0 {
			t.Errorf("%d shards: no coordinator advances recorded", shards)
		}
	}
}

// TestClusteredMatchesWorkload: each pipeline's checksum is that of its
// own seeded stream, so data really crossed the cluster ring unmangled.
func TestClusteredMatchesWorkload(t *testing.T) {
	cfg := clusteredCfg()
	r := soc.RunClustered(cfg, 2)
	seen := map[uint64]bool{}
	for i, sum := range r.Checksums {
		if sum == 0 {
			t.Errorf("pipeline %d checksum is zero", i)
		}
		if seen[sum] {
			t.Errorf("pipeline %d checksum %x duplicates another pipeline (seeds differ, streams must too)", i, sum)
		}
		seen[sum] = true
	}
	if r.BusAccesses == 0 {
		t.Error("no bus accesses recorded: the memory-mapped side did not run")
	}
}

// TestClusteredShardOverflowPanics: shard counts beyond the cluster
// count are a clear error, not a silent clamp (a cluster is the model's
// colocation unit).
func TestClusteredShardOverflowPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("shards > clusters should panic")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "clusters") {
			t.Fatalf("panic message %q does not explain the cluster limit", msg)
		}
	}()
	soc.RunClustered(clusteredCfg(), 64)
}

// TestClusteredParallelSpeedup checks the point of sharding: on a
// multi-core host, N kernels beat 1. Skipped on small machines — with
// fewer than 4 usable cores the barrier overhead cannot amortize.
func TestClusteredParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("skipping parallel speedup gate: need >= 4 usable cores, have %d (single-core runner cannot exhibit real-core speedup)", runtime.GOMAXPROCS(0))
	}
	cfg := soc.Config{Pipelines: 8, Jobs: 6, WordsPerJob: 4096, FIFODepth: 64, Seed: 7}
	// Best-of-3 per shard count: one scheduling hiccup on a busy CI
	// runner must not fail the gate.
	best := func(shards int) soc.Result {
		r := soc.RunClustered(cfg, shards)
		for i := 0; i < 2; i++ {
			if n := soc.RunClustered(cfg, shards); n.Wall < r.Wall {
				r = n
			}
		}
		return r
	}
	single := best(1)
	multi := best(4)
	speedup := float64(single.Wall) / float64(multi.Wall)
	t.Logf("1 kernel %v, 4 kernels %v: speedup %.2fx over %d advances",
		single.Wall, multi.Wall, speedup, multi.Advances)
	if speedup <= 1.0 {
		t.Errorf("perf gate: clustered-4 did not beat clustered-1: %.2fx", speedup)
	}
}
