// Package peq implements a payload event queue with get — the TLM-2.0
// utility class (tlm_utils::peq_with_get) the paper points to as the prior
// art the Smart FIFO generalizes: "the Smart FIFO associates a time stamp
// with each data item ... that idea is already implemented in the TLM
// peq_with_get utility class. However, because we model hardware FIFOs
// that are bounded, writing may be blocking too" (§III-A).
//
// A PEQ is an unbounded queue of timestamped payloads. Producers (possibly
// temporally decoupled) push payloads annotated with a delay relative to
// their local date; consumers get payloads back once the global date has
// reached each payload's date, driven by an event. Because the queue is
// unbounded there is no write-side blocking and hence no writer-side
// timestamping — exactly the limitation that motivates the Smart FIFO.
package peq

import (
	"fmt"

	"repro/internal/sim"
)

// entry is one queued payload.
type entry[T any] struct {
	at  sim.Time
	seq uint64
	v   T
}

// queue is a concrete binary min-heap of entries ordered by (date,
// insertion). Entries are stored by value and sifted directly — no
// container/heap, whose interface methods box every pushed and popped
// entry through `any` (one heap allocation per Notify/Get).
type queue[T any] []entry[T]

func (q queue[T]) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q *queue[T]) push(e entry[T]) {
	*q = append(*q, e)
	h := *q
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *queue[T]) pop() entry[T] {
	h := *q
	e := h[0]
	last := len(h) - 1
	h[0] = h[last]
	var zero entry[T]
	h[last] = zero // release any pointers held by the payload
	h = h[:last]
	*q = h
	for i := 0; ; {
		c := 2*i + 1
		if c >= last {
			break
		}
		if c+1 < last && h.less(c+1, c) {
			c++
		}
		if !h.less(c, i) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return e
}

// PEQ is a payload event queue. Create with New.
type PEQ[T any] struct {
	k    *sim.Kernel
	name string
	q    queue[T]
	seq  uint64
	ev   *sim.Event
}

// New creates an empty queue.
func New[T any](k *sim.Kernel, name string) *PEQ[T] {
	return &PEQ[T]{k: k, name: name, ev: sim.NewEvent(k, name+".get")}
}

// Name returns the queue name.
func (p *PEQ[T]) Name() string { return p.name }

// Event is notified whenever a payload becomes ready to Get.
func (p *PEQ[T]) Event() *sim.Event { return p.ev }

// Len returns the number of queued payloads (ready or not).
func (p *PEQ[T]) Len() int { return len(p.q) }

// Notify queues v to become ready after delay relative to the calling
// process's local date (tlm_utils semantics under temporal decoupling).
// Called outside any process, the delay is relative to the global date.
func (p *PEQ[T]) Notify(v T, delay sim.Time) {
	if delay < 0 {
		panic(fmt.Sprintf("peq: %s: negative delay", p.name))
	}
	base := p.k.Now()
	if cur := p.k.Current(); cur != nil {
		base = cur.LocalTime()
	}
	p.seq++
	p.q.push(entry[T]{at: base + delay, seq: p.seq, v: v})
	p.arm()
}

// arm schedules the ready event for the earliest pending payload. The date
// is authoritative (recomputed at every queue change), so the pending
// notification is replaced rather than merged earliest-wins — and elided
// entirely while no consumer is subscribed (see sim.Event.NotifyAtReplace).
func (p *PEQ[T]) arm() {
	if len(p.q) == 0 {
		return
	}
	p.ev.NotifyAtReplace(p.q[0].at)
}

// Get pops the earliest payload whose date has been reached, evaluated at
// the caller's local date; ok is false if none is ready yet (wait on
// Event and retry). Consumers see payloads strictly in date order.
func (p *PEQ[T]) Get() (v T, ok bool) {
	now := p.k.Now()
	if cur := p.k.Current(); cur != nil {
		now = cur.LocalTime()
	}
	if len(p.q) == 0 || p.q[0].at > now {
		var zero T
		return zero, false
	}
	e := p.q.pop()
	// Lift a decoupled consumer to the payload date, as a Smart FIFO
	// read would.
	if cur := p.k.Current(); cur != nil {
		cur.AdvanceLocalTo(e.at)
	}
	p.arm()
	return e.v, true
}
