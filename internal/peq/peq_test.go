package peq_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/peq"
	"repro/internal/sim"
)

func TestPayloadsDeliveredInDateOrder(t *testing.T) {
	k := sim.NewKernel("t")
	q := peq.New[string](k, "q")
	var got []string
	k.Thread("producer", func(p *sim.Process) {
		q.Notify("c", 30*sim.NS)
		q.Notify("a", 10*sim.NS)
		q.Notify("b", 20*sim.NS)
	})
	k.Thread("consumer", func(p *sim.Process) {
		for len(got) < 3 {
			v, ok := q.Get()
			if !ok {
				p.WaitEvent(q.Event())
				continue
			}
			got = append(got, fmt.Sprintf("%s@%v", v, k.Now()))
		}
	})
	k.Run(sim.RunForever)
	want := "[a@10ns b@20ns c@30ns]"
	if fmt.Sprint(got) != want {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestDecoupledProducerDates(t *testing.T) {
	// A producer far ahead in local time: payload dates follow its
	// local clock, and the consumer sees them at those dates.
	k := sim.NewKernel("t")
	q := peq.New[int](k, "q")
	var dates []sim.Time
	k.Thread("producer", func(p *sim.Process) {
		for i := 0; i < 3; i++ {
			p.Inc(50 * sim.NS)
			q.Notify(i, 0)
		}
	})
	k.Thread("consumer", func(p *sim.Process) {
		for len(dates) < 3 {
			_, ok := q.Get()
			if !ok {
				p.WaitEvent(q.Event())
				continue
			}
			dates = append(dates, k.Now())
		}
	})
	k.Run(sim.RunForever)
	want := []sim.Time{50 * sim.NS, 100 * sim.NS, 150 * sim.NS}
	if fmt.Sprint(dates) != fmt.Sprint(want) {
		t.Errorf("dates %v, want %v", dates, want)
	}
}

func TestDecoupledConsumerAdvances(t *testing.T) {
	// A decoupled consumer Get()s against its local date and is lifted
	// to the payload date, like a Smart FIFO read.
	k := sim.NewKernel("t")
	q := peq.New[int](k, "q")
	k.Thread("producer", func(p *sim.Process) {
		q.Notify(1, 40*sim.NS)
	})
	k.Thread("consumer", func(p *sim.Process) {
		p.Wait(0) // let the producer queue
		p.Inc(100 * sim.NS)
		v, ok := q.Get() // ready relative to local date 100ns
		if !ok || v != 1 {
			t.Errorf("Get = %d,%v", v, ok)
		}
		if p.LocalTime() != 100*sim.NS {
			t.Errorf("local %v, want unchanged 100ns (payload older)", p.LocalTime())
		}
	})
	k.Run(sim.RunForever)
}

func TestGetNotReady(t *testing.T) {
	k := sim.NewKernel("t")
	q := peq.New[int](k, "q")
	k.Thread("p", func(p *sim.Process) {
		if _, ok := q.Get(); ok {
			t.Error("Get on empty queue succeeded")
		}
		q.Notify(1, 10*sim.NS)
		if _, ok := q.Get(); ok {
			t.Error("Get before the payload date succeeded")
		}
		if q.Len() != 1 {
			t.Errorf("Len = %d", q.Len())
		}
		p.Wait(10 * sim.NS)
		if _, ok := q.Get(); !ok {
			t.Error("Get at the payload date failed")
		}
	})
	k.Run(sim.RunForever)
}

func TestMethodConsumer(t *testing.T) {
	// The canonical SC_METHOD pattern over a PEQ.
	k := sim.NewKernel("t")
	q := peq.New[int](k, "q")
	var got []sim.Time
	k.MethodNoInit("consumer", func(p *sim.Process) {
		for {
			_, ok := q.Get()
			if !ok {
				return // re-armed by static sensitivity
			}
			got = append(got, k.Now())
		}
	}, q.Event())
	k.Thread("producer", func(p *sim.Process) {
		for i := 0; i < 3; i++ {
			q.Notify(i, sim.Time(i+1)*15*sim.NS)
		}
	})
	k.Run(sim.RunForever)
	want := []sim.Time{15 * sim.NS, 30 * sim.NS, 45 * sim.NS}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestQuickDateOrder(t *testing.T) {
	// Whatever the notification order and delays, Get returns payloads
	// in non-decreasing date order and returns all of them.
	prop := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		if len(delays) > 50 {
			delays = delays[:50]
		}
		k := sim.NewKernel("q")
		q := peq.New[int](k, "q")
		ok := true
		var count int
		k.Thread("producer", func(p *sim.Process) {
			for i, d := range delays {
				q.Notify(i, sim.Time(d)*sim.NS)
			}
		})
		k.Thread("consumer", func(p *sim.Process) {
			var last sim.Time = -1
			for count < len(delays) {
				_, got := q.Get()
				if !got {
					p.WaitEvent(q.Event())
					continue
				}
				if k.Now() < last {
					ok = false
				}
				last = k.Now()
				count++
			}
		})
		k.Run(sim.RunForever)
		k.Shutdown()
		return ok && count == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
