// Package fifo implements regular bounded FIFO channels with sc_fifo
// semantics, plus SyncFIFO, the reference decoupling-safe wrapper that
// synchronizes the caller on every access (paper §II-B).
//
// A regular FIFO is correct for non-decoupled processes: every access
// happens at the global date. Under temporal decoupling it silently uses
// decoupled local dates as if they were global, corrupting the timing
// (paper Fig. 3); SyncFIFO restores correctness at the cost of one context
// switch per access (the paper's TDless baseline). The Smart FIFO in
// package core removes those context switches without changing the timing.
package fifo

import (
	"fmt"

	"repro/internal/sim"
)

// Reader is the read side of a FIFO channel.
type Reader[T any] interface {
	// Read blocks the calling thread process until a value is available.
	Read() T
	// TryRead pops a value without blocking; ok is false if none is
	// available. Callable from method processes.
	TryRead() (v T, ok bool)
	// IsEmpty reports whether a Read would block, from the caller's
	// point of view.
	IsEmpty() bool
	// NotEmpty is notified when the channel becomes readable.
	NotEmpty() *sim.Event
}

// Writer is the write side of a FIFO channel.
type Writer[T any] interface {
	// Write blocks the calling thread process until a cell is free.
	Write(v T)
	// TryWrite pushes a value without blocking; it reports false if the
	// channel is full. Callable from method processes.
	TryWrite(v T) bool
	// IsFull reports whether a Write would block, from the caller's
	// point of view.
	IsFull() bool
	// NotFull is notified when the channel becomes writable.
	NotFull() *sim.Event
}

// Monitor is the low-rate observation interface (paper Fig. 4): embedded
// software reads FIFO filling levels for debug and dynamic performance
// tuning.
type Monitor interface {
	// Size returns the number of occupied cells as observable at the
	// caller's (synchronized) date.
	Size() int
	// Depth returns the capacity in cells.
	Depth() int
}

// ReadEnd is the handle a consuming module holds: the read side plus
// monitoring. A sharded FIFO's reader endpoint implements ReadEnd but not
// Writer — the write side lives on another kernel.
type ReadEnd[T any] interface {
	Reader[T]
	Monitor
	Name() string
}

// WriteEnd is the producing module's handle: the write side plus
// monitoring.
type WriteEnd[T any] interface {
	Writer[T]
	Monitor
	Name() string
}

// Channel is a full-duplex handle on a FIFO: both sides plus monitoring.
type Channel[T any] interface {
	Reader[T]
	Writer[T]
	Monitor
	Name() string
}

// FIFO is a bounded FIFO channel with sc_fifo semantics: blocking and
// non-blocking access, delta-cycle event notification, no timestamps. It is
// only timing-accurate when every accessing process is synchronized.
type FIFO[T any] struct {
	k    *sim.Kernel
	name string

	buf  []T
	head int // index of the oldest element
	n    int // number of occupied cells

	notEmpty *sim.Event
	notFull  *sim.Event
}

// New creates a FIFO of the given depth (cells), which must be positive.
func New[T any](k *sim.Kernel, name string, depth int) *FIFO[T] {
	if depth <= 0 {
		panic(fmt.Sprintf("fifo: %s: non-positive depth %d", name, depth))
	}
	return &FIFO[T]{
		k:        k,
		name:     name,
		buf:      make([]T, depth),
		notEmpty: sim.NewEvent(k, name+".not_empty"),
		notFull:  sim.NewEvent(k, name+".not_full"),
	}
}

// Name returns the channel name.
func (f *FIFO[T]) Name() string { return f.name }

// Depth returns the capacity in cells.
func (f *FIFO[T]) Depth() int { return len(f.buf) }

// Size returns the number of occupied cells.
func (f *FIFO[T]) Size() int { return f.n }

// IsEmpty reports whether the FIFO holds no data.
func (f *FIFO[T]) IsEmpty() bool { return f.n == 0 }

// IsFull reports whether every cell is occupied.
func (f *FIFO[T]) IsFull() bool { return f.n == len(f.buf) }

// NotEmpty is notified (delta) whenever data is written.
func (f *FIFO[T]) NotEmpty() *sim.Event { return f.notEmpty }

// NotFull is notified (delta) whenever data is read.
func (f *FIFO[T]) NotFull() *sim.Event { return f.notFull }

func (f *FIFO[T]) caller(op string) *sim.Process {
	p := f.k.Current()
	if p == nil {
		panic(fmt.Sprintf("fifo: %s: %s outside a process", f.name, op))
	}
	return p
}

func (f *FIFO[T]) push(v T) {
	f.buf[(f.head+f.n)%len(f.buf)] = v
	f.n++
	f.notEmpty.NotifyDelta()
}

func (f *FIFO[T]) pop() T {
	v := f.buf[f.head]
	var zero T
	f.buf[f.head] = zero
	f.head = (f.head + 1) % len(f.buf)
	f.n--
	f.notFull.NotifyDelta()
	return v
}

// Write appends v, blocking the calling thread while the FIFO is full.
func (f *FIFO[T]) Write(v T) {
	p := f.caller("Write")
	for f.n == len(f.buf) {
		p.WaitEvent(f.notFull)
	}
	f.push(v)
}

// TryWrite appends v if a cell is free and reports whether it did.
func (f *FIFO[T]) TryWrite(v T) bool {
	if f.n == len(f.buf) {
		return false
	}
	f.push(v)
	return true
}

// Read pops the oldest value, blocking the calling thread while the FIFO
// is empty.
func (f *FIFO[T]) Read() T {
	p := f.caller("Read")
	for f.n == 0 {
		p.WaitEvent(f.notEmpty)
	}
	return f.pop()
}

// TryRead pops the oldest value if any and reports whether it did.
func (f *FIFO[T]) TryRead() (T, bool) {
	if f.n == 0 {
		var zero T
		return zero, false
	}
	return f.pop(), true
}

// Peek returns the oldest value without popping it. Router models use it
// to route head flits before committing to a pop.
func (f *FIFO[T]) Peek() (T, bool) {
	if f.n == 0 {
		var zero T
		return zero, false
	}
	return f.buf[f.head], true
}

var _ Channel[int] = (*FIFO[int])(nil)
