package fifo

import "repro/internal/sim"

// SyncFIFO wraps a regular FIFO and synchronizes the calling thread at the
// beginning of every public method. This is the paper's reference solution
// for mixing regular FIFOs with temporally decoupled processes (§II-B):
// behavior and timing are as faithful as possible, but there is one context
// switch per access, so it is slow. It is the "TDless-equivalent accuracy"
// baseline the Smart FIFO is compared against in §IV-C.
type SyncFIFO[T any] struct {
	inner *FIFO[T]
}

// NewSync creates a sync-on-every-access FIFO of the given depth.
func NewSync[T any](k *sim.Kernel, name string, depth int) *SyncFIFO[T] {
	return &SyncFIFO[T]{inner: New[T](k, name, depth)}
}

// Name returns the channel name.
func (f *SyncFIFO[T]) Name() string { return f.inner.Name() }

// Depth returns the capacity in cells.
func (f *SyncFIFO[T]) Depth() int { return f.inner.Depth() }

func (f *SyncFIFO[T]) sync(op string) {
	p := f.inner.caller(op)
	if !p.IsMethod() {
		p.Sync()
	}
}

// Write synchronizes the caller, then appends v, blocking while full.
func (f *SyncFIFO[T]) Write(v T) {
	f.sync("Write")
	f.inner.Write(v)
}

// TryWrite synchronizes the caller, then appends v if a cell is free.
func (f *SyncFIFO[T]) TryWrite(v T) bool {
	f.sync("TryWrite")
	return f.inner.TryWrite(v)
}

// Read synchronizes the caller, then pops the oldest value, blocking while
// empty.
func (f *SyncFIFO[T]) Read() T {
	f.sync("Read")
	return f.inner.Read()
}

// TryRead synchronizes the caller, then pops the oldest value if any.
func (f *SyncFIFO[T]) TryRead() (T, bool) {
	f.sync("TryRead")
	return f.inner.TryRead()
}

// IsEmpty synchronizes the caller, then reports whether the FIFO is empty.
func (f *SyncFIFO[T]) IsEmpty() bool {
	f.sync("IsEmpty")
	return f.inner.IsEmpty()
}

// IsFull synchronizes the caller, then reports whether the FIFO is full.
func (f *SyncFIFO[T]) IsFull() bool {
	f.sync("IsFull")
	return f.inner.IsFull()
}

// Size synchronizes the caller, then returns the number of occupied cells.
func (f *SyncFIFO[T]) Size() int {
	f.sync("Size")
	return f.inner.Size()
}

// NotEmpty is notified (delta) whenever data is written.
func (f *SyncFIFO[T]) NotEmpty() *sim.Event { return f.inner.NotEmpty() }

// NotFull is notified (delta) whenever data is read.
func (f *SyncFIFO[T]) NotFull() *sim.Event { return f.inner.NotFull() }

var _ Channel[int] = (*SyncFIFO[int])(nil)
