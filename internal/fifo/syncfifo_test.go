package fifo_test

import (
	"testing"

	"repro/internal/fifo"
	"repro/internal/sim"
)

func TestSyncFIFOAccessorsSynchronize(t *testing.T) {
	k := sim.NewKernel("t")
	f := fifo.NewSync[int](k, "sf", 2)
	if f.Name() != "sf" || f.Depth() != 2 {
		t.Errorf("Name/Depth = %q/%d", f.Name(), f.Depth())
	}
	k.Thread("p", func(p *sim.Process) {
		p.Inc(10 * sim.NS)
		if !f.IsEmpty() {
			t.Error("fresh SyncFIFO not empty")
		}
		// IsEmpty synchronized the caller.
		if !p.Synchronized() || k.Now() != 10*sim.NS {
			t.Errorf("IsEmpty did not sync: Now=%v", k.Now())
		}
		p.Inc(5 * sim.NS)
		if !f.TryWrite(1) {
			t.Error("TryWrite failed")
		}
		if k.Now() != 15*sim.NS {
			t.Errorf("TryWrite did not sync: Now=%v", k.Now())
		}
		p.Inc(5 * sim.NS)
		if f.Size() != 1 {
			t.Errorf("Size = %d", f.Size())
		}
		if k.Now() != 20*sim.NS {
			t.Errorf("Size did not sync: Now=%v", k.Now())
		}
		f.TryWrite(2)
		if !f.IsFull() {
			t.Error("full SyncFIFO not full")
		}
		if v, ok := f.TryRead(); !ok || v != 1 {
			t.Errorf("TryRead = %d,%v", v, ok)
		}
	})
	k.Run(sim.RunForever)
}

func TestSyncFIFOEventsForwarded(t *testing.T) {
	k := sim.NewKernel("t")
	f := fifo.NewSync[int](k, "sf", 1)
	var gotNE, gotNF sim.Time = -1, -1
	k.Thread("listenerNE", func(p *sim.Process) {
		p.WaitEvent(f.NotEmpty())
		gotNE = k.Now()
	})
	k.Thread("listenerNF", func(p *sim.Process) {
		p.WaitEvent(f.NotFull())
		gotNF = k.Now()
	})
	k.Thread("driver", func(p *sim.Process) {
		p.Wait(5 * sim.NS)
		f.Write(1)
		p.Wait(5 * sim.NS)
		f.Read()
	})
	k.Run(sim.RunForever)
	if gotNE != 5*sim.NS || gotNF != 10*sim.NS {
		t.Errorf("NotEmpty at %v, NotFull at %v; want 5ns, 10ns", gotNE, gotNF)
	}
}

func TestSyncFIFOFromMethodSkipsSync(t *testing.T) {
	// Methods cannot Wait; SyncFIFO accessors must still work there
	// (methods are synchronized at activation by construction).
	k := sim.NewKernel("t")
	f := fifo.NewSync[int](k, "sf", 4)
	var got []int
	k.MethodNoInit("m", func(p *sim.Process) {
		for {
			v, ok := f.TryRead()
			if !ok {
				return
			}
			got = append(got, v)
		}
	}, f.NotEmpty())
	k.Thread("producer", func(p *sim.Process) {
		p.Wait(3 * sim.NS)
		f.Write(7)
		f.Write(8)
	})
	k.Run(sim.RunForever)
	if len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Errorf("method consumer got %v", got)
	}
}

func TestPeek(t *testing.T) {
	k := sim.NewKernel("t")
	f := fifo.New[int](k, "f", 2)
	k.Thread("p", func(p *sim.Process) {
		if _, ok := f.Peek(); ok {
			t.Error("Peek on empty succeeded")
		}
		f.Write(5)
		f.Write(6)
		if v, ok := f.Peek(); !ok || v != 5 {
			t.Errorf("Peek = %d,%v, want 5", v, ok)
		}
		if f.Size() != 2 {
			t.Error("Peek consumed an element")
		}
		f.Read()
		if v, _ := f.Peek(); v != 6 {
			t.Errorf("Peek after Read = %d, want 6", v)
		}
	})
	k.Run(sim.RunForever)
	if f.Name() != "f" {
		t.Errorf("Name = %q", f.Name())
	}
}
