package fifo_test

// The regular FIFO's bulk paths against the scalar burst contract: same
// values, same local clocks, same blocking behavior.

import (
	"testing"

	"repro/internal/fifo"
	"repro/internal/sim"
)

// runFIFOBurst streams nWords through chunked writes/reads; bulk selects
// the native bulk path or the scalar contract loop. It returns the two
// sides' final local dates, the values read and the context switches.
func runFIFOBurst(depth, nWords, wChunk, rChunk int, bulk bool) (wEnd, rEnd sim.Time, vals []int, switches uint64) {
	k := sim.NewKernel("fb")
	f := fifo.New[int](k, "f", depth)
	vals = make([]int, 0, nWords)
	k.Thread("writer", func(p *sim.Process) {
		buf := make([]int, wChunk)
		for next := 0; next < nWords; {
			m := min(wChunk, nWords-next)
			for j := 0; j < m; j++ {
				buf[j] = next + j
			}
			if bulk {
				f.WriteBurst(buf[:m], 3*sim.NS)
			} else {
				for i, v := range buf[:m] {
					if i > 0 {
						p.Inc(3 * sim.NS)
					}
					f.Write(v)
				}
			}
			p.Inc(5 * sim.NS)
			next += m
		}
		wEnd = p.LocalTime()
	})
	k.Thread("reader", func(p *sim.Process) {
		buf := make([]int, rChunk)
		for got := 0; got < nWords; {
			m := min(rChunk, nWords-got)
			if bulk {
				f.ReadBurst(buf[:m], 2*sim.NS)
			} else {
				for i := range buf[:m] {
					if i > 0 {
						p.Inc(2 * sim.NS)
					}
					buf[i] = f.Read()
				}
			}
			vals = append(vals, buf[:m]...)
			p.Inc(sim.NS)
			got += m
		}
		rEnd = p.LocalTime()
	})
	k.Run(sim.RunForever)
	switches = k.Stats().ContextSwitches
	k.Shutdown()
	return wEnd, rEnd, vals, switches
}

func TestFIFOBurstMatchesScalar(t *testing.T) {
	for _, depth := range []int{1, 4, 64} {
		w1, r1, v1, s1 := runFIFOBurst(depth, 300, 7, 5, false)
		w2, r2, v2, s2 := runFIFOBurst(depth, 300, 7, 5, true)
		if w1 != w2 || r1 != r2 {
			t.Errorf("depth %d: final dates differ: scalar (%v, %v), bulk (%v, %v)", depth, w1, r1, w2, r2)
		}
		if s1 != s2 {
			t.Errorf("depth %d: context switches differ: %d vs %d", depth, s1, s2)
		}
		for i := range v1 {
			if v1[i] != v2[i] {
				t.Fatalf("depth %d: value %d differs: %d vs %d", depth, i, v1[i], v2[i])
			}
		}
	}
}

func TestFIFOTryBursts(t *testing.T) {
	k := sim.NewKernel("fb")
	f := fifo.New[int](k, "f", 8)
	k.Thread("p", func(p *sim.Process) {
		in := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
		if n := f.TryWriteBurst(in, sim.NS); n != 8 {
			t.Errorf("TryWriteBurst into depth 8 = %d, want 8", n)
		}
		out := make([]int, 10)
		if n := f.TryReadBurst(out, sim.NS); n != 8 {
			t.Errorf("TryReadBurst = %d, want 8", n)
		}
		for i := 0; i < 8; i++ {
			if out[i] != i+1 {
				t.Errorf("out[%d] = %d", i, out[i])
			}
		}
		if n := f.TryReadBurst(out, sim.NS); n != 0 {
			t.Errorf("TryReadBurst on empty = %d, want 0", n)
		}
	})
	k.Run(sim.RunForever)
	k.Shutdown()
}

// TestSyncFIFOBurstIsPerWord pins the baseline's defining property through
// the burst API: every word of a SyncFIFO burst still synchronizes, so the
// context-switch count stays one per access.
func TestSyncFIFOBurstIsPerWord(t *testing.T) {
	k := sim.NewKernel("fb")
	f := fifo.NewSync[int](k, "f", 16)
	const n = 32
	k.Thread("writer", func(p *sim.Process) {
		buf := make([]int, 8)
		for i := 0; i < n; i += 8 {
			p.Inc(2 * sim.NS) // decouple, so every access must re-sync
			f.WriteBurst(buf, 3*sim.NS)
		}
	})
	k.Thread("reader", func(p *sim.Process) {
		buf := make([]int, 8)
		for i := 0; i < n; i += 8 {
			p.Inc(sim.NS)
			f.ReadBurst(buf, 2*sim.NS)
		}
	})
	k.Run(sim.RunForever)
	defer k.Shutdown()
	if sw := k.Stats().ContextSwitches; sw < uint64(n) {
		t.Errorf("SyncFIFO bursts context-switched only %d times for %d words each way", sw, 2*n)
	}
}
