package fifo

import "repro/internal/sim"

// Burst transfers. Every burst method follows the contract of
// internal/core/burst.go: word 0 is transferred at the caller's current
// local date and per of local time is advanced between consecutive words —
// the scalar oracle
//
//	for i, v := range vals { if i > 0 { p.Inc(per) }; w.Write(v) }
//
// (with the IsFull/IsEmpty pre-checks for the Try variants). Channels that
// can do better implement BurstWriter/BurstReader natively; the package
// helpers dispatch to the native path when available and fall back to the
// scalar loop otherwise, so model code can be written once against the
// plain Reader/Writer interfaces.

// BurstWriter is the optional bulk write-side interface. The Smart FIFO,
// the sharded bridge endpoints and the regular FIFO implement it with
// run-based fast paths.
type BurstWriter[T any] interface {
	// WriteBurst writes vals in order, advancing the caller's local
	// clock by per between consecutive words; it blocks like Write.
	WriteBurst(vals []T, per sim.Time)
	// TryWriteBurst writes up to len(vals) acceptable words without
	// blocking and returns the number written.
	TryWriteBurst(vals []T, per sim.Time) int
}

// BurstReader is the optional bulk read-side interface.
type BurstReader[T any] interface {
	// ReadBurst fills dst in order, advancing the caller's local clock
	// by per between consecutive words; it blocks like Read.
	ReadBurst(dst []T, per sim.Time)
	// TryReadBurst pops up to len(dst) available words without blocking
	// and returns the number read.
	TryReadBurst(dst []T, per sim.Time) int
}

// WriteBurst writes vals through w under the burst contract, taking w's
// native bulk path when it has one.
func WriteBurst[T any](p *sim.Process, w Writer[T], vals []T, per sim.Time) {
	if bw, ok := w.(BurstWriter[T]); ok {
		bw.WriteBurst(vals, per)
		return
	}
	for i, v := range vals {
		if i > 0 {
			p.Inc(per)
		}
		w.Write(v)
	}
}

// ReadBurst fills dst from r under the burst contract, taking r's native
// bulk path when it has one.
func ReadBurst[T any](p *sim.Process, r Reader[T], dst []T, per sim.Time) {
	if br, ok := r.(BurstReader[T]); ok {
		br.ReadBurst(dst, per)
		return
	}
	for i := range dst {
		if i > 0 {
			p.Inc(per)
		}
		dst[i] = r.Read()
	}
}

// TryWriteBurst writes up to len(vals) words through w without blocking and
// returns the number written.
func TryWriteBurst[T any](p *sim.Process, w Writer[T], vals []T, per sim.Time) int {
	if bw, ok := w.(BurstWriter[T]); ok {
		return bw.TryWriteBurst(vals, per)
	}
	n := 0
	for i, v := range vals {
		if i > 0 {
			if w.IsFull() {
				break
			}
			p.Inc(per)
		}
		if !w.TryWrite(v) {
			break
		}
		n++
	}
	return n
}

// TryReadBurst pops up to len(dst) words from r without blocking and
// returns the number read.
func TryReadBurst[T any](p *sim.Process, r Reader[T], dst []T, per sim.Time) int {
	if br, ok := r.(BurstReader[T]); ok {
		return br.TryReadBurst(dst, per)
	}
	n := 0
	for i := range dst {
		if i > 0 {
			if r.IsEmpty() {
				break
			}
			p.Inc(per)
		}
		v, ok := r.TryRead()
		if !ok {
			break
		}
		dst[i] = v
		n++
	}
	return n
}

// --- FIFO native bursts ---

// A regular FIFO has no cell timestamps, so its bulk path is pure ring
// movement: payload moves with copy (≤ 2 contiguous segments), the local
// clock advances by the lumped inter-word total, and the per-word delta
// notifications collapse to one per run (NotifyDelta is idempotent while
// pending, and nothing can observe the intermediate states — the scalar
// loop never yields between non-blocking words).

// WriteBurst writes vals under the burst contract, blocking like Write
// while the FIFO is full.
func (f *FIFO[T]) WriteBurst(vals []T, per sim.Time) {
	p := f.caller("WriteBurst")
	first := true
	for len(vals) > 0 {
		m := len(f.buf) - f.n
		if m == 0 || per < 0 {
			if !first {
				p.Inc(per)
			}
			f.Write(vals[0])
			vals = vals[1:]
			first = false
			continue
		}
		if m > len(vals) {
			m = len(vals)
		}
		inc := m - 1
		if !first {
			inc = m
		}
		p.Inc(sim.Time(inc) * per)
		f.pushBulk(vals[:m])
		vals = vals[m:]
		first = false
	}
}

// ReadBurst fills dst under the burst contract, blocking like Read while
// the FIFO is empty.
func (f *FIFO[T]) ReadBurst(dst []T, per sim.Time) {
	p := f.caller("ReadBurst")
	first := true
	for len(dst) > 0 {
		m := f.n
		if m == 0 || per < 0 {
			if !first {
				p.Inc(per)
			}
			dst[0] = f.Read()
			dst = dst[1:]
			first = false
			continue
		}
		if m > len(dst) {
			m = len(dst)
		}
		inc := m - 1
		if !first {
			inc = m
		}
		p.Inc(sim.Time(inc) * per)
		f.popBulk(dst[:m])
		dst = dst[m:]
		first = false
	}
}

// TryWriteBurst writes up to len(vals) words without blocking and returns
// the number written.
func (f *FIFO[T]) TryWriteBurst(vals []T, per sim.Time) int {
	p := f.caller("TryWriteBurst")
	if per < 0 {
		// Panic parity with the contract loop: word 0 lands, the
		// word-1 Inc panics.
		n := 0
		for i, v := range vals {
			if i > 0 {
				if f.IsFull() {
					break
				}
				p.Inc(per)
			}
			if !f.TryWrite(v) {
				break
			}
			n++
		}
		return n
	}
	m := len(f.buf) - f.n
	if m > len(vals) {
		m = len(vals)
	}
	if m == 0 {
		return 0
	}
	p.Inc(sim.Time(m-1) * per)
	f.pushBulk(vals[:m])
	return m
}

// TryReadBurst pops up to len(dst) words without blocking and returns the
// number read.
func (f *FIFO[T]) TryReadBurst(dst []T, per sim.Time) int {
	p := f.caller("TryReadBurst")
	if per < 0 {
		n := 0
		for i := range dst {
			if i > 0 {
				if f.IsEmpty() {
					break
				}
				p.Inc(per)
			}
			v, ok := f.TryRead()
			if !ok {
				break
			}
			dst[i] = v
			n++
		}
		return n
	}
	m := f.n
	if m > len(dst) {
		m = len(dst)
	}
	if m == 0 {
		return 0
	}
	p.Inc(sim.Time(m-1) * per)
	f.popBulk(dst[:m])
	return m
}

// pushBulk appends vals (which must fit) and notifies once.
func (f *FIFO[T]) pushBulk(vals []T) {
	tail := (f.head + f.n) % len(f.buf)
	n1 := len(f.buf) - tail
	if n1 > len(vals) {
		n1 = len(vals)
	}
	copy(f.buf[tail:tail+n1], vals[:n1])
	copy(f.buf, vals[n1:])
	f.n += len(vals)
	f.notEmpty.NotifyDelta()
}

// popBulk moves the oldest len(dst) words (which must exist) into dst,
// zeroes the vacated cells and notifies once.
func (f *FIFO[T]) popBulk(dst []T) {
	n1 := len(f.buf) - f.head
	if n1 > len(dst) {
		n1 = len(dst)
	}
	copy(dst[:n1], f.buf[f.head:f.head+n1])
	clear(f.buf[f.head : f.head+n1])
	copy(dst[n1:], f.buf)
	clear(f.buf[:len(dst)-n1])
	f.head = (f.head + len(dst)) % len(f.buf)
	f.n -= len(dst)
	f.notFull.NotifyDelta()
}

// --- SyncFIFO bursts ---

// The sync-on-every-access baseline cannot batch: its defining property is
// one synchronization per access. Its burst methods are the literal scalar
// contract loops, provided so model code using the burst vocabulary keeps
// the baseline's exact per-word behavior.

// WriteBurst writes vals under the burst contract, synchronizing on every
// word like Write.
func (f *SyncFIFO[T]) WriteBurst(vals []T, per sim.Time) {
	p := f.inner.caller("WriteBurst")
	for i, v := range vals {
		if i > 0 {
			p.Inc(per)
		}
		f.Write(v)
	}
}

// ReadBurst fills dst under the burst contract, synchronizing on every
// word like Read.
func (f *SyncFIFO[T]) ReadBurst(dst []T, per sim.Time) {
	p := f.inner.caller("ReadBurst")
	for i := range dst {
		if i > 0 {
			p.Inc(per)
		}
		dst[i] = f.Read()
	}
}

// TryWriteBurst writes up to len(vals) words without blocking, one
// synchronized TryWrite per word.
func (f *SyncFIFO[T]) TryWriteBurst(vals []T, per sim.Time) int {
	p := f.inner.caller("TryWriteBurst")
	n := 0
	for i, v := range vals {
		if i > 0 {
			if f.IsFull() {
				break
			}
			p.Inc(per)
		}
		if !f.TryWrite(v) {
			break
		}
		n++
	}
	return n
}

// TryReadBurst pops up to len(dst) words without blocking, one
// synchronized TryRead per word.
func (f *SyncFIFO[T]) TryReadBurst(dst []T, per sim.Time) int {
	p := f.inner.caller("TryReadBurst")
	n := 0
	for i := range dst {
		if i > 0 {
			if f.IsEmpty() {
				break
			}
			p.Inc(per)
		}
		v, ok := f.TryRead()
		if !ok {
			break
		}
		dst[i] = v
		n++
	}
	return n
}

var (
	_ BurstWriter[int] = (*FIFO[int])(nil)
	_ BurstReader[int] = (*FIFO[int])(nil)
	_ BurstWriter[int] = (*SyncFIFO[int])(nil)
	_ BurstReader[int] = (*SyncFIFO[int])(nil)
)
